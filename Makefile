# The pre-PR gate. `make check` is what CI (and a careful human) runs:
# build everything, run the stock vet, run the domain-aware vet, then the
# tests under the race detector.

GO ?= go

.PHONY: check build vet altovet test race bench fmt

check: build vet altovet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

altovet:
	$(GO) run ./cmd/altovet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

fmt:
	gofmt -l -w .
