# The pre-PR gate. `make check` is what CI (and a careful human) runs:
# build everything, run the stock vet, run the domain-aware vet, then the
# tests under the race detector.

GO ?= go

.PHONY: check build vet altovet vet-stats vet-baseline test race bench bench-diff trace-check scope-check fleet-check cluster-check crash-check fmt

check: build vet altovet vet-stats trace-check scope-check fleet-check cluster-check crash-check race bench-diff

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# altovet compares against the checked-in baseline, so the gate fails only on
# findings *new* since the baseline (benchdiff-style). The tree is clean today
# — the baseline is empty — but the mechanism lets a future large-scale
# finding haul land incrementally without turning the gate off.
altovet:
	$(GO) run ./cmd/altovet -baseline vet_baseline.json ./...

# vet-stats prints the per-analyzer finding/allow counts against the baseline;
# informational, part of check so drift is visible in every run's log.
vet-stats:
	$(GO) run ./cmd/altovet -baseline vet_baseline.json -stats ./... || true

# vet-baseline refreshes the checked-in baseline to the current findings; run
# it (and commit the result) only when deliberately accepting a legacy haul.
vet-baseline:
	$(GO) run ./cmd/altovet -baseline vet_baseline.json -write-baseline ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# trace-check guards the observability contract: the tracing driver builds,
# and two runs of the same experiment export byte-identical traces.
trace-check:
	$(GO) build -o /dev/null ./cmd/altotrace
	$(GO) test -run TestTracesAreByteIdentical ./cmd/altotrace

# scope-check guards the fleet observability contract: altoscope builds, and
# the merged trace, collapsed profile and top table come out byte-identical
# across runs, merge input orders and worker counts. E10 covers the file
# server fleet; E13 covers the 26-machine saturation fleet (bounded ring so
# the two dozen recorders stay cheap).
scope-check:
	$(GO) build -o /dev/null ./cmd/altoscope
	$(GO) run ./cmd/altoscope -experiment e10 -check
	$(GO) run ./cmd/altoscope -experiment e13 -events 8192 -check

# fleet-check guards the parallel scheduler's contract: altofleet builds, and
# a 100-Alto fan-in produces byte-identical per-machine event streams and
# metrics across repeated runs and across worker-pool widths (1 vs 8).
fleet-check:
	$(GO) build -o /dev/null ./cmd/altofleet
	$(GO) run ./cmd/altofleet -check -machines 100 -events 16384

# cluster-check guards the replicated file service's contract: altocluster
# builds, and a reduced E15 run (4 shards x 3 replicas, 6 clients, 10% wire
# loss, seeded rot, distributed audit and heal) produces byte-identical
# per-machine event streams and metrics across repeated runs and across
# worker-pool widths (1 vs 8).
cluster-check:
	$(GO) build -o /dev/null ./cmd/altocluster
	$(GO) run ./cmd/altocluster -check -clients 6

# crash-check is the §3.5 gate: a sampled sweep of crash points (clean and
# torn) over the journaled directory workload; altocrash exits non-zero if
# any crash point fails to recover to a pack fsck certifies violation-free.
crash-check:
	$(GO) run ./cmd/altocrash -workload journaled-insert -points 64 -workers 8 -torn

# bench runs every experiment benchmark once and keeps the raw output as a
# timestamped snapshot, so regressions in the simulated quantities are
# diffable. (Timestamp, not just date: a same-day rerun must not overwrite
# the snapshot it would be compared against.)
bench:
	$(GO) test -bench . -benchtime 1x -benchmem . | tee BENCH_$$(date +%Y-%m-%d_%H%M%S).json

# bench-diff compares the two latest snapshots and fails on any regression
# in a simulated-time metric; host-dependent costs (ns/op, allocs/op) are
# ignored. With fewer than two snapshots there is nothing to compare and it
# passes.
bench-diff:
	$(GO) run ./cmd/benchdiff

fmt:
	gofmt -l -w .
