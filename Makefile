# The pre-PR gate. `make check` is what CI (and a careful human) runs:
# build everything, run the stock vet, run the domain-aware vet, then the
# tests under the race detector.

GO ?= go

.PHONY: check build vet altovet test race bench trace-check fmt

check: build vet altovet trace-check race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

altovet:
	$(GO) run ./cmd/altovet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# trace-check guards the observability contract: the tracing driver builds,
# and two runs of the same experiment export byte-identical traces.
trace-check:
	$(GO) build -o /dev/null ./cmd/altotrace
	$(GO) test -run TestTracesAreByteIdentical ./cmd/altotrace

# bench runs every experiment benchmark once and keeps the raw output as a
# dated snapshot, so regressions in the simulated quantities are diffable.
bench:
	$(GO) test -bench . -benchtime 1x -benchmem . | tee BENCH_$$(date +%Y-%m-%d).json

fmt:
	gofmt -l -w .
