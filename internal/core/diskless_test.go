package core

import (
	"bytes"
	"testing"

	"altoos/internal/asm"
	"altoos/internal/ether"
)

func TestDisklessRunsPrograms(t *testing.T) {
	var out bytes.Buffer
	d, err := NewDiskless(DisklessConfig{Display: &out})
	if err != nil {
		t.Fatal(err)
	}
	p := asm.MustAssemble(`
START:	LDA 0, C1
	SYS 1
	SYS 2          ; Getc from type-ahead
	SYS 1          ; echo it
	HALT
C1:	.word 'D'
`)
	d.Keyboard.TypeAhead("!")
	d.LoadProgram(p.Origin, p.Words, p.Entry)
	if _, err := d.CPU.Run(1000); err != nil {
		t.Fatal(err)
	}
	if out.String() != "D!" {
		t.Fatalf("output %q", out.String())
	}
}

func TestDisklessFileOpsFailGracefully(t *testing.T) {
	var out bytes.Buffer
	d, err := NewDiskless(DisklessConfig{Display: &out})
	if err != nil {
		t.Fatal(err)
	}
	// OpenR returns a zero handle, the "no such file" convention; the
	// program notices and prints a diagnostic instead of crashing.
	p := asm.MustAssemble(`
START:	LDA 0, NAMEP
	SYS 3           ; OpenR -> AC0 == 0 on a diskless machine
	MOV# 0, 0, SZR  ; skip when AC0 == 0
	JMP BAD
	LDA 0, OKC
	SYS 1
	HALT
BAD:	LDA 0, BADC
	SYS 1
	HALT
NAMEP:	.word NAME
OKC:	.word 'N'     ; "no disk", the expected path
BADC:	.word '?'
NAME:	.blk 4
`)
	d.LoadProgram(p.Origin, p.Words, p.Entry)
	if _, err := d.CPU.Run(1000); err != nil {
		t.Fatal(err)
	}
	if out.String() != "N" {
		t.Fatalf("output %q, want N", out.String())
	}
}

func TestDisklessDiskSyscallsError(t *testing.T) {
	d, err := NewDiskless(DisklessConfig{Display: &bytes.Buffer{}})
	if err != nil {
		t.Fatal(err)
	}
	p := asm.MustAssemble("START: SYS 5") // Getb without a disk
	d.LoadProgram(p.Origin, p.Words, p.Entry)
	if _, err := d.CPU.Run(10); err == nil {
		t.Fatal("disk syscall on diskless machine should fail")
	}
}

func TestDisklessOnNetwork(t *testing.T) {
	// Two diskless machines exchange a packet — the diagnostics scenario.
	net := ether.New(nil)
	var outA, outB bytes.Buffer
	a, err := NewDiskless(DisklessConfig{Display: &outA, Network: net, Addr: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewDiskless(DisklessConfig{Display: &outB, Network: net, Addr: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Station.Send(ether.Packet{Dst: 2, Type: 1, Payload: []uint16{42}}); err != nil {
		t.Fatal(err)
	}
	pkt, ok := b.Station.Recv()
	if !ok || pkt.Payload[0] != 42 {
		t.Fatalf("packet lost: %v %v", pkt, ok)
	}
	// They share the network clock.
	if a.Clock != b.Clock {
		t.Error("machines on one network must share its clock")
	}
	if a.Clock.Now() == 0 {
		t.Error("wire time not charged")
	}
}

func TestDisklessZoneWorks(t *testing.T) {
	d, err := NewDiskless(DisklessConfig{Display: &bytes.Buffer{}})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := d.Zone.Alloc(500)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Zone.Free(addr); err != nil {
		t.Fatal(err)
	}
}
