package core

import (
	"bytes"
	"strings"
	"testing"

	"altoos/internal/disk"
	"altoos/internal/file"
	"altoos/internal/junta"
	"altoos/internal/stream"
	"altoos/internal/zone"
)

func newSys(t *testing.T) (*System, *bytes.Buffer) {
	t.Helper()
	var out bytes.Buffer
	s, err := New(Config{Display: &out})
	if err != nil {
		t.Fatal(err)
	}
	return s, &out
}

func TestEndToEndFileLifecycle(t *testing.T) {
	s, _ := newSys(t)
	w, err := s.CreateStream("hello.txt")
	if err != nil {
		t.Fatal(err)
	}
	if err := stream.PutString(w, "hello from 1979"); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := s.OpenStream("hello.txt", stream.ReadMode)
	if err != nil {
		t.Fatal(err)
	}
	got, err := stream.ReadAll(r)
	r.Close()
	if err != nil || string(got) != "hello from 1979" {
		t.Fatalf("read back %q, %v", got, err)
	}
}

func TestAttachExistingPack(t *testing.T) {
	s, _ := newSys(t)
	w, _ := s.CreateStream("persistent.txt")
	stream.PutString(w, "still here")
	w.Close()

	// "Remove the pack and mount it on another machine."
	s2, err := New(Config{Drive: s.Drive, Display: &bytes.Buffer{}})
	if err != nil {
		t.Fatal(err)
	}
	r, err := s2.OpenStream("persistent.txt", stream.ReadMode)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := stream.ReadAll(r)
	r.Close()
	if string(got) != "still here" {
		t.Fatalf("got %q", got)
	}
}

func TestAttachDamagedPackScavengesAutomatically(t *testing.T) {
	s, _ := newSys(t)
	w, _ := s.CreateStream("survivor.txt")
	stream.PutString(w, "data")
	w.Close()
	// Destroy the descriptor so Mount fails.
	df, err := s.FS.Open(s.FS.DescriptorFN())
	if err != nil {
		t.Fatal(err)
	}
	lastPN, _ := df.LastPage()
	for pn := disk.Word(0); pn <= lastPN; pn++ {
		a, _ := df.PageAddr(pn)
		s.Drive.ZapLabel(a, disk.FreeLabelWords())
	}

	s2, err := New(Config{Drive: s.Drive, Display: &bytes.Buffer{}})
	if err != nil {
		t.Fatalf("attach with damaged descriptor: %v", err)
	}
	r, err := s2.OpenStream("survivor.txt", stream.ReadMode)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := stream.ReadAll(r)
	r.Close()
	if string(got) != "data" {
		t.Fatalf("got %q", got)
	}
}

func TestFullHintLadderThroughScavenger(t *testing.T) {
	// The deepest §3.6 recovery: a program holds a full name whose hint is
	// stale AND the directories' address hints are stale too, so only the
	// Scavenger can cure the lookup. The wiring in core must make a plain
	// Open succeed anyway.
	s, _ := newSys(t)
	f, err := s.CreateFile("deep.dat")
	if err != nil {
		t.Fatal(err)
	}
	var page [disk.PageWords]disk.Word
	page[0] = 0x1979
	if err := f.WritePage(1, &page, 2); err != nil {
		t.Fatal(err)
	}
	f.Sync()

	// Corrupt the root directory's entry address hints by hand.
	root, _ := s.Root()
	bad := f.FN()
	bad.Leader = 4321
	if err := root.Update("deep.dat", bad); err != nil {
		t.Fatal(err)
	}

	stale := f.FN()
	stale.Leader = 1234
	g, err := s.FS.Open(stale)
	if err != nil {
		t.Fatalf("open through full ladder: %v", err)
	}
	var buf [disk.PageWords]disk.Word
	if _, err := g.ReadPage(1, &buf); err != nil || buf[0] != 0x1979 {
		t.Fatalf("ladder read: %v", err)
	}
}

func TestJuntaRoundTripThroughSystem(t *testing.T) {
	s, _ := newSys(t)
	// Allocate from the system zone, then Junta it away.
	if _, err := s.Zone.Alloc(100); err != nil {
		t.Fatal(err)
	}
	freed, words, err := s.Levels.Do(junta.LevelDiskStream)
	if err != nil {
		t.Fatal(err)
	}
	if s.Zone != nil {
		t.Fatal("system zone survived its own removal")
	}
	if words <= 0 {
		t.Fatal("nothing freed")
	}
	// The program uses the space for its own allocator.
	size := freed.Size()
	if size > 0x7FFF {
		size = 0x7FFF
	}
	z, err := zone.New(s.Mem, freed.Start, size)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := z.Alloc(2000); err != nil {
		t.Fatal(err)
	}
	// CounterJunta brings the system back, with a fresh zone.
	if err := s.Levels.CounterJunta(); err != nil {
		t.Fatal(err)
	}
	if s.Zone == nil || s.OS.Zone == nil {
		t.Fatal("zone not restored")
	}
	if _, err := s.Zone.Alloc(50); err != nil {
		t.Fatal(err)
	}
	// Streams work again end to end.
	w, err := s.CreateStream("after-junta.txt")
	if err != nil {
		t.Fatal(err)
	}
	stream.PutString(w, "ok")
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSaveWorldAndBoot(t *testing.T) {
	s, _ := newSys(t)
	s.Mem.Store(0x3000, 0xCAFE)
	s.CPU.PC = 0x3000
	if _, err := s.SaveWorld(); err != nil {
		t.Fatal(err)
	}
	s.Mem.Store(0x3000, 0)
	s.CPU.PC = 0
	if err := s.Boot(); err != nil {
		t.Fatal(err)
	}
	if s.Mem.Load(0x3000) != 0xCAFE || s.CPU.PC != 0x3000 {
		t.Fatal("boot did not restore the saved world")
	}
}

func TestExecutiveThroughSystem(t *testing.T) {
	s, out := newSys(t)
	w, _ := s.CreateStream("doc.txt")
	stream.PutString(w, "document body")
	w.Close()

	s.TypeAhead("ls\ntype doc.txt\nquit\n")
	if err := s.RunExecutive(); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "doc.txt") || !strings.Contains(text, "document body") {
		t.Fatalf("executive output:\n%s", text)
	}
}

func TestScavengeAndCompactThroughSystem(t *testing.T) {
	s, _ := newSys(t)
	// Interleave two files to fragment them.
	a, _ := s.CreateFile("a.dat")
	b, _ := s.CreateFile("b.dat")
	var page [disk.PageWords]disk.Word
	for i := 1; i <= 6; i++ {
		page[0] = disk.Word(i)
		if err := a.WritePage(disk.Word(i), &page, disk.PageBytes); err != nil {
			t.Fatal(err)
		}
		page[0] = disk.Word(100 + i)
		if err := b.WritePage(disk.Word(i), &page, disk.PageBytes); err != nil {
			t.Fatal(err)
		}
	}
	a.Sync()
	b.Sync()

	rep, err := s.Scavenge()
	if err != nil {
		t.Fatal(err)
	}
	if rep.FilesFound < 4 {
		t.Errorf("scavenge found %d files", rep.FilesFound)
	}
	crep, err := s.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if crep.PagesMoved == 0 {
		t.Error("compaction moved nothing on a fragmented disk")
	}
	// The live FS keeps working after both.
	g, err := s.OpenByName("a.dat")
	if err != nil {
		t.Fatal(err)
	}
	var buf [disk.PageWords]disk.Word
	if _, err := g.ReadPage(3, &buf); err != nil || buf[0] != 3 {
		t.Fatalf("post-compact read: %v (word %d)", err, buf[0])
	}
	if !g.Leader().MaybeConsecutive {
		t.Error("file not consecutive after compaction")
	}
}

func TestInstalledProgramHints(t *testing.T) {
	// §3.6's installation scheme: a program records hints for its auxiliary
	// files in a state file; a warm start reaches its data in one disk
	// access per page; if a scratch file is deleted, the hint fails cleanly
	// and the program reinstalls.
	s, _ := newSys(t)
	scratch, err := s.CreateFile("editor.scratch")
	if err != nil {
		t.Fatal(err)
	}
	var page [disk.PageWords]disk.Word
	page[0] = 0xED17
	if err := scratch.WritePage(1, &page, 2); err != nil {
		t.Fatal(err)
	}
	addr, err := scratch.PageAddr(1)
	if err != nil {
		t.Fatal(err)
	}

	// "Install": save (fn, page, addr) in a state file.
	st, _ := s.CreateStream("editor.state")
	stream.PutWord(st, uint16(scratch.FN().FV.FID>>16))
	stream.PutWord(st, uint16(scratch.FN().FV.FID))
	stream.PutWord(st, scratch.FN().FV.Version)
	stream.PutWord(st, uint16(scratch.FN().Leader))
	stream.PutWord(st, 1)
	stream.PutWord(st, uint16(addr))
	st.Close()

	// Warm start: read the state file, access the page directly.
	rd, _ := s.OpenStream("editor.state", stream.ReadMode)
	var ws [6]uint16
	for i := range ws {
		ws[i], err = stream.GetWord(rd)
		if err != nil {
			t.Fatal(err)
		}
	}
	rd.Close()
	fn := file.FN{
		FV:     disk.FV{FID: disk.FID(ws[0])<<16 | disk.FID(ws[1]), Version: ws[2]},
		Leader: disk.VDA(ws[3]),
	}
	h, err := s.FS.Open(fn)
	if err != nil {
		t.Fatal(err)
	}
	h.ForgetHints()
	h.SetHint(disk.Word(ws[4]), disk.VDA(ws[5]))
	s.FS.ResetStats()
	var buf [disk.PageWords]disk.Word
	if _, err := h.ReadPage(1, &buf); err != nil || buf[0] != 0xED17 {
		t.Fatalf("hinted warm start failed: %v", err)
	}
	if s.FS.Stats().HintHits != 1 {
		t.Error("warm start did not use the planted hint")
	}

	// Delete the scratch file; the stale hint must fail loudly, telling the
	// program to reinstall — never return wrong data.
	root, _ := s.Root()
	root.Remove("editor.scratch")
	sc2, _ := s.FS.Open(scratch.FN())
	if err := sc2.Delete(); err != nil {
		t.Fatal(err)
	}
	h2, err := s.FS.Open(fn)
	if err == nil {
		h2.ForgetHints()
		h2.SetHint(disk.Word(ws[4]), disk.VDA(ws[5]))
		if _, err := h2.ReadPage(1, &buf); err == nil {
			t.Fatal("read from deleted scratch file succeeded")
		}
	}
}

func TestExecutiveScavengeKeepsSystemFSInSync(t *testing.T) {
	s, out := newSys(t)
	w, _ := s.CreateStream("sync.txt")
	stream.PutString(w, "stay in sync")
	w.Close()
	if _, err := s.Exec.Execute("scavenge"); err != nil {
		t.Fatal(err)
	}
	if s.OS.FS != s.FS {
		t.Fatal("Executive scavenge desynchronized OS.FS from System.FS")
	}
	if !strings.Contains(out.String(), "scavenge:") {
		t.Fatalf("no report: %q", out.String())
	}
	// The live FS works after the in-place adoption.
	r, err := s.OpenStream("sync.txt", stream.ReadMode)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := stream.ReadAll(r)
	r.Close()
	if string(got) != "stay in sync" {
		t.Fatalf("got %q", got)
	}
	if _, err := s.Exec.Execute("compact"); err != nil {
		t.Fatal(err)
	}
	if s.OS.FS != s.FS {
		t.Fatal("Executive compact desynchronized the FS")
	}
}
