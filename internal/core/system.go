// Package core assembles the open operating system from its packages: the
// simulated machine (memory, CPU, clock), the disk and file system, the
// stream and zone objects, the level structure with Junta/CounterJunta, the
// loader and Executive, and the full §3.6 hint-recovery ladder wired from
// the file layer through the directories to the Scavenger.
//
// Nothing in this package is privileged: it calls only the exported
// operations of the substrate packages, which is the paper's whole point —
// "there is no significant difference between these system procedures and a
// set of procedures that the user might write".
package core

import (
	"fmt"
	"io"
	"os"

	"altoos/internal/cpu"
	"altoos/internal/debug"
	"altoos/internal/dir"
	"altoos/internal/disk"
	"altoos/internal/exec"
	"altoos/internal/file"
	"altoos/internal/junta"
	"altoos/internal/mem"
	"altoos/internal/scavenge"
	"altoos/internal/sim"
	"altoos/internal/stream"
	"altoos/internal/swap"
	"altoos/internal/trace"
	"altoos/internal/zone"
)

// Config selects the machine to build. The zero value gives a standard Alto:
// one Diablo 31 drive, display on os.Stdout.
type Config struct {
	// Geometry of the disk drive; Diablo31 if zero.
	Geometry disk.Geometry
	// Pack number for a freshly formatted pack.
	Pack disk.Word
	// Display receives display-stream output; os.Stdout if nil.
	Display io.Writer
	// Drive, if non-nil, is used instead of creating a fresh one — attach
	// to an existing pack (it will be mounted, not formatted).
	Drive *disk.Drive
	// TraceEvents, when nonzero, turns the flight recorder on with a ring
	// of that many events (negative: trace.DefaultEvents). Zero leaves
	// tracing off: every hook sees a nil recorder and pays one branch.
	TraceEvents int
}

// System is the whole machine plus its resident operating system.
type System struct {
	Clock    *sim.Clock
	Drive    *disk.Drive
	FS       *file.FS
	Mem      *mem.Memory
	CPU      *cpu.CPU
	Zone     *zone.MemZone // the system free storage (level 13)
	Levels   *junta.Junta
	OS       *exec.OS
	Exec     *exec.Executive
	Loader   *exec.Loader
	Keyboard *stream.Keyboard
	Debugger *debug.Debugger
	// Trace is the system's flight recorder; nil unless Config.TraceEvents
	// asked for one. The drive carries it to every layer of the storage
	// stack (trace.Of on any Device reaches it).
	Trace *trace.Recorder
}

// New builds a machine. With cfg.Drive nil, a fresh pack is formatted; with
// cfg.Drive set, the existing pack is mounted (scavenging it first if the
// descriptor is unreadable).
func New(cfg Config) (*System, error) {
	g := cfg.Geometry
	if g.Cylinders == 0 {
		g = disk.Diablo31()
	}
	display := cfg.Display
	if display == nil {
		display = os.Stdout
	}

	s := &System{Clock: sim.NewClock()}
	if cfg.TraceEvents != 0 {
		s.Trace = trace.New(cfg.TraceEvents)
	}
	var err error
	if cfg.Drive != nil {
		s.Drive = cfg.Drive
		s.Clock = cfg.Drive.Clock()
		if s.Trace != nil {
			s.Drive.SetRecorder(s.Trace)
		}
		s.FS, err = file.Mount(s.Drive)
		if err != nil {
			// The paper's answer to an unreadable disk: scavenge it.
			s.FS, _, err = scavenge.Run(s.Drive)
			if err != nil {
				return nil, fmt.Errorf("core: disk unusable even after scavenging: %w", err)
			}
		}
	} else {
		s.Drive, err = disk.NewDrive(g, cfg.Pack, s.Clock)
		if err != nil {
			return nil, err
		}
		if s.Trace != nil {
			s.Drive.SetRecorder(s.Trace)
		}
		s.FS, err = file.Format(s.Drive)
		if err != nil {
			return nil, err
		}
		if _, err := dir.InitRoot(s.FS); err != nil {
			return nil, err
		}
	}

	// The machine.
	s.Mem = mem.New()
	s.Levels = junta.New(s.Mem)

	// System free storage: a zone over the level-13 region.
	if err := s.rebuildZone(); err != nil {
		return nil, err
	}
	s.Keyboard = stream.NewKeyboard()
	s.OS = exec.NewOS(s.FS, s.Mem, s.Zone, s.Keyboard, stream.NewDisplay(display))
	// Level 3: the resident hint table for frequently-used files and the
	// user's name (§5).
	hints, err := exec.NewResidentHints(s.Mem, s.Levels)
	if err != nil {
		return nil, err
	}
	s.OS.Hints = hints
	s.CPU = cpu.New(s.Mem, s.Clock, s.OS)
	s.Loader = &exec.Loader{OS: s.OS}
	s.Exec = exec.NewExecutive(s.OS, s.CPU)
	s.Debugger = debug.New(s.OS, s.CPU)
	s.Debugger.Trace = s.Trace
	// "debug" drops into the Swat REPL on the standard streams — installed
	// as an extension command, the way any user package would add itself.
	s.Exec.InstallCommand("debug", func(e *exec.Executive, args []string) error {
		return s.Debugger.REPL(s.Keyboard, s.OS.Display)
	})
	// Route scavenge/compact through the System so the live FS adopts the
	// rebuilt state in place (the Executive's standalone built-ins would
	// otherwise swap OS.FS away from System.FS).
	s.Exec.InstallCommand("scavenge", func(e *exec.Executive, args []string) error {
		rep, err := s.Scavenge()
		if err != nil {
			return err
		}
		return stream.PutString(s.OS.Display, rep.String()+"\n")
	})
	s.Exec.InstallCommand("compact", func(e *exec.Executive, args []string) error {
		rep, err := s.Compact()
		if err != nil {
			return err
		}
		return stream.PutString(s.OS.Display, rep.String()+"\n")
	})

	// Wire the §3.6 recovery ladder: FV lookup through the directory graph,
	// then the Scavenger.
	s.FS.SetRecovery(file.Recovery{
		ResolveFV: dir.ResolveFV(s.FS),
		Scavenge: func() error {
			_, err := s.Scavenge()
			return err
		},
	})

	// Register the services the Junta can remove. Only the ones with real
	// in-memory state need hooks; the rest are accounting.
	s.Levels.Register(&junta.Service{
		Name:  "system free storage",
		Level: junta.LevelFreeStore,
		Teardown: func() {
			s.Zone = nil
			s.OS.Zone = nil
		},
		Restore: func() error {
			if err := s.rebuildZone(); err != nil {
				return err
			}
			s.OS.Zone = s.Zone
			return nil
		},
	})
	s.Levels.Register(&junta.Service{
		Name:  "keyboard streams",
		Level: junta.LevelKbdStream,
		// The buffer itself is level 2 and survives; only the stream object
		// is removed, and it is stateless.
		Restore: func() error { return nil },
	})
	return s, nil
}

// rebuildZone (re)creates the system free-storage zone over the level-13
// region.
func (s *System) rebuildZone() error {
	r, err := s.Levels.Region(junta.LevelFreeStore)
	if err != nil {
		return err
	}
	size := r.Size()
	if size > 0x7FFF {
		size = 0x7FFF
	}
	z, err := zone.New(s.Mem, r.Start, size)
	if err != nil {
		return err
	}
	z.SetTrace(s.Trace, s.Clock)
	s.Zone = z
	return nil
}

// Root opens the root directory.
func (s *System) Root() (*dir.Directory, error) { return dir.OpenRoot(s.FS) }

// CreateFile creates a file and enters it in the root directory.
func (s *System) CreateFile(name string) (*file.File, error) {
	root, err := s.Root()
	if err != nil {
		return nil, err
	}
	f, err := s.FS.Create(name)
	if err != nil {
		return nil, err
	}
	if err := root.Insert(name, f.FN()); err != nil {
		return nil, err
	}
	return f, nil
}

// OpenByName resolves a name anywhere in the directory graph and opens it.
func (s *System) OpenByName(name string) (*file.File, error) {
	fn, err := dir.ResolveName(s.FS, name)
	if err != nil {
		return nil, err
	}
	return s.FS.Open(fn)
}

// OpenStream opens a disk stream on a named file with the system zone —
// the defaulting the paper describes for the stream constructor's
// substrate parameters.
func (s *System) OpenStream(name string, mode stream.Mode) (*stream.DiskStream, error) {
	f, err := s.OpenByName(name)
	if err != nil {
		return nil, err
	}
	return stream.NewDisk(f, s.Zone, s.Mem, mode)
}

// CreateStream creates a named file and opens a write stream on it.
func (s *System) CreateStream(name string) (*stream.DiskStream, error) {
	f, err := s.CreateFile(name)
	if err != nil {
		return nil, err
	}
	return stream.NewDisk(f, s.Zone, s.Mem, stream.UpdateMode)
}

// Scavenge runs the Scavenger on the system's disk and adopts the rebuilt
// state into the live FS (same handle: open files keep working, their hints
// re-verified on next use).
func (s *System) Scavenge() (*scavenge.Report, error) {
	fs2, rep, err := scavenge.Run(s.Drive)
	if err != nil {
		return nil, err
	}
	if err := s.adopt(fs2); err != nil {
		return nil, err
	}
	return rep, nil
}

// Compact runs the compacting scavenger.
func (s *System) Compact() (*scavenge.CompactReport, error) {
	fs2, rep, err := scavenge.Compact(s.Drive)
	if err != nil {
		return nil, err
	}
	if err := s.adopt(fs2); err != nil {
		return nil, err
	}
	return rep, nil
}

// adopt folds a rebuilt FS into the live one without changing identity.
func (s *System) adopt(fs2 *file.FS) error {
	err := s.FS.AdoptDescriptor(fs2.Descriptor())
	s.FS.SetRootDir(fs2.RootDir())
	s.FS.SetDescriptorFN(fs2.DescriptorFN())
	return err
}

// SaveWorld writes the machine state as the boot image, so the next Boot
// resumes exactly here (§4's "saving the state of a running program that
// will be resumed each time the machine is bootstrapped").
func (s *System) SaveWorld() (file.FN, error) {
	return swap.WriteBoot(s.FS, s.CPU)
}

// Boot presses the bootstrap button: machine state restored from the fixed
// boot sector.
func (s *System) Boot() error {
	return swap.Boot(s.FS, s.CPU)
}

// TypeAhead queues keystrokes for the keyboard stream.
func (s *System) TypeAhead(text string) { s.Keyboard.TypeAhead(text) }

// RunExecutive runs the command interpreter until the type-ahead runs dry.
func (s *System) RunExecutive() error { return s.Exec.Run() }
