package core

import (
	"bytes"
	"testing"

	"altoos/internal/stream"
	"altoos/internal/trace"
)

// TestSystemTracing covers the Config.TraceEvents wiring: the system owns
// one recorder, the drive, zone and stream layers all emit into it, and the
// Swat REPL's stats command reaches the same recorder.
func TestSystemTracing(t *testing.T) {
	var out bytes.Buffer
	s, err := New(Config{Display: &out, TraceEvents: -1})
	if err != nil {
		t.Fatal(err)
	}
	if s.Trace == nil {
		t.Fatal("TraceEvents != 0 but the system owns no recorder")
	}
	w, err := s.CreateStream("traced.txt")
	if err != nil {
		t.Fatal(err)
	}
	if err := stream.PutString(w, "observed"); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	if s.Trace.Len() == 0 {
		t.Fatal("no events recorded for a traced file lifecycle")
	}
	for _, counter := range []string{"disk.ops", "stream.open", "stream.close"} {
		if s.Trace.Counter(counter) == 0 {
			t.Errorf("counter %s not incremented", counter)
		}
	}
	var sawKind [2]bool
	for _, ev := range s.Trace.Events() {
		switch ev.Kind {
		case trace.KindDiskOp:
			sawKind[0] = true
		case trace.KindStreamOpen:
			sawKind[1] = true
		}
	}
	if !sawKind[0] || !sawKind[1] {
		t.Errorf("missing event kinds: disk op %v, stream open %v", sawKind[0], sawKind[1])
	}
	if s.Debugger.Trace != s.Trace {
		t.Error("the debugger's stats command is not wired to the system recorder")
	}
}

// TestSystemTracingOff pins the default: zero TraceEvents means no recorder
// and the whole stack runs with nil hooks.
func TestSystemTracingOff(t *testing.T) {
	s, _ := newSys(t)
	if s.Trace != nil {
		t.Fatal("tracing should be off by default")
	}
	if s.Drive.TraceRecorder() != nil {
		t.Fatal("drive has a recorder with tracing off")
	}
}
