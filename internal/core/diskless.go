package core

import (
	"fmt"
	"io"
	"os"

	"altoos/internal/cpu"
	"altoos/internal/ether"
	"altoos/internal/exec"
	"altoos/internal/junta"
	"altoos/internal/mem"
	"altoos/internal/sim"
	"altoos/internal/stream"
	"altoos/internal/zone"
)

// Diskless is the §5.2 configuration: "The display, keyboard, and
// storage-allocation packages have been assembled to form an operating
// system for use without a disk, used to support diagnostics or other
// programs that depend on network communications rather than on local disk
// storage."
//
// It is the same packages — memory, zones, streams, CPU, levels — minus
// everything disk-shaped, plus a network station. That the system decomposes
// this way without special cases is the openness claim made executable.
type Diskless struct {
	Clock    *sim.Clock
	Mem      *mem.Memory
	CPU      *cpu.CPU
	Zone     *zone.MemZone
	Levels   *junta.Junta
	Keyboard *stream.Keyboard
	Display  stream.Stream
	Station  *ether.Station
}

// DisklessConfig selects the machine.
type DisklessConfig struct {
	// Display receives output; os.Stdout if nil.
	Display io.Writer
	// Network and Addr attach a station; both optional.
	Network *ether.Network
	Addr    ether.Addr
}

// NewDiskless builds a machine with no disk. Programs run from memory
// (deposited by the caller or received over the network); the SYS surface
// provides keyboard and display but returns failure for file operations,
// exactly as the diskless Alto's did.
func NewDiskless(cfg DisklessConfig) (*Diskless, error) {
	display := cfg.Display
	if display == nil {
		display = os.Stdout
	}
	d := &Diskless{
		Clock:    sim.NewClock(),
		Mem:      mem.New(),
		Keyboard: stream.NewKeyboard(),
		Display:  stream.NewDisplay(display),
	}
	d.Levels = junta.New(d.Mem)
	r, err := d.Levels.Region(junta.LevelFreeStore)
	if err != nil {
		return nil, err
	}
	size := r.Size()
	if size > 0x7FFF {
		size = 0x7FFF
	}
	d.Zone, err = zone.New(d.Mem, r.Start, size)
	if err != nil {
		return nil, err
	}
	if cfg.Network != nil {
		d.Clock = cfg.Network.Clock()
		st, err := cfg.Network.Attach(cfg.Addr)
		if err != nil {
			return nil, err
		}
		d.Station = st
	}
	d.CPU = cpu.New(d.Mem, d.Clock, cpu.SysFunc(d.sys))
	return d, nil
}

// sys is the diskless syscall surface: keyboard, display, halt; everything
// disk-shaped reports failure the way the full system reports a missing
// file, so the same binaries run in both worlds.
func (d *Diskless) sys(c *cpu.CPU, code uint16) error {
	switch code {
	case exec.SysHalt:
		return cpu.ErrHalted
	case exec.SysPutc:
		return d.Display.Put(byte(c.AC[0]))
	case exec.SysGetc:
		b, err := d.Keyboard.Get()
		if err != nil {
			c.AC[0] = 0xFFFF
			c.Carry = true
			return nil
		}
		c.AC[0] = uint16(b)
		c.Carry = false
		return nil
	case exec.SysOpenR, exec.SysOpenW:
		c.AC[0] = 0 // no disk: opens fail, programs take corrective action
		return nil
	case exec.SysGetb, exec.SysPutb, exec.SysClose,
		exec.SysOutLd, exec.SysInLd, exec.SysChain, exec.SysMsg:
		return fmt.Errorf("core: diskless machine: syscall %d needs a disk", code)
	}
	return fmt.Errorf("core: undefined syscall %d", code)
}

// LoadProgram deposits an assembled image into memory (the job the network
// boot loader did on real diskless Altos) and points the CPU at its entry.
func (d *Diskless) LoadProgram(origin uint16, words []uint16, entry uint16) {
	d.Mem.StoreBlock(origin, words)
	exec.InstallSysVec(d.Mem)
	d.CPU.Reset(entry)
}
