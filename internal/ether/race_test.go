package ether

import (
	"errors"
	"runtime"
	"sync"
	"testing"
)

// TestConcurrentSendRecv hammers the medium from many goroutines at once —
// the shape `go test -race` needs to certify the snapshot-then-deliver
// locking in Send. Every station unicasts to its ring successor while
// draining its own queue, so delivery counts and per-sender FIFO order are
// exactly checkable afterwards.
func TestConcurrentSendRecv(t *testing.T) {
	net := New(nil)
	const stations = 8
	const packets = 200
	sts := make([]*Station, stations)
	for i := range sts {
		s, err := net.Attach(Addr(i + 1))
		if err != nil {
			t.Fatal(err)
		}
		sts[i] = s
	}

	var wg sync.WaitGroup
	for i := range sts {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			dst := Addr((i+1)%stations + 1)
			for k := 0; k < packets; k++ {
				if err := sts[i].Send(Packet{Dst: dst, Type: Word(k), Payload: []Word{Word(i), Word(k)}}); err != nil {
					t.Errorf("station %d send %d: %v", i, k, err)
					return
				}
			}
		}(i)
		go func(i int) {
			defer wg.Done()
			// Single sender per receiver: Types must arrive 0..packets-1.
			for got := 0; got < packets; {
				p, ok := sts[i].Recv()
				if !ok {
					runtime.Gosched()
					continue
				}
				if int(p.Type) != got {
					t.Errorf("station %d: packet %d arrived with type %d", i, got, p.Type)
					return
				}
				got++
			}
		}(i)
	}
	wg.Wait()

	sent, words := net.Stats()
	if want := int64(stations * packets); sent != want {
		t.Errorf("stats report %d packets, want %d", sent, want)
	}
	if want := int64(stations * packets * (HeaderWords + 2)); words != want {
		t.Errorf("stats report %d words, want %d", words, want)
	}
	for i, s := range sts {
		if n := s.Pending(); n != 0 {
			t.Errorf("station %d still has %d packets queued", i, n)
		}
	}
}

// TestConcurrentAttachDetach churns stations on and off the medium while a
// stable station broadcasts: membership changes and delivery must never
// race, and a send from a detached station must fail cleanly rather than
// corrupt the medium.
func TestConcurrentAttachDetach(t *testing.T) {
	net := New(nil)
	talker, err := net.Attach(1)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(2)
	done := make(chan struct{})
	go func() {
		defer wg.Done()
		defer close(done)
		for k := 0; k < 300; k++ {
			if err := talker.Send(Packet{Dst: Broadcast, Type: Word(k)}); err != nil {
				t.Errorf("broadcast %d: %v", k, err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for addr := Addr(2); ; addr++ {
			select {
			case <-done:
				return
			default:
			}
			s, err := net.Attach(addr)
			if err != nil {
				t.Errorf("attach %d: %v", addr, err)
				return
			}
			for s.Pending() == 0 {
				select {
				case <-done:
				default:
					runtime.Gosched()
					continue
				}
				break
			}
			s.Detach()
			// Membership was snapshotted under the lock, so a send racing
			// the detach may still land in the queue; but a send FROM the
			// detached station must be refused.
			if err := s.Send(Packet{Dst: Broadcast}); !errors.Is(err, ErrNoStation) {
				t.Errorf("detached send: got %v, want ErrNoStation", err)
				return
			}
		}
	}()
	wg.Wait()
}
