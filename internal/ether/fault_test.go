package ether

import (
	"testing"
	"time"

	"altoos/internal/trace"
)

// faultPair builds a two-station network with a fault model attached.
func faultPair(t *testing.T, cfg FaultConfig) (*Network, *FaultMedium, *Station, *Station) {
	t.Helper()
	n := New(nil)
	f := n.InjectFaults(cfg)
	a, err := n.Attach(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Attach(2)
	if err != nil {
		t.Fatal(err)
	}
	return n, f, a, b
}

func TestForcedDrop(t *testing.T) {
	_, f, a, b := faultPair(t, FaultConfig{Force: map[int64]Fault{0: FaultDrop}})
	if err := a.Send(Packet{Dst: 2, Type: 1, Payload: []Word{7}}); err != nil {
		t.Fatal(err)
	}
	if _, ok := b.Recv(); ok {
		t.Fatal("dropped packet was delivered")
	}
	if err := a.Send(Packet{Dst: 2, Type: 1, Payload: []Word{8}}); err != nil {
		t.Fatal(err)
	}
	if p, ok := b.Recv(); !ok || p.Payload[0] != 8 {
		t.Fatalf("unforced delivery broken: %v %v", p, ok)
	}
	st := f.Stats()
	if st.Judged != 2 || st.Dropped != 1 {
		t.Fatalf("stats = %+v, want 2 judged 1 dropped", st)
	}
}

func TestForcedDupDeliversTwice(t *testing.T) {
	_, f, a, b := faultPair(t, FaultConfig{Force: map[int64]Fault{0: FaultDup}})
	if err := a.Send(Packet{Dst: 2, Type: 1, Payload: []Word{9}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		p, ok := b.Recv()
		if !ok || p.Payload[0] != 9 {
			t.Fatalf("copy %d: %v %v", i, p, ok)
		}
		if !p.SumOK() {
			t.Fatalf("copy %d fails its checksum", i)
		}
	}
	if _, ok := b.Recv(); ok {
		t.Fatal("more than two copies delivered")
	}
	if st := f.Stats(); st.Dupped != 1 {
		t.Fatalf("stats = %+v, want 1 dupped", st)
	}
}

// TestForcedCorruptIsDetectable is the checksum contract: the flipped bit
// lands after Check was stamped, so SumOK exposes the damage.
func TestForcedCorruptIsDetectable(t *testing.T) {
	_, f, a, b := faultPair(t, FaultConfig{Force: map[int64]Fault{0: FaultCorrupt}})
	if err := a.Send(Packet{Dst: 2, Type: 1, Payload: []Word{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	p, ok := b.Recv()
	if !ok {
		t.Fatal("corrupted packet must still be delivered")
	}
	if p.SumOK() {
		t.Fatal("corruption was not detectable: checksum still matches")
	}
	if st := f.Stats(); st.Corrupted != 1 {
		t.Fatalf("stats = %+v, want 1 corrupted", st)
	}
}

// TestForcedDelayHoldsUntilRelease: a delayed packet is invisible until the
// simulated clock passes arrival + DelayTime, then promotes on poll.
func TestForcedDelayHoldsUntilRelease(t *testing.T) {
	n, f, a, b := faultPair(t, FaultConfig{
		DelayTime: 5 * time.Millisecond,
		Force:     map[int64]Fault{0: FaultDelay},
	})
	if err := a.Send(Packet{Dst: 2, Type: 1, Payload: []Word{4}}); err != nil {
		t.Fatal(err)
	}
	if got := b.Pending(); got != 0 {
		t.Fatalf("delayed packet visible immediately: Pending = %d", got)
	}
	n.Clock().Advance(5 * time.Millisecond)
	if got := b.Pending(); got != 1 {
		t.Fatalf("delayed packet not promoted after release: Pending = %d", got)
	}
	if p, ok := b.Recv(); !ok || p.Payload[0] != 4 || !p.SumOK() {
		t.Fatalf("promoted packet broken: %v %v", p, ok)
	}
	if st := f.Stats(); st.Delayed != 1 {
		t.Fatalf("stats = %+v, want 1 delayed", st)
	}
}

// TestFaultsAreSeededDeterministic: two networks with equal seeds and equal
// workloads make identical fault decisions; a different seed diverges.
func TestFaultsAreSeededDeterministic(t *testing.T) {
	run := func(seed uint64) FaultStats {
		_, f, a, b := faultPair(t, FaultConfig{
			Seed:    seed,
			Drop:    Rate{Num: 1, Den: 4},
			Dup:     Rate{Num: 1, Den: 8},
			Corrupt: Rate{Num: 1, Den: 8},
		})
		for i := 0; i < 200; i++ {
			if err := a.Send(Packet{Dst: 2, Type: 1, Payload: []Word{Word(i & 0xFFFF)}}); err != nil {
				t.Fatal(err)
			}
			for {
				if _, ok := b.Recv(); !ok {
					break
				}
			}
		}
		return f.Stats()
	}
	first, again := run(3), run(3)
	if first != again {
		t.Fatalf("same seed diverged: %+v vs %+v", first, again)
	}
	if first.Dropped == 0 || first.Dupped == 0 || first.Corrupted == 0 {
		t.Fatalf("rates never fired across 200 sends: %+v", first)
	}
	if other := run(4); other == first {
		t.Fatalf("different seed produced identical faults: %+v", other)
	}
}

// TestZeroRatesConsumeNoRandomness: adding a zero-rate class must not shift
// the PRNG sequence of the classes that are on.
func TestZeroRatesConsumeNoRandomness(t *testing.T) {
	run := func(cfg FaultConfig) FaultStats {
		_, f, a, b := faultPair(t, cfg)
		for i := 0; i < 100; i++ {
			if err := a.Send(Packet{Dst: 2, Type: 1, Payload: []Word{1}}); err != nil {
				t.Fatal(err)
			}
			for {
				if _, ok := b.Recv(); !ok {
					break
				}
			}
		}
		return f.Stats()
	}
	dropOnly := run(FaultConfig{Seed: 9, Drop: Rate{Num: 1, Den: 3}})
	withZeros := run(FaultConfig{Seed: 9, Drop: Rate{Num: 1, Den: 3}, Dup: Rate{}, Delay: Rate{Num: 0, Den: 5}})
	if dropOnly.Dropped != withZeros.Dropped {
		t.Fatalf("zero rates perturbed the PRNG: %d vs %d drops", dropOnly.Dropped, withZeros.Dropped)
	}
}

// TestFaultCountersTraced: the medium's verdicts show up as trace counters —
// the evidence E10 cites.
func TestFaultCountersTraced(t *testing.T) {
	n, _, a, b := faultPair(t, FaultConfig{Force: map[int64]Fault{
		0: FaultDrop, 1: FaultDup, 2: FaultCorrupt, 3: FaultDelay,
	}})
	rec := trace.New(64)
	n.SetRecorder(rec)
	for i := 0; i < 4; i++ {
		if err := a.Send(Packet{Dst: 2, Type: 1, Payload: []Word{Word(i & 0xFFFF)}}); err != nil {
			t.Fatal(err)
		}
	}
	for {
		if _, ok := b.Recv(); !ok {
			break
		}
	}
	for name, want := range map[string]int64{
		"ether.drop": 1, "ether.dup": 1, "ether.corrupt": 1, "ether.delay": 1,
	} {
		if got := rec.Counter(name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
}

// TestClearFaultsRestoresPerfection.
func TestClearFaults(t *testing.T) {
	n, f, a, b := faultPair(t, FaultConfig{Drop: Rate{Num: 1, Den: 1}})
	if err := a.Send(Packet{Dst: 2, Type: 1, Payload: []Word{1}}); err != nil {
		t.Fatal(err)
	}
	if _, ok := b.Recv(); ok {
		t.Fatal("certain drop delivered anyway")
	}
	n.ClearFaults()
	if err := a.Send(Packet{Dst: 2, Type: 1, Payload: []Word{2}}); err != nil {
		t.Fatal(err)
	}
	if p, ok := b.Recv(); !ok || p.Payload[0] != 2 {
		t.Fatalf("perfect medium not restored: %v %v", p, ok)
	}
	if st := f.Stats(); st.Judged != 1 {
		t.Fatalf("detached medium kept judging: %+v", st)
	}
}
