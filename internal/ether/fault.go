package ether

// The fault model. The paper's openness story (§1) standardizes only the
// *representation* of packets on the wire — nothing above it may assume the
// wire is kind. A real 3 Mb/s experimental Ethernet dropped packets on
// collisions, delivered late under load, and occasionally flipped bits; the
// software living on it (PUP, EFTP) was shaped by exactly those faults.
// FaultMedium reproduces them deterministically: every verdict comes from a
// seeded sim.Rand and every delay is measured on the shared simulated
// clock, never wall time, so a run with faults replays byte-identically.

import (
	"time"

	"altoos/internal/sim"
)

// Rate is a probability Num/Den. The zero Rate never fires and consumes no
// randomness, so unused fault classes do not perturb the PRNG sequence.
type Rate struct {
	Num, Den int
}

func (r Rate) zero() bool { return r.Num <= 0 }

// Fault names one forced fault class, for scripted injection in tests.
type Fault uint8

const (
	// FaultNone delivers the packet untouched.
	FaultNone Fault = iota
	// FaultDrop loses the delivery.
	FaultDrop
	// FaultDup delivers the packet twice.
	FaultDup
	// FaultCorrupt flips one payload bit (detectable via Packet.SumOK).
	FaultCorrupt
	// FaultDelay holds the delivery for the configured DelayTime.
	FaultDelay
)

// FaultConfig parameterizes a FaultMedium. All rates are per delivery
// attempt (one verdict per destination per send, judged in address order).
type FaultConfig struct {
	// Seed seeds the verdict PRNG; runs with equal seeds and workloads
	// replay identically.
	Seed uint64
	// Drop, Dup, Corrupt and Delay are the per-delivery fault rates.
	Drop, Dup, Corrupt, Delay Rate
	// DelayTime is how long a delayed packet is held past its arrival
	// (default 2 ms of simulated time). Held packets can overtake later
	// sends — the one reordering source on this medium.
	DelayTime time.Duration
	// Force overrides the dice for specific delivery attempts: Force[i]
	// is applied to the i-th judged delivery (0-based). Keyed lookups
	// only — tests use it to lose exactly the packet they mean to.
	Force map[int64]Fault
}

// DefaultDelay is the held time for delayed packets when the config gives
// none.
const DefaultDelay = 2 * time.Millisecond

// FaultMedium injects faults into a Network's delivery path. Attach with
// Network.InjectFaults; the zero value is not valid.
type FaultMedium struct {
	// Guarded by the owning Network's mu: judge is only called from Send
	// with the lock held.
	cfg    FaultConfig
	shared faultStream
	// streams holds the per-sender verdict streams used in fleet mode,
	// where concurrent senders would otherwise interleave draws from the
	// shared PRNG in host order. Each sender's stream is seeded from the
	// config seed and the sender's address, and is consumed only in that
	// sender's program order — keyed lookups only, never ranged.
	streams map[Addr]*faultStream
	stats   FaultStats
}

// faultStream is one deterministic verdict sequence: a seeded PRNG plus the
// count of verdicts drawn from it (the index Force keys against).
type faultStream struct {
	rnd    *sim.Rand
	judged int64
}

// streamFor returns the verdict stream for one sender, creating it on first
// use. Derivation folds the address into the seed with the 64-bit golden
// ratio so adjacent addresses get well-separated sequences.
func (f *FaultMedium) streamFor(src Addr) *faultStream {
	if st, ok := f.streams[src]; ok {
		return st
	}
	st := &faultStream{rnd: sim.NewRand(f.cfg.Seed ^ (uint64(src)+1)*0x9E3779B97F4A7C15)}
	f.streams[src] = st
	return st
}

// FaultStats counts what the medium actually did.
type FaultStats struct {
	Judged    int64 // delivery attempts seen
	Dropped   int64
	Dupped    int64
	Corrupted int64
	Delayed   int64
}

// InjectFaults attaches a fault model to the medium (replacing any previous
// one) and returns it. A nil config detaches: see ClearFaults.
func (n *Network) InjectFaults(cfg FaultConfig) *FaultMedium {
	if cfg.DelayTime <= 0 {
		cfg.DelayTime = DefaultDelay
	}
	f := &FaultMedium{
		cfg:     cfg,
		shared:  faultStream{rnd: sim.NewRand(cfg.Seed)},
		streams: map[Addr]*faultStream{},
	}
	n.mu.Lock()
	n.fault = f
	n.mu.Unlock()
	return f
}

// ClearFaults restores the perfect medium.
func (n *Network) ClearFaults() {
	n.mu.Lock()
	n.fault = nil
	n.mu.Unlock()
}

// Stats returns a snapshot of the fault counters.
func (f *FaultMedium) Stats() FaultStats {
	// Taking the network lock is the owner's business; stats are read
	// between polls in a single-activity world, and torn reads of int64s
	// on a live run are acceptable for diagnostics. Tests read quiesced.
	return f.stats
}

// verdict is one delivery's fate.
type verdict struct {
	idx     int64 // which judged delivery this was (0-based), for trace events
	drop    bool
	dup     bool
	corrupt bool
	delay   time.Duration
	// bit to flip when corrupt: word index (mod payload length) and bit.
	word, bit int
}

// judge rolls the dice for one delivery attempt. Called under the owning
// Network's mu, in destination-address order — the two facts that make the
// PRNG sequence, and so the whole fault pattern, reproducible. In the
// shared-clock model every verdict comes from one stream in global send
// order; with perSender set (fleet mode) each sender consumes its own
// derived stream in its own program order, which is deterministic even when
// senders execute concurrently on the host.
func (f *FaultMedium) judge(src Addr, perSender bool, payloadWords int) verdict {
	st := &f.shared
	if perSender {
		st = f.streamFor(src)
	}
	idx := st.judged
	st.judged++
	f.stats.Judged++
	if forced, ok := f.cfg.Force[idx]; ok {
		v := f.forcedVerdict(st, forced, payloadWords)
		v.idx = idx
		return v
	}
	v := verdict{idx: idx}
	if st.roll(f.cfg.Drop) {
		v.drop = true
		f.stats.Dropped++
		return v
	}
	if st.roll(f.cfg.Dup) {
		v.dup = true
		f.stats.Dupped++
	}
	if st.roll(f.cfg.Corrupt) {
		v.corrupt = true
		st.aimBit(&v, payloadWords)
		f.stats.Corrupted++
	}
	if st.roll(f.cfg.Delay) {
		v.delay = f.cfg.DelayTime
		f.stats.Delayed++
	}
	return v
}

// forcedVerdict builds the verdict for a scripted fault.
func (f *FaultMedium) forcedVerdict(st *faultStream, forced Fault, payloadWords int) verdict {
	var v verdict
	switch forced {
	case FaultDrop:
		v.drop = true
		f.stats.Dropped++
	case FaultDup:
		v.dup = true
		f.stats.Dupped++
	case FaultCorrupt:
		v.corrupt = true
		st.aimBit(&v, payloadWords)
		f.stats.Corrupted++
	case FaultDelay:
		v.delay = f.cfg.DelayTime
		f.stats.Delayed++
	}
	return v
}

// roll draws one boolean at the given rate; zero rates draw nothing.
func (st *faultStream) roll(r Rate) bool {
	if r.zero() {
		return false
	}
	return st.rnd.Bool(r.Num, r.Den)
}

// aimBit picks which bit corruption flips.
func (st *faultStream) aimBit(v *verdict, payloadWords int) {
	v.bit = st.rnd.Intn(16)
	if payloadWords > 0 {
		v.word = st.rnd.Intn(payloadWords)
	}
}

// mangle applies the verdict's bit flip to the delivered copy. The copy's
// Check word was computed before the flip, so the damage is detectable —
// exactly the guarantee a checksum buys on a real wire.
func (v verdict) mangle(p *Packet) {
	if len(p.Payload) > 0 {
		p.Payload[v.word] ^= 1 << v.bit
	} else {
		p.Type ^= 1 << v.bit
	}
}
