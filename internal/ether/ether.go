// Package ether simulates the experimental 3 Mb/s Ethernet the Alto was
// attached to. The paper standardizes "the representation ... of packets on
// the network" below all software (§1) and uses the network in its
// activity-switching example (§4): a printing server whose spooler task
// accepts files from the network while its printer task runs.
//
// The model is a broadcast medium: every station sees every packet
// (filtering on the destination address), transmission charges the shared
// virtual clock at the wire rate, and stations poll their input queues —
// there are no interrupts beyond the keyboard on this machine.
package ether

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"altoos/internal/sim"
	"altoos/internal/trace"
)

// Word is the unit of packet payloads, as everywhere in the system.
type Word = uint16

// Addr is a station address. Address 0 broadcasts.
type Addr = uint16

// Broadcast is the all-stations destination.
const Broadcast Addr = 0

// WireTime is the serialization time per 16-bit word at 3 Mb/s
// (16 bits / 3,000,000 bits per second ≈ 5.33 µs).
const WireTime = 16 * time.Second / 3_000_000

// HeaderWords is the packet header size on the wire (dst, src, type, check).
const HeaderWords = 4

// MinLatency is the shortest possible gap between a send starting and any
// station observing its arrival: the serialization time of a bare header.
// It is the lookahead bound of conservative parallel simulation — two
// machines whose next events are closer together than MinLatency cannot be
// run concurrently without risking a causality violation, and two that are
// farther apart can.
const MinLatency = HeaderWords * WireTime

// MaxPayload bounds a packet to roughly the Alto's packet buffer: one page.
const MaxPayload = 256

// Packet is the standardized wire representation: destination, source, a
// type word, a checksum word, and up to a page of payload words.
//
// Flow is a trace sideband, not a wire field: the reliable transport carries
// its causal flow ID as a word *inside* its payload header (charged and
// checksummed there) and mirrors it here so the medium can stamp its own
// send/receive/fault events onto the flow without parsing payloads. It adds
// no serialization time and does not enter Sum.
type Packet struct {
	Dst     Addr
	Src     Addr
	Type    Word
	Check   Word // filled by Send; verify with SumOK after Recv
	Flow    Word // trace sideband: the transport's causal flow ID, 0 = none
	Payload []Word
}

// Sum computes the packet's checksum word: a ones-complement fold over the
// header and payload, PUP-style. The checksum is what makes corruption on a
// faulty medium *detectable* rather than silent — a reliable transport
// drops a packet whose recorded Check no longer matches and lets
// retransmission repair the loss.
func (p Packet) Sum() Word {
	s := uint32(p.Dst) + uint32(p.Src) + uint32(p.Type) + uint32(len(p.Payload)&0xFFFF)
	for _, w := range p.Payload {
		s += uint32(w)
	}
	for s > 0xFFFF {
		s = (s & 0xFFFF) + (s >> 16)
	}
	return ^Word(s & 0xFFFF)
}

// SumOK reports whether the packet's recorded checksum matches its content.
func (p Packet) SumOK() bool { return p.Check == p.Sum() }

// Errors.
var (
	// ErrTooBig reports a payload over MaxPayload words.
	ErrTooBig = errors.New("ether: packet too big")
	// ErrNoStation reports a send from an unattached station.
	ErrNoStation = errors.New("ether: station not attached")
	// ErrAddrInUse reports a duplicate station address.
	ErrAddrInUse = errors.New("ether: address in use")
)

// Network is the shared medium.
type Network struct {
	mu       sync.Mutex
	clock    *sim.Clock
	stations map[Addr]*Station
	// order holds the attached stations sorted by address. Broadcast
	// delivery and fault-verdict draws walk this slice, never the map, so
	// fan-out order is (address, arrival sequence) by construction — it
	// cannot regress to map iteration order when stations join dynamically.
	order []*Station
	sent  int64
	words int64

	// rec is the attached flight recorder (nil: tracing off). busyUntil is
	// the simulated time the wire frees up; a send that begins earlier is
	// recorded as a collision. The probe is bookkeeping only — the medium
	// still delivers every packet, it just becomes visible in the trace
	// that two stations contended for the wire.
	rec       *trace.Recorder
	busyUntil time.Duration

	// fault is the attached fault model (nil: the perfect medium). Verdicts
	// are drawn under mu, in address order, so the PRNG consumption order —
	// and with it every drop, dup, delay and bit-flip — replays exactly.
	fault *FaultMedium

	// fleet switches the medium into fleet mode: stations run on their own
	// clocks, every delivery is a scheduled event released at its arrival
	// time, fault verdicts come from per-sender PRNG streams, and wire
	// trace events land on the *sender's* recorder. horizon is the current
	// lockstep window's upper bound: no station observes an arrival at or
	// beyond it, which is what makes delivery independent of how machine
	// executions interleave on the host. See internal/fleet.
	fleet   bool
	horizon atomic.Int64 // window horizon in ns; only consulted in fleet mode
}

// SetFleetMode switches the medium between the shared-clock single-machine
// model (false, the default) and the fleet event model (true). In fleet
// mode the collision probe and queue-depth gauge are off — both read
// cross-machine state whose momentary value depends on host interleaving —
// and the delivery horizon starts unbounded until a scheduler sets it.
func (n *Network) SetFleetMode(on bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.fleet = on
	n.horizon.Store(int64(^uint64(0) >> 1)) // unbounded until SetHorizon
}

// SetHorizon publishes the current lockstep window's upper bound. Stations
// only promote deliveries whose arrival time is strictly below it, so a
// machine whose local clock has raced past the window cannot observe a
// packet that a concurrently executing machine may or may not have sent yet.
func (n *Network) SetHorizon(t time.Duration) {
	n.horizon.Store(int64(t))
}

// SetRecorder attaches a flight recorder to the medium (nil detaches).
func (n *Network) SetRecorder(r *trace.Recorder) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.rec = r
}

// TraceRecorder implements trace.Source.
func (n *Network) TraceRecorder() *trace.Recorder {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.rec
}

// New creates a network advancing clock (nil for a private clock).
func New(clock *sim.Clock) *Network {
	if clock == nil {
		clock = sim.NewClock()
	}
	return &Network{clock: clock, stations: map[Addr]*Station{}}
}

// Clock returns the network's clock.
func (n *Network) Clock() *sim.Clock { return n.clock }

// Stats returns packets and words carried so far.
func (n *Network) Stats() (packets, words int64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.sent, n.words
}

// Station is one attachment point: an input queue plus the network.
type Station struct {
	net  *Network
	addr Addr

	// clk is the station's own clock in fleet mode (nil: the network's
	// shared clock). txSeq counts this station's sends; it is guarded by
	// the *network* mutex because it is assigned on the send path, and it
	// orders same-arrival-time deliveries from the same sender.
	clk   *sim.Clock
	txSeq uint64

	mu   sync.Mutex
	in   []Packet
	held []heldPacket // scheduled deliveries awaiting their release time
	rec  *trace.Recorder
}

// heldPacket is a delivery awaiting its release time: fault-delayed packets
// in the shared-clock model, every delivery in fleet mode. It joins the
// input queue the first time the station polls at or after release, in
// (release, source address, sender sequence) order.
type heldPacket struct {
	release time.Duration
	src     Addr
	seq     uint64 // the sender's txSeq for this packet
	pkt     Packet
}

// SetRecorder gives the station its own flight recorder (nil reverts to the
// medium's). In a fleet, each machine's station records into that machine's
// recorder while the shared wire keeps its own — the split that lets
// internal/scope merge per-machine timelines into one multi-process trace.
func (s *Station) SetRecorder(r *trace.Recorder) {
	s.mu.Lock()
	s.rec = r
	s.mu.Unlock()
}

// TraceRecorder implements trace.Source: the station's own recorder when one
// is attached, else the medium's, so layers built over stations (the
// reliable transport, the file server) trace without new plumbing. The two
// locks are taken in sequence, never nested — the network lock must not
// nest inside a station lock.
func (s *Station) TraceRecorder() *trace.Recorder {
	s.mu.Lock()
	r := s.rec
	s.mu.Unlock()
	if r != nil {
		return r
	}
	return s.net.TraceRecorder()
}

// Clock returns the station's clock: its own in fleet mode, else the shared
// network clock.
func (s *Station) Clock() *sim.Clock {
	if s.clk != nil {
		return s.clk
	}
	return s.net.clock
}

// SetClock gives the station its own clock, making sends and receives charge
// and read that machine's time instead of the network's. Set it before any
// traffic; in a fleet each machine's station is bound to that machine's
// clock at build time.
func (s *Station) SetClock(c *sim.Clock) { s.clk = c }

// Attach adds a station at addr (which must be nonzero and unused).
func (n *Network) Attach(addr Addr) (*Station, error) {
	if addr == Broadcast {
		return nil, fmt.Errorf("%w: 0 is the broadcast address", ErrAddrInUse)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.stations[addr]; dup {
		return nil, fmt.Errorf("%w: %d", ErrAddrInUse, addr)
	}
	s := &Station{net: n, addr: addr}
	n.stations[addr] = s
	at := sort.Search(len(n.order), func(i int) bool { return n.order[i].addr > addr })
	n.order = append(n.order, nil)
	copy(n.order[at+1:], n.order[at:])
	n.order[at] = s
	return s, nil
}

// Detach removes the station from the medium.
func (s *Station) Detach() {
	s.net.mu.Lock()
	defer s.net.mu.Unlock()
	delete(s.net.stations, s.addr)
	for i, st := range s.net.order {
		if st == s {
			s.net.order = append(s.net.order[:i], s.net.order[i+1:]...)
			break
		}
	}
}

// Addr returns the station's address.
func (s *Station) Addr() Addr { return s.addr }

// Send transmits a packet (source filled in), charging wire time against
// the sender's clock.
func (s *Station) Send(p Packet) error {
	if len(p.Payload) > MaxPayload {
		return fmt.Errorf("%w: %d words", ErrTooBig, len(p.Payload))
	}
	p.Src = s.addr
	// Snapshot the sender's recorder before taking the network lock (the
	// network lock never nests inside a station lock); fleet mode stamps
	// wire events onto the sending machine's timeline.
	srec := s.TraceRecorder()
	clock := s.Clock()
	n := s.net
	n.mu.Lock()
	if n.stations[s.addr] != s {
		n.mu.Unlock()
		return ErrNoStation
	}
	fleet := n.fleet
	n.sent++
	n.words += int64(len(p.Payload) + HeaderWords)
	wireWords := len(p.Payload) + HeaderWords
	dur := time.Duration(wireWords) * WireTime
	start := clock.Now()
	s.txSeq++
	seq := s.txSeq
	rec := n.rec
	if fleet {
		rec = srec
	}
	if rec != nil {
		// The collision probe compares against the last send's end time,
		// cross-machine state that is only meaningful on a shared clock;
		// in fleet mode the stations' clocks are mutually unordered, so
		// the probe is off.
		if !fleet {
			if start < n.busyUntil {
				rec.EmitFlow(start, trace.KindEtherCollision, "", int64(p.Dst), int64(s.addr), int64(p.Flow))
				rec.Add("ether.collision", 1)
			}
			if end := start + dur; end > n.busyUntil {
				n.busyUntil = end
			}
		}
		rec.EmitSpanFlow(start, dur, trace.KindEtherSend, "", int64(p.Dst), int64(wireWords), int64(p.Flow))
		rec.Add("ether.send", 1)
		rec.Add("ether.words", int64(wireWords))
	}
	// Copy the payload (the wire serializes, it does not alias) and stamp
	// the checksum word over the serialized content.
	cp := p
	cp.Payload = append([]Word(nil), p.Payload...)
	cp.Check = cp.Sum()
	// Destinations in address order: n.order is maintained sorted, so the
	// fan-out — and with it the fault model's verdict draw order — is
	// (address, arrival sequence) by construction.
	var dsts []*Station
	for _, st := range n.order {
		if st == s {
			continue
		}
		if p.Dst == Broadcast || p.Dst == st.addr {
			dsts = append(dsts, st)
		}
	}
	arrive := start + dur
	dels := make([]delivery, 0, len(dsts))
	for _, st := range dsts {
		d := delivery{st: st, pkt: cp, copies: 1}
		if n.fault != nil {
			v := n.fault.judge(s.addr, fleet, len(cp.Payload))
			// Every non-clean verdict lands on the wire's timeline as an
			// instant stamped with the packet's flow: injected loss stays
			// on the causal chain instead of vanishing between send and a
			// retransmit that seems to come from nowhere.
			if v.drop {
				rec.EmitFlow(start, trace.KindEtherFault, "drop", int64(st.addr), v.idx, int64(cp.Flow))
				rec.Add("ether.drop", 1)
				continue
			}
			if v.dup {
				d.copies = 2
				rec.EmitFlow(start, trace.KindEtherFault, "dup", int64(st.addr), v.idx, int64(cp.Flow))
				rec.Add("ether.dup", 1)
			}
			if v.corrupt {
				d.pkt.Payload = append([]Word(nil), cp.Payload...)
				v.mangle(&d.pkt)
				rec.EmitFlow(start, trace.KindEtherFault, "corrupt", int64(st.addr), v.idx, int64(cp.Flow))
				rec.Add("ether.corrupt", 1)
			}
			if v.delay > 0 {
				d.release = arrive + v.delay
				rec.EmitFlow(start, trace.KindEtherFault, "delay", int64(st.addr), v.idx, int64(cp.Flow))
				rec.Add("ether.delay", 1)
			}
		}
		dels = append(dels, d)
	}
	n.mu.Unlock()

	clock.Advance(dur)
	for _, d := range dels {
		release := d.release
		if fleet && release == 0 {
			// Fleet mode: every delivery is a scheduled event released at
			// its arrival time. The receiver — on its own clock — promotes
			// it when its time passes arrival, never earlier, so delivery
			// does not depend on which machine's code ran first on the host.
			release = arrive
		}
		d.st.mu.Lock()
		for c := 0; c < d.copies; c++ {
			if release > 0 {
				d.st.held = append(d.st.held, heldPacket{release: release, src: s.addr, seq: seq, pkt: d.pkt})
			} else {
				d.st.in = append(d.st.in, d.pkt)
			}
		}
		depth := len(d.st.in)
		d.st.mu.Unlock()
		if !fleet {
			// The queue-depth gauge reads the receiver's momentary backlog,
			// which under concurrent senders depends on host interleaving.
			rec.Observe("ether.queue.depth", float64(depth))
		}
	}
	return nil
}

// delivery is one destination's share of a send, after the fault model has
// spoken: how many copies, possibly corrupted, possibly held until release.
type delivery struct {
	st      *Station
	pkt     Packet
	copies  int
	release time.Duration
}

// promoteLocked moves held packets whose release time has passed into the
// input queue, in (release, source address, sender sequence) order — a
// total order over deliveries that does not depend on the order concurrent
// senders appended them. In fleet mode a packet additionally stays held
// until the lockstep window's horizon covers its arrival, so a machine
// whose clock overran the window cannot observe a racing delivery.
// Caller holds s.mu.
func (s *Station) promoteLocked(now time.Duration) {
	if len(s.held) == 0 {
		return
	}
	limit := now
	s.net.fleetLimit(&limit)
	var due []heldPacket
	kept := s.held[:0]
	for _, h := range s.held {
		if h.release <= limit {
			due = append(due, h)
		} else {
			kept = append(kept, h)
		}
	}
	s.held = kept
	sort.Slice(due, func(i, j int) bool {
		a, b := due[i], due[j]
		if a.release != b.release {
			return a.release < b.release
		}
		if a.src != b.src {
			return a.src < b.src
		}
		return a.seq < b.seq
	})
	for _, h := range due {
		s.in = append(s.in, h.pkt)
	}
}

// fleetLimit caps *limit at just below the window horizon when the medium
// is in fleet mode. In the shared-clock model the limit is the caller's
// clock reading, untouched.
func (n *Network) fleetLimit(limit *time.Duration) {
	if !n.fleet {
		return
	}
	if h := time.Duration(n.horizon.Load()); h-1 < *limit {
		*limit = h - 1 // strictly below the horizon
	}
}

// EarliestArrival reports the earliest observable or scheduled delivery on
// the station: zero (and true) if packets are already queued, else the
// minimum release time among held deliveries. The fleet scheduler reads it
// at every window barrier to wake machines that are blocked waiting for
// traffic.
func (s *Station) EarliestArrival() (time.Duration, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.in) > 0 {
		return 0, true
	}
	var best time.Duration
	ok := false
	for _, h := range s.held {
		if !ok || h.release < best {
			best, ok = h.release, true
		}
	}
	return best, ok
}

// Recv polls the input queue, returning the oldest packet if any. The
// delivery is recorded on the station's own recorder when one is attached —
// in a fleet, arrivals belong to the receiving machine's timeline.
func (s *Station) Recv() (Packet, bool) {
	// Snapshot the recorder before taking s.mu: the network lock never
	// nests inside a station lock.
	rec := s.TraceRecorder()
	now := s.Clock().Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.promoteLocked(now)
	if len(s.in) == 0 {
		return Packet{}, false
	}
	p := s.in[0]
	s.in = s.in[1:]
	if rec != nil {
		rec.EmitFlow(now, trace.KindEtherRecv, "", int64(p.Src), int64(len(p.Payload)+HeaderWords), int64(p.Flow))
		rec.Add("ether.recv", 1)
	}
	return p, true
}

// Pending reports queued packet count (fault-delayed packets count once
// their release time has passed).
func (s *Station) Pending() int {
	now := s.Clock().Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.promoteLocked(now)
	return len(s.in)
}

// PackString converts a string into payload words (length-prefixed, two
// bytes per word) and back — the standardized representation both ends
// share regardless of their implementation language (§1).
func PackString(str string) []Word {
	if len(str) > 2*MaxPayload-2 {
		str = str[:2*MaxPayload-2]
	}
	out := make([]Word, 1+(len(str)+1)/2)
	out[0] = Word(len(str))
	for i := 0; i < len(str); i++ {
		if i%2 == 0 {
			out[1+i/2] |= Word(str[i]) << 8
		} else {
			out[1+i/2] |= Word(str[i])
		}
	}
	return out
}

// UnpackString is the inverse of PackString.
func UnpackString(w []Word) (string, error) {
	if len(w) == 0 {
		return "", errors.New("ether: empty payload")
	}
	n := int(w[0])
	if 1+(n+1)/2 > len(w) {
		return "", fmt.Errorf("ether: truncated string: %d bytes in %d words", n, len(w))
	}
	buf := make([]byte, n)
	for i := 0; i < n; i++ {
		word := w[1+i/2]
		if i%2 == 0 {
			buf[i] = byte(word >> 8)
		} else {
			buf[i] = byte(word)
		}
	}
	return string(buf), nil
}
