// Package ether simulates the experimental 3 Mb/s Ethernet the Alto was
// attached to. The paper standardizes "the representation ... of packets on
// the network" below all software (§1) and uses the network in its
// activity-switching example (§4): a printing server whose spooler task
// accepts files from the network while its printer task runs.
//
// The model is a broadcast medium: every station sees every packet
// (filtering on the destination address), transmission charges the shared
// virtual clock at the wire rate, and stations poll their input queues —
// there are no interrupts beyond the keyboard on this machine.
package ether

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"altoos/internal/sim"
	"altoos/internal/trace"
)

// Word is the unit of packet payloads, as everywhere in the system.
type Word = uint16

// Addr is a station address. Address 0 broadcasts.
type Addr = uint16

// Broadcast is the all-stations destination.
const Broadcast Addr = 0

// WireTime is the serialization time per 16-bit word at 3 Mb/s
// (16 bits / 3,000,000 bits per second ≈ 5.33 µs).
const WireTime = 16 * time.Second / 3_000_000

// HeaderWords is the packet header size on the wire (dst, src, type, check).
const HeaderWords = 4

// MaxPayload bounds a packet to roughly the Alto's packet buffer: one page.
const MaxPayload = 256

// Packet is the standardized wire representation: destination, source, a
// type word, a checksum word, and up to a page of payload words.
//
// Flow is a trace sideband, not a wire field: the reliable transport carries
// its causal flow ID as a word *inside* its payload header (charged and
// checksummed there) and mirrors it here so the medium can stamp its own
// send/receive/fault events onto the flow without parsing payloads. It adds
// no serialization time and does not enter Sum.
type Packet struct {
	Dst     Addr
	Src     Addr
	Type    Word
	Check   Word // filled by Send; verify with SumOK after Recv
	Flow    Word // trace sideband: the transport's causal flow ID, 0 = none
	Payload []Word
}

// Sum computes the packet's checksum word: a ones-complement fold over the
// header and payload, PUP-style. The checksum is what makes corruption on a
// faulty medium *detectable* rather than silent — a reliable transport
// drops a packet whose recorded Check no longer matches and lets
// retransmission repair the loss.
func (p Packet) Sum() Word {
	s := uint32(p.Dst) + uint32(p.Src) + uint32(p.Type) + uint32(len(p.Payload)&0xFFFF)
	for _, w := range p.Payload {
		s += uint32(w)
	}
	for s > 0xFFFF {
		s = (s & 0xFFFF) + (s >> 16)
	}
	return ^Word(s & 0xFFFF)
}

// SumOK reports whether the packet's recorded checksum matches its content.
func (p Packet) SumOK() bool { return p.Check == p.Sum() }

// Errors.
var (
	// ErrTooBig reports a payload over MaxPayload words.
	ErrTooBig = errors.New("ether: packet too big")
	// ErrNoStation reports a send from an unattached station.
	ErrNoStation = errors.New("ether: station not attached")
	// ErrAddrInUse reports a duplicate station address.
	ErrAddrInUse = errors.New("ether: address in use")
)

// Network is the shared medium.
type Network struct {
	mu       sync.Mutex
	clock    *sim.Clock
	stations map[Addr]*Station
	sent     int64
	words    int64

	// rec is the attached flight recorder (nil: tracing off). busyUntil is
	// the simulated time the wire frees up; a send that begins earlier is
	// recorded as a collision. The probe is bookkeeping only — the medium
	// still delivers every packet, it just becomes visible in the trace
	// that two stations contended for the wire.
	rec       *trace.Recorder
	busyUntil time.Duration

	// fault is the attached fault model (nil: the perfect medium). Verdicts
	// are drawn under mu, in address order, so the PRNG consumption order —
	// and with it every drop, dup, delay and bit-flip — replays exactly.
	fault *FaultMedium
}

// SetRecorder attaches a flight recorder to the medium (nil detaches).
func (n *Network) SetRecorder(r *trace.Recorder) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.rec = r
}

// TraceRecorder implements trace.Source.
func (n *Network) TraceRecorder() *trace.Recorder {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.rec
}

// New creates a network advancing clock (nil for a private clock).
func New(clock *sim.Clock) *Network {
	if clock == nil {
		clock = sim.NewClock()
	}
	return &Network{clock: clock, stations: map[Addr]*Station{}}
}

// Clock returns the network's clock.
func (n *Network) Clock() *sim.Clock { return n.clock }

// Stats returns packets and words carried so far.
func (n *Network) Stats() (packets, words int64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.sent, n.words
}

// Station is one attachment point: an input queue plus the network.
type Station struct {
	net  *Network
	addr Addr

	mu   sync.Mutex
	in   []Packet
	held []heldPacket // fault-delayed packets awaiting their release time
	rec  *trace.Recorder
}

// heldPacket is a delivery the fault model is holding back: it joins the
// input queue the first time the station polls at or after release.
type heldPacket struct {
	release time.Duration
	pkt     Packet
}

// SetRecorder gives the station its own flight recorder (nil reverts to the
// medium's). In a fleet, each machine's station records into that machine's
// recorder while the shared wire keeps its own — the split that lets
// internal/scope merge per-machine timelines into one multi-process trace.
func (s *Station) SetRecorder(r *trace.Recorder) {
	s.mu.Lock()
	s.rec = r
	s.mu.Unlock()
}

// TraceRecorder implements trace.Source: the station's own recorder when one
// is attached, else the medium's, so layers built over stations (the
// reliable transport, the file server) trace without new plumbing. The two
// locks are taken in sequence, never nested — the network lock must not
// nest inside a station lock.
func (s *Station) TraceRecorder() *trace.Recorder {
	s.mu.Lock()
	r := s.rec
	s.mu.Unlock()
	if r != nil {
		return r
	}
	return s.net.TraceRecorder()
}

// Clock returns the shared network clock.
func (s *Station) Clock() *sim.Clock { return s.net.clock }

// Attach adds a station at addr (which must be nonzero and unused).
func (n *Network) Attach(addr Addr) (*Station, error) {
	if addr == Broadcast {
		return nil, fmt.Errorf("%w: 0 is the broadcast address", ErrAddrInUse)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.stations[addr]; dup {
		return nil, fmt.Errorf("%w: %d", ErrAddrInUse, addr)
	}
	s := &Station{net: n, addr: addr}
	n.stations[addr] = s
	return s, nil
}

// Detach removes the station from the medium.
func (s *Station) Detach() {
	s.net.mu.Lock()
	defer s.net.mu.Unlock()
	delete(s.net.stations, s.addr)
}

// Addr returns the station's address.
func (s *Station) Addr() Addr { return s.addr }

// Send transmits a packet (source filled in), charging wire time.
func (s *Station) Send(p Packet) error {
	if len(p.Payload) > MaxPayload {
		return fmt.Errorf("%w: %d words", ErrTooBig, len(p.Payload))
	}
	p.Src = s.addr
	n := s.net
	n.mu.Lock()
	if n.stations[s.addr] != s {
		n.mu.Unlock()
		return ErrNoStation
	}
	n.sent++
	n.words += int64(len(p.Payload) + HeaderWords)
	wireWords := len(p.Payload) + HeaderWords
	dur := time.Duration(wireWords) * WireTime
	start := n.clock.Now()
	rec := n.rec
	if rec != nil {
		if start < n.busyUntil {
			rec.EmitFlow(start, trace.KindEtherCollision, "", int64(p.Dst), int64(s.addr), int64(p.Flow))
			rec.Add("ether.collision", 1)
		}
		if end := start + dur; end > n.busyUntil {
			n.busyUntil = end
		}
		rec.EmitSpanFlow(start, dur, trace.KindEtherSend, "", int64(p.Dst), int64(wireWords), int64(p.Flow))
		rec.Add("ether.send", 1)
		rec.Add("ether.words", int64(wireWords))
	}
	// Copy the payload (the wire serializes, it does not alias) and stamp
	// the checksum word over the serialized content.
	cp := p
	cp.Payload = append([]Word(nil), p.Payload...)
	cp.Check = cp.Sum()
	// Destinations in address order: the fault model draws verdicts from a
	// shared deterministic PRNG, so the draw order must not depend on Go's
	// randomized map iteration.
	var dsts []*Station
	for a, st := range n.stations {
		if st == s {
			continue
		}
		if p.Dst == Broadcast || p.Dst == a {
			dsts = append(dsts, st)
		}
	}
	sort.Slice(dsts, func(i, j int) bool { return dsts[i].addr < dsts[j].addr })
	arrive := start + dur
	dels := make([]delivery, 0, len(dsts))
	for _, st := range dsts {
		d := delivery{st: st, pkt: cp, copies: 1}
		if n.fault != nil {
			v := n.fault.judge(len(cp.Payload))
			// Every non-clean verdict lands on the wire's timeline as an
			// instant stamped with the packet's flow: injected loss stays
			// on the causal chain instead of vanishing between send and a
			// retransmit that seems to come from nowhere.
			if v.drop {
				rec.EmitFlow(start, trace.KindEtherFault, "drop", int64(st.addr), v.idx, int64(cp.Flow))
				rec.Add("ether.drop", 1)
				continue
			}
			if v.dup {
				d.copies = 2
				rec.EmitFlow(start, trace.KindEtherFault, "dup", int64(st.addr), v.idx, int64(cp.Flow))
				rec.Add("ether.dup", 1)
			}
			if v.corrupt {
				d.pkt.Payload = append([]Word(nil), cp.Payload...)
				v.mangle(&d.pkt)
				rec.EmitFlow(start, trace.KindEtherFault, "corrupt", int64(st.addr), v.idx, int64(cp.Flow))
				rec.Add("ether.corrupt", 1)
			}
			if v.delay > 0 {
				d.release = arrive + v.delay
				rec.EmitFlow(start, trace.KindEtherFault, "delay", int64(st.addr), v.idx, int64(cp.Flow))
				rec.Add("ether.delay", 1)
			}
		}
		dels = append(dels, d)
	}
	n.mu.Unlock()

	n.clock.Advance(dur)
	for _, d := range dels {
		d.st.mu.Lock()
		for c := 0; c < d.copies; c++ {
			if d.release > 0 {
				d.st.held = append(d.st.held, heldPacket{release: d.release, pkt: d.pkt})
			} else {
				d.st.in = append(d.st.in, d.pkt)
			}
		}
		depth := len(d.st.in)
		d.st.mu.Unlock()
		rec.Observe("ether.queue.depth", float64(depth))
	}
	return nil
}

// delivery is one destination's share of a send, after the fault model has
// spoken: how many copies, possibly corrupted, possibly held until release.
type delivery struct {
	st      *Station
	pkt     Packet
	copies  int
	release time.Duration
}

// promoteLocked moves fault-delayed packets whose release time has passed
// into the input queue. Caller holds s.mu.
func (s *Station) promoteLocked(now time.Duration) {
	if len(s.held) == 0 {
		return
	}
	kept := s.held[:0]
	for _, h := range s.held {
		if h.release <= now {
			s.in = append(s.in, h.pkt)
		} else {
			kept = append(kept, h)
		}
	}
	s.held = kept
}

// Recv polls the input queue, returning the oldest packet if any. The
// delivery is recorded on the station's own recorder when one is attached —
// in a fleet, arrivals belong to the receiving machine's timeline.
func (s *Station) Recv() (Packet, bool) {
	// Snapshot the recorder before taking s.mu: the network lock never
	// nests inside a station lock.
	rec := s.TraceRecorder()
	now := s.net.clock.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.promoteLocked(now)
	if len(s.in) == 0 {
		return Packet{}, false
	}
	p := s.in[0]
	s.in = s.in[1:]
	if rec != nil {
		rec.EmitFlow(s.net.clock.Now(), trace.KindEtherRecv, "", int64(p.Src), int64(len(p.Payload)+HeaderWords), int64(p.Flow))
		rec.Add("ether.recv", 1)
	}
	return p, true
}

// Pending reports queued packet count (fault-delayed packets count once
// their release time has passed).
func (s *Station) Pending() int {
	now := s.net.clock.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.promoteLocked(now)
	return len(s.in)
}

// PackString converts a string into payload words (length-prefixed, two
// bytes per word) and back — the standardized representation both ends
// share regardless of their implementation language (§1).
func PackString(str string) []Word {
	if len(str) > 2*MaxPayload-2 {
		str = str[:2*MaxPayload-2]
	}
	out := make([]Word, 1+(len(str)+1)/2)
	out[0] = Word(len(str))
	for i := 0; i < len(str); i++ {
		if i%2 == 0 {
			out[1+i/2] |= Word(str[i]) << 8
		} else {
			out[1+i/2] |= Word(str[i])
		}
	}
	return out
}

// UnpackString is the inverse of PackString.
func UnpackString(w []Word) (string, error) {
	if len(w) == 0 {
		return "", errors.New("ether: empty payload")
	}
	n := int(w[0])
	if 1+(n+1)/2 > len(w) {
		return "", fmt.Errorf("ether: truncated string: %d bytes in %d words", n, len(w))
	}
	buf := make([]byte, n)
	for i := 0; i < n; i++ {
		word := w[1+i/2]
		if i%2 == 0 {
			buf[i] = byte(word >> 8)
		} else {
			buf[i] = byte(word)
		}
	}
	return string(buf), nil
}
