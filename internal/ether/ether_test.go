package ether

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"altoos/internal/sim"
)

func TestSendRecv(t *testing.T) {
	n := New(nil)
	a, err := n.Attach(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Attach(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send(Packet{Dst: 2, Type: 7, Payload: []Word{10, 20}}); err != nil {
		t.Fatal(err)
	}
	p, ok := b.Recv()
	if !ok {
		t.Fatal("no packet delivered")
	}
	if p.Src != 1 || p.Dst != 2 || p.Type != 7 || len(p.Payload) != 2 || p.Payload[1] != 20 {
		t.Fatalf("packet %+v", p)
	}
	if _, ok := b.Recv(); ok {
		t.Fatal("phantom second packet")
	}
	if _, ok := a.Recv(); ok {
		t.Fatal("sender received its own unicast")
	}
}

func TestBroadcast(t *testing.T) {
	n := New(nil)
	a, _ := n.Attach(1)
	b, _ := n.Attach(2)
	c, _ := n.Attach(3)
	if err := a.Send(Packet{Dst: Broadcast, Type: 1}); err != nil {
		t.Fatal(err)
	}
	if b.Pending() != 1 || c.Pending() != 1 {
		t.Fatal("broadcast not delivered to all others")
	}
	if a.Pending() != 0 {
		t.Fatal("broadcast echoed to sender")
	}
}

func TestAddressFiltering(t *testing.T) {
	n := New(nil)
	a, _ := n.Attach(1)
	b, _ := n.Attach(2)
	c, _ := n.Attach(3)
	a.Send(Packet{Dst: 3})
	if b.Pending() != 0 {
		t.Fatal("station 2 saw a packet for 3")
	}
	if c.Pending() != 1 {
		t.Fatal("station 3 missed its packet")
	}
}

func TestWireTimeCharged(t *testing.T) {
	clock := sim.NewClock()
	n := New(clock)
	a, _ := n.Attach(1)
	n.Attach(2)
	before := clock.Now()
	payload := make([]Word, 100)
	if err := a.Send(Packet{Dst: 2, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	want := time.Duration(100+HeaderWords) * WireTime
	if got := clock.Now() - before; got != want {
		t.Fatalf("wire time %v, want %v", got, want)
	}
}

func TestErrors(t *testing.T) {
	n := New(nil)
	if _, err := n.Attach(0); !errors.Is(err, ErrAddrInUse) {
		t.Error("attached at broadcast address")
	}
	a, _ := n.Attach(1)
	if _, err := n.Attach(1); !errors.Is(err, ErrAddrInUse) {
		t.Error("duplicate address accepted")
	}
	if err := a.Send(Packet{Dst: 2, Payload: make([]Word, MaxPayload+1)}); !errors.Is(err, ErrTooBig) {
		t.Error("oversized packet accepted")
	}
	a.Detach()
	if err := a.Send(Packet{Dst: 2}); !errors.Is(err, ErrNoStation) {
		t.Error("detached station could send")
	}
}

func TestPayloadIsCopied(t *testing.T) {
	n := New(nil)
	a, _ := n.Attach(1)
	b, _ := n.Attach(2)
	payload := []Word{1, 2, 3}
	a.Send(Packet{Dst: 2, Payload: payload})
	payload[0] = 99
	p, _ := b.Recv()
	if p.Payload[0] != 1 {
		t.Fatal("payload aliased, not serialized")
	}
}

func TestStats(t *testing.T) {
	n := New(nil)
	a, _ := n.Attach(1)
	n.Attach(2)
	a.Send(Packet{Dst: 2, Payload: make([]Word, 10)})
	a.Send(Packet{Dst: 2})
	pkts, words := n.Stats()
	if pkts != 2 || words != int64(10+HeaderWords+HeaderWords) {
		t.Fatalf("stats %d pkts %d words", pkts, words)
	}
}

func TestStringPackingProperty(t *testing.T) {
	f := func(raw []byte) bool {
		if len(raw) > 400 {
			raw = raw[:400]
		}
		s := string(raw)
		got, err := UnpackString(PackString(s))
		return err == nil && got == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnpackRejectsDamage(t *testing.T) {
	if _, err := UnpackString(nil); err == nil {
		t.Error("accepted empty payload")
	}
	if _, err := UnpackString([]Word{500, 0}); err == nil {
		t.Error("accepted truncated string")
	}
}

// TestHeldPromotionSortsByArrival: packets whose release times pass together
// promote in (release, source address, sender sequence) order, not in the
// order the fault model happened to append them.
func TestHeldPromotionSortsByArrival(t *testing.T) {
	n := New(nil)
	a, _ := n.Attach(1)
	b, _ := n.Attach(2)
	c, _ := n.Attach(3)
	// Delay station 1's first send by 5 ms and station 2's by 1 ms: the
	// second send is appended to held later but releases earlier.
	n.InjectFaults(FaultConfig{
		DelayTime: 5 * time.Millisecond,
		Force:     map[int64]Fault{0: FaultDelay},
	})
	if err := a.Send(Packet{Dst: 3, Type: 100}); err != nil {
		t.Fatal(err)
	}
	n.InjectFaults(FaultConfig{
		DelayTime: time.Millisecond,
		Force:     map[int64]Fault{0: FaultDelay},
	})
	if err := b.Send(Packet{Dst: 3, Type: 200}); err != nil {
		t.Fatal(err)
	}
	n.ClearFaults()
	n.Clock().Advance(time.Second) // both releases long past
	p1, ok1 := c.Recv()
	p2, ok2 := c.Recv()
	if !ok1 || !ok2 {
		t.Fatalf("expected two promoted packets, got %v %v", ok1, ok2)
	}
	if p1.Type != 200 || p2.Type != 100 {
		t.Fatalf("promotion order (%d, %d), want the earlier release (200) first", p1.Type, p2.Type)
	}
}

// TestFleetDeliveryWaitsForArrival: in fleet mode a delivery is a scheduled
// event — the receiver, on its own clock, sees nothing until its time
// reaches the packet's arrival time.
func TestFleetDeliveryWaitsForArrival(t *testing.T) {
	n := New(nil)
	n.SetFleetMode(true)
	a, _ := n.Attach(1)
	b, _ := n.Attach(2)
	ca, cb := sim.NewClock(), sim.NewClock()
	a.SetClock(ca)
	b.SetClock(cb)
	if err := a.Send(Packet{Dst: 2, Payload: []Word{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	arrive := ca.Now() // sender's clock advanced by the wire time
	if arrive == 0 {
		t.Fatal("send charged no wire time to the sender's clock")
	}
	if cb.Now() != 0 {
		t.Fatal("send advanced the receiver's clock")
	}
	if _, ok := b.Recv(); ok {
		t.Fatal("packet visible before the receiver's clock reached arrival")
	}
	if got, ok := b.EarliestArrival(); !ok || got != arrive {
		t.Fatalf("EarliestArrival() = %v, %v; want %v, true", got, ok, arrive)
	}
	cb.AdvanceTo(arrive)
	if _, ok := b.Recv(); !ok {
		t.Fatal("packet not promoted once the receiver's clock reached arrival")
	}
}

// TestFleetHorizonGatesDelivery: a machine whose clock overran the lockstep
// window cannot observe arrivals at or beyond the horizon, even though its
// own clock has passed them — the rule that keeps delivery independent of
// host interleaving.
func TestFleetHorizonGatesDelivery(t *testing.T) {
	n := New(nil)
	n.SetFleetMode(true)
	a, _ := n.Attach(1)
	b, _ := n.Attach(2)
	ca, cb := sim.NewClock(), sim.NewClock()
	a.SetClock(ca)
	b.SetClock(cb)
	if err := a.Send(Packet{Dst: 2}); err != nil {
		t.Fatal(err)
	}
	arrive := ca.Now()
	cb.AdvanceTo(arrive + time.Millisecond) // receiver overran the window
	n.SetHorizon(arrive)                    // horizon not yet past arrival
	if _, ok := b.Recv(); ok {
		t.Fatal("packet promoted at the horizon; promotion must be strictly below it")
	}
	n.SetHorizon(arrive + 1)
	if _, ok := b.Recv(); !ok {
		t.Fatal("packet not promoted once the horizon passed arrival")
	}
}

// TestFleetPerSenderFaultStreams: with per-sender verdict streams, one
// sender's fault pattern is a function of its own send sequence alone —
// unaffected by how much traffic other senders put on the wire.
func TestFleetPerSenderFaultStreams(t *testing.T) {
	run := func(otherTraffic int) []bool {
		n := New(nil)
		n.SetFleetMode(true)
		n.SetHorizon(1 << 60)
		a, _ := n.Attach(1)
		x, _ := n.Attach(2)
		b, _ := n.Attach(3)
		a.SetClock(sim.NewClock())
		x.SetClock(sim.NewClock())
		b.SetClock(sim.NewClock())
		n.InjectFaults(FaultConfig{Seed: 7, Drop: Rate{Num: 1, Den: 3}})
		var pattern []bool
		for i := 0; i < 32; i++ {
			for j := 0; j < otherTraffic; j++ {
				if err := x.Send(Packet{Dst: 3}); err != nil {
					t.Fatal(err)
				}
			}
			before := n.fault.stats.Dropped
			if err := a.Send(Packet{Dst: 3}); err != nil {
				t.Fatal(err)
			}
			pattern = append(pattern, n.fault.stats.Dropped > before)
		}
		_ = b
		return pattern
	}
	quiet, noisy := run(0), run(5)
	for i := range quiet {
		if quiet[i] != noisy[i] {
			t.Fatalf("send %d: drop verdict changed (%v vs %v) because of unrelated traffic", i, quiet[i], noisy[i])
		}
	}
}
