package ether

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"altoos/internal/sim"
)

func TestSendRecv(t *testing.T) {
	n := New(nil)
	a, err := n.Attach(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Attach(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send(Packet{Dst: 2, Type: 7, Payload: []Word{10, 20}}); err != nil {
		t.Fatal(err)
	}
	p, ok := b.Recv()
	if !ok {
		t.Fatal("no packet delivered")
	}
	if p.Src != 1 || p.Dst != 2 || p.Type != 7 || len(p.Payload) != 2 || p.Payload[1] != 20 {
		t.Fatalf("packet %+v", p)
	}
	if _, ok := b.Recv(); ok {
		t.Fatal("phantom second packet")
	}
	if _, ok := a.Recv(); ok {
		t.Fatal("sender received its own unicast")
	}
}

func TestBroadcast(t *testing.T) {
	n := New(nil)
	a, _ := n.Attach(1)
	b, _ := n.Attach(2)
	c, _ := n.Attach(3)
	if err := a.Send(Packet{Dst: Broadcast, Type: 1}); err != nil {
		t.Fatal(err)
	}
	if b.Pending() != 1 || c.Pending() != 1 {
		t.Fatal("broadcast not delivered to all others")
	}
	if a.Pending() != 0 {
		t.Fatal("broadcast echoed to sender")
	}
}

func TestAddressFiltering(t *testing.T) {
	n := New(nil)
	a, _ := n.Attach(1)
	b, _ := n.Attach(2)
	c, _ := n.Attach(3)
	a.Send(Packet{Dst: 3})
	if b.Pending() != 0 {
		t.Fatal("station 2 saw a packet for 3")
	}
	if c.Pending() != 1 {
		t.Fatal("station 3 missed its packet")
	}
}

func TestWireTimeCharged(t *testing.T) {
	clock := sim.NewClock()
	n := New(clock)
	a, _ := n.Attach(1)
	n.Attach(2)
	before := clock.Now()
	payload := make([]Word, 100)
	if err := a.Send(Packet{Dst: 2, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	want := time.Duration(100+HeaderWords) * WireTime
	if got := clock.Now() - before; got != want {
		t.Fatalf("wire time %v, want %v", got, want)
	}
}

func TestErrors(t *testing.T) {
	n := New(nil)
	if _, err := n.Attach(0); !errors.Is(err, ErrAddrInUse) {
		t.Error("attached at broadcast address")
	}
	a, _ := n.Attach(1)
	if _, err := n.Attach(1); !errors.Is(err, ErrAddrInUse) {
		t.Error("duplicate address accepted")
	}
	if err := a.Send(Packet{Dst: 2, Payload: make([]Word, MaxPayload+1)}); !errors.Is(err, ErrTooBig) {
		t.Error("oversized packet accepted")
	}
	a.Detach()
	if err := a.Send(Packet{Dst: 2}); !errors.Is(err, ErrNoStation) {
		t.Error("detached station could send")
	}
}

func TestPayloadIsCopied(t *testing.T) {
	n := New(nil)
	a, _ := n.Attach(1)
	b, _ := n.Attach(2)
	payload := []Word{1, 2, 3}
	a.Send(Packet{Dst: 2, Payload: payload})
	payload[0] = 99
	p, _ := b.Recv()
	if p.Payload[0] != 1 {
		t.Fatal("payload aliased, not serialized")
	}
}

func TestStats(t *testing.T) {
	n := New(nil)
	a, _ := n.Attach(1)
	n.Attach(2)
	a.Send(Packet{Dst: 2, Payload: make([]Word, 10)})
	a.Send(Packet{Dst: 2})
	pkts, words := n.Stats()
	if pkts != 2 || words != int64(10+HeaderWords+HeaderWords) {
		t.Fatalf("stats %d pkts %d words", pkts, words)
	}
}

func TestStringPackingProperty(t *testing.T) {
	f := func(raw []byte) bool {
		if len(raw) > 400 {
			raw = raw[:400]
		}
		s := string(raw)
		got, err := UnpackString(PackString(s))
		return err == nil && got == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnpackRejectsDamage(t *testing.T) {
	if _, err := UnpackString(nil); err == nil {
		t.Error("accepted empty payload")
	}
	if _, err := UnpackString([]Word{500, 0}); err == nil {
		t.Error("accepted truncated string")
	}
}
