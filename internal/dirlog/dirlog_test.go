package dirlog

import (
	"fmt"
	"testing"

	"altoos/internal/dir"
	"altoos/internal/disk"
	"altoos/internal/file"
	"altoos/internal/mem"
	"altoos/internal/scavenge"
	"altoos/internal/stream"
	"altoos/internal/zone"
)

type world struct {
	drive *disk.Drive
	fs    *file.FS
	root  *dir.Directory
	m     *mem.Memory
	z     *zone.MemZone
	log   *Log
}

func newWorld(t *testing.T) *world {
	t.Helper()
	d, err := disk.NewDrive(disk.Diablo31(), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := file.Format(d)
	if err != nil {
		t.Fatal(err)
	}
	root, err := dir.InitRoot(fs)
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New()
	z, err := zone.New(m, 0x4000, 0x4000)
	if err != nil {
		t.Fatal(err)
	}
	log, err := Open(fs, z, m)
	if err != nil {
		t.Fatal(err)
	}
	return &world{drive: d, fs: fs, root: root, m: m, z: z, log: log}
}

func (w *world) addFile(t *testing.T, ld *Logged, name string) *file.File {
	t.Helper()
	f, err := w.fs.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	var p [disk.PageWords]disk.Word
	p[0] = 0xD1
	if err := f.WritePage(1, &p, 2); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := ld.Insert(name, f.FN()); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestLoggedOperationsForward(t *testing.T) {
	w := newWorld(t)
	ld, err := w.log.WrapRoot()
	if err != nil {
		t.Fatal(err)
	}
	f := w.addFile(t, ld, "j1.dat")
	fn, err := ld.Lookup("j1.dat")
	if err != nil || fn != f.FN() {
		t.Fatalf("lookup through logged dir: %v %v", fn, err)
	}
	if err := ld.Remove("j1.dat"); err != nil {
		t.Fatal(err)
	}
	if _, err := ld.Lookup("j1.dat"); err == nil {
		t.Fatal("remove did not forward")
	}
}

func TestBindingsReplay(t *testing.T) {
	w := newWorld(t)
	ld, _ := w.log.WrapRoot()
	fa := w.addFile(t, ld, "a.dat")
	w.addFile(t, ld, "b.dat")
	if err := ld.Remove("b.dat"); err != nil {
		t.Fatal(err)
	}
	moved := fa.FN()
	moved.Leader = 999
	if err := ld.Update("a.dat", moved); err != nil {
		t.Fatal(err)
	}

	b, err := w.log.Bindings()
	if err != nil {
		t.Fatal(err)
	}
	rootFV := w.fs.RootDir().FV
	names := b[rootFV]
	if names == nil {
		t.Fatal("no bindings for root")
	}
	if _, ok := names["b.dat"]; ok {
		t.Error("removed binding survived replay")
	}
	if got := names["a.dat"]; got.Leader != 999 {
		t.Errorf("update not replayed: %v", got)
	}
}

func TestSnapshotTruncatesJournal(t *testing.T) {
	w := newWorld(t)
	ld, _ := w.log.WrapRoot()
	for i := 0; i < 5; i++ {
		w.addFile(t, ld, fmt.Sprintf("s%d.dat", i))
	}
	if err := w.log.Snapshot(); err != nil {
		t.Fatal(err)
	}
	jfn, err := w.log.lookup(JournalName)
	if err != nil {
		t.Fatal(err)
	}
	jf, err := w.fs.Open(jfn)
	if err != nil {
		t.Fatal(err)
	}
	if jf.Size() != 0 {
		t.Errorf("journal not truncated: %d bytes", jf.Size())
	}
	// Bindings still complete from the snapshot alone.
	b, err := w.log.Bindings()
	if err != nil {
		t.Fatal(err)
	}
	if len(b[w.fs.RootDir().FV]) < 5 {
		t.Errorf("snapshot lost bindings: %v", b)
	}
}

func TestRecoverAfterDirectoryDestruction(t *testing.T) {
	// The full §3.5 scenario: names journaled, directory destroyed, files
	// survive via the Scavenger (which can only adopt them under leader
	// names), then Recover restores the *bindings* — including a rename the
	// leader name knows nothing about.
	w := newWorld(t)
	ld, _ := w.log.WrapRoot()
	f := w.addFile(t, ld, "original.dat")
	// Rename: the leader still says "original.dat", the directory (and
	// journal) say "renamed.dat".
	if err := ld.Remove("original.dat"); err != nil {
		t.Fatal(err)
	}
	if err := ld.Insert("renamed.dat", f.FN()); err != nil {
		t.Fatal(err)
	}
	if err := w.fs.Flush(); err != nil {
		t.Fatal(err)
	}

	// Destroy the root directory's data pages.
	lastPN, _ := w.root.File().LastPage()
	for pn := disk.Word(1); pn <= lastPN; pn++ {
		a, err := w.root.File().PageAddr(pn)
		if err != nil {
			t.Fatal(err)
		}
		w.drive.ZapLabel(a, disk.FreeLabelWords())
	}

	// Scavenge: files come back, but under leader names only.
	fs2, _, err := scavenge.Run(w.drive)
	if err != nil {
		t.Fatal(err)
	}
	root2, err := dir.OpenRoot(fs2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := root2.Lookup("renamed.dat"); err == nil {
		t.Fatal("scavenger cannot know the rename; test is broken")
	}

	// Recover from the journal: the rename returns.
	log2, err := Open(fs2, w.z, w.m)
	if err != nil {
		t.Fatal(err)
	}
	n, err := log2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("nothing recovered")
	}
	fn, err := root2.Lookup("renamed.dat")
	if err != nil {
		t.Fatalf("rename lost: %v", err)
	}
	g, err := fs2.Open(fn)
	if err != nil {
		t.Fatal(err)
	}
	var buf [disk.PageWords]disk.Word
	if _, err := g.ReadPage(1, &buf); err != nil || buf[0] != 0xD1 {
		t.Fatalf("recovered binding points at wrong data: %v", err)
	}
}

func TestRecoverSkipsDeadFiles(t *testing.T) {
	w := newWorld(t)
	ld, _ := w.log.WrapRoot()
	f := w.addFile(t, ld, "doomed.dat")
	// The file dies and its entry vanishes *without* a journaled Remove
	// (say, the directory was rebuilt by the Scavenger). The journal still
	// holds the Insert; Recover must not resurrect a binding to a dead file.
	if err := f.Delete(); err != nil {
		t.Fatal(err)
	}
	if err := w.root.Remove("doomed.dat"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.log.Recover(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.root.Lookup("doomed.dat"); err == nil {
		t.Error("recover bound a name to a dead file")
	}
}

func TestJournalDoesNotLogItself(t *testing.T) {
	w := newWorld(t)
	if err := w.log.Snapshot(); err != nil {
		t.Fatal(err)
	}
	b, err := w.log.Bindings()
	if err != nil {
		t.Fatal(err)
	}
	for _, names := range b {
		for name := range names {
			if name == JournalName || name == SnapshotName {
				t.Errorf("log snapshot contains %q", name)
			}
		}
	}
}

func TestDamagedJournalStopsCleanly(t *testing.T) {
	w := newWorld(t)
	ld, _ := w.log.WrapRoot()
	w.addFile(t, ld, "ok.dat")
	// Append garbage to the journal.
	jfn, _ := w.log.lookup(JournalName)
	jf, _ := w.fs.Open(jfn)
	s, err := stream.NewDisk(jf, w.z, w.m, stream.UpdateMode)
	if err != nil {
		t.Fatal(err)
	}
	s.Seek(s.Len())
	for i := 0; i < 7; i++ {
		s.Put(0xFF)
	}
	s.Close()

	b, err := w.log.Bindings()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := b[w.fs.RootDir().FV]["ok.dat"]; !ok {
		t.Error("valid prefix lost to trailing damage")
	}
}
