// Package dirlog is the directory-integrity extension the paper describes
// but deliberately leaves to the user (§3.5): "[full reconstruction of lost
// directories] could be accomplished by writing a journal of all changes to
// directories and taking an occasional snapshot of all the directories. By
// applying the changes in the journal to the snapshot we would get back the
// current state. ... If the user disagrees [with the system's choice not to
// do this], he is free to modify the system-provided procedures for managing
// directories, or to write his own."
//
// This package is that user: a drop-in directory discipline built entirely
// from the exported file and stream interfaces. A Logged directory forwards
// every operation to the standard implementation and appends a journal
// record first (write-ahead); Snapshot checkpoints the full binding set and
// truncates the journal; Recover replays snapshot + journal to rebuild the
// name bindings even when the directory files themselves were destroyed —
// recovering the one thing the Scavenger cannot: *which names* pointed at
// which files.
package dirlog

import (
	"errors"
	"fmt"

	"altoos/internal/dir"
	"altoos/internal/disk"
	"altoos/internal/file"
	"altoos/internal/mem"
	"altoos/internal/stream"
	"altoos/internal/zone"
)

// Journal and snapshot live under well-known names in the root directory.
const (
	JournalName  = "DirJournal."
	SnapshotName = "DirSnapshot."
)

// record opcodes.
const (
	opInsert = 1
	opRemove = 2
	opUpdate = 3
)

// ErrJournal reports a malformed journal or snapshot.
var ErrJournal = errors.New("dirlog: malformed journal")

// Logged wraps a directory with write-ahead journaling. It deliberately has
// the same operation set as dir.Directory — the open system lets the user
// swap disciplines without the file system noticing.
type Logged struct {
	fs  *file.FS
	d   *dir.Directory
	log *Log
}

// Log owns the journal and snapshot files.
type Log struct {
	fs *file.FS
	z  zone.Zone
	m  *mem.Memory
}

// Open attaches a log to a file system, creating the journal and snapshot
// files on first use. The zone and memory supply stream working storage, in
// the usual open style.
func Open(fs *file.FS, z zone.Zone, m *mem.Memory) (*Log, error) {
	l := &Log{fs: fs, z: z, m: m}
	for _, name := range []string{JournalName, SnapshotName} {
		if _, err := l.lookup(name); err != nil {
			f, err := fs.Create(name)
			if err != nil {
				return nil, err
			}
			root, err := dir.OpenRoot(fs)
			if err != nil {
				return nil, err
			}
			if err := root.Insert(name, f.FN()); err != nil {
				return nil, err
			}
		}
	}
	return l, nil
}

func (l *Log) lookup(name string) (file.FN, error) {
	root, err := dir.OpenRoot(l.fs)
	if err != nil {
		return file.FN{}, err
	}
	return root.Lookup(name)
}

// Wrap returns a journaled view of a directory.
func (l *Log) Wrap(d *dir.Directory) *Logged {
	return &Logged{fs: l.fs, d: d, log: l}
}

// WrapRoot wraps the root directory.
func (l *Log) WrapRoot() (*Logged, error) {
	root, err := dir.OpenRoot(l.fs)
	if err != nil {
		return nil, err
	}
	return l.Wrap(root), nil
}

// append writes one record to the journal: op, directory FV, name, FN.
func (l *Log) append(op byte, dirFV disk.FV, name string, fn file.FN) error {
	jfn, err := l.lookup(JournalName)
	if err != nil {
		return err
	}
	f, err := l.fs.Open(jfn)
	if err != nil {
		return err
	}
	s, err := stream.NewDisk(f, l.z, l.m, stream.UpdateMode)
	if err != nil {
		return err
	}
	defer s.Close()
	if err := s.Seek(s.Len()); err != nil {
		return err
	}
	return writeRecord(s, op, dirFV, name, fn)
}

func writeRecord(s stream.Stream, op byte, dirFV disk.FV, name string, fn file.FN) error {
	if err := s.Put(op); err != nil {
		return err
	}
	for _, w := range []uint16{
		uint16(dirFV.FID >> 16), uint16(dirFV.FID), dirFV.Version,
		uint16(fn.FV.FID >> 16), uint16(fn.FV.FID), fn.FV.Version, uint16(fn.Leader),
		uint16(len(name)),
	} {
		if err := stream.PutWord(s, w); err != nil {
			return err
		}
	}
	return stream.PutString(s, name)
}

// Record is one journal entry.
type Record struct {
	Op    byte
	DirFV disk.FV
	Name  string
	FN    file.FN
}

func readRecord(s stream.Stream) (Record, error) {
	op, err := s.Get()
	if err != nil {
		return Record{}, err // io.EOF ends the journal
	}
	var w [8]uint16
	for i := range w {
		if w[i], err = stream.GetWord(s); err != nil {
			return Record{}, fmt.Errorf("%w: truncated record", ErrJournal)
		}
	}
	nameLen := int(w[7])
	name := make([]byte, nameLen)
	for i := range name {
		if name[i], err = s.Get(); err != nil {
			return Record{}, fmt.Errorf("%w: truncated name", ErrJournal)
		}
	}
	if op != opInsert && op != opRemove && op != opUpdate {
		return Record{}, fmt.Errorf("%w: opcode %d", ErrJournal, op)
	}
	return Record{
		Op:    op,
		DirFV: disk.FV{FID: disk.FID(w[0])<<16 | disk.FID(w[1]), Version: w[2]},
		Name:  string(name),
		FN: file.FN{
			FV:     disk.FV{FID: disk.FID(w[3])<<16 | disk.FID(w[4]), Version: w[5]},
			Leader: disk.VDA(w[6]),
		},
	}, nil
}

// Insert journals, then forwards.
func (ld *Logged) Insert(name string, fn file.FN) error {
	if err := ld.log.append(opInsert, ld.d.FN().FV, name, fn); err != nil {
		return err
	}
	return ld.d.Insert(name, fn)
}

// Update journals, then forwards.
func (ld *Logged) Update(name string, fn file.FN) error {
	if err := ld.log.append(opUpdate, ld.d.FN().FV, name, fn); err != nil {
		return err
	}
	return ld.d.Update(name, fn)
}

// Remove journals, then forwards.
func (ld *Logged) Remove(name string) error {
	if err := ld.log.append(opRemove, ld.d.FN().FV, name, file.FN{}); err != nil {
		return err
	}
	return ld.d.Remove(name)
}

// Lookup and List forward unmodified: reads need no journal.
func (ld *Logged) Lookup(name string) (file.FN, error) { return ld.d.Lookup(name) }

// List forwards.
func (ld *Logged) List() ([]dir.Entry, error) { return ld.d.List() }

// Directory exposes the wrapped directory.
func (ld *Logged) Directory() *dir.Directory { return ld.d }

// Snapshot checkpoints every reachable directory's bindings into the
// snapshot file and truncates the journal — the paper's "occasional
// snapshot of all the directories".
func (l *Log) Snapshot() error {
	sfn, err := l.lookup(SnapshotName)
	if err != nil {
		return err
	}
	f, err := l.fs.Open(sfn)
	if err != nil {
		return err
	}
	s, err := stream.NewDisk(f, l.z, l.m, stream.WriteMode)
	if err != nil {
		return err
	}
	count := 0
	err = dir.Walk(l.fs, l.fs.RootDir(), func(d *dir.Directory) error {
		entries, err := d.Load()
		if err != nil {
			return nil // damaged directory: snapshot what can be read
		}
		for _, e := range entries {
			if e.Name == JournalName || e.Name == SnapshotName {
				continue // the log does not log itself
			}
			if err := writeRecord(s, opInsert, d.FN().FV, e.Name, e.FN); err != nil {
				return err
			}
			count++
		}
		return nil
	})
	if cerr := s.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	// Truncate the journal: everything before the snapshot is superseded.
	jfn, err := l.lookup(JournalName)
	if err != nil {
		return err
	}
	jf, err := l.fs.Open(jfn)
	if err != nil {
		return err
	}
	js, err := stream.NewDisk(jf, l.z, l.m, stream.WriteMode)
	if err != nil {
		return err
	}
	return js.Close()
}

// Bindings computes the current (directory, name) -> FN map from snapshot
// plus journal, without reading any directory file.
func (l *Log) Bindings() (map[disk.FV]map[string]file.FN, error) {
	out := map[disk.FV]map[string]file.FN{}
	apply := func(r Record) {
		m := out[r.DirFV]
		if m == nil {
			m = map[string]file.FN{}
			out[r.DirFV] = m
		}
		switch r.Op {
		case opInsert, opUpdate:
			m[r.Name] = r.FN
		case opRemove:
			delete(m, r.Name)
		}
	}
	for _, name := range []string{SnapshotName, JournalName} {
		fn, err := l.lookup(name)
		if err != nil {
			return nil, err
		}
		f, err := l.fs.Open(fn)
		if err != nil {
			return nil, err
		}
		s, err := stream.NewDisk(f, l.z, l.m, stream.ReadMode)
		if err != nil {
			return nil, err
		}
		for {
			r, err := readRecord(s)
			if err != nil {
				break // EOF or damage: stop replaying this stream
			}
			apply(r)
		}
		if err := s.Close(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Recover rebuilds directory bindings from snapshot + journal, fixing any
// stale leader addresses against the live file system, and returns how many
// bindings were restored. Run it after the Scavenger: the Scavenger brings
// back the files, Recover brings back their names.
func (l *Log) Recover() (int, error) {
	bindings, err := l.Bindings()
	if err != nil {
		return 0, err
	}
	restored := 0
	for dirFV, names := range bindings {
		var d *dir.Directory
		if dirFV == l.fs.RootDir().FV {
			d, err = dir.OpenRoot(l.fs)
		} else {
			d, err = dir.Open(l.fs, file.FN{FV: dirFV, Leader: disk.NilVDA})
			if err != nil {
				// The directory file itself is gone; its bindings go to the
				// root so nothing is silently lost.
				d, err = dir.OpenRoot(l.fs)
			}
		}
		if err != nil {
			return restored, err
		}
		for name, fn := range names {
			// Verify the target still exists; correct the address hint.
			f, err := l.fs.Open(fn)
			if err != nil {
				continue // the file is gone; nothing to bind
			}
			if err := d.Update(name, f.FN()); err != nil {
				return restored, err
			}
			restored++
		}
	}
	return restored, nil
}
