package cpu

// A machine-code diagnostic suite, in the spirit of the programs the
// diskless Alto configuration existed to run (§5.2). Each diagnostic is an
// assembly program that checks one corner of the instruction set and stores
// a verdict word; the Go test just reads the verdict. Failures in the
// interpreter show up as wrong machine-visible behaviour, exactly as they
// would on hardware.

import (
	"testing"

	"altoos/internal/asm"
	"altoos/internal/mem"
)

// runDiag assembles and runs a program that must store 1 in the word
// labelled VERDICT.
func runDiag(t *testing.T, name, src string) {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	vaddr, ok := p.Symbols["VERDICT"]
	if !ok {
		t.Fatalf("%s: no VERDICT label", name)
	}
	m := mem.New()
	m.StoreBlock(p.Origin, p.Words)
	c := New(m, nil, SysFunc(func(*CPU, Word) error { return ErrHalted }))
	c.Reset(p.Entry)
	if _, err := c.Run(100000); err != nil {
		t.Fatalf("%s: %v (%v)", name, err, c)
	}
	if got := m.Load(vaddr); got != 1 {
		t.Errorf("%s: VERDICT = %d (%v)", name, got, c)
	}
}

func TestDiagIndexedAddressing(t *testing.T) {
	runDiag(t, "indexed", `
; walk a table via AC2-relative addressing and sum it
START:	LDA 2, TBLP     ; AC2 = table base
	SUB 0, 0        ; sum = 0
	LDA 1, 0(2)
	ADD 1, 0
	LDA 1, 1(2)
	ADD 1, 0
	LDA 1, 2(2)
	ADD 1, 0
	LDA 1, WANT
	SUB 0, 1, SZR   ; sum == want?
	JMP FAIL
	LDA 0, ONE
	STA 0, VERDICT
FAIL:	HALT
TBLP:	.word TBL
WANT:	.word 60
ONE:	.word 1
VERDICT: .word 0
TBL:	.word 10, 20, 30
`)
}

func TestDiagNegativeIndexing(t *testing.T) {
	runDiag(t, "negative-index", `
START:	LDA 2, MIDP
	LDA 0, -1(2)    ; the word before MID
	LDA 1, WANT
	SUB 0, 1, SZR
	JMP FAIL
	LDA 0, ONE
	STA 0, VERDICT
FAIL:	HALT
MIDP:	.word MID
WANT:	.word 77
ONE:	.word 1
VERDICT: .word 0
	.word 77        ; MID-1
MID:	.word 0
`)
}

func TestDiagRotatesThroughCarry(t *testing.T) {
	runDiag(t, "rotates", `
; rotate 0x8000 left with carry cleared: result 0, carry 1;
; then rotate right: back to 0x8000 with carry 0.
START:	LDA 0, BIT
	MOVZL 0, 0      ; 17-bit rotate left, carry pre-cleared
	MOV# 0, 0, SZR  ; result must be 0
	JMP FAIL
	MOVR 0, 0       ; rotate right: carry bit returns as the top bit
	LDA 1, BIT
	SUB 0, 1, SZR
	JMP FAIL
	LDA 0, ONE
	STA 0, VERDICT
FAIL:	HALT
BIT:	.word 0x8000
ONE:	.word 1
VERDICT: .word 0
`)
}

func TestDiagSkipSenses(t *testing.T) {
	runDiag(t, "skips", `
; SEZ: skip on either carry==0 or result==0. SBN: skip on both nonzero.
START:	SUBO 0, 0       ; result 0, carry set: SEZ must still skip
	MOV# 0, 0, SEZ
	JMP FAIL
	LDA 0, ONE
	MOVO# 0, 0, SBN ; result 1, carry 1: both nonzero -> skip
	JMP FAIL
	LDA 0, ONE
	STA 0, VERDICT
FAIL:	HALT
ONE:	.word 1
VERDICT: .word 0
`)
}

func TestDiagSubroutineLinkage(t *testing.T) {
	runDiag(t, "jsr-chain", `
; nested subroutine calls with AC3 saved by hand (no stack hardware)
START:	JSR DOUBLE      ; AC0 = 2*AC0 ... with AC0 preloaded below
	JMP CONT
DOUBLE:	STA 3, RET1
	LDA 0, SEED
	ADD 0, 0        ; AC0 *= 2 (seed + seed)
	LDA 0, SEED
	LDA 1, SEED
	ADD 1, 0        ; AC0 = 2*seed
	JMP @RET1
RET1:	.word 0
CONT:	LDA 1, WANT
	SUB 1, 0, SZR
	JMP FAIL
	LDA 0, ONE
	STA 0, VERDICT
FAIL:	HALT
SEED:	.word 21
WANT:	.word 42
ONE:	.word 1
VERDICT: .word 0
`)
}

func TestDiagMemoryFill(t *testing.T) {
	// A loop that fills a buffer through an indirect pointer with
	// auto-advance done in software, then verifies it.
	runDiag(t, "fill", `
START:	LDA 2, BUFP     ; AC2 = buffer cursor
	LDA 0, N
	STA 0, CNT
	LDA 0, PATTERN
FILL:	STA 0, 0(2)
	LDA 1, ONE      ; advance cursor
	LDA 3, ZERO     ; (scratch)
	MOV 2, 3
	ADD 1, 3
	MOV 3, 2
	DSZ CNT
	JMP FILL
	; verify
	LDA 2, BUFP
	LDA 1, 0(2)
	LDA 3, PATTERN
	SUB 1, 3, SZR
	JMP FAIL
	LDA 2, BUFP
	LDA 1, 7(2)     ; last filled word
	LDA 3, PATTERN
	SUB 1, 3, SZR
	JMP FAIL
	LDA 0, ONE
	STA 0, VERDICT
FAIL:	HALT
BUFP:	.word BUF
N:	.word 8
CNT:	.word 0
PATTERN: .word 0x5A5A
ZERO:	.word 0
ONE:	.word 1
VERDICT: .word 0
BUF:	.blk 8
`)
}
