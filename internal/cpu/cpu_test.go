package cpu

import (
	"errors"
	"testing"
	"testing/quick"

	"altoos/internal/asm"
	"altoos/internal/mem"
)

// load assembles src into a fresh machine and returns the CPU, halting SYS 0.
func load(t *testing.T, src string, sys SysHandler) *CPU {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New()
	m.StoreBlock(p.Origin, p.Words)
	if sys == nil {
		sys = SysFunc(func(c *CPU, code Word) error {
			if code == 0 {
				return ErrHalted
			}
			return errors.New("unexpected trap")
		})
	}
	c := New(m, nil, sys)
	c.Reset(p.Entry)
	return c
}

// run executes to halt with a step bound.
func run(t *testing.T, c *CPU) {
	t.Helper()
	if _, err := c.Run(100000); err != nil {
		t.Fatalf("run: %v (%v)", err, c)
	}
	if !c.Halted {
		t.Fatalf("did not halt: %v", c)
	}
}

func TestAddProgram(t *testing.T) {
	c := load(t, `
START:	LDA 0, A
	LDA 1, B
	ADD 0, 1
	STA 1, SUM
	HALT
A:	.word 7
B:	.word 35
SUM:	.word 0
`, nil)
	run(t, c)
	// SUM is at entry+7.
	if got := c.Mem.Load(0x400 + 7); got != 42 {
		t.Fatalf("SUM = %d, want 42", got)
	}
}

func TestLoopWithDSZ(t *testing.T) {
	// Sum 1..10 by looping: uses ISZ/DSZ, memory-indexed access.
	c := load(t, `
START:	LDA 0, N
	SUB 1, 1        ; AC1 = 0 (accumulator)
LOOP:	ADD 0, 1        ; AC1 += AC0
	LDA 2, ONE
	SUB 2, 0        ; AC0 -= 1
	MOV# 0, 0, SZR  ; test AC0 == 0
	JMP LOOP
	STA 1, OUT
	HALT
N:	.word 10
ONE:	.word 1
OUT:	.word 0
`, nil)
	run(t, c)
	out := c.Mem.Load(0x400 + 11)
	if out != 55 {
		t.Fatalf("sum = %d, want 55", out)
	}
}

func TestJSRSetsAC3(t *testing.T) {
	c := load(t, `
START:	JSR SUBR
	HALT            ; return lands here via JMP 0(3)
	HALT
SUBR:	LDA 0, K
	JMP 0(3)
K:	.word 99
`, nil)
	run(t, c)
	if c.AC[0] != 99 {
		t.Fatalf("AC0 = %d, want 99", c.AC[0])
	}
}

func TestIndirectAddressing(t *testing.T) {
	c := load(t, `
START:	LDA 0, @PTR
	STA 0, @PTR2
	HALT
PTR:	.word X
PTR2:	.word Y
X:	.word 123
Y:	.word 0
`, nil)
	run(t, c)
	if got := c.Mem.Load(0x400 + 6); got != 123 {
		t.Fatalf("Y = %d, want 123", got)
	}
}

func TestISZSkips(t *testing.T) {
	c := load(t, `
START:	ISZ CTR        ; 0xFFFF + 1 = 0: skip
	JMP FAIL
	LDA 0, OK
	STA 0, OUT
	HALT
FAIL:	SUB 0, 0
	STA 0, OUT
	HALT
CTR:	.word 0xFFFF
OK:	.word 1
OUT:	.word 0xDEAD
`, nil)
	run(t, c)
	if got := c.Mem.Load(0x400 + 9); got != 1 {
		t.Fatalf("OUT = %#x, want 1", got)
	}
}

func TestCarrySemantics(t *testing.T) {
	// ADDZ: clear carry, add; carry-out complements → carry set on overflow.
	c := load(t, `
START:	LDA 0, BIG
	LDA 1, BIG
	ADDZ 0, 1, SZC  ; overflow → carry set → no skip
	JMP CARRYSET
	SUB 0, 0
	STA 0, OUT
	HALT
CARRYSET: LDA 0, ONE
	STA 0, OUT
	HALT
BIG:	.word 0x8000
ONE:	.word 1
OUT:	.word 0xDEAD
`, nil)
	run(t, c)
	if got := c.Mem.Load(0x400 + 11); got != 1 {
		t.Fatalf("OUT = %#x, want 1 (carry set path)", got)
	}
}

func TestShifts(t *testing.T) {
	// MOVS swaps bytes.
	c := load(t, `
START:	LDA 0, V
	MOVS 0, 0
	STA 0, OUT
	HALT
V:	.word 0x1234
OUT:	.word 0
`, nil)
	run(t, c)
	if got := c.Mem.Load(0x400 + 5); got != 0x3412 {
		t.Fatalf("MOVS = %#x, want 0x3412", got)
	}
}

func TestSysTrap(t *testing.T) {
	var gotCode Word
	sys := SysFunc(func(c *CPU, code Word) error {
		if code == 0 {
			return ErrHalted
		}
		gotCode = code
		c.AC[0] = 0x55
		return nil
	})
	c := load(t, `
START:	SYS 42
	STA 0, OUT
	HALT
OUT:	.word 0
`, sys)
	run(t, c)
	if gotCode != 42 {
		t.Fatalf("trap code = %d", gotCode)
	}
	if got := c.Mem.Load(0x400 + 3); got != 0x55 {
		t.Fatalf("OUT = %#x, want 0x55 (trap result)", got)
	}
}

func TestSysWithNoHandlerHalts(t *testing.T) {
	p := asm.MustAssemble("START: SYS 1")
	m := mem.New()
	m.StoreBlock(p.Origin, p.Words)
	c := New(m, nil, nil)
	c.Reset(p.Entry)
	err := c.Step()
	if !errors.Is(err, ErrHalted) || !c.Halted {
		t.Fatalf("got %v, halted=%v", err, c.Halted)
	}
}

func TestStepOnHaltedCPU(t *testing.T) {
	c := load(t, "START: HALT", nil)
	run(t, c)
	if err := c.Step(); !errors.Is(err, ErrHalted) {
		t.Fatalf("got %v, want ErrHalted", err)
	}
}

func TestClockAdvancesPerInstruction(t *testing.T) {
	c := load(t, `
START:	SUB 0, 0
	SUB 1, 1
	HALT
`, nil)
	run(t, c)
	want := InstrTime * 3
	if got := c.Clock.Now(); got != want {
		t.Fatalf("clock = %v, want %v", got, want)
	}
}

func TestRunRespectsStepBound(t *testing.T) {
	c := load(t, "START: JMP START", nil)
	n, err := c.Run(50)
	if err != nil || n != 50 || c.Halted {
		t.Fatalf("n=%d err=%v halted=%v", n, err, c.Halted)
	}
}

// Property: ADD/SUB agree with native uint16 arithmetic for all inputs.
func TestALUArithmeticProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		m := mem.New()
		// ADD 0,1 then HALT at 0x400.
		m.StoreBlock(0x400, []Word{0x8000 | 0<<13 | 1<<11 | 6<<8, 3 << 13})
		c := New(m, nil, SysFunc(func(*CPU, Word) error { return ErrHalted }))
		c.Reset(0x400)
		c.AC[0], c.AC[1] = a, b
		if _, err := c.Run(10); err != nil {
			return false
		}
		if c.AC[1] != a+b {
			return false
		}
		// SUB 0,1.
		m.StoreBlock(0x400, []Word{0x8000 | 0<<13 | 1<<11 | 5<<8, 3 << 13})
		c2 := New(m, nil, SysFunc(func(*CPU, Word) error { return ErrHalted }))
		c2.Reset(0x400)
		c2.AC[0], c2.AC[1] = a, b
		if _, err := c2.Run(10); err != nil {
			return false
		}
		return c2.AC[1] == b-a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: NEG then ADD returns to zero (two's complement inverse).
func TestNegIsAdditiveInverseProperty(t *testing.T) {
	f := func(a uint16) bool {
		m := mem.New()
		// NEG 0,1 ; ADD 0,1 ; HALT — AC1 = -a + a = 0.
		m.StoreBlock(0x400, []Word{
			0x8000 | 0<<13 | 1<<11 | 1<<8,
			0x8000 | 0<<13 | 1<<11 | 6<<8,
			3 << 13,
		})
		c := New(m, nil, SysFunc(func(*CPU, Word) error { return ErrHalted }))
		c.Reset(0x400)
		c.AC[0] = a
		if _, err := c.Run(10); err != nil {
			return false
		}
		return c.AC[1] == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
