// Package cpu implements the Alto's emulated processor: a Data General
// Nova-like 16-bit instruction set (§2: the machine "executes an instruction
// set that supports BCPL"). The real Alto implemented this instruction set —
// and others — in writeable microcode; we interpret it directly.
//
// A real, resumable processor is what makes the paper's world-swapping
// honest: OutLoad and InLoad (§4.1) save and restore *this* state — the
// accumulators, program counter, carry bit and all of main memory — and a
// restored program genuinely continues from the saved program counter.
//
// Instruction formats (standard Nova):
//
//	Memory reference:  [op:3][ac:2 or fn:2][@:1][idx:2][disp:8]
//	  000 fn: 00 JMP, 01 JSR, 10 ISZ, 11 DSZ
//	  001 LDA ac    010 STA ac
//	  idx: 00 page zero, 01 PC-relative, 10 AC2-relative, 11 AC3-relative
//	ALU:               [1][src:2][dst:2][fn:3][sh:2][cy:2][#:1][skip:3]
//	  fn: COM NEG MOV INC ADC SUB ADD AND
//	Trap (I/O format): [011][code:13] — SYS: calls into the operating system
//
// The trap format replaces the Nova's I/O instructions: on the Alto, device
// access and OS services went through trap-like mechanisms into microcode or
// resident system code.
package cpu

import (
	"errors"
	"fmt"
	"time"

	"altoos/internal/mem"
	"altoos/internal/sim"
)

// Word is the machine word.
type Word = uint16

// Register names for the four accumulators.
const (
	AC0 = 0
	AC1 = 1
	AC2 = 2
	AC3 = 3
)

// InstrTime is the modelled time per instruction. The Alto's Nova emulation
// ran on 800 ns memory at roughly half a million instructions per second.
const InstrTime = 2 * time.Microsecond

// Errors from execution.
var (
	// ErrHalted reports a step on a halted processor.
	ErrHalted = errors.New("cpu: halted")
	// ErrBadInstr reports an undefined encoding.
	ErrBadInstr = errors.New("cpu: undefined instruction")
)

// SysHandler receives SYS traps — the boundary where the machine enters the
// operating system's resident procedures. The handler may read and write the
// CPU state freely (the machine has no protection: the OS is just code).
type SysHandler interface {
	// Sys handles trap code. Returning an error halts the machine with
	// that error; returning ErrHalted halts it cleanly.
	Sys(c *CPU, code Word) error
}

// SysFunc adapts a function to SysHandler.
type SysFunc func(c *CPU, code Word) error

// Sys implements SysHandler.
func (f SysFunc) Sys(c *CPU, code Word) error { return f(c, code) }

// CPU is the processor state: everything OutLoad must save.
type CPU struct {
	AC     [4]Word
	PC     Word
	Carry  bool
	Halted bool

	Mem   *mem.Memory
	Clock *sim.Clock
	Sys   SysHandler

	// Steps counts executed instructions, for tests and benchmarks.
	Steps int64
}

// New returns a CPU over m, advancing clock (which may be nil for a private
// clock) and trapping to sys (which may be nil; traps then halt).
func New(m *mem.Memory, clock *sim.Clock, sys SysHandler) *CPU {
	if clock == nil {
		clock = sim.NewClock()
	}
	return &CPU{Mem: m, Clock: clock, Sys: sys}
}

// Reset clears registers and the halt flag, leaving memory alone.
func (c *CPU) Reset(pc Word) {
	c.AC = [4]Word{}
	c.PC = pc
	c.Carry = false
	c.Halted = false
}

// effective computes the effective address of a memory-reference
// instruction.
func (c *CPU) effective(instr Word) Word {
	disp := Word(instr & 0xFF)
	var ea Word
	switch (instr >> 8) & 3 {
	case 0: // page zero
		ea = disp
	case 1: // PC-relative, signed displacement, relative to the instruction
		ea = c.PC - 1 + signExtend(disp)
	case 2:
		ea = c.AC[2] + signExtend(disp)
	case 3:
		ea = c.AC[3] + signExtend(disp)
	}
	if instr&0x0400 != 0 { // indirect
		ea = c.Mem.Load(ea)
	}
	return ea
}

func signExtend(b Word) Word {
	if b&0x80 != 0 {
		return b | 0xFF00
	}
	return b
}

// Step executes one instruction.
func (c *CPU) Step() error {
	if c.Halted {
		return ErrHalted
	}
	c.Clock.Advance(InstrTime)
	c.Steps++
	instr := c.Mem.Load(c.PC)
	c.PC++

	switch {
	case instr&0x8000 != 0:
		return c.alu(instr)
	case instr>>13 == 0: // JMP/JSR/ISZ/DSZ
		ea := c.effective(instr)
		switch (instr >> 11) & 3 {
		case 0: // JMP
			c.PC = ea
		case 1: // JSR
			c.AC[3] = c.PC
			c.PC = ea
		case 2: // ISZ
			v := c.Mem.Load(ea) + 1
			c.Mem.Store(ea, v)
			if v == 0 {
				c.PC++
			}
		case 3: // DSZ
			v := c.Mem.Load(ea) - 1
			c.Mem.Store(ea, v)
			if v == 0 {
				c.PC++
			}
		}
	case instr>>13 == 1: // LDA
		ac := (instr >> 11) & 3
		c.AC[ac] = c.Mem.Load(c.effective(instr))
	case instr>>13 == 2: // STA
		ac := (instr >> 11) & 3
		c.Mem.Store(c.effective(instr), c.AC[ac])
	case instr>>13 == 3: // SYS trap
		code := instr & 0x1FFF
		if c.Sys == nil {
			c.Halted = true
			return fmt.Errorf("%w: SYS %d with no handler", ErrHalted, code)
		}
		if err := c.Sys.Sys(c, code); err != nil {
			c.Halted = true
			if errors.Is(err, ErrHalted) {
				return nil
			}
			return err
		}
	default:
		c.Halted = true
		return fmt.Errorf("%w: %#04x at %#04x", ErrBadInstr, instr, c.PC-1)
	}
	return nil
}

// alu executes a two-accumulator arithmetic instruction.
func (c *CPU) alu(instr Word) error {
	src := (instr >> 13) & 3
	dst := (instr >> 11) & 3
	fn := (instr >> 8) & 7
	shift := (instr >> 6) & 3
	carryCtl := (instr >> 4) & 3
	noLoad := instr&0x8 != 0
	skip := instr & 7

	// Carry preparation.
	cy := c.Carry
	switch carryCtl {
	case 1:
		cy = false
	case 2:
		cy = true
	case 3:
		cy = !cy
	}

	// Function. Arithmetic carry-out *complements* the prepared carry, as on
	// the Nova; logical functions pass the prepared carry through.
	s, d := uint32(c.AC[src]), uint32(c.AC[dst])
	var res uint32
	carryBit := cy
	arith := func(t uint32) {
		res = t & 0xFFFF
		if t > 0xFFFF {
			carryBit = !cy
		}
	}
	switch fn {
	case 0: // COM: one's complement of src
		res = ^s & 0xFFFF
	case 1: // NEG: two's complement of src
		arith((^s & 0xFFFF) + 1)
	case 2: // MOV
		res = s
	case 3: // INC
		arith(s + 1)
	case 4: // ADC: dst + ~src
		arith(d + (^s & 0xFFFF))
	case 5: // SUB: dst - src
		arith(d + (^s & 0xFFFF) + 1)
	case 6: // ADD
		arith(d + s)
	case 7: // AND
		res = d & s
	}
	r := res
	if carryBit {
		r |= 1 << 16
	}

	// Shifter.
	switch shift {
	case 1: // L: rotate left through carry (17-bit)
		r = ((r << 1) | (r >> 16)) & 0x1FFFF
	case 2: // R: rotate right through carry
		r = ((r >> 1) | (r << 16)) & 0x1FFFF
	case 3: // S: swap bytes, carry unchanged
		lo := r & 0xFFFF
		r = r&0x10000 | (lo>>8|lo<<8)&0xFFFF
	}

	result := Word(r & 0xFFFF)
	newCarry := r&0x10000 != 0

	// Skip sensing uses the shifter output even when no-load.
	doSkip := false
	switch skip {
	case 0:
	case 1:
		doSkip = true // SKP
	case 2:
		doSkip = !newCarry // SZC
	case 3:
		doSkip = newCarry // SNC
	case 4:
		doSkip = result == 0 // SZR
	case 5:
		doSkip = result != 0 // SNR
	case 6:
		doSkip = !newCarry || result == 0 // SEZ
	case 7:
		doSkip = newCarry && result != 0 // SBN
	}

	if !noLoad {
		c.AC[dst] = result
		c.Carry = newCarry
	}
	if doSkip {
		c.PC++
	}
	return nil
}

// Run executes until the machine halts or maxSteps instructions have run
// (maxSteps <= 0 means no limit). It returns the number of steps executed.
func (c *CPU) Run(maxSteps int64) (int64, error) {
	var n int64
	for !c.Halted {
		if maxSteps > 0 && n >= maxSteps {
			return n, nil
		}
		if err := c.Step(); err != nil {
			if errors.Is(err, ErrHalted) {
				return n, nil
			}
			return n, err
		}
		n++
	}
	return n, nil
}

// Halt stops the machine (used by the SYS 0 convention).
func (c *CPU) Halt() { c.Halted = true }

// String formats the register state for diagnostics.
func (c *CPU) String() string {
	return fmt.Sprintf("PC=%#04x AC=[%#04x %#04x %#04x %#04x] C=%v halted=%v",
		c.PC, c.AC[0], c.AC[1], c.AC[2], c.AC[3], c.Carry, c.Halted)
}
