package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Exporters. Two formats:
//
//   - Chrome trace_event JSON (WriteChromeTrace): load the file in
//     chrome://tracing (or https://ui.perfetto.dev) to see the storage
//     stack on a timeline, one lane per subsystem, in simulated time.
//   - A metrics snapshot (Snapshot + WriteText/WriteJSON): counters and
//     histograms, sorted by name.
//
// Both are deterministic: events go out in recorded order, names in sorted
// order, and every number formats the same way on every run. Byte-identical
// output for identical workloads is part of the package contract.

// chromeEvent is one trace_event entry. Field order fixes the JSON shape;
// args is a map, which encoding/json marshals with sorted keys.
type chromeEvent struct {
	Name  string           `json:"name"`
	Cat   string           `json:"cat"`
	Ph    string           `json:"ph"`
	Ts    float64          `json:"ts"`
	Dur   *float64         `json:"dur,omitempty"`
	Pid   int              `json:"pid"`
	Tid   int              `json:"tid"`
	Scope string           `json:"s,omitempty"`
	Args  map[string]int64 `json:"args,omitempty"`
}

// lanes maps a category to its thread id, so each subsystem renders as one
// named lane. Order here is display order in the viewer.
var lanes = []string{"disk", "scavenge", "zone", "stream", "swap", "ether", "fileserver", "crashpoint"}

func laneOf(cat string) int {
	for i, c := range lanes {
		if c == cat {
			return i + 1
		}
	}
	return len(lanes) + 1
}

// Lanes returns the category lanes in display order, for exporters outside
// the package (the fleet merger names the same lanes per machine).
func Lanes() []string { return append([]string(nil), lanes...) }

// LaneIndex returns the 1-based thread id a category renders on; unknown
// categories share the lane after the named ones.
func LaneIndex(cat string) int { return laneOf(cat) }

// usec converts simulated time to trace_event microseconds.
func usec(d time.Duration) float64 { return float64(d) / 1e3 }

// WriteChromeTrace writes the ring's events as a Chrome trace_event JSON
// document, one event per line.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := io.WriteString(bw, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	writeEv := func(ev chromeEvent, last bool) error {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if _, err := bw.Write(b); err != nil {
			return err
		}
		sep := ",\n"
		if last {
			sep = "\n"
		}
		_, err = io.WriteString(bw, sep)
		return err
	}

	events := r.Events() // nil receiver yields an empty trace
	dropped := r.Snapshot().Dropped
	// Name the lanes first, so the viewer shows subsystems, not numbers.
	for i, cat := range lanes {
		// thread_name metadata wants a string arg; emit it by hand since
		// chromeEvent.Args is numeric.
		b := fmt.Sprintf(`{"name":"thread_name","cat":"__metadata","ph":"M","ts":0,"pid":1,"tid":%d,"args":{"name":%q}}`,
			i+1, cat)
		sep := ",\n"
		if dropped == 0 && len(events) == 0 && i == len(lanes)-1 {
			sep = "\n"
		}
		if _, err := io.WriteString(bw, b+sep); err != nil {
			return err
		}
	}
	// A ring that evicted self-describes it up front: a truncated trace must
	// be distinguishable from a short run without consulting the metrics
	// snapshot. The instant lands at ts 0 with process scope, ahead of every
	// surviving event.
	if dropped > 0 {
		ev := chromeEvent{Name: "ring-evicted", Cat: "__metadata", Ph: "i", Pid: 1, Tid: 0,
			Scope: "p", Args: map[string]int64{"dropped": dropped}}
		if err := writeEv(ev, len(events) == 0); err != nil {
			return err
		}
	}
	for i, ev := range events {
		a0n, a1n := ev.Kind.ArgNames()
		ce := chromeEvent{
			Name: ev.Name,
			Cat:  ev.Kind.Category(),
			Ts:   usec(ev.T),
			Pid:  1,
			Tid:  laneOf(ev.Kind.Category()),
			Args: map[string]int64{a0n: ev.A0, a1n: ev.A1},
		}
		if ce.Name == "" {
			ce.Name = ev.Kind.String()
		}
		if ev.Flow != 0 {
			ce.Args["flow"] = ev.Flow
		}
		if ev.Dur > 0 {
			d := usec(ev.Dur)
			ce.Ph, ce.Dur = "X", &d
		} else {
			ce.Ph, ce.Scope = "i", "t"
		}
		if err := writeEv(ce, i == len(events)-1); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(bw, "]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// CounterSnap is one counter in a metrics snapshot.
type CounterSnap struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// BucketSnap is one non-empty histogram bucket: Count samples with
// value < Lt (and >= the previous bucket's bound).
type BucketSnap struct {
	Lt    float64 `json:"lt"`
	Count int64   `json:"count"`
}

// HistSnap is one histogram in a metrics snapshot. P50/P90/P99 are derived
// from the log₂ buckets: each is the upper bound of the bucket where the
// cumulative count crosses the quantile, clamped to the observed [Min, Max]
// — a deterministic integer computation, so snapshots stay byte-identical.
type HistSnap struct {
	Name    string       `json:"name"`
	Count   int64        `json:"count"`
	Sum     float64      `json:"sum"`
	Min     float64      `json:"min"`
	Max     float64      `json:"max"`
	P50     float64      `json:"p50"`
	P90     float64      `json:"p90"`
	P99     float64      `json:"p99"`
	Buckets []BucketSnap `json:"buckets,omitempty"`
}

// Mean returns the histogram's average sample.
func (h HistSnap) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// quantile returns the bucket-derived estimate for the q-th percentile
// (q in 0..100): the upper bound of the first bucket whose cumulative count
// reaches ceil(q% of Count), clamped to the observed extremes.
func (h HistSnap) quantile(q int64) float64 {
	if h.Count == 0 {
		return 0
	}
	var cum int64
	for _, b := range h.Buckets {
		cum += b.Count
		// cum/Count >= q/100, in integers to keep the comparison exact.
		if cum*100 >= h.Count*q {
			v := b.Lt
			if v > h.Max {
				v = h.Max
			}
			if v < h.Min {
				v = h.Min
			}
			return v
		}
	}
	return h.Max
}

// Metrics is a point-in-time copy of the recorder's aggregates.
type Metrics struct {
	Events     int64         `json:"events"`
	Dropped    int64         `json:"dropped"`
	Counters   []CounterSnap `json:"counters"`
	Histograms []HistSnap    `json:"histograms"`
}

// Snapshot copies the counters and histograms, sorted by name. A nil
// recorder yields the zero Metrics.
func (r *Recorder) Snapshot() Metrics {
	var m Metrics
	if r == nil {
		return m
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m.Events = r.emitted
	m.Dropped = r.dropped
	for name, v := range r.counters {
		m.Counters = append(m.Counters, CounterSnap{Name: name, Value: v})
	}
	sort.Slice(m.Counters, func(i, j int) bool { return m.Counters[i].Name < m.Counters[j].Name })
	for name, h := range r.hists {
		hs := HistSnap{Name: name, Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
		for i, c := range h.buckets {
			if c > 0 {
				hs.Buckets = append(hs.Buckets, BucketSnap{Lt: float64(int64(1) << i), Count: c})
			}
		}
		hs.P50, hs.P90, hs.P99 = hs.quantile(50), hs.quantile(90), hs.quantile(99)
		m.Histograms = append(m.Histograms, hs)
	}
	sort.Slice(m.Histograms, func(i, j int) bool { return m.Histograms[i].Name < m.Histograms[j].Name })
	return m
}

// WriteJSON writes the snapshot as indented JSON.
func (m Metrics) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}

// WriteText writes the snapshot as aligned name/value lines for terminals
// (and the Swat REPL's stats command).
func (m Metrics) WriteText(w io.Writer) error {
	width := len("events")
	for _, c := range m.Counters {
		if len(c.Name) > width {
			width = len(c.Name)
		}
	}
	for _, h := range m.Histograms {
		if len(h.Name) > width {
			width = len(h.Name)
		}
	}
	if _, err := fmt.Fprintf(w, "%-*s %d (%d dropped)\n", width, "events", m.Events, m.Dropped); err != nil {
		return err
	}
	for _, c := range m.Counters {
		if _, err := fmt.Fprintf(w, "%-*s %d\n", width, c.Name, c.Value); err != nil {
			return err
		}
	}
	for _, h := range m.Histograms {
		if _, err := fmt.Fprintf(w, "%-*s n=%d mean=%.2f min=%.2f max=%.2f p50=%.2f p90=%.2f p99=%.2f\n",
			width, h.Name, h.Count, h.Mean(), h.Min, h.Max, h.P50, h.P90, h.P99); err != nil {
			return err
		}
	}
	return nil
}

// Text renders the snapshot as a string.
func (m Metrics) Text() string {
	var b strings.Builder
	_ = m.WriteText(&b)
	return b.String()
}
