// Package trace is the flight recorder for the simulated machine: a
// zero-dependency, deterministic event-tracing and metrics layer timed
// exclusively off sim.Clock. The disk, scavenger, zones, streams, swapper
// and network emit typed events into a fixed-capacity ring buffer, and
// exporters turn the recording into a Chrome trace_event file (for
// chrome://tracing) or a compact metrics snapshot.
//
// The paper explains the system almost entirely through timing arguments —
// label checks cost "one more revolution", scavenging "takes about a
// minute", OutLoad "about a second" — and the recorder makes those costs
// visible per layer instead of only as a final benchmark number.
//
// Determinism contract: every event is stamped with *simulated* time (the
// virtual clock the hardware models advance), never the host's wall clock,
// and the exporters iterate in recorded or sorted order only. Two runs of
// the same workload therefore produce byte-identical traces; a trace diff
// is a behaviour diff. cmd/altotrace asserts this property as a test.
//
// A nil *Recorder is a valid no-op recorder: every method checks the
// receiver, so instrumented hot paths pay one branch when tracing is off.
package trace

import (
	"fmt"
	"math/bits"
	"sync"
	"time"

	"altoos/internal/sim"
)

// Kind is the type of one recorded event. The taxonomy covers the whole
// storage stack, lowest layer first.
type Kind uint8

const (
	// KindSeek is a disk arm movement (span; args: from and to cylinder).
	KindSeek Kind = iota
	// KindRotate is a rotational-latency wait for a sector slot (span).
	KindRotate
	// KindDiskOp is one whole sector operation, seek and rotation included
	// (span; args: virtual disk address and outcome code).
	KindDiskOp
	// KindCheckFail is a label-check mismatch — the expected outcome when a
	// hint proves stale (instant; args: address and failing word index).
	KindCheckFail
	// KindBadSector is an operation hitting an unrecoverable sector.
	KindBadSector
	// KindCrashWrite is a write lost to the simulated power failure (args:
	// disk address, lifetime write-action index at which the crash fired).
	KindCrashWrite
	// KindCRCMismatch reports that a value read found the sector's recorded
	// checksum stale: damage happened outside the disciplined write path.
	KindCRCMismatch
	// KindScavPhase is one phase of a scavenging or compaction pass (span).
	KindScavPhase
	// KindZoneAlloc is a free-storage allocation (args: address, words).
	KindZoneAlloc
	// KindZoneFree is a free-storage release (args: address, words).
	KindZoneFree
	// KindStreamOpen is a disk-stream open (name: leader name; args: FID).
	KindStreamOpen
	// KindStreamClose is a disk-stream close.
	KindStreamClose
	// KindSwapOut is a machine state written to a file — OutLoad and its
	// relatives (span; args: FID).
	KindSwapOut
	// KindSwapIn is a machine state restored from a file — InLoad, Boot,
	// the debugger's Resume (span; args: FID).
	KindSwapIn
	// KindEtherSend is a packet serialized onto the wire (span; args:
	// destination, words).
	KindEtherSend
	// KindEtherCollision is a send started while the medium was busy.
	KindEtherCollision
	// KindEtherRecv is a packet taken off a station's input queue.
	KindEtherRecv
	// KindDiskChain is one chained transfer: a batch of sector operations
	// scheduled as a unit (span; name: chain mode; args: length, failures).
	KindDiskChain
	// KindFSSession is one file-server session, accept to close (span;
	// args: the peer's station address, data bytes moved).
	KindFSSession
	// KindCrashExplore is one explored crash point: the workload re-run to
	// its injected power failure, then Scavenger repair and fsck verdict
	// (span; name: workload; args: crash point, invariant violations found).
	KindCrashExplore
	// KindEtherFault is one fault verdict the medium handed a delivery:
	// drop, dup, corrupt or delay (instant; name: the verdict; args: the
	// destination address and the judged-delivery index). The event carries
	// the packet's flow ID, so injected loss shows up as extra arrows on
	// the same causal chain instead of vanishing silently.
	KindEtherFault
	// KindFSRequest is one file-server request served: a fetch or store,
	// request message to reply queued (span; name: "fetch" or "store";
	// args: the peer's station address, data bytes moved). Carries the flow
	// ID the client allocated, linking the server's work to the request.
	KindFSRequest
	// KindClusterAudit is one peer-audit round a replica ran against its
	// shard group: digest polls out, verdicts in (span; name: the replica;
	// args: peers polled, divergent files found). Carries the round's flow
	// ID, shared with every digest request and heal it caused.
	KindClusterAudit
	// KindClusterHeal is one file healed from a peer: the replica detected
	// its copy diverged — bit rot or a missed overwrite — and refetched the
	// authoritative copy (span; name: the file; args: the authority replica
	// index, bytes refetched). Rides the audit round's flow.
	KindClusterHeal

	numKinds
)

// kindInfo fixes each kind's display name, category lane and argument
// names. The table is what keeps the exporters deterministic: nothing about
// an event's presentation is computed from runtime state.
var kindInfo = [numKinds]struct {
	name, cat, a0, a1 string
}{
	KindSeek:           {"seek", "disk", "from_cyl", "to_cyl"},
	KindRotate:         {"rotate", "disk", "slot", "vda"},
	KindDiskOp:         {"op", "disk", "vda", "outcome"},
	KindCheckFail:      {"check-fail", "disk", "vda", "word"},
	KindBadSector:      {"bad-sector", "disk", "vda", "outcome"},
	KindCrashWrite:     {"crash-write", "disk", "vda", "write_idx"},
	KindCRCMismatch:    {"crc-mismatch", "disk", "vda", "outcome"},
	KindScavPhase:      {"phase", "scavenge", "a0", "a1"},
	KindZoneAlloc:      {"alloc", "zone", "addr", "words"},
	KindZoneFree:       {"free", "zone", "addr", "words"},
	KindStreamOpen:     {"open", "stream", "fid", "mode"},
	KindStreamClose:    {"close", "stream", "fid", "mode"},
	KindSwapOut:        {"save-state", "swap", "fid", "pages"},
	KindSwapIn:         {"load-state", "swap", "fid", "pages"},
	KindEtherSend:      {"send", "ether", "dst", "words"},
	KindEtherCollision: {"collision", "ether", "dst", "src"},
	KindEtherRecv:      {"recv", "ether", "src", "words"},
	KindDiskChain:      {"chain", "disk", "ops", "failures"},
	KindFSSession:      {"session", "fileserver", "peer", "bytes"},
	KindCrashExplore:   {"explore", "crashpoint", "point", "violations"},
	KindEtherFault:     {"fault", "ether", "dst", "judged"},
	KindFSRequest:      {"request", "fileserver", "peer", "bytes"},
	KindClusterAudit:   {"audit", "cluster", "peers", "divergent"},
	KindClusterHeal:    {"heal", "cluster", "authority", "bytes"},
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if int(k) < len(kindInfo) {
		return kindInfo[k].name
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Category returns the subsystem lane the kind belongs to.
func (k Kind) Category() string {
	if int(k) < len(kindInfo) {
		return kindInfo[k].cat
	}
	return "?"
}

// ArgNames returns the display names of the event's two numeric arguments.
func (k Kind) ArgNames() (a0, a1 string) {
	if int(k) < len(kindInfo) {
		return kindInfo[k].a0, kindInfo[k].a1
	}
	return "a0", "a1"
}

// Event is one recorded occurrence. T is simulated time; Dur is zero for
// instants and positive for spans. Name carries kind-specific detail (the
// operation shape, a phase or file name); A0/A1 carry numeric detail whose
// meaning the kind's ArgNames declare. Flow, when nonzero, is the causal
// flow ID the event belongs to: events sharing a flow — a client request,
// its wire deliveries (retransmits included), the server work it caused —
// form one chain, rendered as arrows in the merged fleet trace.
type Event struct {
	T    time.Duration
	Dur  time.Duration
	Kind Kind
	Name string
	A0   int64
	A1   int64
	Flow int64
}

// DefaultEvents is the ring capacity used when New is given none.
const DefaultEvents = 1 << 16

// Recorder is the flight recorder: a bounded ring of events plus named
// counters and histograms. It is safe for concurrent use and never calls
// out of the package while holding its lock, so any subsystem may emit
// while holding its own lock (it is a leaf in the lock order, like
// sim.Clock).
type Recorder struct {
	mu       sync.Mutex
	ring     []Event
	next     int // insertion index
	full     bool
	emitted  int64
	dropped  int64
	counters map[string]int64
	hists    map[string]*histogram

	// Flow allocation state: the domain (one per machine in a fleet, set
	// by scope.Fleet) and the per-recorder allocation sequence. Flows are
	// handed out under mu, in emission order — never from wall clock or
	// math/rand — so two runs allocate identical IDs.
	flowDomain uint16
	flowSeq    uint16
}

// New creates a recorder holding up to capacity events (DefaultEvents if
// capacity is not positive). Counters and histograms are unbounded; only
// the event ring evicts, oldest first.
func New(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultEvents
	}
	return &Recorder{
		ring:     make([]Event, 0, capacity),
		counters: map[string]int64{},
		hists:    map[string]*histogram{},
	}
}

// record appends one event, evicting the oldest when full.
func (r *Recorder) record(ev Event) {
	r.mu.Lock()
	r.emitted++
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, ev)
	} else {
		r.ring[r.next] = ev
		r.next = (r.next + 1) % cap(r.ring)
		r.full = true
		r.dropped++
	}
	r.mu.Unlock()
}

// Emit records an instant event at the given simulated time.
func (r *Recorder) Emit(now time.Duration, k Kind, name string, a0, a1 int64) {
	if r == nil {
		return
	}
	r.record(Event{T: now, Kind: k, Name: name, A0: a0, A1: a1})
}

// EmitSpan records a completed interval [start, start+dur).
func (r *Recorder) EmitSpan(start, dur time.Duration, k Kind, name string, a0, a1 int64) {
	if r == nil {
		return
	}
	r.record(Event{T: start, Dur: dur, Kind: k, Name: name, A0: a0, A1: a1})
}

// EmitFlow records an instant event stamped with a causal flow ID.
func (r *Recorder) EmitFlow(now time.Duration, k Kind, name string, a0, a1, flow int64) {
	if r == nil {
		return
	}
	r.record(Event{T: now, Kind: k, Name: name, A0: a0, A1: a1, Flow: flow})
}

// EmitSpanFlow records a completed interval stamped with a causal flow ID.
func (r *Recorder) EmitSpanFlow(start, dur time.Duration, k Kind, name string, a0, a1, flow int64) {
	if r == nil {
		return
	}
	r.record(Event{T: start, Dur: dur, Kind: k, Name: name, A0: a0, A1: a1, Flow: flow})
}

// FlowBits is the width of a wire flow ID: flows travel in one 16-bit
// transport header word, so the whole ID — domain and sequence — must fit a
// Word. The low FlowSeqBits carry the per-recorder sequence; the bits above
// them carry the machine's flow domain.
const (
	FlowBits      = 16
	FlowSeqBits   = 10
	flowSeqMask   = (1 << FlowSeqBits) - 1
	maxFlowDomain = (1 << (FlowBits - FlowSeqBits)) - 1
)

// SetFlowDomain assigns the recorder's flow domain — the high bits of every
// flow ID it allocates. A fleet gives each machine's recorder a distinct
// domain (scope.Fleet does this in creation order) so flows allocated on
// different machines never collide when merged. Domains above the 6-bit
// capacity wrap; the single-machine default is domain 0.
func (r *Recorder) SetFlowDomain(d int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.flowDomain = uint16(d) & maxFlowDomain
	r.mu.Unlock()
}

// NextFlow allocates the next causal flow ID: the recorder's flow domain in
// the high bits, its allocation sequence in the low ten. The sequence is
// advanced under the recorder's lock, interleaved deterministically with
// the emission stream — never wall clock, never math/rand — and skips zero
// (zero means "no flow"). It wraps after 1023 live allocations per domain,
// which bounds wire flow IDs to one 16-bit header word; flows are short
// (one request each), so a wrapped ID's earlier life has long since closed.
// A nil recorder allocates 0: with tracing off, flow stamping no-ops.
func (r *Recorder) NextFlow() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	r.flowSeq = (r.flowSeq + 1) & flowSeqMask
	if r.flowSeq == 0 {
		r.flowSeq = 1
	}
	f := int64(r.flowDomain)<<FlowSeqBits | int64(r.flowSeq)
	r.mu.Unlock()
	return f
}

// Span is an open interval begun on a clock; End closes and records it.
// The zero Span (and any Span begun on a nil Recorder) is a no-op.
type Span struct {
	r      *Recorder
	c      *sim.Clock
	k      Kind
	name   string
	a0, a1 int64
	flow   int64
	start  time.Duration
}

// Begin opens a span at c's current simulated time. The span is recorded
// only when End (or EndWith) is called, as one complete event.
func (r *Recorder) Begin(c *sim.Clock, k Kind, name string, a0, a1 int64) Span {
	if r == nil || c == nil {
		return Span{}
	}
	return Span{r: r, c: c, k: k, name: name, a0: a0, a1: a1, start: c.Now()}
}

// BeginFlow opens a span bound to a causal flow ID.
func (r *Recorder) BeginFlow(c *sim.Clock, k Kind, name string, a0, a1, flow int64) Span {
	if r == nil || c == nil {
		return Span{}
	}
	return Span{r: r, c: c, k: k, name: name, a0: a0, a1: a1, flow: flow, start: c.Now()}
}

// End closes the span at its clock's current time and records it.
func (s Span) End() {
	if s.r == nil {
		return
	}
	s.r.EmitSpanFlow(s.start, s.c.Now()-s.start, s.k, s.name, s.a0, s.a1, s.flow)
}

// EndWith closes the span, overriding its numeric arguments — for results
// that are only known when the work completes.
func (s Span) EndWith(a0, a1 int64) {
	if s.r == nil {
		return
	}
	s.r.EmitSpanFlow(s.start, s.c.Now()-s.start, s.k, s.name, a0, a1, s.flow)
}

// Add bumps a named counter.
func (r *Recorder) Add(name string, delta int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// Counter reads a named counter (zero if never bumped).
func (r *Recorder) Counter(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// Observe adds one sample to a named histogram.
func (r *Recorder) Observe(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	h := r.hists[name]
	if h == nil {
		h = &histogram{min: v, max: v}
		r.hists[name] = h
	}
	h.observe(v)
	r.mu.Unlock()
}

// Len reports the number of events currently held in the ring.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ring)
}

// Events returns the recorded events, oldest first.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.ring))
	if r.full {
		out = append(out, r.ring[r.next:]...)
		out = append(out, r.ring[:r.next]...)
	} else {
		out = append(out, r.ring...)
	}
	return out
}

// Reset clears the ring, counters and histograms — used between benchmark
// iterations, like sim.Clock.Reset.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.ring = r.ring[:0]
	r.next = 0
	r.full = false
	r.emitted = 0
	r.dropped = 0
	r.flowSeq = 0
	r.counters = map[string]int64{}
	r.hists = map[string]*histogram{}
	r.mu.Unlock()
}

// Source is implemented by objects that carry a flight recorder. The disk
// drive is the canonical source: every layer that holds a Device — the
// file system, the Scavenger, the swapper — reaches the system's recorder
// through it without any new plumbing in their interfaces.
type Source interface {
	TraceRecorder() *Recorder
}

// Of returns the recorder carried by v, or nil (the no-op recorder) when v
// is nil or carries none.
func Of(v any) *Recorder {
	if s, ok := v.(Source); ok {
		return s.TraceRecorder()
	}
	return nil
}

// histogram is a deterministic log2-bucketed histogram: sample v lands in
// bucket bits.Len64(v) (bucket 0 holds v < 1). Power-of-two buckets keep
// the export small and the math exact for the quantities observed here —
// revolutions, queue depths, words.
const histBuckets = 33

type histogram struct {
	count    int64
	sum      float64
	min, max float64
	buckets  [histBuckets]int64
}

func (h *histogram) observe(v float64) {
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	idx := 0
	if v >= 1 {
		idx = bits.Len64(uint64(v))
		if idx >= histBuckets {
			idx = histBuckets - 1
		}
	}
	h.buckets[idx]++
}
