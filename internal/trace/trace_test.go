package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"altoos/internal/sim"
)

func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	r.Emit(time.Second, KindDiskOp, "op", 1, 2)
	r.EmitSpan(0, time.Second, KindSeek, "seek", 0, 1)
	r.Add("c", 1)
	r.Observe("h", 3)
	r.Reset()
	sp := r.Begin(sim.NewClock(), KindScavPhase, "sweep", 0, 0)
	sp.End()
	sp.EndWith(1, 2)
	if r.Len() != 0 || r.Counter("c") != 0 || r.Events() != nil {
		t.Fatal("nil recorder recorded something")
	}
	m := r.Snapshot()
	if m.Events != 0 || len(m.Counters) != 0 {
		t.Fatalf("nil snapshot not empty: %+v", m)
	}
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("empty trace is not valid JSON: %s", buf.String())
	}
}

func TestSpanPairing(t *testing.T) {
	c := sim.NewClock()
	r := New(16)
	c.Advance(10 * time.Millisecond)
	sp := r.Begin(c, KindScavPhase, "sweep", 0, 0)
	c.Advance(30 * time.Millisecond)
	sp.EndWith(7, 8)
	evs := r.Events()
	if len(evs) != 1 {
		t.Fatalf("got %d events, want 1", len(evs))
	}
	ev := evs[0]
	if ev.T != 10*time.Millisecond || ev.Dur != 30*time.Millisecond {
		t.Errorf("span [%v +%v], want [10ms +30ms]", ev.T, ev.Dur)
	}
	if ev.A0 != 7 || ev.A1 != 8 {
		t.Errorf("EndWith args %d,%d not recorded", ev.A0, ev.A1)
	}
}

func TestRingEvictsOldestAndCountsDropped(t *testing.T) {
	r := New(4)
	for i := 0; i < 10; i++ {
		r.Emit(time.Duration(i), KindZoneAlloc, "", int64(i), 0)
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := int64(6 + i); ev.A0 != want {
			t.Errorf("event %d is A0=%d, want %d (oldest-first order)", i, ev.A0, want)
		}
	}
	if m := r.Snapshot(); m.Events != 10 || m.Dropped != 6 {
		t.Errorf("emitted/dropped = %d/%d, want 10/6", m.Events, m.Dropped)
	}
}

func TestCountersAndHistograms(t *testing.T) {
	r := New(4)
	r.Add("disk.check.fail", 2)
	r.Add("disk.check.fail", 3)
	r.Add("zone.alloc", 1)
	for _, v := range []float64{0.5, 1, 2, 3, 1000} {
		r.Observe("disk.op.revs", v)
	}
	if got := r.Counter("disk.check.fail"); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	m := r.Snapshot()
	if len(m.Counters) != 2 || m.Counters[0].Name != "disk.check.fail" {
		t.Errorf("counters not sorted by name: %+v", m.Counters)
	}
	if len(m.Histograms) != 1 {
		t.Fatalf("got %d histograms", len(m.Histograms))
	}
	h := m.Histograms[0]
	if h.Count != 5 || h.Min != 0.5 || h.Max != 1000 {
		t.Errorf("hist n=%d min=%v max=%v", h.Count, h.Min, h.Max)
	}
	if want := (0.5 + 1 + 2 + 3 + 1000) / 5; h.Mean() != want {
		t.Errorf("mean = %v, want %v", h.Mean(), want)
	}
	var total int64
	for _, b := range h.Buckets {
		total += b.Count
	}
	if total != 5 {
		t.Errorf("bucket counts sum to %d, want 5", total)
	}
}

func TestChromeTraceShape(t *testing.T) {
	r := New(16)
	r.EmitSpan(40*time.Millisecond, 5*time.Millisecond, KindDiskOp, "check/read", 123, 0)
	r.Emit(45*time.Millisecond, KindCheckFail, "label", 123, 2)
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	// One lane-name metadata event per named lane + 2 real ones.
	if want := len(lanes) + 2; len(doc.TraceEvents) != want {
		t.Fatalf("got %d trace events, want %d", len(doc.TraceEvents), want)
	}
	span := doc.TraceEvents[len(lanes)]
	if span["ph"] != "X" || span["ts"].(float64) != 40000 || span["dur"].(float64) != 5000 {
		t.Errorf("span event wrong: %v", span)
	}
	inst := doc.TraceEvents[len(lanes)+1]
	if inst["ph"] != "i" || inst["cat"] != "disk" {
		t.Errorf("instant event wrong: %v", inst)
	}
}

// TestHistogramPercentiles pins the bucket-derived quantiles: each is the
// upper bound of the log₂ bucket where the cumulative count crosses the
// quantile, clamped to the observed extremes — integer math only, so two
// snapshots of the same samples agree to the byte.
func TestHistogramPercentiles(t *testing.T) {
	r := New(4)
	for i := 0; i < 50; i++ {
		r.Observe("lat", 1) // bucket lt=2
	}
	for i := 0; i < 40; i++ {
		r.Observe("lat", 4) // bucket lt=8
	}
	for i := 0; i < 10; i++ {
		r.Observe("lat", 100) // bucket lt=128, clamped to max
	}
	h := r.Snapshot().Histograms[0]
	if h.P50 != 2 || h.P90 != 8 || h.P99 != 100 {
		t.Errorf("p50/p90/p99 = %v/%v/%v, want 2/8/100", h.P50, h.P90, h.P99)
	}

	// A single sub-unit sample: every percentile clamps to the one value.
	r2 := New(4)
	r2.Observe("one", 0.5)
	if h := r2.Snapshot().Histograms[0]; h.P50 != 0.5 || h.P99 != 0.5 {
		t.Errorf("single-sample percentiles = %v/%v, want 0.5/0.5", h.P50, h.P99)
	}

	text := r.Snapshot().Text()
	for _, want := range []string{"p50=2.00", "p90=8.00", "p99=100.00"} {
		if !strings.Contains(text, want) {
			t.Errorf("text snapshot missing %q:\n%s", want, text)
		}
	}
	var jb bytes.Buffer
	if err := r.Snapshot().WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(jb.String(), `"p50": 2`) {
		t.Errorf("JSON snapshot missing p50:\n%s", jb.String())
	}
}

// TestChromeTraceSelfDescribesEviction: a ring that wrapped must say so in
// its own export — a metadata instant carrying the dropped count — so a
// truncated timeline is never mistaken for a quiet machine.
func TestChromeTraceSelfDescribesEviction(t *testing.T) {
	r := New(4)
	for i := 0; i < 10; i++ {
		r.Emit(time.Duration(i)*time.Millisecond, KindDiskOp, "op", int64(i), 0)
	}
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"name":"ring-evicted"`, `"dropped":6`} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("export of a wrapped ring lacks %s:\n%s", want, buf.String())
		}
	}
	// And a ring that did not wrap stays silent about eviction.
	var quiet bytes.Buffer
	q := New(4)
	q.Emit(0, KindDiskOp, "op", 1, 0)
	if err := q.WriteChromeTrace(&quiet); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(quiet.String(), "ring-evicted") {
		t.Error("export of an unwrapped ring claims eviction")
	}
}

// TestExportDeterminism is the package-level contract: identical emission
// sequences yield byte-identical exports (cmd/altotrace asserts the same
// end-to-end over whole experiments).
func TestExportDeterminism(t *testing.T) {
	build := func() *Recorder {
		r := New(64)
		for i := 0; i < 40; i++ {
			r.Emit(time.Duration(i)*time.Millisecond, Kind(i%int(numKinds)), "e", int64(i), int64(i*i))
			r.Add("counter.a", int64(i))
			r.Add("counter.b", 1)
			r.Observe("hist", float64(i))
		}
		return r
	}
	var t1, t2, m1, m2 bytes.Buffer
	a, b := build(), build()
	if err := a.WriteChromeTrace(&t1); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteChromeTrace(&t2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(t1.Bytes(), t2.Bytes()) {
		t.Error("identical recordings exported different trace bytes")
	}
	if err := a.Snapshot().WriteJSON(&m1); err != nil {
		t.Fatal(err)
	}
	if err := b.Snapshot().WriteJSON(&m2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(m1.Bytes(), m2.Bytes()) {
		t.Error("identical recordings exported different metrics bytes")
	}
}

func TestMetricsText(t *testing.T) {
	r := New(4)
	r.Add("zone.alloc", 3)
	r.Observe("ether.queue.depth", 2)
	text := r.Snapshot().Text()
	for _, want := range []string{"events", "zone.alloc", "3", "ether.queue.depth", "n=1"} {
		if !strings.Contains(text, want) {
			t.Errorf("text snapshot missing %q:\n%s", want, text)
		}
	}
}

func TestReset(t *testing.T) {
	r := New(4)
	r.Emit(0, KindZoneAlloc, "", 0, 0)
	r.Add("c", 1)
	r.Observe("h", 1)
	r.Reset()
	if r.Len() != 0 || r.Counter("c") != 0 {
		t.Error("Reset left state behind")
	}
	if m := r.Snapshot(); m.Events != 0 || len(m.Histograms) != 0 {
		t.Errorf("Reset left aggregates: %+v", m)
	}
}

func TestKindStringsTotal(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if strings.HasPrefix(k.String(), "Kind(") {
			t.Errorf("kind %d has no name", k)
		}
		if k.Category() == "?" {
			t.Errorf("kind %v has no category", k)
		}
		a0, a1 := k.ArgNames()
		if a0 == "" || a1 == "" {
			t.Errorf("kind %v has unnamed args", k)
		}
	}
}
