package scope

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"altoos/internal/trace"
)

func TestFleetAssignsDistinctFlowDomains(t *testing.T) {
	f := NewFleet(64)
	a := f.Machine("a")
	b := f.Machine("b")
	if a == b {
		t.Fatal("distinct machines share a recorder")
	}
	if f.Machine("a") != a {
		t.Fatal("Machine is not idempotent")
	}
	fa, fb := a.NextFlow(), b.NextFlow()
	if fa == fb {
		t.Fatalf("flows collide across machines: %d", fa)
	}
	if fa == 0 || fb == 0 {
		t.Fatalf("allocated the no-flow id: a=%d b=%d", fa, fb)
	}
	ms := f.Machines()
	if len(ms) != 2 || ms[0].Name != "a" || ms[1].Name != "b" {
		t.Fatalf("Machines() not in creation order: %+v", ms)
	}
}

// synthFleet builds a reproducible two-machine recording with flows crossing
// the machines.
func synthFleet() []MachineTrace {
	f := NewFleet(256)
	a, b := f.Machine("alpha"), f.Machine("beta")
	flow := a.NextFlow()
	a.EmitSpanFlow(0, 10*time.Millisecond, trace.KindFSSession, "client", 1, 100, flow)
	a.EmitFlow(time.Millisecond, trace.KindEtherSend, "", 2, 50, flow)
	b.EmitFlow(2*time.Millisecond, trace.KindEtherRecv, "", 1, 50, flow)
	b.EmitSpanFlow(3*time.Millisecond, 4*time.Millisecond, trace.KindFSRequest, "store", 1, 100, flow)
	b.EmitSpan(4*time.Millisecond, time.Millisecond, trace.KindDiskOp, "op", 7, 0)
	b.Emit(9*time.Millisecond, trace.KindCheckFail, "label", 7, 1)
	return f.Machines()
}

func render(t *testing.T, ms []MachineTrace, workers int) (string, string, string) {
	t.Helper()
	m := Merge(ms, workers)
	var tb, cb, pb bytes.Buffer
	if err := m.WriteChrome(&tb); err != nil {
		t.Fatal(err)
	}
	if err := WriteCollapsed(&cb, m.MachineProfiles()); err != nil {
		t.Fatal(err)
	}
	if err := WriteTop(&pb, m.MachineProfiles(), 10); err != nil {
		t.Fatal(err)
	}
	return tb.String(), cb.String(), pb.String()
}

func TestMergeOrderAndWorkerIndependence(t *testing.T) {
	ms := synthFleet()
	rev := []MachineTrace{ms[1], ms[0]}
	t1, c1, p1 := render(t, ms, 1)
	t2, c2, p2 := render(t, rev, 1)
	t3, c3, p3 := render(t, ms, 8)
	if t1 != t2 || t1 != t3 {
		t.Error("merged trace depends on input order or worker count")
	}
	if c1 != c2 || c1 != c3 {
		t.Error("collapsed profile depends on input order or worker count")
	}
	if p1 != p2 || p1 != p3 {
		t.Error("top table depends on input order or worker count")
	}
	// And across identical re-recordings.
	t4, _, _ := render(t, synthFleet(), 4)
	if t1 != t4 {
		t.Error("identical recordings merged to different bytes")
	}
}

func TestMergedChromeShape(t *testing.T) {
	tj, _, _ := render(t, synthFleet(), 2)
	for _, want := range []string{
		`"name":"process_name"`, `"name":"alpha"`, `"name":"beta"`,
		`"ph":"s"`, `"ph":"t"`, `"ph":"f"`, `"bp":"e"`,
		`"flow":`,
	} {
		if !strings.Contains(tj, want) {
			t.Errorf("merged trace lacks %s", want)
		}
	}
	// alpha sorts before beta: pids are assigned in name order.
	if strings.Index(tj, `"name":"alpha"`) > strings.Index(tj, `"name":"beta"`) {
		t.Error("machines not in name order")
	}
	// The lone-event flow rule: a flow seen once draws no arrows.
	f := NewFleet(16)
	f.Machine("solo").EmitSpanFlow(0, time.Millisecond, trace.KindFSSession, "", 1, 1, 99)
	only, _, _ := render(t, f.Machines(), 1)
	if strings.Contains(only, `"ph":"s"`) {
		t.Error("single-event flow drew an arrow")
	}
}

func TestMergeReportsRingEviction(t *testing.T) {
	f := NewFleet(4)
	r := f.Machine("tiny")
	for i := 0; i < 10; i++ {
		r.Emit(time.Duration(i)*time.Millisecond, trace.KindDiskOp, "op", int64(i), 0)
	}
	tj, _, _ := render(t, f.Machines(), 1)
	if !strings.Contains(tj, `"name":"ring-evicted"`) || !strings.Contains(tj, `"dropped":6`) {
		t.Errorf("merged trace does not self-describe eviction:\n%s", tj)
	}
}

func TestProfileFold(t *testing.T) {
	const ms = time.Millisecond
	f := NewFleet(64)
	r := f.Machine("m")
	// A request span containing a disk op containing a rotate, plus a
	// disjoint second request and an instant that must not profile.
	r.EmitSpan(0, 10*ms, trace.KindFSRequest, "store", 1, 0)
	r.EmitSpan(2*ms, 4*ms, trace.KindDiskOp, "op", 1, 0)
	r.EmitSpan(3*ms, 1*ms, trace.KindRotate, "rotate", 1, 0)
	r.EmitSpan(20*ms, 5*ms, trace.KindFSRequest, "store", 2, 0)
	r.Emit(21*ms, trace.KindCheckFail, "label", 1, 1)
	p := Merge(f.Machines(), 1).MachineProfiles()[0]

	if p.Spans != 4 {
		t.Fatalf("folded %d spans, want 4", p.Spans)
	}
	if want := 15 * ms; p.Covered != want {
		t.Errorf("covered = %v, want %v", p.Covered, want)
	}
	if want := 15 * ms; p.Total != want {
		t.Errorf("total = %v, want %v", p.Total, want)
	}
	if len(p.Roots) != 1 {
		t.Fatalf("got %d roots, want 1: %+v", len(p.Roots), p.Roots)
	}
	req := p.Roots[0]
	if req.Name != "fileserver/store" || req.Count != 2 || req.Cum != 15*ms || req.Self != 11*ms {
		t.Errorf("request node wrong: %+v", req)
	}
	if len(req.Children) != 1 {
		t.Fatalf("request children: %+v", req.Children)
	}
	op := req.Children[0]
	if op.Name != "disk/op" || op.Cum != 4*ms || op.Self != 3*ms {
		t.Errorf("disk node wrong: %+v", op)
	}
	if len(op.Children) != 1 || op.Children[0].Name != "disk/rotate" || op.Children[0].Self != 1*ms {
		t.Errorf("rotate node wrong: %+v", op.Children)
	}

	// Self sums to the root total: nothing double-counted, nothing lost.
	var selfSum time.Duration
	walk("", p.Roots, func(_ string, n *ProfileNode) { selfSum += n.Self })
	if selfSum != p.Total {
		t.Errorf("sum of self %v != total %v", selfSum, p.Total)
	}
}

func TestProfileRecursionCollapse(t *testing.T) {
	const ms = time.Millisecond
	f := NewFleet(64)
	r := f.Machine("m")
	// Three concurrent sessions enclosing one another, as a loaded server
	// records them: one node, counted three times, no self-nesting chain.
	r.EmitSpan(0, 30*ms, trace.KindFSSession, "", 1, 0)
	r.EmitSpan(1*ms, 28*ms, trace.KindFSSession, "", 2, 0)
	r.EmitSpan(2*ms, 26*ms, trace.KindFSSession, "", 3, 0)
	r.EmitSpan(5*ms, 2*ms, trace.KindFSRequest, "fetch", 3, 0)
	p := Merge(f.Machines(), 1).MachineProfiles()[0]
	if len(p.Roots) != 1 {
		t.Fatalf("roots: %+v", p.Roots)
	}
	sess := p.Roots[0]
	if sess.Name != "fileserver/session" || sess.Count != 3 || sess.Cum != 30*ms {
		t.Errorf("collapsed session node wrong: %+v", sess)
	}
	if len(sess.Children) != 1 || sess.Children[0].Name != "fileserver/fetch" {
		t.Fatalf("children under collapsed node wrong: %+v", sess.Children)
	}
	if sess.Self != 28*ms {
		t.Errorf("session self = %v, want 28ms", sess.Self)
	}
}

func TestCollapsedOutput(t *testing.T) {
	_, collapsed, _ := render(t, synthFleet(), 1)
	lines := strings.Split(strings.TrimSuffix(collapsed, "\n"), "\n")
	for i := 1; i < len(lines); i++ {
		if lines[i-1] >= lines[i] {
			t.Errorf("collapsed lines not strictly sorted: %q >= %q", lines[i-1], lines[i])
		}
	}
	found := false
	for _, l := range lines {
		if strings.HasPrefix(l, "beta;fileserver/store;disk/op ") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected nested beta stack in:\n%s", collapsed)
	}
}
