// Package scope is the fleet observability layer: it takes the per-machine
// flight recorders of a multi-machine run (each machine one internal/trace
// Recorder, all timed off the one shared sim.Clock) and produces the three
// artifacts that make a cross-machine run debuggable:
//
//   - one merged Chrome trace_event document, one process per machine, with
//     the causal flows stitched across machines as ph:s/t/f arrow events —
//     a client's request, its wire deliveries (retransmits included), the
//     fault verdicts the medium handed them, and the server session they
//     opened render as one chain;
//   - a hierarchical sim-time profile per machine (self/cumulative time
//     keyed on category/name nesting), exported as a collapsed-stack
//     flamegraph file and a top-N text table, aggregable across the fleet;
//   - per-machine metrics snapshots (the recorders' own Snapshot).
//
// Determinism contract: everything here is a pure function of the recorded
// events. Machines are ordered by name, events by (simulated time, machine,
// ring position) — a total order independent of merge-input order — so the
// merged trace and the profile are byte-identical across runs, across merge
// input orders, and across worker counts (cmd/altoscope -check pins this).
package scope

import (
	"sync"

	"altoos/internal/trace"
)

// MachineTrace names one machine's recorder for merging.
type MachineTrace struct {
	Name string
	Rec  *trace.Recorder
}

// Fleet hands out per-machine recorders by name. Each machine created gets a
// distinct flow domain (in creation order), so flow IDs allocated on
// different machines never collide when their traces merge.
type Fleet struct {
	mu       sync.Mutex
	capacity int
	order    []string
	byName   map[string]*trace.Recorder
}

// NewFleet builds a fleet whose recorders hold up to capacity events each
// (trace.DefaultEvents if not positive).
func NewFleet(capacity int) *Fleet {
	return &Fleet{capacity: capacity, byName: map[string]*trace.Recorder{}}
}

// Machine returns the named machine's recorder, creating it on first use.
// The method value is the shape experiments.RunScoped consumes.
func (f *Fleet) Machine(name string) *trace.Recorder {
	f.mu.Lock()
	defer f.mu.Unlock()
	if r, ok := f.byName[name]; ok {
		return r
	}
	r := trace.New(f.capacity)
	r.SetFlowDomain(len(f.order))
	f.byName[name] = r
	f.order = append(f.order, name)
	return r
}

// Machines returns the fleet's recorders in creation order.
func (f *Fleet) Machines() []MachineTrace {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]MachineTrace, len(f.order))
	for i, name := range f.order {
		out[i] = MachineTrace{Name: name, Rec: f.byName[name]}
	}
	return out
}
