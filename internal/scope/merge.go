package scope

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"altoos/internal/trace"
)

// Merged is N machines' recordings folded onto the shared sim-time axis.
// Build one with Merge; it is immutable afterwards.
type Merged struct {
	machines []machineData
	events   []mergedEvent
}

// machineData is one machine's share of the merge, post-snapshot.
type machineData struct {
	name    string
	events  []trace.Event
	dropped int64
	profile *MachineProfile
}

// mergedEvent is one event on the global timeline: the machine index (into
// the name-sorted machine list) and the ring position break simulated-time
// ties, giving a total order no merge-input order can perturb.
type mergedEvent struct {
	ev      trace.Event
	machine int
	ring    int
}

// Merge snapshots every machine's recorder and builds the global timeline.
// The per-machine work (event snapshot, profile fold) fans out over workers;
// results land at each machine's slot, so the output is identical across
// worker counts. Machine names must be distinct (Fleet guarantees it).
func Merge(ms []MachineTrace, workers int) *Merged {
	m := &Merged{machines: make([]machineData, len(ms))}
	for i := range ms {
		m.machines[i] = machineData{name: ms[i].Name}
	}
	sort.Slice(m.machines, func(i, j int) bool { return m.machines[i].name < m.machines[j].name })
	recs := make([]*trace.Recorder, len(m.machines))
	for i := range m.machines {
		for j := range ms {
			if ms[j].Name == m.machines[i].name {
				recs[i] = ms[j].Rec
			}
		}
	}

	if workers < 1 {
		workers = 1
	}
	if workers > len(m.machines) {
		workers = len(m.machines)
	}
	// The pool pulls machine indices from an atomic cursor; each result
	// lands at its machine's slot (the crashpoint explorer's shape), so the
	// fold order cannot leak into the output.
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for n := 0; n < workers; n++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(m.machines) {
					return
				}
				md := &m.machines[i]
				md.events = recs[i].Events()
				md.dropped = recs[i].Snapshot().Dropped
				md.profile = foldProfile(md.name, md.events)
			}
		}()
	}
	wg.Wait()

	total := 0
	for i := range m.machines {
		total += len(m.machines[i].events)
	}
	m.events = make([]mergedEvent, 0, total)
	for i := range m.machines {
		for j, ev := range m.machines[i].events {
			m.events = append(m.events, mergedEvent{ev: ev, machine: i, ring: j})
		}
	}
	sort.Slice(m.events, func(a, b int) bool {
		x, y := &m.events[a], &m.events[b]
		if x.ev.T != y.ev.T {
			return x.ev.T < y.ev.T
		}
		if x.machine != y.machine {
			return x.machine < y.machine
		}
		return x.ring < y.ring
	})
	return m
}

// MachineProfiles returns the per-machine profiles, machines in name order.
func (m *Merged) MachineProfiles() []*MachineProfile {
	out := make([]*MachineProfile, len(m.machines))
	for i := range m.machines {
		out[i] = m.machines[i].profile
	}
	return out
}

// chromeEvent is one merged trace_event entry. Field order fixes the JSON
// shape; Args is a map, which encoding/json marshals with sorted keys.
type chromeEvent struct {
	Name  string           `json:"name"`
	Cat   string           `json:"cat"`
	Ph    string           `json:"ph"`
	Ts    float64          `json:"ts"`
	Dur   *float64         `json:"dur,omitempty"`
	Pid   int              `json:"pid"`
	Tid   int              `json:"tid"`
	ID    *int64           `json:"id,omitempty"`
	Scope string           `json:"s,omitempty"`
	BP    string           `json:"bp,omitempty"`
	Args  map[string]int64 `json:"args,omitempty"`
}

// usec converts simulated time to trace_event microseconds.
func usec(d time.Duration) float64 { return float64(d) / 1e3 }

// WriteChrome writes the merged fleet trace: one process per machine (pid =
// 1 + its index in name order), the usual category lanes as threads within
// each process, and every flow with at least two events rendered as a chain
// of flow events (ph s/t/f sharing id = the flow) whose arrows cross machine
// boundaries in the viewer.
func (m *Merged) WriteChrome(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := io.WriteString(bw, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	// Flow chains: first/last global index per flow, counting anchors. Only
	// flows touched by two or more events draw arrows; a flow seen once has
	// nothing to link. Keyed lookups only — iteration stays on the event
	// slice, never the maps.
	first := map[int64]int{}
	last := map[int64]int{}
	for i := range m.events {
		f := m.events[i].ev.Flow
		if f == 0 {
			continue
		}
		if _, ok := first[f]; !ok {
			first[f] = i
		}
		last[f] = i
	}

	// Everything funnels through one writer so the separator logic stays in
	// one place: a trailing entry gets "\n", every other ",\n".
	wrote := false
	flush := func(raw string) error {
		if wrote {
			if _, err := io.WriteString(bw, ",\n"); err != nil {
				return err
			}
		}
		wrote = true
		_, err := io.WriteString(bw, raw)
		return err
	}
	emit := func(ev chromeEvent) error {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		return flush(string(b))
	}

	lanes := trace.Lanes()
	for i := range m.machines {
		// process_name wants a string arg; write it by hand like the
		// single-machine exporter does.
		if err := flush(fmt.Sprintf(`{"name":"process_name","cat":"__metadata","ph":"M","ts":0,"pid":%d,"tid":0,"args":{"name":%q}}`,
			i+1, m.machines[i].name)); err != nil {
			return err
		}
		for j, cat := range lanes {
			if err := flush(fmt.Sprintf(`{"name":"thread_name","cat":"__metadata","ph":"M","ts":0,"pid":%d,"tid":%d,"args":{"name":%q}}`,
				i+1, j+1, cat)); err != nil {
				return err
			}
		}
		if d := m.machines[i].dropped; d > 0 {
			if err := emit(chromeEvent{Name: "ring-evicted", Cat: "__metadata", Ph: "i", Pid: i + 1,
				Scope: "p", Args: map[string]int64{"dropped": d}}); err != nil {
				return err
			}
		}
	}

	for i := range m.events {
		me := &m.events[i]
		ev := me.ev
		a0n, a1n := ev.Kind.ArgNames()
		ce := chromeEvent{
			Name: ev.Name,
			Cat:  ev.Kind.Category(),
			Ts:   usec(ev.T),
			Pid:  me.machine + 1,
			Tid:  trace.LaneIndex(ev.Kind.Category()),
			Args: map[string]int64{a0n: ev.A0, a1n: ev.A1},
		}
		if ce.Name == "" {
			ce.Name = ev.Kind.String()
		}
		if ev.Flow != 0 {
			ce.Args["flow"] = ev.Flow
		}
		if ev.Dur > 0 {
			d := usec(ev.Dur)
			ce.Ph, ce.Dur = "X", &d
		} else {
			ce.Ph, ce.Scope = "i", "t"
		}
		if err := emit(ce); err != nil {
			return err
		}
		if f := ev.Flow; f != 0 && first[f] != last[f] {
			fe := chromeEvent{Name: "flow", Cat: "flow", Ts: ce.Ts, Pid: ce.Pid, Tid: ce.Tid, ID: &me.ev.Flow}
			switch i {
			case first[f]:
				fe.Ph = "s"
			case last[f]:
				fe.Ph, fe.BP = "f", "e"
			default:
				fe.Ph = "t"
			}
			if err := emit(fe); err != nil {
				return err
			}
		}
	}
	if _, err := io.WriteString(bw, "\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
