package scope

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"altoos/internal/trace"
)

// The sim-time profiler. Every span a machine recorded is an interval of
// simulated time attributed to one category/name pair ("disk/op",
// "fileserver/request"); nesting on the timeline — a disk op inside a chain
// inside a store request — is the call hierarchy the paper's timing
// arguments talk about. foldProfile rebuilds that hierarchy from the
// intervals alone: spans sorted by (start asc, end desc, ring position) are
// pushed through a stack, a span nests under the innermost open span that
// contains it, and whatever the children don't cover is the parent's self
// time. Cumulative time of the roots equals the machine's whole accounted
// span time by construction, so the ≥95%-accounted acceptance bar reduces
// to roots-vs-union arithmetic, which the tests pin.

// ProfileNode is one category/name in a machine's fold.
type ProfileNode struct {
	Name     string // "category/name"
	Count    int64
	Self     time.Duration // Cum minus the children's Cum
	Cum      time.Duration
	Children []*ProfileNode

	childTime time.Duration
	index     map[string]*ProfileNode
}

// MachineProfile is one machine's hierarchical sim-time profile.
type MachineProfile struct {
	Machine string
	Roots   []*ProfileNode
	Spans   int           // spans folded
	Total   time.Duration // sum of root cumulative times
	Covered time.Duration // union of all span intervals on the timeline
}

// child returns (creating) the named child node.
func (n *ProfileNode) child(key string) *ProfileNode {
	if c, ok := n.index[key]; ok {
		return c
	}
	c := &ProfileNode{Name: key, index: map[string]*ProfileNode{}}
	if n.index == nil {
		n.index = map[string]*ProfileNode{}
	}
	n.index[key] = c
	n.Children = append(n.Children, c)
	return c
}

// finalize computes self times and orders children by name, recursively.
func (n *ProfileNode) finalize() {
	n.Self = n.Cum - n.childTime
	sort.Slice(n.Children, func(i, j int) bool { return n.Children[i].Name < n.Children[j].Name })
	for _, c := range n.Children {
		c.finalize()
	}
}

// foldProfile builds one machine's profile from its recorded events.
func foldProfile(machine string, events []trace.Event) *MachineProfile {
	type span struct {
		start, end time.Duration
		key        string
		ring       int
	}
	spans := make([]span, 0, len(events))
	for i, ev := range events {
		if ev.Dur <= 0 {
			continue
		}
		name := ev.Name
		if name == "" {
			name = ev.Kind.String()
		}
		spans = append(spans, span{
			start: ev.T,
			end:   ev.T + ev.Dur,
			key:   ev.Kind.Category() + "/" + name,
			ring:  i,
		})
	}
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].start != spans[j].start {
			return spans[i].start < spans[j].start
		}
		if spans[i].end != spans[j].end {
			return spans[i].end > spans[j].end // wider first: parents precede children
		}
		return spans[i].ring < spans[j].ring
	})

	p := &MachineProfile{Machine: machine, Spans: len(spans)}
	root := &ProfileNode{index: map[string]*ProfileNode{}}
	type frame struct {
		node *ProfileNode
		end  time.Duration
	}
	var stack []frame
	var curEnd time.Duration // sweep for the interval union
	for _, s := range spans {
		if s.end > curEnd {
			if s.start > curEnd {
				p.Covered += s.end - s.start
			} else {
				p.Covered += s.end - curEnd
			}
			curEnd = s.end
		}

		for len(stack) > 0 && stack[len(stack)-1].end <= s.start {
			stack = stack[:len(stack)-1]
		}
		parent := root
		if len(stack) > 0 && stack[len(stack)-1].end >= s.end {
			top := stack[len(stack)-1].node
			if top.Name == s.key {
				// Recursion collapse: a span contained in a same-key span is
				// the same activity seen again (concurrent server sessions
				// enclose one another on the timeline); the enclosing node
				// already accounts the interval, so only the count grows.
				top.Count++
				stack = append(stack, frame{node: top, end: s.end})
				continue
			}
			parent = top
		}
		// A span the innermost open interval only partially covers does not
		// nest (concurrent activities interleave); it becomes a root.
		n := parent.child(s.key)
		n.Count++
		n.Cum += s.end - s.start
		parent.childTime += s.end - s.start
		stack = append(stack, frame{node: n, end: s.end})
	}
	root.finalize()
	p.Roots = root.Children
	for _, r := range p.Roots {
		p.Total += r.Cum
	}
	return p
}

// walk visits every node depth-first with its semicolon-joined path.
func walk(prefix string, nodes []*ProfileNode, visit func(path string, n *ProfileNode)) {
	for _, n := range nodes {
		path := n.Name
		if prefix != "" {
			path = prefix + ";" + n.Name
		}
		visit(path, n)
		walk(path, n.Children, visit)
	}
}

// WriteCollapsed writes the profiles in collapsed-stack flamegraph format:
// one "machine;frame;frame <self-nanoseconds>" line per stack with nonzero
// self time, sorted, so the file is byte-identical however the fold ran.
// Feed it to any flamegraph renderer; stripping the leading machine frame
// aggregates the fleet into one graph.
func WriteCollapsed(w io.Writer, profiles []*MachineProfile) error {
	var lines []string
	for _, p := range profiles {
		walk("", p.Roots, func(path string, n *ProfileNode) {
			if n.Self > 0 {
				lines = append(lines, fmt.Sprintf("%s;%s %d", p.Machine, path, n.Self.Nanoseconds()))
			}
		})
	}
	sort.Strings(lines)
	for _, l := range lines {
		if _, err := io.WriteString(w, l+"\n"); err != nil {
			return err
		}
	}
	return nil
}

// topRow is one aggregated row of the fleet's top table.
type topRow struct {
	path  string
	count int64
	self  time.Duration
	cum   time.Duration
}

// WriteTop writes the fleet-aggregated top-N table by self time: the same
// category/name path summed across machines, heaviest self time first.
func WriteTop(w io.Writer, profiles []*MachineProfile, n int) error {
	byPath := map[string]*topRow{}
	var order []string
	var total time.Duration
	for _, p := range profiles {
		total += p.Total
		walk("", p.Roots, func(path string, node *ProfileNode) {
			r, ok := byPath[path]
			if !ok {
				r = &topRow{path: path}
				byPath[path] = r
				order = append(order, path)
			}
			r.count += node.Count
			r.self += node.Self
			r.cum += node.Cum
		})
	}
	rows := make([]*topRow, len(order))
	for i, path := range order {
		rows[i] = byPath[path]
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].self != rows[j].self {
			return rows[i].self > rows[j].self
		}
		return rows[i].path < rows[j].path
	})
	if n > 0 && n < len(rows) {
		rows = rows[:n]
	}
	if _, err := fmt.Fprintf(w, "%12s %8s %12s %8s  %s\n", "self(ms)", "self%", "cum(ms)", "count", "stack"); err != nil {
		return err
	}
	for _, r := range rows {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(r.self) / float64(total)
		}
		if _, err := fmt.Fprintf(w, "%12.3f %7.2f%% %12.3f %8d  %s\n",
			ms(r.self), pct, ms(r.cum), r.count, strings.ReplaceAll(r.path, ";", " > ")); err != nil {
			return err
		}
	}
	return nil
}

// ms renders a duration in milliseconds for the tables.
func ms(d time.Duration) float64 { return float64(d) / 1e6 }
