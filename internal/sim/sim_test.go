package sim

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestClockZeroValue(t *testing.T) {
	var c Clock
	if got := c.Now(); got != 0 {
		t.Fatalf("zero clock reads %v, want 0", got)
	}
}

func TestClockAdvance(t *testing.T) {
	c := NewClock()
	c.Advance(3 * time.Millisecond)
	c.Advance(2 * time.Millisecond)
	if got, want := c.Now(), 5*time.Millisecond; got != want {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestClockIgnoresNegativeAdvance(t *testing.T) {
	c := NewClock()
	c.Advance(time.Second)
	c.Advance(-time.Hour)
	if got, want := c.Now(), time.Second; got != want {
		t.Fatalf("Now() = %v after negative advance, want %v", got, want)
	}
}

func TestClockReset(t *testing.T) {
	c := NewClock()
	c.Advance(time.Minute)
	c.Reset()
	if got := c.Now(); got != 0 {
		t.Fatalf("Now() = %v after Reset, want 0", got)
	}
}

func TestClockConcurrentAdvance(t *testing.T) {
	c := NewClock()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Advance(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got, want := c.Now(), 8000*time.Microsecond; got != want {
		t.Fatalf("Now() = %v after concurrent advances, want %v", got, want)
	}
}

func TestStopwatch(t *testing.T) {
	c := NewClock()
	c.Advance(time.Second)
	w := Watch(c)
	c.Advance(250 * time.Millisecond)
	if got, want := w.Elapsed(), 250*time.Millisecond; got != want {
		t.Fatalf("Elapsed() = %v, want %v", got, want)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestRandZeroSeed(t *testing.T) {
	r := NewRand(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a stuck generator")
	}
}

func TestRandIntnRange(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(13); v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d out of range", v)
		}
	}
}

func TestRandIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestRandPermIsPermutation(t *testing.T) {
	check := func(seed uint64) bool {
		n := 1 + int(seed%64)
		p := NewRand(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandBoolExtremes(t *testing.T) {
	r := NewRand(3)
	for i := 0; i < 50; i++ {
		if r.Bool(0, 10) {
			t.Fatal("Bool(0, 10) returned true")
		}
		if !r.Bool(10, 10) {
			t.Fatal("Bool(10, 10) returned false")
		}
	}
}
