package sim

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestClockZeroValue(t *testing.T) {
	var c Clock
	if got := c.Now(); got != 0 {
		t.Fatalf("zero clock reads %v, want 0", got)
	}
}

func TestClockAdvance(t *testing.T) {
	c := NewClock()
	c.Advance(3 * time.Millisecond)
	c.Advance(2 * time.Millisecond)
	if got, want := c.Now(), 5*time.Millisecond; got != want {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestClockIgnoresNegativeAdvance(t *testing.T) {
	c := NewClock()
	c.Advance(time.Second)
	c.Advance(-time.Hour)
	if got, want := c.Now(), time.Second; got != want {
		t.Fatalf("Now() = %v after negative advance, want %v", got, want)
	}
}

func TestClockReset(t *testing.T) {
	c := NewClock()
	c.Advance(time.Minute)
	c.Reset()
	if got := c.Now(); got != 0 {
		t.Fatalf("Now() = %v after Reset, want 0", got)
	}
}

func TestClockAdvanceTo(t *testing.T) {
	c := NewClock()
	c.AdvanceTo(5 * time.Millisecond)
	if got, want := c.Now(), 5*time.Millisecond; got != want {
		t.Fatalf("Now() = %v after AdvanceTo, want %v", got, want)
	}
	c.AdvanceTo(2 * time.Millisecond) // in the past: ignored
	if got, want := c.Now(), 5*time.Millisecond; got != want {
		t.Fatalf("Now() = %v after backward AdvanceTo, want %v", got, want)
	}
	c.AdvanceTo(5 * time.Millisecond) // at the present: ignored
	if got, want := c.Now(), 5*time.Millisecond; got != want {
		t.Fatalf("Now() = %v after no-op AdvanceTo, want %v", got, want)
	}
	c.AdvanceTo(7 * time.Millisecond)
	if got, want := c.Now(), 7*time.Millisecond; got != want {
		t.Fatalf("Now() = %v after second AdvanceTo, want %v", got, want)
	}
}

func TestClockWakeZeroValue(t *testing.T) {
	var c Clock
	if d, ok := c.NextWake(); ok {
		t.Fatalf("zero clock has wake %v pending, want none", d)
	}
}

func TestClockRequestWakeKeepsMinimum(t *testing.T) {
	c := NewClock()
	c.RequestWake(40 * time.Millisecond)
	c.RequestWake(10 * time.Millisecond)
	c.RequestWake(25 * time.Millisecond) // later than pending: ignored
	d, ok := c.NextWake()
	if !ok || d != 10*time.Millisecond {
		t.Fatalf("NextWake() = %v, %v; want 10ms, true", d, ok)
	}
}

func TestClockRequestWakeAtZero(t *testing.T) {
	// A deadline at t=0 is a valid wake and must be distinguishable from
	// "no wake pending" despite the zero-value encoding.
	c := NewClock()
	c.RequestWake(0)
	d, ok := c.NextWake()
	if !ok || d != 0 {
		t.Fatalf("NextWake() = %v, %v; want 0, true", d, ok)
	}
}

func TestClockClearWake(t *testing.T) {
	c := NewClock()
	c.RequestWake(time.Second)
	c.ClearWake()
	if d, ok := c.NextWake(); ok {
		t.Fatalf("NextWake() = %v after ClearWake, want none", d)
	}
	c.RequestWake(2 * time.Second) // a fresh request after clearing sticks
	if d, ok := c.NextWake(); !ok || d != 2*time.Second {
		t.Fatalf("NextWake() = %v, %v after re-request; want 2s, true", d, ok)
	}
}

func TestClockResetClearsWake(t *testing.T) {
	c := NewClock()
	c.Advance(time.Minute)
	c.RequestWake(2 * time.Minute)
	c.Reset()
	if d, ok := c.NextWake(); ok {
		t.Fatalf("NextWake() = %v after Reset, want none", d)
	}
}

func TestClockConcurrentRequestWake(t *testing.T) {
	c := NewClock()
	var wg sync.WaitGroup
	for i := 1; i <= 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.RequestWake(time.Duration(i*1000 + j))
			}
		}(i)
	}
	wg.Wait()
	d, ok := c.NextWake()
	if !ok || d != 1000 {
		t.Fatalf("NextWake() = %v, %v after concurrent requests; want 1000, true", d, ok)
	}
}

func TestClockConcurrentAdvance(t *testing.T) {
	c := NewClock()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Advance(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got, want := c.Now(), 8000*time.Microsecond; got != want {
		t.Fatalf("Now() = %v after concurrent advances, want %v", got, want)
	}
}

func TestStopwatch(t *testing.T) {
	c := NewClock()
	c.Advance(time.Second)
	w := Watch(c)
	c.Advance(250 * time.Millisecond)
	if got, want := w.Elapsed(), 250*time.Millisecond; got != want {
		t.Fatalf("Elapsed() = %v, want %v", got, want)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestRandZeroSeed(t *testing.T) {
	r := NewRand(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a stuck generator")
	}
}

func TestRandIntnRange(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(13); v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d out of range", v)
		}
	}
}

func TestRandIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestRandPermIsPermutation(t *testing.T) {
	check := func(seed uint64) bool {
		n := 1 + int(seed%64)
		p := NewRand(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandBoolExtremes(t *testing.T) {
	r := NewRand(3)
	for i := 0; i < 50; i++ {
		if r.Bool(0, 10) {
			t.Fatal("Bool(0, 10) returned true")
		}
		if !r.Bool(10, 10) {
			t.Fatal("Bool(10, 10) returned false")
		}
	}
}
