package sim

// A small deterministic PRNG (xorshift64*) used by workload generators and
// fault injectors. We avoid math/rand's global state so that every experiment
// is reproducible from its seed alone, and so that tests may run in parallel
// without sharing a source.

// Rand is a deterministic pseudo-random source. The zero value is not valid;
// use NewRand.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed. A zero seed is replaced by a
// fixed non-zero constant, since xorshift has a zero fixed point.
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Rand{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Word returns a pseudo-random 16-bit word.
func (r *Rand) Word() uint16 { return uint16(r.Uint64()) }

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Bool returns true with probability num/den.
func (r *Rand) Bool(num, den int) bool {
	if den <= 0 {
		panic("sim: Bool with non-positive denominator")
	}
	return r.Intn(den) < num
}
