// Package sim provides the deterministic simulation substrate shared by the
// rest of the system: a virtual clock, against which every timed claim in the
// paper is measured, and a seeded random-number helper for reproducible
// workload generation.
//
// The paper's quantitative claims ("scavenging takes about a minute",
// "OutLoad requires about a second") are statements about Alto hardware.
// Rather than measuring wall time on a modern machine — which would be
// meaningless — the disk, CPU and network models advance a shared Clock by
// the time the modelled hardware would have taken. Benchmarks then report
// simulated time, whose shape is directly comparable to the paper.
package sim

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Clock is a virtual clock. The zero value is a clock reading zero.
//
// A Clock is safe for concurrent use; in practice the system is single-user
// and nearly single-threaded (the paper's machine has two processes, one of
// which only fills the keyboard buffer), but tests exercise components
// concurrently. The reading is a single atomic word: the clock sits on every
// disk operation's path, so it must cost no more than a load.
type Clock struct {
	now atomic.Int64 // nanoseconds since the epoch

	// wake is the earliest requested wake-up, encoded as nanoseconds+1 so
	// that zero keeps meaning "no wake pending" and the zero-value Clock
	// stays valid. Timed components (pup retransmission timers, disk seeks)
	// record their next deadline here; an event-driven scheduler reads it
	// to jump straight to the deadline instead of spinning idle polls. The
	// single-machine path never reads it, so the cost is one atomic store.
	wake atomic.Int64
}

// NewClock returns a clock reading zero.
func NewClock() *Clock { return &Clock{} }

// Now returns the current simulated time since the clock's epoch.
func (c *Clock) Now() time.Duration {
	return time.Duration(c.now.Load())
}

// Advance moves the clock forward by d. Negative d is ignored: simulated
// hardware can only take time, never give it back.
func (c *Clock) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	c.now.Add(int64(d))
}

// AdvanceTo moves the clock forward to the absolute reading t. Readings in
// the past (or the present) are ignored, preserving the invariant that
// simulated time never runs backward. Unlike Advance it is an absolute jump:
// the fleet scheduler uses it to resume a machine exactly at its wake time
// regardless of how far the machine's clock had drifted behind the fleet.
func (c *Clock) AdvanceTo(t time.Duration) {
	for {
		cur := c.now.Load()
		if int64(t) <= cur {
			return
		}
		if c.now.CompareAndSwap(cur, int64(t)) {
			return
		}
	}
}

// RequestWake records that some component has a deadline at absolute time t.
// Requests accumulate as a minimum: the earliest outstanding deadline wins.
// The request is advisory — nothing fires; a scheduler that honours it reads
// the value with NextWake and clears it with ClearWake.
func (c *Clock) RequestWake(t time.Duration) {
	enc := int64(t) + 1
	for {
		cur := c.wake.Load()
		if cur != 0 && cur <= enc {
			return
		}
		if c.wake.CompareAndSwap(cur, enc) {
			return
		}
	}
}

// NextWake reports the earliest requested wake-up, if any.
func (c *Clock) NextWake() (time.Duration, bool) {
	enc := c.wake.Load()
	if enc == 0 {
		return 0, false
	}
	return time.Duration(enc - 1), true
}

// ClearWake discards the pending wake-up request, if any. A scheduler calls
// it after consuming the deadline so stale requests cannot shadow later,
// later-in-time ones.
func (c *Clock) ClearWake() {
	c.wake.Store(0)
}

// Reset rewinds the clock to zero and drops any pending wake-up request.
// Used between benchmark iterations.
func (c *Clock) Reset() {
	c.now.Store(0)
	c.wake.Store(0)
}

// Stopwatch measures an interval of simulated time on a Clock.
type Stopwatch struct {
	c     *Clock
	start time.Duration
}

// Watch starts a stopwatch on c.
func Watch(c *Clock) Stopwatch { return Stopwatch{c: c, start: c.Now()} }

// Elapsed reports the simulated time since the stopwatch started.
func (s Stopwatch) Elapsed() time.Duration { return s.c.Now() - s.start }

// String formats the clock reading for diagnostics.
func (c *Clock) String() string {
	return fmt.Sprintf("sim.Clock(%v)", c.Now())
}
