// Package sim provides the deterministic simulation substrate shared by the
// rest of the system: a virtual clock, against which every timed claim in the
// paper is measured, and a seeded random-number helper for reproducible
// workload generation.
//
// The paper's quantitative claims ("scavenging takes about a minute",
// "OutLoad requires about a second") are statements about Alto hardware.
// Rather than measuring wall time on a modern machine — which would be
// meaningless — the disk, CPU and network models advance a shared Clock by
// the time the modelled hardware would have taken. Benchmarks then report
// simulated time, whose shape is directly comparable to the paper.
package sim

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Clock is a virtual clock. The zero value is a clock reading zero.
//
// A Clock is safe for concurrent use; in practice the system is single-user
// and nearly single-threaded (the paper's machine has two processes, one of
// which only fills the keyboard buffer), but tests exercise components
// concurrently. The reading is a single atomic word: the clock sits on every
// disk operation's path, so it must cost no more than a load.
type Clock struct {
	now atomic.Int64 // nanoseconds since the epoch
}

// NewClock returns a clock reading zero.
func NewClock() *Clock { return &Clock{} }

// Now returns the current simulated time since the clock's epoch.
func (c *Clock) Now() time.Duration {
	return time.Duration(c.now.Load())
}

// Advance moves the clock forward by d. Negative d is ignored: simulated
// hardware can only take time, never give it back.
func (c *Clock) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	c.now.Add(int64(d))
}

// Reset rewinds the clock to zero. Used between benchmark iterations.
func (c *Clock) Reset() {
	c.now.Store(0)
}

// Stopwatch measures an interval of simulated time on a Clock.
type Stopwatch struct {
	c     *Clock
	start time.Duration
}

// Watch starts a stopwatch on c.
func Watch(c *Clock) Stopwatch { return Stopwatch{c: c, start: c.Now()} }

// Elapsed reports the simulated time since the stopwatch started.
func (s Stopwatch) Elapsed() time.Duration { return s.c.Now() - s.start }

// String formats the clock reading for diagnostics.
func (c *Clock) String() string {
	return fmt.Sprintf("sim.Clock(%v)", c.Now())
}
