package pup

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"altoos/internal/ether"
	"altoos/internal/trace"
)

// pair builds a network with a recorder, two stations, and two endpoints:
// srv listening on address 1, cli on address 2.
func pair(t *testing.T, cfg Config) (net *ether.Network, srv, cli *Endpoint, rec *trace.Recorder) {
	t.Helper()
	net = ether.New(nil)
	rec = trace.New(4096)
	net.SetRecorder(rec)
	sst, err := net.Attach(1)
	if err != nil {
		t.Fatal(err)
	}
	cst, err := net.Attach(2)
	if err != nil {
		t.Fatal(err)
	}
	srv = NewEndpoint(sst, cfg)
	cli = NewEndpoint(cst, cfg)
	srv.Listen()
	return net, srv, cli, rec
}

// pump polls both endpoints until done() or the budget runs out.
func pump(t *testing.T, srv, cli *Endpoint, budget int, done func() bool) {
	t.Helper()
	for i := 0; i < budget; i++ {
		if done() {
			return
		}
		if _, err := srv.Poll(); err != nil {
			t.Fatalf("server poll: %v", err)
		}
		if _, err := cli.Poll(); err != nil {
			t.Fatalf("client poll: %v", err)
		}
	}
	if !done() {
		t.Fatalf("not done after %d polls", budget)
	}
}

func TestTransferOverLossyWire(t *testing.T) {
	net, srv, cli, _ := pair(t, Config{})
	net.InjectFaults(ether.FaultConfig{
		Seed:    99,
		Drop:    ether.Rate{Num: 1, Den: 10},
		Dup:     ether.Rate{Num: 1, Den: 25},
		Corrupt: ether.Rate{Num: 1, Den: 25},
		Delay:   ether.Rate{Num: 1, Den: 25},
	})

	conn, err := cli.Dial(1)
	if err != nil {
		t.Fatal(err)
	}
	const msgs = 50
	var got [][]ether.Word
	var acc *Conn
	next := 0
	pump(t, srv, cli, 100000, func() bool {
		if acc == nil {
			acc, _ = srv.Accept()
		}
		if next < msgs {
			err := conn.Send([]ether.Word{ether.Word(next), ether.Word(next * 3)})
			if err == nil {
				next++
			} else if !errors.Is(err, ErrWindowFull) {
				t.Fatalf("send %d: %v", next, err)
			}
		}
		if acc != nil {
			for {
				m, ok := acc.Recv()
				if !ok {
					break
				}
				got = append(got, m)
			}
		}
		return len(got) == msgs
	})
	for i, m := range got {
		if len(m) != 2 || m[0] != ether.Word(i) || m[1] != ether.Word(i*3) {
			t.Fatalf("message %d corrupted or misordered: %v", i, m)
		}
	}

	// Close cleanly despite the loss.
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
	pump(t, srv, cli, 100000, func() bool { return conn.State() == StateClosed })
	if conn.Err() != nil {
		t.Fatalf("close ended in error: %v", conn.Err())
	}
}

func TestRetransmitAfterTimeout(t *testing.T) {
	net, srv, cli, rec := pair(t, Config{})
	// Deliveries are judged in order: 0 = the client's Open. Drop the first
	// data packet (judged index 1: Dial happens before any server poll, so
	// the client's first Send is the second delivery on the wire).
	net.InjectFaults(ether.FaultConfig{
		Force: map[int64]ether.Fault{1: ether.FaultDrop},
	})

	conn, err := cli.Dial(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send([]ether.Word{42}); err != nil {
		t.Fatal(err)
	}

	var acc *Conn
	var got []ether.Word
	pump(t, srv, cli, 100000, func() bool {
		if acc == nil {
			acc, _ = srv.Accept()
		}
		if acc != nil {
			if m, ok := acc.Recv(); ok {
				got = m
			}
		}
		return got != nil
	})
	if len(got) != 1 || got[0] != 42 {
		t.Fatalf("got %v, want [42]", got)
	}
	if n := rec.Counter("pup.retransmit"); n < 1 {
		t.Fatalf("pup.retransmit = %d, want >= 1", n)
	}
	if n := rec.Counter("ether.drop"); n != 1 {
		t.Fatalf("ether.drop = %d, want 1", n)
	}
}

func TestDuplicateAck(t *testing.T) {
	// AckEvery 1 turns off ack batching, so each data packet elicits its
	// own ack and the wire schedule is exactly: Open(0), Data seq0(1),
	// Data seq1(2), OpenAck(3), Ack for seq0(4), Ack for seq1(5).
	// Duplicate the first ack: the second copy arrives while seq1 is still
	// unacked and must count as a dup ack, not pop anything twice — and
	// one dup ack is far below the fast-retransmit threshold.
	net, srv, cli, rec := pair(t, Config{AckEvery: 1})
	net.InjectFaults(ether.FaultConfig{
		Force: map[int64]ether.Fault{4: ether.FaultDup},
	})

	conn, err := cli.Dial(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send([]ether.Word{1}); err != nil {
		t.Fatal(err)
	}
	if err := conn.Send([]ether.Word{2}); err != nil {
		t.Fatal(err)
	}

	var acc *Conn
	var got [][]ether.Word
	pump(t, srv, cli, 10000, func() bool {
		if acc == nil {
			acc, _ = srv.Accept()
		}
		if acc != nil {
			if m, ok := acc.Recv(); ok {
				got = append(got, m)
			}
		}
		return len(got) == 2 && len(conn.sendQ) == 0
	})
	if n := rec.Counter("pup.dup.ack"); n != 1 {
		t.Fatalf("pup.dup.ack = %d, want 1", n)
	}
	if n := rec.Counter("pup.retransmit"); n != 0 {
		t.Fatalf("pup.retransmit = %d, want 0 (one dup ack must not trigger one)", n)
	}
}

// TestRetransmitCarriesOriginalFlow: the flow word is captured when the
// message enters the send queue, so the retransmission after a forced drop
// is the *same* causal flow — the server's copy, the wire's fault verdict
// and the eventual delivery all reference the ID the client stamped.
func TestRetransmitCarriesOriginalFlow(t *testing.T) {
	net, srv, cli, rec := pair(t, Config{})
	const flow = 777
	// Delivery order: Open(0), first data(1). Drop the data; the client
	// must retransmit it under the original flow.
	net.InjectFaults(ether.FaultConfig{
		Force: map[int64]ether.Fault{1: ether.FaultDrop},
	})

	conn, err := cli.Dial(1)
	if err != nil {
		t.Fatal(err)
	}
	conn.SetFlow(flow)
	if err := conn.Send([]ether.Word{42}); err != nil {
		t.Fatal(err)
	}

	var acc *Conn
	var got []ether.Word
	gotFlow := int64(-1)
	pump(t, srv, cli, 100000, func() bool {
		if acc == nil {
			acc, _ = srv.Accept()
		}
		if acc != nil {
			if m, f, ok := acc.RecvFlow(); ok {
				got, gotFlow = m, f
			}
		}
		return got != nil
	})
	if len(got) != 1 || got[0] != 42 {
		t.Fatalf("got %v, want [42]", got)
	}
	if gotFlow != flow {
		t.Errorf("delivered flow = %d, want %d (retransmission lost the flow)", gotFlow, flow)
	}
	if n := rec.Counter("pup.retransmit"); n < 1 {
		t.Fatalf("pup.retransmit = %d, want >= 1", n)
	}
	// The wire's drop verdict names the flow it interrupted.
	dropOnFlow := false
	for _, ev := range rec.Events() {
		if ev.Kind == trace.KindEtherFault && ev.Name == "drop" && ev.Flow == flow {
			dropOnFlow = true
		}
	}
	if !dropOnFlow {
		t.Error("no drop verdict carries the original flow")
	}
}

// TestDuplicateCarriesOriginalFlow: a duplicated data packet is the same
// wire bytes twice, so both deliveries — and the dup verdict itself — stay
// on the flow the sender stamped.
func TestDuplicateCarriesOriginalFlow(t *testing.T) {
	net, srv, cli, rec := pair(t, Config{})
	const flow = 613
	// Delivery order: Open(0), first data(1). Duplicate the data packet.
	net.InjectFaults(ether.FaultConfig{
		Force: map[int64]ether.Fault{1: ether.FaultDup},
	})

	conn, err := cli.Dial(1)
	if err != nil {
		t.Fatal(err)
	}
	conn.SetFlow(flow)
	if err := conn.Send([]ether.Word{7}); err != nil {
		t.Fatal(err)
	}

	var acc *Conn
	var got []ether.Word
	gotFlow := int64(-1)
	pump(t, srv, cli, 100000, func() bool {
		if acc == nil {
			acc, _ = srv.Accept()
		}
		if acc != nil {
			if m, f, ok := acc.RecvFlow(); ok {
				got, gotFlow = m, f
			}
		}
		return got != nil && len(conn.sendQ) == 0
	})
	if len(got) != 1 || got[0] != 7 {
		t.Fatalf("got %v, want [7] exactly once", got)
	}
	if gotFlow != flow {
		t.Errorf("delivered flow = %d, want %d", gotFlow, flow)
	}
	dups, recvsOnFlow := 0, 0
	for _, ev := range rec.Events() {
		switch {
		case ev.Kind == trace.KindEtherFault && ev.Name == "dup":
			dups++
			if ev.Flow != flow {
				t.Errorf("dup verdict flow = %d, want %d", ev.Flow, flow)
			}
		case ev.Kind == trace.KindEtherRecv && ev.Flow == flow:
			recvsOnFlow++
		}
	}
	if dups != 1 {
		t.Errorf("dup verdicts = %d, want 1", dups)
	}
	if recvsOnFlow < 2 {
		t.Errorf("only %d deliveries carry the flow, want >= 2 (original + duplicate)", recvsOnFlow)
	}
}

func TestWindowFullBackpressure(t *testing.T) {
	// InitCwnd at the hard cap takes congestion control out of the
	// picture: the fourth send fills the configured window exactly.
	_, srv, cli, _ := pair(t, Config{Window: 4, InitCwnd: 4})
	conn, err := cli.Dial(1)
	if err != nil {
		t.Fatal(err)
	}
	if a := conn.Avail(); a != 4 {
		t.Fatalf("Avail before sending = %d, want 4", a)
	}
	for i := 0; i < 4; i++ {
		if err := conn.Send([]ether.Word{ether.Word(i & 0xFFFF)}); err != nil {
			t.Fatalf("send %d within window: %v", i, err)
		}
	}
	if a := conn.Avail(); a != 0 {
		t.Fatalf("Avail at full window = %d, want 0", a)
	}
	if err := conn.Send([]ether.Word{9}); !errors.Is(err, ErrWindowFull) {
		t.Fatalf("send past window: got %v, want ErrWindowFull", err)
	}
	// Draining the acks reopens the window.
	pump(t, srv, cli, 1000, func() bool { return len(conn.sendQ) == 0 })
	if a := conn.Avail(); a != 4 {
		t.Fatalf("Avail after drain = %d, want 4", a)
	}
	if err := conn.Send([]ether.Word{9}); err != nil {
		t.Fatalf("send after drain: %v", err)
	}
}

// TestAvailAndDelayedAck: Avail reports the effective window (congestion
// window included, so a fresh conn offers InitCwnd, not the hard cap), and
// a lone pair of in-order packets is acked once, by the delayed-ack timer,
// not twice.
func TestAvailAndDelayedAck(t *testing.T) {
	_, srv, cli, rec := pair(t, Config{Window: 8})
	conn, err := cli.Dial(1)
	if err != nil {
		t.Fatal(err)
	}
	if a := conn.Avail(); a != 2 {
		t.Fatalf("fresh conn Avail = %d, want InitCwnd = 2", a)
	}
	if err := conn.Send([]ether.Word{1}); err != nil {
		t.Fatal(err)
	}
	if err := conn.Send([]ether.Word{2}); err != nil {
		t.Fatal(err)
	}
	if a := conn.Avail(); a != 0 {
		t.Fatalf("Avail with cwnd in flight = %d, want 0", a)
	}
	pump(t, srv, cli, 1000, func() bool { return len(conn.sendQ) == 0 })
	// Two acked packets double the window in slow start: 2 -> 4.
	if a := conn.Avail(); a != 4 {
		t.Fatalf("Avail after slow-start round = %d, want 4", a)
	}
	// Both packets arrived in order, below AckEvery: exactly one ack went
	// out, and it was the delayed one.
	if n := rec.Counter("pup.ack.sent"); n != 1 {
		t.Fatalf("pup.ack.sent = %d, want 1 (batched)", n)
	}
	if n := rec.Counter("pup.ack.delayed"); n != 1 {
		t.Fatalf("pup.ack.delayed = %d, want 1", n)
	}
}

// holeThenSACK is the selective-repeat core scenario: four packets, the
// second dropped. The receiver must buffer the overtakers, SACK them, and
// the sender must retransmit exactly the hole — one packet, where
// go-back-N resent three. Shared with the replay-identity test.
func holeThenSACK(t *testing.T) (*trace.Recorder, time.Duration) {
	t.Helper()
	// InitCwnd 8 lets all four sends fly before the first ack.
	net, srv, cli, rec := pair(t, Config{InitCwnd: 8})
	// Delivery order: Open(0), Data seq0(1), seq1(2), seq2(3), seq3(4).
	net.InjectFaults(ether.FaultConfig{
		Force: map[int64]ether.Fault{2: ether.FaultDrop},
	})
	conn, err := cli.Dial(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := conn.Send([]ether.Word{ether.Word(i & 0xFFFF)}); err != nil {
			t.Fatal(err)
		}
	}
	var acc *Conn
	var got [][]ether.Word
	pump(t, srv, cli, 100000, func() bool {
		if acc == nil {
			acc, _ = srv.Accept()
		}
		if acc != nil {
			for {
				m, ok := acc.Recv()
				if !ok {
					break
				}
				got = append(got, m)
			}
		}
		return len(got) == 4 && len(conn.sendQ) == 0
	})
	for i, m := range got {
		if len(m) != 1 || m[0] != ether.Word(i) {
			t.Fatalf("message %d misordered: %v", i, m)
		}
	}
	if n := rec.Counter("pup.retransmit"); n != 1 {
		t.Fatalf("pup.retransmit = %d, want exactly 1 (only the hole)", n)
	}
	if n := rec.Counter("pup.ooo.buffered"); n != 2 {
		t.Fatalf("pup.ooo.buffered = %d, want 2 (seq2 and seq3 held)", n)
	}
	if n := rec.Counter("pup.data.recv"); n != 4 {
		t.Fatalf("pup.data.recv = %d, want 4", n)
	}
	// The timeout collapsed cwnd to 1 and halved ssthresh to its floor;
	// the recovery ack (3 packets) then grew it back: 1 -> 2 in slow
	// start, then one congestion-avoidance increment. Pinned exactly.
	if conn.cwnd != 3 || conn.ssthresh != 2 {
		t.Fatalf("cwnd/ssthresh after recovery = %d/%d, want 3/2", conn.cwnd, conn.ssthresh)
	}
	return rec, net.Clock().Now()
}

func TestHoleThenSACKReassembly(t *testing.T) { holeThenSACK(t) }

// fastRetransmit drops one packet of six: the acks for the four overtakers
// repeat the same cumulative ack (with growing SACK masks), and the third
// duplicate triggers the retransmission with no timer involved.
// Shared with the replay-identity test.
func fastRetransmit(t *testing.T) (*trace.Recorder, time.Duration) {
	t.Helper()
	// AckEvery 1: per-packet acks, so each overtaker past the hole is one
	// duplicate ack. Delivery order: Open(0), seq0(1), seq1(2) ... seq5(6).
	net, srv, cli, rec := pair(t, Config{InitCwnd: 8, AckEvery: 1})
	net.InjectFaults(ether.FaultConfig{
		Force: map[int64]ether.Fault{2: ether.FaultDrop},
	})
	conn, err := cli.Dial(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := conn.Send([]ether.Word{ether.Word(i & 0xFFFF)}); err != nil {
			t.Fatal(err)
		}
	}
	var acc *Conn
	var got [][]ether.Word
	pump(t, srv, cli, 100000, func() bool {
		if acc == nil {
			acc, _ = srv.Accept()
		}
		if acc != nil {
			for {
				m, ok := acc.Recv()
				if !ok {
					break
				}
				got = append(got, m)
			}
		}
		return len(got) == 6 && len(conn.sendQ) == 0
	})
	for i, m := range got {
		if len(m) != 1 || m[0] != ether.Word(i) {
			t.Fatalf("message %d misordered: %v", i, m)
		}
	}
	if n := rec.Counter("pup.retransmit.fast"); n != 1 {
		t.Fatalf("pup.retransmit.fast = %d, want 1", n)
	}
	if n := rec.Counter("pup.retransmit.rto"); n != 0 {
		t.Fatalf("pup.retransmit.rto = %d, want 0 (no timer may fire)", n)
	}
	if n := rec.Counter("pup.retransmit"); n != 1 {
		t.Fatalf("pup.retransmit = %d, want exactly 1", n)
	}
	// Four overtakers = four duplicate acks; the retransmission fires on
	// the third, and the fourth is absorbed without a second resend.
	if n := rec.Counter("pup.dup.ack"); n != 4 {
		t.Fatalf("pup.dup.ack = %d, want 4", n)
	}
	// Multiplicative decrease at loss: five in flight halve to 2/2; the
	// recovery ack (five packets) buys two congestion-avoidance
	// increments: 2 -> 4. Pinned exactly.
	if conn.cwnd != 4 || conn.ssthresh != 2 {
		t.Fatalf("cwnd/ssthresh after recovery = %d/%d, want 4/2", conn.cwnd, conn.ssthresh)
	}
	return rec, net.Clock().Now()
}

func TestFastRetransmit(t *testing.T) { fastRetransmit(t) }

// cwndTrajectory pins the loss-free growth curve exactly: slow start adds
// one packet per acked packet from InitCwnd to the window cap, and the cap
// holds. Shared with the replay-identity test.
func cwndTrajectory(t *testing.T) (*trace.Recorder, time.Duration) {
	t.Helper()
	net, srv, cli, rec := pair(t, Config{Window: 8, AckEvery: 1})
	conn, err := cli.Dial(1)
	if err != nil {
		t.Fatal(err)
	}
	var acc *Conn
	var trajectory []int
	last := conn.cwnd
	sent, delivered := 0, 0
	const msgs = 10
	pump(t, srv, cli, 100000, func() bool {
		if acc == nil {
			acc, _ = srv.Accept()
		}
		// Lock-step: one message per round trip, so every ack pops exactly
		// one packet and every cwnd change is observed individually.
		if sent < msgs && len(conn.sendQ) == 0 {
			if err := conn.Send([]ether.Word{ether.Word(sent & 0xFFFF)}); err != nil {
				t.Fatal(err)
			}
			sent++
		}
		if acc != nil {
			for {
				_, ok := acc.Recv()
				if !ok {
					break
				}
				delivered++
			}
		}
		if conn.cwnd != last {
			trajectory = append(trajectory, conn.cwnd)
			last = conn.cwnd
		}
		return delivered == msgs && len(conn.sendQ) == 0
	})
	want := []int{3, 4, 5, 6, 7, 8}
	if !reflect.DeepEqual(trajectory, want) {
		t.Fatalf("cwnd trajectory = %v, want %v", trajectory, want)
	}
	return rec, net.Clock().Now()
}

func TestCwndTrajectoryPinned(t *testing.T) { cwndTrajectory(t) }

// rtoAdaptation runs the same five-message exchange over a perfect wire
// and over one that delays every delivery by 15 ms, and checks the
// estimator moved the timeout to match — down near the floor when round
// trips are cheap, above the round trip (with no spurious retransmission)
// when they are slow. Shared with the replay-identity test.
func rtoAdaptation(t *testing.T) (*trace.Recorder, time.Duration) {
	t.Helper()
	exchange := func(cfg ether.FaultConfig, inject bool) (*Conn, *trace.Recorder, time.Duration) {
		net, srv, cli, rec := pair(t, Config{AckEvery: 1})
		if inject {
			net.InjectFaults(cfg)
		}
		conn, err := cli.Dial(1)
		if err != nil {
			t.Fatal(err)
		}
		var acc *Conn
		sent, delivered := 0, 0
		pump(t, srv, cli, 400000, func() bool {
			if acc == nil {
				acc, _ = srv.Accept()
			}
			// One message at a time: each round trip is one clean sample.
			if sent < 5 && sent == delivered {
				if err := conn.Send([]ether.Word{ether.Word(sent & 0xFFFF)}); err != nil {
					t.Fatal(err)
				}
				sent++
			}
			if acc != nil {
				if _, ok := acc.Recv(); ok {
					delivered++
				}
			}
			return delivered == 5
		})
		return conn, rec, net.Clock().Now()
	}

	fast, _, _ := exchange(ether.FaultConfig{}, false)
	if !fast.rttValid {
		t.Fatal("no RTT sample landed on a loss-free exchange")
	}
	if got := fast.rto(); got >= 40*time.Millisecond {
		t.Fatalf("adapted RTO = %v, want below the 40ms pre-sample default", got)
	}

	delayCfg := ether.FaultConfig{
		Delay:     ether.Rate{Num: 1, Den: 1},
		DelayTime: 15 * time.Millisecond,
	}
	slow, rec, clock := exchange(delayCfg, true)
	// Every delivery waits 15 ms each way: the smoothed RTT must land just
	// above 30 ms, and the timeout must ride above it — high enough that
	// not one spurious retransmission fired.
	if slow.srtt < 30*time.Millisecond || slow.srtt > 40*time.Millisecond {
		t.Fatalf("srtt under 2x15ms scripted delay = %v, want ~30-40ms", slow.srtt)
	}
	if got := slow.rto(); got <= slow.srtt {
		t.Fatalf("RTO %v at or below srtt %v", got, slow.srtt)
	}
	if n := rec.Counter("pup.retransmit"); n != 0 {
		t.Fatalf("pup.retransmit = %d, want 0 (the adapted RTO must clear the delay)", n)
	}
	if fast.rto() >= slow.rto() {
		t.Fatalf("RTO did not adapt: fast wire %v >= delayed wire %v", fast.rto(), slow.rto())
	}
	return rec, clock
}

func TestRTOAdaptation(t *testing.T) { rtoAdaptation(t) }

// TestEdgeCaseReplayByteIdentity re-runs every Force-scripted edge case and
// demands the second run's trace is event-for-event identical to the first
// — the altotrace property, held at the unit level where the edge cases
// live.
func TestEdgeCaseReplayByteIdentity(t *testing.T) {
	scenarios := []struct {
		name string
		run  func(*testing.T) (*trace.Recorder, time.Duration)
	}{
		{"hole-then-sack", holeThenSACK},
		{"fast-retransmit", fastRetransmit},
		{"cwnd-trajectory", cwndTrajectory},
		{"rto-adaptation", rtoAdaptation},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			rec1, clock1 := sc.run(t)
			rec2, clock2 := sc.run(t)
			if clock1 != clock2 {
				t.Fatalf("replay diverged: clock %v vs %v", clock1, clock2)
			}
			ev1, ev2 := rec1.Events(), rec2.Events()
			if len(ev1) != len(ev2) {
				t.Fatalf("replay diverged: %d events vs %d", len(ev1), len(ev2))
			}
			for i := range ev1 {
				if !reflect.DeepEqual(ev1[i], ev2[i]) {
					t.Fatalf("replay diverged at event %d: %+v vs %+v", i, ev1[i], ev2[i])
				}
			}
		})
	}
}

func TestRetriesExhausted(t *testing.T) {
	net, _, cli, rec := pair(t, Config{MaxRetries: 3})
	// A wire that loses everything: the peer never hears the Open.
	net.InjectFaults(ether.FaultConfig{
		Seed: 1,
		Drop: ether.Rate{Num: 1, Den: 1},
	})
	conn, err := cli.Dial(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100000 && conn.Err() == nil; i++ {
		if _, err := cli.Poll(); err != nil {
			t.Fatal(err)
		}
	}
	if !errors.Is(conn.Err(), ErrRetriesExhausted) {
		t.Fatalf("conn.Err() = %v, want ErrRetriesExhausted", conn.Err())
	}
	if conn.State() != StateClosed {
		t.Fatalf("state = %v, want closed", conn.State())
	}
	if n := rec.Counter("pup.fail"); n != 1 {
		t.Fatalf("pup.fail = %d, want 1", n)
	}
	// Sends on the dead conn surface the same typed error.
	if err := conn.Send([]ether.Word{1}); !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("send on dead conn: got %v, want ErrRetriesExhausted", err)
	}
}

func TestMessageTooBig(t *testing.T) {
	_, _, cli, _ := pair(t, Config{})
	conn, err := cli.Dial(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send(make([]ether.Word, MaxData+1)); !errors.Is(err, ErrTooBig) {
		t.Fatalf("got %v, want ErrTooBig", err)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() (int64, int64) {
		net, srv, cli, rec := pair(t, Config{})
		net.InjectFaults(ether.FaultConfig{
			Seed: 7,
			Drop: ether.Rate{Num: 1, Den: 8},
			Dup:  ether.Rate{Num: 1, Den: 16},
		})
		conn, err := cli.Dial(1)
		if err != nil {
			t.Fatal(err)
		}
		var acc *Conn
		count, next := 0, 0
		pump(t, srv, cli, 100000, func() bool {
			if acc == nil {
				acc, _ = srv.Accept()
			}
			if next < 20 {
				if conn.Send([]ether.Word{ether.Word(next & 0xFFFF)}) == nil {
					next++
				}
			}
			if acc != nil {
				if _, ok := acc.Recv(); ok {
					count++
				}
			}
			return count == 20
		})
		return rec.Counter("pup.retransmit"), int64(net.Clock().Now())
	}
	r1, t1 := run()
	r2, t2 := run()
	if r1 != r2 || t1 != t2 {
		t.Fatalf("same-seed runs diverged: retransmits %d vs %d, clock %d vs %d", r1, r2, t1, t2)
	}
}
