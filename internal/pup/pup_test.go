package pup

import (
	"errors"
	"testing"

	"altoos/internal/ether"
	"altoos/internal/trace"
)

// pair builds a network with a recorder, two stations, and two endpoints:
// srv listening on address 1, cli on address 2.
func pair(t *testing.T, cfg Config) (net *ether.Network, srv, cli *Endpoint, rec *trace.Recorder) {
	t.Helper()
	net = ether.New(nil)
	rec = trace.New(4096)
	net.SetRecorder(rec)
	sst, err := net.Attach(1)
	if err != nil {
		t.Fatal(err)
	}
	cst, err := net.Attach(2)
	if err != nil {
		t.Fatal(err)
	}
	srv = NewEndpoint(sst, cfg)
	cli = NewEndpoint(cst, cfg)
	srv.Listen()
	return net, srv, cli, rec
}

// pump polls both endpoints until done() or the budget runs out.
func pump(t *testing.T, srv, cli *Endpoint, budget int, done func() bool) {
	t.Helper()
	for i := 0; i < budget; i++ {
		if done() {
			return
		}
		if _, err := srv.Poll(); err != nil {
			t.Fatalf("server poll: %v", err)
		}
		if _, err := cli.Poll(); err != nil {
			t.Fatalf("client poll: %v", err)
		}
	}
	if !done() {
		t.Fatalf("not done after %d polls", budget)
	}
}

func TestTransferOverLossyWire(t *testing.T) {
	net, srv, cli, _ := pair(t, Config{})
	net.InjectFaults(ether.FaultConfig{
		Seed:    99,
		Drop:    ether.Rate{Num: 1, Den: 10},
		Dup:     ether.Rate{Num: 1, Den: 25},
		Corrupt: ether.Rate{Num: 1, Den: 25},
		Delay:   ether.Rate{Num: 1, Den: 25},
	})

	conn, err := cli.Dial(1)
	if err != nil {
		t.Fatal(err)
	}
	const msgs = 50
	var got [][]ether.Word
	var acc *Conn
	next := 0
	pump(t, srv, cli, 100000, func() bool {
		if acc == nil {
			acc, _ = srv.Accept()
		}
		if next < msgs {
			err := conn.Send([]ether.Word{ether.Word(next), ether.Word(next * 3)})
			if err == nil {
				next++
			} else if !errors.Is(err, ErrWindowFull) {
				t.Fatalf("send %d: %v", next, err)
			}
		}
		if acc != nil {
			for {
				m, ok := acc.Recv()
				if !ok {
					break
				}
				got = append(got, m)
			}
		}
		return len(got) == msgs
	})
	for i, m := range got {
		if len(m) != 2 || m[0] != ether.Word(i) || m[1] != ether.Word(i*3) {
			t.Fatalf("message %d corrupted or misordered: %v", i, m)
		}
	}

	// Close cleanly despite the loss.
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
	pump(t, srv, cli, 100000, func() bool { return conn.State() == StateClosed })
	if conn.Err() != nil {
		t.Fatalf("close ended in error: %v", conn.Err())
	}
}

func TestRetransmitAfterTimeout(t *testing.T) {
	net, srv, cli, rec := pair(t, Config{})
	// Deliveries are judged in order: 0 = the client's Open. Drop the first
	// data packet (judged index 1: Dial happens before any server poll, so
	// the client's first Send is the second delivery on the wire).
	net.InjectFaults(ether.FaultConfig{
		Force: map[int64]ether.Fault{1: ether.FaultDrop},
	})

	conn, err := cli.Dial(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send([]ether.Word{42}); err != nil {
		t.Fatal(err)
	}

	var acc *Conn
	var got []ether.Word
	pump(t, srv, cli, 100000, func() bool {
		if acc == nil {
			acc, _ = srv.Accept()
		}
		if acc != nil {
			if m, ok := acc.Recv(); ok {
				got = m
			}
		}
		return got != nil
	})
	if len(got) != 1 || got[0] != 42 {
		t.Fatalf("got %v, want [42]", got)
	}
	if n := rec.Counter("pup.retransmit"); n < 1 {
		t.Fatalf("pup.retransmit = %d, want >= 1", n)
	}
	if n := rec.Counter("ether.drop"); n != 1 {
		t.Fatalf("ether.drop = %d, want 1", n)
	}
}

func TestDuplicateAck(t *testing.T) {
	net, srv, cli, rec := pair(t, Config{})
	// Delivery order: Open(0), Data seq0(1), Data seq1(2), OpenAck(3),
	// Ack for seq0(4), Ack for seq1(5). Duplicate the first ack: the second
	// copy arrives while seq1 is still unacked and must count as a dup ack,
	// not pop anything twice.
	net.InjectFaults(ether.FaultConfig{
		Force: map[int64]ether.Fault{4: ether.FaultDup},
	})

	conn, err := cli.Dial(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send([]ether.Word{1}); err != nil {
		t.Fatal(err)
	}
	if err := conn.Send([]ether.Word{2}); err != nil {
		t.Fatal(err)
	}

	var acc *Conn
	var got [][]ether.Word
	pump(t, srv, cli, 10000, func() bool {
		if acc == nil {
			acc, _ = srv.Accept()
		}
		if acc != nil {
			if m, ok := acc.Recv(); ok {
				got = append(got, m)
			}
		}
		return len(got) == 2 && len(conn.sendQ) == 0
	})
	if n := rec.Counter("pup.dup.ack"); n != 1 {
		t.Fatalf("pup.dup.ack = %d, want 1", n)
	}
	if n := rec.Counter("pup.retransmit"); n != 0 {
		t.Fatalf("pup.retransmit = %d, want 0 (dup ack must not trigger one)", n)
	}
}

// TestRetransmitCarriesOriginalFlow: the flow word is captured when the
// message enters the send queue, so the retransmission after a forced drop
// is the *same* causal flow — the server's copy, the wire's fault verdict
// and the eventual delivery all reference the ID the client stamped.
func TestRetransmitCarriesOriginalFlow(t *testing.T) {
	net, srv, cli, rec := pair(t, Config{})
	const flow = 777
	// Delivery order: Open(0), first data(1). Drop the data; the client
	// must retransmit it under the original flow.
	net.InjectFaults(ether.FaultConfig{
		Force: map[int64]ether.Fault{1: ether.FaultDrop},
	})

	conn, err := cli.Dial(1)
	if err != nil {
		t.Fatal(err)
	}
	conn.SetFlow(flow)
	if err := conn.Send([]ether.Word{42}); err != nil {
		t.Fatal(err)
	}

	var acc *Conn
	var got []ether.Word
	gotFlow := int64(-1)
	pump(t, srv, cli, 100000, func() bool {
		if acc == nil {
			acc, _ = srv.Accept()
		}
		if acc != nil {
			if m, f, ok := acc.RecvFlow(); ok {
				got, gotFlow = m, f
			}
		}
		return got != nil
	})
	if len(got) != 1 || got[0] != 42 {
		t.Fatalf("got %v, want [42]", got)
	}
	if gotFlow != flow {
		t.Errorf("delivered flow = %d, want %d (retransmission lost the flow)", gotFlow, flow)
	}
	if n := rec.Counter("pup.retransmit"); n < 1 {
		t.Fatalf("pup.retransmit = %d, want >= 1", n)
	}
	// The wire's drop verdict names the flow it interrupted.
	dropOnFlow := false
	for _, ev := range rec.Events() {
		if ev.Kind == trace.KindEtherFault && ev.Name == "drop" && ev.Flow == flow {
			dropOnFlow = true
		}
	}
	if !dropOnFlow {
		t.Error("no drop verdict carries the original flow")
	}
}

// TestDuplicateCarriesOriginalFlow: a duplicated data packet is the same
// wire bytes twice, so both deliveries — and the dup verdict itself — stay
// on the flow the sender stamped.
func TestDuplicateCarriesOriginalFlow(t *testing.T) {
	net, srv, cli, rec := pair(t, Config{})
	const flow = 613
	// Delivery order: Open(0), first data(1). Duplicate the data packet.
	net.InjectFaults(ether.FaultConfig{
		Force: map[int64]ether.Fault{1: ether.FaultDup},
	})

	conn, err := cli.Dial(1)
	if err != nil {
		t.Fatal(err)
	}
	conn.SetFlow(flow)
	if err := conn.Send([]ether.Word{7}); err != nil {
		t.Fatal(err)
	}

	var acc *Conn
	var got []ether.Word
	gotFlow := int64(-1)
	pump(t, srv, cli, 100000, func() bool {
		if acc == nil {
			acc, _ = srv.Accept()
		}
		if acc != nil {
			if m, f, ok := acc.RecvFlow(); ok {
				got, gotFlow = m, f
			}
		}
		return got != nil && len(conn.sendQ) == 0
	})
	if len(got) != 1 || got[0] != 7 {
		t.Fatalf("got %v, want [7] exactly once", got)
	}
	if gotFlow != flow {
		t.Errorf("delivered flow = %d, want %d", gotFlow, flow)
	}
	dups, recvsOnFlow := 0, 0
	for _, ev := range rec.Events() {
		switch {
		case ev.Kind == trace.KindEtherFault && ev.Name == "dup":
			dups++
			if ev.Flow != flow {
				t.Errorf("dup verdict flow = %d, want %d", ev.Flow, flow)
			}
		case ev.Kind == trace.KindEtherRecv && ev.Flow == flow:
			recvsOnFlow++
		}
	}
	if dups != 1 {
		t.Errorf("dup verdicts = %d, want 1", dups)
	}
	if recvsOnFlow < 2 {
		t.Errorf("only %d deliveries carry the flow, want >= 2 (original + duplicate)", recvsOnFlow)
	}
}

func TestWindowFullBackpressure(t *testing.T) {
	_, srv, cli, _ := pair(t, Config{Window: 4})
	conn, err := cli.Dial(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := conn.Send([]ether.Word{ether.Word(i)}); err != nil {
			t.Fatalf("send %d within window: %v", i, err)
		}
	}
	if err := conn.Send([]ether.Word{9}); !errors.Is(err, ErrWindowFull) {
		t.Fatalf("send past window: got %v, want ErrWindowFull", err)
	}
	// Draining the acks reopens the window.
	pump(t, srv, cli, 1000, func() bool { return len(conn.sendQ) == 0 })
	if err := conn.Send([]ether.Word{9}); err != nil {
		t.Fatalf("send after drain: %v", err)
	}
}

func TestRetriesExhausted(t *testing.T) {
	net, _, cli, rec := pair(t, Config{MaxRetries: 3})
	// A wire that loses everything: the peer never hears the Open.
	net.InjectFaults(ether.FaultConfig{
		Seed: 1,
		Drop: ether.Rate{Num: 1, Den: 1},
	})
	conn, err := cli.Dial(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100000 && conn.Err() == nil; i++ {
		if _, err := cli.Poll(); err != nil {
			t.Fatal(err)
		}
	}
	if !errors.Is(conn.Err(), ErrRetriesExhausted) {
		t.Fatalf("conn.Err() = %v, want ErrRetriesExhausted", conn.Err())
	}
	if conn.State() != StateClosed {
		t.Fatalf("state = %v, want closed", conn.State())
	}
	if n := rec.Counter("pup.fail"); n != 1 {
		t.Fatalf("pup.fail = %d, want 1", n)
	}
	// Sends on the dead conn surface the same typed error.
	if err := conn.Send([]ether.Word{1}); !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("send on dead conn: got %v, want ErrRetriesExhausted", err)
	}
}

func TestMessageTooBig(t *testing.T) {
	_, _, cli, _ := pair(t, Config{})
	conn, err := cli.Dial(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send(make([]ether.Word, MaxData+1)); !errors.Is(err, ErrTooBig) {
		t.Fatalf("got %v, want ErrTooBig", err)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() (int64, int64) {
		net, srv, cli, rec := pair(t, Config{})
		net.InjectFaults(ether.FaultConfig{
			Seed: 7,
			Drop: ether.Rate{Num: 1, Den: 8},
			Dup:  ether.Rate{Num: 1, Den: 16},
		})
		conn, err := cli.Dial(1)
		if err != nil {
			t.Fatal(err)
		}
		var acc *Conn
		count, next := 0, 0
		pump(t, srv, cli, 100000, func() bool {
			if acc == nil {
				acc, _ = srv.Accept()
			}
			if next < 20 {
				if conn.Send([]ether.Word{ether.Word(next)}) == nil {
					next++
				}
			}
			if acc != nil {
				if _, ok := acc.Recv(); ok {
					count++
				}
			}
			return count == 20
		})
		return rec.Counter("pup.retransmit"), int64(net.Clock().Now())
	}
	r1, t1 := run()
	r2, t2 := run()
	if r1 != r2 || t1 != t2 {
		t.Fatalf("same-seed runs diverged: retransmits %d vs %d, clock %d vs %d", r1, r2, t1, t2)
	}
}
