// Package pup is a reliable, windowed, ack-based transport over the
// simulated Ethernet — the PUP/EFTP-shaped layer the paper's §1 openness
// story presumes: only the packet representation is standardized, and
// everything above it must survive a wire that drops, duplicates, delays
// and corrupts (see ether.FaultMedium).
//
// The machine is single-user and poll-driven (§2: no scheduler beyond the
// keyboard interrupt), so the transport is explicitly pollable: an Endpoint
// owns one ether.Station, demultiplexes inbound packets onto connections
// keyed by (remote address, connection id), and runs every retransmission
// timer off the shared simulated clock during Poll. There are no
// goroutines, no wall-clock timers, and no map-order dependence: two runs
// of the same workload retransmit the same packets at the same simulated
// times (cmd/altotrace asserts the property byte-for-byte).
//
// Reliability mechanics, v2 — selective repeat instead of go-back-N:
//
//   - every data packet carries a 16-bit sequence number; the receiver
//     delivers in order but holds out-of-order arrivals in a reassembly
//     buffer instead of discarding them, so one lost packet costs one
//     retransmission, not the whole window;
//   - acks are cumulative (ack=n means "I hold everything below n") and
//     additionally carry a 32-bit SACK mask naming exactly which packets
//     above the ack the receiver already buffered; the sender retransmits
//     only the holes;
//   - acks are delayed and batched: one ack per Config.AckEvery in-order
//     packets or per Config.AckDelay of simulated time, whichever first;
//     duplicates, reordering and hole fills ack immediately (the sender
//     needs the news), and every outbound data packet piggybacks the
//     current ack state for free;
//   - three duplicate acks trigger a fast retransmit of the first hole
//     without waiting for a timer (and halve the congestion window);
//   - the retransmission timeout adapts: each clean RTT sample (Karn's
//     rule — never from a retransmitted packet) feeds Jacobson's
//     estimator, RTO = srtt + 4·rttvar clamped to [MinRTO, MaxRTO], with
//     exponential backoff per packet while it keeps timing out;
//   - the sender's effective window is min(cwnd, peer's advertised
//     window, Config.Window): cwnd is an integer AIMD congestion window
//     (slow start from InitCwnd, +1 per acked window above ssthresh,
//     halved on fast retransmit, collapsed to 1 on timeout), and the
//     advertised window is how the receiver's unread buffer pushes back
//     on the sender. A full window surfaces ErrWindowFull — and
//     Conn.Avail says how many sends will fit, so callers can batch;
//   - a conn that exhausts Config.MaxRetries of consecutive silence dies
//     with ErrRetriesExhausted; any ack progress forgives the count;
//   - connections open and close by handshake (Open/OpenAck,
//     Close/CloseAck); both control packets ride the same timers, and
//     both handshakes are idempotent so duplicated or re-ordered control
//     packets are harmless;
//   - a packet whose checksum word no longer matches its content
//     (ether.Packet.SumOK) is dropped on arrival, converting corruption
//     into loss, which retransmission already repairs.
package pup

import (
	"errors"
	"time"

	"altoos/internal/ether"
	"altoos/internal/sim"
	"altoos/internal/trace"
)

// Packet types, claiming a range above the netfile v1 framing (0x46-0x4A).
const (
	// TypeOpen asks the remote endpoint to create a connection.
	TypeOpen ether.Word = 0x50 + iota
	// TypeOpenAck confirms it.
	TypeOpenAck
	// TypeData carries one message: header plus data words.
	TypeData
	// TypeAck acknowledges: header only, cumulative ack + SACK mask.
	TypeAck
	// TypeClose begins the close handshake.
	TypeClose
	// TypeCloseAck completes it.
	TypeCloseAck
)

// headerWords is the transport header inside the ether payload:
//
//	[0] connection id
//	[1] sequence number (data packets; 0 on acks and control)
//	[2] cumulative ack: next sequence the sender of this packet expects
//	[3] advertised receive window, in packets (flow control)
//	[4] SACK mask, low 16 bits: bit i set = "I hold ack+1+i"
//	[5] SACK mask, high 16 bits (together they cover ack+1 .. ack+32)
//	[6] causal flow id
//
// Every word rides in the charged, checksummed payload — context costs
// payload, exactly like the flow word before it. The flow is mirrored into
// ether.Packet.Flow so the medium can stamp its own events (sends,
// collisions, fault verdicts) onto the same flow; acks echo the flow of
// the packet they acknowledge, so a retransmitted request and the ack that
// finally quenches it render as one causal chain.
const headerWords = 7

// sackSpan is how many sequence numbers above the cumulative ack the two
// SACK words can name. The receive window defaults to the same value, so
// by default every buffered out-of-order packet is announced.
const sackSpan = 32

// MaxData is the data capacity of one transport packet, in words.
const MaxData = ether.MaxPayload - headerWords

// dupAckThreshold is how many duplicate acks trigger a fast retransmit —
// TCP's classic three: fewer, and simple reordering would spuriously
// retransmit; more, and a real loss waits longer than it must.
const dupAckThreshold = 3

// Errors.
var (
	// ErrRetriesExhausted reports a connection killed by its retry cap:
	// the remote end stayed silent through every backoff level.
	ErrRetriesExhausted = errors.New("pup: retransmit retries exhausted")
	// ErrWindowFull is send-side backpressure: the effective window
	// (congestion x flow control) is full. Poll until acks drain it.
	ErrWindowFull = errors.New("pup: send window full")
	// ErrClosed reports a send on a closing or closed connection.
	ErrClosed = errors.New("pup: connection closed")
	// ErrTooBig reports a message over MaxData words.
	ErrTooBig = errors.New("pup: message exceeds MaxData words")
)

// Config tunes an Endpoint. The zero value selects the defaults.
type Config struct {
	// Window caps the number of unacked data packets per connection no
	// matter what cwnd and the peer allow (default 32).
	Window int
	// RecvWindow is the per-connection receive budget, in packets:
	// undelivered in-order messages plus buffered out-of-order ones.
	// It is advertised on every outbound packet; the advertisement is
	// floored at one packet so a closed window can never deadlock the
	// conversation (the one-in-flight trickle re-opens it as the
	// application drains). Default 32 (= sackSpan, so every buffered
	// packet is SACK-visible).
	RecvWindow int
	// RTO is the retransmission timeout used before the first RTT
	// sample lands (default 40 ms — above a few full windows'
	// serialization on the 3 Mb/s wire). Once samples flow, the
	// Jacobson estimator replaces it.
	RTO time.Duration
	// MinRTO floors the adaptive timeout: below it, scheduling jitter
	// between polls would fire timers on packets that are merely
	// waiting their turn (default 10 ms).
	MinRTO time.Duration
	// MaxRTO caps the adaptive timeout and its exponential backoff
	// (default 120 ms).
	MaxRTO time.Duration
	// MaxRetries is the per-packet retransmission cap; one more silence
	// kills the connection with ErrRetriesExhausted (default 10).
	MaxRetries int
	// IdleTick is how far Poll advances the simulated clock when it did
	// no work but timers are pending — the cost of one spin of the §2
	// poll loop; without it a silent wire would freeze simulated time
	// and no timeout could ever fire (default 200 µs).
	IdleTick time.Duration
	// AckDelay is how long a lone in-order data packet may wait for
	// company (or a reply to piggyback on) before it is acked anyway
	// (default 2 ms).
	AckDelay time.Duration
	// AckEvery acks every Nth in-order data packet immediately, bounding
	// how much news a delayed ack can sit on (default 4).
	AckEvery int
	// InitCwnd is the initial congestion window, in packets (default 2).
	InitCwnd int
	// Seed seeds connection-id generation (mixed with the station
	// address, so equal seeds on different stations stay distinct).
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = 32
	}
	if c.RecvWindow <= 0 {
		c.RecvWindow = sackSpan
	}
	if c.RTO <= 0 {
		c.RTO = 40 * time.Millisecond
	}
	if c.MinRTO <= 0 {
		c.MinRTO = 10 * time.Millisecond
	}
	if c.MaxRTO <= 0 {
		c.MaxRTO = 120 * time.Millisecond
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 10
	}
	if c.IdleTick <= 0 {
		c.IdleTick = 200 * time.Microsecond
	}
	if c.AckDelay <= 0 {
		c.AckDelay = 2 * time.Millisecond
	}
	if c.AckEvery <= 0 {
		c.AckEvery = 4
	}
	if c.InitCwnd <= 0 {
		c.InitCwnd = 2
	}
	return c
}

// connKey identifies a connection: the remote station plus the id the
// dialing side chose. Two clients on one station multiplex by id; two
// stations may reuse ids freely.
type connKey struct {
	addr ether.Addr
	id   uint16
}

// Endpoint owns one station: it demultiplexes inbound packets onto
// connections and drives every timer during Poll. Endpoints are
// single-activity objects, polled from one activity at a time, like every
// other object on this machine.
type Endpoint struct {
	st    *ether.Station
	clock *sim.Clock
	cfg   Config
	rnd   *sim.Rand

	conns map[connKey]*Conn
	// order lists live connections in creation order: every per-conn
	// sweep walks this slice, never the map, so timer firing order is
	// deterministic (altovet enforces the no-map-range rule here).
	order     []*Conn
	listening bool
	backlog   []*Conn
}

// NewEndpoint builds an endpoint on a station. The clock is the station's
// network clock; cfg zero-fields take defaults.
func NewEndpoint(st *ether.Station, cfg Config) *Endpoint {
	cfg = cfg.withDefaults()
	return &Endpoint{
		st:    st,
		clock: st.Clock(),
		cfg:   cfg,
		rnd:   sim.NewRand(cfg.Seed ^ (uint64(st.Addr()) << 32)),
		conns: map[connKey]*Conn{},
	}
}

// Station returns the endpoint's station.
func (e *Endpoint) Station() *ether.Station { return e.st }

// rec reaches the medium's flight recorder (nil when tracing is off).
func (e *Endpoint) rec() *trace.Recorder { return e.st.TraceRecorder() }

// Listen makes the endpoint accept inbound Opens; Accept collects them.
func (e *Endpoint) Listen() { e.listening = true }

// Accept pops the oldest newly-established inbound connection, if any.
func (e *Endpoint) Accept() (*Conn, bool) {
	if len(e.backlog) == 0 {
		return nil, false
	}
	c := e.backlog[0]
	e.backlog = e.backlog[1:]
	return c, true
}

// Dial opens a connection to a remote station. The connection is usable
// immediately — data queued before the OpenAck arrives rides the same
// retransmission timers as everything else.
func (e *Endpoint) Dial(remote ether.Addr) (*Conn, error) {
	var id uint16
	for {
		id = e.rnd.Word()
		if _, taken := e.conns[connKey{remote, id}]; !taken {
			break
		}
	}
	c := e.newConn(remote, id, StateOpening, false)
	e.add(c)
	if err := c.sendCtrl(TypeOpen); err != nil {
		return nil, err
	}
	e.rec().Add("pup.open", 1)
	return c, nil
}

// newConn builds a connection with its windows at their initial positions:
// cwnd at InitCwnd, ssthresh at the window cap (slow start probes upward
// until loss says stop), and the peer's window assumed open until its
// first advertisement arrives.
func (e *Endpoint) newConn(remote ether.Addr, id uint16, st State, accepted bool) *Conn {
	return &Conn{
		ep:       e,
		remote:   remote,
		id:       id,
		state:    st,
		accepted: accepted,
		cwnd:     e.cfg.InitCwnd,
		ssthresh: e.cfg.Window,
		peerAwnd: e.cfg.RecvWindow,
	}
}

// add registers a connection in both indexes.
func (e *Endpoint) add(c *Conn) {
	e.conns[connKey{c.remote, c.id}] = c
	e.order = append(e.order, c)
}

// Poll is the endpoint's activity: it drains the station's input queue,
// fires due retransmission and delayed-ack timers, and reaps dead
// connections. It returns whether it did any work, so activity-switching
// loops can tell busy from idle; when it did none but timers are pending
// it advances the simulated clock by one IdleTick (the spin cost that lets
// timeouts fire on a silent wire).
func (e *Endpoint) Poll() (bool, error) {
	worked := false
	// Drain the whole input queue: a server station under load takes
	// packets faster than one per spin, or its clients' timers fire on
	// queued-but-unread data and the wire fills with spurious retransmits.
	for {
		pkt, ok := e.st.Recv()
		if !ok {
			break
		}
		worked = true
		if err := e.dispatch(pkt); err != nil {
			return true, err
		}
	}
	now := e.clock.Now()
	waiting := false
	for _, c := range e.order {
		w, wait, err := c.tick(now)
		worked = worked || w
		waiting = waiting || wait
		if err != nil {
			return true, err
		}
	}
	e.reap()
	if !worked && waiting {
		e.clock.Advance(e.cfg.IdleTick)
		// Surface the earliest pending timer so an event-driven scheduler
		// (internal/fleet) can jump the clock straight to the deadline
		// instead of burning idle ticks up to it. The single-machine path
		// never reads the request; the cost is one atomic min per idle poll.
		for _, c := range e.order {
			if d, ok := c.nextDeadline(); ok {
				e.clock.RequestWake(d)
			}
		}
	}
	return worked, nil
}

// reap drops closed connections from the sweep order and the demux map.
// Late control packets for a reaped connection are answered statelessly.
func (e *Endpoint) reap() {
	live := e.order[:0]
	for _, c := range e.order {
		if c.state == StateClosed {
			delete(e.conns, connKey{c.remote, c.id})
			continue
		}
		live = append(live, c)
	}
	e.order = live
}

// dispatch routes one inbound packet. Damaged packets (checksum mismatch)
// are dropped here — corruption becomes loss, and loss is what the timers
// already repair. Any packet from a live peer carries ack state (cumulative
// ack, advertised window, SACK mask), processed before the packet's own
// business.
func (e *Endpoint) dispatch(pkt ether.Packet) error {
	if !pkt.SumOK() {
		e.rec().Add("pup.checksum.drop", 1)
		return nil
	}
	if len(pkt.Payload) < headerWords {
		return nil // not ours, or truncated beyond use
	}
	id, seq := pkt.Payload[0], pkt.Payload[1]
	ack, awnd := pkt.Payload[2], int(pkt.Payload[3])
	sackLo, sackHi := pkt.Payload[4], pkt.Payload[5]
	flow := pkt.Payload[6]
	c := e.conns[connKey{pkt.Src, id}]
	switch pkt.Type {
	case TypeOpen:
		return e.handleOpen(pkt.Src, id, flow, c)
	case TypeOpenAck:
		if c != nil && c.state == StateOpening {
			c.state = StateOpen
			c.peerAwnd = awnd
			c.ctrl = ctrlState{}
		}
		return nil
	case TypeData:
		if c == nil {
			return nil // conn unknown (not yet open, or long gone): sender retries
		}
		if err := c.handleAckInfo(ack, awnd, sackLo, sackHi); err != nil {
			return err
		}
		return c.handleData(seq, flow, pkt.Payload[headerWords:])
	case TypeAck:
		if c != nil {
			return c.handleAckInfo(ack, awnd, sackLo, sackHi)
		}
		return nil
	case TypeClose:
		if c != nil {
			c.state = StateClosed
			c.ctrl = ctrlState{}
		}
		// Acknowledge even for unknown connections: the peer may be
		// retransmitting a Close whose ack was lost after we reaped.
		return e.sendStateless(pkt.Src, TypeCloseAck, id, flow)
	case TypeCloseAck:
		if c != nil && c.state == StateClosing {
			c.state = StateClosed
			c.ctrl = ctrlState{}
			e.rec().Add("pup.close", 1)
		}
		return nil
	}
	return nil
}

// handleOpen creates (or re-confirms) an inbound connection.
func (e *Endpoint) handleOpen(from ether.Addr, id, flow uint16, c *Conn) error {
	if c == nil {
		if !e.listening {
			return nil
		}
		c = e.newConn(from, id, StateOpen, true)
		e.add(c)
		e.backlog = append(e.backlog, c)
		e.rec().Add("pup.accept", 1)
	}
	// The OpenAck rides the connection's real header, so the dialer learns
	// our receive window before its first data burst. A duplicated Open
	// (the first ack was lost) just elicits another.
	return e.sendPacket(c, TypeOpenAck, 0, flow, nil)
}

// sendPacket transmits one packet on a connection, stamping the full ack
// state — cumulative ack, advertised window, SACK mask — into the header.
// Every outbound packet is therefore also an ack: a data packet or control
// packet going the other way satisfies any pending delayed ack, which is
// cleared here. Every send charges wire time on the shared clock, which is
// also what drives the timers forward.
func (e *Endpoint) sendPacket(c *Conn, typ ether.Word, seq, flow uint16, data []ether.Word) error {
	awnd := c.awnd()
	sackLo, sackHi := c.sackMask()
	payload := make([]ether.Word, headerWords+len(data))
	payload[0], payload[1], payload[2] = c.id, seq, c.recvNext
	payload[3], payload[4], payload[5] = ether.Word(awnd), sackLo, sackHi
	payload[6] = flow
	copy(payload[headerWords:], data)
	c.ackPending = 0
	c.ackArmed = false
	return e.st.Send(ether.Packet{Dst: c.remote, Type: typ, Flow: flow, Payload: payload})
}

// sendStateless answers for a connection this endpoint no longer (or never)
// holds: no ack state to report, the window advertisement is the config
// default. Used for CloseAcks to reaped connections.
func (e *Endpoint) sendStateless(to ether.Addr, typ ether.Word, id, flow uint16) error {
	payload := make([]ether.Word, headerWords)
	payload[0] = id
	payload[3] = ether.Word(e.cfg.RecvWindow)
	payload[6] = flow
	return e.st.Send(ether.Packet{Dst: to, Type: typ, Flow: flow, Payload: payload})
}
