// Package pup is a reliable, windowed, ack-based transport over the
// simulated Ethernet — the PUP/EFTP-shaped layer the paper's §1 openness
// story presumes: only the packet representation is standardized, and
// everything above it must survive a wire that drops, duplicates, delays
// and corrupts (see ether.FaultMedium).
//
// The machine is single-user and poll-driven (§2: no scheduler beyond the
// keyboard interrupt), so the transport is explicitly pollable: an Endpoint
// owns one ether.Station, demultiplexes inbound packets onto connections
// keyed by (remote address, connection id), and runs every retransmission
// timer off the shared simulated clock during Poll. There are no
// goroutines, no wall-clock timers, and no map-order dependence: two runs
// of the same workload retransmit the same packets at the same simulated
// times (cmd/altotrace asserts the property byte-for-byte).
//
// Reliability mechanics, EFTP-style but windowed:
//
//   - every data packet carries a 16-bit sequence number; the receiver
//     accepts only the next expected one, re-acking duplicates and
//     discarding overtakers (go-back-N, no reassembly buffer);
//   - acks are cumulative: ack=n means "I hold everything below n";
//   - the sender keeps at most Config.Window unacked packets; a full
//     window surfaces ErrWindowFull as backpressure, never blocks;
//   - an unacked packet is retransmitted when its deadline (simulated
//     time) passes, with exponential backoff up to Config.MaxRTO, and a
//     conn that exhausts Config.MaxRetries dies with ErrRetriesExhausted;
//   - connections open and close by handshake (Open/OpenAck,
//     Close/CloseAck); both control packets ride the same timers, and
//     both handshakes are idempotent so duplicated or re-ordered control
//     packets are harmless;
//   - a packet whose checksum word no longer matches its content
//     (ether.Packet.SumOK) is dropped on arrival, converting corruption
//     into loss, which retransmission already repairs.
package pup

import (
	"errors"
	"time"

	"altoos/internal/ether"
	"altoos/internal/sim"
	"altoos/internal/trace"
)

// Packet types, claiming a range above the netfile v1 framing (0x46-0x4A).
const (
	// TypeOpen asks the remote endpoint to create a connection.
	TypeOpen ether.Word = 0x50 + iota
	// TypeOpenAck confirms it.
	TypeOpenAck
	// TypeData carries one message: header (id, seq, ack) plus data words.
	TypeData
	// TypeAck acknowledges cumulatively: header only, ack = next expected.
	TypeAck
	// TypeClose begins the close handshake.
	TypeClose
	// TypeCloseAck completes it.
	TypeCloseAck
)

// headerWords is the transport header inside the ether payload:
// connection id, sequence number, cumulative ack, causal flow id. The flow
// word rides in the charged, checksummed payload — it is real header, not
// metadata — and is mirrored into ether.Packet.Flow so the medium can stamp
// its own events (sends, collisions, fault verdicts) onto the same flow.
// Acks echo the flow of the packet they acknowledge, so a retransmitted
// request and the ack that finally quenches it render as one causal chain.
const headerWords = 4

// MaxData is the data capacity of one transport packet, in words.
const MaxData = ether.MaxPayload - headerWords

// Errors.
var (
	// ErrRetriesExhausted reports a connection killed by its retry cap:
	// the remote end stayed silent through every backoff level.
	ErrRetriesExhausted = errors.New("pup: retransmit retries exhausted")
	// ErrWindowFull is send-side backpressure: the window holds
	// Config.Window unacked packets. Poll until acks drain it.
	ErrWindowFull = errors.New("pup: send window full")
	// ErrClosed reports a send on a closing or closed connection.
	ErrClosed = errors.New("pup: connection closed")
	// ErrTooBig reports a message over MaxData words.
	ErrTooBig = errors.New("pup: message exceeds MaxData words")
)

// Config tunes an Endpoint. The zero value selects the defaults.
type Config struct {
	// Window is the maximum number of unacked data packets per
	// connection (default 8).
	Window int
	// RTO is the initial retransmission timeout in simulated time
	// (default 40 ms — above a few full windows' serialization on the
	// 3 Mb/s wire, so a loaded medium does not trip timers by itself).
	RTO time.Duration
	// MaxRTO caps the exponential backoff (default 120 ms).
	MaxRTO time.Duration
	// MaxRetries is the per-packet retransmission cap; one more silence
	// kills the connection with ErrRetriesExhausted (default 10).
	MaxRetries int
	// IdleTick is how far Poll advances the simulated clock when it did
	// no work but timers are pending — the cost of one spin of the §2
	// poll loop; without it a silent wire would freeze simulated time
	// and no timeout could ever fire (default 200 µs).
	IdleTick time.Duration
	// Seed seeds connection-id generation (mixed with the station
	// address, so equal seeds on different stations stay distinct).
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = 8
	}
	if c.RTO <= 0 {
		c.RTO = 40 * time.Millisecond
	}
	if c.MaxRTO <= 0 {
		c.MaxRTO = 120 * time.Millisecond
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 10
	}
	if c.IdleTick <= 0 {
		c.IdleTick = 200 * time.Microsecond
	}
	return c
}

// connKey identifies a connection: the remote station plus the id the
// dialing side chose. Two clients on one station multiplex by id; two
// stations may reuse ids freely.
type connKey struct {
	addr ether.Addr
	id   uint16
}

// Endpoint owns one station: it demultiplexes inbound packets onto
// connections and drives every timer during Poll. Endpoints are
// single-activity objects, polled from one activity at a time, like every
// other object on this machine.
type Endpoint struct {
	st    *ether.Station
	clock *sim.Clock
	cfg   Config
	rnd   *sim.Rand

	conns map[connKey]*Conn
	// order lists live connections in creation order: every per-conn
	// sweep walks this slice, never the map, so timer firing order is
	// deterministic (altovet enforces the no-map-range rule here).
	order     []*Conn
	listening bool
	backlog   []*Conn
}

// NewEndpoint builds an endpoint on a station. The clock is the station's
// network clock; cfg zero-fields take defaults.
func NewEndpoint(st *ether.Station, cfg Config) *Endpoint {
	cfg = cfg.withDefaults()
	return &Endpoint{
		st:    st,
		clock: st.Clock(),
		cfg:   cfg,
		rnd:   sim.NewRand(cfg.Seed ^ (uint64(st.Addr()) << 32)),
		conns: map[connKey]*Conn{},
	}
}

// Station returns the endpoint's station.
func (e *Endpoint) Station() *ether.Station { return e.st }

// rec reaches the medium's flight recorder (nil when tracing is off).
func (e *Endpoint) rec() *trace.Recorder { return e.st.TraceRecorder() }

// Listen makes the endpoint accept inbound Opens; Accept collects them.
func (e *Endpoint) Listen() { e.listening = true }

// Accept pops the oldest newly-established inbound connection, if any.
func (e *Endpoint) Accept() (*Conn, bool) {
	if len(e.backlog) == 0 {
		return nil, false
	}
	c := e.backlog[0]
	e.backlog = e.backlog[1:]
	return c, true
}

// Dial opens a connection to a remote station. The connection is usable
// immediately — data queued before the OpenAck arrives rides the same
// retransmission timers as everything else.
func (e *Endpoint) Dial(remote ether.Addr) (*Conn, error) {
	var id uint16
	for {
		id = e.rnd.Word()
		if _, taken := e.conns[connKey{remote, id}]; !taken {
			break
		}
	}
	c := &Conn{ep: e, remote: remote, id: id, state: StateOpening}
	e.add(c)
	if err := c.sendCtrl(TypeOpen); err != nil {
		return nil, err
	}
	e.rec().Add("pup.open", 1)
	return c, nil
}

// add registers a connection in both indexes.
func (e *Endpoint) add(c *Conn) {
	e.conns[connKey{c.remote, c.id}] = c
	e.order = append(e.order, c)
}

// Poll is the endpoint's activity: it drains the station's input queue,
// fires due retransmission timers, and reaps dead connections. It returns
// whether it did any work, so activity-switching loops can tell busy from
// idle; when it did none but timers are pending it advances the simulated
// clock by one IdleTick (the spin cost that lets timeouts fire on a silent
// wire).
func (e *Endpoint) Poll() (bool, error) {
	worked := false
	// Drain the whole input queue: a server station under load takes
	// packets faster than one per spin, or its clients' timers fire on
	// queued-but-unread data and the wire fills with spurious retransmits.
	for {
		pkt, ok := e.st.Recv()
		if !ok {
			break
		}
		worked = true
		if err := e.dispatch(pkt); err != nil {
			return true, err
		}
	}
	now := e.clock.Now()
	waiting := false
	for _, c := range e.order {
		w, wait, err := c.tick(now)
		worked = worked || w
		waiting = waiting || wait
		if err != nil {
			return true, err
		}
	}
	e.reap()
	if !worked && waiting {
		e.clock.Advance(e.cfg.IdleTick)
	}
	return worked, nil
}

// reap drops closed connections from the sweep order and the demux map.
// Late control packets for a reaped connection are answered statelessly.
func (e *Endpoint) reap() {
	live := e.order[:0]
	for _, c := range e.order {
		if c.state == StateClosed {
			delete(e.conns, connKey{c.remote, c.id})
			continue
		}
		live = append(live, c)
	}
	e.order = live
}

// dispatch routes one inbound packet. Damaged packets (checksum mismatch)
// are dropped here — corruption becomes loss, and loss is what the timers
// already repair.
func (e *Endpoint) dispatch(pkt ether.Packet) error {
	if !pkt.SumOK() {
		e.rec().Add("pup.checksum.drop", 1)
		return nil
	}
	if len(pkt.Payload) < headerWords {
		return nil // not ours, or truncated beyond use
	}
	id, seq, ack, flow := pkt.Payload[0], pkt.Payload[1], pkt.Payload[2], pkt.Payload[3]
	c := e.conns[connKey{pkt.Src, id}]
	switch pkt.Type {
	case TypeOpen:
		return e.handleOpen(pkt.Src, id, flow, c)
	case TypeOpenAck:
		if c != nil && c.state == StateOpening {
			c.state = StateOpen
			c.ctrl = ctrlState{}
		}
		return nil
	case TypeData:
		if c == nil {
			return nil // conn unknown (not yet open, or long gone): sender retries
		}
		return c.handleData(seq, ack, flow, pkt.Payload[headerWords:])
	case TypeAck:
		if c != nil {
			c.handleAck(ack)
		}
		return nil
	case TypeClose:
		if c != nil {
			c.state = StateClosed
			c.ctrl = ctrlState{}
		}
		// Acknowledge even for unknown connections: the peer may be
		// retransmitting a Close whose ack was lost after we reaped.
		return e.sendRaw(pkt.Src, TypeCloseAck, id, 0, 0, flow, nil)
	case TypeCloseAck:
		if c != nil && c.state == StateClosing {
			c.state = StateClosed
			c.ctrl = ctrlState{}
			e.rec().Add("pup.close", 1)
		}
		return nil
	}
	return nil
}

// handleOpen creates (or re-confirms) an inbound connection.
func (e *Endpoint) handleOpen(from ether.Addr, id, flow uint16, c *Conn) error {
	if c == nil {
		if !e.listening {
			return nil
		}
		c = &Conn{ep: e, remote: from, id: id, state: StateOpen, accepted: true}
		e.add(c)
		e.backlog = append(e.backlog, c)
		e.rec().Add("pup.accept", 1)
	}
	// OpenAck is stateless on this side: a duplicated Open (the first ack
	// was lost) just elicits another. It echoes the Open's flow.
	return e.sendRaw(from, TypeOpenAck, id, 0, 0, flow, nil)
}

// sendRaw transmits one transport packet. Every send charges wire time on
// the shared clock, which is also what drives the timers forward. The flow
// word is both carried in the payload header and mirrored onto the packet's
// trace sideband for the medium's own events.
func (e *Endpoint) sendRaw(to ether.Addr, typ ether.Word, id, seq, ack, flow uint16, data []ether.Word) error {
	payload := make([]ether.Word, headerWords+len(data))
	payload[0], payload[1], payload[2], payload[3] = id, seq, ack, flow
	copy(payload[headerWords:], data)
	return e.st.Send(ether.Packet{Dst: to, Type: typ, Flow: flow, Payload: payload})
}
