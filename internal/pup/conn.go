package pup

import (
	"time"

	"altoos/internal/ether"
)

// State is a connection's lifecycle position.
type State uint8

const (
	// StateOpening: Open sent, OpenAck awaited (dialing side only).
	StateOpening State = iota
	// StateOpen: established; data flows.
	StateOpen
	// StateClosing: Close requested locally; flushing, then handshaking.
	StateClosing
	// StateClosed: handshake done, peer closed, or the conn died — see Err.
	StateClosed
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateOpening:
		return "opening"
	case StateOpen:
		return "open"
	case StateClosing:
		return "closing"
	case StateClosed:
		return "closed"
	}
	return "?"
}

// outPacket is one unacked message in the send window. The flow id is
// captured at Send time, so retransmissions carry the *original* flow —
// a lost packet and its replacements form one causal chain in the trace.
type outPacket struct {
	seq      uint16
	flow     uint16
	data     []ether.Word
	deadline time.Duration // simulated time of the next retransmission
	rto      time.Duration // current backoff level
	retries  int
}

// inMsg is one delivered in-order message with the flow id it arrived under.
type inMsg struct {
	flow uint16
	data []ether.Word
}

// ctrlState is the retransmission state of a pending Open or Close.
type ctrlState struct {
	kind     ether.Word // TypeOpen or TypeClose; 0 = none pending
	deadline time.Duration
	rto      time.Duration
	retries  int
}

// Conn is one reliable connection. Conns are created by Endpoint.Dial or
// surfaced by Endpoint.Accept, and make progress only while their endpoint
// is polled — like every object on this poll-driven machine.
type Conn struct {
	ep       *Endpoint
	remote   ether.Addr
	id       uint16
	state    State
	accepted bool // true on the listening side
	err      error

	// Send side: seq of the next fresh message, the unacked window in
	// seq order, and the highest cumulative ack seen (for dup counting).
	sendSeq uint16
	sendQ   []outPacket
	lastAck uint16

	// Receive side: next expected seq and the in-order delivery queue.
	recvNext uint16
	recvQ    []inMsg

	// flow is the causal flow id stamped on outbound packets (0: none).
	// Set per request by the layer above; see SetFlow.
	flow uint16

	// ctrl is the pending Open/Close retransmission state (kind 0: none).
	ctrl ctrlState
}

// Remote returns the peer's station address.
func (c *Conn) Remote() ether.Addr { return c.remote }

// ID returns the connection id (chosen by the dialing side).
func (c *Conn) ID() uint16 { return c.id }

// State returns the lifecycle position.
func (c *Conn) State() State { return c.state }

// Err returns the terminal error, if the connection died (nil on a clean
// close). ErrRetriesExhausted is the typed verdict for a silent peer.
func (c *Conn) Err() error { return c.err }

// Unacked returns the number of sent-but-unacknowledged messages — zero
// means everything sent so far has provably arrived.
func (c *Conn) Unacked() int { return len(c.sendQ) }

// SetFlow sets the causal flow id stamped on messages sent from now on
// (trace.Recorder.NextFlow allocates them; 0 clears). Each queued message
// keeps the flow that was current when it was sent, so retransmissions stay
// on their original flow even after the conn moves to a new request.
func (c *Conn) SetFlow(flow int64) { c.flow = uint16(flow) }

// Flow returns the current outbound flow id.
func (c *Conn) Flow() int64 { return int64(c.flow) }

// seqLess compares sequence numbers on the 16-bit circle.
func seqLess(a, b uint16) bool { return int16(a-b) < 0 }

// Send queues one message (at most MaxData words) into the send window and
// transmits it. A full window returns ErrWindowFull — backpressure, not an
// error to abort on: poll until acks drain the window, then retry.
func (c *Conn) Send(data []ether.Word) error {
	if c.err != nil {
		return c.err
	}
	if c.state == StateClosing || c.state == StateClosed {
		return ErrClosed
	}
	if len(data) > MaxData {
		return ErrTooBig
	}
	if len(c.sendQ) >= c.ep.cfg.Window {
		return ErrWindowFull
	}
	op := outPacket{
		seq:  c.sendSeq,
		flow: c.flow,
		data: append([]ether.Word(nil), data...),
		rto:  c.ep.cfg.RTO,
	}
	c.sendSeq++
	c.sendQ = append(c.sendQ, op)
	return c.transmit(&c.sendQ[len(c.sendQ)-1])
}

// Recv pops the next in-order received message, if any.
func (c *Conn) Recv() ([]ether.Word, bool) {
	data, _, ok := c.RecvFlow()
	return data, ok
}

// RecvFlow pops the next in-order received message along with the causal
// flow id it arrived under — how a server adopts its client's flow.
func (c *Conn) RecvFlow() ([]ether.Word, int64, bool) {
	if len(c.recvQ) == 0 {
		return nil, 0, false
	}
	m := c.recvQ[0]
	c.recvQ = c.recvQ[1:]
	return m.data, int64(m.flow), true
}

// Close begins a graceful close: the window is flushed first, then the
// Close/CloseAck handshake runs on the usual timers. Progress happens in
// Poll; watch State (or Err) for completion.
func (c *Conn) Close() error {
	if c.err != nil {
		return c.err
	}
	if c.state == StateClosed {
		return nil
	}
	c.state = StateClosing
	return nil
}

// transmit puts one window entry on the wire and arms its timer. The entry's
// own captured flow goes out — not the conn's current one — so a retransmit
// fired after the conn moved on still names the request that queued it.
func (c *Conn) transmit(op *outPacket) error {
	if err := c.ep.sendRaw(c.remote, TypeData, c.id, op.seq, c.recvNext, op.flow, op.data); err != nil {
		return err
	}
	c.ep.rec().Add("pup.data.send", 1)
	op.deadline = c.ep.clock.Now() + op.rto
	return nil
}

// sendCtrl transmits (or retransmits) the pending control packet.
func (c *Conn) sendCtrl(kind ether.Word) error {
	if c.ctrlKind() != kind {
		c.ctrl = ctrlState{kind: kind, rto: c.ep.cfg.RTO}
	}
	if err := c.ep.sendRaw(c.remote, kind, c.id, 0, c.recvNext, c.flow, nil); err != nil {
		return err
	}
	c.ctrl.deadline = c.ep.clock.Now() + c.ctrl.rto
	return nil
}

func (c *Conn) ctrlKind() ether.Word { return c.ctrl.kind }

// handleData processes an inbound data packet: piggybacked ack first, then
// strict in-order acceptance. Anything but the next expected sequence is
// dropped — duplicates are re-acked (the ack the sender missed), and
// overtakers (a delayed packet jumped the queue) are left for the sender's
// timers, go-back-N style.
func (c *Conn) handleData(seq, ack, flow uint16, data []ether.Word) error {
	c.handleAck(ack)
	rec := c.ep.rec()
	switch {
	case seq == c.recvNext:
		c.recvQ = append(c.recvQ, inMsg{flow: flow, data: append([]ether.Word(nil), data...)})
		c.recvNext++
		rec.Add("pup.data.recv", 1)
	case seqLess(seq, c.recvNext):
		rec.Add("pup.dup.data", 1)
	default:
		rec.Add("pup.ooo.drop", 1)
	}
	// Ack what we hold, whatever just happened: a duplicate means our
	// previous ack was lost, an overtaker means the sender needs to hear
	// where we really are. The ack echoes the inbound flow, keeping the
	// round trip on one causal chain.
	return c.ep.sendRaw(c.remote, TypeAck, c.id, 0, c.recvNext, flow, nil)
}

// handleAck applies a cumulative ack: everything below ack leaves the
// window, and surviving entries get fresh timers (the peer is alive and
// draining — the backoff clock restarts, which is what keeps a long burst
// from tripping its own head-of-window timeout).
func (c *Conn) handleAck(ack uint16) {
	popped := 0
	for len(c.sendQ) > 0 && seqLess(c.sendQ[0].seq, ack) {
		c.sendQ = c.sendQ[1:]
		popped++
	}
	if popped > 0 {
		// The peer is alive and draining: restart the surviving timers and
		// forgive accumulated retries. The retry cap measures consecutive
		// silence (a dead peer), not congestion on a loaded wire.
		now := c.ep.clock.Now()
		for i := range c.sendQ {
			c.sendQ[i].deadline = now + c.sendQ[i].rto
			c.sendQ[i].retries = 0
		}
		c.lastAck = ack
		return
	}
	if ack == c.lastAck && len(c.sendQ) > 0 {
		c.ep.rec().Add("pup.dup.ack", 1)
	}
}

// fail kills the connection with a terminal error.
func (c *Conn) fail(err error) {
	c.err = err
	c.state = StateClosed
	c.ep.rec().Add("pup.fail", 1)
}

// tick fires due timers. It reports whether it did work and whether timers
// remain pending (so the endpoint knows to keep simulated time flowing).
func (c *Conn) tick(now time.Duration) (worked, waiting bool, err error) {
	if c.state == StateClosed {
		return false, false, nil
	}
	// Launch the close handshake once the window has flushed.
	if c.state == StateClosing && len(c.sendQ) == 0 && c.ctrl.kind == 0 {
		if err := c.sendCtrl(TypeClose); err != nil {
			return true, true, err
		}
		worked = true
	}
	if c.ctrl.kind != 0 {
		waiting = true
		if now >= c.ctrl.deadline {
			if c.ctrl.retries >= c.ep.cfg.MaxRetries {
				c.fail(ErrRetriesExhausted)
				return worked, false, nil
			}
			c.ctrl.retries++
			c.ctrl.rto = backoff(c.ctrl.rto, c.ep.cfg.MaxRTO)
			if err := c.sendCtrl(c.ctrl.kind); err != nil {
				return true, true, err
			}
			c.ep.rec().Add("pup.retransmit", 1)
			worked = true
		}
	}
	for i := range c.sendQ {
		waiting = true
		if now < c.sendQ[i].deadline {
			continue
		}
		if c.sendQ[i].retries >= c.ep.cfg.MaxRetries {
			c.fail(ErrRetriesExhausted)
			return worked, false, nil
		}
		c.sendQ[i].retries++
		c.sendQ[i].rto = backoff(c.sendQ[i].rto, c.ep.cfg.MaxRTO)
		if err := c.transmit(&c.sendQ[i]); err != nil {
			return true, true, err
		}
		c.ep.rec().Add("pup.retransmit", 1)
		worked = true
	}
	return worked, waiting, nil
}

// backoff doubles an RTO up to the cap.
func backoff(rto, maxRTO time.Duration) time.Duration {
	rto *= 2
	if rto > maxRTO {
		rto = maxRTO
	}
	return rto
}
