package pup

import (
	"time"

	"altoos/internal/ether"
)

// State is a connection's lifecycle position.
type State uint8

const (
	// StateOpening: Open sent, OpenAck awaited (dialing side only).
	StateOpening State = iota
	// StateOpen: established; data flows.
	StateOpen
	// StateClosing: Close requested locally; flushing, then handshaking.
	StateClosing
	// StateClosed: handshake done, peer closed, or the conn died — see Err.
	StateClosed
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateOpening:
		return "opening"
	case StateOpen:
		return "open"
	case StateClosing:
		return "closing"
	case StateClosed:
		return "closed"
	}
	return "?"
}

// outPacket is one unacked message in the send window. The flow id is
// captured at Send time, so retransmissions carry the *original* flow —
// a lost packet and its replacements form one causal chain in the trace.
type outPacket struct {
	seq      uint16
	flow     uint16
	data     []ether.Word
	sentAt   time.Duration // last (re)transmission time, for RTT samples
	deadline time.Duration // simulated time of the next retransmission
	backoff  int           // RTO multiplier; doubles per timeout
	retries  int           // consecutive timeouts; ack progress forgives
	rexmits  int           // times retransmitted (Karn: no RTT sample then)
	sacked   bool          // peer holds it out of order; no timer, no resend
	fastLoss bool          // already fast-retransmitted in this recovery
}

// inMsg is one delivered in-order message with the flow id it arrived under.
type inMsg struct {
	flow uint16
	data []ether.Word
}

// ctrlState is the retransmission state of a pending Open or Close.
type ctrlState struct {
	kind     ether.Word // TypeOpen or TypeClose; 0 = none pending
	deadline time.Duration
	rto      time.Duration
	retries  int
}

// Conn is one reliable connection. Conns are created by Endpoint.Dial or
// surfaced by Endpoint.Accept, and make progress only while their endpoint
// is polled — like every object on this poll-driven machine.
type Conn struct {
	ep       *Endpoint
	remote   ether.Addr
	id       uint16
	state    State
	accepted bool // true on the listening side
	err      error

	// Send side: seq of the next fresh message and the unacked window in
	// seq order. Entries leave from the front on cumulative acks; SACKed
	// entries in the middle stay (they hold their place in the sequence)
	// but carry no timer and are never retransmitted.
	sendSeq uint16
	sendQ   []outPacket

	// Ack-clock state: the highest cumulative ack seen, the run of
	// duplicate acks since (three trigger a fast retransmit), and the
	// peer's advertised receive window from its latest packet.
	lastAck  uint16
	dupAcks  int
	peerAwnd int

	// Congestion control (integer AIMD): cwnd is the congestion window in
	// packets, ssthresh the slow-start ceiling, caCredit the acked-packet
	// accumulator that buys +1 cwnd per full window during congestion
	// avoidance. recovering marks a fast-recovery episode, over when the
	// cumulative ack reaches recoverSeq (the send horizon at loss time) —
	// until then further dup acks must not halve the window again.
	cwnd       int
	ssthresh   int
	caCredit   int
	recovering bool
	recoverSeq uint16

	// Adaptive RTO (Jacobson): smoothed RTT and variance from clean
	// samples (never a retransmitted packet — Karn's rule). rttValid
	// gates the estimator until the first sample lands.
	srtt     time.Duration
	rttvar   time.Duration
	rttValid bool

	// Receive side: next expected seq, the in-order delivery queue, and
	// the out-of-order reassembly buffer sorted by distance from recvNext
	// (a slice, never a map: delivery order is part of the trace).
	recvNext uint16
	recvQ    []inMsg
	ooo      []inMsg
	oooSeq   []uint16

	// Delayed-ack state: how many in-order packets arrived unacked, the
	// armed timer, and the flow the eventual ack should echo. Any outbound
	// packet clears all three (the header piggybacks the ack state).
	ackPending int
	ackArmed   bool
	ackDue     time.Duration
	ackFlow    uint16

	// flow is the causal flow id stamped on outbound packets (0: none).
	// Set per request by the layer above; see SetFlow.
	flow uint16

	// ctrl is the pending Open/Close retransmission state (kind 0: none).
	ctrl ctrlState
}

// Remote returns the peer's station address.
func (c *Conn) Remote() ether.Addr { return c.remote }

// ID returns the connection id (chosen by the dialing side).
func (c *Conn) ID() uint16 { return c.id }

// State returns the lifecycle position.
func (c *Conn) State() State { return c.state }

// Err returns the terminal error, if the connection died (nil on a clean
// close). ErrRetriesExhausted is the typed verdict for a silent peer.
func (c *Conn) Err() error { return c.err }

// Unacked returns the number of sent-but-unacknowledged messages — zero
// means everything sent so far has provably arrived.
func (c *Conn) Unacked() int { return len(c.sendQ) }

// SetFlow sets the causal flow id stamped on messages sent from now on
// (trace.Recorder.NextFlow allocates them; 0 clears). Each queued message
// keeps the flow that was current when it was sent, so retransmissions stay
// on their original flow even after the conn moves to a new request.
func (c *Conn) SetFlow(flow int64) { c.flow = uint16(flow) }

// Flow returns the current outbound flow id.
func (c *Conn) Flow() int64 { return int64(c.flow) }

// seqLess compares sequence numbers on the 16-bit circle.
func seqLess(a, b uint16) bool { return int16(a-b) < 0 }

// window is the effective send window: congestion window, peer's
// advertised receive window and the configured hard cap, whichever is
// tightest. The advertisement is floored at one on the receive side, so
// this can stall but never deadlock.
func (c *Conn) window() int {
	w := c.cwnd
	if c.peerAwnd < w {
		w = c.peerAwnd
	}
	if c.ep.cfg.Window < w {
		w = c.ep.cfg.Window
	}
	return w
}

// Avail returns how many messages Send will currently accept — the
// effective window minus what is already in flight. Callers batch sends
// against it instead of probing for ErrWindowFull; zero means poll until
// acks drain the window (or, on a closed conn, forever).
func (c *Conn) Avail() int {
	if c.err != nil || c.state == StateClosing || c.state == StateClosed {
		return 0
	}
	a := c.window() - len(c.sendQ)
	if a < 0 {
		return 0
	}
	return a
}

// Send queues one message (at most MaxData words) into the send window and
// transmits it. A full window returns ErrWindowFull — backpressure, not an
// error to abort on: poll until acks drain the window, then retry (or ask
// Avail first and never see the error).
func (c *Conn) Send(data []ether.Word) error {
	if c.err != nil {
		return c.err
	}
	if c.state == StateClosing || c.state == StateClosed {
		return ErrClosed
	}
	if len(data) > MaxData {
		return ErrTooBig
	}
	if len(c.sendQ) >= c.window() {
		return ErrWindowFull
	}
	op := outPacket{
		seq:     c.sendSeq,
		flow:    c.flow,
		data:    append([]ether.Word(nil), data...),
		backoff: 1,
	}
	c.sendSeq++
	c.sendQ = append(c.sendQ, op)
	return c.transmit(&c.sendQ[len(c.sendQ)-1], false)
}

// Recv pops the next in-order received message, if any.
func (c *Conn) Recv() ([]ether.Word, bool) {
	data, _, ok := c.RecvFlow()
	return data, ok
}

// RecvFlow pops the next in-order received message along with the causal
// flow id it arrived under — how a server adopts its client's flow.
func (c *Conn) RecvFlow() ([]ether.Word, int64, bool) {
	if len(c.recvQ) == 0 {
		return nil, 0, false
	}
	m := c.recvQ[0]
	c.recvQ = c.recvQ[1:]
	return m.data, int64(m.flow), true
}

// FlushAck sends any pending delayed acknowledgment immediately. Callers
// about to go quiet for a long stretch of simulated time (a server heading
// into a chained disk transfer) flush first, so the peer is not left timing
// out against an ack that is merely sitting in the delay window.
func (c *Conn) FlushAck() error {
	if c.err != nil || c.state == StateClosed {
		return nil
	}
	if !c.ackArmed && c.ackPending == 0 {
		return nil
	}
	return c.sendAck(c.ackFlow)
}

// Close begins a graceful close: the window is flushed first, then the
// Close/CloseAck handshake runs on the usual timers. Progress happens in
// Poll; watch State (or Err) for completion.
func (c *Conn) Close() error {
	if c.err != nil {
		return c.err
	}
	if c.state == StateClosed {
		return nil
	}
	c.state = StateClosing
	return nil
}

// awnd is the receive window advertisement: the configured budget minus
// everything held (undelivered in-order messages plus the reassembly
// buffer), floored at one packet. A true zero advertisement would need a
// persist-probe mechanism to reopen; the floor keeps the machine
// deadlock-free and bounds the overshoot to one packet per round trip.
func (c *Conn) awnd() int {
	a := c.ep.cfg.RecvWindow - len(c.recvQ) - len(c.ooo)
	if a < 1 {
		return 1
	}
	return a
}

// sackMask names the out-of-order packets held in the reassembly buffer,
// as bits relative to the cumulative ack: bit i set means "I already hold
// recvNext+1+i". The two words cover sackSpan sequence numbers, which is
// the whole default receive window.
func (c *Conn) sackMask() (lo, hi ether.Word) {
	var m [2]ether.Word
	for _, seq := range c.oooSeq {
		d := seq - c.recvNext
		if d == 0 || d > sackSpan {
			continue
		}
		bit := int(d - 1)
		m[bit/16] |= 1 << (bit % 16)
	}
	return m[0], m[1]
}

// rto is the current base retransmission timeout: Jacobson's srtt + 4·rttvar
// once samples flow, the configured initial value before, clamped to
// [MinRTO, MaxRTO] always.
func (c *Conn) rto() time.Duration {
	r := c.ep.cfg.RTO
	if c.rttValid {
		r = c.srtt + 4*c.rttvar
	}
	if r < c.ep.cfg.MinRTO {
		r = c.ep.cfg.MinRTO
	}
	if r > c.ep.cfg.MaxRTO {
		r = c.ep.cfg.MaxRTO
	}
	return r
}

// rtoAfter applies a packet's exponential backoff to the base timeout,
// still capped at MaxRTO.
func (c *Conn) rtoAfter(backoff int) time.Duration {
	r := c.rto() * time.Duration(backoff)
	if r > c.ep.cfg.MaxRTO {
		r = c.ep.cfg.MaxRTO
	}
	return r
}

// updateRTT feeds one clean sample to the Jacobson estimator (integer
// arithmetic on simulated nanoseconds: srtt += err/8, rttvar += (|err| -
// rttvar)/4 — deterministic, no floats).
func (c *Conn) updateRTT(sample time.Duration) {
	if !c.rttValid {
		c.srtt = sample
		c.rttvar = sample / 2
		c.rttValid = true
	} else {
		err := sample - c.srtt
		c.srtt += err / 8
		if err < 0 {
			err = -err
		}
		c.rttvar += (err - c.rttvar) / 4
	}
	c.ep.rec().Observe("pup.srtt.ms", float64(c.srtt)/1e6)
}

// setCwnd moves the congestion window, recording the trajectory.
func (c *Conn) setCwnd(w int) {
	if w < 1 {
		w = 1
	}
	if w > c.ep.cfg.Window {
		w = c.ep.cfg.Window
	}
	if w == c.cwnd {
		return
	}
	c.cwnd = w
	c.ep.rec().Observe("pup.cwnd", float64(w))
}

// grow opens the congestion window for acked packets: +1 per ack in slow
// start, +1 per full window of acks in congestion avoidance (the caCredit
// accumulator keeps it integer and deterministic).
func (c *Conn) grow(acked int) {
	for i := 0; i < acked; i++ {
		if c.cwnd < c.ssthresh {
			c.setCwnd(c.cwnd + 1)
			continue
		}
		c.caCredit++
		if c.caCredit >= c.cwnd {
			c.caCredit -= c.cwnd
			c.setCwnd(c.cwnd + 1)
		}
	}
}

// halve is the multiplicative decrease on loss detected by dup acks:
// ssthresh and cwnd drop to half the flight size (floor 2 — one packet
// must always fly or the ack clock stops).
func (c *Conn) halve() {
	half := len(c.sendQ) / 2
	if half < 2 {
		half = 2
	}
	c.ssthresh = half
	c.caCredit = 0
	c.setCwnd(half)
}

// transmit puts one window entry on the wire and arms its timer. The
// entry's own captured flow goes out — not the conn's current one — so a
// retransmit fired after the conn moved on still names the request that
// queued it.
func (c *Conn) transmit(op *outPacket, rexmit bool) error {
	if err := c.ep.sendPacket(c, TypeData, op.seq, op.flow, op.data); err != nil {
		return err
	}
	rec := c.ep.rec()
	if rexmit {
		op.rexmits++
		rec.Add("pup.retransmit", 1)
		rec.Add("pup.retransmit.words", int64(len(op.data)))
	} else {
		rec.Add("pup.data.send", 1)
		rec.Add("pup.data.words", int64(len(op.data)))
	}
	now := c.ep.clock.Now()
	op.sentAt = now
	op.deadline = now + c.rtoAfter(op.backoff)
	return nil
}

// sendAck emits a bare ack carrying the full ack state (cumulative ack,
// advertised window, SACK mask), echoing the flow that provoked it.
func (c *Conn) sendAck(flow uint16) error {
	c.ep.rec().Add("pup.ack.sent", 1)
	return c.ep.sendPacket(c, TypeAck, 0, flow, nil)
}

// sendCtrl transmits (or retransmits) the pending control packet.
func (c *Conn) sendCtrl(kind ether.Word) error {
	if c.ctrl.kind != kind {
		c.ctrl = ctrlState{kind: kind, rto: c.rto()}
	}
	if err := c.ep.sendPacket(c, kind, 0, c.flow, nil); err != nil {
		return err
	}
	c.ctrl.deadline = c.ep.clock.Now() + c.ctrl.rto
	return nil
}

// handleData processes an inbound data packet (its piggybacked ack state
// has already gone through handleAckInfo). The next expected sequence is
// delivered and may drain the reassembly buffer behind it; anything else
// within the window is buffered out of order. Duplicates, reordering and
// hole fills ack immediately — that is the news the sender's fast-
// retransmit logic runs on; plain in-order progress is acked lazily
// (every AckEvery packets or after AckDelay, whichever first).
func (c *Conn) handleData(seq, flow uint16, data []ether.Word) error {
	rec := c.ep.rec()
	switch {
	case seq == c.recvNext:
		c.recvQ = append(c.recvQ, inMsg{flow: flow, data: append([]ether.Word(nil), data...)})
		c.recvNext++
		delivered := 1
		for len(c.oooSeq) > 0 && c.oooSeq[0] == c.recvNext {
			c.recvQ = append(c.recvQ, c.ooo[0])
			c.ooo = c.ooo[1:]
			c.oooSeq = c.oooSeq[1:]
			c.recvNext++
			delivered++
		}
		rec.Add("pup.data.recv", int64(delivered))
		c.ackPending += delivered
		c.ackFlow = flow
		if delivered > 1 || c.ackPending >= c.ep.cfg.AckEvery {
			// A hole just closed (the retransmitter must stand down) or
			// enough progress accumulated: say so now.
			return c.sendAck(flow)
		}
		if !c.ackArmed {
			c.ackArmed = true
			c.ackDue = c.ep.clock.Now() + c.ep.cfg.AckDelay
		}
		return nil
	case seqLess(seq, c.recvNext):
		// Old news: our ack was lost. Re-ack immediately.
		rec.Add("pup.dup.data", 1)
		return c.sendAck(flow)
	default:
		// A hole opened (or a duplicate overtaker arrived). Buffer what
		// fits and ack immediately — the SACK mask in that ack is what
		// turns the sender's timers into surgical retransmissions.
		d := seq - c.recvNext
		if int(d) > sackSpan || len(c.ooo) >= c.ep.cfg.RecvWindow {
			rec.Add("pup.window.drop", 1)
			return c.sendAck(flow)
		}
		pos := len(c.oooSeq)
		dup := false
		for i, have := range c.oooSeq {
			hd := have - c.recvNext
			if hd == d {
				dup = true
				break
			}
			if hd > d {
				pos = i
				break
			}
		}
		if dup {
			rec.Add("pup.dup.data", 1)
		} else {
			c.ooo = append(c.ooo, inMsg{})
			copy(c.ooo[pos+1:], c.ooo[pos:])
			c.ooo[pos] = inMsg{flow: flow, data: append([]ether.Word(nil), data...)}
			c.oooSeq = append(c.oooSeq, 0)
			copy(c.oooSeq[pos+1:], c.oooSeq[pos:])
			c.oooSeq[pos] = seq
			rec.Add("pup.ooo.buffered", 1)
		}
		return c.sendAck(flow)
	}
}

// handleAckInfo applies the ack state every inbound packet carries:
// cumulative ack, advertised window, SACK mask. Cumulative progress pops
// the window front, feeds the RTT estimator (cleanest popped sample, per
// Karn), grows cwnd and forgives retries; SACK marks survivors that need
// no retransmission; duplicate acks count toward fast retransmit.
func (c *Conn) handleAckInfo(ack uint16, awnd int, sackLo, sackHi ether.Word) error {
	prevAwnd := c.peerAwnd
	c.peerAwnd = awnd
	now := c.ep.clock.Now()

	popped := 0
	sample := time.Duration(-1)
	for len(c.sendQ) > 0 && seqLess(c.sendQ[0].seq, ack) {
		op := c.sendQ[0]
		if op.rexmits == 0 {
			sample = now - op.sentAt
		}
		c.sendQ = c.sendQ[1:]
		popped++
	}

	// Mark SACKed survivors: bit i covers ack+1+i.
	mask := [2]ether.Word{sackLo, sackHi}
	newlySacked := 0
	for i := range c.sendQ {
		d := c.sendQ[i].seq - ack
		if d == 0 || d > sackSpan || c.sendQ[i].sacked {
			continue
		}
		bit := int(d - 1)
		if mask[bit/16]&(1<<(bit%16)) != 0 {
			c.sendQ[i].sacked = true
			newlySacked++
		}
	}

	if popped > 0 {
		if sample >= 0 {
			c.updateRTT(sample)
		}
		c.lastAck = ack
		c.dupAcks = 0
		// The window front is by definition the packet the peer is
		// missing; a stale SACK can never legitimately cover it.
		if len(c.sendQ) > 0 && c.sendQ[0].seq == ack {
			c.sendQ[0].sacked = false
		}
		c.grow(popped)
		// The peer is alive and draining: restart the surviving timers
		// and forgive accumulated retries. The retry cap measures
		// consecutive silence (a dead peer), not congestion.
		for i := range c.sendQ {
			c.sendQ[i].retries = 0
			c.sendQ[i].backoff = 1
			if !c.sendQ[i].sacked {
				c.sendQ[i].deadline = now + c.rto()
			}
		}
		if c.recovering {
			if !seqLess(ack, c.recoverSeq) {
				// The whole loss window is accounted for.
				c.recovering = false
				for i := range c.sendQ {
					c.sendQ[i].fastLoss = false
				}
			} else if len(c.sendQ) > 0 && !c.sendQ[0].sacked && !c.sendQ[0].fastLoss {
				// Partial ack: the retransmission landed but exposed the
				// next hole. Resend it now instead of waiting out a timer
				// (NewReno's partial-ack rule, with SACK precision).
				c.sendQ[0].fastLoss = true
				c.ep.rec().Add("pup.retransmit.fast", 1)
				return c.transmit(&c.sendQ[0], true)
			}
		}
		return nil
	}

	if len(c.sendQ) == 0 {
		return nil
	}
	// No progress. A pure window update (advertisement moved, nothing new
	// SACKed) is not evidence of loss; anything else repeating the same
	// cumulative ack is a duplicate ack — the receiver is seeing packets
	// beyond a hole.
	if ack != c.lastAck || (newlySacked == 0 && awnd != prevAwnd) {
		return nil
	}
	c.dupAcks++
	c.ep.rec().Add("pup.dup.ack", 1)
	if c.dupAcks == dupAckThreshold && !c.recovering {
		// Fast retransmit: the first unsacked packet is the hole.
		c.halve()
		c.recovering = true
		c.recoverSeq = c.sendSeq
		for i := range c.sendQ {
			if c.sendQ[i].sacked {
				continue
			}
			c.sendQ[i].fastLoss = true
			c.ep.rec().Add("pup.retransmit.fast", 1)
			return c.transmit(&c.sendQ[i], true)
		}
		return nil
	}
	if c.dupAcks > dupAckThreshold && c.recovering {
		// Each further dup ack may expose one more hole: the lowest
		// unsacked, not-yet-resent packet with at least a dup-ack-
		// threshold of SACKed packets above it is provably lost, not
		// merely reordered.
		above := 0
		candidate := -1
		for i := len(c.sendQ) - 1; i >= 0; i-- {
			if c.sendQ[i].sacked {
				above++
				continue
			}
			if above >= dupAckThreshold && !c.sendQ[i].fastLoss {
				candidate = i
			}
		}
		if candidate >= 0 {
			c.sendQ[candidate].fastLoss = true
			c.ep.rec().Add("pup.retransmit.fast", 1)
			return c.transmit(&c.sendQ[candidate], true)
		}
	}
	return nil
}

// fail kills the connection with a terminal error.
func (c *Conn) fail(err error) {
	c.err = err
	c.state = StateClosed
	c.ep.rec().Add("pup.fail", 1)
}

// tick fires due timers: the delayed ack, control retransmissions, and the
// per-packet retransmission timeouts. It reports whether it did work and
// whether timers remain pending (so the endpoint knows to keep simulated
// time flowing).
func (c *Conn) tick(now time.Duration) (worked, waiting bool, err error) {
	if c.state == StateClosed {
		return false, false, nil
	}
	// Launch the close handshake once the window has flushed.
	if c.state == StateClosing && len(c.sendQ) == 0 && c.ctrl.kind == 0 {
		if err := c.sendCtrl(TypeClose); err != nil {
			return true, true, err
		}
		worked = true
	}
	if c.ctrl.kind != 0 {
		waiting = true
		if now >= c.ctrl.deadline {
			if c.ctrl.retries >= c.ep.cfg.MaxRetries {
				c.fail(ErrRetriesExhausted)
				return worked, false, nil
			}
			c.ctrl.retries++
			c.ctrl.rto = backoff(c.ctrl.rto, c.ep.cfg.MaxRTO)
			if err := c.sendCtrl(c.ctrl.kind); err != nil {
				return true, true, err
			}
			c.ep.rec().Add("pup.retransmit", 1)
			worked = true
		}
	}
	if c.ackArmed {
		waiting = true
		if now >= c.ackDue {
			c.ep.rec().Add("pup.ack.delayed", 1)
			if err := c.sendAck(c.ackFlow); err != nil {
				return true, true, err
			}
			worked = true
		}
	}
	cut := false
	for i := range c.sendQ {
		if c.sendQ[i].sacked {
			continue
		}
		waiting = true
		if now < c.sendQ[i].deadline {
			continue
		}
		if c.sendQ[i].retries >= c.ep.cfg.MaxRetries {
			c.fail(ErrRetriesExhausted)
			return worked, false, nil
		}
		if !cut {
			// A timeout means the ack clock stopped entirely: collapse to
			// slow start (once per tick, however many timers fired).
			cut = true
			half := len(c.sendQ) / 2
			if half < 2 {
				half = 2
			}
			c.ssthresh = half
			c.caCredit = 0
			c.setCwnd(1)
			c.recovering = false
			for j := range c.sendQ {
				c.sendQ[j].fastLoss = false
			}
		}
		c.sendQ[i].retries++
		// The multiplier saturates: rtoAfter clamps to MaxRTO anyway, and
		// letting it double without bound overflows the rto()*backoff
		// product on long retry ladders, turning the deadline negative and
		// the timeout into a busy loop.
		if c.sendQ[i].backoff < 1<<16 {
			c.sendQ[i].backoff *= 2
		}
		c.ep.rec().Add("pup.retransmit.rto", 1)
		if err := c.transmit(&c.sendQ[i], true); err != nil {
			return true, true, err
		}
		worked = true
	}
	return worked, waiting, nil
}

// nextDeadline reports the earliest pending timer on the connection — the
// same three sources tick fires on: control retransmission, the delayed
// ack, and unsacked data retransmissions. An event-driven scheduler uses it
// (via Clock.RequestWake) to sleep the machine until something is actually
// due instead of spinning idle polls toward it.
func (c *Conn) nextDeadline() (time.Duration, bool) {
	if c.state == StateClosed {
		return 0, false
	}
	var best time.Duration
	ok := false
	take := func(d time.Duration) {
		if !ok || d < best {
			best, ok = d, true
		}
	}
	if c.ctrl.kind != 0 {
		take(c.ctrl.deadline)
	}
	if c.ackArmed {
		take(c.ackDue)
	}
	for i := range c.sendQ {
		if !c.sendQ[i].sacked {
			take(c.sendQ[i].deadline)
		}
	}
	return best, ok
}

// backoff doubles an RTO up to the cap.
func backoff(rto, maxRTO time.Duration) time.Duration {
	rto *= 2
	if rto > maxRTO {
		rto = maxRTO
	}
	return rto
}
