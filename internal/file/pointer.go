package file

import (
	"fmt"

	"altoos/internal/disk"
)

// BytePointer is the §3.6 extension of a hint: "such a hint can be expanded
// to name a particular byte within the file system, simply by augmenting a
// full name with a byte position within the page." Programs store these in
// their state files to reach a specific datum — an index entry, a document
// position — in one disk access, with the usual guarantee: a stale pointer
// fails a label check, it never reads the wrong byte.
type BytePointer struct {
	FN   FN        // the file's full name (absolute + leader hint)
	PN   disk.Word // page number (absolute)
	Addr disk.VDA  // hint: the page's disk address
	Off  int       // byte offset within the page (absolute position)
}

// Pos returns the pointer's absolute byte position within the file.
func (bp BytePointer) Pos() int {
	return (int(bp.PN)-1)*disk.PageBytes + bp.Off
}

// String implements fmt.Stringer.
func (bp BytePointer) String() string {
	return fmt.Sprintf("%v:(%d,%d)@%d", bp.FN.FV, bp.PN, bp.Off, bp.Addr)
}

// PointerTo builds a byte pointer for an absolute file position, resolving
// the page address through the handle (and its ladder if needed).
func (f *File) PointerTo(pos int) (BytePointer, error) {
	if pos < 0 || pos >= f.Size() {
		return BytePointer{}, fmt.Errorf("%w: position %d of %d", ErrBadArg, pos, f.Size())
	}
	//altovet:allow wordwidth pos < Size() and page numbers fit a Word on any disk the geometry admits
	pn := disk.Word(pos/disk.PageBytes + 1)
	a, err := f.PageAddr(pn)
	if err != nil {
		return BytePointer{}, err
	}
	return BytePointer{FN: f.fn, PN: pn, Addr: a, Off: pos % disk.PageBytes}, nil
}

// Deref reads the bytes at the pointer (up to n, bounded by the page's
// valid length) in a single guarded access when the hint holds, climbing
// the ladder when it doesn't. It returns the bytes and the (possibly
// refreshed) pointer for re-saving.
func Deref(fs *FS, bp BytePointer, n int) ([]byte, BytePointer, error) {
	if bp.Off < 0 || bp.Off >= disk.PageBytes || n <= 0 {
		return nil, bp, fmt.Errorf("%w: deref %v n=%d", ErrBadArg, bp, n)
	}
	f, err := fs.Open(bp.FN)
	if err != nil {
		return nil, bp, err
	}
	f.SetHint(bp.PN, bp.Addr) // the whole point: one access when it is right
	var buf [disk.PageWords]disk.Word
	length, err := f.ReadPage(bp.PN, &buf)
	if err != nil {
		return nil, bp, err
	}
	if bp.Off >= length {
		return nil, bp, fmt.Errorf("%w: pointer beyond page length %d", ErrBadArg, length)
	}
	if bp.Off+n > length {
		n = length - bp.Off
	}
	out := make([]byte, n)
	for i := range out {
		w := buf[(bp.Off+i)/2]
		if (bp.Off+i)%2 == 0 {
			out[i] = byte(w >> 8)
		} else {
			out[i] = byte(w)
		}
	}
	fresh := bp
	fresh.FN = f.FN()
	if a, ok := f.Hint(bp.PN); ok {
		fresh.Addr = a
	}
	return out, fresh, nil
}
