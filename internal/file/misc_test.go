package file

import (
	"errors"
	"strings"
	"testing"

	"altoos/internal/disk"
)

func TestRenameUpdatesLeaderName(t *testing.T) {
	fs := newFS(t)
	f, err := fs.Create("before.dat")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Rename("after.dat"); err != nil {
		t.Fatal(err)
	}
	g, err := fs.Open(f.FN())
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != "after.dat" {
		t.Fatalf("leader name %q", g.Name())
	}
	long := strings.Repeat("x", MaxLeaderName+1)
	if err := f.Rename(long); !errors.Is(err, ErrBadArg) {
		t.Fatalf("over-long rename: %v", err)
	}
}

func TestCreateDirectoryFileHasDirFID(t *testing.T) {
	fs := newFS(t)
	f, err := fs.CreateDirectoryFile("sub.")
	if err != nil {
		t.Fatal(err)
	}
	if !f.FN().FV.FID.IsDirectory() {
		t.Fatal("directory file without directory FID")
	}
}

func TestCreateBootFilePlacesPage1(t *testing.T) {
	fs := newFS(t)
	f, err := fs.CreateBootFile("SysBoot.")
	if err != nil {
		t.Fatal(err)
	}
	a, err := f.PageAddr(1)
	if err != nil {
		t.Fatal(err)
	}
	if a != BootVDA {
		t.Fatalf("boot page at %d", a)
	}
	// A second boot file cannot claim the occupied boot sector.
	if _, err := fs.CreateBootFile("SysBoot2."); err == nil {
		t.Fatal("second boot file claimed the boot sector")
	}
}

func TestCreateWithFVRejectsVersionZero(t *testing.T) {
	fs := newFS(t)
	if _, err := fs.CreateWithFV(disk.FV{FID: 0x500}, "x", disk.NilVDA); !errors.Is(err, ErrBadArg) {
		t.Fatalf("version 0 accepted: %v", err)
	}
}

func TestFlushAndRemountKeepsRover(t *testing.T) {
	fs := newFS(t)
	fs.SetRover(2000)
	if err := fs.Flush(); err != nil {
		t.Fatal(err)
	}
	fs2, err := Mount(fs.Device())
	if err != nil {
		t.Fatal(err)
	}
	// The rover is in-core only; what matters is the map round-trips.
	if fs2.FreeCount() != fs.FreeCount() {
		t.Fatalf("free counts diverge: %d vs %d", fs2.FreeCount(), fs.FreeCount())
	}
}

func TestDescriptorPages(t *testing.T) {
	if n := DescriptorPages(disk.Diablo31()); n < 2 {
		t.Fatalf("Diablo descriptor needs %d pages", n)
	}
	if DescriptorPages(disk.Trident()) <= DescriptorPages(disk.Diablo31()) {
		t.Fatal("bigger disk must need a bigger map")
	}
}

func TestStringers(t *testing.T) {
	fn := FN{FV: disk.FV{FID: 5, Version: 1}, Leader: 9}
	if fn.String() == "" {
		t.Fatal("FN.String empty")
	}
	bp := BytePointer{FN: fn, PN: 1, Addr: 10, Off: 3}
	if !strings.Contains(bp.String(), "@10") {
		t.Fatalf("BytePointer.String: %q", bp.String())
	}
}

func TestSetRootDirAndDescriptorFN(t *testing.T) {
	fs := newFS(t)
	orig := fs.RootDir()
	moved := orig
	moved.Leader = 77
	fs.SetRootDir(moved)
	if fs.RootDir().Leader != 77 {
		t.Fatal("SetRootDir did not take")
	}
	dfn := fs.DescriptorFN()
	dfn.Leader = 88
	fs.SetDescriptorFN(dfn)
	if fs.DescriptorFN().Leader != 88 {
		t.Fatal("SetDescriptorFN did not take")
	}
}

func TestNearlyFullDiskBehaviour(t *testing.T) {
	// Fill a tiny disk almost completely; creation fails cleanly with
	// ErrDiskFull, deleting something makes room again, and nothing is
	// corrupted along the way.
	g := disk.Geometry{
		Name: "tiny", Cylinders: 3, Heads: 2, SectorsPerTrack: 6,
		RevTime: disk.Diablo31().RevTime, SeekSettle: disk.Diablo31().SeekSettle,
		SeekPerCyl: disk.Diablo31().SeekPerCyl,
	}
	d, err := disk.NewDrive(g, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := Format(d)
	if err != nil {
		t.Fatal(err)
	}
	var files []*File
	for {
		f, err := fs.Create("filler")
		if err != nil {
			if !errors.Is(err, ErrDiskFull) {
				t.Fatalf("unexpected failure: %v", err)
			}
			break
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatal("nothing fit")
	}
	// Every surviving file is intact.
	var buf [disk.PageWords]disk.Word
	for _, f := range files {
		if _, err := f.ReadPage(1, &buf); err != nil {
			t.Fatalf("file damaged by exhaustion: %v", err)
		}
	}
	// Deleting one makes room for one more.
	if err := files[0].Delete(); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create("afterwards"); err != nil {
		t.Fatalf("no room after delete: %v", err)
	}
}

func TestGrowthFailsCleanlyWhenFull(t *testing.T) {
	g := disk.Geometry{
		Name: "tiny2", Cylinders: 3, Heads: 2, SectorsPerTrack: 6,
		RevTime: disk.Diablo31().RevTime, SeekSettle: disk.Diablo31().SeekSettle,
		SeekPerCyl: disk.Diablo31().SeekPerCyl,
	}
	d, err := disk.NewDrive(g, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := Format(d)
	if err != nil {
		t.Fatal(err)
	}
	f, err := fs.Create("grower")
	if err != nil {
		t.Fatal(err)
	}
	var page [disk.PageWords]disk.Word
	pn := disk.Word(1)
	for {
		if err := f.WritePage(pn, &page, disk.PageBytes); err != nil {
			if !errors.Is(err, ErrDiskFull) {
				t.Fatalf("growth failed with %v", err)
			}
			break
		}
		pn++
	}
	// The file is still well-formed and fully readable after the failure.
	lastPN, lastLen := f.LastPage()
	if lastLen >= disk.PageBytes {
		t.Fatal("invariant broken at exhaustion")
	}
	var buf [disk.PageWords]disk.Word
	for p := disk.Word(1); p <= lastPN; p++ {
		if _, err := f.ReadPage(p, &buf); err != nil {
			t.Fatalf("page %d unreadable after exhaustion: %v", p, err)
		}
	}
}
