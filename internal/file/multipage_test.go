package file

import (
	"errors"
	"testing"

	"altoos/internal/disk"
)

// grow extends f with n full interior data pages (plus the empty tail
// WritePage maintains), page p holding pageOf(seed+p).
func grow(t *testing.T, f *File, n int, seed disk.Word) {
	t.Helper()
	for p := 1; p <= n; p++ {
		v := pageOf(seed + disk.Word(p))
		if err := f.WritePage(disk.Word(p), &v, disk.PageBytes); err != nil {
			t.Fatalf("growing page %d: %v", p, err)
		}
	}
}

func TestMultiPageRoundTrip(t *testing.T) {
	fs := newFS(t)
	f, err := fs.Create("bulk.dat")
	if err != nil {
		t.Fatal(err)
	}
	grow(t, f, 12, 0x40)

	// Overwrite interior pages 3..9 as one chained transfer, read them back
	// the same way, and check a single-page reader agrees.
	out := make([][disk.PageWords]disk.Word, 7)
	for i := range out {
		out[i] = pageOf(disk.Word(0x700 + i))
	}
	if err := f.WritePages(3, out); err != nil {
		t.Fatalf("WritePages: %v", err)
	}
	in := make([][disk.PageWords]disk.Word, 7)
	if err := f.ReadPages(3, in); err != nil {
		t.Fatalf("ReadPages: %v", err)
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("page %d round-trip mismatch", 3+i)
		}
	}
	var single [disk.PageWords]disk.Word
	for i := 0; i < 7; i++ {
		if _, err := f.ReadPage(disk.Word(3+i), &single); err != nil {
			t.Fatal(err)
		}
		if single != out[i] {
			t.Fatalf("ReadPage(%d) disagrees with chained write", 3+i)
		}
	}
}

func TestMultiPageRejectsNonInterior(t *testing.T) {
	fs := newFS(t)
	f, err := fs.Create("edge.dat")
	if err != nil {
		t.Fatal(err)
	}
	grow(t, f, 4, 0x90)

	pages := make([][disk.PageWords]disk.Word, 2)
	if err := f.ReadPages(0, pages); !errors.Is(err, ErrBadArg) {
		t.Errorf("ReadPages(0): %v, want ErrBadArg (leader is not a data page)", err)
	}
	// Pages 4..5: page 5 is the (partial) last page, not interior.
	if err := f.ReadPages(4, pages); !errors.Is(err, ErrBadArg) {
		t.Errorf("ReadPages touching the tail: %v, want ErrBadArg", err)
	}
	if err := f.WritePages(4, pages); !errors.Is(err, ErrBadArg) {
		t.Errorf("WritePages touching the tail: %v, want ErrBadArg", err)
	}
	if err := f.ReadPages(1, nil); err != nil {
		t.Errorf("empty transfer: %v, want nil", err)
	}
}

func TestMultiPageSurvivesStaleHints(t *testing.T) {
	fs := newFS(t)
	f, err := fs.Create("hints.dat")
	if err != nil {
		t.Fatal(err)
	}
	grow(t, f, 8, 0x11)

	// Poison the handle's hints: point page 4's hint at page 6's sector and
	// page 5's at a free sector. The chained read must notice the label
	// mismatches, climb the ladder, and still return the right data.
	h4, ok4 := f.Hint(4)
	h6, ok6 := f.Hint(6)
	if !ok4 || !ok6 {
		t.Fatal("expected hints for freshly written pages")
	}
	f.SetHint(4, h6)
	f.SetHint(5, h4+100)

	in := make([][disk.PageWords]disk.Word, 6)
	if err := f.ReadPages(2, in); err != nil {
		t.Fatalf("ReadPages with stale hints: %v", err)
	}
	for i := range in {
		if want := pageOf(0x11 + disk.Word(2+i)); in[i] != want {
			t.Fatalf("page %d content wrong after hint recovery", 2+i)
		}
	}
}

func TestMultiPageChainCostsNoMoreThanSingles(t *testing.T) {
	run := func(chained bool) (elapsed int64) {
		fs := newFS(t)
		f, err := fs.Create("timing.dat")
		if err != nil {
			t.Fatal(err)
		}
		grow(t, f, 10, 0x33)
		clk := fs.Device().Clock()
		start := clk.Now()
		if chained {
			pages := make([][disk.PageWords]disk.Word, 8)
			if err := f.ReadPages(1, pages); err != nil {
				t.Fatal(err)
			}
		} else {
			var v [disk.PageWords]disk.Word
			for p := 1; p <= 8; p++ {
				if _, err := f.ReadPage(disk.Word(p), &v); err != nil {
					t.Fatal(err)
				}
			}
		}
		return int64(clk.Now() - start)
	}
	singles := run(false)
	chain := run(true)
	if chain > singles {
		t.Errorf("chained read of 8 pages took %d ns simulated, singles took %d; the chain must not be slower", chain, singles)
	}
}
