package file

import (
	"errors"
	"testing"
	"testing/quick"

	"altoos/internal/disk"
	"altoos/internal/sim"
)

func newFS(t *testing.T) *FS {
	t.Helper()
	d, err := disk.NewDrive(disk.Diablo31(), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := Format(d)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func pageOf(seed disk.Word) [disk.PageWords]disk.Word {
	var v [disk.PageWords]disk.Word
	for i := range v {
		v[i] = seed ^ disk.Word(i*7)
	}
	return v
}

func TestFormatAndMount(t *testing.T) {
	d, err := disk.NewDrive(disk.Diablo31(), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := Format(d)
	if err != nil {
		t.Fatal(err)
	}
	if fs.RootDir().Leader != SysDirLeaderVDA {
		t.Errorf("root dir leader at %d, want %d", fs.RootDir().Leader, SysDirLeaderVDA)
	}

	fs2, err := Mount(d)
	if err != nil {
		t.Fatalf("Mount after Format: %v", err)
	}
	if fs2.RootDir() != fs.RootDir() {
		t.Errorf("mounted root %v != formatted root %v", fs2.RootDir(), fs.RootDir())
	}
	if fs2.Descriptor().Shape.Cylinders != d.Geometry().Cylinders {
		t.Error("mounted shape differs")
	}
	if fs2.Descriptor().NextSerial != fs.Descriptor().NextSerial {
		t.Errorf("serial lost: %d vs %d", fs2.Descriptor().NextSerial, fs.Descriptor().NextSerial)
	}
}

func TestMountUnformattedFails(t *testing.T) {
	d, err := disk.NewDrive(disk.Diablo31(), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Mount(d); !errors.Is(err, ErrNoFS) {
		t.Fatalf("Mount of raw pack: got %v, want ErrNoFS", err)
	}
}

func TestCreateHasEmptyDataPage(t *testing.T) {
	fs := newFS(t)
	f, err := fs.Create("test.dat")
	if err != nil {
		t.Fatal(err)
	}
	pn, l := f.LastPage()
	if pn != 1 || l != 0 {
		t.Errorf("new file last page = (%d, %d), want (1, 0)", pn, l)
	}
	if f.Size() != 0 {
		t.Errorf("new file size = %d", f.Size())
	}
	if f.Name() != "test.dat" {
		t.Errorf("leader name = %q", f.Name())
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	fs := newFS(t)
	f, err := fs.Create("rt.dat")
	if err != nil {
		t.Fatal(err)
	}
	p1 := pageOf(0x1111)
	p2 := pageOf(0x2222)
	p3 := pageOf(0x3333)
	if err := f.WritePage(1, &p1, disk.PageBytes); err != nil {
		t.Fatal(err)
	}
	if err := f.WritePage(2, &p2, disk.PageBytes); err != nil {
		t.Fatal(err)
	}
	if err := f.WritePage(3, &p3, 100); err != nil {
		t.Fatal(err)
	}
	if got := f.Size(); got != 2*disk.PageBytes+100 {
		t.Errorf("size = %d, want %d", got, 2*disk.PageBytes+100)
	}

	var buf [disk.PageWords]disk.Word
	n, err := f.ReadPage(1, &buf)
	if err != nil || n != disk.PageBytes || buf != p1 {
		t.Fatalf("page 1: n=%d err=%v match=%v", n, err, buf == p1)
	}
	n, err = f.ReadPage(3, &buf)
	if err != nil || n != 100 {
		t.Fatalf("page 3: n=%d err=%v", n, err)
	}
	if buf != p3 {
		t.Fatal("page 3 data mismatch")
	}
}

func TestReopenByFullName(t *testing.T) {
	fs := newFS(t)
	f, err := fs.Create("persist.dat")
	if err != nil {
		t.Fatal(err)
	}
	p := pageOf(0xAAAA)
	if err := f.WritePage(1, &p, 200); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}

	g, err := fs.Open(f.FN())
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != "persist.dat" {
		t.Errorf("leader name = %q", g.Name())
	}
	var buf [disk.PageWords]disk.Word
	n, err := g.ReadPage(1, &buf)
	if err != nil || n != 200 || buf != p {
		t.Fatalf("reopened read: n=%d err=%v", n, err)
	}
}

func TestLastPageInvariant(t *testing.T) {
	// Every page but the last is full; the last has L < 512. Filling the
	// last page appends a fresh empty one.
	fs := newFS(t)
	f, err := fs.Create("inv.dat")
	if err != nil {
		t.Fatal(err)
	}
	p := pageOf(1)
	if err := f.WritePage(1, &p, disk.PageBytes); err != nil {
		t.Fatal(err)
	}
	pn, l := f.LastPage()
	if pn != 2 || l != 0 {
		t.Errorf("after full write, last = (%d, %d), want (2, 0)", pn, l)
	}
	// Interior pages must stay full.
	if err := f.WritePage(1, &p, 100); !errors.Is(err, ErrBadArg) {
		t.Errorf("partial interior write: got %v, want ErrBadArg", err)
	}
	// Writing beyond the end is rejected.
	if err := f.WritePage(5, &p, 100); !errors.Is(err, ErrBadArg) {
		t.Errorf("write past end: got %v, want ErrBadArg", err)
	}
	if _, err := f.ReadPage(7, &p); !errors.Is(err, ErrBadArg) {
		t.Errorf("read past end: got %v, want ErrBadArg", err)
	}
}

func TestTruncate(t *testing.T) {
	fs := newFS(t)
	f, err := fs.Create("tr.dat")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		p := pageOf(disk.Word(i))
		if err := f.WritePage(disk.Word(i), &p, disk.PageBytes); err != nil {
			t.Fatal(err)
		}
	}
	free0 := fs.FreeCount()
	if err := f.Truncate(2, 77); err != nil {
		t.Fatal(err)
	}
	pn, l := f.LastPage()
	if pn != 2 || l != 77 {
		t.Errorf("after truncate, last = (%d, %d)", pn, l)
	}
	if got := fs.FreeCount(); got != free0+4 {
		t.Errorf("free count %d, want %d (4 pages back)", got, free0+4)
	}
	var buf [disk.PageWords]disk.Word
	if n, err := f.ReadPage(2, &buf); err != nil || n != 77 {
		t.Fatalf("page 2 after truncate: n=%d err=%v", n, err)
	}
	want := pageOf(2)
	if buf != want {
		t.Error("truncate damaged surviving page")
	}
}

func TestDelete(t *testing.T) {
	fs := newFS(t)
	free0 := fs.FreeCount()
	f, err := fs.Create("del.dat")
	if err != nil {
		t.Fatal(err)
	}
	p := pageOf(9)
	for i := 1; i <= 3; i++ {
		if err := f.WritePage(disk.Word(i), &p, disk.PageBytes); err != nil {
			t.Fatal(err)
		}
	}
	fn := f.FN()
	if err := f.Delete(); err != nil {
		t.Fatal(err)
	}
	if got := fs.FreeCount(); got != free0 {
		t.Errorf("free count %d after delete, want %d", got, free0)
	}
	if _, err := fs.Open(fn); err == nil {
		t.Fatal("opened a deleted file")
	}
	if err := f.WritePage(1, &p, disk.PageBytes); !errors.Is(err, ErrBadArg) {
		t.Errorf("write to deleted handle: %v", err)
	}
}

func TestStaleLeaderHintRecoversViaLinks(t *testing.T) {
	// A full name with a wrong leader address must still work if recovery
	// can find the file. With no resolver installed, it must fail loudly —
	// never silently read the wrong page.
	fs := newFS(t)
	f, err := fs.Create("hint.dat")
	if err != nil {
		t.Fatal(err)
	}
	p := pageOf(0x55)
	if err := f.WritePage(1, &p, 300); err != nil {
		t.Fatal(err)
	}

	stale := f.FN()
	stale.Leader = 999 // wrong address
	if _, err := fs.Open(stale); err == nil {
		t.Fatal("opened with stale hint and no recovery installed")
	}

	// Install a resolver that knows the truth (standing in for the
	// directory layer) and retry.
	real := f.FN()
	fs.SetRecovery(Recovery{
		ResolveFV: func(fv disk.FV) (disk.VDA, error) {
			if fv == real.FV {
				return real.Leader, nil
			}
			return 0, ErrNotFound
		},
	})
	g, err := fs.Open(stale)
	if err != nil {
		t.Fatalf("open with resolver: %v", err)
	}
	var buf [disk.PageWords]disk.Word
	if n, err := g.ReadPage(1, &buf); err != nil || n != 300 || buf != p {
		t.Fatalf("read after recovery: n=%d err=%v", n, err)
	}
	if fs.Stats().FVResolves == 0 {
		t.Error("recovery not counted")
	}
}

func TestPlantedHintShortcutsAccess(t *testing.T) {
	fs := newFS(t)
	f, err := fs.Create("installed.dat")
	if err != nil {
		t.Fatal(err)
	}
	p := pageOf(3)
	for i := 1; i <= 10; i++ {
		if err := f.WritePage(disk.Word(i), &p, disk.PageBytes); err != nil {
			t.Fatal(err)
		}
	}
	addr, err := f.PageAddr(7)
	if err != nil {
		t.Fatal(err)
	}

	// A second handle with only the planted hint reads page 7 in one access.
	g, err := fs.Open(f.FN())
	if err != nil {
		t.Fatal(err)
	}
	g.ForgetHints()
	g.SetHint(7, addr)
	fs.ResetStats()
	var buf [disk.PageWords]disk.Word
	if _, err := g.ReadPage(7, &buf); err != nil {
		t.Fatal(err)
	}
	st := fs.Stats()
	if st.HintHits != 1 || st.LinkChases != 0 {
		t.Errorf("hinted access: hits=%d chases=%d, want 1/0", st.HintHits, st.LinkChases)
	}

	// A wrong hint is detected and cured by link-chasing, never wrong data.
	h, err := fs.Open(f.FN())
	if err != nil {
		t.Fatal(err)
	}
	h.ForgetHints()
	h.SetHint(7, addr+1) // lie
	if _, err := h.ReadPage(7, &buf); err != nil {
		t.Fatalf("read with wrong hint: %v", err)
	}
	if buf != p {
		t.Fatal("wrong hint produced wrong data")
	}
}

func TestConsecutiveAllocationPreferred(t *testing.T) {
	fs := newFS(t)
	f, err := fs.Create("seq.dat")
	if err != nil {
		t.Fatal(err)
	}
	p := pageOf(1)
	for i := 1; i <= 20; i++ {
		if err := f.WritePage(disk.Word(i), &p, disk.PageBytes); err != nil {
			t.Fatal(err)
		}
	}
	// On an empty disk the pages should be consecutive.
	a1, err := f.PageAddr(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 2; i <= 20; i++ {
		ai, err := f.PageAddr(disk.Word(i))
		if err != nil {
			t.Fatal(err)
		}
		if ai != a1+disk.VDA(i-1) {
			t.Fatalf("page %d at %d, want consecutive from %d", i, ai, a1)
		}
	}
	if !f.Leader().MaybeConsecutive {
		t.Error("consecutive flag lost")
	}
	// §3.6: a program may compute page j's address as a_i + (j - i) and rely
	// on the label check to tell it whether the guess was right.
	guess := a1 + 14
	lbl, err := disk.ReadLabel(fs.Device(), guess, f.FN().FV, 15)
	if err != nil {
		t.Fatalf("consecutive guess failed: %v", err)
	}
	if lbl.PageNum != 15 {
		t.Error("guessed page has wrong number")
	}
}

func TestAllocationMapIsOnlyAHint(t *testing.T) {
	// Lie in the map (mark a busy page free): allocation must catch it via
	// the label check, pay "a little extra one-time disk activity", and
	// succeed elsewhere.
	fs := newFS(t)
	f, err := fs.Create("a.dat")
	if err != nil {
		t.Fatal(err)
	}
	victim, err := f.PageAddr(1)
	if err != nil {
		t.Fatal(err)
	}
	fs.Descriptor().Free.SetFree(victim) // the lie
	fs.ResetStats()

	g, err := fs.Create("b.dat")
	if err != nil {
		t.Fatalf("create with lying map: %v", err)
	}
	// a.dat's page must be intact.
	var buf [disk.PageWords]disk.Word
	if _, err := f.ReadPage(1, &buf); err != nil {
		t.Fatalf("victim page damaged: %v", err)
	}
	for pn := disk.Word(0); pn <= 1; pn++ {
		a, err := g.PageAddr(pn)
		if err != nil {
			t.Fatal(err)
		}
		if a == victim {
			t.Fatal("allocator handed out a busy page")
		}
	}
}

func TestDiskFull(t *testing.T) {
	d, err := disk.NewDrive(disk.Geometry{
		Name: "tiny", Cylinders: 2, Heads: 2, SectorsPerTrack: 6,
		RevTime: disk.Diablo31().RevTime, SeekSettle: disk.Diablo31().SeekSettle,
		SeekPerCyl: disk.Diablo31().SeekPerCyl,
	}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := Format(d)
	if err != nil {
		t.Fatal(err)
	}
	var lastErr error
	for i := 0; i < 30; i++ {
		if _, lastErr = fs.Create("x"); lastErr != nil {
			break
		}
	}
	if !errors.Is(lastErr, ErrDiskFull) {
		t.Fatalf("got %v, want ErrDiskFull", lastErr)
	}
}

func TestLeaderDatesAdvance(t *testing.T) {
	fs := newFS(t)
	f, err := fs.Create("dates.dat")
	if err != nil {
		t.Fatal(err)
	}
	created := f.Leader().Created
	p := pageOf(1)
	if err := f.WritePage(1, &p, 10); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	g, err := fs.Open(f.FN())
	if err != nil {
		t.Fatal(err)
	}
	if g.Leader().Written <= created {
		t.Errorf("written date %v not after creation %v", g.Leader().Written, created)
	}
}

func TestLeaderRoundTripProperty(t *testing.T) {
	f := func(created, written, read uint32, rawName []byte, lastPN uint16, lastAddr uint16, consec bool) bool {
		if len(rawName) > MaxLeaderName {
			rawName = rawName[:MaxLeaderName]
		}
		l := Leader{
			Created:          wordsToTime(disk.Word(created>>16), disk.Word(created)),
			Written:          wordsToTime(disk.Word(written>>16), disk.Word(written)),
			Read:             wordsToTime(disk.Word(read>>16), disk.Word(read)),
			Name:             string(rawName),
			LastPN:           lastPN,
			LastAddr:         disk.VDA(lastAddr),
			MaybeConsecutive: consec,
		}
		var v [disk.PageWords]disk.Word
		if err := l.Encode(&v); err != nil {
			return false
		}
		got, err := DecodeLeader(&v)
		return err == nil && got == l
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDescriptorRoundTripProperty(t *testing.T) {
	f := func(serial uint32, rootFID uint32, rootVer, rootAddr uint16, busy []uint16) bool {
		g := disk.Diablo31()
		bm := NewBitMap(g.NSectors())
		for _, b := range busy {
			bm.SetBusy(disk.VDA(int(b) % g.NSectors()))
		}
		d := &Descriptor{
			Shape:      g,
			Pack:       1,
			NextSerial: serial,
			RootDir: FN{
				FV:     disk.FV{FID: disk.FID(rootFID), Version: rootVer},
				Leader: disk.VDA(rootAddr),
			},
			Free: bm,
		}
		got, err := DecodeDescriptor(d.EncodeWords())
		if err != nil {
			return false
		}
		if got.NextSerial != d.NextSerial || got.RootDir != d.RootDir || got.Pack != 1 {
			return false
		}
		for i := 0; i < g.NSectors(); i++ {
			if got.Free.Busy(disk.VDA(i)) != bm.Busy(disk.VDA(i)) {
				return false
			}
		}
		return got.Shape.Cylinders == g.Cylinders && got.Shape.RevTime == g.RevTime
	}
	cfg := &quick.Config{MaxCount: 20}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestDescriptorRejectsDamage(t *testing.T) {
	g := disk.Diablo31()
	d := &Descriptor{Shape: g, NextSerial: 1, Free: NewBitMap(g.NSectors())}
	w := d.EncodeWords()

	bad := append([]disk.Word(nil), w...)
	bad[0] = 0x1234
	if _, err := DecodeDescriptor(bad); !errors.Is(err, ErrDescriptor) {
		t.Error("accepted bad magic")
	}
	if _, err := DecodeDescriptor(w[:10]); !errors.Is(err, ErrDescriptor) {
		t.Error("accepted truncated descriptor")
	}
	trunc := append([]disk.Word(nil), w[:descFixed+3]...)
	if _, err := DecodeDescriptor(trunc); !errors.Is(err, ErrDescriptor) {
		t.Error("accepted truncated map")
	}
}

func TestBigFileAcrossCylinders(t *testing.T) {
	fs := newFS(t)
	f, err := fs.Create("big.dat")
	if err != nil {
		t.Fatal(err)
	}
	const pages = 100
	for i := 1; i <= pages; i++ {
		p := pageOf(disk.Word(i))
		if err := f.WritePage(disk.Word(i), &p, disk.PageBytes); err != nil {
			t.Fatalf("page %d: %v", i, err)
		}
	}
	// Re-open and read everything back, verifying content.
	g, err := fs.Open(f.FN())
	if err != nil {
		t.Fatal(err)
	}
	var buf [disk.PageWords]disk.Word
	for i := 1; i <= pages; i++ {
		if _, err := g.ReadPage(disk.Word(i), &buf); err != nil {
			t.Fatalf("read page %d: %v", i, err)
		}
		want := pageOf(disk.Word(i))
		if buf != want {
			t.Fatalf("page %d corrupted", i)
		}
	}
}

func TestRandomisedFileOperations(t *testing.T) {
	// Model-based test: random writes/truncates against an in-memory model.
	f := func(seed uint64) bool {
		r := sim.NewRand(seed)
		drv, err := disk.NewDrive(disk.Diablo31(), 1, nil)
		if err != nil {
			return false
		}
		fs, err := Format(drv)
		if err != nil {
			return false
		}
		fl, err := fs.Create("model.dat")
		if err != nil {
			return false
		}
		model := map[disk.Word][disk.PageWords]disk.Word{}
		modelLast, modelLen := disk.Word(1), 0
		for step := 0; step < 40; step++ {
			switch r.Intn(4) {
			case 0, 1: // write some page
				pn := disk.Word(1 + r.Intn(int(modelLast)))
				p := pageOf(r.Word())
				length := disk.PageBytes
				if pn == modelLast {
					length = r.Intn(disk.PageBytes + 1)
				}
				if err := fl.WritePage(pn, &p, length); err != nil {
					return false
				}
				model[pn] = p
				if pn == modelLast {
					if length == disk.PageBytes {
						modelLast++
						modelLen = 0
						model[modelLast] = [disk.PageWords]disk.Word{}
					} else {
						modelLen = length
					}
				}
			case 2: // truncate
				if modelLast > 1 {
					to := disk.Word(1 + r.Intn(int(modelLast)-1))
					ln := r.Intn(disk.PageBytes)
					if err := fl.Truncate(to, ln); err != nil {
						return false
					}
					for pn := to + 1; pn <= modelLast; pn++ {
						delete(model, pn)
					}
					modelLast, modelLen = to, ln
				}
			case 3: // verify a random page
				pn := disk.Word(1 + r.Intn(int(modelLast)))
				var buf [disk.PageWords]disk.Word
				n, err := fl.ReadPage(pn, &buf)
				if err != nil {
					return false
				}
				if pn == modelLast && n != modelLen {
					return false
				}
				want := model[pn]
				words := (n + 1) / 2
				for i := 0; i < words; i++ {
					if buf[i] != want[i] {
						return false
					}
				}
			}
		}
		lp, ll := fl.LastPage()
		return lp == modelLast && ll == modelLen
	}
	cfg := &quick.Config{MaxCount: 10}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
