package file

import (
	"errors"
	"testing"

	"altoos/internal/disk"
)

func pointerFixture(t *testing.T) (*FS, *File) {
	t.Helper()
	fs := newFS(t)
	f, err := fs.Create("ptr.dat")
	if err != nil {
		t.Fatal(err)
	}
	// Three pages of recognizable bytes: byte at absolute position p has
	// value p&0xFF.
	var v [disk.PageWords]disk.Word
	for pn := 1; pn <= 3; pn++ {
		for i := 0; i < disk.PageWords; i++ {
			pos := (pn-1)*disk.PageBytes + 2*i
			v[i] = disk.Word(pos&0xFF)<<8 | disk.Word((pos+1)&0xFF)
		}
		length := disk.PageBytes
		if pn == 3 {
			length = 100
		}
		if err := f.WritePage(disk.Word(pn), &v, length); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	return fs, f
}

func TestBytePointerRoundTrip(t *testing.T) {
	fs, f := pointerFixture(t)
	for _, pos := range []int{0, 1, 511, 512, 513, 1023, 1024 + 50} {
		bp, err := f.PointerTo(pos)
		if err != nil {
			t.Fatalf("PointerTo(%d): %v", pos, err)
		}
		if bp.Pos() != pos {
			t.Errorf("Pos() = %d, want %d", bp.Pos(), pos)
		}
		got, _, err := Deref(fs, bp, 1)
		if err != nil {
			t.Fatalf("Deref(%v): %v", bp, err)
		}
		if got[0] != byte(pos&0xFF) {
			t.Errorf("byte at %d = %#x, want %#x", pos, got[0], byte(pos&0xFF))
		}
	}
}

func TestBytePointerIsOneAccessWhenValid(t *testing.T) {
	fs, f := pointerFixture(t)
	bp, err := f.PointerTo(700)
	if err != nil {
		t.Fatal(err)
	}
	fs.ResetStats()
	if _, _, err := Deref(fs, bp, 4); err != nil {
		t.Fatal(err)
	}
	st := fs.Stats()
	if st.LinkChases != 0 || st.FVResolves != 0 {
		t.Errorf("valid pointer needed recovery: %+v", st)
	}
}

func TestBytePointerStaleHintRecovers(t *testing.T) {
	fs, f := pointerFixture(t)
	bp, err := f.PointerTo(700)
	if err != nil {
		t.Fatal(err)
	}
	bp.Addr = 4000 // lie about the page address; absolutes stay right
	got, fresh, err := Deref(fs, bp, 2)
	if err != nil {
		t.Fatalf("stale pointer not recovered: %v", err)
	}
	if got[0] != byte(700&0xFF) {
		t.Fatal("stale pointer produced wrong data")
	}
	if fresh.Addr == 4000 {
		t.Error("refreshed pointer still carries the lie")
	}
	// Second deref with the refreshed pointer is clean.
	fs.ResetStats()
	if _, _, err := Deref(fs, fresh, 2); err != nil {
		t.Fatal(err)
	}
	if fs.Stats().LinkChases != 0 {
		t.Error("refreshed pointer still chased links")
	}
}

func TestBytePointerBounds(t *testing.T) {
	fs, f := pointerFixture(t)
	if _, err := f.PointerTo(-1); !errors.Is(err, ErrBadArg) {
		t.Error("negative position accepted")
	}
	if _, err := f.PointerTo(f.Size()); !errors.Is(err, ErrBadArg) {
		t.Error("position at EOF accepted")
	}
	// Pointer into the unwritten tail of the last page.
	bp, err := f.PointerTo(2*disk.PageBytes + 99)
	if err != nil {
		t.Fatal(err)
	}
	bp.Off = 200 // beyond the page's 100 valid bytes
	if _, _, err := Deref(fs, bp, 1); !errors.Is(err, ErrBadArg) {
		t.Errorf("deref beyond page length: %v", err)
	}
	// Reads are clipped at the page's valid length.
	bp2, _ := f.PointerTo(2*disk.PageBytes + 95)
	got, _, err := Deref(fs, bp2, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Errorf("clipped read returned %d bytes, want 5", len(got))
	}
}
