package file

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"altoos/internal/disk"
)

// Errors returned by the file layer.
var (
	// ErrDiskFull reports that no free page could be allocated.
	ErrDiskFull = errors.New("file: disk full")
	// ErrNotFound reports that a page or file could not be located even
	// after climbing the recovery ladder.
	ErrNotFound = errors.New("file: not found")
	// ErrBadArg reports an argument outside the file's structure.
	ErrBadArg = errors.New("file: bad argument")
	// ErrNoFS reports a device with no recognizable file system.
	ErrNoFS = errors.New("file: no file system on device")
)

// Recovery holds the upper levels of the hint ladder (§3.6). The file layer
// itself only follows hints and links; when those fail it calls out so that
// the directory layer and the Scavenger — which live above it — can help.
// Either function may be nil.
type Recovery struct {
	// ResolveFV looks up a file identifier in the directories and returns a
	// fresh leader address (§3.6 step: "look up the FV in a directory").
	ResolveFV func(fv disk.FV) (disk.VDA, error)
	// Scavenge reconstructs the entire file system, after which lookups are
	// retried (§3.6 last step).
	Scavenge func() error
}

// Stats counts file-system level activity, including how often hints failed
// and what recovered them — the raw material of experiment E5.
type Stats struct {
	Allocs       int64
	AllocRetries int64 // allocation-map lies caught by label checks
	Frees        int64
	HintHits     int64 // page found directly through a hint address
	LinkChases   int64 // link-following steps
	FVResolves   int64 // recoveries via directory FID lookup
	Scavenges    int64 // recoveries via the Scavenger
}

// FS is a mounted file system on a device.
type FS struct {
	mu       sync.Mutex
	dev      disk.Device
	desc     *Descriptor
	descFN   FN
	rover    disk.VDA
	recovery Recovery
	stats    Stats
}

// Device returns the device the file system is mounted on.
func (fs *FS) Device() disk.Device { return fs.dev }

// Descriptor returns the in-core disk descriptor. Callers must treat the
// allocation map as the hint it is.
func (fs *FS) Descriptor() *Descriptor { return fs.desc }

// Stats returns a snapshot of the accumulated counters.
func (fs *FS) Stats() Stats {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.stats
}

// ResetStats clears the counters.
func (fs *FS) ResetStats() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.stats = Stats{}
}

// SetRecovery installs the upper hint-ladder levels.
func (fs *FS) SetRecovery(r Recovery) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.recovery = r
}

// RootDir returns the (hint) full name of the root directory.
func (fs *FS) RootDir() FN {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.desc.RootDir
}

// SetRootDir records the root directory's full name in the descriptor.
func (fs *FS) SetRootDir(fn FN) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.desc.RootDir = fn
}

// now returns the current simulated time.
func (fs *FS) now() time.Duration { return fs.dev.Clock().Now() }

// Format writes a fresh, empty file system on the device: a reserved boot
// page at BootVDA, the root directory file (leader at SysDirLeaderVDA, still
// empty — the directory package fills it in), and the disk descriptor file
// (leader at DescLeaderVDA) holding the shape, the allocation map and the
// root directory's name.
func Format(dev disk.Device) (*FS, error) {
	g := dev.Geometry()
	if err := g.Validate(); err != nil {
		return nil, err
	}
	fs := &FS{
		dev: dev,
		desc: &Descriptor{
			Shape:      g,
			Pack:       dev.Pack(),
			NextSerial: uint32(disk.FirstUserFID),
			Free:       NewBitMap(g.NSectors()),
		},
		rover: DescLeaderVDA + 1,
	}
	// The boot page is reserved for the boot file the swap package creates.
	// The standard leader addresses are reserved too, so ordinary allocation
	// cannot take them before createAt claims them.
	fs.desc.Free.SetBusy(BootVDA)
	fs.desc.Free.SetBusy(SysDirLeaderVDA)
	fs.desc.Free.SetBusy(DescLeaderVDA)

	// Root directory: leader at the standard address plus one empty page.
	root, err := fs.createAt(disk.FV{FID: disk.SysDirFID, Version: 1}, "SysDir.", SysDirLeaderVDA)
	if err != nil {
		return nil, fmt.Errorf("file: formatting root directory: %w", err)
	}
	fs.desc.RootDir = root.fn

	// Descriptor file at its standard address, grown to hold the map.
	df, err := fs.createAt(disk.FV{FID: disk.DescriptorFID, Version: 1}, "DiskDescriptor.", DescLeaderVDA)
	if err != nil {
		return nil, fmt.Errorf("file: formatting descriptor: %w", err)
	}
	fs.descFN = df.fn
	if err := fs.flushDescriptor(df); err != nil {
		return nil, err
	}
	return fs, nil
}

// Mount reads the disk descriptor from a previously formatted device. If the
// descriptor cannot be read the device needs scavenging; use Rebuild in the
// scavenge package.
func Mount(dev disk.Device) (*FS, error) {
	fs := &FS{dev: dev, rover: DescLeaderVDA + 1}
	fn := FN{FV: disk.FV{FID: disk.DescriptorFID, Version: 1}, Leader: DescLeaderVDA}
	fs.descFN = fn
	// Bootstrap problem: reading the descriptor file requires no descriptor,
	// only labels, since pages self-identify.
	words, err := fs.readWholeFile(fn)
	if err != nil {
		return nil, fmt.Errorf("%w: reading descriptor: %v", ErrNoFS, err)
	}
	d, err := DecodeDescriptor(words)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNoFS, err)
	}
	d.Shape.Name = dev.Geometry().Name
	fs.desc = d
	return fs, nil
}

// AdoptDescriptor installs a descriptor rebuilt by the Scavenger and flushes
// it to the descriptor file.
func (fs *FS) AdoptDescriptor(d *Descriptor) error {
	fs.mu.Lock()
	fs.desc = d
	fs.mu.Unlock()
	return fs.Flush()
}

// Flush writes the in-core descriptor (including the hint allocation map)
// back to the descriptor file. The paper's system did this lazily; a stale
// map on disk costs only "a little extra one-time disk activity" after a
// crash.
func (fs *FS) Flush() error {
	f, err := fs.Open(fs.descFN)
	if err != nil {
		return fmt.Errorf("file: flushing descriptor: %w", err)
	}
	return fs.flushDescriptor(f)
}

// flushDescriptor writes the descriptor into file f, growing it as needed.
func (fs *FS) flushDescriptor(f *File) error {
	words := func() []disk.Word {
		fs.mu.Lock()
		defer fs.mu.Unlock()
		return fs.desc.EncodeWords()
	}()
	var page [disk.PageWords]disk.Word
	pn := disk.Word(1)
	for off := 0; off < len(words); off += disk.PageWords {
		n := copy(page[:], words[off:])
		for i := n; i < disk.PageWords; i++ {
			page[i] = 0
		}
		length := n * 2
		if off+disk.PageWords < len(words) {
			length = disk.PageBytes
		}
		if length == disk.PageBytes && off+disk.PageWords >= len(words) {
			// Exactly full: the invariant demands a trailing partial page,
			// which WritePage provides automatically.
			length = disk.PageBytes
		}
		if err := f.WritePage(pn, &page, length); err != nil {
			return fmt.Errorf("file: flushing descriptor page %d: %w", pn, err)
		}
		pn++
	}
	return f.Sync()
}

// readWholeFile reads every data page of fn by following links from the
// leader, with no descriptor needed. Returns the concatenated data words.
func (fs *FS) readWholeFile(fn FN) ([]disk.Word, error) {
	// Validate the leader and get the first data page address.
	ldrLbl, err := disk.ReadLabel(fs.dev, fn.Leader, fn.FV, 0)
	if err != nil {
		return nil, err
	}
	var words []disk.Word
	addr := ldrLbl.Next
	pn := disk.Word(1)
	for addr != disk.NilVDA {
		pat := disk.LinkPattern(fn.FV, pn)
		var v [disk.PageWords]disk.Word
		err := fs.dev.Do(&disk.Op{
			Addr: addr, Label: disk.Check, LabelData: &pat,
			Value: disk.Read, ValueData: &v,
		})
		if err != nil {
			return nil, err
		}
		lbl := disk.LabelFromWords(pat)
		words = append(words, v[:(int(lbl.Length)+1)/2]...)
		addr = lbl.Next
		pn++
	}
	return words, nil
}

// allocSerial hands out the next file identifier serial.
func (fs *FS) allocSerial(directory bool) disk.FV {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	s := fs.desc.NextSerial
	fs.desc.NextSerial++
	fid := disk.FID(s)
	if directory {
		fid |= disk.DirFIDBit
	}
	return disk.FV{FID: fid, Version: 1}
}

// allocPage claims a free page and writes its first label and value. It
// prefers the page at try (for consecutive allocation); on any label-check
// surprise — the map said free, the label says otherwise — it marks the page
// busy and tries elsewhere, exactly the §3.3 discipline. Returns the chosen
// address. sc is the calling handle's scratch; the disk traffic goes
// through it so the steady-state path allocates nothing.
func (fs *FS) allocPage(try disk.VDA, lbl disk.Label, v *[disk.PageWords]disk.Word, sc *disk.OpScratch) (disk.VDA, error) {
	for {
		fs.mu.Lock()
		var a disk.VDA
		if try != disk.NilVDA && int(try) < fs.desc.Free.Len() && !fs.desc.Free.Busy(try) {
			a = try
		} else {
			a = fs.desc.Free.scan(fs.rover)
		}
		if a == disk.NilVDA {
			fs.mu.Unlock()
			return disk.NilVDA, ErrDiskFull
		}
		fs.desc.Free.SetBusy(a)
		fs.rover = disk.VDA((int(a) + 1) % fs.desc.Free.Len())
		fs.mu.Unlock()

		err := sc.Allocate(fs.dev, a, lbl, v)
		switch {
		case err == nil:
			fs.mu.Lock()
			fs.stats.Allocs++
			fs.mu.Unlock()
			return a, nil
		case disk.IsCheck(err) || errors.Is(err, disk.ErrBadSector):
			// The map lied (or the page is bad): it stays marked busy so we
			// never try it again this session; the Scavenger will recover it
			// if it is genuinely free.
			fs.mu.Lock()
			fs.stats.AllocRetries++
			fs.mu.Unlock()
			try = disk.NilVDA
			continue
		default:
			return disk.NilVDA, err
		}
	}
}

// freePage releases the page and clears its map bit.
func (fs *FS) freePage(a disk.VDA, expect disk.Label, sc *disk.OpScratch) error {
	if err := sc.Free(fs.dev, a, expect); err != nil {
		return err
	}
	fs.mu.Lock()
	fs.desc.Free.SetFree(a)
	fs.stats.Frees++
	fs.mu.Unlock()
	return nil
}

// SetRover positions the allocation rover, the place the next free-page
// scan starts. A diagnostic hook for tools, tests and experiments; the map
// is a hint, so no setting of the rover can be unsafe.
func (fs *FS) SetRover(a disk.VDA) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if int(a) < fs.desc.Free.Len() {
		fs.rover = a
	}
}

// FreeCount returns the number of pages the allocation map believes free.
func (fs *FS) FreeCount() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.desc.Free.CountFree()
}
