// Package file implements the paper's long-term storage system: files made
// of label-checked disk pages (§3.2), the leader page carrying each file's
// self-identifying properties, the disk descriptor with its hint allocation
// map (§3.3), and the hint-based page location ladder (§3.6).
//
// The package is written against disk.Device, not *disk.Drive: the openness
// principle means a user program with a non-standard disk supplies its own
// device object and still gets the standard file system (§5.2).
package file

import (
	"errors"
	"fmt"
	"time"

	"altoos/internal/disk"
)

// FN is a file's full name: the absolute (FID, version) pair plus the hint
// address of its leader page. "Any operation on a file can be performed with
// no more than a knowledge of its full name" (§3.4); the hint part may be
// stale, in which case operations fail a label check and the caller climbs
// the recovery ladder.
type FN struct {
	FV     disk.FV
	Leader disk.VDA // hint: address of page 0
}

// String implements fmt.Stringer.
func (fn FN) String() string {
	return fmt.Sprintf("%v@%d", fn.FV, fn.Leader)
}

// MaxLeaderName is the longest leader name, in bytes, that fits the leader
// page layout.
const MaxLeaderName = 78

// Leader is the decoded contents of a file's page 0 (§3.2): "all the
// properties of the file other than its length and its data". Dates and the
// leader name are absolutes; the last-page fields and the consecutive flag
// are hints.
type Leader struct {
	Created time.Duration // simulated time of creation (absolute)
	Written time.Duration // simulated time of last write (absolute)
	Read    time.Duration // simulated time of last read (absolute)
	Name    string        // leader name: the file's self-identification (absolute)

	LastPN           disk.Word // hint: page number of the last page
	LastAddr         disk.VDA  // hint: disk address of the last page
	MaybeConsecutive bool      // hint: pages may be consecutively allocated
}

// Leader page layout, in words:
//
//	0..1   created   (32-bit simulated milliseconds)
//	2..3   written
//	4..5   read
//	6      name length in bytes
//	7..45  name bytes, two per word, big-endian within the word
//	46     last page number                 (hint)
//	47     last page address                (hint)
//	48     maybe-consecutive flag           (hint)
//	49..   unused
const (
	ldCreated  = 0
	ldWritten  = 2
	ldRead     = 4
	ldNameLen  = 6
	ldNameBase = 7
	ldNameCap  = MaxLeaderName / 2 // words 7..45
	ldLastPN   = 46
	ldLastAddr = 47
	ldConsec   = 48
)

// ErrLeader reports a malformed leader page.
var ErrLeader = errors.New("file: malformed leader page")

// timeToWords encodes a duration as 32 bits of milliseconds.
func timeToWords(d time.Duration) (hi, lo disk.Word) {
	ms := uint32(d / time.Millisecond)
	return disk.Word(ms >> 16), disk.Word(ms)
}

func wordsToTime(hi, lo disk.Word) time.Duration {
	return time.Duration(uint32(hi)<<16|uint32(lo)) * time.Millisecond
}

// Encode serializes the leader into a page value.
func (l Leader) Encode(v *[disk.PageWords]disk.Word) error {
	if len(l.Name) > MaxLeaderName {
		return fmt.Errorf("%w: leader name %q longer than %d bytes", ErrLeader, l.Name, MaxLeaderName)
	}
	for i := range v {
		v[i] = 0
	}
	v[ldCreated], v[ldCreated+1] = timeToWords(l.Created)
	v[ldWritten], v[ldWritten+1] = timeToWords(l.Written)
	v[ldRead], v[ldRead+1] = timeToWords(l.Read)
	v[ldNameLen] = disk.Word(len(l.Name))
	for i := 0; i < len(l.Name); i++ {
		w := &v[ldNameBase+i/2]
		if i%2 == 0 {
			*w |= disk.Word(l.Name[i]) << 8
		} else {
			*w |= disk.Word(l.Name[i])
		}
	}
	v[ldLastPN] = l.LastPN
	v[ldLastAddr] = disk.Word(l.LastAddr)
	if l.MaybeConsecutive {
		v[ldConsec] = 1
	}
	return nil
}

// DecodeLeader parses a leader page value.
func DecodeLeader(v *[disk.PageWords]disk.Word) (Leader, error) {
	n := int(v[ldNameLen])
	if n > MaxLeaderName {
		return Leader{}, fmt.Errorf("%w: name length %d", ErrLeader, n)
	}
	name := make([]byte, n)
	for i := 0; i < n; i++ {
		w := v[ldNameBase+i/2]
		if i%2 == 0 {
			name[i] = byte(w >> 8)
		} else {
			name[i] = byte(w)
		}
	}
	return Leader{
		Created:          wordsToTime(v[ldCreated], v[ldCreated+1]),
		Written:          wordsToTime(v[ldWritten], v[ldWritten+1]),
		Read:             wordsToTime(v[ldRead], v[ldRead+1]),
		Name:             string(name),
		LastPN:           v[ldLastPN],
		LastAddr:         disk.VDA(v[ldLastAddr]),
		MaybeConsecutive: v[ldConsec] != 0,
	}, nil
}
