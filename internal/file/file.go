package file

import (
	"errors"
	"fmt"
	"sort"

	"altoos/internal/disk"
)

// File is an open file: a handle holding the full name, a cached copy of the
// leader, and hint addresses for pages already visited. Everything cached is
// a hint; the disk labels remain the only truth, and every access verifies
// them in passing.
type File struct {
	fs  *FS
	fn  FN
	ldr Leader

	// hints maps page number -> believed address. hints[0] duplicates
	// fn.Leader. The map is append-only per session and may be wrong at any
	// time; a failed label check prunes the offending entry.
	hints map[disk.Word]disk.VDA

	lastPN  disk.Word // page number of the last page
	lastLen int       // bytes in the last page (< PageBytes)
	dirty   bool      // leader needs rewriting
	deleted bool

	// sc holds the handle's reusable disk-op storage. A handle is not safe
	// for concurrent use, so one set suffices, and the page fast path then
	// allocates nothing in steady state.
	sc fileScratch
}

// fileScratch is reusable operation, pattern and value storage for a
// handle's disk traffic. Recovery paths (directory resolution, scavenging)
// run through their own freshly opened handles, so the scratch is never
// re-entered while an access is in flight.
type fileScratch struct {
	op  disk.Op
	pat [disk.LabelWords]disk.Word
	val [disk.PageWords]disk.Word
	dsk disk.OpScratch
}

// zeroPage is the shared all-zero value written into freshly allocated
// pages. Write actions only read the caller's buffer.
var zeroPage [disk.PageWords]disk.Word

// FN returns the file's full name.
func (f *File) FN() FN { return f.fn }

// Device returns the disk object the file lives on. Layers built above file
// handles (streams, the swapper) reach shared per-device state — notably the
// flight recorder — through it.
func (f *File) Device() disk.Device { return f.fs.dev }

// Leader returns the cached leader contents.
func (f *File) Leader() Leader { return f.ldr }

// Name returns the file's leader name, its self-identification.
func (f *File) Name() string { return f.ldr.Name }

// LastPage returns the current last page number and its byte count.
func (f *File) LastPage() (pn disk.Word, length int) { return f.lastPN, f.lastLen }

// LastPN returns the current last page number alone. Callers that do not
// need the byte count use this rather than discarding it: the length is
// load-bearing in page-boundary arithmetic, and altovet's errdiscard
// analyzer treats a blank-discarded LastPage result as a finding.
func (f *File) LastPN() disk.Word { return f.lastPN }

// Size returns the number of data bytes in the file (pages 1..last).
func (f *File) Size() int {
	return (int(f.lastPN)-1)*disk.PageBytes + f.lastLen
}

// ForgetHints discards every cached page address except none at all — even
// the leader hint survives only in the full name. Used by tests and the
// hint-ladder experiment to force recovery paths.
func (f *File) ForgetHints() {
	f.hints = map[disk.Word]disk.VDA{0: f.fn.Leader}
}

// SetHint plants a page-address hint, e.g. from an installed program's state
// file. The hint need not be correct.
func (f *File) SetHint(pn disk.Word, a disk.VDA) {
	f.hints[pn] = a
}

// Hint returns the cached address for a page, if any.
func (f *File) Hint(pn disk.Word) (disk.VDA, bool) {
	a, ok := f.hints[pn]
	return a, ok
}

// Create makes a new file: a leader page holding name and a single empty
// data page, so that the structural invariant — every page but the last is
// full, the last is partial — holds from birth.
func (fs *FS) Create(name string) (*File, error) {
	return fs.create(fs.allocSerial(false), name, disk.NilVDA, disk.NilVDA)
}

// CreateDirectoryFile makes a new file whose identifier is marked as a
// directory, so the Scavenger can find it (§3.4). The directory package owns
// the contents.
func (fs *FS) CreateDirectoryFile(name string) (*File, error) {
	return fs.create(fs.allocSerial(true), name, disk.NilVDA, disk.NilVDA)
}

// CreateBootFile makes the boot file: its first data page occupies the
// reserved boot sector (BootVDA), the fixed location the hardware bootstrap
// reads (§4).
func (fs *FS) CreateBootFile(name string) (*File, error) {
	return fs.create(disk.FV{FID: disk.BootFID, Version: 1}, name, disk.NilVDA, BootVDA)
}

// createAt makes a file with a fixed identity and leader address; used at
// format time for the structures with standard names and addresses.
func (fs *FS) createAt(fv disk.FV, name string, leaderAt disk.VDA) (*File, error) {
	return fs.create(fv, name, leaderAt, disk.NilVDA)
}

func (fs *FS) create(fv disk.FV, name string, leaderAt, p1At disk.VDA) (*File, error) {
	now := fs.now()
	f := &File{
		fs: fs,
		fn: FN{FV: fv},
		ldr: Leader{
			Created:          now,
			Written:          now,
			Read:             now,
			Name:             name,
			LastPN:           1,
			MaybeConsecutive: true,
		},
		hints:   map[disk.Word]disk.VDA{},
		lastPN:  1,
		lastLen: 0,
	}

	// Leader first, so data pages can be placed consecutively after it —
	// the layout the compacting scavenger also produces. A crash between
	// the two allocations leaves a leader-only fragment for the Scavenger.
	ldrVal := &f.sc.val
	if err := f.ldr.Encode(ldrVal); err != nil {
		return nil, err
	}
	ldrLbl := disk.Label{FID: fv.FID, Version: fv.Version, PageNum: 0, Length: disk.PageBytes, Next: disk.NilVDA, Prev: disk.NilVDA}
	if leaderAt != disk.NilVDA {
		// A standard address was reserved at format time; release it so the
		// allocator can hand it to this leader and nothing else.
		fs.mu.Lock()
		fs.desc.Free.SetFree(leaderAt)
		fs.mu.Unlock()
	}
	l, err := fs.allocPage(leaderAt, ldrLbl, ldrVal, &f.sc.dsk)
	if err != nil {
		return nil, fmt.Errorf("file: creating %q leader: %w", name, err)
	}
	if leaderAt != disk.NilVDA && l != leaderAt {
		return nil, fmt.Errorf("file: standard address %d for %q unavailable (got %d)", leaderAt, name, l)
	}
	f.fn.Leader = l
	f.hints[0] = l

	p1lbl := disk.Label{FID: fv.FID, Version: fv.Version, PageNum: 1, Length: 0, Next: disk.NilVDA, Prev: l}
	p1try := l + 1
	if p1At != disk.NilVDA {
		// A fixed first data page (the boot sector); release its format-time
		// reservation for this allocation only.
		fs.mu.Lock()
		fs.desc.Free.SetFree(p1At)
		fs.mu.Unlock()
		p1try = p1At
	}
	p1, err := fs.allocPage(p1try, p1lbl, &zeroPage, &f.sc.dsk)
	if err != nil {
		return nil, fmt.Errorf("file: creating %q: %w", name, err)
	}
	if p1At != disk.NilVDA && p1 != p1At {
		return nil, fmt.Errorf("file: fixed first page %d for %q unavailable (got %d)", p1At, name, p1)
	}
	f.hints[1] = p1

	// Complete the leader: forward link, last-page hint, and an honest
	// consecutive flag (a fixed-address system file's data page may not
	// land right after its leader).
	f.ldr.MaybeConsecutive = p1 == l+1
	f.ldr.LastAddr = p1
	if err := f.ldr.Encode(ldrVal); err != nil {
		return nil, err
	}
	linked := ldrLbl
	linked.Next = p1
	if err := f.sc.dsk.Relabel(fs.dev, l, ldrLbl, linked, ldrVal); err != nil {
		return nil, fmt.Errorf("file: linking %q: %w", name, err)
	}
	return f, nil
}

// Open validates a full name and returns a handle. The leader is read (and
// its label checked); if the hint address is stale, the recovery ladder is
// climbed before giving up.
func (fs *FS) Open(fn FN) (*File, error) {
	f := &File{fs: fs, fn: fn, hints: map[disk.Word]disk.VDA{0: fn.Leader}}
	if err := f.loadLeader(); err != nil {
		return nil, err
	}
	return f, nil
}

// loadLeader reads page 0 and the last-page label, priming the caches.
func (f *File) loadLeader() error {
	f.sc.pat = disk.LinkPattern(f.fn.FV, 0)
	f.sc.op = disk.Op{Label: disk.Check, LabelData: &f.sc.pat, Value: disk.Read, ValueData: &f.sc.val}
	addr, err := f.access(0, &f.sc.op)
	if err != nil {
		return err
	}
	f.fn.Leader = addr
	ldr, err := DecodeLeader(&f.sc.val)
	if err != nil {
		return err
	}
	f.ldr = ldr
	// Trust the leader's last-page hint if it verifies; otherwise chase
	// links from the front.
	if ldr.LastAddr != disk.NilVDA {
		if lbl, err := disk.ReadLabel(f.fs.dev, ldr.LastAddr, f.fn.FV, ldr.LastPN); err == nil && lbl.Next == disk.NilVDA {
			f.lastPN, f.lastLen = ldr.LastPN, int(lbl.Length)
			f.hints[ldr.LastPN] = ldr.LastAddr
			return nil
		}
	}
	pn, a, length, err := f.chaseToEnd(0, addr)
	if err != nil {
		return err
	}
	f.lastPN, f.lastLen = pn, length
	f.hints[pn] = a
	return nil
}

// chaseToEnd follows Next links from (pn, addr) to the last page, caching
// hints along the way. Returns the last page's number, address and length.
func (f *File) chaseToEnd(pn disk.Word, addr disk.VDA) (disk.Word, disk.VDA, int, error) {
	for {
		lbl, err := disk.ReadLabel(f.fs.dev, addr, f.fn.FV, pn)
		if err != nil {
			return 0, 0, 0, err
		}
		f.fs.mu.Lock()
		f.fs.stats.LinkChases++
		f.fs.mu.Unlock()
		f.hints[pn] = addr
		if lbl.Next == disk.NilVDA {
			return pn, addr, int(lbl.Length), nil
		}
		addr = lbl.Next
		pn++
	}
}

// access performs op (whose Addr it fills in) on page pn, climbing the hint
// ladder of §3.6 on label-check failures:
//
//  1. the exact hint address for pn;
//  2. links followed from the nearest correct hint (typically the leader);
//  3. a directory lookup of the FV to refresh the leader address;
//  4. the Scavenger, then one more try.
//
// Ordinary damage shows up as a check error; access turns a stale hint into
// at worst extra disk traffic, never wrong data.
func (f *File) access(pn disk.Word, op *disk.Op) (disk.VDA, error) {
	if f.deleted {
		return 0, fmt.Errorf("%w: file %v deleted", ErrBadArg, f.fn.FV)
	}
	// Keep a pristine copy: checks mutate buffers (wildcards fill in), so
	// each retry needs the original patterns. The snapshot is a value on
	// this frame — the hot path must not allocate.
	var snap opSnapshot
	snap.save(op)

	// Level 1: direct hint.
	if a, ok := f.hints[pn]; ok {
		op.Addr = a
		err := f.fs.dev.Do(op)
		if err == nil {
			f.fs.mu.Lock()
			f.fs.stats.HintHits++
			f.fs.mu.Unlock()
			return a, nil
		}
		if !recoverable(err) {
			return 0, err
		}
		delete(f.hints, pn)
		snap.restore(op)
	}

	// Level 2: follow links from the nearest surviving hint.
	if a, err := f.locateByLinks(pn); err == nil {
		op.Addr = a
		if err := f.fs.dev.Do(op); err == nil {
			f.hints[pn] = a
			return a, nil
		} else if !recoverable(err) {
			return 0, err
		}
		snap.restore(op)
	}

	// Level 3: directory lookup of the FV.
	if f.fs.recovery.ResolveFV != nil {
		if l, err := f.fs.recovery.ResolveFV(f.fn.FV); err == nil {
			f.fs.mu.Lock()
			f.fs.stats.FVResolves++
			f.fs.mu.Unlock()
			f.fn.Leader = l
			f.hints = map[disk.Word]disk.VDA{0: l}
			if a, err := f.locateByLinks(pn); err == nil {
				op.Addr = a
				if err := f.fs.dev.Do(op); err == nil {
					f.hints[pn] = a
					return a, nil
				} else if !recoverable(err) {
					return 0, err
				}
				snap.restore(op)
			}
		}
	}

	// Level 4: the Scavenger, then directories again.
	if f.fs.recovery.Scavenge != nil {
		if err := f.fs.recovery.Scavenge(); err != nil {
			return 0, fmt.Errorf("%w: scavenge failed: %v", ErrNotFound, err)
		}
		f.fs.mu.Lock()
		f.fs.stats.Scavenges++
		f.fs.mu.Unlock()
		if f.fs.recovery.ResolveFV != nil {
			if l, err := f.fs.recovery.ResolveFV(f.fn.FV); err == nil {
				f.fn.Leader = l
				f.hints = map[disk.Word]disk.VDA{0: l}
				if a, err := f.locateByLinks(pn); err == nil {
					op.Addr = a
					if err := f.fs.dev.Do(op); err == nil {
						f.hints[pn] = a
						return a, nil
					}
				}
			}
		}
	}
	return 0, fmt.Errorf("%w: page (%v, %d)", ErrNotFound, f.fn.FV, pn)
}

// recoverable reports whether an access failure may be cured by finding the
// page somewhere else (stale hint) rather than being a hard device error.
func recoverable(err error) bool {
	return disk.IsCheck(err) || errors.Is(err, disk.ErrBadSector) || errors.Is(err, disk.ErrAddress)
}

// opSnapshot captures an op's buffer contents so a retry can restore them
// after a check mutated the wildcards. It is a plain value so callers keep
// it on their own stack frame; the old closure form heap-allocated a full
// page per access.
type opSnapshot struct {
	hdr [disk.HeaderWords]disk.Word
	lbl [disk.LabelWords]disk.Word
	val [disk.PageWords]disk.Word
}

func (s *opSnapshot) save(op *disk.Op) {
	if op.HeaderData != nil {
		s.hdr = *op.HeaderData
	}
	if op.LabelData != nil {
		s.lbl = *op.LabelData
	}
	if op.ValueData != nil {
		s.val = *op.ValueData
	}
}

func (s *opSnapshot) restore(op *disk.Op) {
	if op.HeaderData != nil {
		*op.HeaderData = s.hdr
	}
	if op.LabelData != nil {
		*op.LabelData = s.lbl
	}
	if op.ValueData != nil {
		*op.ValueData = s.val
	}
}

// locateByLinks finds page pn by following links from the nearest cached
// hint whose label still verifies. Hints for every k-th page — or any other
// set the program planted — shorten the chase, as §3.6 describes.
func (f *File) locateByLinks(pn disk.Word) (disk.VDA, error) {
	// Choose the verified starting point closest to pn. Candidates are
	// probed in distance order (ties to the lower page number) so the probe
	// sequence — and with it the disk traffic — is deterministic: map
	// iteration order must never reach the disk.
	type start struct {
		pn disk.Word
		a  disk.VDA
	}
	cands := make([]disk.Word, 0, len(f.hints))
	for hpn := range f.hints {
		cands = append(cands, hpn)
	}
	dist := func(hpn disk.Word) int {
		d := int(pn) - int(hpn)
		if d < 0 {
			d = -d
		}
		return d
	}
	sort.Slice(cands, func(i, j int) bool {
		if di, dj := dist(cands[i]), dist(cands[j]); di != dj {
			return di < dj
		}
		return cands[i] < cands[j]
	})
	var best *start
	for _, hpn := range cands {
		ha := f.hints[hpn]
		if _, err := disk.ReadLabel(f.fs.dev, ha, f.fn.FV, hpn); err == nil {
			best = &start{hpn, ha}
			break
		}
		delete(f.hints, hpn)
	}
	if best == nil {
		// No surviving hints at all; try the full-name leader address.
		if _, err := disk.ReadLabel(f.fs.dev, f.fn.Leader, f.fn.FV, 0); err != nil {
			return 0, err
		}
		best = &start{0, f.fn.Leader}
	}
	cur, addr := best.pn, best.a
	for cur != pn {
		lbl, err := disk.ReadLabel(f.fs.dev, addr, f.fn.FV, cur)
		if err != nil {
			return 0, err
		}
		f.fs.mu.Lock()
		f.fs.stats.LinkChases++
		f.fs.mu.Unlock()
		f.hints[cur] = addr
		if cur < pn {
			if lbl.Next == disk.NilVDA {
				return 0, fmt.Errorf("%w: page (%v, %d) beyond end", ErrNotFound, f.fn.FV, pn)
			}
			addr = lbl.Next
			cur++
		} else {
			if lbl.Prev == disk.NilVDA {
				return 0, fmt.Errorf("%w: page (%v, %d): broken back link", ErrNotFound, f.fn.FV, pn)
			}
			addr = lbl.Prev
			cur--
		}
	}
	return addr, nil
}

// ReadPage reads page pn into buf and returns the number of valid bytes.
func (f *File) ReadPage(pn disk.Word, buf *[disk.PageWords]disk.Word) (int, error) {
	if pn < 1 || pn > f.lastPN {
		return 0, fmt.Errorf("%w: page %d of %d", ErrBadArg, pn, f.lastPN)
	}
	f.sc.pat = disk.LinkPattern(f.fn.FV, pn)
	f.sc.op = disk.Op{Label: disk.Check, LabelData: &f.sc.pat, Value: disk.Read, ValueData: buf}
	if _, err := f.access(pn, &f.sc.op); err != nil {
		return 0, err
	}
	lbl := disk.LabelFromWords(f.sc.pat)
	// Keep neighbour hints fresh from the links just read.
	if lbl.Next != disk.NilVDA {
		f.hints[pn+1] = lbl.Next
	}
	if lbl.Prev != disk.NilVDA && pn > 0 {
		f.hints[pn-1] = lbl.Prev
	}
	f.ldr.Read = f.fs.now()
	f.dirty = true
	return int(lbl.Length), nil
}

// WritePage writes page pn with length valid bytes. Pages before the last
// must stay full (length == PageBytes). Writing the last page with a partial
// length updates its label; writing it completely full appends a fresh empty
// page so the invariant — the last page is always partial — survives, which
// is also the moment allocation happens.
func (f *File) WritePage(pn disk.Word, buf *[disk.PageWords]disk.Word, length int) error {
	if length < 0 || length > disk.PageBytes {
		return fmt.Errorf("%w: length %d", ErrBadArg, length)
	}
	switch {
	case pn < 1 || pn > f.lastPN:
		return fmt.Errorf("%w: page %d of %d", ErrBadArg, pn, f.lastPN)
	case pn < f.lastPN && length != disk.PageBytes:
		return fmt.Errorf("%w: interior page %d must stay full", ErrBadArg, pn)
	}
	f.ldr.Written = f.fs.now()
	f.dirty = true

	if pn < f.lastPN {
		// Plain data write: label checked in passing, no extra revolution.
		f.sc.pat = disk.LinkPattern(f.fn.FV, pn)
		f.sc.pat[4] = disk.PageBytes // interior pages are exactly full
		f.sc.op = disk.Op{Label: disk.Check, LabelData: &f.sc.pat, Value: disk.Write, ValueData: buf}
		_, err := f.access(pn, &f.sc.op)
		if err == nil {
			f.harvestLinks(pn, f.sc.pat)
		}
		return err
	}

	// Last page.
	if length < disk.PageBytes {
		if length == f.lastLen {
			f.sc.pat = disk.LinkPattern(f.fn.FV, pn)
			f.sc.op = disk.Op{Label: disk.Check, LabelData: &f.sc.pat, Value: disk.Write, ValueData: buf}
			_, err := f.access(pn, &f.sc.op)
			if err == nil {
				f.harvestLinks(pn, f.sc.pat)
			}
			return err
		}
		// Length change: read-check the label, rewrite it (§3.3's third
		// label-write occasion).
		addr, old, err := f.verifiedLabel(pn)
		if err != nil {
			return err
		}
		newLbl := old
		newLbl.Length = disk.Word(length)
		if err := f.sc.dsk.Relabel(f.fs.dev, addr, old, newLbl, buf); err != nil {
			return err
		}
		f.lastLen = length
		f.ldr.LastPN, f.ldr.LastAddr = pn, addr
		return nil
	}

	// The last page is now full: extend with a fresh empty page.
	addr, old, err := f.verifiedLabel(pn)
	if err != nil {
		return err
	}
	newLbl := disk.Label{
		FID: f.fn.FV.FID, Version: f.fn.FV.Version,
		PageNum: pn + 1, Length: 0, Next: disk.NilVDA, Prev: addr,
	}
	// Prefer the next consecutive sector, the compacting scavenger's layout.
	next, err := f.fs.allocPage(addr+1, newLbl, &zeroPage, &f.sc.dsk)
	if err != nil {
		return err
	}
	if next != addr+1 {
		f.ldr.MaybeConsecutive = false
	}
	full := old
	full.Length = disk.PageBytes
	full.Next = next
	if err := f.sc.dsk.Relabel(f.fs.dev, addr, old, full, buf); err != nil {
		return err
	}
	f.hints[pn+1] = next
	f.lastPN, f.lastLen = pn+1, 0
	f.ldr.LastPN, f.ldr.LastAddr = pn+1, next
	return nil
}

// harvestLinks caches the neighbour addresses a check just read back through
// its wildcards, so sequential access streams at full disk rate.
func (f *File) harvestLinks(pn disk.Word, pat [disk.LabelWords]disk.Word) {
	lbl := disk.LabelFromWords(pat)
	if lbl.Next != disk.NilVDA {
		f.hints[pn+1] = lbl.Next
	}
	if lbl.Prev != disk.NilVDA && pn > 0 {
		f.hints[pn-1] = lbl.Prev
	}
}

// verifiedLabel returns the address and current label of page pn, located
// through the ladder.
func (f *File) verifiedLabel(pn disk.Word) (disk.VDA, disk.Label, error) {
	f.sc.pat = disk.LinkPattern(f.fn.FV, pn)
	f.sc.op = disk.Op{Label: disk.Check, LabelData: &f.sc.pat}
	addr, err := f.access(pn, &f.sc.op)
	if err != nil {
		return 0, disk.Label{}, err
	}
	return addr, disk.LabelFromWords(f.sc.pat), nil
}

// Truncate cuts the file back so that page newLast (>= 1) is the last page
// with newLen bytes. Pages beyond it are freed, highest first, so that a
// crash mid-truncate leaves a well-formed shorter file.
func (f *File) Truncate(newLast disk.Word, newLen int) error {
	if newLast < 1 || newLast > f.lastPN || newLen < 0 || newLen >= disk.PageBytes {
		return fmt.Errorf("%w: truncate to (%d, %d)", ErrBadArg, newLast, newLen)
	}
	for pn := f.lastPN; pn > newLast; pn-- {
		addr, lbl, err := f.verifiedLabel(pn)
		if err != nil {
			return err
		}
		if err := f.fs.freePage(addr, lbl, &f.sc.dsk); err != nil {
			return err
		}
		delete(f.hints, pn)
		f.lastPN = pn - 1
	}
	addr, lbl, err := f.verifiedLabel(newLast)
	if err != nil {
		return err
	}
	if lbl.Next != disk.NilVDA || int(lbl.Length) != newLen {
		f.sc.pat = disk.LinkPattern(f.fn.FV, newLast)
		f.sc.op = disk.Op{Label: disk.Check, LabelData: &f.sc.pat, Value: disk.Read, ValueData: &f.sc.val}
		if _, err := f.access(newLast, &f.sc.op); err != nil {
			return err
		}
		newLbl := lbl
		newLbl.Next = disk.NilVDA
		newLbl.Length = disk.Word(newLen)
		if err := f.sc.dsk.Relabel(f.fs.dev, addr, lbl, newLbl, &f.sc.val); err != nil {
			return err
		}
	}
	f.lastPN, f.lastLen = newLast, newLen
	f.ldr.LastPN, f.ldr.LastAddr = newLast, addr
	f.ldr.Written = f.fs.now()
	f.dirty = true
	return f.Sync()
}

// Delete frees every page of the file, data pages first (highest first) and
// the leader last, so that a crash mid-delete leaves either a shorter file
// or a leader-only husk the Scavenger can finish off. Directory entries are
// the caller's business — files and names are independent (§3.4).
func (f *File) Delete() error {
	for pn := f.lastPN; pn >= 1; pn-- {
		addr, lbl, err := f.verifiedLabel(pn)
		if err != nil {
			return err
		}
		if err := f.fs.freePage(addr, lbl, &f.sc.dsk); err != nil {
			return err
		}
		delete(f.hints, pn)
		if pn > 1 {
			f.lastPN = pn - 1
		}
	}
	addr, lbl, err := f.verifiedLabel(0)
	if err != nil {
		return err
	}
	if err := f.fs.freePage(addr, lbl, &f.sc.dsk); err != nil {
		return err
	}
	f.deleted = true
	return nil
}

// Sync rewrites the leader page if the cached properties (dates, last-page
// hints, consecutive flag) changed. An ordinary value write: one disk
// operation, label checked in passing.
func (f *File) Sync() error {
	if !f.dirty || f.deleted {
		return nil
	}
	if err := f.ldr.Encode(&f.sc.val); err != nil {
		return err
	}
	f.sc.pat = disk.LinkPattern(f.fn.FV, 0)
	f.sc.op = disk.Op{Label: disk.Check, LabelData: &f.sc.pat, Value: disk.Write, ValueData: &f.sc.val}
	if _, err := f.access(0, &f.sc.op); err != nil {
		return err
	}
	f.dirty = false
	return nil
}

// Rename changes the file's leader name — its self-identification, which
// the Scavenger uses for orphan adoption. The name is an absolute, so only
// the owner changes it, deliberately, through this call; it is written to
// the leader page immediately.
func (f *File) Rename(name string) error {
	if len(name) > MaxLeaderName {
		return fmt.Errorf("%w: leader name %q too long", ErrBadArg, name)
	}
	f.ldr.Name = name
	f.ldr.Written = f.fs.now()
	f.dirty = true
	return f.Sync()
}

// PageAddr returns the verified disk address of page pn, locating it through
// the ladder if needed. Programs use this to build installation hints.
func (f *File) PageAddr(pn disk.Word) (disk.VDA, error) {
	a, _, err := f.verifiedLabel(pn)
	return a, err
}
