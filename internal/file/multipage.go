package file

import (
	"errors"
	"fmt"

	"altoos/internal/disk"
)

// Multi-page transfers: the bulk movers (the swapper, streams) touch runs
// of consecutive page numbers, and issuing those runs as one chained disk
// transfer lets the drive make a single scheduling decision for the whole
// run. Addresses come from the hint ladder's cheapest rungs — cached hints,
// or the §3.6 computed hint that a consecutively laid-out file keeps page p
// at leader+p — and every operation still checks the label in passing, so a
// wrong guess costs one chain abort and a climb of the ordinary ladder,
// never wrong data.

// ReadPages reads the full interior pages pn..pn+len(pages)-1 into pages,
// as chained transfers wherever page addresses are known or guessable.
func (f *File) ReadPages(pn disk.Word, pages [][disk.PageWords]disk.Word) error {
	return f.movePages(pn, pages, false)
}

// WritePages writes the full interior pages pn..pn+len(pages)-1 from pages,
// as chained transfers wherever page addresses are known or guessable.
// Interior pages are always exactly full, so no length is taken: resizing
// is WritePage's business.
func (f *File) WritePages(pn disk.Word, pages [][disk.PageWords]disk.Word) error {
	return f.movePages(pn, pages, true)
}

func (f *File) movePages(pn disk.Word, pages [][disk.PageWords]disk.Word, write bool) error {
	n := len(pages)
	if n == 0 {
		return nil
	}
	if f.deleted {
		return fmt.Errorf("%w: file %v deleted", ErrBadArg, f.fn.FV)
	}
	if pn < 1 || int(pn)+n-1 >= int(f.lastPN) {
		return fmt.Errorf("%w: pages %d..%d must be interior (last page is %d)",
			ErrBadArg, pn, int(pn)+n-1, f.lastPN)
	}
	if write {
		f.ldr.Written = f.fs.now()
	} else {
		f.ldr.Read = f.fs.now()
	}
	f.dirty = true

	act := disk.Read
	if write {
		act = disk.Write
	}
	ops := make([]disk.Op, n)
	pats := make([][disk.LabelWords]disk.Word, n)
	i := 0
	for i < n {
		// Extend a chain over every consecutive page whose address we
		// believe. Semantic order is link order, so the chain is Ordered:
		// a failed check stops it at that sector.
		j := i
		for j < n {
			p := pn + disk.Word(j)
			a, ok := f.pageGuess(p)
			if !ok {
				break
			}
			pats[j] = disk.LinkPattern(f.fn.FV, p)
			pats[j][4] = disk.PageBytes // interior pages are exactly full
			//altovet:allow labelcheck act is Read or Write; the label is checked either way
			ops[j] = disk.Op{Addr: a, Label: disk.Check, LabelData: &pats[j], Value: act, ValueData: &pages[j]}
			j++
		}
		if j == i {
			// No believed address: the single-page ladder finds the page
			// and harvests neighbour hints for the next chain.
			if err := f.movePage(pn+disk.Word(i), &pages[i], write); err != nil {
				return err
			}
			i++
			continue
		}
		base := i
		errs := disk.DoChainOn(f.fs.dev, ops[base:j], disk.Ordered)
		i = j
		for k := base; k < j; k++ {
			if errs != nil && errs[k-base] != nil {
				err := errs[k-base]
				if !errors.Is(err, disk.ErrChainAborted) && !recoverable(err) {
					return err
				}
				// A stale hint or wrong guess (or an op aborted behind
				// one): prune and climb the ladder for this page, then
				// resume chaining.
				p := pn + disk.Word(k)
				delete(f.hints, p)
				if err := f.movePage(p, &pages[k], write); err != nil {
					return err
				}
				i = k + 1
				break
			}
			p := pn + disk.Word(k)
			f.hints[p] = ops[k].Addr
			f.harvestLinks(p, pats[k])
		}
	}
	return nil
}

// movePage is the single-page fallback, with the full hint ladder behind it.
func (f *File) movePage(p disk.Word, buf *[disk.PageWords]disk.Word, write bool) error {
	if write {
		return f.WritePage(p, buf, disk.PageBytes)
	}
	_, err := f.ReadPage(p, buf)
	return err
}

// pageGuess returns the address the handle believes page p lives at: a
// cached hint, or for a consecutively laid-out file the computed address
// leader+p (§3.6's "hints may also be computed" case).
func (f *File) pageGuess(p disk.Word) (disk.VDA, bool) {
	if a, ok := f.hints[p]; ok {
		return a, true
	}
	if f.ldr.MaybeConsecutive {
		a := int(f.fn.Leader) + int(p)
		if a < f.fs.dev.Geometry().NSectors() {
			return disk.VDA(a), true
		}
	}
	return 0, false
}
