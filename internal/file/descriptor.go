package file

import (
	"errors"
	"fmt"
	"time"

	"altoos/internal/disk"
)

// Descriptor is the in-core image of the disk descriptor file (§3.3): the
// disk shape (absolute), the allocation bit map (a hint — "the absolute
// information about which pages are free is contained in the labels"), the
// name of the root directory (hint), and the next file serial to issue.
//
// We implement the paper's recommended arrangement ("that's how we should
// have done it"): the descriptor has a standard name and disk address and
// points to the root directory, rather than the other way round.
type Descriptor struct {
	Shape      disk.Geometry
	Pack       disk.Word
	NextSerial uint32  // next FID serial to issue (scavenger recomputes)
	RootDir    FN      // hint: the root directory's full name
	Free       *BitMap // hint: the allocation map
}

// Well-known disk addresses. "A disk contains a file called the disk
// descriptor with a standard name and disk address" (§3.3); the bootstrap
// hardware reads the boot file's first data page from a fixed location (§4).
const (
	// BootVDA holds the boot file's first data page.
	BootVDA disk.VDA = 0
	// SysDirLeaderVDA holds the root directory's leader page.
	SysDirLeaderVDA disk.VDA = 1
	// DescLeaderVDA holds the disk descriptor file's leader page.
	DescLeaderVDA disk.VDA = 2
)

// ErrDescriptor reports a malformed on-disk descriptor.
var ErrDescriptor = errors.New("file: malformed disk descriptor")

// BitMap is the allocation map: one bit per sector, set = busy. It is pure
// hint; every decision it informs is verified by a label check.
type BitMap struct {
	bits []disk.Word
	n    int
}

// NewBitMap returns an all-free map over n sectors.
func NewBitMap(n int) *BitMap {
	return &BitMap{bits: make([]disk.Word, (n+15)/16), n: n}
}

// Len returns the number of sectors the map covers.
func (b *BitMap) Len() int { return b.n }

// Busy reports whether the map marks sector a busy.
func (b *BitMap) Busy(a disk.VDA) bool {
	return b.bits[int(a)/16]&(1<<(uint(a)%16)) != 0
}

// SetBusy marks sector a busy.
func (b *BitMap) SetBusy(a disk.VDA) {
	b.bits[int(a)/16] |= 1 << (uint(a) % 16)
}

// SetFree marks sector a free.
func (b *BitMap) SetFree(a disk.VDA) {
	b.bits[int(a)/16] &^= 1 << (uint(a) % 16)
}

// CountFree returns the number of sectors the map believes are free.
func (b *BitMap) CountFree() int {
	free := 0
	for i := 0; i < b.n; i++ {
		if !b.Busy(disk.VDA(i)) {
			free++
		}
	}
	return free
}

// scan returns the first sector at or after start (wrapping) that the map
// marks free, or NilVDA if none.
func (b *BitMap) scan(start disk.VDA) disk.VDA {
	for i := 0; i < b.n; i++ {
		a := disk.VDA((int(start) + i) % b.n)
		if !b.Busy(a) {
			return a
		}
	}
	return disk.NilVDA
}

// Descriptor serialization. The descriptor occupies the data pages of the
// descriptor file. Layout in words:
//
//	0     magic
//	1     format version
//	2..8  shape: cylinders, heads, sectors/track, rev (100us), settle (100us),
//	      seek/cyl (us), pack
//	9..10 next serial (32 bits)
//	11..13 root dir: FID hi, FID lo, version
//	14    root dir leader address
//	15    number of sectors covered by the map
//	16..  the bit map
const (
	descMagic   = 0xA170
	descVersion = 1
	descFixed   = 16
)

// EncodeWords returns the descriptor's on-disk words.
func (d *Descriptor) EncodeWords() []disk.Word {
	w := make([]disk.Word, descFixed+len(d.Free.bits))
	w[0] = descMagic
	w[1] = descVersion
	w[2] = disk.Word(d.Shape.Cylinders)
	w[3] = disk.Word(d.Shape.Heads)
	w[4] = disk.Word(d.Shape.SectorsPerTrack)
	w[5] = disk.Word(d.Shape.RevTime / (100 * time.Microsecond))
	w[6] = disk.Word(d.Shape.SeekSettle / (100 * time.Microsecond))
	w[7] = disk.Word(d.Shape.SeekPerCyl / time.Microsecond)
	w[8] = d.Pack
	w[9] = disk.Word(d.NextSerial >> 16)
	w[10] = disk.Word(d.NextSerial)
	w[11] = disk.Word(d.RootDir.FV.FID >> 16)
	w[12] = disk.Word(d.RootDir.FV.FID)
	w[13] = d.RootDir.FV.Version
	w[14] = disk.Word(d.RootDir.Leader)
	w[15] = disk.Word(d.Free.n)
	copy(w[descFixed:], d.Free.bits)
	return w
}

// DecodeDescriptor parses on-disk descriptor words.
func DecodeDescriptor(w []disk.Word) (*Descriptor, error) {
	if len(w) < descFixed {
		return nil, fmt.Errorf("%w: only %d words", ErrDescriptor, len(w))
	}
	if w[0] != descMagic {
		return nil, fmt.Errorf("%w: bad magic %#04x", ErrDescriptor, w[0])
	}
	if w[1] != descVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrDescriptor, w[1])
	}
	n := int(w[15])
	need := descFixed + (n+15)/16
	if len(w) < need {
		return nil, fmt.Errorf("%w: map truncated: have %d words, need %d", ErrDescriptor, len(w), need)
	}
	bm := NewBitMap(n)
	copy(bm.bits, w[descFixed:need])
	d := &Descriptor{
		Shape: disk.Geometry{
			Name:            "from-descriptor",
			Cylinders:       int(w[2]),
			Heads:           int(w[3]),
			SectorsPerTrack: int(w[4]),
			RevTime:         time.Duration(w[5]) * 100 * time.Microsecond,
			SeekSettle:      time.Duration(w[6]) * 100 * time.Microsecond,
			SeekPerCyl:      time.Duration(w[7]) * time.Microsecond,
		},
		Pack:       w[8],
		NextSerial: uint32(w[9])<<16 | uint32(w[10]),
		RootDir: FN{
			FV:     disk.FV{FID: disk.FID(w[11])<<16 | disk.FID(w[12]), Version: w[13]},
			Leader: disk.VDA(w[14]),
		},
		Free: bm,
	}
	return d, nil
}

// DescriptorPages returns the number of data pages the descriptor file needs
// for geometry g.
func DescriptorPages(g disk.Geometry) int {
	words := descFixed + (g.NSectors()+15)/16
	return (words + disk.PageWords - 1) / disk.PageWords
}
