package file

import (
	"fmt"

	"altoos/internal/disk"
)

// Hooks used by the Scavenger. The paper's openness cuts both ways: the
// Scavenger is not privileged code inside the file system, it is a client
// that reconstructs the file system's hints from the absolutes on the disk.
// These entry points let it hand the results back.

// Adopt builds an FS around a descriptor reconstructed from the labels,
// without reading anything from the device. The caller (the Scavenger) is
// responsible for the descriptor file existing at descFN before Flush is
// called.
func Adopt(dev disk.Device, desc *Descriptor, descFN FN) *FS {
	return &FS{
		dev:    dev,
		desc:   desc,
		descFN: descFN,
		rover:  DescLeaderVDA + 1,
	}
}

// SetDescriptorFN redirects the FS at the descriptor file's current full
// name, after the Scavenger recreated or relocated it.
func (fs *FS) SetDescriptorFN(fn FN) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.descFN = fn
}

// DescriptorFN returns the descriptor file's full name.
func (fs *FS) DescriptorFN() FN {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.descFN
}

// CreateWithFV creates a file with a caller-chosen identity, optionally at a
// fixed leader address (pass disk.NilVDA for anywhere). The Scavenger uses
// it to recreate destroyed system files under their standard identities.
func (fs *FS) CreateWithFV(fv disk.FV, name string, leaderAt disk.VDA) (*File, error) {
	if fv.Version == 0 {
		return nil, fmt.Errorf("%w: version 0", ErrBadArg)
	}
	return fs.create(fv, name, leaderAt, disk.NilVDA)
}

// OpenTrusted returns a handle from a table entry the caller has just
// verified against the labels (the Scavenger's sweep), skipping the leader
// re-read that Open performs. lastPN/lastLen must describe the real last
// page.
func (fs *FS) OpenTrusted(fn FN, ldr Leader, lastPN disk.Word, lastLen int) *File {
	return &File{
		fs:      fs,
		fn:      fn,
		ldr:     ldr,
		hints:   map[disk.Word]disk.VDA{0: fn.Leader},
		lastPN:  lastPN,
		lastLen: lastLen,
	}
}
