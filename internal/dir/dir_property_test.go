package dir

import (
	"fmt"
	"testing"
	"testing/quick"

	"altoos/internal/disk"
	"altoos/internal/file"
	"altoos/internal/sim"
)

// Model-based property test: a random interleaving of Insert/Update/Remove
// against an in-memory map, verified by Load after every batch.
func TestDirectoryMatchesModel(t *testing.T) {
	f := func(seed uint64) bool {
		r := sim.NewRand(seed)
		d, err := disk.NewDrive(disk.Diablo31(), 1, nil)
		if err != nil {
			return false
		}
		fs, err := file.Format(d)
		if err != nil {
			return false
		}
		root, err := InitRoot(fs)
		if err != nil {
			return false
		}
		model := map[string]file.FN{}
		// Seed the model with the standard entries.
		start, err := root.Load()
		if err != nil {
			return false
		}
		for _, e := range start {
			model[e.Name] = e.FN
		}

		mkFN := func() file.FN {
			return file.FN{
				FV:     disk.FV{FID: disk.FID(0x100 + r.Intn(1000)), Version: 1},
				Leader: disk.VDA(r.Intn(4000)),
			}
		}
		names := make([]string, 12)
		for i := range names {
			names[i] = fmt.Sprintf("n%02d.%s", i, string(rune('a'+r.Intn(26))))
		}

		for step := 0; step < 60; step++ {
			name := names[r.Intn(len(names))]
			switch r.Intn(3) {
			case 0: // insert
				fn := mkFN()
				err := root.Insert(name, fn)
				if _, exists := model[name]; exists {
					if err == nil {
						return false // duplicate insert must fail
					}
				} else {
					if err != nil {
						return false
					}
					model[name] = fn
				}
			case 1: // update (upsert)
				fn := mkFN()
				if err := root.Update(name, fn); err != nil {
					return false
				}
				model[name] = fn
			case 2: // remove
				err := root.Remove(name)
				if _, exists := model[name]; exists {
					if err != nil {
						return false
					}
					delete(model, name)
				} else if err == nil {
					return false // removing a missing name must fail
				}
			}
		}

		entries, err := root.Load()
		if err != nil {
			return false
		}
		if len(entries) != len(model) {
			return false
		}
		for _, e := range entries {
			want, ok := model[e.Name]
			if !ok || want != e.FN {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}
