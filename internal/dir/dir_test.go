package dir

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"altoos/internal/disk"
	"altoos/internal/file"
)

func newFS(t *testing.T) *file.FS {
	t.Helper()
	d, err := disk.NewDrive(disk.Diablo31(), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := file.Format(d)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func newRoot(t *testing.T) (*file.FS, *Directory) {
	t.Helper()
	fs := newFS(t)
	root, err := InitRoot(fs)
	if err != nil {
		t.Fatal(err)
	}
	return fs, root
}

func TestInitRootHasStandardEntries(t *testing.T) {
	_, root := newRoot(t)
	entries, err := root.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("root has %d entries, want 2: %+v", len(entries), entries)
	}
	if _, err := root.Lookup("SysDir."); err != nil {
		t.Error("SysDir. missing")
	}
	if _, err := root.Lookup("DiskDescriptor."); err != nil {
		t.Error("DiskDescriptor. missing")
	}
}

func TestInsertLookupRemove(t *testing.T) {
	fs, root := newRoot(t)
	f, err := fs.Create("hello.txt")
	if err != nil {
		t.Fatal(err)
	}
	if err := root.Insert("hello.txt", f.FN()); err != nil {
		t.Fatal(err)
	}
	fn, err := root.Lookup("hello.txt")
	if err != nil {
		t.Fatal(err)
	}
	if fn != f.FN() {
		t.Errorf("lookup = %v, want %v", fn, f.FN())
	}
	if err := root.Insert("hello.txt", f.FN()); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate insert: %v", err)
	}
	if err := root.Remove("hello.txt"); err != nil {
		t.Fatal(err)
	}
	if _, err := root.Lookup("hello.txt"); !errors.Is(err, ErrNotFound) {
		t.Errorf("lookup after remove: %v", err)
	}
	if err := root.Remove("hello.txt"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double remove: %v", err)
	}
	// The file itself is untouched by name removal.
	var buf [disk.PageWords]disk.Word
	if _, err := f.ReadPage(1, &buf); err != nil {
		t.Errorf("file damaged by Remove: %v", err)
	}
}

func TestLookupFV(t *testing.T) {
	fs, root := newRoot(t)
	f, _ := fs.Create("byfv.dat")
	if err := root.Insert("byfv.dat", f.FN()); err != nil {
		t.Fatal(err)
	}
	fn, err := root.LookupFV(f.FN().FV)
	if err != nil {
		t.Fatal(err)
	}
	if fn.Leader != f.FN().Leader {
		t.Errorf("LookupFV leader = %d, want %d", fn.Leader, f.FN().Leader)
	}
}

func TestManyEntriesSpanPages(t *testing.T) {
	fs, root := newRoot(t)
	const n = 60
	fns := make([]file.FN, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("file-%03d-%s.dat", i, strings.Repeat("x", 20))
		f, err := fs.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		fns[i] = f.FN()
		if err := root.Insert(name, f.FN()); err != nil {
			t.Fatal(err)
		}
	}
	if pn, _ := root.File().LastPage(); pn < 2 {
		t.Fatalf("directory should span pages, lastPN=%d", pn)
	}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("file-%03d-%s.dat", i, strings.Repeat("x", 20))
		fn, err := root.Lookup(name)
		if err != nil {
			t.Fatalf("lookup %q: %v", name, err)
		}
		if fn != fns[i] {
			t.Fatalf("entry %d corrupted", i)
		}
	}
	// Removing entries shrinks the file back.
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("file-%03d-%s.dat", i, strings.Repeat("x", 20))
		if err := root.Remove(name); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := root.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Errorf("%d entries left, want the 2 standard ones", len(entries))
	}
	if pn, _ := root.File().LastPage(); pn != 1 {
		t.Errorf("directory not shrunk: lastPN=%d", pn)
	}
}

func TestUpdateRefreshesHint(t *testing.T) {
	fs, root := newRoot(t)
	f, _ := fs.Create("u.dat")
	if err := root.Insert("u.dat", f.FN()); err != nil {
		t.Fatal(err)
	}
	moved := f.FN()
	moved.Leader = 777
	if err := root.Update("u.dat", moved); err != nil {
		t.Fatal(err)
	}
	fn, _ := root.Lookup("u.dat")
	if fn.Leader != 777 {
		t.Errorf("Update did not take: leader=%d", fn.Leader)
	}
	if err := root.Update("fresh.dat", f.FN()); err != nil {
		t.Fatal(err)
	}
	if _, err := root.Lookup("fresh.dat"); err != nil {
		t.Error("Update did not insert missing name")
	}
}

func TestSubdirectoriesAndGraph(t *testing.T) {
	fs, root := newRoot(t)
	sub, err := Create(fs, root, "subdir.")
	if err != nil {
		t.Fatal(err)
	}
	if !sub.FN().FV.FID.IsDirectory() {
		t.Fatal("subdirectory FID not in directory range")
	}
	f, _ := fs.Create("deep.dat")
	if err := sub.Insert("deep.dat", f.FN()); err != nil {
		t.Fatal(err)
	}
	// A file may appear in any number of directories.
	if err := root.Insert("alias.dat", f.FN()); err != nil {
		t.Fatal(err)
	}
	// Directories may form an arbitrary graph — even cycles.
	if err := sub.Insert("parent.", root.FN()); err != nil {
		t.Fatal(err)
	}

	var visited []string
	err = Walk(fs, fs.RootDir(), func(d *Directory) error {
		visited = append(visited, d.File().Name())
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(visited) != 2 {
		t.Errorf("walk visited %v, want root and subdir once each", visited)
	}

	// ResolveFV finds files in subdirectories.
	leader, err := ResolveFV(fs)(f.FN().FV)
	if err != nil {
		t.Fatal(err)
	}
	if leader != f.FN().Leader {
		t.Errorf("ResolveFV = %d, want %d", leader, f.FN().Leader)
	}
	fn, err := ResolveName(fs, "deep.dat")
	if err != nil {
		t.Fatal(err)
	}
	if fn.FV != f.FN().FV {
		t.Error("ResolveName found wrong file")
	}
	if _, err := ResolveName(fs, "nonesuch"); !errors.Is(err, ErrNotFound) {
		t.Errorf("ResolveName of missing: %v", err)
	}
}

func TestOpenRejectsNonDirectory(t *testing.T) {
	fs, _ := newRoot(t)
	f, _ := fs.Create("plain.dat")
	if _, err := Open(fs, f.FN()); !errors.Is(err, ErrNotDirectory) {
		t.Fatalf("got %v, want ErrNotDirectory", err)
	}
}

func TestLongNamesRejected(t *testing.T) {
	fs, root := newRoot(t)
	f, _ := fs.Create("ln.dat")
	long := strings.Repeat("z", maxName+1)
	if err := root.Insert(long, f.FN()); err == nil {
		t.Fatal("accepted over-long name")
	}
}

func TestRecoveryLadderEndToEnd(t *testing.T) {
	// Wire the directory layer into the file layer's ladder and verify that
	// a completely stale full name recovers through the directory.
	fs, root := newRoot(t)
	fs.SetRecovery(file.Recovery{ResolveFV: ResolveFV(fs)})

	f, _ := fs.Create("ladder.dat")
	var p [disk.PageWords]disk.Word
	p[0] = 0xCAFE
	if err := f.WritePage(1, &p, 2); err != nil {
		t.Fatal(err)
	}
	if err := root.Insert("ladder.dat", f.FN()); err != nil {
		t.Fatal(err)
	}

	stale := f.FN()
	stale.Leader = 4000
	g, err := fs.Open(stale)
	if err != nil {
		t.Fatalf("open via ladder: %v", err)
	}
	var buf [disk.PageWords]disk.Word
	if n, err := g.ReadPage(1, &buf); err != nil || n != 2 || buf[0] != 0xCAFE {
		t.Fatalf("ladder read: n=%d err=%v", n, err)
	}
}

func TestDamagedDirectoryReportsFormat(t *testing.T) {
	fs, root := newRoot(t)
	f, _ := fs.Create("x.dat")
	if err := root.Insert("x.dat", f.FN()); err != nil {
		t.Fatal(err)
	}
	// Scribble a nonsense entry length into the directory page.
	var buf [disk.PageWords]disk.Word
	n, err := root.File().ReadPage(1, &buf)
	if err != nil {
		t.Fatal(err)
	}
	buf[0] = 3 // < entryFixed+1
	if err := root.File().WritePage(1, &buf, n); err != nil {
		t.Fatal(err)
	}
	if _, err := root.Load(); !errors.Is(err, ErrFormat) {
		t.Fatalf("got %v, want ErrFormat", err)
	}
}
