// Package dir implements directories: files containing (string, full name)
// pairs (§3.4). Nothing about a directory is special to the file system — it
// is an ordinary file whose identifier lies in the reserved directory range —
// so directories may form a tree or an arbitrary directed graph, a file may
// appear in any number of directories, and losing a directory loses no
// files, only the names that pointed at them.
//
// Directory entries are deliberately "taken less seriously" than leader
// pages: the leader name is the absolute self-identification, directory
// entries are the lookup convenience. The Scavenger re-creates missing
// entries from leader names.
package dir

import (
	"errors"
	"fmt"
	"sort"

	"altoos/internal/disk"
	"altoos/internal/file"
)

// Errors returned by directory operations.
var (
	// ErrNotFound reports a name or FV absent from the directory.
	ErrNotFound = errors.New("dir: not found")
	// ErrExists reports an Insert of a name already present.
	ErrExists = errors.New("dir: name already present")
	// ErrFormat reports an unparseable directory page (damage the Scavenger
	// should look at).
	ErrFormat = errors.New("dir: malformed directory")
	// ErrNotDirectory reports an attempt to open a non-directory file as a
	// directory.
	ErrNotDirectory = errors.New("dir: not a directory file")
)

// Entry is one (string name, full name) pair.
type Entry struct {
	Name string
	FN   file.FN
}

// Directory is an open directory file.
type Directory struct {
	fs *file.FS
	f  *file.File
}

// Entry serialization, in words:
//
//	0    total entry length in words (>= entryFixed+1)
//	1,2  FID
//	3    version
//	4    leader address (hint)
//	5    name length in bytes
//	6..  name bytes, two per word
//
// A length word of endMark ends the directory; padMark skips to the next
// page boundary so entries never straddle pages.
const (
	entryFixed = 6
	endMark    = 0
	padMark    = 0xFFFF
)

// maxName bounds directory names to what a single entry can hold.
const maxName = 2 * (disk.PageWords - entryFixed - 1)

// Open opens an existing directory by full name.
func Open(fs *file.FS, fn file.FN) (*Directory, error) {
	if !fn.FV.FID.IsDirectory() {
		return nil, fmt.Errorf("%w: %v", ErrNotDirectory, fn.FV)
	}
	f, err := fs.Open(fn)
	if err != nil {
		return nil, err
	}
	return &Directory{fs: fs, f: f}, nil
}

// OpenRoot opens the root directory recorded in the disk descriptor.
func OpenRoot(fs *file.FS) (*Directory, error) {
	return Open(fs, fs.RootDir())
}

// Create makes a new, empty directory file with the given leader name and
// enters it into parent (which may be nil for a free-floating directory).
func Create(fs *file.FS, parent *Directory, name string) (*Directory, error) {
	f, err := fs.CreateDirectoryFile(name)
	if err != nil {
		return nil, err
	}
	d := &Directory{fs: fs, f: f}
	if err := d.store(nil); err != nil {
		return nil, err
	}
	if parent != nil {
		if err := parent.Insert(name, f.FN()); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// Adopt wraps an already-open directory file. The Scavenger uses it for
// files it has just verified, and for a recreated root.
func Adopt(fs *file.FS, f *file.File) *Directory {
	return &Directory{fs: fs, f: f}
}

// Clear rewrites the directory to contain no entries.
func (d *Directory) Clear() error { return d.store(nil) }

// Store replaces the directory's entire contents. The Scavenger uses it to
// write back a repaired entry list.
func (d *Directory) Store(entries []Entry) error { return d.store(entries) }

// FN returns the directory file's full name.
func (d *Directory) FN() file.FN { return d.f.FN() }

// File returns the underlying file, for the Scavenger and tools.
func (d *Directory) File() *file.File { return d.f }

// Load parses every entry. Damage is reported as ErrFormat; the caller (or
// the Scavenger) decides what to do about it.
func (d *Directory) Load() ([]Entry, error) {
	var entries []Entry
	var buf [disk.PageWords]disk.Word
	lastPN := d.f.LastPN()
	for pn := disk.Word(1); pn <= lastPN; pn++ {
		n, err := d.f.ReadPage(pn, &buf)
		if err != nil {
			return nil, err
		}
		words := (n + 1) / 2
		i := 0
		for i < words {
			switch buf[i] {
			case endMark:
				return entries, nil
			case padMark:
				i = words // next page
				continue
			}
			length := int(buf[i])
			if length < entryFixed+1 || i+length > words {
				return entries, fmt.Errorf("%w: entry length %d at page %d word %d", ErrFormat, length, pn, i)
			}
			nameLen := int(buf[i+5])
			if nameLen > 2*(length-entryFixed) {
				return entries, fmt.Errorf("%w: name length %d in %d-word entry", ErrFormat, nameLen, length)
			}
			var nb [maxName + 2]byte // stack scratch: one allocation per name, not two
			for j := 0; j < nameLen; j++ {
				w := buf[i+entryFixed+j/2]
				if j%2 == 0 {
					nb[j] = byte(w >> 8)
				} else {
					nb[j] = byte(w)
				}
			}
			entries = append(entries, Entry{
				Name: string(nb[:nameLen]),
				FN: file.FN{
					FV: disk.FV{
						FID:     disk.FID(buf[i+1])<<16 | disk.FID(buf[i+2]),
						Version: buf[i+3],
					},
					Leader: disk.VDA(buf[i+4]),
				},
			})
			i += length
		}
	}
	return entries, nil
}

// store rewrites the directory file to contain exactly these entries.
func (d *Directory) store(entries []Entry) error {
	var pages [][disk.PageWords]disk.Word
	var cur [disk.PageWords]disk.Word
	used := 0
	flush := func() {
		if used < disk.PageWords {
			cur[used] = endMark
		}
		pages = append(pages, cur)
		cur = [disk.PageWords]disk.Word{}
		used = 0
	}
	for _, e := range entries {
		if len(e.Name) > maxName {
			return fmt.Errorf("%w: name %q too long", file.ErrBadArg, e.Name)
		}
		length := entryFixed + (len(e.Name)+1)/2
		if used+length+1 > disk.PageWords { // +1 for a possible end mark
			cur[used] = padMark
			used = disk.PageWords // the pad consumes the rest of the page
			flush()
		}
		used = putEntry(&cur, used, e)
	}
	flush()

	// Write the pages: all but the last full, the last partial. When the
	// file shrinks, interior pages must be written while they are still
	// interior, then the file truncated, then the new tail written.
	n := len(pages)
	tail := pageTailLen(pages[n-1])
	lastPN := d.f.LastPN()
	if int(lastPN) > n {
		pn := disk.Word(0)
		for i := 0; i < n-1; i++ {
			pn++
			pg := pages[i]
			if err := d.f.WritePage(pn, &pg, disk.PageBytes); err != nil {
				return err
			}
		}
		if err := d.f.Truncate(disk.Word(n), tail); err != nil {
			return err
		}
		pg := pages[n-1]
		if err := d.f.WritePage(disk.Word(n), &pg, tail); err != nil {
			return err
		}
	} else {
		pn := disk.Word(0)
		for i, p := range pages {
			pn++
			length := disk.PageBytes
			if i == n-1 {
				length = tail
			}
			pg := p
			if err := d.f.WritePage(pn, &pg, length); err != nil {
				return err
			}
		}
	}
	return d.f.Sync()
}

// putEntry serializes one entry into the page at word offset used, which the
// caller has verified it fits at, and returns the offset after it. Both store
// and the appending Insert go through it, so their layouts are identical.
func putEntry(cur *[disk.PageWords]disk.Word, used int, e Entry) int {
	length := entryFixed + (len(e.Name)+1)/2
	cur[used] = disk.Word(length)
	cur[used+1] = disk.Word(e.FN.FV.FID >> 16)
	cur[used+2] = disk.Word(e.FN.FV.FID)
	cur[used+3] = e.FN.FV.Version
	cur[used+4] = disk.Word(e.FN.Leader)
	cur[used+5] = disk.Word(len(e.Name))
	for j := 0; j < len(e.Name); j++ {
		w := &cur[used+entryFixed+j/2]
		if j%2 == 0 {
			*w |= disk.Word(e.Name[j]) << 8
		} else {
			*w |= disk.Word(e.Name[j])
		}
	}
	return used + length
}

// entryNameIs compares the name of the entry at word offset i against name
// without decoding it into a buffer.
func entryNameIs(buf *[disk.PageWords]disk.Word, i int, name string) bool {
	if int(buf[i+5]) != len(name) {
		return false
	}
	for j := 0; j < len(name); j++ {
		w := buf[i+entryFixed+j/2]
		b := byte(w)
		if j%2 == 0 {
			b = byte(w >> 8)
		}
		if b != name[j] {
			return false
		}
	}
	return true
}

// pageTailLen returns the byte length store would assign the final page.
func pageTailLen(p [disk.PageWords]disk.Word) int {
	lastUsed := 0
	for j := disk.PageWords - 1; j >= 0; j-- {
		if p[j] != 0 {
			lastUsed = j + 1
			break
		}
	}
	length := 2 * (lastUsed + 1)
	if length >= disk.PageBytes {
		length = disk.PageBytes - 2
	}
	return length
}

// Lookup finds the full name bound to name.
func (d *Directory) Lookup(name string) (file.FN, error) {
	entries, err := d.Load()
	if err != nil {
		return file.FN{}, err
	}
	for _, e := range entries {
		if e.Name == name {
			return e.FN, nil
		}
	}
	return file.FN{}, fmt.Errorf("%w: %q", ErrNotFound, name)
}

// LookupFV finds an entry by (FID, version), returning its recorded leader
// address hint. Used by the §3.6 ladder when a program holds a valid FV but
// a stale address.
func (d *Directory) LookupFV(fv disk.FV) (file.FN, error) {
	entries, err := d.Load()
	if err != nil {
		return file.FN{}, err
	}
	for _, e := range entries {
		if e.FN.FV == fv {
			return e.FN, nil
		}
	}
	return file.FN{}, fmt.Errorf("%w: %v", ErrNotFound, fv)
}

// Insert binds name to fn. The name must not already be present.
//
// Insert appends: it scans the existing pages once (checking for the name in
// passing) and rewrites only the final page — plus one fresh page when the
// entry does not fit — rather than re-serializing the whole directory. The
// layout it produces is exactly the one store would.
func (d *Directory) Insert(name string, fn file.FN) error {
	if len(name) > maxName {
		return fmt.Errorf("%w: name %q too long", file.ErrBadArg, name)
	}
	length := entryFixed + (len(name)+1)/2
	lastPN := d.f.LastPN()
	var buf [disk.PageWords]disk.Word
	endPN, endAt := disk.Word(0), 0
scan:
	for pn := disk.Word(1); pn <= lastPN; pn++ {
		buf = [disk.PageWords]disk.Word{}
		n, err := d.f.ReadPage(pn, &buf)
		if err != nil {
			return err
		}
		words := (n + 1) / 2
		i := 0
		for i < words {
			switch buf[i] {
			case endMark:
				endPN, endAt = pn, i
				break scan
			case padMark:
				continue scan
			}
			l := int(buf[i])
			if l < entryFixed+1 || i+l > words {
				break scan // malformed: let the slow path report it
			}
			if entryNameIs(&buf, i, name) {
				return fmt.Errorf("%w: %q", ErrExists, name)
			}
			i += l
		}
	}
	if endPN == 0 || endPN != lastPN {
		// No end mark where the appending fast path expects one (a damaged
		// or oddly shaped directory): fall back to the full rewrite, which
		// also normalizes the layout.
		entries, err := d.Load()
		if err != nil {
			return err
		}
		for _, e := range entries {
			if e.Name == name {
				return fmt.Errorf("%w: %q", ErrExists, name)
			}
		}
		entries = append(entries, Entry{Name: name, FN: fn})
		return d.store(entries)
	}

	e := Entry{Name: name, FN: fn}
	if endAt+length+1 > disk.PageWords { // +1 for the end mark
		// Pad the tail page to a full interior page, then start a new tail.
		buf[endAt] = padMark
		if err := d.f.WritePage(endPN, &buf, disk.PageBytes); err != nil {
			return err
		}
		buf = [disk.PageWords]disk.Word{}
		used := putEntry(&buf, 0, e)
		buf[used] = endMark
		if err := d.f.WritePage(endPN+1, &buf, pageTailLen(buf)); err != nil {
			return err
		}
	} else {
		used := putEntry(&buf, endAt, e)
		buf[used] = endMark
		if err := d.f.WritePage(endPN, &buf, pageTailLen(buf)); err != nil {
			return err
		}
	}
	return d.f.Sync()
}

// Update rebinds name to fn (or inserts it if absent) — used to refresh a
// stale leader-address hint after recovery.
func (d *Directory) Update(name string, fn file.FN) error {
	entries, err := d.Load()
	if err != nil {
		return err
	}
	for i := range entries {
		if entries[i].Name == name {
			entries[i].FN = fn
			return d.store(entries)
		}
	}
	entries = append(entries, Entry{Name: name, FN: fn})
	return d.store(entries)
}

// Remove deletes the binding for name. The file itself is untouched: names
// and files are independent.
func (d *Directory) Remove(name string) error {
	entries, err := d.Load()
	if err != nil {
		return err
	}
	for i := range entries {
		if entries[i].Name == name {
			entries = append(entries[:i], entries[i+1:]...)
			return d.store(entries)
		}
	}
	return fmt.Errorf("%w: %q", ErrNotFound, name)
}

// List returns all entries sorted by name.
func (d *Directory) List() ([]Entry, error) {
	entries, err := d.Load()
	if err != nil {
		return nil, err
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	return entries, nil
}

// InitRoot populates a freshly formatted root directory with the standard
// self-describing entries: the root itself and the disk descriptor.
func InitRoot(fs *file.FS) (*Directory, error) {
	root, err := OpenRoot(fs)
	if err != nil {
		return nil, err
	}
	desc := file.FN{FV: disk.FV{FID: disk.DescriptorFID, Version: 1}, Leader: file.DescLeaderVDA}
	if err := root.Insert("SysDir.", root.FN()); err != nil {
		return nil, err
	}
	if err := root.Insert("DiskDescriptor.", desc); err != nil {
		return nil, err
	}
	return root, nil
}

// Walk visits every directory reachable from start (following entries whose
// identifiers are in the directory range), calling visit once per directory.
// Cycles are fine: the graph may be arbitrary (§3.4).
func Walk(fs *file.FS, start file.FN, visit func(*Directory) error) error {
	seen := map[disk.FV]bool{}
	queue := []file.FN{start}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		if seen[fn.FV] {
			continue
		}
		seen[fn.FV] = true
		d, err := Open(fs, fn)
		if err != nil {
			// A vanished subdirectory loses names, not files; keep walking.
			continue
		}
		if err := visit(d); err != nil {
			return err
		}
		entries, err := d.Load()
		if err != nil {
			continue
		}
		for _, e := range entries {
			if e.FN.FV.FID.IsDirectory() && !seen[e.FN.FV] {
				queue = append(queue, e.FN)
			}
		}
	}
	return nil
}

// ResolveFV searches every reachable directory for fv, the §3.6 "look up
// the FV in a directory" ladder step. It returns the recorded leader address.
func ResolveFV(fs *file.FS) func(fv disk.FV) (disk.VDA, error) {
	return func(fv disk.FV) (disk.VDA, error) {
		var found *file.FN
		err := Walk(fs, fs.RootDir(), func(d *Directory) error {
			if found != nil {
				return nil
			}
			if fn, err := d.LookupFV(fv); err == nil {
				found = &fn
			}
			return nil
		})
		if err != nil {
			return 0, err
		}
		if found == nil {
			return 0, fmt.Errorf("%w: %v in any directory", ErrNotFound, fv)
		}
		return found.Leader, nil
	}
}

// ResolveName searches every reachable directory for a string name,
// returning its full name — the ladder's next step after FV lookup fails.
func ResolveName(fs *file.FS, name string) (file.FN, error) {
	var found *file.FN
	err := Walk(fs, fs.RootDir(), func(d *Directory) error {
		if found != nil {
			return nil
		}
		if fn, err := d.Lookup(name); err == nil {
			found = &fn
		}
		return nil
	})
	if err != nil {
		return file.FN{}, err
	}
	if found == nil {
		return file.FN{}, fmt.Errorf("%w: %q in any directory", ErrNotFound, name)
	}
	return *found, nil
}
