package stream

import (
	"io"
	"sync"
)

// MemStream is a stream over an in-memory byte buffer — the cheapest
// concrete implementation of the abstract stream object, and the one
// programs use for scratch data. The zero value is an empty read/write
// stream.
type MemStream struct {
	buf    []byte
	pos    int
	closed bool
}

var (
	_ Stream     = (*MemStream)(nil)
	_ Positioner = (*MemStream)(nil)
)

// NewMem returns a stream positioned at the start of data (which is not
// copied).
func NewMem(data []byte) *MemStream { return &MemStream{buf: data} }

// Get implements Stream.
func (s *MemStream) Get() (Item, error) {
	if s.closed {
		return 0, ErrClosed
	}
	if s.pos >= len(s.buf) {
		return 0, ErrEnd
	}
	b := s.buf[s.pos]
	s.pos++
	return b, nil
}

// Put implements Stream: writes at the current position, extending the
// buffer at the end.
func (s *MemStream) Put(b Item) error {
	if s.closed {
		return ErrClosed
	}
	if s.pos < len(s.buf) {
		s.buf[s.pos] = b
	} else {
		s.buf = append(s.buf, b)
	}
	s.pos++
	return nil
}

// Reset implements Stream.
func (s *MemStream) Reset() error {
	if s.closed {
		return ErrClosed
	}
	s.pos = 0
	return nil
}

// EndOf implements Stream.
func (s *MemStream) EndOf() bool { return s.pos >= len(s.buf) }

// Close implements Stream.
func (s *MemStream) Close() error { s.closed = true; return nil }

// Pos implements Positioner.
func (s *MemStream) Pos() int { return s.pos }

// Len implements Positioner.
func (s *MemStream) Len() int { return len(s.buf) }

// Seek implements Positioner.
func (s *MemStream) Seek(pos int) error {
	if s.closed {
		return ErrClosed
	}
	if pos < 0 || pos > len(s.buf) {
		return ErrEnd
	}
	s.pos = pos
	return nil
}

// Bytes returns the accumulated buffer.
func (s *MemStream) Bytes() []byte { return s.buf }

// Keyboard is the keyboard input stream with the type-ahead buffer of §5.2:
// "the keyboard input buffer is present nearly always, so that any
// characters typed ahead by the user when running one program are saved for
// interpretation by the next". The buffer survives program switches because
// it lives at level 2, below everything a Junta removes.
//
// The producing side (TypeAhead) stands in for the interrupt-driven keyboard
// process of §2; Get is the consuming stream operation. Get on an empty
// buffer returns ErrNoInput — the caller polls, as Alto programs did.
type Keyboard struct {
	mu  sync.Mutex
	buf []byte
}

var _ Stream = (*Keyboard)(nil)

// NewKeyboard returns an empty keyboard stream.
func NewKeyboard() *Keyboard { return &Keyboard{} }

// TypeAhead appends user keystrokes to the buffer (the interrupt side).
func (k *Keyboard) TypeAhead(s string) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.buf = append(k.buf, s...)
}

// Get implements Stream.
func (k *Keyboard) Get() (Item, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if len(k.buf) == 0 {
		return 0, ErrNoInput
	}
	b := k.buf[0]
	k.buf = k.buf[1:]
	return b, nil
}

// Put implements Stream: the keyboard produces, it does not consume.
func (k *Keyboard) Put(Item) error { return ErrReadOnly }

// Reset implements Stream: discards pending type-ahead.
func (k *Keyboard) Reset() error {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.buf = nil
	return nil
}

// EndOf implements Stream: a keyboard never ends, it merely has nothing yet.
func (k *Keyboard) EndOf() bool { return false }

// Close implements Stream.
func (k *Keyboard) Close() error { return nil }

// Pending reports how many characters are typed ahead.
func (k *Keyboard) Pending() int {
	k.mu.Lock()
	defer k.mu.Unlock()
	return len(k.buf)
}

// Display is the display output stream: Put sends characters to the
// terminal. Ours writes to any io.Writer, which is what a simulated display
// is.
type Display struct {
	w io.Writer
}

var _ Stream = (*Display)(nil)

// NewDisplay returns a display stream over w.
func NewDisplay(w io.Writer) *Display { return &Display{w: w} }

// Get implements Stream: a display consumes, it does not produce.
func (d *Display) Get() (Item, error) { return 0, ErrWriteOnly }

// Put implements Stream.
func (d *Display) Put(b Item) error {
	_, err := d.w.Write([]byte{b})
	return err
}

// Reset implements Stream: clears nothing; the glass teletype scrolls.
func (d *Display) Reset() error { return nil }

// EndOf implements Stream.
func (d *Display) EndOf() bool { return false }

// Close implements Stream.
func (d *Display) Close() error { return nil }

// NullStream discards everything and produces nothing: the stream a program
// substitutes when it has rejected the system's I/O facilities.
type NullStream struct{}

var _ Stream = NullStream{}

// Get implements Stream.
func (NullStream) Get() (Item, error) { return 0, ErrEnd }

// Put implements Stream.
func (NullStream) Put(Item) error { return nil }

// Reset implements Stream.
func (NullStream) Reset() error { return nil }

// EndOf implements Stream.
func (NullStream) EndOf() bool { return true }

// Close implements Stream.
func (NullStream) Close() error { return nil }
