package stream

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"
	"testing/quick"

	"altoos/internal/disk"
	"altoos/internal/file"
	"altoos/internal/mem"
	"altoos/internal/sim"
	"altoos/internal/zone"
)

// rig bundles the substrates a disk stream needs.
type rig struct {
	fs *file.FS
	z  *zone.MemZone
	m  *mem.Memory
}

func newRig(t *testing.T) *rig {
	t.Helper()
	d, err := disk.NewDrive(disk.Diablo31(), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := file.Format(d)
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New()
	z, err := zone.New(m, 0x4000, 0x4000)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{fs: fs, z: z, m: m}
}

func (r *rig) open(t *testing.T, name string, mode Mode) *DiskStream {
	t.Helper()
	f, err := r.fs.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewDisk(f, r.z, r.m, mode)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDiskStreamWriteThenRead(t *testing.T) {
	r := newRig(t)
	s := r.open(t, "ws.dat", UpdateMode)
	msg := "An open operating system for a single-user machine.\n"
	// Write enough to cross several page boundaries.
	for i := 0; i < 40; i++ {
		if err := PutString(s, msg); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := r.fs.Open(s.File().FN())
	if err != nil {
		t.Fatal(err)
	}
	rd, err := NewDisk(f, r.z, r.m, ReadMode)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(rd)
	if err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte(msg), 40)
	if !bytes.Equal(got, want) {
		t.Fatalf("round trip: got %d bytes, want %d; first divergence at %d",
			len(got), len(want), firstDiff(got, want))
	}
	if err := rd.Close(); err != nil {
		t.Fatal(err)
	}
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

func TestDiskStreamSeekUpdate(t *testing.T) {
	r := newRig(t)
	s := r.open(t, "seek.dat", UpdateMode)
	for i := 0; i < 2000; i++ {
		if err := s.Put(byte(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Patch bytes in the middle, across a page boundary.
	if err := s.Seek(510); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := s.Put(0xEE); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Seek(508); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		b, err := s.Get()
		if err != nil {
			t.Fatal(err)
		}
		want := byte(508 + i)
		if i >= 2 && i < 6 {
			want = 0xEE
		}
		if b != want {
			t.Fatalf("byte %d = %#x, want %#x", 508+i, b, want)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDiskStreamModes(t *testing.T) {
	r := newRig(t)
	s := r.open(t, "ro.dat", UpdateMode)
	if err := PutString(s, "data"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	f, _ := r.fs.Open(s.File().FN())
	rd, err := NewDisk(f, r.z, r.m, ReadMode)
	if err != nil {
		t.Fatal(err)
	}
	if err := rd.Put('x'); !errors.Is(err, ErrReadOnly) {
		t.Errorf("Put on read stream: %v", err)
	}
	rd.Close()

	w := r.open(t, "wo.dat", WriteMode)
	if _, err := w.Get(); !errors.Is(err, ErrWriteOnly) {
		t.Errorf("Get on write stream: %v", err)
	}
	w.Close()
}

func TestDiskStreamWriteModeTruncates(t *testing.T) {
	r := newRig(t)
	s := r.open(t, "tr.dat", UpdateMode)
	if err := PutString(s, "a long first version of the file"); err != nil {
		t.Fatal(err)
	}
	s.Close()

	f, _ := r.fs.Open(s.File().FN())
	w, err := NewDisk(f, r.z, r.m, WriteMode)
	if err != nil {
		t.Fatal(err)
	}
	if err := PutString(w, "short"); err != nil {
		t.Fatal(err)
	}
	w.Close()

	g, _ := r.fs.Open(s.File().FN())
	rd, _ := NewDisk(g, r.z, r.m, ReadMode)
	got, _ := ReadAll(rd)
	rd.Close()
	if string(got) != "short" {
		t.Fatalf("got %q", got)
	}
}

func TestDiskStreamResetAndEndOf(t *testing.T) {
	r := newRig(t)
	s := r.open(t, "re.dat", UpdateMode)
	if err := PutString(s, "ab"); err != nil {
		t.Fatal(err)
	}
	if !s.EndOf() {
		t.Error("not at end after writing")
	}
	if err := s.Reset(); err != nil {
		t.Fatal(err)
	}
	if s.EndOf() {
		t.Error("at end after Reset")
	}
	b, err := s.Get()
	if err != nil || b != 'a' {
		t.Fatalf("Get after Reset = %c, %v", b, err)
	}
	s.Close()
	if _, err := s.Get(); !errors.Is(err, ErrClosed) {
		t.Errorf("Get after Close: %v", err)
	}
}

func TestDiskStreamReleasesZoneStorage(t *testing.T) {
	r := newRig(t)
	before := r.z.Stats().InUse
	s := r.open(t, "z.dat", UpdateMode)
	if r.z.Stats().InUse <= before {
		t.Error("stream did not allocate from the zone")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if r.z.Stats().InUse != before {
		t.Error("stream did not release its buffer")
	}
	if err := s.Close(); err != nil {
		t.Error("double close should be harmless:", err)
	}
}

func TestWordHelpers(t *testing.T) {
	s := NewMem(nil)
	if err := PutWord(s, 0xBEEF); err != nil {
		t.Fatal(err)
	}
	s.Reset()
	w, err := GetWord(s)
	if err != nil || w != 0xBEEF {
		t.Fatalf("GetWord = %#x, %v", w, err)
	}
}

func TestPump(t *testing.T) {
	src := NewMem([]byte("pump me"))
	dst := NewMem(nil)
	n, err := Pump(dst, src)
	if err != nil || n != 7 {
		t.Fatalf("Pump = %d, %v", n, err)
	}
	if string(dst.Bytes()) != "pump me" {
		t.Fatalf("dst = %q", dst.Bytes())
	}
}

func TestReaderWriterAdapters(t *testing.T) {
	s := NewMem(nil)
	if _, err := io.WriteString(Writer{s}, "adapters"); err != nil {
		t.Fatal(err)
	}
	s.Reset()
	got, err := io.ReadAll(Reader{s})
	if err != nil || string(got) != "adapters" {
		t.Fatalf("ReadAll = %q, %v", got, err)
	}
}

func TestKeyboardTypeAhead(t *testing.T) {
	k := NewKeyboard()
	if _, err := k.Get(); !errors.Is(err, ErrNoInput) {
		t.Fatalf("empty keyboard: %v", err)
	}
	k.TypeAhead("hi")
	if k.Pending() != 2 {
		t.Error("pending wrong")
	}
	b, err := k.Get()
	if err != nil || b != 'h' {
		t.Fatalf("Get = %c, %v", b, err)
	}
	if k.EndOf() {
		t.Error("keyboard claims EndOf")
	}
	if err := k.Put('x'); !errors.Is(err, ErrReadOnly) {
		t.Error("keyboard accepted Put")
	}
	k.Reset()
	if k.Pending() != 0 {
		t.Error("Reset did not drain")
	}
}

func TestDisplay(t *testing.T) {
	var buf bytes.Buffer
	d := NewDisplay(&buf)
	if err := PutString(d, "out"); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "out" {
		t.Fatalf("display wrote %q", buf.String())
	}
	if _, err := d.Get(); !errors.Is(err, ErrWriteOnly) {
		t.Error("display produced input")
	}
}

func TestNullStream(t *testing.T) {
	var n NullStream
	if err := n.Put('x'); err != nil {
		t.Error(err)
	}
	if _, err := n.Get(); !errors.Is(err, ErrEnd) {
		t.Error("null stream produced data")
	}
	if !n.EndOf() {
		t.Error("null stream not at end")
	}
}

func TestMemStreamSeekBounds(t *testing.T) {
	s := NewMem([]byte("abc"))
	if err := s.Seek(3); err != nil {
		t.Error(err)
	}
	if err := s.Seek(4); err == nil {
		t.Error("seek past end accepted")
	}
	if err := s.Seek(-1); err == nil {
		t.Error("negative seek accepted")
	}
}

// Property: any sequence of Put bytes through a disk stream reads back
// identically, regardless of how it aligns with page boundaries.
func TestDiskStreamRoundTripProperty(t *testing.T) {
	r := newRig(t)
	i := 0
	f := func(seed uint64, sizeRaw uint16) bool {
		i++
		rnd := sim.NewRand(seed)
		size := int(sizeRaw) % 3000
		data := make([]byte, size)
		for j := range data {
			data[j] = byte(rnd.Word())
		}
		s := r.open(t, fmt.Sprintf("prop-%d.dat", i), UpdateMode)
		for _, b := range data {
			if err := s.Put(b); err != nil {
				return false
			}
		}
		if err := s.Close(); err != nil {
			return false
		}
		fh, err := r.fs.Open(s.File().FN())
		if err != nil {
			return false
		}
		rd, err := NewDisk(fh, r.z, r.m, ReadMode)
		if err != nil {
			return false
		}
		got, err := ReadAll(rd)
		if err != nil {
			return false
		}
		rd.Close()
		return bytes.Equal(got, data)
	}
	cfg := &quick.Config{MaxCount: 15}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
