package stream

import (
	"errors"
	"fmt"

	"altoos/internal/disk"
	"altoos/internal/file"
	"altoos/internal/mem"
	"altoos/internal/trace"
	"altoos/internal/zone"
)

// Mode selects a disk stream's direction.
type Mode int

const (
	// ReadMode streams an existing file's bytes.
	ReadMode Mode = iota
	// WriteMode truncates the file and streams new bytes into it.
	WriteMode
	// UpdateMode allows both, with Seek.
	UpdateMode
)

// DiskStream is the standard disk-file stream: a byte stream over a file,
// buffering one page at a time. Its page buffer is acquired from a zone in
// simulated main memory — the paper's disk-stream constructor "takes as
// parameters two other objects: a disk object which implements operations to
// access the storage on which the file resides, and a zone object which is
// used to acquire and release working storage" (§2). The disk object is
// carried by the file handle.
type DiskStream struct {
	f    *file.File
	z    zone.Zone
	m    *mem.Memory
	buf  mem.Addr // PageWords words of buffer in simulated memory
	mode Mode

	pn      disk.Word // buffered page number; 0 = nothing buffered
	pageLen int       // valid bytes in the buffered page
	pos     int       // absolute byte position in the file
	dirty   bool
	closed  bool

	// Chained-transfer windows — the controller's scatter/gather staging,
	// distinct from the zone-backed working page above. A sequential reader
	// prefetches a run of interior pages as one chain; a sequential updater
	// collects rewritten interior pages and writes them back as one chain.
	ra      [windowPages][disk.PageWords]disk.Word // read-ahead (ReadMode only)
	raStart disk.Word                              // first page in ra; 0 = empty
	raN     int
	seqNext disk.Word                              // page that would continue a sequential read
	wb      [windowPages][disk.PageWords]disk.Word // write-behind (UpdateMode only)
	wbStart disk.Word                              // first page in wb; 0 = empty
	wbN     int
}

// windowPages bounds both transfer windows: one chain moves at most this
// many pages, so a window costs 4 KB of staging and the drive still gets
// runs long enough to stream a whole track side.
const windowPages = 8

var (
	_ Stream     = (*DiskStream)(nil)
	_ Positioner = (*DiskStream)(nil)
	_ Flusher    = (*DiskStream)(nil)
)

// NewDisk opens a stream over f. The zone and memory provide the working
// storage for the page buffer, in the open style: callers pick the zone; the
// system's core supplies its free-storage zone by default.
func NewDisk(f *file.File, z zone.Zone, m *mem.Memory, mode Mode) (*DiskStream, error) {
	a, err := z.Alloc(disk.PageWords)
	if err != nil {
		return nil, fmt.Errorf("stream: no room for page buffer: %w", err)
	}
	s := &DiskStream{f: f, z: z, m: m, buf: a, mode: mode}
	if mode == WriteMode {
		if err := f.Truncate(1, 0); err != nil {
			z.Free(a)
			return nil, err
		}
	}
	dev := f.Device()
	if rec := trace.Of(dev); rec != nil {
		rec.Emit(dev.Clock().Now(), trace.KindStreamOpen, f.Name(), int64(f.FN().FV.FID), int64(mode))
		rec.Add("stream.open", 1)
	}
	return s, nil
}

// loadPage brings page pn into the buffer, flushing the old one.
func (s *DiskStream) loadPage(pn disk.Word) error {
	if s.pn == pn {
		return nil
	}
	if err := s.flushBuf(); err != nil {
		return err
	}
	// A page sitting in the write-behind window is newer than the disk.
	if s.wbN > 0 && pn >= s.wbStart && pn < s.wbStart+disk.Word(s.wbN) {
		s.fill(&s.wb[pn-s.wbStart], disk.PageBytes)
		s.pn = pn
		return nil
	}
	// A page in the read-ahead window needs no disk operation.
	if s.raN > 0 && pn >= s.raStart && pn < s.raStart+disk.Word(s.raN) {
		s.fill(&s.ra[pn-s.raStart], disk.PageBytes)
		s.pn = pn
		s.seqNext = pn + 1
		return nil
	}
	// Sequential reading of interior pages prefetches a run as one chained
	// transfer: the drive makes a single scheduling decision for the window.
	if s.mode == ReadMode && pn == s.seqNext && pn >= 1 {
		if k := int(s.f.LastPN()) - int(pn); k >= 2 {
			if k > windowPages {
				k = windowPages
			}
			if err := s.f.ReadPages(pn, s.ra[:k]); err == nil {
				s.raStart, s.raN = pn, k
				s.fill(&s.ra[0], disk.PageBytes)
				s.pn = pn
				s.seqNext = pn + 1
				return nil
			}
			// Fall through to the single-page ladder on any trouble.
		}
	}
	var v [disk.PageWords]disk.Word
	n, err := s.f.ReadPage(pn, &v)
	if err != nil {
		return err
	}
	s.fill(&v, n)
	s.pn = pn
	s.seqNext = pn + 1
	return nil
}

// fill copies a page into the zone-backed buffer.
func (s *DiskStream) fill(v *[disk.PageWords]disk.Word, n int) {
	for i, w := range v {
		s.m.Store(s.buf+mem.Addr(i), w)
	}
	s.pageLen = n
}

// Flush writes the buffered page and drains the write-behind window, so
// everything the stream holds is on the disk when it returns.
func (s *DiskStream) Flush() error {
	if err := s.flushBuf(); err != nil {
		return err
	}
	return s.flushPending()
}

// flushBuf retires the buffered page if it has unwritten changes. A full
// interior page rewritten in UpdateMode joins the write-behind window when it
// extends the window's run; anything else is written immediately (after the
// window, to keep writes in order).
func (s *DiskStream) flushBuf() error {
	if !s.dirty || s.pn == 0 {
		return nil
	}
	var v [disk.PageWords]disk.Word
	for i := range v {
		v[i] = s.m.Load(s.buf + mem.Addr(i))
	}
	lastPN := s.f.LastPN()
	length := s.pageLen
	if s.pn < lastPN {
		length = disk.PageBytes
	}
	if s.mode == UpdateMode && s.pn < lastPN &&
		(s.wbN == 0 || s.pn == s.wbStart+disk.Word(s.wbN)) && s.wbN < windowPages {
		if s.wbN == 0 {
			s.wbStart = s.pn
		}
		s.wb[s.wbN] = v
		s.wbN++
		s.dirty = false
		if s.wbN == windowPages {
			return s.flushPending()
		}
		return nil
	}
	if err := s.flushPending(); err != nil {
		return err
	}
	if err := s.f.WritePage(s.pn, &v, length); err != nil {
		return err
	}
	s.dirty = false
	if length == disk.PageBytes && s.pn == lastPN {
		// The write appended a fresh empty page; our notion of the file's
		// shape is refreshed lazily on the next loadPage.
		s.pn = 0
	}
	return nil
}

// flushPending writes the write-behind window as one chained transfer.
func (s *DiskStream) flushPending() error {
	if s.wbN == 0 {
		return nil
	}
	n := s.wbN
	s.wbN = 0
	return s.f.WritePages(s.wbStart, s.wb[:n])
}

// bufByte reads byte i of the buffered page.
func (s *DiskStream) bufByte(i int) byte {
	w := s.m.Load(s.buf + mem.Addr(i/2))
	if i%2 == 0 {
		return byte(w >> 8)
	}
	return byte(w)
}

// setBufByte writes byte i of the buffered page.
func (s *DiskStream) setBufByte(i int, b byte) {
	a := s.buf + mem.Addr(i/2)
	w := s.m.Load(a)
	if i%2 == 0 {
		w = w&0x00FF | uint16(b)<<8
	} else {
		w = w&0xFF00 | uint16(b)
	}
	s.m.Store(a, w)
}

// pageFor returns the page number holding byte position pos.
func pageFor(pos int) (disk.Word, int) {
	//altovet:allow wordwidth callers bound pos by Len(), and page numbers fit a Word on any admissible disk
	return disk.Word(pos/disk.PageBytes + 1), pos % disk.PageBytes
}

// Get implements Stream.
func (s *DiskStream) Get() (Item, error) {
	if s.closed {
		return 0, ErrClosed
	}
	if s.mode == WriteMode {
		return 0, ErrWriteOnly
	}
	if s.pos >= s.Len() {
		return 0, ErrEnd
	}
	pn, off := pageFor(s.pos)
	if err := s.loadPage(pn); err != nil {
		return 0, err
	}
	if off >= s.pageLen {
		return 0, ErrEnd
	}
	b := s.bufByte(off)
	s.pos++
	return b, nil
}

// Put implements Stream.
func (s *DiskStream) Put(b Item) error {
	if s.closed {
		return ErrClosed
	}
	if s.mode == ReadMode {
		return ErrReadOnly
	}
	pn, off := pageFor(s.pos)
	lastPN := s.f.LastPN()
	if pn > lastPN {
		return fmt.Errorf("stream: put past end at %d", s.pos)
	}
	if err := s.loadPage(pn); err != nil {
		return err
	}
	s.setBufByte(off, b)
	s.dirty = true
	s.pos++
	if off+1 > s.pageLen {
		s.pageLen = off + 1
	}
	// Filling the last page flushes it immediately, which also extends the
	// file (allocation happens exactly when a page fills, as on the Alto).
	if s.pageLen == disk.PageBytes && pn == lastPN {
		if err := s.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// EndOf implements Stream.
func (s *DiskStream) EndOf() bool { return s.pos >= s.Len() }

// Reset implements Stream: back to the beginning.
func (s *DiskStream) Reset() error {
	if s.closed {
		return ErrClosed
	}
	if err := s.Flush(); err != nil {
		return err
	}
	s.pos = 0
	return nil
}

// Pos implements Positioner.
func (s *DiskStream) Pos() int { return s.pos }

// Len implements Positioner.
func (s *DiskStream) Len() int {
	if s.dirty {
		// Count unflushed growth of the last page.
		lastPN, lastLen := s.f.LastPage()
		if s.pn == lastPN && s.pageLen > lastLen {
			return s.f.Size() + (s.pageLen - lastLen)
		}
	}
	return s.f.Size()
}

// Seek implements Positioner.
func (s *DiskStream) Seek(pos int) error {
	if s.closed {
		return ErrClosed
	}
	if pos < 0 || pos > s.Len() {
		return fmt.Errorf("stream: seek to %d outside [0, %d]", pos, s.Len())
	}
	s.pos = pos
	return nil
}

// Close implements Stream: flush, sync the leader, release the buffer.
func (s *DiskStream) Close() error {
	if s.closed {
		return nil
	}
	flushErr := s.Flush()
	syncErr := s.f.Sync()
	freeErr := s.z.Free(s.buf)
	s.closed = true
	dev := s.f.Device()
	if rec := trace.Of(dev); rec != nil {
		rec.Emit(dev.Clock().Now(), trace.KindStreamClose, s.f.Name(), int64(s.f.FN().FV.FID), int64(s.mode))
		rec.Add("stream.close", 1)
	}
	if flushErr != nil {
		return flushErr
	}
	if syncErr != nil {
		return syncErr
	}
	return freeErr
}

// File returns the underlying file handle.
func (s *DiskStream) File() *file.File { return s.f }

// errors.Is support sanity: ensure we wrap the sentinel properly elsewhere.
var _ = errors.Is
