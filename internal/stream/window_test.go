package stream

import (
	"bytes"
	"testing"

	"altoos/internal/disk"
)

// The transfer windows are invisible in the Stream interface; these tests pin
// the two properties that matter: sequential traffic actually goes through
// chained transfers, and the windows never change what a reader observes.

// TestDiskStreamReadAheadWindow checks that a sequential read of a multi-page
// file uses chained transfers and still returns exactly the written bytes.
func TestDiskStreamReadAheadWindow(t *testing.T) {
	r := newRig(t)
	s := r.open(t, "ra.dat", WriteMode)
	want := make([]byte, 6*disk.PageBytes+37)
	for i := range want {
		want[i] = byte(i*7 + i>>8)
	}
	for _, b := range want {
		if err := s.Put(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	d, ok := r.fs.Device().(*disk.Drive)
	if !ok {
		t.Fatal("rig device is not a *disk.Drive")
	}
	before := d.Stats().Chains

	f, err := r.fs.Open(s.File().FN())
	if err != nil {
		t.Fatal(err)
	}
	rd, err := NewDisk(f, r.z, r.m, ReadMode)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(rd)
	if err != nil {
		t.Fatal(err)
	}
	if err := rd.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("read-ahead returned wrong bytes: %d vs %d, first divergence at %d",
			len(got), len(want), firstDiff(got, want))
	}
	if d.Stats().Chains == before {
		t.Error("sequential read of a 7-page file issued no chained transfer")
	}
}

// TestDiskStreamWriteBehindWindow rewrites a file sequentially in UpdateMode:
// the interior pages should retire through the write-behind window as chains,
// the stream must serve its own unflushed window back to a reader, and after
// Close the disk must hold the new bytes.
func TestDiskStreamWriteBehindWindow(t *testing.T) {
	r := newRig(t)
	s := r.open(t, "wb.dat", UpdateMode)
	n := 5*disk.PageBytes + 11
	for i := 0; i < n; i++ {
		if err := s.Put(byte(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Reset(); err != nil {
		t.Fatal(err)
	}

	d, ok := r.fs.Device().(*disk.Drive)
	if !ok {
		t.Fatal("rig device is not a *disk.Drive")
	}
	before := d.Stats().Chains

	// Sequential rewrite of every byte: interior pages go dirty one after
	// another, exactly the write-behind pattern.
	want := make([]byte, n)
	for i := 0; i < n; i++ {
		want[i] = byte(255 - i%251)
		if err := s.Put(want[i]); err != nil {
			t.Fatal(err)
		}
	}

	// Read-your-writes: seek back while pages may still sit in the window.
	if err := s.Seek(0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		b, err := s.Get()
		if err != nil {
			t.Fatalf("Get at %d: %v", i, err)
		}
		if b != want[i] {
			t.Fatalf("byte %d read back as %#x before flush, want %#x", i, b, want[i])
		}
	}

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if d.Stats().Chains == before {
		t.Error("sequential rewrite of a 6-page file issued no chained transfer")
	}

	// A fresh stream sees the new contents from the disk.
	f, err := r.fs.Open(s.File().FN())
	if err != nil {
		t.Fatal(err)
	}
	rd, err := NewDisk(f, r.z, r.m, ReadMode)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(rd)
	if err != nil {
		t.Fatal(err)
	}
	if err := rd.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("write-behind lost data: first divergence at %d", firstDiff(got, want))
	}
}
