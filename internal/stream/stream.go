// Package stream implements the OS6-style stream objects of §2: "a stream
// is an object that can produce or consume items", with a standard set of
// operations — Get, Put, Reset, a test for end of input — invoked through
// the object itself, so that any number of concrete implementations can
// coexist and a program written against the standard operations works with
// all of them.
//
// The paper's streams are BCPL records whose first components are the
// procedures implementing the operations; in Go the same design is a small
// interface. Non-standard operations (set position, flush) are narrower
// interfaces a program may ask for, "sacrificing compatibility" exactly as
// the paper notes.
//
// The disk-file stream constructor takes the two substrate objects of the
// paper's example: a zone to acquire working storage from (its page buffer
// lives in simulated main memory) and the file it covers (which carries its
// own disk device).
package stream

import (
	"errors"
	"io"
)

// Item is what streams produce and consume. The Alto's streams carried
// bytes or words depending on the stream; ours carry bytes, with word
// helpers layered on top, which is how the byte-granular disk streams
// worked.
type Item = byte

// Standard errors.
var (
	// ErrEnd reports a Get at end of input. It wraps io.EOF so stdlib
	// helpers interoperate.
	ErrEnd = io.EOF
	// ErrNoInput reports an empty interactive source (keyboard type-ahead):
	// nothing now, but more may come.
	ErrNoInput = errors.New("stream: no input available")
	// ErrReadOnly reports a Put on a stream opened for reading.
	ErrReadOnly = errors.New("stream: read only")
	// ErrWriteOnly reports a Get on a stream opened for writing.
	ErrWriteOnly = errors.New("stream: write only")
	// ErrClosed reports use after Close.
	ErrClosed = errors.New("stream: closed")
)

// Stream is the standard set of operations defined on every stream (§2).
// Normally only one of Get and Put is defined; the other returns
// ErrReadOnly/ErrWriteOnly.
type Stream interface {
	// Get returns the next item from the stream.
	Get() (Item, error)
	// Put appends an item to the stream.
	Put(Item) error
	// Reset puts the stream into its standard initial state; the exact
	// meaning depends on the stream's type.
	Reset() error
	// EndOf reports whether the stream is at end of input.
	EndOf() bool
	// Close releases the stream's working storage and flushes any state.
	Close() error
}

// Positioner is the non-standard random-access operation some streams
// implement ("read position in a disk file").
type Positioner interface {
	// Pos returns the current byte position.
	Pos() int
	// Seek sets the byte position.
	Seek(pos int) error
	// Len returns the stream's current length in bytes.
	Len() int
}

// Flusher is the non-standard operation that forces buffered items out.
type Flusher interface {
	Flush() error
}

// GetWord reads two items as one big-endian word.
func GetWord(s Stream) (uint16, error) {
	hi, err := s.Get()
	if err != nil {
		return 0, err
	}
	lo, err := s.Get()
	if err != nil {
		return 0, err
	}
	return uint16(hi)<<8 | uint16(lo), nil
}

// PutWord writes one word as two big-endian items.
func PutWord(s Stream, w uint16) error {
	if err := s.Put(byte(w >> 8)); err != nil {
		return err
	}
	return s.Put(byte(w))
}

// PutString writes every byte of str.
func PutString(s Stream, str string) error {
	for i := 0; i < len(str); i++ {
		if err := s.Put(str[i]); err != nil {
			return err
		}
	}
	return nil
}

// Pump copies items from src to dst until src ends, returning the number of
// items moved. This is the OS6 idiom for connecting streams.
func Pump(dst, src Stream) (int, error) {
	n := 0
	for {
		b, err := src.Get()
		if errors.Is(err, ErrEnd) {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		if err := dst.Put(b); err != nil {
			return n, err
		}
		n++
	}
}

// ReadAll drains src into a byte slice.
func ReadAll(src Stream) ([]byte, error) {
	var out []byte
	for {
		b, err := src.Get()
		if errors.Is(err, ErrEnd) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, b)
	}
}

// Reader adapts a Stream to io.Reader.
type Reader struct{ S Stream }

// Read implements io.Reader.
func (r Reader) Read(p []byte) (int, error) {
	n := 0
	for n < len(p) {
		b, err := r.S.Get()
		if err != nil {
			if errors.Is(err, ErrEnd) && n > 0 {
				return n, nil
			}
			return n, err
		}
		p[n] = b
		n++
	}
	return n, nil
}

// Writer adapts a Stream to io.Writer.
type Writer struct{ S Stream }

// Write implements io.Writer.
func (w Writer) Write(p []byte) (int, error) {
	for i, b := range p {
		if err := w.S.Put(b); err != nil {
			return i, err
		}
	}
	return len(p), nil
}
