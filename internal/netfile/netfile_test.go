package netfile

import (
	"bytes"
	"errors"
	"testing"

	"altoos/internal/dir"
	"altoos/internal/disk"
	"altoos/internal/ether"
	"altoos/internal/file"
	"altoos/internal/mem"
	"altoos/internal/sim"
	"altoos/internal/stream"
	"altoos/internal/zone"
)

// net builds a server machine and a client station on one wire.
func netFixture(t *testing.T) (*Server, *Client, *file.FS) {
	t.Helper()
	clock := sim.NewClock()
	wire := ether.New(clock)

	d, err := disk.NewDrive(disk.Diablo31(), 1, clock)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := file.Format(d)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dir.InitRoot(fs); err != nil {
		t.Fatal(err)
	}
	m := mem.New()
	z, err := zone.New(m, 0x4000, 0x4000)
	if err != nil {
		t.Fatal(err)
	}
	sst, err := wire.Attach(1)
	if err != nil {
		t.Fatal(err)
	}
	cst, err := wire.Attach(2)
	if err != nil {
		t.Fatal(err)
	}
	return NewServer(fs, sst, z, m), NewClient(cst), fs
}

// pump alternates server and client polls until the client finishes.
func pump(t *testing.T, s *Server, c *Client) {
	t.Helper()
	for i := 0; i < 10000 && !c.Done(); i++ {
		if _, err := s.Poll(); err != nil {
			t.Fatalf("server: %v", err)
		}
		if _, err := c.Poll(); err != nil {
			return // the client records its failure; Result reports it
		}
	}
	if !c.Done() {
		t.Fatal("transfer never completed")
	}
}

// finishStore pumps both ends until the server confirms the store. Since
// the reliable transport landed, a store completes by acknowledgment (the
// client polls for the server's confirmation), not by fire-and-forget.
func finishStore(t *testing.T, s *Server, c *Client) {
	t.Helper()
	pump(t, s, c)
	if _, err := c.Result(); err != nil {
		t.Fatalf("store: %v", err)
	}
}

func seed(t *testing.T, fs *Server, name string, body []byte) {
	t.Helper()
	f, err := fs.FS.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	root, err := dir.OpenRoot(fs.FS)
	if err != nil {
		t.Fatal(err)
	}
	if err := root.Insert(name, f.FN()); err != nil {
		t.Fatal(err)
	}
	s, err := stream.NewDisk(f, fs.Zone, fs.Mem, stream.WriteMode)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range body {
		if err := s.Put(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFetchSmallFile(t *testing.T) {
	srv, cli, _ := netFixture(t)
	seed(t, srv, "memo.txt", []byte("standardized below all software"))
	if err := cli.Request(1, "memo.txt"); err != nil {
		t.Fatal(err)
	}
	pump(t, srv, cli)
	got, err := cli.Result()
	if err != nil || string(got) != "standardized below all software" {
		t.Fatalf("got %q, %v", got, err)
	}
}

func TestFetchMultiPacketFile(t *testing.T) {
	srv, cli, _ := netFixture(t)
	r := sim.NewRand(3)
	body := make([]byte, 3*dataBytesPerPacket+123)
	for i := range body {
		body[i] = byte(r.Word())
	}
	seed(t, srv, "big.bin", body)
	if err := cli.Request(1, "big.bin"); err != nil {
		t.Fatal(err)
	}
	pump(t, srv, cli)
	got, err := cli.Result()
	if err != nil || !bytes.Equal(got, body) {
		t.Fatalf("multi-packet fetch: %d bytes, err %v", len(got), err)
	}
}

func TestFetchMissingFileReportsRemoteError(t *testing.T) {
	srv, cli, _ := netFixture(t)
	if err := cli.Request(1, "ghost.txt"); err != nil {
		t.Fatal(err)
	}
	pump(t, srv, cli)
	_, err := cli.Result()
	if !errors.Is(err, ErrRemote) {
		t.Fatalf("got %v, want ErrRemote", err)
	}
}

func TestStoreCreatesFileOnServer(t *testing.T) {
	srv, cli, fs := netFixture(t)
	body := []byte("uploaded across the wire")
	if err := cli.Store(1, "upload.txt", body); err != nil {
		t.Fatal(err)
	}
	finishStore(t, srv, cli)
	fn, err := dir.ResolveName(fs, "upload.txt")
	if err != nil {
		t.Fatal(err)
	}
	f, err := fs.Open(fn)
	if err != nil {
		t.Fatal(err)
	}
	s, err := stream.NewDisk(f, srv.Zone, srv.Mem, stream.ReadMode)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := stream.ReadAll(s)
	s.Close()
	if !bytes.Equal(got, body) {
		t.Fatalf("stored %q", got)
	}
}

func TestStoreThenFetchRoundTrip(t *testing.T) {
	srv, cli, _ := netFixture(t)
	body := bytes.Repeat([]byte("round and round "), 100)
	if err := cli.Store(1, "rt.txt", body); err != nil {
		t.Fatal(err)
	}
	finishStore(t, srv, cli)
	if err := cli.Request(1, "rt.txt"); err != nil {
		t.Fatal(err)
	}
	pump(t, srv, cli)
	got, err := cli.Result()
	if err != nil || !bytes.Equal(got, body) {
		t.Fatalf("round trip: %d bytes, %v", len(got), err)
	}
}

func TestSecondRequestWhileBusy(t *testing.T) {
	srv, cli, _ := netFixture(t)
	seed(t, srv, "a.txt", []byte("a"))
	if err := cli.Request(1, "a.txt"); err != nil {
		t.Fatal(err)
	}
	if err := cli.Request(1, "a.txt"); !errors.Is(err, ErrBusy) {
		t.Fatalf("got %v, want ErrBusy", err)
	}
	pump(t, srv, cli)
	if _, err := cli.Result(); err != nil {
		t.Fatal(err)
	}
	// After Result the client is reusable.
	if err := cli.Request(1, "a.txt"); err != nil {
		t.Fatal(err)
	}
	pump(t, srv, cli)
}

func TestDataPackingProperty(t *testing.T) {
	r := sim.NewRand(9)
	for i := 0; i < 200; i++ {
		n := r.Intn(dataBytesPerPacket + 1)
		data := make([]byte, n)
		for j := range data {
			data[j] = byte(r.Word())
		}
		seq := r.Word()
		gotSeq, got, err := unpackData(packData(seq, data))
		if err != nil || gotSeq != seq || !bytes.Equal(got, data) {
			t.Fatalf("pack/unpack: n=%d seq=%d err=%v", n, seq, err)
		}
	}
}

// TestTransferSurvivesLossyWire is what the v1 framing could not do: with
// the medium dropping, duplicating and corrupting packets, a round trip
// still completes intact — no ErrSequence, just retransmissions.
func TestTransferSurvivesLossyWire(t *testing.T) {
	clock := sim.NewClock()
	wire := ether.New(clock)
	wire.InjectFaults(ether.FaultConfig{
		Seed:    11,
		Drop:    ether.Rate{Num: 1, Den: 10},
		Dup:     ether.Rate{Num: 1, Den: 30},
		Corrupt: ether.Rate{Num: 1, Den: 30},
	})
	d, err := disk.NewDrive(disk.Diablo31(), 1, clock)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := file.Format(d)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dir.InitRoot(fs); err != nil {
		t.Fatal(err)
	}
	m := mem.New()
	z, err := zone.New(m, 0x4000, 0x4000)
	if err != nil {
		t.Fatal(err)
	}
	sst, err := wire.Attach(1)
	if err != nil {
		t.Fatal(err)
	}
	cst, err := wire.Attach(2)
	if err != nil {
		t.Fatal(err)
	}
	srv, cli := NewServer(fs, sst, z, m), NewClient(cst)

	body := make([]byte, 3*dataBytesPerPacket+77)
	r := sim.NewRand(4)
	for i := range body {
		body[i] = byte(r.Word())
	}
	if err := cli.Store(1, "lossy.bin", body); err != nil {
		t.Fatal(err)
	}
	finishStore(t, srv, cli)
	if err := cli.Request(1, "lossy.bin"); err != nil {
		t.Fatal(err)
	}
	pump(t, srv, cli)
	got, err := cli.Result()
	if err != nil {
		t.Fatalf("fetch over lossy wire: %v", err)
	}
	if !bytes.Equal(got, body) {
		t.Fatalf("payload corrupted: %d bytes back, want %d", len(got), len(body))
	}
}

func TestWireTimeAccumulates(t *testing.T) {
	srv, cli, fs := netFixture(t)
	body := make([]byte, 2*dataBytesPerPacket)
	seed(t, srv, "timed.bin", body)
	before := fs.Device().Clock().Now()
	cli.Request(1, "timed.bin")
	pump(t, srv, cli)
	if _, err := cli.Result(); err != nil {
		t.Fatal(err)
	}
	if fs.Device().Clock().Now() == before {
		t.Fatal("transfer charged no simulated time")
	}
}
