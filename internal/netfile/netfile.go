// Package netfile is the original file-transfer facade over the simulated
// Ethernet — the "remote facilities" of §1, where "it is the representation
// ... of packets on the network that are standardized", allowing programs in
// radically different environments to exchange files without a common
// runtime.
//
// Since the reliable transport landed, netfile is a compatibility shim over
// internal/pup and internal/fileserver: the same Server/Client call shapes
// as the v1 protocol, but every transfer rides a windowed, retransmitting
// connection, so a lost, duplicated, delayed or corrupted packet no longer
// aborts a transfer — it costs a retransmission and nothing else. The v1
// framing (one raw packet per chunk, a sequence word, no acks, ErrSequence
// on any gap) is kept below only as documentation and for its packing
// helpers; nothing sends it anymore.
//
// The machine is single-user and poll-driven (§2: no scheduler beyond the
// keyboard interrupt), so the protocol is explicitly pollable: callers
// alternate Server.Poll and Client.Poll, exactly as the print server
// alternates its spooler and printer activities. One behavioral change from
// v1: Store is reliable now, so the client must be polled until Done — the
// acks flow back, not just the data out.
package netfile

import (
	"errors"

	"altoos/internal/ether"
	"altoos/internal/file"
	"altoos/internal/fileserver"
	"altoos/internal/mem"
	"altoos/internal/pup"
	"altoos/internal/zone"
)

// v1 packet types, retained as documentation of the legacy framing. The v1
// protocol put one chunk per raw ether packet with a bare sequence word: a
// single lost or reordered packet killed the whole transfer (ErrSequence).
// The v2 path speaks the fileserver message protocol over pup connections
// instead; these type words no longer appear on the wire.
const (
	TypeRead  = 0x46 // v1: payload is a file name — please send it
	TypeWrite = 0x47 // v1: payload is a file name — data packets follow
	TypeData  = 0x48 // v1: payload is sequence word, byte count, bytes
	TypeEnd   = 0x49 // v1: payload is sequence word (total packets)
	TypeError = 0x4A // v1: payload is a message string
)

// dataBytesPerPacket is the v1 chunk capacity after the two header words.
const dataBytesPerPacket = 2 * (ether.MaxPayload - 2)

// Errors.
var (
	// ErrRemote reports an error message from the far end.
	ErrRemote = fileserver.ErrRemote
	// ErrBusy reports a second Request before the first completed.
	ErrBusy = fileserver.ErrBusy
	// ErrSequence is the v1 failure mode: packets arriving out of order
	// aborted the transfer, because the wire was trusted absolutely. The
	// reliable transport retransmits instead; nothing returns this today.
	// It remains so old callers' errors.Is checks still compile.
	ErrSequence = errors.New("netfile: out-of-sequence data")
)

// Server serves files from a file system to the network.
type Server struct {
	FS      *file.FS
	Station *ether.Station
	// Zone and Mem fed the v1 disk streams. The v2 server moves whole
	// pages through the multipage chain paths and needs neither; they are
	// kept so existing machine-assembly call sites stay source-compatible.
	Zone zone.Zone
	Mem  *mem.Memory

	inner *fileserver.Server
}

// NewServer builds a file server over its substrates.
func NewServer(fs *file.FS, st *ether.Station, z zone.Zone, m *mem.Memory) *Server {
	return &Server{
		FS: fs, Station: st, Zone: z, Mem: m,
		inner: fileserver.NewServer(fs, pup.NewEndpoint(st, pup.Config{})),
	}
}

// Poll advances the server one step: transport timers, new connections,
// every session. It returns whether it did any work, so activity-switching
// loops can tell busy from idle.
func (s *Server) Poll() (bool, error) { return s.inner.Poll() }

// Stats returns the underlying file server's counters.
func (s *Server) Stats() fileserver.Stats { return s.inner.Stats() }

// Client fetches and stores files against a remote server.
type Client struct {
	Station *ether.Station

	ep     *pup.Endpoint
	inner  *fileserver.Client
	remote ether.Addr
}

// NewClient builds a client on a station.
func NewClient(st *ether.Station) *Client {
	return &Client{Station: st, ep: pup.NewEndpoint(st, pup.Config{})}
}

// connect ensures a live connection to the server (dialing on first use or
// after a server change — each server gets a fresh connection).
func (c *Client) connect(server ether.Addr) error {
	if c.inner != nil && c.remote == server && c.inner.Conn().Err() == nil &&
		c.inner.Conn().State() != pup.StateClosed {
		return nil
	}
	if c.inner != nil {
		if err := c.inner.Close(); err != nil {
			return err
		}
	}
	c.inner = fileserver.NewClient(c.ep)
	c.remote = server
	return c.inner.Connect(server)
}

// Request asks server for a named file. Poll until Done, then Result.
func (c *Client) Request(server ether.Addr, name string) error {
	if err := c.connect(server); err != nil {
		return err
	}
	return c.inner.Fetch(name)
}

// Store pushes data to the server under name. The transfer is reliable
// now, so the client must be polled until Done — the server's confirmation
// is what completes it.
func (c *Client) Store(server ether.Addr, name string, data []byte) error {
	if err := c.connect(server); err != nil {
		return err
	}
	return c.inner.Store(name, data)
}

// Poll advances the transfer; returns whether it did work.
func (c *Client) Poll() (bool, error) {
	if c.inner == nil {
		return false, nil
	}
	return c.inner.Poll()
}

// Done reports whether the transfer completed (or failed).
func (c *Client) Done() bool { return c.inner != nil && c.inner.Done() }

// Avail reports the remaining send-window capacity of the underlying
// connection — how many messages Poll can push this round without tripping
// backpressure. Zero before any transfer begins or once the conn is dead.
func (c *Client) Avail() int {
	if c.inner == nil {
		return 0
	}
	return c.inner.Conn().Avail()
}

// Result returns the fetched bytes (nil for a store) once Done.
func (c *Client) Result() ([]byte, error) {
	if c.inner == nil {
		return nil, errors.New("netfile: no transfer begun")
	}
	return c.inner.Result()
}

// packData lays out a v1 data payload: sequence, byte count, packed bytes.
// Kept (with its inverse) as the executable description of the legacy
// framing; the property test in this package still covers it.
func packData(seq uint16, data []byte) []uint16 {
	out := make([]uint16, 2+(len(data)+1)/2)
	out[0] = seq
	out[1] = uint16(len(data))
	for i, b := range data {
		if i%2 == 0 {
			out[2+i/2] |= uint16(b) << 8
		} else {
			out[2+i/2] |= uint16(b)
		}
	}
	return out
}

// unpackData is the inverse of packData.
func unpackData(p []uint16) (seq uint16, data []byte, err error) {
	if len(p) < 2 {
		return 0, nil, errors.New("netfile: short data packet")
	}
	n := int(p[1])
	if 2+(n+1)/2 > len(p) {
		return 0, nil, errors.New("netfile: truncated data packet")
	}
	data = make([]byte, n)
	for i := range data {
		w := p[2+i/2]
		if i%2 == 0 {
			data[i] = byte(w >> 8)
		} else {
			data[i] = byte(w)
		}
	}
	return p[0], data, nil
}
