// Package netfile is a small file-transfer protocol over the simulated
// Ethernet — the "remote facilities" of §1, where "it is the representation
// ... of packets on the network that are standardized", allowing programs in
// radically different environments to exchange files without a common
// runtime. Everything on the wire is 16-bit words in fixed layouts; both
// ends are ordinary programs built from the public stream/file interfaces.
//
// The machine is single-user and poll-driven (§2: no scheduler beyond the
// keyboard interrupt), so the protocol is explicitly pollable: callers
// alternate Server.Poll and Client.Poll, exactly as the print server
// alternates its spooler and printer activities.
package netfile

import (
	"errors"
	"fmt"

	"altoos/internal/dir"
	"altoos/internal/ether"
	"altoos/internal/file"
	"altoos/internal/mem"
	"altoos/internal/stream"
	"altoos/internal/zone"
)

// Packet types.
const (
	TypeRead  = 0x46 // payload: file name — please send it
	TypeWrite = 0x47 // payload: file name — data packets follow
	TypeData  = 0x48 // payload: sequence word, byte count, bytes
	TypeEnd   = 0x49 // payload: sequence word (total packets)
	TypeError = 0x4A // payload: message string
)

// dataBytesPerPacket is the payload capacity after the two header words.
const dataBytesPerPacket = 2 * (ether.MaxPayload - 2)

// Errors.
var (
	// ErrRemote reports a TypeError packet from the far end.
	ErrRemote = errors.New("netfile: remote error")
	// ErrBusy reports a second Request before the first completed.
	ErrBusy = errors.New("netfile: transfer already in progress")
	// ErrSequence reports packets arriving out of order (the simulated
	// medium never reorders, so this is damage).
	ErrSequence = errors.New("netfile: out-of-sequence data")
)

// Server serves files from a file system to the network.
type Server struct {
	FS      *file.FS
	Station *ether.Station
	Zone    zone.Zone
	Mem     *mem.Memory

	// recv is the in-progress inbound store, if any.
	recv *inbound
}

type inbound struct {
	from ether.Addr
	name string
	s    *stream.DiskStream
	seq  uint16
}

// NewServer builds a file server over its substrates.
func NewServer(fs *file.FS, st *ether.Station, z zone.Zone, m *mem.Memory) *Server {
	return &Server{FS: fs, Station: st, Zone: z, Mem: m}
}

// Poll handles at most one pending packet. It returns whether it did any
// work, so activity-switching loops can tell busy from idle.
func (s *Server) Poll() (bool, error) {
	pkt, ok := s.Station.Recv()
	if !ok {
		return false, nil
	}
	switch pkt.Type {
	case TypeRead:
		name, err := ether.UnpackString(pkt.Payload)
		if err != nil {
			return true, s.sendError(pkt.Src, "bad read request")
		}
		return true, s.sendFile(pkt.Src, name)
	case TypeWrite:
		name, err := ether.UnpackString(pkt.Payload)
		if err != nil {
			return true, s.sendError(pkt.Src, "bad write request")
		}
		return true, s.openInbound(pkt.Src, name)
	case TypeData, TypeEnd:
		return true, s.feedInbound(pkt)
	}
	return true, nil // unknown types are ignored, as on a real wire
}

// sendFile streams a named file as data packets.
func (s *Server) sendFile(to ether.Addr, name string) error {
	fn, err := dir.ResolveName(s.FS, name)
	if err != nil {
		return s.sendError(to, fmt.Sprintf("no such file %q", name))
	}
	f, err := s.FS.Open(fn)
	if err != nil {
		return s.sendError(to, fmt.Sprintf("open %q: label check failed", name))
	}
	in, err := stream.NewDisk(f, s.Zone, s.Mem, stream.ReadMode)
	if err != nil {
		return s.sendError(to, "no buffer storage")
	}
	defer in.Close()

	seq := uint16(0)
	buf := make([]byte, dataBytesPerPacket)
	for {
		n := 0
		for n < len(buf) {
			b, err := in.Get()
			if err != nil {
				break
			}
			buf[n] = b
			n++
		}
		if n == 0 {
			break
		}
		if err := s.Station.Send(ether.Packet{
			Dst: to, Type: TypeData, Payload: packData(seq, buf[:n]),
		}); err != nil {
			return err
		}
		seq++
		if n < len(buf) {
			break
		}
	}
	return s.Station.Send(ether.Packet{Dst: to, Type: TypeEnd, Payload: []uint16{seq}})
}

// openInbound begins receiving a stored file.
func (s *Server) openInbound(from ether.Addr, name string) error {
	if s.recv != nil {
		return s.sendError(from, "server busy")
	}
	root, err := dir.OpenRoot(s.FS)
	if err != nil {
		return s.sendError(from, "no root directory")
	}
	var f *file.File
	if fn, err := root.Lookup(name); err == nil {
		if f, err = s.FS.Open(fn); err != nil {
			return s.sendError(from, "open failed")
		}
	} else {
		if f, err = s.FS.Create(name); err != nil {
			return s.sendError(from, "disk full")
		}
		if err := root.Insert(name, f.FN()); err != nil {
			return s.sendError(from, "directory full")
		}
	}
	w, err := stream.NewDisk(f, s.Zone, s.Mem, stream.WriteMode)
	if err != nil {
		return s.sendError(from, "no buffer storage")
	}
	s.recv = &inbound{from: from, name: name, s: w}
	return nil
}

// feedInbound appends a data packet to the in-progress store.
func (s *Server) feedInbound(pkt ether.Packet) error {
	if s.recv == nil || pkt.Src != s.recv.from {
		return nil // stray data: drop
	}
	if pkt.Type == TypeEnd {
		err := s.recv.s.Close()
		s.recv = nil
		return err
	}
	seq, data, err := unpackData(pkt.Payload)
	if err != nil {
		return err
	}
	if seq != s.recv.seq {
		cerr := s.recv.s.Close()
		s.recv = nil
		return errors.Join(fmt.Errorf("%w: got %d", ErrSequence, seq), cerr)
	}
	s.recv.seq++
	for _, b := range data {
		if err := s.recv.s.Put(b); err != nil {
			return err
		}
	}
	return nil
}

func (s *Server) sendError(to ether.Addr, msg string) error {
	return s.Station.Send(ether.Packet{Dst: to, Type: TypeError, Payload: ether.PackString(msg)})
}

// Client fetches and stores files against a remote server.
type Client struct {
	Station *ether.Station

	busy    bool
	data    []byte
	nextSeq uint16
	done    bool
	failure error
}

// NewClient builds a client on a station.
func NewClient(st *ether.Station) *Client {
	return &Client{Station: st}
}

// Request asks server for a named file. Poll until Done.
func (c *Client) Request(server ether.Addr, name string) error {
	if c.busy {
		return ErrBusy
	}
	c.busy, c.done, c.failure = true, false, nil
	c.data, c.nextSeq = nil, 0
	return c.Station.Send(ether.Packet{Dst: server, Type: TypeRead, Payload: ether.PackString(name)})
}

// Poll consumes at most one pending packet; returns whether it did work.
func (c *Client) Poll() (bool, error) {
	if !c.busy || c.done {
		return false, nil
	}
	pkt, ok := c.Station.Recv()
	if !ok {
		return false, nil
	}
	switch pkt.Type {
	case TypeData:
		seq, data, err := unpackData(pkt.Payload)
		if err != nil {
			c.finish(err)
			return true, err
		}
		if seq != c.nextSeq {
			err := fmt.Errorf("%w: got %d want %d", ErrSequence, seq, c.nextSeq)
			c.finish(err)
			return true, err
		}
		c.nextSeq++
		c.data = append(c.data, data...)
	case TypeEnd:
		c.finish(nil)
	case TypeError:
		msg, _ := ether.UnpackString(pkt.Payload)
		c.finish(fmt.Errorf("%w: %s", ErrRemote, msg))
	}
	return true, nil
}

func (c *Client) finish(err error) {
	c.done = true
	c.failure = err
}

// Done reports whether the transfer completed (or failed).
func (c *Client) Done() bool { return c.done }

// Result returns the fetched bytes once Done.
func (c *Client) Result() ([]byte, error) {
	if !c.done {
		return nil, errors.New("netfile: transfer still in progress")
	}
	c.busy = false
	return c.data, c.failure
}

// Store pushes data to the server under name, sending everything
// immediately (the medium queues; the server drains on its own polls).
func (c *Client) Store(server ether.Addr, name string, data []byte) error {
	if err := c.Station.Send(ether.Packet{
		Dst: server, Type: TypeWrite, Payload: ether.PackString(name),
	}); err != nil {
		return err
	}
	seq := uint16(0)
	for off := 0; off < len(data); off += dataBytesPerPacket {
		end := off + dataBytesPerPacket
		if end > len(data) {
			end = len(data)
		}
		if err := c.Station.Send(ether.Packet{
			Dst: server, Type: TypeData, Payload: packData(seq, data[off:end]),
		}); err != nil {
			return err
		}
		seq++
	}
	return c.Station.Send(ether.Packet{Dst: server, Type: TypeEnd, Payload: []uint16{seq}})
}

// packData lays out a data payload: sequence, byte count, packed bytes.
func packData(seq uint16, data []byte) []uint16 {
	out := make([]uint16, 2+(len(data)+1)/2)
	out[0] = seq
	out[1] = uint16(len(data))
	for i, b := range data {
		if i%2 == 0 {
			out[2+i/2] |= uint16(b) << 8
		} else {
			out[2+i/2] |= uint16(b)
		}
	}
	return out
}

// unpackData is the inverse of packData.
func unpackData(p []uint16) (seq uint16, data []byte, err error) {
	if len(p) < 2 {
		return 0, nil, errors.New("netfile: short data packet")
	}
	n := int(p[1])
	if 2+(n+1)/2 > len(p) {
		return 0, nil, errors.New("netfile: truncated data packet")
	}
	data = make([]byte, n)
	for i := range data {
		w := p[2+i/2]
		if i%2 == 0 {
			data[i] = byte(w >> 8)
		} else {
			data[i] = byte(w)
		}
	}
	return p[0], data, nil
}
