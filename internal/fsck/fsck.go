// Package fsck is the machine-checkable statement of the file system's
// invariants. The paper asserts them in prose — labels are the truth, hints
// are reconstructible, the Scavenger restores consistency after "a system
// crash at an arbitrary point" (§3.5) — and the crash explorer
// (internal/crashpoint) turns that prose into a verified property by running
// this checker after every injected crash and repair.
//
// Check walks the whole pack and verifies, from the labels up:
//
//   - chains: every file's pages number 0..N contiguously, every page but
//     the last is full, the last is partial, and the doubly-linked
//     next/previous hints close over the chain with NilVDA at both ends;
//   - ownership: no two sectors claim the same (file, page) name, and no
//     in-use sector is outside every chain;
//   - leaders: page 0 decodes, carries a name, and its last-page hints
//     agree with the chain on disk;
//   - bitmap: the descriptor's allocation map marks exactly the in-use,
//     retired and unreadable sectors busy (the boot sector stays reserved);
//   - serial: the descriptor's next-serial lies above every issued serial;
//   - directories: every directory file parses, every entry resolves to a
//     live file with a correct leader hint, and — excepting the system
//     files — every file is reachable by some name.
//
// The checker only reads: it never repairs, so running it twice is running
// it once. Violations are reported in deterministic order (files sorted by
// identifier, pages by number), which the crash explorer's byte-identical
// merge depends on.
package fsck

import (
	"errors"
	"fmt"
	"sort"

	"altoos/internal/dir"
	"altoos/internal/disk"
	"altoos/internal/file"
)

// Rule names group violations by the invariant they break.
const (
	RuleChain  = "chain"  // page chain contiguous, closed, last page partial
	RuleOwner  = "owner"  // no doubly-owned (file, page) names
	RuleLeader = "leader" // leader page decodes and its hints agree
	RuleBitmap = "bitmap" // allocation map matches the labels
	RuleSerial = "serial" // next-serial above every issued serial
	RuleDir    = "dir"    // directory entries resolve
	RuleOrphan = "orphan" // every user file reachable by name
	RuleDesc   = "desc"   // descriptor and root directory usable
)

// Violation is one broken invariant, anchored to the sector and file it was
// found at (Addr may be NilVDA and FV zero when the finding is global).
type Violation struct {
	Rule string
	Addr disk.VDA
	FV   disk.FV
	Msg  string
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	if v.Addr == disk.NilVDA {
		return fmt.Sprintf("%s: %v: %s", v.Rule, v.FV, v.Msg)
	}
	return fmt.Sprintf("%s: %v @%d: %s", v.Rule, v.FV, v.Addr, v.Msg)
}

// Report is the outcome of one check.
type Report struct {
	SectorsScanned int
	FilesChecked   int
	Directories    int
	DirEntries     int
	FreePages      int
	RetiredPages   int
	BadSectors     int
	Violations     []Violation
}

// OK reports a fully consistent pack.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

// Strings renders the violations for reports and JSON output.
func (r *Report) Strings() []string {
	out := make([]string, len(r.Violations))
	for i, v := range r.Violations {
		out[i] = v.String()
	}
	return out
}

// page is one in-use sector as the sweep found it.
type page struct {
	addr disk.VDA
	lbl  disk.Label
}

// fileRec collects every sector claiming one (file, version) name.
type fileRec struct {
	fv    disk.FV
	pages []page
}

// checker carries one check's state.
type checker struct {
	dev    disk.Device
	report *Report
	files  []*fileRec
	// byFV is a keyed index into files only — every walk uses the sorted
	// slice, never map iteration, so two checks of the same pack report
	// identically.
	byFV map[disk.FV]int
	// busy mirrors what the allocation map must say: in-use, retired and
	// unreadable sectors.
	busy []bool
}

// Check verifies every invariant on the pack behind dev. The returned error
// reports only infrastructure failure (an I/O error the sweep cannot
// classify); everything wrong with the pack itself lands in the report.
func Check(dev disk.Device) (*Report, error) {
	c := &checker{
		dev:    dev,
		report: &Report{},
		byFV:   make(map[disk.FV]int),
		busy:   make([]bool, dev.Geometry().NSectors()),
	}
	if err := c.sweep(); err != nil {
		return nil, err
	}
	sort.Slice(c.files, func(i, j int) bool {
		a, b := c.files[i].fv, c.files[j].fv
		if a.FID != b.FID {
			return a.FID < b.FID
		}
		return a.Version < b.Version
	})
	// The sort moved the records; rebuild the keyed index over the new
	// positions before anything resolves an FV.
	for i, f := range c.files {
		c.byFV[f.fv] = i
	}
	for _, f := range c.files {
		c.checkFile(f)
	}
	c.checkSystem()
	return c.report, nil
}

// violate records one finding.
func (c *checker) violate(rule string, addr disk.VDA, fv disk.FV, format string, args ...any) {
	c.report.Violations = append(c.report.Violations, Violation{
		Rule: rule, Addr: addr, FV: fv, Msg: fmt.Sprintf(format, args...),
	})
}

// sweep reads every label, one cylinder of header-checked label reads per
// free-order chain (the Scavenger's pass-1 shape), and groups the in-use
// pages by file. Entries are processed in ascending address order whatever
// order the scheduler served them in.
func (c *checker) sweep() error {
	g := c.dev.Geometry()
	n := g.NSectors()
	c.report.SectorsScanned = n

	batch := g.Heads * g.SectorsPerTrack
	ops := make([]disk.Op, batch)
	hdrs := make([][disk.HeaderWords]disk.Word, batch)
	lbls := make([][disk.LabelWords]disk.Word, batch)
	slotErr := make([]error, batch)
	slotLbl := make([]*[disk.LabelWords]disk.Word, batch)
	pack := c.dev.Pack()

	for base := 0; base < n; base += batch {
		m := batch
		if base+m > n {
			m = n - base
		}
		for i := 0; i < m; i++ {
			//altovet:allow wordwidth base+i < NSectors, which fits a VDA
			addr := disk.VDA(base + i)
			hdrs[i] = disk.Header{Pack: pack, Addr: addr}.Words()
			ops[i] = disk.Op{
				Addr:       addr,
				Header:     disk.Check,
				HeaderData: &hdrs[i],
				Label:      disk.Read,
				LabelData:  &lbls[i],
			}
		}
		errs := disk.DoChainOn(c.dev, ops[:m], disk.FreeOrder)
		for k := 0; k < m; k++ {
			idx := int(ops[k].Addr) - base
			slotLbl[idx] = ops[k].LabelData
			if errs != nil {
				slotErr[idx] = errs[k]
			} else {
				slotErr[idx] = nil
			}
		}
		for i := 0; i < m; i++ {
			//altovet:allow wordwidth base+i < NSectors, which fits a VDA
			addr := disk.VDA(base + i)
			raw, err := *slotLbl[i], slotErr[i]
			switch {
			case errors.Is(err, disk.ErrBadSector) || disk.IsCheck(err):
				c.report.BadSectors++
				c.busy[addr] = true
				continue
			case err != nil:
				return fmt.Errorf("fsck: sweeping sector %d: %w", addr, err)
			}
			switch {
			case disk.IsFreeLabel(raw):
				c.report.FreePages++
			case disk.IsBadLabel(raw):
				c.report.RetiredPages++
				c.busy[addr] = true
			default:
				c.busy[addr] = true
				lbl := disk.LabelFromWords(raw)
				fv := lbl.FV()
				idx, ok := c.byFV[fv]
				if !ok {
					idx = len(c.files)
					c.files = append(c.files, &fileRec{fv: fv})
					c.byFV[fv] = idx
				}
				c.files[idx].pages = append(c.files[idx].pages, page{addr: addr, lbl: lbl})
			}
		}
	}
	return nil
}

// leaderAddr returns the file's page-0 address, or NilVDA if it has none.
// pages are sorted by (pn, addr) by the time anyone asks.
func (f *fileRec) leaderAddr() disk.VDA {
	if len(f.pages) > 0 && f.pages[0].lbl.PageNum == 0 {
		return f.pages[0].addr
	}
	return disk.NilVDA
}

// checkFile verifies one file's chain, lengths, links and leader.
func (c *checker) checkFile(f *fileRec) {
	c.report.FilesChecked++
	sort.Slice(f.pages, func(i, j int) bool {
		if f.pages[i].lbl.PageNum != f.pages[j].lbl.PageNum {
			return f.pages[i].lbl.PageNum < f.pages[j].lbl.PageNum
		}
		return f.pages[i].addr < f.pages[j].addr
	})

	// Ownership: a (file, page) name must name one sector.
	clean := true
	for i := 1; i < len(f.pages); i++ {
		if f.pages[i].lbl.PageNum == f.pages[i-1].lbl.PageNum {
			c.violate(RuleOwner, f.pages[i].addr, f.fv,
				"page %d doubly owned (also at sector %d)", f.pages[i].lbl.PageNum, f.pages[i-1].addr)
			clean = false
		}
	}

	// Contiguity: pages number 0..N with no gaps.
	if f.pages[0].lbl.PageNum != 0 {
		c.violate(RuleChain, f.pages[0].addr, f.fv,
			"no leader page; chain starts at page %d", f.pages[0].lbl.PageNum)
		clean = false
	}
	for i := 1; i < len(f.pages); i++ {
		prev, cur := f.pages[i-1].lbl.PageNum, f.pages[i].lbl.PageNum
		if cur != prev && cur != prev+1 {
			c.violate(RuleChain, f.pages[i].addr, f.fv,
				"gap in chain: page %d follows page %d", cur, prev)
			clean = false
		}
	}

	// Lengths: every page but the last full, the last partial — the
	// invariant the storage layer maintains from a file's birth.
	last := len(f.pages) - 1
	for i, p := range f.pages {
		if i < last && p.lbl.Length != disk.PageBytes {
			c.violate(RuleChain, p.addr, f.fv,
				"short interior page %d: %d bytes", p.lbl.PageNum, p.lbl.Length)
			clean = false
		}
	}
	if f.pages[last].lbl.Length >= disk.PageBytes && last == 0 {
		c.violate(RuleChain, f.pages[last].addr, f.fv,
			"file is a bare full leader: missing partial tail page")
		clean = false
	} else if f.pages[last].lbl.Length >= disk.PageBytes {
		c.violate(RuleChain, f.pages[last].addr, f.fv,
			"last page %d is full: missing partial tail", f.pages[last].lbl.PageNum)
		clean = false
	}

	// Links: the doubly-linked chain closes over the sorted pages, NilVDA
	// at both ends. Only meaningful when the chain itself is sound.
	if clean {
		for i, p := range f.pages {
			wantPrev, wantNext := disk.NilVDA, disk.NilVDA
			if i > 0 {
				wantPrev = f.pages[i-1].addr
			}
			if i < last {
				wantNext = f.pages[i+1].addr
			}
			if p.lbl.Next != wantNext {
				c.violate(RuleChain, p.addr, f.fv,
					"page %d next link %d, chain says %d", p.lbl.PageNum, p.lbl.Next, wantNext)
			}
			if p.lbl.Prev != wantPrev {
				c.violate(RuleChain, p.addr, f.fv,
					"page %d prev link %d, chain says %d", p.lbl.PageNum, p.lbl.Prev, wantPrev)
			}
		}
	}

	// Leader: page 0 must decode and agree with the chain. The descriptor
	// file's page 0 holds the descriptor, not a leader, so it is exempt.
	if clean && f.fv.FID != disk.DescriptorFID {
		c.checkLeader(f)
	}
}

// checkLeader reads and decodes page 0 and compares its hints to the chain.
func (c *checker) checkLeader(f *fileRec) {
	lp := f.pages[0]
	var v [disk.PageWords]disk.Word
	if err := disk.ReadValue(c.dev, lp.addr, lp.lbl, &v); err != nil {
		c.violate(RuleLeader, lp.addr, f.fv, "leader unreadable: %v", err)
		return
	}
	ldr, err := file.DecodeLeader(&v)
	if err != nil {
		c.violate(RuleLeader, lp.addr, f.fv, "leader does not decode: %v", err)
		return
	}
	if ldr.Name == "" {
		c.violate(RuleLeader, lp.addr, f.fv, "leader carries no name")
	}
	tail := f.pages[len(f.pages)-1]
	if ldr.LastPN != tail.lbl.PageNum || ldr.LastAddr != tail.addr {
		c.violate(RuleLeader, lp.addr, f.fv,
			"stale last-page hint: leader says (%d, %d), chain ends at (%d, %d)",
			ldr.LastPN, ldr.LastAddr, tail.lbl.PageNum, tail.addr)
	}
}

// checkSystem mounts the descriptor and verifies the pack-wide invariants:
// allocation map, serial counter, root directory, entry resolution,
// reachability.
func (c *checker) checkSystem() {
	fs, err := file.Mount(c.dev)
	if err != nil {
		c.violate(RuleDesc, disk.NilVDA, disk.FV{}, "pack does not mount: %v", err)
		return
	}
	desc := fs.Descriptor()

	// Allocation map: busy exactly where the labels say, plus the reserved
	// boot sector.
	if desc.Free.Len() != len(c.busy) {
		c.violate(RuleBitmap, disk.NilVDA, disk.FV{},
			"allocation map covers %d sectors, disk has %d", desc.Free.Len(), len(c.busy))
	} else {
		for a := range c.busy {
			addr := disk.VDA(a)
			switch {
			case c.busy[a] && !desc.Free.Busy(addr):
				c.violate(RuleBitmap, addr, disk.FV{}, "in-use sector marked free in the allocation map")
			case !c.busy[a] && desc.Free.Busy(addr) && addr != file.BootVDA:
				c.violate(RuleBitmap, addr, disk.FV{}, "free sector marked busy in the allocation map")
			}
		}
	}

	// Serial: the next serial to issue must lie above every serial on disk
	// (directory files carry theirs under the directory bit).
	maxSerial := uint32(0)
	for _, f := range c.files {
		if s := uint32(f.fv.FID &^ disk.DirFIDBit); s >= uint32(disk.FirstUserFID) && s > maxSerial {
			maxSerial = s
		}
	}
	if maxSerial != 0 && desc.NextSerial <= maxSerial {
		c.violate(RuleSerial, disk.NilVDA, disk.FV{},
			"next serial %d already issued (max on disk %d)", desc.NextSerial, maxSerial)
	}

	// Root: the descriptor's root-directory name must point at a directory
	// that actually exists.
	root := fs.RootDir()
	rootIdx, rootOK := c.byFV[root.FV]
	if !rootOK || !root.FV.FID.IsDirectory() {
		c.violate(RuleDesc, root.Leader, root.FV, "descriptor's root directory does not exist on disk")
	} else if la := c.files[rootIdx].leaderAddr(); la != root.Leader {
		c.violate(RuleDesc, root.Leader, root.FV,
			"descriptor's root leader hint %d, leader is at %d", root.Leader, la)
	}

	// Directories: every directory file parses and every entry resolves.
	referenced := make(map[disk.FV]bool)
	for _, f := range c.files {
		if !f.fv.FID.IsDirectory() {
			continue
		}
		c.report.Directories++
		la := f.leaderAddr()
		if la == disk.NilVDA {
			continue // already a chain violation; nothing to parse
		}
		df, err := fs.Open(file.FN{FV: f.fv, Leader: la})
		if err != nil {
			c.violate(RuleDir, la, f.fv, "directory does not open: %v", err)
			continue
		}
		entries, err := dir.Adopt(fs, df).Load()
		if err != nil {
			c.violate(RuleDir, la, f.fv, "directory does not parse: %v", err)
			continue
		}
		c.report.DirEntries += len(entries)
		for _, e := range entries {
			tIdx, ok := c.byFV[e.FN.FV]
			if !ok {
				c.violate(RuleDir, la, f.fv, "entry %q names missing file %v", e.Name, e.FN.FV)
				continue
			}
			referenced[e.FN.FV] = true
			if ta := c.files[tIdx].leaderAddr(); ta != e.FN.Leader {
				c.violate(RuleDir, la, f.fv,
					"entry %q carries stale leader hint %d, leader is at %d", e.Name, e.FN.Leader, ta)
			}
		}
	}

	// Reachability: losing a directory loses only names — so after repair,
	// every file except the system trio must have a name again.
	for _, f := range c.files {
		switch {
		case f.fv.FID == disk.DescriptorFID || f.fv.FID == disk.BootFID:
			continue // standard name and address; no entry required
		case rootOK && f.fv == root.FV:
			continue // the root is named by the descriptor
		case !referenced[f.fv]:
			c.violate(RuleOrphan, f.leaderAddr(), f.fv, "file unreachable by any directory entry")
		}
	}
}
