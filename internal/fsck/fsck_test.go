package fsck

import (
	"fmt"
	"strings"
	"testing"

	"altoos/internal/dir"
	"altoos/internal/disk"
	"altoos/internal/file"
)

// build formats a drive and populates it with nfiles synced, inserted files
// of pagesEach data pages.
func build(t *testing.T, nfiles, pagesEach int) (*disk.Drive, *file.FS, *dir.Directory) {
	t.Helper()
	d, err := disk.NewDrive(disk.Diablo31(), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := file.Format(d)
	if err != nil {
		t.Fatal(err)
	}
	root, err := dir.InitRoot(fs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nfiles; i++ {
		f, err := fs.Create(fmt.Sprintf("file-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		var v [disk.PageWords]disk.Word
		for pn := 1; pn <= pagesEach; pn++ {
			for w := range v {
				v[w] = disk.Word(i*100 + pn + w)
			}
			if err := f.WritePage(disk.Word(pn), &v, disk.PageBytes); err != nil {
				t.Fatal(err)
			}
		}
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
		if err := root.Insert(fmt.Sprintf("file-%d", i), f.FN()); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Flush(); err != nil {
		t.Fatal(err)
	}
	return d, fs, root
}

// mustCheck fails on infrastructure errors only.
func mustCheck(t *testing.T, d *disk.Drive) *Report {
	t.Helper()
	rep, err := Check(d)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	return rep
}

// rules collects the distinct rule names the report violated.
func rules(rep *Report) map[string]bool {
	got := make(map[string]bool)
	for _, v := range rep.Violations {
		got[v.Rule] = true
	}
	return got
}

func TestFreshFormattedPackIsClean(t *testing.T) {
	d, _, _ := build(t, 0, 0)
	rep := mustCheck(t, d)
	if !rep.OK() {
		t.Fatalf("fresh pack has violations:\n%s", strings.Join(rep.Strings(), "\n"))
	}
	if rep.Directories != 1 {
		t.Errorf("Directories = %d, want 1 (the root)", rep.Directories)
	}
}

func TestHealthyPopulatedPackIsClean(t *testing.T) {
	d, _, _ := build(t, 5, 3)
	rep := mustCheck(t, d)
	if !rep.OK() {
		t.Fatalf("healthy pack has violations:\n%s", strings.Join(rep.Strings(), "\n"))
	}
	// 5 user files + root + descriptor (+ possibly a boot file).
	if rep.FilesChecked < 7 {
		t.Errorf("FilesChecked = %d, want >= 7", rep.FilesChecked)
	}
	if rep.DirEntries < 5 {
		t.Errorf("DirEntries = %d, want >= 5", rep.DirEntries)
	}
}

func TestDetectsBrokenLink(t *testing.T) {
	d, fs, _ := build(t, 2, 3)
	fn, err := dir.ResolveName(fs, "file-0")
	if err != nil {
		t.Fatal(err)
	}
	f, err := fs.Open(fn)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := f.PageAddr(1)
	if err != nil {
		t.Fatal(err)
	}
	// Point page 1's next link into nowhere, bypassing the write discipline.
	raw, _ := d.PeekLabel(addr)
	lbl := disk.LabelFromWords(raw)
	lbl.Next = 777
	d.ZapLabel(addr, lbl.Words())
	rep := mustCheck(t, d)
	if rep.OK() {
		t.Fatal("zapped next link went undetected")
	}
	if !rules(rep)[RuleChain] {
		t.Errorf("want a %s violation, got:\n%s", RuleChain, strings.Join(rep.Strings(), "\n"))
	}
}

func TestDetectsDoublyOwnedPage(t *testing.T) {
	d, fs, _ := build(t, 2, 2)
	fn, err := dir.ResolveName(fs, "file-1")
	if err != nil {
		t.Fatal(err)
	}
	f, err := fs.Open(fn)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := f.PageAddr(1)
	if err != nil {
		t.Fatal(err)
	}
	// Stamp a free sector with a copy of page 1's label: two sectors now
	// claim the same absolute name, and the allocation map knows nothing
	// about the impostor.
	raw, _ := d.PeekLabel(addr)
	free := disk.VDA(d.Geometry().NSectors() - 1)
	d.ZapLabel(free, raw)
	rep := mustCheck(t, d)
	got := rules(rep)
	if !got[RuleOwner] {
		t.Errorf("want an %s violation, got:\n%s", RuleOwner, strings.Join(rep.Strings(), "\n"))
	}
	if !got[RuleBitmap] {
		t.Errorf("want a %s violation (impostor sector marked free), got:\n%s",
			RuleBitmap, strings.Join(rep.Strings(), "\n"))
	}
}

func TestDetectsOrphanFile(t *testing.T) {
	d, fs, _ := build(t, 1, 1)
	f, err := fs.Create("nameless")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Flush(); err != nil {
		t.Fatal(err)
	}
	// Created but never inserted anywhere: reachable by no name.
	rep := mustCheck(t, d)
	if !rules(rep)[RuleOrphan] {
		t.Errorf("want an %s violation, got:\n%s", RuleOrphan, strings.Join(rep.Strings(), "\n"))
	}
}

func TestCheckIsReadOnlyAndDeterministic(t *testing.T) {
	run := func() (string, int64) {
		d, fs, _ := build(t, 3, 2)
		fn, err := dir.ResolveName(fs, "file-2")
		if err != nil {
			t.Fatal(err)
		}
		f, err := fs.Open(fn)
		if err != nil {
			t.Fatal(err)
		}
		addr, err := f.PageAddr(1)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := d.PeekLabel(addr)
		lbl := disk.LabelFromWords(raw)
		lbl.Next = 999
		d.ZapLabel(addr, lbl.Words())
		w0 := d.Stats().Writes
		rep := mustCheck(t, d)
		if d.Stats().Writes != w0 {
			t.Fatal("Check wrote to the disk; fsck must only read")
		}
		return strings.Join(rep.Strings(), "\n"), d.Clock().Now().Nanoseconds()
	}
	v1, t1 := run()
	v2, t2 := run()
	if v1 != v2 {
		t.Errorf("two checks of identically damaged packs disagree:\n--\n%s\n--\n%s", v1, v2)
	}
	if t1 != t2 {
		t.Errorf("two checks took different simulated time: %d vs %d", t1, t2)
	}
}
