package scavenge

import (
	"fmt"
	"testing"

	"altoos/internal/dir"
	"altoos/internal/disk"
	"altoos/internal/file"
	"altoos/internal/sim"
	"altoos/internal/trace"
)

func TestCompactionCrashIsRecoverable(t *testing.T) {
	// Kill the power at various points during compaction. Whatever state
	// the permutation was in, a scavenge afterwards must produce a
	// well-formed file system with every file reachable.
	//
	// Content caveat, faithful to the original: a crash exactly between the
	// label and value writes of one sector leaves a duplicate absolute name
	// (good data at the source, a torn copy at the destination), and labels
	// alone cannot say which copy is right — "the question of what to do
	// with the inconsistencies is beyond the scope of this paper" (§3.5).
	// So at most ONE page of one file may come back wrong per crash; more
	// than that means a real bug.
	for _, after := range []int64{1, 2, 3, 7, 20, 55, 56} {
		d, _, _ := fragment(t, 5, 6)
		d.CrashAfterWrites(after)
		if _, _, err := Compact(d); err == nil {
			t.Fatalf("crash after %d writes: compaction claimed success", after)
		}
		d.ClearCrash()

		fs2, _, err := Run(d)
		if err != nil {
			t.Fatalf("crash after %d writes: scavenge failed: %v", after, err)
		}
		badPages := 0
		for i := 0; i < 5; i++ {
			name := fmt.Sprintf("frag-%d", i)
			fn, err := dir.ResolveName(fs2, name)
			if err != nil {
				t.Fatalf("crash after %d: %s unreachable: %v", after, name, err)
			}
			f, err := fs2.Open(fn)
			if err != nil {
				t.Fatalf("crash after %d: open %s: %v", after, name, err)
			}
			var buf [disk.PageWords]disk.Word
			for pn := 1; pn <= 6; pn++ {
				if _, err := f.ReadPage(disk.Word(pn), &buf); err != nil {
					t.Fatalf("crash after %d: %s page %d unreadable: %v", after, name, pn, err)
				}
				if want := pageOf(disk.Word(i*1000 + pn)); buf != want {
					badPages++
				}
			}
		}
		if badPages > 1 {
			t.Errorf("crash after %d writes: %d corrupted pages, at most 1 torn write is explainable",
				after, badPages)
		}
		// The recovered disk must be fully healthy: a second scavenge finds
		// nothing to fix.
		_, rep2, err := Run(d)
		if err != nil {
			t.Fatal(err)
		}
		if rep2.LinksRepaired != 0 || rep2.DuplicatesFreed != 0 || rep2.IncompleteFiles != 0 {
			t.Errorf("crash after %d: disk not fully healed: %+v", after, rep2)
		}
	}
}

func TestLowMemoryCompactionInterplay(t *testing.T) {
	// Compact, then low-memory scavenge, then verify content: the two
	// elaborate scavengers must compose.
	d, _, _ := fragment(t, 4, 5)
	if _, _, err := Compact(d); err != nil {
		t.Fatal(err)
	}
	fs2, rep, err := RunLowMemory(d, 64)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LinksRepaired != 0 {
		t.Errorf("low-memory scavenge after compaction repaired %d links", rep.LinksRepaired)
	}
	var buf [disk.PageWords]disk.Word
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("frag-%d", i)
		fn, err := dir.ResolveName(fs2, name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		f, err := fs2.Open(fn)
		if err != nil {
			t.Fatal(err)
		}
		for pn := 1; pn <= 5; pn++ {
			if _, err := f.ReadPage(disk.Word(pn), &buf); err != nil {
				t.Fatalf("%s page %d: %v", name, pn, err)
			}
			if want := pageOf(disk.Word(i*1000 + pn)); buf != want {
				t.Fatalf("%s page %d corrupted", name, pn)
			}
		}
	}
}

func TestScavengeVersionCollisions(t *testing.T) {
	// Two files sharing a FID but with different versions are distinct
	// files to the absolute naming scheme; the Scavenger must keep both.
	d, fs, root, files := build(t, 1, 2)
	_ = root
	// Fabricate a second version of file 0 by relabelling a fresh file's
	// pages (fault injection: this is what restoring an old pack copy with
	// a version bump looked like).
	g, err := fs.Create("version2")
	if err != nil {
		t.Fatal(err)
	}
	var p [disk.PageWords]disk.Word
	p[0] = 0x22
	if err := g.WritePage(1, &p, 2); err != nil {
		t.Fatal(err)
	}
	fv0 := files[0].FN().FV
	lastPN, _ := g.LastPage()
	for pn := disk.Word(0); pn <= lastPN; pn++ {
		a, err := g.PageAddr(pn)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := d.PeekLabel(a)
		lbl := disk.LabelFromWords(raw)
		lbl.FID = fv0.FID
		lbl.Version = fv0.Version + 1
		d.ZapLabel(a, lbl.Words())
	}

	fs2, rep, err := Run(d)
	if err != nil {
		t.Fatal(err)
	}
	// 1 original + descriptor + root + the fabricated version = 4, and both
	// versions of the FID survive as separate, readable files.
	if rep.FilesFound < 4 {
		t.Errorf("FilesFound = %d", rep.FilesFound)
	}
	if rep.HeadlessFreed != 0 {
		t.Errorf("version collision treated as headless: %+v", rep)
	}
	verify(t, fs2, 1, 2)
	// The fabricated version is reachable too (adopted by leader name).
	v2 := file.FN{FV: disk.FV{FID: fv0.FID, Version: fv0.Version + 1}, Leader: disk.NilVDA}
	fs2.SetRecovery(file.Recovery{ResolveFV: dir.ResolveFV(fs2)})
	h, err := fs2.Open(v2)
	if err != nil {
		t.Fatalf("version 2 lost: %v", err)
	}
	var buf [disk.PageWords]disk.Word
	if _, err := h.ReadPage(1, &buf); err != nil || buf[0] != 0x22 {
		t.Fatalf("version 2 data: %v", err)
	}
}

func TestScavengeEnormousDamageStillTerminates(t *testing.T) {
	// Corrupt a very large number of labels; scavenging must terminate and
	// produce a mountable system no matter what.
	d, _, _, _ := build(t, 6, 2)
	r := sim.NewRand(99)
	for i := 0; i < 500; i++ {
		d.CorruptLabel(disk.VDA(r.Intn(d.Geometry().NSectors())), r)
	}
	fs2, _, err := Run(d)
	if err != nil {
		t.Fatalf("scavenge drowned in damage: %v", err)
	}
	if fs2.FreeCount() == 0 {
		t.Error("no free space reconstructed")
	}
	// Idempotence even after chaos.
	_, rep2, err := Run(d)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.LinksRepaired != 0 || rep2.DuplicatesFreed != 0 {
		t.Errorf("second pass still repairing: %+v", rep2)
	}
}

func TestScavengeRepairsTornDirectoryPage(t *testing.T) {
	// A torn write inside the directory file itself: power fails while the
	// root directory's data page is half-written, leaving an intact label
	// over garbled value words with a stale checksum. The Scavenger must
	// notice the page is unreadable as a directory, rewrite it from the
	// entries it can trust, and re-adopt any file whose binding was lost —
	// leader names make every file recoverable by name (§3.4). Sixteen
	// entries push the binding table past the tear point (half a sector),
	// so the tear lands on real entries, not the page's unused tail.
	const nfiles = 16
	d, fs, root, _ := build(t, nfiles, 1)
	// Attach the recorder before the damage: checksums go live on first
	// attachment, so the torn write leaves a detectably stale one.
	rec := trace.New(1 << 14)
	d.SetRecorder(rec)
	late, err := fs.Create("late-file")
	if err != nil {
		t.Fatal(err)
	}
	p := pageOf(0x4444)
	if err := late.WritePage(1, &p, disk.PageBytes); err != nil {
		t.Fatal(err)
	}
	if err := late.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Flush(); err != nil {
		t.Fatal(err)
	}

	// The insert rewrites the root directory page label-then-value; let the
	// label land and tear the value mid-sector: an intact label over
	// garbled directory words with a stale checksum.
	d.SetTornCrash(true)
	d.CrashAfterWrites(1)
	if err := root.Insert("late-file", late.FN()); err == nil {
		t.Fatal("insert into torn directory page claimed success")
	}
	d.ClearCrash()
	d.SetTornCrash(false)
	if st := d.Stats(); st.TornWrites != 1 {
		t.Fatalf("TornWrites = %d, want 1 (the directory page)", st.TornWrites)
	}

	fs2, rep, err := Run(d)
	if err != nil {
		t.Fatalf("scavenge after torn directory write: %v", err)
	}
	// The scavenge must have tripped over the stale checksum while loading
	// the directory, and repaired or rebuilt the binding table.
	if rec.Counter("disk.crc.mismatch") == 0 {
		t.Error("scavenge never read the torn page: disk.crc.mismatch = 0")
	}
	if rep.DirsRepaired == 0 && rep.DirEntriesRemoved == 0 && rep.OrphansAdopted == 0 {
		t.Errorf("no directory repair reported after a torn directory page: %+v", rep)
	}

	// Every file, including the one whose insert crashed, is reachable by
	// name with its content intact: the torn page held bindings, not data.
	verify(t, fs2, nfiles, 1)
	fn, err := dir.ResolveName(fs2, "late-file")
	if err != nil {
		t.Fatalf("late-file unreachable after repair: %v", err)
	}
	f, err := fs2.Open(fn)
	if err != nil {
		t.Fatal(err)
	}
	var buf [disk.PageWords]disk.Word
	if _, err := f.ReadPage(1, &buf); err != nil {
		t.Fatal(err)
	}
	if buf != p {
		t.Error("late-file content corrupted by a directory-page tear")
	}

	// The repaired pack is fully healthy: a second scavenge is a no-op.
	_, rep2, err := Run(d)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.DirsRepaired != 0 || rep2.DirEntriesRemoved != 0 || rep2.OrphansAdopted != 0 {
		t.Errorf("second scavenge still repairing: %+v", rep2)
	}
}
