// Package scavenge implements the Scavenger (§3.5): the procedure that
// reconstructs the entire state of the file system from whatever fragmented
// state it has fallen into, using only the absolute information in the page
// labels and leader pages.
//
// "By reading all the labels on the disk, we can check that all the links
// are correct (reconstructing any that prove faulty), obtain full names for
// all existing files, and produce a list of free pages. ... We can then read
// all the directories and verify that each entry points to page 0 of an
// existing file, fixing up the address if necessary and detecting entries
// which point elsewhere. If any file remains unaccounted for by directory
// entries, we can make a new entry for it in the main directory, using its
// leader name."
//
// Two drivers share the repair machinery. Run holds the whole label table
// in memory — the paper's case where "a table with 48 bits per sector" fits
// main storage. RunLowMemory honours the other case ("larger disks require
// this list to be written on a specially reserved section of the disk"): it
// spills the table to free sectors as it sweeps, externally sorts it with a
// bounded in-core window, and streams the sorted groups through the same
// repairs.
//
// The Scavenger is deliberately not privileged: it is a client of the disk
// device, built from the same checked operations as everything else, and it
// only ever *rewrites hints* (links, maps, addresses) — the absolutes it
// found are what it preserves.
package scavenge

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"altoos/internal/dir"
	"altoos/internal/disk"
	"altoos/internal/file"
	"altoos/internal/sim"
	"altoos/internal/trace"
)

// Report describes everything one scavenging pass found and repaired.
type Report struct {
	SectorsScanned int
	FilesFound     int
	Directories    int
	FreePages      int
	BadSectors     int
	RetiredPages   int // pages carrying the bad-page label

	DuplicatesFreed   int // two sectors claimed the same absolute name
	HeadlessFreed     int // data pages with no leader anywhere
	IncompleteFiles   int // files truncated at a gap or short interior page
	PagesFreed        int
	LinksRepaired     int
	LeadersRepaired   int
	TailPagesAdded    int // empty pages appended to restore the invariant
	RootRecreated     bool
	DescRecreated     bool
	DirsRepaired      int
	DirEntriesFixed   int // leader-address hints corrected
	DirEntriesRemoved int // entries pointing at nothing
	OrphansAdopted    int

	SpilledEntries int // low-memory mode: table entries written to disk
	SpillSectors   int // low-memory mode: reserved sectors used

	Elapsed time.Duration // simulated time the pass took
}

// String summarizes the report in one line.
func (r *Report) String() string {
	return fmt.Sprintf(
		"scavenge: %d sectors, %d files (%d dirs), %d free, %d bad; repaired %d links, %d leaders, %d entries; adopted %d orphans; %v",
		r.SectorsScanned, r.FilesFound, r.Directories, r.FreePages, r.BadSectors,
		r.LinksRepaired, r.LeadersRepaired, r.DirEntriesFixed+r.DirEntriesRemoved,
		r.OrphansAdopted, r.Elapsed.Round(time.Millisecond))
}

// pageInfo is the table entry built for every in-use sector. The paper packs
// these into 48 bits; ours round-trips through exactly 8 on-disk words in
// the low-memory spill (the 7 label words plus the address).
type pageInfo struct {
	fv     disk.FV
	pn     disk.Word
	addr   disk.VDA
	length disk.Word
	next   disk.VDA
	prev   disk.VDA
	raw    [disk.LabelWords]disk.Word
}

// summary is the per-file record kept after a group has been repaired —
// bounded by the number of files, not sectors, which is what lets the
// low-memory driver discard page entries after use.
type summary struct {
	leaderAddr disk.VDA
	leaderRaw  [disk.LabelWords]disk.Word
	lastPN     disk.Word
	lastAddr   disk.VDA
	lastLen    int
	consec     bool
}

// scavenger carries one pass's working state.
type scavenger struct {
	dev      disk.Device
	report   *Report
	free     *file.BitMap // busy = not allocatable
	files    map[disk.FV][]*pageInfo
	order    []disk.FV // deterministic iteration order
	sums     map[disk.FV]*summary
	leaders  map[disk.FV]file.Leader
	reserved map[disk.VDA]bool // spill sectors: not allocatable while in use
	rec      *trace.Recorder   // the device's flight recorder; nil = off

	arena pageArena // block storage for the in-memory table
	sc    repairSc  // reusable op/buffer storage for the repair helpers
	dsk   disk.OpScratch
}

// repairSc is the scavenger's scratch for two-operation repair chains.
// Repairs run one at a time, so a single set of buffers serves all of them.
type repairSc struct {
	ops [2]disk.Op
	pat [disk.LabelWords]disk.Word
	lbl [disk.LabelWords]disk.Word
	val [disk.PageWords]disk.Word
}

// onesPage is the all-ones value written into freed pages; Write actions
// only read the buffer, so one shared copy serves every freeRaw. zeroPage
// likewise backs every freshly appended empty tail page.
var (
	onesPage = func() (v [disk.PageWords]disk.Word) {
		for i := range v {
			v[i] = 0xFFFF
		}
		return v
	}()
	zeroPage [disk.PageWords]disk.Word
)

// pageArena allocates pageInfo records in blocks, so a sweep of the whole
// disk costs a handful of allocations instead of one per in-use sector.
// Pointers into an arena block stay valid: blocks are never reallocated.
type pageArena struct {
	blocks [][]pageInfo
}

func (a *pageArena) new(p pageInfo) *pageInfo {
	const blockSize = 512
	if n := len(a.blocks); n == 0 || len(a.blocks[n-1]) == cap(a.blocks[n-1]) {
		a.blocks = append(a.blocks, make([]pageInfo, 0, blockSize))
	}
	b := &a.blocks[len(a.blocks)-1]
	*b = append(*b, p)
	return &(*b)[len(*b)-1]
}

func newScavenger(dev disk.Device) *scavenger {
	return &scavenger{
		dev:      dev,
		report:   &Report{},
		files:    map[disk.FV][]*pageInfo{},
		sums:     map[disk.FV]*summary{},
		leaders:  map[disk.FV]file.Leader{},
		reserved: map[disk.VDA]bool{},
		rec:      trace.Of(dev),
	}
}

// phase opens a span covering one pass of the scavenger, named so the trace
// shows where the paper's "about a minute" actually goes.
func (s *scavenger) phase(name string) trace.Span {
	return s.rec.Begin(s.dev.Clock(), trace.KindScavPhase, name, 0, 0)
}

// traceReport publishes the pass's headline numbers as counters.
func (s *scavenger) traceReport(rep *Report) {
	if s.rec == nil {
		return
	}
	s.rec.Add("scavenge.runs", 1)
	s.rec.Add("scavenge.files", int64(rep.FilesFound))
	s.rec.Add("scavenge.links.repaired", int64(rep.LinksRepaired))
	s.rec.Add("scavenge.leaders.repaired", int64(rep.LeadersRepaired))
	s.rec.Add("scavenge.pages.freed", int64(rep.PagesFreed))
	s.rec.Add("scavenge.orphans.adopted", int64(rep.OrphansAdopted))
}

// Run scavenges the device with the whole table in memory and returns a
// freshly mounted file system plus the report. It needs no readable
// descriptor, directory or leader to start from — only the labels.
func Run(dev disk.Device) (*file.FS, *Report, error) {
	s := newScavenger(dev)
	watch := sim.Watch(dev.Clock())

	sp := s.phase("sweep")
	err := s.sweep(s.keepInMemory)
	sp.End()
	if err != nil {
		return nil, nil, err
	}
	sp = s.phase("fix-files")
	err = s.fixFiles()
	sp.End()
	if err != nil {
		return nil, nil, err
	}
	fs, rep, err := s.finish()
	if err != nil {
		return nil, nil, err
	}
	rep.Elapsed = watch.Elapsed()
	s.traceReport(rep)
	return fs, rep, nil
}

// RunLowMemory scavenges holding at most window table entries in memory,
// spilling the rest to free sectors of the disk being scavenged — the
// paper's large-disk mode. The spilled sectors keep their free labels (only
// their values are borrowed), so a crash mid-scavenge costs nothing.
func RunLowMemory(dev disk.Device, window int) (*file.FS, *Report, error) {
	if window < 64 {
		window = 64
	}
	s := newScavenger(dev)
	watch := sim.Watch(dev.Clock())

	spill := newSpillTable(s, window)
	sp := s.phase("sweep")
	err := s.sweep(spill.add)
	sp.End()
	if err != nil {
		return nil, nil, err
	}
	sp = s.phase("spill-sort")
	if err := spill.finishRuns(); err != nil {
		sp.End()
		return nil, nil, err
	}
	// Stream the externally sorted table, one file group at a time, through
	// the same repairs the in-memory driver uses.
	err = spill.mergeGroups(func(fv disk.FV, pages []*pageInfo) error {
		return s.fixOneGroup(fv, pages)
	})
	sp.End()
	if err != nil {
		return nil, nil, err
	}
	spill.release()
	s.report.FreePages = s.free.CountFree()

	fs, rep, err := s.finish()
	if err != nil {
		return nil, nil, err
	}
	rep.Elapsed = watch.Elapsed()
	s.traceReport(rep)
	return fs, rep, nil
}

// finish runs the shared passes after per-file repair: system structures,
// leader refresh, directories, descriptor flush.
func (s *scavenger) finish() (*file.FS, *Report, error) {
	sp := s.phase("rebuild-system")
	fs, root, err := s.rebuildSystem()
	sp.End()
	if err != nil {
		return nil, nil, err
	}
	// Recompute every leader's hint fields (last page, consecutive flag)
	// from the absolutes: "when it is complete, all hints have been
	// recomputed from absolutes".
	sp = s.phase("refresh-leaders")
	for _, fv := range s.order {
		if _, ok := s.sums[fv]; ok {
			if _, err := s.leaderOf(fv); err != nil {
				sp.End()
				return nil, nil, err
			}
		}
	}
	sp.End()
	sp = s.phase("fix-directories")
	err = s.fixDirectories(fs, root)
	sp.End()
	if err != nil {
		return nil, nil, err
	}
	if err := fs.Flush(); err != nil {
		return nil, nil, fmt.Errorf("scavenge: writing descriptor: %w", err)
	}
	return fs, s.report, nil
}

// keepInMemory is the in-memory sweep sink.
func (s *scavenger) keepInMemory(p pageInfo) error {
	if _, ok := s.files[p.fv]; !ok {
		s.order = append(s.order, p.fv)
	}
	s.files[p.fv] = append(s.files[p.fv], s.arena.new(p))
	return nil
}

// sweep reads every label on the disk (pass 1), one cylinder of header-checked
// label reads per chain: the drive makes a single scheduling decision per
// cylinder and the labels stream by in rotation order. The chain may execute
// out of rotational order, but entries are emitted in ascending address
// order, so repairs are identical to a sector-at-a-time sweep.
func (s *scavenger) sweep(emit func(pageInfo) error) error {
	g := s.dev.Geometry()
	n := g.NSectors()
	s.report.SectorsScanned = n
	s.free = file.NewBitMap(n)

	batch := g.Heads * g.SectorsPerTrack
	ops := make([]disk.Op, batch)
	hdrs := make([][disk.HeaderWords]disk.Word, batch)
	lbls := make([][disk.LabelWords]disk.Word, batch)
	slotErr := make([]error, batch)
	slotLbl := make([]*[disk.LabelWords]disk.Word, batch)
	pack := s.dev.Pack()

	for base := 0; base < n; base += batch {
		m := batch
		if base+m > n {
			m = n - base
		}
		for i := 0; i < m; i++ {
			//altovet:allow wordwidth base+i < NSectors, which fits a VDA
			addr := disk.VDA(base + i)
			hdrs[i] = disk.Header{Pack: pack, Addr: addr}.Words()
			ops[i] = disk.Op{
				Addr:       addr,
				Header:     disk.Check,
				HeaderData: &hdrs[i],
				Label:      disk.Read,
				LabelData:  &lbls[i],
			}
		}
		errs := disk.DoChainOn(s.dev, ops[:m], disk.FreeOrder)
		// The scheduler permutes ops in place; rebuild ascending-address
		// order by indexing each op's result at addr - base.
		for k := 0; k < m; k++ {
			idx := int(ops[k].Addr) - base
			slotLbl[idx] = ops[k].LabelData
			if errs != nil {
				slotErr[idx] = errs[k]
			} else {
				slotErr[idx] = nil
			}
		}
		for i := 0; i < m; i++ {
			//altovet:allow wordwidth base+i < NSectors, which fits a VDA
			addr := disk.VDA(base + i)
			raw, err := *slotLbl[i], slotErr[i]
			switch {
			case errors.Is(err, disk.ErrBadSector):
				s.report.BadSectors++
				s.free.SetBusy(addr)
				continue
			case disk.IsCheck(err):
				// Header does not match the address: unreliable sector.
				s.report.BadSectors++
				s.free.SetBusy(addr)
				continue
			case err != nil:
				return fmt.Errorf("scavenge: sweeping sector %d: %w", addr, err)
			}
			switch {
			case disk.IsFreeLabel(raw):
				continue // free: stays free in the map
			case disk.IsBadLabel(raw):
				s.report.RetiredPages++
				s.free.SetBusy(addr)
			default:
				lbl := disk.LabelFromWords(raw)
				s.free.SetBusy(addr)
				if err := emit(pageInfo{
					fv: lbl.FV(), pn: lbl.PageNum, addr: addr,
					length: lbl.Length, next: lbl.Next, prev: lbl.Prev, raw: raw,
				}); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// freeRaw releases a sector whose current label words are raw: check the
// label we read, then write the free pattern over label and value — one
// two-operation ordered chain on the sector.
func (s *scavenger) freeRaw(addr disk.VDA, raw [disk.LabelWords]disk.Word) error {
	s.sc.pat = raw
	s.sc.lbl = disk.FreeLabelWords()
	s.sc.ops[0] = disk.Op{Addr: addr, Label: disk.Check, LabelData: &s.sc.pat}
	s.sc.ops[1] = disk.Op{
		Addr: addr, Label: disk.Write, LabelData: &s.sc.lbl,
		Value: disk.Write, ValueData: &onesPage,
	}
	if err := disk.FirstChainError(disk.DoChainOn(s.dev, s.sc.ops[:], disk.Ordered)); err != nil {
		return err
	}
	s.free.SetFree(addr)
	s.report.PagesFreed++
	return nil
}

// relabelRaw rewrites a sector's label, preserving its value: one operation
// checks the old label and reads the value, the next (a revolution later)
// writes the corrected label and the value back. Chained, so the drive
// schedules the pair once.
func (s *scavenger) relabelRaw(p *pageInfo, newLbl disk.Label) error {
	s.sc.pat = p.raw
	s.sc.lbl = newLbl.Words()
	s.sc.ops[0] = disk.Op{
		Addr: p.addr, Label: disk.Check, LabelData: &s.sc.pat,
		Value: disk.Read, ValueData: &s.sc.val,
	}
	s.sc.ops[1] = disk.Op{
		Addr: p.addr, Label: disk.Write, LabelData: &s.sc.lbl,
		Value: disk.Write, ValueData: &s.sc.val,
	}
	if err := disk.FirstChainError(disk.DoChainOn(s.dev, s.sc.ops[:], disk.Ordered)); err != nil {
		return err
	}
	p.raw = s.sc.lbl
	p.length = newLbl.Length
	p.next = newLbl.Next
	p.prev = newLbl.Prev
	return nil
}

// allocFresh claims a free sector for a brand-new page, skipping sectors the
// spill table has borrowed.
func (s *scavenger) allocFresh(lbl disk.Label, v *[disk.PageWords]disk.Word) (disk.VDA, error) {
	for i := 0; i < s.free.Len(); i++ {
		a := disk.VDA(i)
		if s.free.Busy(a) || s.reserved[a] {
			continue
		}
		s.free.SetBusy(a)
		err := s.dsk.Allocate(s.dev, a, lbl, v)
		if err == nil {
			return a, nil
		}
		if disk.IsCheck(err) || errors.Is(err, disk.ErrBadSector) {
			continue // stays busy
		}
		return disk.NilVDA, err
	}
	return disk.NilVDA, file.ErrDiskFull
}

// fixFiles (pass 2, in-memory driver) runs fixOneGroup over every file.
func (s *scavenger) fixFiles() error {
	// Iterate a snapshot: dropped files remove themselves from s.order.
	order := append([]disk.FV(nil), s.order...)
	for _, fv := range order {
		if err := s.fixOneGroup(fv, s.files[fv]); err != nil {
			return err
		}
	}
	s.report.FreePages = s.free.CountFree()
	return nil
}

// fixOneGroup enforces one file's structure from the absolutes: contiguous
// pages 0..n, interior pages full, last page partial, links pointing at the
// right neighbours. On success it records the file's summary.
func (s *scavenger) fixOneGroup(fv disk.FV, pages []*pageInfo) error {
	sort.Slice(pages, func(i, j int) bool {
		if pages[i].pn != pages[j].pn {
			return pages[i].pn < pages[j].pn
		}
		return pages[i].addr < pages[j].addr
	})

	// Duplicates: the same absolute name on two sectors. Keep the first.
	var kept []*pageInfo
	for _, p := range pages {
		if len(kept) > 0 && kept[len(kept)-1].pn == p.pn {
			if err := s.freeRaw(p.addr, p.raw); err != nil {
				return err
			}
			s.report.DuplicatesFreed++
			continue
		}
		kept = append(kept, p)
	}
	pages = kept

	// Headless: no page 0 anywhere. Without a leader there is no name to
	// recover the data under; release the pages.
	if pages[0].pn != 0 {
		for _, p := range pages {
			if err := s.freeRaw(p.addr, p.raw); err != nil {
				return err
			}
		}
		s.report.HeadlessFreed++
		s.drop(fv)
		return nil
	}

	// Contiguous prefix; a gap truncates the file there.
	end := 1
	for end < len(pages) && pages[end].pn == pages[end-1].pn+1 {
		end++
	}
	// A short interior page also ends the file: bytes beyond it cannot be
	// part of a well-formed file.
	for i := 1; i < end-1; i++ {
		if pages[i].length < disk.PageBytes {
			end = i + 1
			break
		}
	}
	if end < len(pages) {
		for _, p := range pages[end:] {
			if err := s.freeRaw(p.addr, p.raw); err != nil {
				return err
			}
		}
		pages = pages[:end]
		s.report.IncompleteFiles++
	}

	// The leader must be exactly full.
	if pages[0].length != disk.PageBytes {
		lbl := disk.LabelFromWords(pages[0].raw)
		lbl.Length = disk.PageBytes
		if err := s.relabelRaw(pages[0], lbl); err != nil {
			return err
		}
		s.report.LeadersRepaired++
	}

	// Restore "the last page is partial": a leader-only file gets an empty
	// page 1; a full last page gets an empty successor.
	if len(pages) == 1 || pages[len(pages)-1].length >= disk.PageBytes {
		last := pages[len(pages)-1]
		newLbl := disk.Label{
			FID: fv.FID, Version: fv.Version, PageNum: last.pn + 1,
			Length: 0, Next: disk.NilVDA, Prev: last.addr,
		}
		a, err := s.allocFresh(newLbl, &zeroPage)
		if err != nil {
			return fmt.Errorf("scavenge: extending %v: %w", fv, err)
		}
		p := &pageInfo{fv: fv, pn: last.pn + 1, addr: a, length: 0,
			next: disk.NilVDA, prev: last.addr, raw: newLbl.Words()}
		pages = append(pages, p)
		s.report.TailPagesAdded++
	}

	// Rebuild the links from the absolutes.
	for i, p := range pages {
		next, prev := disk.NilVDA, disk.NilVDA
		if i+1 < len(pages) {
			next = pages[i+1].addr
		}
		if i > 0 {
			prev = pages[i-1].addr
		}
		if p.next != next || p.prev != prev {
			lbl := disk.LabelFromWords(p.raw)
			lbl.Next = next
			lbl.Prev = prev
			if err := s.relabelRaw(p, lbl); err != nil {
				return err
			}
			s.report.LinksRepaired++
		}
	}

	consec := true
	for i := 1; i < len(pages); i++ {
		if pages[i].addr != pages[i-1].addr+1 {
			consec = false
			break
		}
	}
	last := pages[len(pages)-1]
	s.setSummary(fv, &summary{
		leaderAddr: pages[0].addr,
		leaderRaw:  pages[0].raw,
		lastPN:     last.pn,
		lastAddr:   last.addr,
		lastLen:    int(last.length),
		consec:     consec,
	})
	if _, inMem := s.files[fv]; inMem {
		s.files[fv] = pages
	}
	s.report.FilesFound++
	if fv.FID.IsDirectory() {
		s.report.Directories++
	}
	return nil
}

// setSummary records a repaired file, maintaining deterministic order for
// the low-memory driver (the in-memory driver set order during the sweep).
func (s *scavenger) setSummary(fv disk.FV, sum *summary) {
	if _, ok := s.sums[fv]; !ok {
		if _, inMem := s.files[fv]; !inMem {
			s.order = append(s.order, fv)
		}
	}
	s.sums[fv] = sum
}

// drop removes all record of a file that did not survive repair.
func (s *scavenger) drop(fv disk.FV) {
	delete(s.files, fv)
	delete(s.sums, fv)
	for i, v := range s.order {
		if v == fv {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
}

// leaderOf reads and decodes a file's leader, synthesizing one if the value
// is damaged beyond parsing, and refreshing the hint fields.
func (s *scavenger) leaderOf(fv disk.FV) (file.Leader, error) {
	if ldr, ok := s.leaders[fv]; ok {
		return ldr, nil
	}
	sum, ok := s.sums[fv]
	if !ok {
		return file.Leader{}, fmt.Errorf("scavenge: no summary for %v", fv)
	}
	s.sc.pat = sum.leaderRaw
	if err := s.dev.Do(&disk.Op{
		Addr: sum.leaderAddr, Label: disk.Check, LabelData: &s.sc.pat,
		Value: disk.Read, ValueData: &s.sc.val,
	}); err != nil {
		return file.Leader{}, err
	}
	ldr, err := file.DecodeLeader(&s.sc.val)
	damaged := err != nil || ldr.Name == ""
	if damaged {
		ldr = file.Leader{Name: fmt.Sprintf("Rescued!%d.", uint32(fv.FID&^disk.DirFIDBit))}
	}
	if damaged || ldr.LastPN != sum.lastPN || ldr.LastAddr != sum.lastAddr || ldr.MaybeConsecutive != sum.consec {
		ldr.LastPN, ldr.LastAddr, ldr.MaybeConsecutive = sum.lastPN, sum.lastAddr, sum.consec
		if err := ldr.Encode(&s.sc.val); err != nil {
			return file.Leader{}, err
		}
		s.sc.pat = sum.leaderRaw
		if err := s.dev.Do(&disk.Op{
			Addr: sum.leaderAddr, Label: disk.Check, LabelData: &s.sc.pat,
			Value: disk.Write, ValueData: &s.sc.val,
		}); err != nil {
			return file.Leader{}, err
		}
		s.report.LeadersRepaired++
	}
	s.leaders[fv] = ldr
	return ldr, nil
}

// findFID returns the surviving file with the given FID (any version).
func (s *scavenger) findFID(fid disk.FID) (disk.FV, *summary, bool) {
	for _, fv := range s.order {
		if sum, ok := s.sums[fv]; ok && fv.FID == fid {
			return fv, sum, true
		}
	}
	return disk.FV{}, nil, false
}

// openTrusted builds a file handle from a verified summary.
func (s *scavenger) openTrusted(fs *file.FS, fv disk.FV) (*file.File, error) {
	sum := s.sums[fv]
	ldr, err := s.leaderOf(fv)
	if err != nil {
		return nil, err
	}
	return fs.OpenTrusted(file.FN{FV: fv, Leader: sum.leaderAddr}, ldr, sum.lastPN, sum.lastLen), nil
}

// rebuildSystem (pass 3) reconstructs the descriptor and, if necessary, the
// descriptor file and root directory themselves.
func (s *scavenger) rebuildSystem() (*file.FS, *dir.Directory, error) {
	// Serial high-water mark from the absolutes.
	next := uint32(disk.FirstUserFID)
	for _, fv := range s.order {
		if _, ok := s.sums[fv]; !ok {
			continue
		}
		serial := uint32(fv.FID &^ disk.DirFIDBit)
		if serial >= next {
			next = serial + 1
		}
	}

	desc := &file.Descriptor{
		Shape:      s.dev.Geometry(),
		Pack:       s.dev.Pack(),
		NextSerial: next,
		Free:       s.free,
	}
	// The boot page stays reserved even if no boot file exists yet.
	desc.Free.SetBusy(file.BootVDA)

	var descFN file.FN
	if fv, sum, ok := s.findFID(disk.DescriptorFID); ok {
		descFN = file.FN{FV: fv, Leader: sum.leaderAddr}
	}
	fs := file.Adopt(s.dev, desc, descFN)

	if descFN == (file.FN{}) {
		at := file.DescLeaderVDA
		if s.free.Busy(at) {
			at = disk.NilVDA
		}
		f, err := fs.CreateWithFV(disk.FV{FID: disk.DescriptorFID, Version: 1}, "DiskDescriptor.", at)
		if err != nil {
			return nil, nil, fmt.Errorf("scavenge: recreating descriptor file: %w", err)
		}
		fs.SetDescriptorFN(f.FN())
		s.report.DescRecreated = true
	}

	var root *dir.Directory
	if fv, _, ok := s.findFID(disk.SysDirFID); ok {
		f, err := s.openTrusted(fs, fv)
		if err != nil {
			return nil, nil, err
		}
		root = dir.Adopt(fs, f)
	} else {
		at := file.SysDirLeaderVDA
		if s.free.Busy(at) {
			at = disk.NilVDA
		}
		f, err := fs.CreateWithFV(disk.FV{FID: disk.SysDirFID, Version: 1}, "SysDir.", at)
		if err != nil {
			return nil, nil, fmt.Errorf("scavenge: recreating root directory: %w", err)
		}
		root = dir.Adopt(fs, f)
		if err := root.Clear(); err != nil {
			return nil, nil, err
		}
		s.report.RootRecreated = true
	}
	fs.SetRootDir(root.FN())
	return fs, root, nil
}

// fixDirectories (pass 4) verifies every directory entry against the table,
// fixes stale leader-address hints, drops entries pointing at nothing, and
// adopts unreferenced files into the root directory under their leader
// names.
func (s *scavenger) fixDirectories(fs *file.FS, root *dir.Directory) error {
	leaderAddr := func(fv disk.FV) (disk.VDA, bool) {
		sum, ok := s.sums[fv]
		if !ok {
			return 0, false
		}
		return sum.leaderAddr, true
	}

	referenced := map[disk.FV]bool{}
	// Every directory found on the disk is checked, reachable or not: a
	// disconnected directory still holds valid name bindings.
	for _, fv := range s.order {
		if _, ok := s.sums[fv]; !ok || !fv.FID.IsDirectory() {
			continue
		}
		var d *dir.Directory
		if fv.FID == disk.SysDirFID {
			d = root
		} else {
			f, err := s.openTrusted(fs, fv)
			if err != nil {
				return err
			}
			d = dir.Adopt(fs, f)
		}
		entries, err := d.Load()
		damaged := err != nil
		changed := false
		var fixed []dir.Entry
		for _, e := range entries {
			addr, ok := leaderAddr(e.FN.FV)
			if !ok {
				s.report.DirEntriesRemoved++
				changed = true
				continue
			}
			if e.FN.Leader != addr {
				e.FN.Leader = addr
				s.report.DirEntriesFixed++
				changed = true
			}
			referenced[e.FN.FV] = true
			fixed = append(fixed, e)
		}
		if damaged || changed {
			if err := d.Store(fixed); err != nil {
				return fmt.Errorf("scavenge: repairing directory %v: %w", fv, err)
			}
			if damaged {
				s.report.DirsRepaired++
			}
		}
	}

	// Orphans: every surviving file must be reachable by name. This is the
	// sole function of the leader name (§3.4).
	rootEntries, err := root.Load()
	if err != nil {
		return err
	}
	names := map[string]bool{}
	for _, e := range rootEntries {
		names[e.Name] = true
	}
	for _, fv := range s.order {
		sum, ok := s.sums[fv]
		if !ok || referenced[fv] {
			continue
		}
		ldr, err := s.leaderOf(fv)
		if err != nil {
			return err
		}
		name := ldr.Name
		for i := 2; names[name]; i++ {
			name = fmt.Sprintf("%s!%d", ldr.Name, i)
		}
		names[name] = true
		fn := file.FN{FV: fv, Leader: sum.leaderAddr}
		if err := root.Insert(name, fn); err != nil {
			return fmt.Errorf("scavenge: adopting %v as %q: %w", fv, name, err)
		}
		s.report.OrphansAdopted++
	}
	return nil
}
