package scavenge

import (
	"fmt"
	"testing"

	"altoos/internal/dir"
	"altoos/internal/disk"
	"altoos/internal/file"
	"altoos/internal/sim"
)

func TestLowMemoryScavengeMatchesInMemory(t *testing.T) {
	// The same damaged disk scavenged both ways must produce equivalent
	// results: same files reachable, same contents.
	mk := func() *disk.Drive {
		d, fs, root, files := build(t, 10, 3)
		_ = fs
		// Damage: orphan one file, break one link, leave a stale entry.
		if err := root.Remove("file-3"); err != nil {
			t.Fatal(err)
		}
		addr, err := files[5].PageAddr(2)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := d.PeekLabel(addr)
		lbl := disk.LabelFromWords(raw)
		lbl.Next = 4009
		d.ZapLabel(addr, lbl.Words())
		return d
	}

	dMem := mk()
	_, repMem, err := Run(dMem)
	if err != nil {
		t.Fatal(err)
	}

	dLow := mk()
	fsLow, repLow, err := RunLowMemory(dLow, 64)
	if err != nil {
		t.Fatal(err)
	}
	if repLow.SpilledEntries == 0 || repLow.SpillSectors == 0 {
		t.Fatalf("low-memory run did not spill: %+v", repLow)
	}
	if repLow.FilesFound != repMem.FilesFound {
		t.Errorf("files found: low %d vs mem %d", repLow.FilesFound, repMem.FilesFound)
	}
	if repLow.OrphansAdopted != repMem.OrphansAdopted {
		t.Errorf("orphans: low %d vs mem %d", repLow.OrphansAdopted, repMem.OrphansAdopted)
	}
	if repLow.LinksRepaired != repMem.LinksRepaired {
		t.Errorf("links: low %d vs mem %d", repLow.LinksRepaired, repMem.LinksRepaired)
	}
	verify(t, fsLow, 10, 3)
}

func TestLowMemoryScavengeTinyWindow(t *testing.T) {
	// A pathologically small window forces many runs and a wide merge.
	d, _, _, _ := build(t, 12, 4)
	fs2, rep, err := RunLowMemory(d, 1) // clamped to the 64 minimum
	if err != nil {
		t.Fatal(err)
	}
	if rep.SpilledEntries < 60 {
		t.Errorf("expected heavy spilling, got %d entries", rep.SpilledEntries)
	}
	verify(t, fs2, 12, 4)
}

func TestLowMemorySpillSectorsComeBackFree(t *testing.T) {
	d, _, _, _ := build(t, 5, 2)
	fs2, rep, err := RunLowMemory(d, 64)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SpillSectors == 0 {
		t.Fatal("no sectors borrowed")
	}
	// Free counts must match an in-memory scavenge of an identical disk:
	// nothing borrowed stays reserved.
	d2, _, _, _ := build(t, 5, 2)
	fs3, _, err := Run(d2)
	if err != nil {
		t.Fatal(err)
	}
	if fs2.FreeCount() != fs3.FreeCount() {
		t.Errorf("free pages differ: low %d vs mem %d", fs2.FreeCount(), fs3.FreeCount())
	}
}

func TestLowMemoryScavengeIdempotent(t *testing.T) {
	d, _, _, _ := build(t, 6, 3)
	if _, _, err := RunLowMemory(d, 64); err != nil {
		t.Fatal(err)
	}
	_, rep2, err := RunLowMemory(d, 64)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.LinksRepaired != 0 || rep2.LeadersRepaired != 0 || rep2.OrphansAdopted != 0 {
		t.Errorf("second low-memory scavenge not idempotent: %+v", rep2)
	}
}

func TestLowMemoryDestroyedRoot(t *testing.T) {
	d, _, root, _ := build(t, 4, 2)
	lastPN, _ := root.File().LastPage()
	for pn := disk.Word(0); pn <= lastPN; pn++ {
		addr, err := root.File().PageAddr(pn)
		if err != nil {
			t.Fatal(err)
		}
		d.ZapLabel(addr, disk.FreeLabelWords())
	}
	fs2, rep, err := RunLowMemory(d, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.RootRecreated || rep.OrphansAdopted < 4 {
		t.Errorf("root recovery failed under low memory: %+v", rep)
	}
	verify(t, fs2, 4, 2)
}

func TestSpillSortAndMergeProperty(t *testing.T) {
	// Random tables must come back in exact key order with all entries.
	for seed := uint64(1); seed <= 4; seed++ {
		r := sim.NewRand(seed)
		d, err := disk.NewDrive(disk.Diablo31(), 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		s := newScavenger(d)
		s.free = file.NewBitMap(d.Geometry().NSectors())
		// Mark a band busy so borrow has to hunt.
		for i := 0; i < 100; i++ {
			s.free.SetBusy(disk.VDA(r.Intn(400)))
		}
		spill := newSpillTable(s, 64)
		n := 300 + r.Intn(300)
		want := 0
		for i := 0; i < n; i++ {
			p := pageInfo{
				fv:   disk.FV{FID: disk.FID(1 + r.Intn(20)), Version: 1},
				pn:   disk.Word(r.Intn(50)),
				addr: disk.VDA(1000 + i),
			}
			lbl := disk.Label{FID: p.fv.FID, Version: 1, PageNum: p.pn}
			p.raw = lbl.Words()
			p.length = 0
			spill.lastSeen = disk.VDA(d.Geometry().NSectors() - 1)
			if err := spill.add(p); err != nil {
				t.Fatal(err)
			}
			want++
		}
		if err := spill.finishRuns(); err != nil {
			t.Fatal(err)
		}
		got := 0
		var prev *pageInfo
		err = spill.mergeGroups(func(fv disk.FV, pages []*pageInfo) error {
			for _, p := range pages {
				if p.fv != fv {
					return fmt.Errorf("group mixes files")
				}
				if prev != nil && keyLess(p, prev) {
					return fmt.Errorf("out of order: %v after %v", p, prev)
				}
				cp := *p
				prev = &cp
				got++
			}
			return nil
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got != want {
			t.Fatalf("seed %d: merged %d entries, want %d", seed, got, want)
		}
	}
}

func TestBorrowFailsOnFullDisk(t *testing.T) {
	d, err := disk.NewDrive(disk.Diablo31(), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := newScavenger(d)
	s.free = file.NewBitMap(d.Geometry().NSectors())
	for i := 0; i < s.free.Len(); i++ {
		s.free.SetBusy(disk.VDA(i))
	}
	spill := newSpillTable(s, 64)
	spill.lastSeen = disk.VDA(s.free.Len() - 1)
	if _, err := spill.borrow(); err == nil {
		t.Fatal("borrow succeeded on a full disk")
	}
	_ = dir.Walk // keep dir import for build()'s helpers in this package
}
