package scavenge

import (
	"fmt"
	"testing"

	"altoos/internal/dir"
	"altoos/internal/disk"
	"altoos/internal/file"
)

// fragment builds a drive whose files' pages are interleaved: nfiles files
// grown round-robin one page at a time, so consecutive pages of one file are
// nfiles sectors apart.
func fragment(t *testing.T, nfiles, pagesEach int) (*disk.Drive, *file.FS, []*file.File) {
	t.Helper()
	d, err := disk.NewDrive(disk.Diablo31(), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := file.Format(d)
	if err != nil {
		t.Fatal(err)
	}
	root, err := dir.InitRoot(fs)
	if err != nil {
		t.Fatal(err)
	}
	files := make([]*file.File, nfiles)
	for i := range files {
		f, err := fs.Create(fmt.Sprintf("frag-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		files[i] = f
		if err := root.Insert(fmt.Sprintf("frag-%d", i), f.FN()); err != nil {
			t.Fatal(err)
		}
	}
	for pn := 1; pn <= pagesEach; pn++ {
		for i, f := range files {
			p := pageOf(disk.Word(i*1000 + pn))
			if err := f.WritePage(disk.Word(pn), &p, disk.PageBytes); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, f := range files {
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Flush(); err != nil {
		t.Fatal(err)
	}
	return d, fs, files
}

// readSequentially times a steady-state sequential read of the named file:
// one warm-up pass fills the hint cache, the second is measured — the
// regime the paper's sequential-speed claims describe.
func readSequentially(t *testing.T, fs *file.FS, name string) (perPage float64) {
	t.Helper()
	fn, err := dir.ResolveName(fs, name)
	if err != nil {
		t.Fatal(err)
	}
	f, err := fs.Open(fn)
	if err != nil {
		t.Fatal(err)
	}
	lastPN, _ := f.LastPage()
	var buf [disk.PageWords]disk.Word
	for pass := 0; pass < 2; pass++ {
		start := fs.Device().Clock().Now()
		for pn := disk.Word(1); pn <= lastPN; pn++ {
			if _, err := f.ReadPage(pn, &buf); err != nil {
				t.Fatalf("%s page %d: %v", name, pn, err)
			}
		}
		perPage = (fs.Device().Clock().Now() - start).Seconds() / float64(lastPN)
	}
	return perPage
}

func TestCompactMakesFilesConsecutive(t *testing.T) {
	d, _, _ := fragment(t, 6, 8)
	fs2, rep, err := Compact(d)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PagesMoved == 0 {
		t.Fatal("nothing moved on a fragmented disk")
	}
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("frag-%d", i)
		fn, err := dir.ResolveName(fs2, name)
		if err != nil {
			t.Fatal(err)
		}
		f, err := fs2.Open(fn)
		if err != nil {
			t.Fatal(err)
		}
		if !f.Leader().MaybeConsecutive {
			t.Errorf("%s not marked consecutive after compaction", name)
		}
		prev, err := f.PageAddr(0)
		if err != nil {
			t.Fatal(err)
		}
		lastPN, _ := f.LastPage()
		for pn := disk.Word(1); pn <= lastPN; pn++ {
			a, err := f.PageAddr(pn)
			if err != nil {
				t.Fatal(err)
			}
			if a != prev+1 {
				t.Fatalf("%s page %d at %d, want %d", name, pn, a, prev+1)
			}
			prev = a
		}
	}
}

func TestCompactPreservesContent(t *testing.T) {
	d, _, _ := fragment(t, 4, 6)
	fs2, _, err := Compact(d)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("frag-%d", i)
		fn, err := dir.ResolveName(fs2, name)
		if err != nil {
			t.Fatal(err)
		}
		f, err := fs2.Open(fn)
		if err != nil {
			t.Fatal(err)
		}
		var buf [disk.PageWords]disk.Word
		for pn := 1; pn <= 6; pn++ {
			if _, err := f.ReadPage(disk.Word(pn), &buf); err != nil {
				t.Fatalf("%s page %d: %v", name, pn, err)
			}
			if want := pageOf(disk.Word(i*1000 + pn)); buf != want {
				t.Fatalf("%s page %d corrupted by compaction", name, pn)
			}
		}
	}
}

func TestCompactKeepsStandardAddresses(t *testing.T) {
	d, _, _ := fragment(t, 3, 3)
	fs2, _, err := Compact(d)
	if err != nil {
		t.Fatal(err)
	}
	if fs2.RootDir().Leader != file.SysDirLeaderVDA {
		t.Errorf("root leader moved to %d", fs2.RootDir().Leader)
	}
	if fs2.DescriptorFN().Leader != file.DescLeaderVDA {
		t.Errorf("descriptor leader moved to %d", fs2.DescriptorFN().Leader)
	}
	// The disk must still mount cold.
	if _, err := file.Mount(d); err != nil {
		t.Fatalf("Mount after compaction: %v", err)
	}
}

func TestCompactSpeedsUpSequentialReadByAnOrderOfMagnitude(t *testing.T) {
	// §3.5: compaction "typically increases the speed with which the files
	// can be read sequentially by an order of magnitude".
	d, fs, _ := fragment(t, 12, 16)
	before := readSequentially(t, fs, "frag-3")

	fs2, _, err := Compact(d)
	if err != nil {
		t.Fatal(err)
	}
	after := readSequentially(t, fs2, "frag-3")

	speedup := before / after
	if speedup < 4 {
		t.Errorf("compaction speedup = %.1fx (before %.2fms/page, after %.2fms/page), want order of magnitude",
			speedup, before*1000, after*1000)
	}
	t.Logf("sequential read speedup after compaction: %.1fx", speedup)
}

func TestCompactIdempotent(t *testing.T) {
	d, _, _ := fragment(t, 3, 4)
	if _, _, err := Compact(d); err != nil {
		t.Fatal(err)
	}
	_, rep2, err := Compact(d)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.PagesMoved != 0 {
		t.Errorf("second compaction moved %d pages, want 0", rep2.PagesMoved)
	}
}
