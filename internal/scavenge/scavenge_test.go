package scavenge

import (
	"fmt"
	"testing"

	"altoos/internal/dir"
	"altoos/internal/disk"
	"altoos/internal/file"
	"altoos/internal/sim"
)

// build creates a formatted drive with nfiles files of pages[i] data pages
// each, named file-<i>, entered in the root directory. Returns the drive,
// fs, and the file handles.
func build(t *testing.T, nfiles int, pagesEach int) (*disk.Drive, *file.FS, *dir.Directory, []*file.File) {
	t.Helper()
	d, err := disk.NewDrive(disk.Diablo31(), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := file.Format(d)
	if err != nil {
		t.Fatal(err)
	}
	root, err := dir.InitRoot(fs)
	if err != nil {
		t.Fatal(err)
	}
	files := make([]*file.File, nfiles)
	for i := range files {
		f, err := fs.Create(fmt.Sprintf("file-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		for pn := 1; pn <= pagesEach; pn++ {
			p := pageOf(disk.Word(i*100 + pn))
			if err := f.WritePage(disk.Word(pn), &p, disk.PageBytes); err != nil {
				t.Fatal(err)
			}
		}
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
		if err := root.Insert(fmt.Sprintf("file-%d", i), f.FN()); err != nil {
			t.Fatal(err)
		}
		files[i] = f
	}
	if err := fs.Flush(); err != nil {
		t.Fatal(err)
	}
	return d, fs, root, files
}

func pageOf(seed disk.Word) [disk.PageWords]disk.Word {
	var v [disk.PageWords]disk.Word
	for i := range v {
		v[i] = seed ^ disk.Word(i*13)
	}
	return v
}

// verify checks that every file is reachable by name and its data intact.
func verify(t *testing.T, fs2 *file.FS, nfiles, pagesEach int) {
	t.Helper()
	for i := 0; i < nfiles; i++ {
		name := fmt.Sprintf("file-%d", i)
		fn, err := dir.ResolveName(fs2, name)
		if err != nil {
			t.Fatalf("%s unreachable after scavenge: %v", name, err)
		}
		f, err := fs2.Open(fn)
		if err != nil {
			t.Fatalf("open %s: %v", name, err)
		}
		var buf [disk.PageWords]disk.Word
		for pn := 1; pn <= pagesEach; pn++ {
			if _, err := f.ReadPage(disk.Word(pn), &buf); err != nil {
				t.Fatalf("%s page %d: %v", name, pn, err)
			}
			want := pageOf(disk.Word(i*100 + pn))
			if buf != want {
				t.Fatalf("%s page %d corrupted", name, pn)
			}
		}
	}
}

func TestScavengeCleanDiskIsIdempotent(t *testing.T) {
	d, _, _, _ := build(t, 5, 3)
	fs2, rep, err := Run(d)
	if err != nil {
		t.Fatal(err)
	}
	// 5 user files + root + descriptor = 7.
	if rep.FilesFound != 7 {
		t.Errorf("FilesFound = %d, want 7", rep.FilesFound)
	}
	if rep.Directories != 1 {
		t.Errorf("Directories = %d, want 1", rep.Directories)
	}
	if rep.LinksRepaired != 0 || rep.DuplicatesFreed != 0 || rep.HeadlessFreed != 0 {
		t.Errorf("clean disk needed repairs: %+v", rep)
	}
	if rep.OrphansAdopted != 0 {
		t.Errorf("clean disk had %d orphans", rep.OrphansAdopted)
	}
	verify(t, fs2, 5, 3)

	// Running again changes nothing.
	fs3, rep2, err := Run(d)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.LinksRepaired != 0 || rep2.LeadersRepaired != 0 || rep2.OrphansAdopted != 0 {
		t.Errorf("second scavenge not idempotent: %+v", rep2)
	}
	verify(t, fs3, 5, 3)
}

func TestScavengeRebuildsAllocationMap(t *testing.T) {
	d, fs, _, files := build(t, 3, 2)
	// Sabotage the map two ways: a busy page marked free, a free page marked
	// busy (a "lost page" the paper says the Scavenger recovers).
	victim, err := files[0].PageAddr(1)
	if err != nil {
		t.Fatal(err)
	}
	fs.Descriptor().Free.SetFree(victim)
	fs.Descriptor().Free.SetBusy(4000)
	if err := fs.Flush(); err != nil {
		t.Fatal(err)
	}

	fs2, _, err := Run(d)
	if err != nil {
		t.Fatal(err)
	}
	if !fs2.Descriptor().Free.Busy(victim) {
		t.Error("busy page still marked free after scavenge")
	}
	if fs2.Descriptor().Free.Busy(4000) {
		t.Error("lost page not recovered")
	}
}

func TestScavengeRepairsBrokenLinks(t *testing.T) {
	d, _, _, files := build(t, 2, 4)
	// Scramble the links of file 0's page 2 by rewriting its label with
	// garbage links (a fault injection: bypasses checks).
	addr, err := files[0].PageAddr(2)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := d.PeekLabel(addr)
	lbl := disk.LabelFromWords(raw)
	lbl.Next = 4001
	lbl.Prev = 4002
	d.ZapLabel(addr, lbl.Words())

	fs2, rep, err := Run(d)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LinksRepaired == 0 {
		t.Error("no links repaired")
	}
	verify(t, fs2, 2, 4)
}

func TestScavengeAdoptsOrphans(t *testing.T) {
	d, fs, root, files := build(t, 3, 2)
	// Lose the directory entry for file 1: the file survives, only the name
	// binding is lost, and the Scavenger re-creates it from the leader name.
	if err := root.Remove("file-1"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Flush(); err != nil {
		t.Fatal(err)
	}
	_ = files

	fs2, rep, err := Run(d)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OrphansAdopted != 1 {
		t.Errorf("OrphansAdopted = %d, want 1", rep.OrphansAdopted)
	}
	verify(t, fs2, 3, 2)
}

func TestScavengeSurvivesDestroyedRootDirectory(t *testing.T) {
	// §3.4: "If a directory is destroyed, we don't lose any files." Obliterate
	// every page of the root directory; scavenging must rebuild a root and
	// adopt everything by leader name.
	d, fs, root, _ := build(t, 4, 2)
	lastPN, _ := root.File().LastPage()
	for pn := disk.Word(0); pn <= lastPN; pn++ {
		addr, err := root.File().PageAddr(pn)
		if err != nil {
			t.Fatal(err)
		}
		d.ZapLabel(addr, disk.FreeLabelWords())
	}
	_ = fs

	fs2, rep, err := Run(d)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.RootRecreated {
		t.Error("root not recreated")
	}
	if rep.OrphansAdopted < 4 {
		t.Errorf("OrphansAdopted = %d, want >= 4", rep.OrphansAdopted)
	}
	verify(t, fs2, 4, 2)
}

func TestScavengeSurvivesDestroyedDescriptor(t *testing.T) {
	d, fs, _, _ := build(t, 3, 2)
	// Kill the descriptor file's pages.
	df, err := fs.Open(fs.DescriptorFN())
	if err != nil {
		t.Fatal(err)
	}
	lastPN, _ := df.LastPage()
	for pn := disk.Word(0); pn <= lastPN; pn++ {
		addr, err := df.PageAddr(pn)
		if err != nil {
			t.Fatal(err)
		}
		d.ZapLabel(addr, disk.FreeLabelWords())
	}

	fs2, rep, err := Run(d)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.DescRecreated {
		t.Error("descriptor not recreated")
	}
	verify(t, fs2, 3, 2)

	// And the disk must now Mount normally again.
	if _, err := file.Mount(d); err != nil {
		t.Fatalf("Mount after scavenge: %v", err)
	}
}

func TestScavengeFixesStaleDirectoryAddresses(t *testing.T) {
	d, fs, root, files := build(t, 2, 2)
	// Rewrite file 0's entry with a wrong leader address hint.
	bad := files[0].FN()
	bad.Leader = 4500
	if err := root.Update("file-0", bad); err != nil {
		t.Fatal(err)
	}
	if err := fs.Flush(); err != nil {
		t.Fatal(err)
	}

	fs2, rep, err := Run(d)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DirEntriesFixed == 0 {
		t.Error("no directory addresses fixed")
	}
	root2, err := dir.OpenRoot(fs2)
	if err != nil {
		t.Fatal(err)
	}
	fn, err := root2.Lookup("file-0")
	if err != nil {
		t.Fatal(err)
	}
	if fn.Leader != files[0].FN().Leader {
		t.Errorf("entry still stale: %d vs %d", fn.Leader, files[0].FN().Leader)
	}
}

func TestScavengeRemovesDanglingEntries(t *testing.T) {
	d, fs, root, files := build(t, 2, 2)
	// Delete file 1's pages behind the directory's back.
	lastPN, _ := files[1].LastPage()
	for pn := disk.Word(0); pn <= lastPN; pn++ {
		addr, err := files[1].PageAddr(pn)
		if err != nil {
			t.Fatal(err)
		}
		d.ZapLabel(addr, disk.FreeLabelWords())
	}
	_ = root
	_ = fs

	fs2, rep, err := Run(d)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DirEntriesRemoved == 0 {
		t.Error("dangling entry not removed")
	}
	root2, err := dir.OpenRoot(fs2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := root2.Lookup("file-1"); err == nil {
		t.Error("dangling entry still present")
	}
	verify(t, fs2, 1, 2) // file-0 intact
}

func TestScavengeTruncatesIncompleteFiles(t *testing.T) {
	d, _, _, files := build(t, 1, 5)
	// Punch a hole: free page 3's sector by fault injection. Pages 4,5
	// become unreachable from the contiguity rule.
	addr, err := files[0].PageAddr(3)
	if err != nil {
		t.Fatal(err)
	}
	d.ZapLabel(addr, disk.FreeLabelWords())

	fs2, rep, err := Run(d)
	if err != nil {
		t.Fatal(err)
	}
	if rep.IncompleteFiles != 1 {
		t.Errorf("IncompleteFiles = %d, want 1", rep.IncompleteFiles)
	}
	fn, err := dir.ResolveName(fs2, "file-0")
	if err != nil {
		t.Fatal(err)
	}
	f, err := fs2.Open(fn)
	if err != nil {
		t.Fatal(err)
	}
	lastPN, _ := f.LastPage()
	if lastPN > 3 {
		t.Errorf("file not truncated at the hole: lastPN=%d", lastPN)
	}
	var buf [disk.PageWords]disk.Word
	for pn := disk.Word(1); pn <= 2; pn++ {
		if _, err := f.ReadPage(pn, &buf); err != nil {
			t.Fatalf("surviving page %d: %v", pn, err)
		}
	}
}

func TestScavengeFreesHeadlessPages(t *testing.T) {
	d, _, _, files := build(t, 1, 3)
	// Destroy the leader: the data pages become headless and are released.
	d.ZapLabel(files[0].FN().Leader, disk.FreeLabelWords())

	_, rep, err := Run(d)
	if err != nil {
		t.Fatal(err)
	}
	if rep.HeadlessFreed != 1 {
		t.Errorf("HeadlessFreed = %d, want 1", rep.HeadlessFreed)
	}
}

func TestScavengeHandlesDuplicateNames(t *testing.T) {
	d, fs, root, _ := build(t, 2, 1)
	// Orphan both files, then give them identical leader names by rewriting
	// leaders; adoption must disambiguate.
	if err := root.Remove("file-0"); err != nil {
		t.Fatal(err)
	}
	if err := root.Remove("file-1"); err != nil {
		t.Fatal(err)
	}
	_ = fs

	fs2, rep, err := Run(d)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OrphansAdopted != 2 {
		t.Errorf("OrphansAdopted = %d, want 2", rep.OrphansAdopted)
	}
	root2, err := dir.OpenRoot(fs2)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := root2.List()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, e := range entries {
		if seen[e.Name] {
			t.Fatalf("duplicate name %q after adoption", e.Name)
		}
		seen[e.Name] = true
	}
}

func TestScavengeMarksBadSectorsBusy(t *testing.T) {
	d, _, _, _ := build(t, 2, 2)
	d.MarkBad(3000)
	d.MarkBad(3001)

	fs2, rep, err := Run(d)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BadSectors != 2 {
		t.Errorf("BadSectors = %d, want 2", rep.BadSectors)
	}
	if !fs2.Descriptor().Free.Busy(3000) || !fs2.Descriptor().Free.Busy(3001) {
		t.Error("bad sectors not reserved in the map")
	}
}

func TestScavengeAfterCrashMidExtend(t *testing.T) {
	// Crash during a multi-step structural change, then scavenge: the file
	// system must come back well-formed with the data written before the
	// crash intact.
	d, fs, root, files := build(t, 1, 2)
	_ = root
	f := files[0]
	d.CrashAfterWrites(1) // the extend sequence will be torn
	p := pageOf(0xBEEF)
	_ = f.WritePage(3, &p, disk.PageBytes) // expected to fail somewhere
	d.ClearCrash()
	_ = fs

	fs2, _, err := Run(d)
	if err != nil {
		t.Fatal(err)
	}
	fn, err := dir.ResolveName(fs2, "file-0")
	if err != nil {
		t.Fatal(err)
	}
	g, err := fs2.Open(fn)
	if err != nil {
		t.Fatal(err)
	}
	var buf [disk.PageWords]disk.Word
	for pn := disk.Word(1); pn <= 2; pn++ {
		if _, err := g.ReadPage(pn, &buf); err != nil {
			t.Fatalf("pre-crash page %d lost: %v", pn, err)
		}
		want := pageOf(disk.Word(0*100 + int(pn)))
		if buf != want {
			t.Fatalf("pre-crash page %d corrupted", pn)
		}
	}
	// The structure is well-formed: last page is partial.
	_, lastLen := g.LastPage()
	if lastLen >= disk.PageBytes {
		t.Error("invariant broken after recovery")
	}
}

func TestScavengeRandomDamageNeverLosesUndamagedFiles(t *testing.T) {
	// Inject random label corruption into a subset of sectors; every file
	// none of whose sectors were touched must survive with full content.
	for seed := uint64(1); seed <= 3; seed++ {
		r := sim.NewRand(seed)
		d, fs, _, files := build(t, 8, 3)
		_ = fs

		touched := map[disk.VDA]bool{}
		for i := 0; i < 25; i++ {
			a := disk.VDA(r.Intn(d.Geometry().NSectors()))
			touched[a] = true
			d.CorruptLabel(a, r)
		}

		fs2, _, err := Run(d)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for i, f := range files {
			damaged := false
			for pn := disk.Word(0); pn <= 3; pn++ {
				if a, err := f.PageAddr(pn); err == nil && touched[a] {
					damaged = true
				}
			}
			if damaged {
				continue
			}
			name := fmt.Sprintf("file-%d", i)
			fn, err := dir.ResolveName(fs2, name)
			if err != nil {
				t.Fatalf("seed %d: undamaged %s lost: %v", seed, name, err)
			}
			g, err := fs2.Open(fn)
			if err != nil {
				t.Fatalf("seed %d: open %s: %v", seed, name, err)
			}
			var buf [disk.PageWords]disk.Word
			for pn := 1; pn <= 3; pn++ {
				if _, err := g.ReadPage(disk.Word(pn), &buf); err != nil {
					t.Fatalf("seed %d: %s page %d: %v", seed, name, pn, err)
				}
				if want := pageOf(disk.Word(i*100 + pn)); buf != want {
					t.Fatalf("seed %d: %s page %d corrupted", seed, name, pn)
				}
			}
		}
	}
}

func TestScavengeTimeIsAboutAMinuteFor2MB(t *testing.T) {
	// §3.5: "it takes about a minute for a 2.5 megabyte disk." Our timing
	// model should land in the same order of magnitude (tens of seconds).
	d, _, _, _ := build(t, 20, 10)
	_, rep, err := Run(d)
	if err != nil {
		t.Fatal(err)
	}
	secs := rep.Elapsed.Seconds()
	if secs < 5 || secs > 180 {
		t.Errorf("scavenge took %.1fs simulated, want the order of a minute", secs)
	}
}
