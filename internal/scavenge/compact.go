package scavenge

import (
	"fmt"
	"sort"
	"time"

	"altoos/internal/disk"
	"altoos/internal/file"
	"altoos/internal/sim"
)

// CompactReport describes a compaction run.
type CompactReport struct {
	FilesLaidOut  int
	PagesMoved    int
	PagesAlready  int // pages that were already in place
	Elapsed       time.Duration
	ScavengeAfter *Report // the rebuild pass that refreshed all hints
}

// String summarizes the report.
func (r *CompactReport) String() string {
	return fmt.Sprintf("compact: %d files laid out, %d pages moved (%d already placed), %v",
		r.FilesLaidOut, r.PagesMoved, r.PagesAlready, r.Elapsed.Round(time.Millisecond))
}

// Compact is the "more elaborate scavenger that does an in-place permutation
// of the file pages on the disk so that the pages of each file are in
// consecutive sectors. This arrangement typically increases the speed with
// which the files can be read sequentially by an order of magnitude" (§3.5).
//
// The algorithm moves pages one at a time, never holding more than one page
// value in memory, and keeps every label correct at every step (a moved page
// is allocated at its destination under its absolute name before the source
// is freed). Links go stale during the permutation — they are hints — and a
// final scavenging pass reconstructs them, so a crash mid-compaction costs
// nothing but time.
func Compact(dev disk.Device) (*file.FS, *CompactReport, error) {
	rep := &CompactReport{}
	watch := sim.Watch(dev.Clock())

	// Learn the current layout from the labels.
	s := newScavenger(dev)
	sp := s.phase("compact-sweep")
	err := s.sweep(s.keepInMemory)
	sp.End()
	if err != nil {
		return nil, nil, err
	}

	// Plan the target layout. Fixed sectors keep their occupants: the boot
	// page, the root leader and the descriptor leader have standard
	// addresses that must not move. Every file is then laid out
	// consecutively (leader first) in FID order, system files first, in the
	// lowest available run of sectors.
	occupied := map[disk.VDA]*pageInfo{}
	for _, pages := range s.files {
		for _, p := range pages {
			occupied[p.addr] = p
		}
	}

	n := s.dev.Geometry().NSectors()
	target := make([]*pageInfo, n) // target[a] = page that must end up at a
	taken := make([]bool, n)
	// Unusable sectors never receive pages.
	for i := 0; i < n; i++ {
		if s.free.Busy(disk.VDA(i)) {
			if _, live := occupied[disk.VDA(i)]; !live {
				taken[i] = true // bad or retired sector
			}
		}
	}

	// Pin the standard addresses.
	pin := func(a disk.VDA) {
		if p, ok := occupied[a]; ok && standardAddress(p) == a {
			target[a] = p
			taken[a] = true
		} else {
			taken[a] = true // reserve even if empty (boot page slot)
		}
	}
	pin(file.BootVDA)
	pin(file.SysDirLeaderVDA)
	pin(file.DescLeaderVDA)

	fvs := make([]disk.FV, 0, len(s.files))
	for _, fv := range s.order {
		if _, ok := s.files[fv]; ok {
			fvs = append(fvs, fv)
		}
	}
	sort.Slice(fvs, func(i, j int) bool { return lessFV(fvs[i], fvs[j]) })

	cursor := 0
	for _, fv := range fvs {
		pages := s.files[fv]
		sort.Slice(pages, func(i, j int) bool { return pages[i].pn < pages[j].pn })
		rep.FilesLaidOut++
		for _, p := range pages {
			if std := standardAddress(p); std != disk.NilVDA {
				continue // already pinned
			}
			// Find the next run start; single pages just take the next slot.
			for cursor < n && taken[cursor] {
				cursor++
			}
			if cursor >= n {
				return nil, nil, fmt.Errorf("scavenge: compaction ran out of sectors")
			}
			target[cursor] = p
			taken[cursor] = true
			cursor++
		}
	}

	// Execute the permutation. For each destination in order: if the right
	// page is already there, done; otherwise evacuate whatever sits there to
	// a free sector, then move the wanted page in.
	cur := map[disk.VDA]*pageInfo{} // live page by current address
	for _, pages := range s.files {
		for _, p := range pages {
			cur[p.addr] = p
		}
	}
	freeNow := func() disk.VDA {
		for i := n - 1; i >= 0; i-- { // evacuate to the far end
			a := disk.VDA(i)
			if _, live := cur[a]; live {
				continue
			}
			if target[a] != nil && target[a].addr == a {
				continue
			}
			if s.free.Busy(a) && occupied[a] == nil {
				continue // bad sector
			}
			if a == file.BootVDA || a == file.SysDirLeaderVDA || a == file.DescLeaderVDA {
				continue
			}
			return a
		}
		return disk.NilVDA
	}
	// One page move is a five-operation ordered chain: read the value under
	// the old label, check the destination carries the free label (so a
	// squatter becomes a check error, never an overwrite), write the page
	// there under its absolute name, then check and free the source. A
	// failed check anywhere stops the chain at that sector, exactly as the
	// step-by-step sequence would.
	var mv struct {
		ops    [5]disk.Op
		srcPat [disk.LabelWords]disk.Word
		dstPat [disk.LabelWords]disk.Word
		chkPat [disk.LabelWords]disk.Word
		newLbl [disk.LabelWords]disk.Word
		fre    [disk.LabelWords]disk.Word
		val    [disk.PageWords]disk.Word
	}
	move := func(p *pageInfo, to disk.VDA) error {
		lbl := disk.LabelFromWords(p.raw) // links stale after the move: hints
		mv.srcPat = p.raw
		mv.dstPat = disk.FreeLabelWords()
		mv.chkPat = p.raw
		mv.newLbl = lbl.Words()
		mv.fre = disk.FreeLabelWords()
		mv.ops[0] = disk.Op{Addr: p.addr, Label: disk.Check, LabelData: &mv.srcPat,
			Value: disk.Read, ValueData: &mv.val}
		mv.ops[1] = disk.Op{Addr: to, Label: disk.Check, LabelData: &mv.dstPat}
		mv.ops[2] = disk.Op{Addr: to, Label: disk.Write, LabelData: &mv.newLbl,
			Value: disk.Write, ValueData: &mv.val}
		mv.ops[3] = disk.Op{Addr: p.addr, Label: disk.Check, LabelData: &mv.chkPat}
		mv.ops[4] = disk.Op{Addr: p.addr, Label: disk.Write, LabelData: &mv.fre,
			Value: disk.Write, ValueData: &onesPage}
		if err := disk.FirstChainError(disk.DoChainOn(s.dev, mv.ops[:], disk.Ordered)); err != nil {
			return err
		}
		s.free.SetFree(p.addr)
		s.report.PagesFreed++
		delete(cur, p.addr)
		s.free.SetBusy(to)
		p.addr = to
		p.raw = mv.newLbl
		cur[to] = p
		rep.PagesMoved++
		return nil
	}

	sp = s.phase("compact-permute")
	for i := 0; i < n; i++ {
		want := target[i]
		if want == nil {
			continue
		}
		dst := disk.VDA(i)
		if want.addr == dst {
			rep.PagesAlready++
			continue
		}
		if squatter, ok := cur[dst]; ok {
			spare := freeNow()
			if spare == disk.NilVDA {
				sp.End()
				return nil, nil, fmt.Errorf("scavenge: no spare sector during compaction")
			}
			if err := move(squatter, spare); err != nil {
				sp.End()
				return nil, nil, fmt.Errorf("scavenge: evacuating %d: %w", dst, err)
			}
		}
		if err := move(want, dst); err != nil {
			sp.End()
			return nil, nil, fmt.Errorf("scavenge: moving page to %d: %w", dst, err)
		}
	}
	sp.End()
	if s.rec != nil {
		s.rec.Add("compact.pages.moved", int64(rep.PagesMoved))
	}

	// Links, leaders, the allocation map and directory address hints are all
	// stale now. They are hints; the Scavenger rebuilds every one of them
	// from the absolutes.
	fs, after, err := Run(dev)
	if err != nil {
		return nil, nil, fmt.Errorf("scavenge: post-compaction rebuild: %w", err)
	}
	rep.ScavengeAfter = after
	rep.Elapsed = watch.Elapsed()
	return fs, rep, nil
}

// standardAddress returns the fixed address a page must occupy, or NilVDA.
func standardAddress(p *pageInfo) disk.VDA {
	switch {
	case p.fv.FID == disk.SysDirFID && p.pn == 0:
		return file.SysDirLeaderVDA
	case p.fv.FID == disk.DescriptorFID && p.pn == 0:
		return file.DescLeaderVDA
	case p.fv.FID == disk.BootFID && p.pn == 1:
		return file.BootVDA
	}
	return disk.NilVDA
}

// lessFV orders files for layout: system files first, then by serial.
func lessFV(a, b disk.FV) bool {
	ra, rb := layoutRank(a.FID), layoutRank(b.FID)
	if ra != rb {
		return ra < rb
	}
	if a.FID != b.FID {
		return a.FID < b.FID
	}
	return a.Version < b.Version
}

func layoutRank(f disk.FID) int {
	switch f {
	case disk.DescriptorFID:
		return 0
	case disk.SysDirFID:
		return 1
	case disk.BootFID:
		return 2
	}
	return 3
}
