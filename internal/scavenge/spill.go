package scavenge

// The low-memory table: §3.5 says the in-core table needs 48 bits per
// sector, "in fact the case for the machine's standard disks. Larger disks
// require this list to be written on a specially reserved section of the
// disk." This file is that path: table entries are spilled to free sectors
// of the very disk being scavenged, externally sorted with a bounded window,
// and streamed back one file-group at a time.
//
// Spill sectors are borrowed, not allocated: only their *values* are
// written, under a check that the label is the free pattern, so the labels
// remain free throughout. A crash mid-scavenge leaves nothing to clean up,
// and the sectors return to the pool the moment the merge finishes.

import (
	"fmt"

	"altoos/internal/disk"
)

const (
	// entryWords is the on-disk size of one table entry: the seven label
	// words plus the sector address.
	entryWords = disk.LabelWords + 1
	// entriesPerSector is how many entries one borrowed sector holds.
	entriesPerSector = disk.PageWords / entryWords
)

// spillRun is one sorted run on disk.
type spillRun struct {
	sectors []disk.VDA
	count   int
}

// spillTable accumulates sweep entries with a bounded in-core window,
// writing sorted runs to borrowed sectors.
type spillTable struct {
	s      *scavenger
	window int
	buf    []pageInfo
	runs   []spillRun

	cursor   disk.VDA // free-sector scan position (behind the sweep)
	lastSeen disk.VDA // highest address the sweep has reached
}

func newSpillTable(s *scavenger, window int) *spillTable {
	return &spillTable{s: s, window: window, buf: make([]pageInfo, 0, window)}
}

// add receives one sweep entry; a full window becomes a sorted run.
func (t *spillTable) add(p pageInfo) error {
	t.lastSeen = p.addr
	t.buf = append(t.buf, p)
	if len(t.buf) >= t.window {
		return t.flushRun()
	}
	return nil
}

// finishRuns flushes the final partial window. After the sweep, the whole
// disk is fair game for borrowing.
func (t *spillTable) finishRuns() error {
	//altovet:allow wordwidth free.Len() is NSectors, which fits a Word by construction
	t.lastSeen = disk.VDA(t.s.free.Len() - 1)
	if len(t.buf) > 0 {
		return t.flushRun()
	}
	return nil
}

// keyLess orders entries by absolute name, then address.
func keyLess(a, b *pageInfo) bool {
	if a.fv.FID != b.fv.FID {
		return a.fv.FID < b.fv.FID
	}
	if a.fv.Version != b.fv.Version {
		return a.fv.Version < b.fv.Version
	}
	if a.pn != b.pn {
		return a.pn < b.pn
	}
	return a.addr < b.addr
}

// flushRun sorts the window and writes it to borrowed sectors.
func (t *spillTable) flushRun() error {
	// Insertion-free sort via sort.Slice would be fine; keep it simple and
	// deterministic with a straightforward in-place sort.
	buf := t.buf
	sortEntries(buf)
	run := spillRun{count: len(buf)}
	for off := 0; off < len(buf); off += entriesPerSector {
		end := off + entriesPerSector
		if end > len(buf) {
			end = len(buf)
		}
		sector, err := t.borrow()
		if err != nil {
			return err
		}
		var v [disk.PageWords]disk.Word
		for i, e := range buf[off:end] {
			base := i * entryWords
			copy(v[base:base+disk.LabelWords], e.raw[:])
			v[base+disk.LabelWords] = disk.Word(e.addr)
		}
		pat := disk.FreeLabelWords()
		if err := t.s.dev.Do(&disk.Op{
			Addr: sector, Label: disk.Check, LabelData: &pat,
			Value: disk.Write, ValueData: &v,
		}); err != nil {
			return fmt.Errorf("scavenge: spilling to sector %d: %w", sector, err)
		}
		run.sectors = append(run.sectors, sector)
	}
	t.runs = append(t.runs, run)
	t.s.report.SpilledEntries += len(buf)
	t.buf = t.buf[:0]
	return nil
}

// sortEntries sorts a window by key.
func sortEntries(buf []pageInfo) {
	// Shell sort: no allocation, fine for window-sized slices.
	for gap := len(buf) / 2; gap > 0; gap /= 2 {
		for i := gap; i < len(buf); i++ {
			for j := i; j >= gap && keyLess(&buf[j], &buf[j-gap]); j -= gap {
				buf[j], buf[j-gap] = buf[j-gap], buf[j]
			}
		}
	}
}

// borrow finds a free sector behind the sweep front and reserves it for the
// table. When the sweep has not yet passed any free sector — a compactly
// allocated disk — it reads ahead: a sector's own label says whether it is
// free, no other bookkeeping required, which is the whole point of
// self-identifying pages.
func (t *spillTable) borrow() (disk.VDA, error) {
	for ; t.cursor <= t.lastSeen; t.cursor++ {
		a := t.cursor
		if t.s.free.Busy(a) || t.s.reserved[a] {
			continue
		}
		t.s.reserved[a] = true
		t.s.report.SpillSectors++
		t.cursor++
		return a, nil
	}
	// Read ahead of the sweep.
	n := disk.VDA(t.s.free.Len())
	for a := t.lastSeen + 1; a < n; a++ {
		if t.s.reserved[a] {
			continue
		}
		raw, err := disk.ReadAnyLabel(t.s.dev, a)
		if err != nil {
			continue // bad sector: the sweep will classify it
		}
		if !disk.IsFreeLabel(raw) {
			continue
		}
		t.s.reserved[a] = true
		t.s.report.SpillSectors++
		return a, nil
	}
	return disk.NilVDA, fmt.Errorf("scavenge: no free sectors for the spill table (disk too full)")
}

// release returns every borrowed sector to the pool. Their labels were
// never touched, so there is nothing to write back.
func (t *spillTable) release() {
	for a := range t.s.reserved {
		delete(t.s.reserved, a)
	}
}

// runReader streams one run's entries back in order.
type runReader struct {
	t       *spillTable
	run     spillRun
	sector  int // index into run.sectors
	buf     [disk.PageWords]disk.Word
	inBuf   int // entries decoded into buf's sector
	bufIdx  int
	served  int
	current pageInfo
	valid   bool
}

func (r *runReader) next() error {
	r.valid = false
	if r.served >= r.run.count {
		return nil
	}
	if r.bufIdx >= r.inBuf {
		// Load the next sector of the run.
		addr := r.run.sectors[r.sector]
		r.sector++
		pat := disk.FreeLabelWords()
		if err := r.t.s.dev.Do(&disk.Op{
			Addr: addr, Label: disk.Check, LabelData: &pat,
			Value: disk.Read, ValueData: &r.buf,
		}); err != nil {
			return fmt.Errorf("scavenge: reading spill sector %d: %w", addr, err)
		}
		remaining := r.run.count - r.served
		r.inBuf = entriesPerSector
		if remaining < r.inBuf {
			r.inBuf = remaining
		}
		r.bufIdx = 0
	}
	base := r.bufIdx * entryWords
	var raw [disk.LabelWords]disk.Word
	copy(raw[:], r.buf[base:base+disk.LabelWords])
	lbl := disk.LabelFromWords(raw)
	r.current = pageInfo{
		fv: lbl.FV(), pn: lbl.PageNum,
		addr:   disk.VDA(r.buf[base+disk.LabelWords]),
		length: lbl.Length, next: lbl.Next, prev: lbl.Prev, raw: raw,
	}
	r.bufIdx++
	r.served++
	r.valid = true
	return nil
}

// mergeGroups merges every run and hands complete file groups to consume,
// holding at most one sector buffer per run plus one group in memory.
func (t *spillTable) mergeGroups(consume func(fv disk.FV, pages []*pageInfo) error) error {
	readers := make([]*runReader, len(t.runs))
	for i, run := range t.runs {
		readers[i] = &runReader{t: t, run: run}
		if err := readers[i].next(); err != nil {
			return err
		}
	}
	var group []*pageInfo
	var groupFV disk.FV
	flush := func() error {
		if len(group) == 0 {
			return nil
		}
		g := group
		group = nil
		return consume(groupFV, g)
	}
	for {
		// Smallest current entry across runs (run count is small: the
		// window divides the table into few runs).
		var min *runReader
		for _, r := range readers {
			if !r.valid {
				continue
			}
			if min == nil || keyLess(&r.current, &min.current) {
				min = r
			}
		}
		if min == nil {
			return flush()
		}
		e := min.current
		if err := min.next(); err != nil {
			return err
		}
		if len(group) > 0 && e.fv != groupFV {
			if err := flush(); err != nil {
				return err
			}
		}
		groupFV = e.fv
		cp := e
		group = append(group, &cp)
	}
}
