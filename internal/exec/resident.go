package exec

// The level-3 resident data of §5: "storage for a good deal of handy data,
// such as hints for frequently-used files, the user's name and password".
// The hint table lives in simulated main memory inside the level-3 region,
// below everything a typical Junta removes, so an installed program coming
// back from a world swap still finds its file hints hot.
//
// Every entry is, of course, a hint: a full name plus the address of data
// page 1, verified by label checks on use and simply re-learned when wrong.

import (
	"altoos/internal/disk"
	"altoos/internal/file"
	"altoos/internal/junta"
	"altoos/internal/mem"
)

// Resident hint-table layout, in words, inside the level-3 region:
//
//	+0            entry count
//	+1..+10       user name (BCPL string, up to 19 bytes)
//	then per entry (hintEntryWords words):
//	  0     name hash (16-bit FNV-ish of the file name)
//	  1,2   FID
//	  3     version
//	  4     leader address (hint)
//	  5     page-1 address (hint)
const (
	resCount       = 0
	resUser        = 1
	resUserCap     = 10
	resEntries     = resUser + resUserCap
	hintEntryWords = 6
)

// ResidentHints is a view over the level-3 region of main memory.
type ResidentHints struct {
	m      *mem.Memory
	region mem.Region
	cap    int
}

// NewResidentHints builds the view over the machine's level-3 region.
func NewResidentHints(m *mem.Memory, j *junta.Junta) (*ResidentHints, error) {
	r, err := j.Region(junta.LevelHints)
	if err != nil {
		return nil, err
	}
	capEntries := (r.Size() - resEntries) / hintEntryWords
	return &ResidentHints{m: m, region: r, cap: capEntries}, nil
}

// nameHash is a tiny 16-bit hash; collisions only cost a wasted label check.
func nameHash(name string) uint16 {
	h := uint16(0x9DC5)
	for i := 0; i < len(name); i++ {
		h ^= uint16(name[i])
		h *= 0x0193
	}
	if h == 0 {
		h = 1
	}
	return h
}

// Count returns the number of live entries.
func (r *ResidentHints) Count() int {
	return int(r.m.Load(r.region.Start + resCount))
}

// SetUser records the user's name in the resident region.
func (r *ResidentHints) SetUser(name string) {
	if len(name) > 2*resUserCap-1 {
		name = name[:2*resUserCap-1]
	}
	WriteString(r.m, r.region.Start+resUser, name)
}

// User reads the user's name back.
func (r *ResidentHints) User() string {
	return readString(r.m, r.region.Start+resUser)
}

// entryAddr returns the memory address of entry i.
func (r *ResidentHints) entryAddr(i int) mem.Addr {
	//altovet:allow wordwidth i < cap and cap*hintEntryWords fits the region, itself within the 16-bit address space
	return r.region.Start + resEntries + mem.Addr(i*hintEntryWords)
}

// Remember stores (or refreshes) a hint for name.
func (r *ResidentHints) Remember(name string, fn file.FN, page1 disk.VDA) {
	h := nameHash(name)
	n := r.Count()
	slot := -1
	for i := 0; i < n; i++ {
		if r.m.Load(r.entryAddr(i)) == h {
			slot = i
			break
		}
	}
	if slot < 0 {
		if n >= r.cap {
			slot = int(h) % r.cap // evict: it is only a hint
		} else {
			slot = n
			//altovet:allow wordwidth n < cap, bounded by the region size, far below 2^16
			r.m.Store(r.region.Start+resCount, uint16(n+1))
		}
	}
	a := r.entryAddr(slot)
	r.m.Store(a, h)
	r.m.Store(a+1, uint16(fn.FV.FID>>16))
	r.m.Store(a+2, uint16(fn.FV.FID))
	r.m.Store(a+3, fn.FV.Version)
	r.m.Store(a+4, uint16(fn.Leader))
	r.m.Store(a+5, uint16(page1))
}

// Recall looks a name up in the table.
func (r *ResidentHints) Recall(name string) (file.FN, disk.VDA, bool) {
	h := nameHash(name)
	for i := 0; i < r.Count(); i++ {
		a := r.entryAddr(i)
		if r.m.Load(a) != h {
			continue
		}
		fn := file.FN{
			FV: disk.FV{
				FID:     disk.FID(r.m.Load(a+1))<<16 | disk.FID(r.m.Load(a+2)),
				Version: r.m.Load(a + 3),
			},
			Leader: disk.VDA(r.m.Load(a + 4)),
		}
		return fn, disk.VDA(r.m.Load(a + 5)), true
	}
	return file.FN{}, 0, false
}

// Forget drops a hint (after it proved wrong and was not re-learned).
func (r *ResidentHints) Forget(name string) {
	h := nameHash(name)
	n := r.Count()
	for i := 0; i < n; i++ {
		if r.m.Load(r.entryAddr(i)) == h {
			// Move the last entry into the hole.
			last := r.entryAddr(n - 1)
			hole := r.entryAddr(i)
			for w := 0; w < hintEntryWords; w++ {
				r.m.Store(hole+mem.Addr(w), r.m.Load(last+mem.Addr(w)))
			}
			//altovet:allow wordwidth n >= 1 here (the loop found a live entry), so n-1 cannot wrap
			r.m.Store(r.region.Start+resCount, uint16(n-1))
			return
		}
	}
}
