package exec

import (
	"testing"

	"altoos/internal/disk"
	"altoos/internal/file"
	"altoos/internal/junta"
	"altoos/internal/mem"
)

func newHints(t *testing.T) (*ResidentHints, *mem.Memory, *junta.Junta) {
	t.Helper()
	m := mem.New()
	j := junta.New(m)
	h, err := NewResidentHints(m, j)
	if err != nil {
		t.Fatal(err)
	}
	return h, m, j
}

func fnFor(serial uint32, leader disk.VDA) file.FN {
	return file.FN{FV: disk.FV{FID: disk.FID(serial), Version: 1}, Leader: leader}
}

func TestResidentRememberRecallForget(t *testing.T) {
	h, _, _ := newHints(t)
	fn := fnFor(300, 42)
	h.Remember("editor.state", fn, 43)
	got, page1, ok := h.Recall("editor.state")
	if !ok || got != fn || page1 != 43 {
		t.Fatalf("recall: %v %v %v", got, page1, ok)
	}
	if _, _, ok := h.Recall("nonesuch"); ok {
		t.Fatal("recalled a hint never remembered")
	}
	// Refresh overwrites in place.
	fn2 := fnFor(300, 99)
	h.Remember("editor.state", fn2, 100)
	got, _, _ = h.Recall("editor.state")
	if got.Leader != 99 {
		t.Fatal("refresh did not take")
	}
	if h.Count() != 1 {
		t.Fatalf("count = %d after refresh", h.Count())
	}
	h.Forget("editor.state")
	if _, _, ok := h.Recall("editor.state"); ok {
		t.Fatal("forgotten hint recalled")
	}
	if h.Count() != 0 {
		t.Fatal("count not decremented")
	}
}

func TestResidentUserName(t *testing.T) {
	h, _, _ := newHints(t)
	if h.User() != "" {
		t.Fatal("fresh region has a user")
	}
	h.SetUser("lampson")
	if h.User() != "lampson" {
		t.Fatalf("user = %q", h.User())
	}
	// Over-long names are clipped, not corrupted.
	h.SetUser("a-very-long-user-name-that-does-not-fit")
	if len(h.User()) == 0 || len(h.User()) > 19 {
		t.Fatalf("clipped user = %q", h.User())
	}
}

func TestResidentEvictionWhenFull(t *testing.T) {
	h, _, _ := newHints(t)
	for i := 0; i < h.cap+10; i++ {
		h.Remember(string(rune('a'+i%26))+string(rune('0'+i%10)), fnFor(uint32(i), disk.VDA(i)), 0)
	}
	if h.Count() > h.cap {
		t.Fatalf("table overflowed: %d > %d", h.Count(), h.cap)
	}
}

func TestResidentLivesInLevel3AndSurvivesJunta(t *testing.T) {
	h, m, j := newHints(t)
	h.SetUser("sproull")
	h.Remember("f", fnFor(7, 7), 7)
	// A deep Junta that keeps level 3 leaves the data intact.
	if _, _, err := j.Do(junta.LevelHints); err != nil {
		t.Fatal(err)
	}
	if h.User() != "sproull" {
		t.Fatal("level-3 data lost to a junta that kept level 3")
	}
	if _, _, ok := h.Recall("f"); !ok {
		t.Fatal("hint lost")
	}
	// A junta to level 2 scrubs it; the table self-heals to empty.
	if err := j.CounterJunta(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := j.Do(junta.LevelKeyboard); err != nil {
		t.Fatal(err)
	}
	_ = m
	if h.Count() != 0 {
		t.Fatalf("count = %d after level-3 removal", h.Count())
	}
	if h.User() != "" {
		t.Fatal("user survived level-3 removal")
	}
}

func TestOSUsesResidentHints(t *testing.T) {
	w := newWorld(t)
	hints, err := NewResidentHints(w.os.Mem, nil2(t, w))
	if err != nil {
		t.Fatal(err)
	}
	w.os.Hints = hints
	seedFile(t, w, "hot.dat", "warm data")

	// First open populates the table; a second uses it.
	f, err := w.os.resolveVerified("hot.dat")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := hints.Recall("hot.dat"); !ok {
		t.Fatal("lookup did not populate the resident table")
	}
	// Poison the hint; resolveVerified must fall back and re-learn.
	bad := f.FN()
	bad.Leader = 4001
	hints.Remember("hot.dat", bad, 0)
	g, err := w.os.resolveVerified("hot.dat")
	if err != nil {
		t.Fatalf("stale resident hint not recovered: %v", err)
	}
	if g.FN().Leader != f.FN().Leader {
		t.Fatal("recovered to the wrong file")
	}
	if fn, _, _ := hints.Recall("hot.dat"); fn.Leader != f.FN().Leader {
		t.Fatal("table not re-learned")
	}
}

// nil2 builds a junta for the test world's memory.
func nil2(t *testing.T, w *world) *junta.Junta {
	t.Helper()
	return junta.New(w.os.Mem)
}
