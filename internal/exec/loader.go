package exec

import (
	"errors"
	"fmt"

	"altoos/internal/asm"
	"altoos/internal/cpu"
	"altoos/internal/dir"
	"altoos/internal/file"
	"altoos/internal/mem"
	"altoos/internal/stream"
	"altoos/internal/swap"
)

// Program loading (§5.1): "Code for the program is read from a disk stream
// and loaded into low memory addresses. All references to operating system
// procedures are bound, using a fixup table contained in the code file.
// Finally, the program is invoked by calling a single entry routine."
//
// Code-file layout, as words in the file's data bytes:
//
//	0: magic        1: format version
//	2: load address 3: absolute entry address
//	4: code length  5: fixup count
//	code words...
//	fixups: (code offset, syscall number) pairs
//
// Each fixup makes the code word at the offset point at the system vector
// stub for that syscall, so programs call OS procedures with an ordinary
// indirect JSR — the binding is data, not convention.

const (
	codeMagic   = 0xA17C
	codeVersion = 1
)

// SysVecBase is where the loader lays down the system vector: two-word
// stubs, one per syscall, each "SYS n; JMP 0(3)". It sits at the top of
// memory with the level-1 services.
const SysVecBase uint16 = 0xFEC0

// ErrNotCode reports a file that is not a code file.
var ErrNotCode = errors.New("exec: not a code file")

// Fixup binds the code word at Offset (relative to the load address) to the
// system vector stub for Syscall.
type Fixup struct {
	Offset  uint16
	Syscall uint16
}

// InstallSysVec writes the system vector stubs into memory. The loader calls
// it before every program; it is idempotent.
func InstallSysVec(m *mem.Memory) {
	for s := uint16(0); s < NumSyscalls; s++ {
		a := SysVecBase + 2*s
		m.Store(a, 3<<13|s) // SYS s
		m.Store(a+1, 3<<8)  // JMP 0(3): return via AC3
	}
}

// StubAddr returns the address of the vector stub for a syscall.
func StubAddr(sys uint16) uint16 { return SysVecBase + 2*sys }

// WriteCodeFile serializes an assembled program (plus fixups) into a named
// file, creating the root-directory entry. The entry point is the program's
// START label or origin.
func WriteCodeFile(o *OS, name string, p *asm.Program, fixups []Fixup) error {
	f, err := o.createOrTruncate(name)
	if err != nil {
		return err
	}
	s, err := stream.NewDisk(f, o.Zone, o.Mem, stream.WriteMode)
	if err != nil {
		return err
	}
	defer s.Close()
	put := func(w uint16) {
		if err == nil {
			err = stream.PutWord(s, w)
		}
	}
	put(codeMagic)
	put(codeVersion)
	put(p.Origin)
	put(p.Entry)
	put(uint16(len(p.Words)))
	put(uint16(len(fixups)))
	for _, w := range p.Words {
		put(w)
	}
	for _, fx := range fixups {
		put(fx.Offset)
		put(fx.Syscall)
	}
	return err
}

// FixupsFor builds a fixup table from labelled pointer words: each label in
// binds names a one-word cell in the program that should point at the given
// syscall's stub.
func FixupsFor(p *asm.Program, binds map[string]uint16) ([]Fixup, error) {
	var out []Fixup
	for label, sys := range binds {
		addr, ok := p.Symbols[label]
		if !ok {
			return nil, fmt.Errorf("exec: fixup label %q not defined", label)
		}
		out = append(out, Fixup{Offset: addr - p.Origin, Syscall: sys})
	}
	return out, nil
}

// Loader reads code files and prepares the machine to run them.
type Loader struct {
	OS *OS
}

// Load reads the named code file into memory, binds its fixups, installs
// the system vector, and returns the entry address.
func (l *Loader) Load(name string) (entry uint16, err error) {
	root, err := dir.OpenRoot(l.OS.FS)
	if err != nil {
		return 0, err
	}
	fn, err := root.Lookup(name)
	if err != nil {
		return 0, fmt.Errorf("exec: no program %q: %w", name, err)
	}
	return l.LoadFN(fn)
}

// LoadFN is Load by full name.
func (l *Loader) LoadFN(fn file.FN) (entry uint16, err error) {
	f, err := l.OS.FS.Open(fn)
	if err != nil {
		return 0, err
	}
	s, err := stream.NewDisk(f, l.OS.Zone, l.OS.Mem, stream.ReadMode)
	if err != nil {
		return 0, err
	}
	defer s.Close()

	get := func() uint16 {
		if err != nil {
			return 0
		}
		var w uint16
		w, err = stream.GetWord(s)
		return w
	}
	magic, version := get(), get()
	loadAddr, entryAddr := get(), get()
	codeLen, nfix := get(), get()
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrNotCode, err)
	}
	if magic != codeMagic || version != codeVersion {
		return 0, fmt.Errorf("%w: magic %#04x version %d", ErrNotCode, magic, version)
	}
	for i := uint16(0); i < codeLen; i++ {
		l.OS.Mem.Store(loadAddr+i, get())
	}
	InstallSysVec(l.OS.Mem)
	for i := uint16(0); i < nfix; i++ {
		off, sys := get(), get()
		if err == nil {
			if sys >= NumSyscalls {
				return 0, fmt.Errorf("%w: fixup to syscall %d", ErrNotCode, sys)
			}
			l.OS.Mem.Store(loadAddr+off, StubAddr(sys))
		}
	}
	if err != nil {
		return 0, fmt.Errorf("%w: truncated: %v", ErrNotCode, err)
	}
	return entryAddr, nil
}

// RunProgram loads the named program and runs it to completion on c,
// returning the instruction count. Chain requests (SysChain) are followed,
// as §5.1 describes: a program "may terminate ... by calling the program
// loader to read in another program and thus overlay the first program".
func (l *Loader) RunProgram(c *cpu.CPU, name string, maxSteps int64) (int64, error) {
	var total int64
	for {
		entry, err := l.Load(name)
		if err != nil {
			return total, err
		}
		c.Reset(entry)
		n, err := c.Run(maxSteps)
		total += n
		if err != nil {
			return total, err
		}
		next, ok := l.OS.TakeChain()
		if !ok {
			return total, nil
		}
		name = next
	}
}

// MakeBootImage is the §4 linker path: it lays a program into a scratch
// machine image "arranged so that they will constitute a running program
// when the machine state is restored from the file", and writes it as the
// boot file.
func MakeBootImage(o *OS, p *asm.Program) (file.FN, error) {
	scratch := mem.New()
	scratch.StoreBlock(p.Origin, p.Words)
	InstallSysVec(scratch)
	boot := cpu.New(scratch, o.FS.Device().Clock(), nil)
	boot.Reset(p.Entry)
	return swap.WriteBoot(o.FS, boot)
}
