package exec

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"altoos/internal/cpu"
	"altoos/internal/dir"
	"altoos/internal/scavenge"
	"altoos/internal/stream"
)

// Executive is the standard command interpreter (§5.1): "If the program
// returns, the system loads and runs a standard Executive program. The
// Executive accepts user commands from the keyboard and executes them,
// often by calling the loader to invoke a program the user has requested."
//
// Built-in commands operate on the file system; anything else is taken as
// the name of a code file to load and run. Commands read from the keyboard
// stream, so type-ahead entered during a program is interpreted by the
// Executive afterwards, per §5.2.
type Executive struct {
	OS     *OS
	CPU    *cpu.CPU
	Loader *Loader

	// MaxSteps bounds each program run (0 = unbounded).
	MaxSteps int64

	// Extra holds user-installed commands, tried before programs — the open
	// system's way of extending its command interpreter without replacing
	// it. A command receives its arguments and the Executive.
	Extra map[string]func(e *Executive, args []string) error
}

// InstallCommand registers (or replaces) an Executive command.
func (e *Executive) InstallCommand(name string, fn func(e *Executive, args []string) error) {
	if e.Extra == nil {
		e.Extra = map[string]func(*Executive, []string) error{}
	}
	e.Extra[name] = fn
}

// NewExecutive wires an Executive over the resident system.
func NewExecutive(o *OS, c *cpu.CPU) *Executive {
	return &Executive{OS: o, CPU: c, Loader: &Loader{OS: o}, MaxSteps: 10_000_000}
}

// printf writes to the display stream.
func (e *Executive) printf(format string, args ...any) {
	//altovet:allow errdiscard display output is best-effort; a full screen must not wedge the Executive
	_ = stream.PutString(e.OS.Display, fmt.Sprintf(format, args...))
}

// ReadLine collects one command line from the keyboard stream, echoing.
// It returns false when the keyboard has nothing more to offer (type-ahead
// exhausted): a simulated session, unlike a real one, eventually ends.
func (e *Executive) ReadLine() (string, bool) {
	var b strings.Builder
	for {
		ch, err := e.OS.Keyboard.Get()
		if errors.Is(err, stream.ErrNoInput) {
			if b.Len() > 0 {
				return b.String(), true
			}
			return "", false
		}
		if err != nil {
			return "", false
		}
		if ch == '\n' || ch == '\r' {
			//altovet:allow errdiscard keyboard echo is best-effort; input handling must not stall on the display
			_ = e.OS.Display.Put('\n')
			return b.String(), true
		}
		//altovet:allow errdiscard keyboard echo is best-effort; input handling must not stall on the display
		_ = e.OS.Display.Put(ch)
		b.WriteByte(ch)
	}
}

// Run interprets commands until the keyboard runs dry or "quit".
func (e *Executive) Run() error {
	for {
		e.printf(">")
		line, ok := e.ReadLine()
		if !ok {
			return nil
		}
		quit, err := e.Execute(line)
		if err != nil {
			e.printf("?%v\n", err)
		}
		if quit {
			return nil
		}
	}
}

// Execute runs a single command line. It returns quit=true for "quit".
func (e *Executive) Execute(line string) (quit bool, err error) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return false, nil
	}
	cmd, args := strings.ToLower(fields[0]), fields[1:]
	if fn, ok := e.Extra[cmd]; ok {
		return false, fn(e, args)
	}
	switch cmd {
	case "quit":
		return true, nil

	case "ls":
		root, err := dir.OpenRoot(e.OS.FS)
		if err != nil {
			return false, err
		}
		entries, err := root.List()
		if err != nil {
			return false, err
		}
		for _, en := range entries {
			f, err := e.OS.FS.Open(en.FN)
			size := -1
			if err == nil {
				size = f.Size()
			}
			e.printf("%-24s %8d  %v\n", en.Name, size, en.FN.FV)
		}
		return false, nil

	case "type":
		if len(args) != 1 {
			return false, errors.New("usage: type <file>")
		}
		fn, err := dir.ResolveName(e.OS.FS, args[0])
		if err != nil {
			return false, err
		}
		f, err := e.OS.FS.Open(fn)
		if err != nil {
			return false, err
		}
		s, err := stream.NewDisk(f, e.OS.Zone, e.OS.Mem, stream.ReadMode)
		if err != nil {
			return false, err
		}
		defer s.Close()
		_, err = stream.Pump(e.OS.Display, s)
		return false, err

	case "delete":
		if len(args) != 1 {
			return false, errors.New("usage: delete <file>")
		}
		root, err := dir.OpenRoot(e.OS.FS)
		if err != nil {
			return false, err
		}
		fn, err := root.Lookup(args[0])
		if err != nil {
			return false, err
		}
		f, err := e.OS.FS.Open(fn)
		if err != nil {
			return false, err
		}
		if err := f.Delete(); err != nil {
			return false, err
		}
		return false, root.Remove(args[0])

	case "rename":
		if len(args) != 2 {
			return false, errors.New("usage: rename <old> <new>")
		}
		root, err := dir.OpenRoot(e.OS.FS)
		if err != nil {
			return false, err
		}
		fn, err := root.Lookup(args[0])
		if err != nil {
			return false, err
		}
		// Names and files are independent (§3.4): renaming rebinds the
		// directory entry and refreshes the leader name so the Scavenger
		// would adopt under the new name too.
		if err := root.Insert(args[1], fn); err != nil {
			return false, err
		}
		if err := root.Remove(args[0]); err != nil {
			return false, err
		}
		if f, err := e.OS.FS.Open(fn); err == nil {
			if err := f.Rename(args[1]); err != nil {
				return false, err
			}
		}
		return false, nil

	case "copy":
		if len(args) != 2 {
			return false, errors.New("usage: copy <src> <dst>")
		}
		fn, err := dir.ResolveName(e.OS.FS, args[0])
		if err != nil {
			return false, err
		}
		srcF, err := e.OS.FS.Open(fn)
		if err != nil {
			return false, err
		}
		src, err := stream.NewDisk(srcF, e.OS.Zone, e.OS.Mem, stream.ReadMode)
		if err != nil {
			return false, err
		}
		defer src.Close()
		dstF, err := e.OS.createOrTruncate(args[1])
		if err != nil {
			return false, err
		}
		dst, err := stream.NewDisk(dstF, e.OS.Zone, e.OS.Mem, stream.WriteMode)
		if err != nil {
			return false, err
		}
		defer dst.Close()
		n, err := stream.Pump(dst, src)
		if err != nil {
			return false, err
		}
		e.printf("copied %d bytes\n", n)
		return false, nil

	case "free":
		e.printf("%d free pages of %d\n",
			e.OS.FS.FreeCount(), e.OS.FS.Device().Geometry().NSectors())
		return false, nil

	case "scavenge":
		fs2, rep, err := scavenge.Run(e.OS.FS.Device())
		if err != nil {
			return false, err
		}
		e.OS.FS = fs2
		e.printf("%s\n", rep)
		return false, nil

	case "compact":
		fs2, rep, err := scavenge.Compact(e.OS.FS.Device())
		if err != nil {
			return false, err
		}
		e.OS.FS = fs2
		e.printf("%s\n", rep)
		return false, nil

	case "dump":
		if len(args) != 1 {
			return false, errors.New("usage: dump <file>")
		}
		fn, err := dir.ResolveName(e.OS.FS, args[0])
		if err != nil {
			return false, err
		}
		f, err := e.OS.FS.Open(fn)
		if err != nil {
			return false, err
		}
		s, err := stream.NewDisk(f, e.OS.Zone, e.OS.Mem, stream.ReadMode)
		if err != nil {
			return false, err
		}
		defer s.Close()
		pos := 0
		line := make([]byte, 0, 16)
		flush := func() {
			if len(line) == 0 {
				return
			}
			e.printf("%06x ", pos-len(line))
			for i := 0; i < 16; i++ {
				if i < len(line) {
					e.printf("%02x ", line[i])
				} else {
					e.printf("   ")
				}
			}
			e.printf(" |")
			for _, b := range line {
				if b >= 0x20 && b < 0x7F {
					e.printf("%c", b)
				} else {
					e.printf(".")
				}
			}
			e.printf("|\n")
			line = line[:0]
		}
		for {
			b, err := s.Get()
			if err != nil {
				break
			}
			line = append(line, b)
			pos++
			if len(line) == 16 {
				flush()
			}
		}
		flush()
		return false, nil

	case "login":
		if e.OS.Hints == nil {
			return false, errors.New("no resident data region")
		}
		if len(args) == 0 {
			name := e.OS.Hints.User()
			if name == "" {
				name = "(nobody)"
			}
			e.printf("user: %s\n", name)
			return false, nil
		}
		e.OS.Hints.SetUser(args[0])
		return false, nil

	case "stats":
		st := e.OS.FS.Stats()
		e.printf("allocs=%d retries=%d frees=%d hint-hits=%d chases=%d\n",
			st.Allocs, st.AllocRetries, st.Frees, st.HintHits, st.LinkChases)
		return false, nil

	case "help":
		cmds := []string{"ls", "type <f>", "delete <f>", "rename <a> <b>", "copy <a> <b>",
			"dump <f>", "free", "stats", "scavenge", "compact", "run <prog>", "quit", "help"}
		sort.Strings(cmds)
		e.printf("commands: %s; anything else runs a code file\n", strings.Join(cmds, ", "))
		return false, nil

	case "run":
		if len(args) != 1 {
			return false, errors.New("usage: run <program>")
		}
		cmd = args[0]
		fallthrough
	default:
		// §5.1: the Executive invokes a program the user has requested.
		n, err := e.Loader.RunProgram(e.CPU, cmd, e.MaxSteps)
		if cerr := e.OS.CloseAll(); cerr != nil && err == nil {
			err = cerr
		}
		if err != nil {
			return false, fmt.Errorf("%s: %w", cmd, err)
		}
		e.printf("[%s: %d instructions]\n", cmd, n)
		return false, nil
	}
}
