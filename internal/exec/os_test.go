package exec

import (
	"strings"
	"testing"

	"altoos/internal/cpu"
	"altoos/internal/swap"
)

// sysWorld gives a world plus a helper for invoking syscalls directly, the
// way a single trap instruction would.
func sysCall(t *testing.T, w *world, code uint16, setup func(c *cpu.CPU)) error {
	t.Helper()
	if setup != nil {
		setup(w.cpu)
	}
	return w.os.Sys(w.cpu, code)
}

func TestSysFileIODirect(t *testing.T) {
	w := newWorld(t)
	// OpenW a new file by name.
	WriteString(w.os.Mem, 0x3000, "direct.dat")
	if err := sysCall(t, w, SysOpenW, func(c *cpu.CPU) { c.AC[0] = 0x3000 }); err != nil {
		t.Fatal(err)
	}
	h := w.cpu.AC[0]
	if h == 0 {
		t.Fatal("OpenW failed")
	}
	if w.os.OpenHandles() != 1 {
		t.Fatalf("OpenHandles = %d", w.os.OpenHandles())
	}
	// Put two bytes, close.
	for _, b := range []uint16{'o', 'k'} {
		if err := sysCall(t, w, SysPutb, func(c *cpu.CPU) { c.AC[0], c.AC[1] = h, b }); err != nil {
			t.Fatal(err)
		}
	}
	if err := sysCall(t, w, SysClose, func(c *cpu.CPU) { c.AC[0] = h }); err != nil {
		t.Fatal(err)
	}
	// OpenR it back and read to the end.
	if err := sysCall(t, w, SysOpenR, func(c *cpu.CPU) { c.AC[0] = 0x3000 }); err != nil {
		t.Fatal(err)
	}
	h = w.cpu.AC[0]
	var got []byte
	for {
		if err := sysCall(t, w, SysGetb, func(c *cpu.CPU) { c.AC[0] = h }); err != nil {
			t.Fatal(err)
		}
		if w.cpu.Carry {
			break
		}
		got = append(got, byte(w.cpu.AC[1]))
	}
	if string(got) != "ok" {
		t.Fatalf("read back %q", got)
	}
	w.os.CloseAll()
	if w.os.OpenHandles() != 0 {
		t.Fatal("CloseAll left handles")
	}
}

func TestSysOpenRMissingFile(t *testing.T) {
	w := newWorld(t)
	WriteString(w.os.Mem, 0x3000, "missing.dat")
	if err := sysCall(t, w, SysOpenR, func(c *cpu.CPU) { c.AC[0] = 0x3000 }); err != nil {
		t.Fatal(err)
	}
	if w.cpu.AC[0] != 0 {
		t.Fatal("OpenR of missing file returned a handle")
	}
}

func TestSysBadHandles(t *testing.T) {
	w := newWorld(t)
	if err := sysCall(t, w, SysGetb, func(c *cpu.CPU) { c.AC[0] = 99 }); err == nil {
		t.Error("Getb on bad handle succeeded")
	}
	if err := sysCall(t, w, SysPutb, func(c *cpu.CPU) { c.AC[0] = 99 }); err == nil {
		t.Error("Putb on bad handle succeeded")
	}
	// Close of an unknown handle is harmless, as on the original.
	if err := sysCall(t, w, SysClose, func(c *cpu.CPU) { c.AC[0] = 99 }); err != nil {
		t.Errorf("Close of unknown handle: %v", err)
	}
}

func TestSysUndefined(t *testing.T) {
	w := newWorld(t)
	if err := sysCall(t, w, 999, nil); err == nil {
		t.Fatal("undefined syscall succeeded")
	}
}

func TestSysOutLdInLdDirect(t *testing.T) {
	w := newWorld(t)
	WriteString(w.os.Mem, 0x3000, "direct.state")
	w.cpu.PC = 0x2000
	if err := sysCall(t, w, SysOutLd, func(c *cpu.CPU) { c.AC[0] = 0x3000 }); err != nil {
		t.Fatal(err)
	}
	if w.cpu.AC[0] != 1 {
		t.Fatal("OutLd did not report written")
	}
	// Scribble, then InLoad back: AC0 becomes 0 (the resumed view), message
	// delivered at the fixed buffer.
	w.os.Mem.Store(0x3100, 7)
	w.os.Mem.Store(0x3101, 8)
	if err := sysCall(t, w, SysInLd, func(c *cpu.CPU) {
		c.AC[0], c.AC[1] = 0x3000, 0x3100
	}); err != nil {
		t.Fatal(err)
	}
	if w.cpu.AC[0] != 0 {
		t.Fatal("restored state should see written=false")
	}
	msg := swap.ReadMessage(w.cpu)
	if msg[0] != 7 || msg[1] != 8 {
		t.Fatalf("message %v", msg)
	}
	// SysMsg copies it wherever the program asks.
	if err := sysCall(t, w, SysMsg, func(c *cpu.CPU) { c.AC[0] = 0x3200 }); err != nil {
		t.Fatal(err)
	}
	if w.os.Mem.Load(0x3200) != 7 {
		t.Fatal("SysMsg did not copy")
	}
}

func TestSysInLdMissingState(t *testing.T) {
	w := newWorld(t)
	WriteString(w.os.Mem, 0x3000, "never.state")
	if err := sysCall(t, w, SysInLd, func(c *cpu.CPU) { c.AC[0] = 0x3000 }); err == nil {
		t.Fatal("InLd of missing state succeeded")
	}
}

func TestInstallCommandOverridesAndExtends(t *testing.T) {
	w := newWorld(t)
	called := ""
	w.exec.InstallCommand("greet", func(e *Executive, args []string) error {
		called = strings.Join(args, ",")
		return nil
	})
	if _, err := w.exec.Execute("greet a b"); err != nil {
		t.Fatal(err)
	}
	if called != "a,b" {
		t.Fatalf("extension got %q", called)
	}
	// Extensions shadow built-ins, as replacement requires.
	w.exec.InstallCommand("free", func(e *Executive, args []string) error {
		called = "shadowed"
		return nil
	})
	if _, err := w.exec.Execute("free"); err != nil {
		t.Fatal(err)
	}
	if called != "shadowed" {
		t.Fatal("built-in not shadowed")
	}
}

func TestExecutiveLoginCommand(t *testing.T) {
	w := newWorld(t)
	hints, err := NewResidentHints(w.os.Mem, nil2(t, w))
	if err != nil {
		t.Fatal(err)
	}
	w.os.Hints = hints
	if _, err := w.exec.Execute("login thacker"); err != nil {
		t.Fatal(err)
	}
	w.out.Reset()
	if _, err := w.exec.Execute("login"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(w.out.String(), "thacker") {
		t.Fatalf("login output %q", w.out.String())
	}
}
