package exec

import (
	"strings"
	"testing"

	"altoos/internal/dir"
	"altoos/internal/stream"
)

func seedFile(t *testing.T, w *world, name, body string) {
	t.Helper()
	f, err := w.os.FS.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	root, err := dir.OpenRoot(w.os.FS)
	if err != nil {
		t.Fatal(err)
	}
	if err := root.Insert(name, f.FN()); err != nil {
		t.Fatal(err)
	}
	s, err := stream.NewDisk(f, w.os.Zone, w.os.Mem, stream.UpdateMode)
	if err != nil {
		t.Fatal(err)
	}
	if err := stream.PutString(s, body); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestExecutiveRename(t *testing.T) {
	w := newWorld(t)
	seedFile(t, w, "old.txt", "body")
	if _, err := w.exec.Execute("rename old.txt new.txt"); err != nil {
		t.Fatal(err)
	}
	root, _ := dir.OpenRoot(w.os.FS)
	if _, err := root.Lookup("old.txt"); err == nil {
		t.Error("old name survives rename")
	}
	fn, err := root.Lookup("new.txt")
	if err != nil {
		t.Fatal(err)
	}
	f, err := w.os.FS.Open(fn)
	if err != nil {
		t.Fatal(err)
	}
	// The leader name — the Scavenger's adoption name — follows the rename.
	if f.Name() != "new.txt" {
		t.Errorf("leader name %q after rename", f.Name())
	}
	if _, err := w.exec.Execute("rename ghost.txt x"); err == nil {
		t.Error("renaming a missing file should fail")
	}
}

func TestExecutiveCopy(t *testing.T) {
	w := newWorld(t)
	seedFile(t, w, "src.txt", "copy me exactly")
	if _, err := w.exec.Execute("copy src.txt dst.txt"); err != nil {
		t.Fatal(err)
	}
	w.out.Reset()
	if _, err := w.exec.Execute("type dst.txt"); err != nil {
		t.Fatal(err)
	}
	if got := w.out.String(); got != "copy me exactly" {
		t.Fatalf("copy produced %q", got)
	}
	// Copying onto an existing file truncates it.
	seedFile(t, w, "short.txt", "x")
	if _, err := w.exec.Execute("copy short.txt dst.txt"); err != nil {
		t.Fatal(err)
	}
	w.out.Reset()
	if _, err := w.exec.Execute("type dst.txt"); err != nil {
		t.Fatal(err)
	}
	if got := w.out.String(); got != "x" {
		t.Fatalf("overwriting copy produced %q", got)
	}
}

func TestExecutiveCompactCommand(t *testing.T) {
	w := newWorld(t)
	seedFile(t, w, "a.txt", strings.Repeat("abc", 700))
	if _, err := w.exec.Execute("compact"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(w.out.String(), "compact:") {
		t.Fatalf("no compact report: %q", w.out.String())
	}
	// The system keeps working afterwards.
	w.out.Reset()
	if _, err := w.exec.Execute("type a.txt"); err != nil {
		t.Fatal(err)
	}
	if len(w.out.String()) != 2100 {
		t.Errorf("file damaged by compact: %d bytes", len(w.out.String()))
	}
}

func TestExecutiveStatsCommand(t *testing.T) {
	w := newWorld(t)
	seedFile(t, w, "s.txt", "x")
	w.out.Reset()
	if _, err := w.exec.Execute("stats"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(w.out.String(), "allocs=") {
		t.Fatalf("stats output %q", w.out.String())
	}
}

func TestExecutiveEmptyAndUnknown(t *testing.T) {
	w := newWorld(t)
	if quit, err := w.exec.Execute(""); quit || err != nil {
		t.Fatal("empty line should be a no-op")
	}
	if quit, _ := w.exec.Execute("quit"); !quit {
		t.Fatal("quit should quit")
	}
}

func TestExecutiveDump(t *testing.T) {
	w := newWorld(t)
	seedFile(t, w, "hexme.bin", "AB\x00\x01")
	w.out.Reset()
	if _, err := w.exec.Execute("dump hexme.bin"); err != nil {
		t.Fatal(err)
	}
	out := w.out.String()
	for _, want := range []string{"41 42 00 01", "|AB..|", "000000"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump output missing %q:\n%s", want, out)
		}
	}
	if _, err := w.exec.Execute("dump ghost.bin"); err == nil {
		t.Fatal("dump of missing file succeeded")
	}
}
