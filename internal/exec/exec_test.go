package exec

import (
	"bytes"
	"strings"
	"testing"

	"altoos/internal/asm"
	"altoos/internal/cpu"
	"altoos/internal/dir"
	"altoos/internal/disk"
	"altoos/internal/file"
	"altoos/internal/mem"
	"altoos/internal/stream"
	"altoos/internal/swap"
	"altoos/internal/zone"
)

// world is a complete machine for tests: drive, fs, memory, zone, OS, CPU.
type world struct {
	drive *disk.Drive
	os    *OS
	cpu   *cpu.CPU
	exec  *Executive
	out   *bytes.Buffer
}

func newWorld(t *testing.T) *world {
	t.Helper()
	d, err := disk.NewDrive(disk.Diablo31(), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := file.Format(d)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dir.InitRoot(fs); err != nil {
		t.Fatal(err)
	}
	m := mem.New()
	z, err := zone.New(m, 0x7000, 0x7000)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	o := NewOS(fs, m, z, stream.NewKeyboard(), stream.NewDisplay(&out))
	c := cpu.New(m, d.Clock(), o)
	return &world{drive: d, os: o, cpu: c, exec: NewExecutive(o, c), out: &out}
}

func TestStringRoundTrip(t *testing.T) {
	m := mem.New()
	for _, s := range []string{"", "a", "ab", "hello.dat", strings.Repeat("x", 255)} {
		WriteString(m, 0x100, s)
		if got := readString(m, 0x100); got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
	}
}

func TestHelloProgramViaFixups(t *testing.T) {
	w := newWorld(t)
	// A program that prints "hi" by JSR through fixed-up OS vectors — the
	// §5.1 binding mechanism.
	p := asm.MustAssemble(`
START:	LDA 0, CH
	JSR @PUTC
	LDA 0, CI
	JSR @PUTC
	HALT
CH:	.word 'h'
CI:	.word 'i'
PUTC:	.word 0     ; bound by the loader to the PUTC stub
`)
	fix, err := FixupsFor(p, map[string]uint16{"PUTC": SysPutc})
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteCodeFile(w.os, "hello.run", p, fix); err != nil {
		t.Fatal(err)
	}
	ld := &Loader{OS: w.os}
	if _, err := ld.RunProgram(w.cpu, "hello.run", 10000); err != nil {
		t.Fatal(err)
	}
	if w.out.String() != "hi" {
		t.Fatalf("output %q, want %q", w.out.String(), "hi")
	}
}

func TestProgramFileIO(t *testing.T) {
	w := newWorld(t)
	// Write a file from machine code, then read it back from machine code.
	writer := asm.MustAssemble(`
START:	LDA 0, NAME+0   ; no-op to reference; real arg below
	LDA 0, NAMEP
	SYS 4           ; OpenW -> AC0 handle
	STA 0, H
	LDA 1, BYTE
	LDA 0, H
	SYS 6           ; Putb
	LDA 0, H
	SYS 7           ; Close
	HALT
NAMEP:	.word NAME
H:	.word 0
BYTE:	.word 'Q'
NAME:	.blk 4
`)
	// Patch the name string "out.dat" into NAME manually after load — or
	// simpler: deposit it via WriteString before running.
	fixups := []Fixup(nil)
	if err := WriteCodeFile(w.os, "writer.run", writer, fixups); err != nil {
		t.Fatal(err)
	}
	ld := &Loader{OS: w.os}
	entry, err := ld.Load("writer.run")
	if err != nil {
		t.Fatal(err)
	}
	WriteString(w.os.Mem, writer.Symbols["NAME"], "out.dat")
	w.cpu.Reset(entry)
	if _, err := w.cpu.Run(10000); err != nil {
		t.Fatal(err)
	}

	fn, err := dir.ResolveName(w.os.FS, "out.dat")
	if err != nil {
		t.Fatal(err)
	}
	f, err := w.os.FS.Open(fn)
	if err != nil {
		t.Fatal(err)
	}
	s, err := stream.NewDisk(f, w.os.Zone, w.os.Mem, stream.ReadMode)
	if err != nil {
		t.Fatal(err)
	}
	got, err := stream.ReadAll(s)
	s.Close()
	if err != nil || string(got) != "Q" {
		t.Fatalf("file contents %q err %v", got, err)
	}
}

func TestGetcFromTypeAhead(t *testing.T) {
	w := newWorld(t)
	w.os.Keyboard.TypeAhead("Z")
	p := asm.MustAssemble(`
START:	SYS 2       ; Getc
	SYS 1       ; Putc (echo)
	SYS 2       ; Getc again: empty -> AC0=0xFFFF, carry
	STA 0, OUT
	HALT
OUT:	.word 0
`)
	if err := WriteCodeFile(w.os, "echo.run", p, nil); err != nil {
		t.Fatal(err)
	}
	ld := &Loader{OS: w.os}
	if _, err := ld.RunProgram(w.cpu, "echo.run", 1000); err != nil {
		t.Fatal(err)
	}
	if w.out.String() != "Z" {
		t.Fatalf("echo %q", w.out.String())
	}
	if got := w.os.Mem.Load(p.Symbols["OUT"]); got != 0xFFFF {
		t.Fatalf("empty Getc = %#x", got)
	}
}

func TestChainLoading(t *testing.T) {
	w := newWorld(t)
	second := asm.MustAssemble(`
START:	LDA 0, CB
	SYS 1
	HALT
CB:	.word 'B'
`)
	if err := WriteCodeFile(w.os, "second.run", second, nil); err != nil {
		t.Fatal(err)
	}
	first := asm.MustAssemble(`
START:	LDA 0, CA
	SYS 1
	LDA 0, NAMEP
	SYS 10      ; Chain
	HALT        ; never reached
CA:	.word 'A'
NAMEP:	.word NAME
NAME:	.blk 6
`)
	if err := WriteCodeFile(w.os, "first.run", first, nil); err != nil {
		t.Fatal(err)
	}
	ld := &Loader{OS: w.os}
	entry, err := ld.Load("first.run")
	if err != nil {
		t.Fatal(err)
	}
	WriteString(w.os.Mem, first.Symbols["NAME"], "second.run")
	w.cpu.Reset(entry)
	if _, err := w.cpu.Run(1000); err != nil {
		t.Fatal(err)
	}
	name, ok := w.os.TakeChain()
	if !ok || name != "second.run" {
		t.Fatalf("chain = %q, %v", name, ok)
	}
	if _, err := ld.RunProgram(w.cpu, name, 1000); err != nil {
		t.Fatal(err)
	}
	if w.out.String() != "AB" {
		t.Fatalf("output %q, want AB", w.out.String())
	}
}

// The paper's §4.1 coroutine: two programs alternate via OutLoad/InLoad,
// each seeing the other's messages. This exercises genuine whole-machine
// state save/restore through the file system.
func TestWorldSwapCoroutine(t *testing.T) {
	w := newWorld(t)
	// Program: prints its tag, OutLoads itself; if written (AC0=1), InLoads
	// the partner; when resumed (AC0=0), prints tag again and halts.
	src := func(tag byte) string {
		return `
START:	LDA 0, TAG
	SYS 1           ; print tag
	LDA 0, MYFN
	SYS 8           ; OutLoad -> AC0: 1 written, 0 resumed
	MOV# 0, 0, SZR  ; skip if AC0 == 0 (resumed)
	JMP WRITTEN
	LDA 0, TAG      ; resumed path
	SYS 1
	HALT
WRITTEN: LDA 0, PARTFN
	LDA 1, MSG
	SYS 9           ; InLoad partner (never returns)
	HALT
MSG:	.blk 20
TAG:	.word '` + string(tag) + `'
MYFN:	.word MYNAME
PARTFN:	.word PARTNAME
MYNAME:	.blk 8
PARTNAME: .blk 8
`
	}
	progA := asm.MustAssemble(src('A'))
	if err := WriteCodeFile(w.os, "coroA.run", progA, nil); err != nil {
		t.Fatal(err)
	}

	ld := &Loader{OS: w.os}
	entry, err := ld.Load("coroA.run")
	if err != nil {
		t.Fatal(err)
	}
	WriteString(w.os.Mem, progA.Symbols["MYNAME"], "A.state")
	WriteString(w.os.Mem, progA.Symbols["PARTNAME"], "B.state")

	// Run A until it has OutLoaded itself and is about to InLoad B. B's
	// state doesn't exist yet, so A's InLoad will fail; instead we stop A
	// right after its OutLoad by running it and catching the error.
	w.cpu.Reset(entry)
	_, err = w.cpu.Run(100000)
	if err == nil {
		t.Fatal("expected A's InLoad of missing B.state to fail")
	}
	if got := w.out.String(); got != "A" {
		t.Fatalf("A printed %q before swap", got)
	}

	// Now "B" is simply A's saved state under another name — restore it and
	// run: the restored program continues after OutLoad with written=false
	// and prints its tag again.
	fn, err := dir.ResolveName(w.os.FS, "A.state")
	if err != nil {
		t.Fatal(err)
	}
	var msg swap.Message
	if err := swap.InLoad(w.os.FS, w.cpu, fn, msg); err != nil {
		t.Fatal(err)
	}
	if _, err := w.cpu.Run(100000); err != nil {
		t.Fatal(err)
	}
	if got := w.out.String(); got != "AA" {
		t.Fatalf("after restore, output %q, want AA", got)
	}
}

func TestExecutiveCommands(t *testing.T) {
	w := newWorld(t)
	// Seed a file.
	f, err := w.os.FS.Create("note.txt")
	if err != nil {
		t.Fatal(err)
	}
	root, _ := dir.OpenRoot(w.os.FS)
	if err := root.Insert("note.txt", f.FN()); err != nil {
		t.Fatal(err)
	}
	s, _ := stream.NewDisk(f, w.os.Zone, w.os.Mem, stream.UpdateMode)
	stream.PutString(s, "contents here")
	s.Close()

	w.os.Keyboard.TypeAhead("ls\ntype note.txt\nfree\nhelp\nquit\n")
	if err := w.exec.Run(); err != nil {
		t.Fatal(err)
	}
	out := w.out.String()
	for _, want := range []string{"note.txt", "contents here", "free pages", "commands:"} {
		if !strings.Contains(out, want) {
			t.Errorf("executive output missing %q:\n%s", want, out)
		}
	}
}

func TestExecutiveDelete(t *testing.T) {
	w := newWorld(t)
	f, _ := w.os.FS.Create("gone.txt")
	root, _ := dir.OpenRoot(w.os.FS)
	root.Insert("gone.txt", f.FN())

	if _, err := w.exec.Execute("delete gone.txt"); err != nil {
		t.Fatal(err)
	}
	if _, err := root.Lookup("gone.txt"); err == nil {
		t.Fatal("entry survives delete")
	}
	if _, err := w.exec.Execute("delete gone.txt"); err == nil {
		t.Fatal("double delete should fail")
	}
}

func TestExecutiveScavengeCommand(t *testing.T) {
	w := newWorld(t)
	if _, err := w.exec.Execute("scavenge"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(w.out.String(), "scavenge:") {
		t.Fatalf("no scavenge report in %q", w.out.String())
	}
	// The swapped-in FS must still work.
	if _, err := w.exec.Execute("free"); err != nil {
		t.Fatal(err)
	}
}

func TestExecutiveUnknownProgram(t *testing.T) {
	w := newWorld(t)
	if _, err := w.exec.Execute("nonesuch"); err == nil {
		t.Fatal("running a missing program should fail")
	}
}

func TestBootImage(t *testing.T) {
	w := newWorld(t)
	p := asm.MustAssemble(`
START:	LDA 0, CB
	SYS 1
	HALT
CB:	.word '!'
`)
	if _, err := MakeBootImage(w.os, p); err != nil {
		t.Fatal(err)
	}
	// Boot the machine: state restored from the fixed sector, program runs.
	if err := swap.Boot(w.os.FS, w.cpu); err != nil {
		t.Fatal(err)
	}
	if _, err := w.cpu.Run(1000); err != nil {
		t.Fatal(err)
	}
	if w.out.String() != "!" {
		t.Fatalf("boot output %q", w.out.String())
	}
}

func TestBootFNWithoutBootFile(t *testing.T) {
	w := newWorld(t)
	if _, err := swap.BootFN(w.drive); err == nil {
		t.Fatal("BootFN on a disk with no boot file should fail")
	}
}

func TestStateFileRoundTripPreservesMachine(t *testing.T) {
	w := newWorld(t)
	// Fill memory with a pattern, save, scribble, load, compare.
	for i := 0; i < mem.Words; i += 7 {
		w.os.Mem.Store(uint16(i), uint16(i*3))
	}
	w.cpu.AC = [4]uint16{1, 2, 3, 4}
	w.cpu.PC = 0x1234
	w.cpu.Carry = true
	sum := w.os.Mem.Checksum()

	root, _ := dir.OpenRoot(w.os.FS)
	f, err := w.os.FS.Create("m.state")
	if err != nil {
		t.Fatal(err)
	}
	root.Insert("m.state", f.FN())
	if err := swap.SaveState(w.os.FS, w.cpu, f.FN()); err != nil {
		t.Fatal(err)
	}

	w.os.Mem.Store(100, 0xDEAD)
	w.cpu.AC = [4]uint16{}
	w.cpu.PC = 0
	w.cpu.Carry = false

	if err := swap.LoadState(w.os.FS, w.cpu, f.FN()); err != nil {
		t.Fatal(err)
	}
	if w.os.Mem.Checksum() != sum {
		t.Error("memory not restored exactly")
	}
	if w.cpu.AC != [4]uint16{1, 2, 3, 4} || w.cpu.PC != 0x1234 || !w.cpu.Carry {
		t.Errorf("registers not restored: %v", w.cpu)
	}
}

func TestSecondSaveIsFasterThanFirst(t *testing.T) {
	// §4.1: OutLoad takes "about a second". The installed case (file already
	// sized) streams at full disk rate; the first save pays allocation.
	w := newWorld(t)
	root, _ := dir.OpenRoot(w.os.FS)
	f, _ := w.os.FS.Create("t.state")
	root.Insert("t.state", f.FN())

	clock := w.drive.Clock()
	t0 := clock.Now()
	if err := swap.SaveState(w.os.FS, w.cpu, f.FN()); err != nil {
		t.Fatal(err)
	}
	first := clock.Now() - t0

	t1 := clock.Now()
	if err := swap.SaveState(w.os.FS, w.cpu, f.FN()); err != nil {
		t.Fatal(err)
	}
	second := clock.Now() - t1

	if second >= first {
		t.Errorf("installed save (%v) not faster than first save (%v)", second, first)
	}
	if secs := second.Seconds(); secs < 0.3 || secs > 3 {
		t.Errorf("installed save took %.2fs, want about a second", secs)
	}
}
