package exec

import (
	"errors"
	"testing"

	"altoos/internal/asm"
	"altoos/internal/dir"
	"altoos/internal/stream"
)

func TestLoaderRejectsNonCodeFiles(t *testing.T) {
	w := newWorld(t)
	seedFile(t, w, "garbage.run", "this is not a code file at all")
	ld := &Loader{OS: w.os}
	if _, err := ld.Load("garbage.run"); !errors.Is(err, ErrNotCode) {
		t.Fatalf("got %v, want ErrNotCode", err)
	}
}

func TestLoaderRejectsMissingProgram(t *testing.T) {
	w := newWorld(t)
	ld := &Loader{OS: w.os}
	if _, err := ld.Load("nothere.run"); err == nil {
		t.Fatal("loaded a missing program")
	}
}

func TestLoaderRejectsTruncatedCodeFile(t *testing.T) {
	w := newWorld(t)
	p := asm.MustAssemble("START: HALT")
	if err := WriteCodeFile(w.os, "trunc.run", p, nil); err != nil {
		t.Fatal(err)
	}
	// Truncate the code file to its header only.
	fn, err := dir.ResolveName(w.os.FS, "trunc.run")
	if err != nil {
		t.Fatal(err)
	}
	f, err := w.os.FS.Open(fn)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(1, 8); err != nil { // 4 words: through codeLen
		t.Fatal(err)
	}
	ld := &Loader{OS: w.os}
	if _, err := ld.Load("trunc.run"); !errors.Is(err, ErrNotCode) {
		t.Fatalf("got %v, want ErrNotCode", err)
	}
}

func TestLoaderRejectsWildFixup(t *testing.T) {
	w := newWorld(t)
	p := asm.MustAssemble("START: HALT\nPTR: .word 0")
	fix := []Fixup{{Offset: 1, Syscall: 999}} // no such syscall
	if err := WriteCodeFile(w.os, "wild.run", p, fix); err != nil {
		t.Fatal(err)
	}
	ld := &Loader{OS: w.os}
	if _, err := ld.Load("wild.run"); !errors.Is(err, ErrNotCode) {
		t.Fatalf("got %v, want ErrNotCode", err)
	}
}

func TestFixupsForUnknownLabel(t *testing.T) {
	p := asm.MustAssemble("START: HALT")
	if _, err := FixupsFor(p, map[string]uint16{"NOPE": SysPutc}); err == nil {
		t.Fatal("fixup for undefined label accepted")
	}
}

func TestSysVecStubsAreWellFormed(t *testing.T) {
	w := newWorld(t)
	InstallSysVec(w.os.Mem)
	for s := uint16(0); s < NumSyscalls; s++ {
		a := StubAddr(s)
		if got := w.os.Mem.Load(a); got != 3<<13|s {
			t.Fatalf("stub %d word 0 = %#04x", s, got)
		}
		if got := w.os.Mem.Load(a + 1); got != 3<<8 {
			t.Fatalf("stub %d word 1 = %#04x (want JMP 0(3))", s, got)
		}
	}
}

func TestRunProgramClosesStrayHandles(t *testing.T) {
	w := newWorld(t)
	// A program that opens a file and halts without closing it.
	p := asm.MustAssemble(`
START:	LDA 0, NAMEP
	SYS 4
	HALT
NAMEP:	.word NAME
NAME:	.blk 6
`)
	if err := WriteCodeFile(w.os, "leaky.run", p, nil); err != nil {
		t.Fatal(err)
	}
	ld := &Loader{OS: w.os}
	entry, err := ld.Load("leaky.run")
	if err != nil {
		t.Fatal(err)
	}
	WriteString(w.os.Mem, p.Symbols["NAME"], "leak.dat")
	w.cpu.Reset(entry)
	if _, err := w.cpu.Run(1000); err != nil {
		t.Fatal(err)
	}
	if w.os.OpenHandles() != 1 {
		t.Fatalf("expected a leaked handle, have %d", w.os.OpenHandles())
	}
	// The Executive's program teardown cleans up.
	w.os.CloseAll()
	if w.os.OpenHandles() != 0 {
		t.Fatal("CloseAll missed the stray")
	}
}

var _ = stream.PutString // the seedFile helper in executive_test.go uses it
