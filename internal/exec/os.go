// Package exec implements §5 of the paper: the resident operating system as
// a collection of services reachable from running programs (the SYS trap
// surface), the program loader with its fixup tables (§5.1), and the
// Executive command interpreter.
//
// Nothing here is privileged. The OS type is ordinary code over the same
// exported file, stream and zone packages any program could use; a program
// that prefers its own facilities simply doesn't trap.
package exec

import (
	"errors"
	"fmt"

	"altoos/internal/cpu"
	"altoos/internal/dir"
	"altoos/internal/disk"
	"altoos/internal/file"
	"altoos/internal/mem"
	"altoos/internal/stream"
	"altoos/internal/swap"
	"altoos/internal/zone"
)

// Syscall numbers. User programs reach these through SYS traps, usually via
// the system vector stubs the loader binds (see loader.go).
const (
	SysHalt  = 0  // stop the program; control returns to the Executive
	SysPutc  = 1  // AC0: character -> display stream
	SysGetc  = 2  // keyboard -> AC0, or 0xFFFF with carry set if none
	SysOpenR = 3  // AC0: name string -> AC0 handle, 0 on failure
	SysOpenW = 4  // AC0: name string -> AC0 handle (creates/truncates)
	SysGetb  = 5  // AC0: handle -> AC1 byte; carry set at end of stream
	SysPutb  = 6  // AC0: handle, AC1: byte
	SysClose = 7  // AC0: handle
	SysOutLd = 8  // AC0: state-file name string -> AC0: 1 written, 0 resumed
	SysInLd  = 9  // AC0: state-file name string, AC1: message address
	SysChain = 10 // AC0: program name string; Executive loads it next
	SysMsg   = 11 // AC0: destination for the 20-word InLoad message
	SysDebug = 12 // breakpoint: save the machine as Swatee and stop (§4)
)

// NumSyscalls bounds the system vector table.
const NumSyscalls = 13

// SwateeName is the state file a breakpoint writes — the faulty program,
// pickled for the debugger. (The Alto's debugger was called Swat; its victim
// the Swatee.)
const SwateeName = "Swatee."

// OS is the resident system: the standard streams, the system free-storage
// zone, and the syscall dispatch. It implements cpu.SysHandler.
type OS struct {
	FS       *file.FS
	Mem      *mem.Memory
	Zone     *zone.MemZone
	Keyboard *stream.Keyboard
	Display  stream.Stream

	// Hints, when present, is the level-3 resident hint table: name
	// lookups consult it before the directories and keep it fresh.
	Hints *ResidentHints

	handles map[uint16]stream.Stream
	next    uint16
	chain   string // program name requested via SysChain
	swatHit bool   // a breakpoint fired and the Swatee was written
}

// TookBreakpoint reports and clears the breakpoint flag.
func (o *OS) TookBreakpoint() bool {
	hit := o.swatHit
	o.swatHit = false
	return hit
}

var _ cpu.SysHandler = (*OS)(nil)

// NewOS assembles the resident system over its substrates.
func NewOS(fs *file.FS, m *mem.Memory, z *zone.MemZone, kbd *stream.Keyboard, display stream.Stream) *OS {
	return &OS{
		FS: fs, Mem: m, Zone: z, Keyboard: kbd, Display: display,
		handles: map[uint16]stream.Stream{},
		next:    1,
	}
}

// TakeChain returns and clears the chain-load request, if any.
func (o *OS) TakeChain() (string, bool) {
	c := o.chain
	o.chain = ""
	return c, c != ""
}

// OpenHandles reports how many streams programs have left open; the
// Executive closes strays between programs.
func (o *OS) OpenHandles() int { return len(o.handles) }

// CloseAll closes every open handle (program teardown). Every handle is
// closed and forgotten even on error; the first close error is returned so
// a flush failure in a stray stream is not silently lost.
func (o *OS) CloseAll() error {
	var first error
	for h, s := range o.handles {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
		delete(o.handles, h)
	}
	return first
}

// readString reads a BCPL-style string from memory: first byte is the
// length, bytes packed two per word, high byte first.
func readString(m *mem.Memory, addr uint16) string {
	first := m.Load(addr)
	n := int(first >> 8)
	buf := make([]byte, 0, n)
	for i := 0; i < n; i++ {
		// Byte i+1 of the packed representation.
		w := m.Load(addr + uint16((i+1)/2))
		if (i+1)%2 == 0 {
			buf = append(buf, byte(w>>8))
		} else {
			buf = append(buf, byte(w))
		}
	}
	return string(buf)
}

// WriteString stores a BCPL-style string at addr and returns the number of
// words used.
func WriteString(m *mem.Memory, addr uint16, s string) int {
	if len(s) > 255 {
		s = s[:255]
	}
	words := 1 + len(s)/2
	w := uint16(len(s)) << 8
	if len(s) > 0 {
		w |= uint16(s[0])
	}
	m.Store(addr, w)
	for i := 1; i < len(s); i += 2 {
		w := uint16(s[i]) << 8
		if i+1 < len(s) {
			w |= uint16(s[i+1])
		}
		m.Store(addr+uint16((i+1)/2), w)
	}
	return words
}

// lookup resolves a name, consulting the level-3 resident hint table first
// (§5: "hints for frequently-used files"). A resident hint is only a hint:
// the caller's open validates it with label checks; resolveVerified below
// handles the failed-hint retry.
func (o *OS) lookup(name string) (file.FN, error) {
	if o.Hints != nil {
		if fn, _, ok := o.Hints.Recall(name); ok {
			return fn, nil
		}
	}
	root, err := dir.OpenRoot(o.FS)
	if err != nil {
		return file.FN{}, err
	}
	fn, err := root.Lookup(name)
	if err != nil {
		return file.FN{}, err
	}
	if o.Hints != nil {
		o.Hints.Remember(name, fn, disk.NilVDA)
	}
	return fn, nil
}

// resolveVerified opens a named file, trying the resident hint first and
// falling back to the directories when the hint proves stale.
func (o *OS) resolveVerified(name string) (*file.File, error) {
	if o.Hints != nil {
		if fn, _, ok := o.Hints.Recall(name); ok {
			if f, err := o.FS.Open(fn); err == nil {
				return f, nil
			}
			o.Hints.Forget(name)
		}
	}
	root, err := dir.OpenRoot(o.FS)
	if err != nil {
		return nil, err
	}
	fn, err := root.Lookup(name)
	if err != nil {
		return nil, err
	}
	f, err := o.FS.Open(fn)
	if err != nil {
		return nil, err
	}
	if o.Hints != nil {
		o.Hints.Remember(name, f.FN(), disk.NilVDA)
	}
	return f, nil
}

// Sys implements cpu.SysHandler: the boundary where a running program calls
// a system facility.
func (o *OS) Sys(c *cpu.CPU, code uint16) error {
	switch code {
	case SysHalt:
		return cpu.ErrHalted

	case SysPutc:
		return o.Display.Put(byte(c.AC[0]))

	case SysGetc:
		b, err := o.Keyboard.Get()
		if errors.Is(err, stream.ErrNoInput) {
			c.AC[0] = 0xFFFF
			c.Carry = true
			return nil
		}
		if err != nil {
			return err
		}
		c.AC[0] = uint16(b)
		c.Carry = false
		return nil

	case SysOpenR, SysOpenW:
		name := readString(o.Mem, c.AC[0])
		var f *file.File
		if code == SysOpenR {
			var err error
			f, err = o.resolveVerified(name)
			if err != nil {
				c.AC[0] = 0
				return nil
			}
		} else {
			var err error
			f, err = o.createOrTruncate(name)
			if err != nil {
				c.AC[0] = 0
				return nil
			}
		}
		mode := stream.ReadMode
		if code == SysOpenW {
			mode = stream.WriteMode
		}
		s, err := stream.NewDisk(f, o.Zone, o.Mem, mode)
		if err != nil {
			c.AC[0] = 0
			return nil
		}
		h := o.next
		o.next++
		o.handles[h] = s
		c.AC[0] = h
		return nil

	case SysGetb:
		s, ok := o.handles[c.AC[0]]
		if !ok {
			return fmt.Errorf("exec: bad handle %d", c.AC[0])
		}
		b, err := s.Get()
		if errors.Is(err, stream.ErrEnd) {
			c.Carry = true
			c.AC[1] = 0xFFFF
			return nil
		}
		if err != nil {
			return err
		}
		c.Carry = false
		c.AC[1] = uint16(b)
		return nil

	case SysPutb:
		s, ok := o.handles[c.AC[0]]
		if !ok {
			return fmt.Errorf("exec: bad handle %d", c.AC[0])
		}
		return s.Put(byte(c.AC[1]))

	case SysClose:
		if s, ok := o.handles[c.AC[0]]; ok {
			delete(o.handles, c.AC[0])
			return s.Close()
		}
		return nil

	case SysOutLd:
		name := readString(o.Mem, c.AC[0])
		fn, err := o.stateFile(name)
		if err != nil {
			return err
		}
		written, err := swap.OutLoad(o.FS, c, fn)
		if err != nil {
			return err
		}
		if written {
			c.AC[0] = 1
		}
		return nil

	case SysInLd:
		name := readString(o.Mem, c.AC[0])
		fn, err := o.lookup(name)
		if err != nil {
			return fmt.Errorf("exec: InLoad %q: %w", name, err)
		}
		var msg swap.Message
		base := c.AC[1]
		for i := range msg {
			msg[i] = o.Mem.Load(base + uint16(i))
		}
		// After this, the calling program is gone; the machine continues in
		// the restored program.
		return swap.InLoad(o.FS, c, fn, msg)

	case SysChain:
		o.chain = readString(o.Mem, c.AC[0])
		return cpu.ErrHalted

	case SysMsg:
		msg := swap.ReadMessage(c)
		base := c.AC[0]
		for i, w := range msg {
			o.Mem.Store(base+uint16(i), w)
		}
		return nil

	case SysDebug:
		// §4: "the state of the machine is written on a disk file" — with
		// the PC pointing back at the breakpoint address, so that resuming
		// (after the debugger restores the displaced instruction) re-executes
		// it. Then the machine stops; the debugger takes over.
		c.PC--
		fn, err := o.stateFile(SwateeName)
		if err != nil {
			return err
		}
		if err := swap.SaveState(o.FS, c, fn); err != nil {
			return err
		}
		o.swatHit = true
		return cpu.ErrHalted
	}
	return fmt.Errorf("exec: undefined syscall %d", code)
}

// createOrTruncate opens name for writing, creating it and its root entry
// if absent.
func (o *OS) createOrTruncate(name string) (*file.File, error) {
	root, err := dir.OpenRoot(o.FS)
	if err != nil {
		return nil, err
	}
	if fn, err := root.Lookup(name); err == nil {
		return o.FS.Open(fn)
	}
	f, err := o.FS.Create(name)
	if err != nil {
		return nil, err
	}
	if err := root.Insert(name, f.FN()); err != nil {
		return nil, err
	}
	return f, nil
}

// stateFile opens or creates a state file by name.
func (o *OS) stateFile(name string) (file.FN, error) {
	root, err := dir.OpenRoot(o.FS)
	if err != nil {
		return file.FN{}, err
	}
	if fn, err := root.Lookup(name); err == nil {
		return fn, nil
	}
	f, err := o.FS.Create(name)
	if err != nil {
		return file.FN{}, err
	}
	if err := root.Insert(name, f.FN()); err != nil {
		return file.FN{}, err
	}
	return f.FN(), nil
}
