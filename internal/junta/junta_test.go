package junta

import (
	"errors"
	"testing"

	"altoos/internal/mem"
	"altoos/internal/zone"
)

func TestLayoutIsContiguousFromTop(t *testing.T) {
	j := New(mem.New())
	prevStart := 1 << 16
	for l := Level(1); l <= NumLevels; l++ {
		r, err := j.Region(l)
		if err != nil {
			t.Fatal(err)
		}
		end := int(r.End)
		if end == 0 {
			end = 1 << 16
		}
		if end != prevStart {
			t.Errorf("%v: region %v does not abut previous start %#x", l, r, prevStart)
		}
		if r.Size() <= 0 {
			t.Errorf("%v: empty region", l)
		}
		prevStart = int(r.Start)
	}
	// Level 1 must be at the very top of memory (§5.2).
	r1, _ := j.Region(1)
	if int(r1.Start)+r1.Size() != 1<<16 {
		t.Error("level 1 not at top of memory")
	}
}

func TestJuntaFreesExpectedWords(t *testing.T) {
	j := New(mem.New())
	base0 := j.Base()
	freed, words, err := j.Do(LevelDiskStream) // keep 1..8
	if err != nil {
		t.Fatal(err)
	}
	wantWords := 0
	for l := LevelDirectory; l <= LevelFreeStore; l++ {
		r, _ := j.Region(l)
		wantWords += r.Size()
	}
	if words != wantWords {
		t.Errorf("freed %d words, want %d", words, wantWords)
	}
	if freed.Size() != words {
		t.Errorf("region size %d != freed words %d", freed.Size(), words)
	}
	if j.Base() <= base0 {
		t.Error("base did not rise after Junta")
	}
	if j.Retained() != LevelDiskStream {
		t.Errorf("retained %v", j.Retained())
	}
	if j.Resident(LevelDirectory) {
		t.Error("level 9 still resident")
	}
	if !j.Resident(LevelDiskStream) {
		t.Error("level 8 not resident")
	}
}

func TestJuntaTeardownAndRestoreOrder(t *testing.T) {
	j := New(mem.New())
	var events []string
	for _, l := range []Level{LevelDirectory, LevelDisplay, LevelFreeStore} {
		l := l
		j.Register(&Service{
			Name:     l.String(),
			Level:    l,
			Teardown: func() { events = append(events, "down:"+l.String()) },
			Restore:  func() error { events = append(events, "up:"+l.String()); return nil },
		})
	}
	if _, _, err := j.Do(LevelDiskStream); err != nil {
		t.Fatal(err)
	}
	// Teardown: highest level (most dependent) first.
	want := []string{
		"down:" + LevelFreeStore.String(),
		"down:" + LevelDisplay.String(),
		"down:" + LevelDirectory.String(),
	}
	for i, w := range want {
		if i >= len(events) || events[i] != w {
			t.Fatalf("teardown order %v, want %v", events, want)
		}
	}
	events = nil
	if err := j.CounterJunta(); err != nil {
		t.Fatal(err)
	}
	wantUp := []string{
		"up:" + LevelDirectory.String(),
		"up:" + LevelDisplay.String(),
		"up:" + LevelFreeStore.String(),
	}
	for i, w := range wantUp {
		if i >= len(events) || events[i] != w {
			t.Fatalf("restore order %v, want %v", events, wantUp)
		}
	}
	if j.Retained() != NumLevels {
		t.Error("CounterJunta did not restore all levels")
	}
}

func TestFreedRegionUsableAsZone(t *testing.T) {
	// §5.2: the program takes over the freed storage — here by building a
	// zone over it, which is exactly what the allocator supports.
	m := mem.New()
	j := New(m)
	freed, words, err := j.Do(LevelSwap) // keep only level 1
	if err != nil {
		t.Fatal(err)
	}
	if words < 10000 {
		t.Fatalf("keeping only level 1 freed just %d words", words)
	}
	size := freed.Size()
	if size > 0x7FFF {
		size = 0x7FFF
	}
	z, err := zone.New(m, freed.Start, size)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := z.Alloc(1000); err != nil {
		t.Fatal(err)
	}
}

func TestJuntaScrubsFreedMemory(t *testing.T) {
	m := mem.New()
	j := New(m)
	r, _ := j.Region(LevelFreeStore)
	m.Store(r.Start+5, 0xBEEF)
	if _, _, err := j.Do(LevelLoader); err != nil {
		t.Fatal(err)
	}
	if m.Load(r.Start+5) != 0 {
		t.Error("freed level data survived the Junta")
	}
}

func TestJuntaNoopWhenKeepingEverything(t *testing.T) {
	j := New(mem.New())
	_, words, err := j.Do(NumLevels)
	if err != nil || words != 0 {
		t.Fatalf("no-op junta freed %d words, err %v", words, err)
	}
}

func TestBadLevels(t *testing.T) {
	j := New(mem.New())
	if _, _, err := j.Do(0); !errors.Is(err, ErrBadLevel) {
		t.Error("accepted level 0")
	}
	if _, _, err := j.Do(14); !errors.Is(err, ErrBadLevel) {
		t.Error("accepted level 14")
	}
	if _, err := j.Region(99); !errors.Is(err, ErrBadLevel) {
		t.Error("Region(99) succeeded")
	}
	if err := j.Register(&Service{Level: 0}); !errors.Is(err, ErrBadLevel) {
		t.Error("registered service at level 0")
	}
}

func TestTable(t *testing.T) {
	j := New(mem.New())
	j.Do(LevelZones)
	tbl := j.Table()
	if len(tbl) != NumLevels {
		t.Fatalf("table has %d entries", len(tbl))
	}
	for _, e := range tbl {
		if e.Resident != (e.Level <= LevelZones) {
			t.Errorf("%v residency wrong", e.Level)
		}
		if e.Words != e.Region.Size() {
			t.Errorf("%v words %d != region %v", e.Level, e.Words, e.Region)
		}
	}
}
