// Package junta implements the level organization of §5.2 and the Junta/
// CounterJunta procedures. The operating system's packages are arranged in
// numbered levels: the most ubiquitous services (OutLoad/InLoad,
// CounterJunta itself) at the very top of memory, less ubiquitous ones in
// higher-numbered levels at lower addresses. A program that wants the
// memory — or wants to replace the standard facilities with its own — calls
// Junta with the highest level it intends to keep; everything below that in
// memory is removed and its storage freed for the program's own use. When
// the program finishes, CounterJunta restores the removed levels from the
// operating system's saved state and reinitializes their data structures.
//
// "Unlike more elaborate mechanisms such as swapping code segments, this
// scheme guarantees the performance of the resident system."
package junta

import (
	"errors"
	"fmt"
	"sort"

	"altoos/internal/mem"
)

// Level numbers the thirteen service levels of §5.2.
type Level int

// The levels, exactly as the paper lists them. Levels 5 and 6 are the two
// halves of the disk package (code and data).
const (
	LevelSwap       Level = 1  // OutLoad/InLoad, CounterJunta
	LevelKeyboard   Level = 2  // keyboard input buffer
	LevelHints      Level = 3  // hints for important files
	LevelRuntime    Level = 4  // BCPL runtime procedures
	LevelDiskCode   Level = 5  // disk object code
	LevelDiskData   Level = 6  // disk object data
	LevelZones      Level = 7  // the standard free-storage object
	LevelDiskStream Level = 8  // disk stream objects
	LevelDirectory  Level = 9  // disk directories
	LevelKbdStream  Level = 10 // keyboard stream object
	LevelDisplay    Level = 11 // display stream objects
	LevelLoader     Level = 12 // the program loader and Junta itself
	LevelFreeStore  Level = 13 // system free storage
)

// NumLevels is the count of defined levels.
const NumLevels = 13

var levelNames = map[Level]string{
	LevelSwap:       "OutLoad/InLoad, CounterJunta",
	LevelKeyboard:   "keyboard input buffer",
	LevelHints:      "hints for important files",
	LevelRuntime:    "BCPL runtime procedures",
	LevelDiskCode:   "disk object (code)",
	LevelDiskData:   "disk object (data)",
	LevelZones:      "zones (free-storage object)",
	LevelDiskStream: "disk streams",
	LevelDirectory:  "disk directories",
	LevelKbdStream:  "keyboard streams",
	LevelDisplay:    "display streams",
	LevelLoader:     "program loader and Junta",
	LevelFreeStore:  "system free storage",
}

// String implements fmt.Stringer.
func (l Level) String() string {
	if n, ok := levelNames[l]; ok {
		return fmt.Sprintf("level %d (%s)", int(l), n)
	}
	return fmt.Sprintf("level %d", int(l))
}

// defaultSizes gives each level's resident footprint in words. The figures
// follow the paper's hints where it gives them (InLoad and OutLoad are
// "about 900 words"; the keyboard buffer and hint tables are small; the
// free-storage region dominates).
var defaultSizes = map[Level]int{
	LevelSwap:       1024,
	LevelKeyboard:   256,
	LevelHints:      256,
	LevelRuntime:    768,
	LevelDiskCode:   1536,
	LevelDiskData:   512,
	LevelZones:      512,
	LevelDiskStream: 1280,
	LevelDirectory:  1024,
	LevelKbdStream:  256,
	LevelDisplay:    1280,
	LevelLoader:     1024,
	LevelFreeStore:  8192,
}

// Service is a resident facility living at some level. Teardown runs when a
// Junta removes it; Restore runs when CounterJunta brings it back.
type Service struct {
	Name     string
	Level    Level
	Teardown func()
	Restore  func() error
}

// Errors.
var (
	// ErrBadLevel reports a level outside 1..13.
	ErrBadLevel = errors.New("junta: no such level")
	// ErrRemoved reports use of a facility whose level has been removed.
	ErrRemoved = errors.New("junta: level removed")
)

// Junta manages the level table over main memory.
type Junta struct {
	m        *mem.Memory
	regions  map[Level]mem.Region
	services []*Service
	retained Level // highest level currently resident
}

// New lays the levels out at the top of memory: level 1 highest, level 13
// lowest, contiguous. The returned Junta has all levels resident.
func New(m *mem.Memory) *Junta {
	j := &Junta{m: m, regions: map[Level]mem.Region{}, retained: NumLevels}
	top := 1 << 16
	for l := Level(1); l <= NumLevels; l++ {
		size := defaultSizes[l]
		start := top - size
		end := mem.Addr(0)
		if top < 1<<16 {
			end = mem.Addr(top)
		}
		j.regions[l] = mem.Region{Start: mem.Addr(start), End: end}
		top = start
	}
	return j
}

// Region returns the memory region a level occupies.
func (j *Junta) Region(l Level) (mem.Region, error) {
	r, ok := j.regions[l]
	if !ok {
		return mem.Region{}, fmt.Errorf("%w: %d", ErrBadLevel, l)
	}
	return r, nil
}

// Base returns the lowest address used by any resident level: everything
// below it belongs to user programs.
func (j *Junta) Base() mem.Addr {
	return j.regions[j.retained].Start
}

// Retained returns the highest-numbered level still resident.
func (j *Junta) Retained() Level { return j.retained }

// Resident reports whether a level is currently resident.
func (j *Junta) Resident(l Level) bool { return l <= j.retained }

// Register adds a service to its level. Services registered on a removed
// level are restored by the next CounterJunta.
func (j *Junta) Register(s *Service) error {
	if s.Level < 1 || s.Level > NumLevels {
		return fmt.Errorf("%w: %d", ErrBadLevel, s.Level)
	}
	j.services = append(j.services, s)
	return nil
}

// Do performs the Junta: removes every level above keep (higher-numbered,
// lower in memory), running their services' teardowns, and returns the
// freed region, which the caller may use as it pleases — typically to build
// a zone over (§5.2: the allocator "will build zone objects to allocate any
// part of memory").
func (j *Junta) Do(keep Level) (freed mem.Region, freedWords int, err error) {
	if keep < 1 || keep > NumLevels {
		return mem.Region{}, 0, fmt.Errorf("%w: %d", ErrBadLevel, keep)
	}
	if keep >= j.retained {
		// Nothing to remove.
		return mem.Region{Start: j.Base(), End: j.Base()}, 0, nil
	}
	// Teardown from the lowest level upward (most dependent first).
	for l := j.retained; l > keep; l-- {
		for _, s := range j.services {
			if s.Level == l && s.Teardown != nil {
				s.Teardown()
			}
		}
	}
	low := j.regions[NumLevels].Start
	if j.retained < NumLevels {
		low = j.regions[j.retained].Start
	}
	high := j.regions[keep].Start
	j.retained = keep
	region := mem.Region{Start: low, End: high}
	// Scrub the freed storage: the departing levels' data structures must
	// not be mistaken for live state.
	j.m.Clear(low, region.Size())
	return region, region.Size(), nil
}

// CounterJunta restores every removed level, lowest-numbered first, running
// the services' Restore hooks to reinitialize their data structures. On the
// real machine this reloads the system image from the OS's InLoad/OutLoad
// context; the restore hooks are that reload.
func (j *Junta) CounterJunta() error {
	if j.retained == NumLevels {
		return nil
	}
	old := j.retained
	j.retained = NumLevels
	// Restore in ascending level order.
	svcs := append([]*Service(nil), j.services...)
	sort.SliceStable(svcs, func(a, b int) bool { return svcs[a].Level < svcs[b].Level })
	for _, s := range svcs {
		if s.Level > old && s.Restore != nil {
			if err := s.Restore(); err != nil {
				return fmt.Errorf("junta: restoring %s: %w", s.Name, err)
			}
		}
	}
	return nil
}

// Table describes every level: its region, size, and residency. For the
// Junta experiment and the diagnostic tools.
type TableEntry struct {
	Level    Level
	Name     string
	Region   mem.Region
	Words    int
	Resident bool
}

// Table returns the level table in level order.
func (j *Junta) Table() []TableEntry {
	out := make([]TableEntry, 0, NumLevels)
	for l := Level(1); l <= NumLevels; l++ {
		r := j.regions[l]
		out = append(out, TableEntry{
			Level:    l,
			Name:     levelNames[l],
			Region:   r,
			Words:    r.Size(),
			Resident: j.Resident(l),
		})
	}
	return out
}
