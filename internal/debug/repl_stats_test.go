package debug

import (
	"strings"
	"testing"

	"altoos/internal/disk"
	"altoos/internal/trace"
)

// TestREPLStats exercises the stats command: with a recorder attached the
// snapshot's counters come out, and with tracing off (nil recorder, the
// default) the command still answers with the empty snapshot instead of
// crashing Swat.
func TestREPLStats(t *testing.T) {
	w := newWorld(t)
	rec := trace.New(256)
	rec.Add("disk.ops", 42)
	rec.Observe("disk.op.revs", 1.5)
	w.dbg.Trace = rec
	out := replSession(t, w, "stats\nq\n")
	for _, want := range []string{"events", "disk.ops", "42", "disk.op.revs", "p50=", "p99="} {
		if !strings.Contains(out, want) {
			t.Errorf("stats output missing %q:\n%s", want, out)
		}
	}
}

func TestREPLStatsWithoutRecorder(t *testing.T) {
	w := newWorld(t)
	out := replSession(t, w, "stats\nq\n")
	if !strings.Contains(out, "events") {
		t.Fatalf("stats with tracing off should print the empty snapshot:\n%s", out)
	}
}

// TestREPLStatsShowsCrashCounters wires a drive that lived through a crash
// into the REPL: the crashed-write and torn-write counters the disk emits
// must surface verbatim in Swat's stats output, so an operator breaking
// into a rebooted machine can see how it died.
func TestREPLStatsShowsCrashCounters(t *testing.T) {
	d, err := disk.NewDrive(disk.Diablo31(), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.New(256)
	d.SetRecorder(rec)
	d.SetTornCrash(true)
	d.CrashAfterWrites(0)
	var lbl [disk.LabelWords]disk.Word
	var v [disk.PageWords]disk.Word
	op := disk.Op{Addr: 7, Label: disk.Write, LabelData: &lbl, Value: disk.Write, ValueData: &v}
	if err := d.Do(&op); err == nil {
		t.Fatal("armed crash did not fire")
	}

	w := newWorld(t)
	w.dbg.Trace = rec
	out := replSession(t, w, "stats\nq\n")
	for _, want := range []string{"disk.write.crashed", "disk.write.torn"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats output missing %q after a torn crash:\n%s", want, out)
		}
	}
}
