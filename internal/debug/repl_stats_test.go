package debug

import (
	"strings"
	"testing"

	"altoos/internal/trace"
)

// TestREPLStats exercises the stats command: with a recorder attached the
// snapshot's counters come out, and with tracing off (nil recorder, the
// default) the command still answers with the empty snapshot instead of
// crashing Swat.
func TestREPLStats(t *testing.T) {
	w := newWorld(t)
	rec := trace.New(256)
	rec.Add("disk.ops", 42)
	rec.Observe("disk.op.revs", 1.5)
	w.dbg.Trace = rec
	out := replSession(t, w, "stats\nq\n")
	for _, want := range []string{"events", "disk.ops", "42", "disk.op.revs"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats output missing %q:\n%s", want, out)
		}
	}
}

func TestREPLStatsWithoutRecorder(t *testing.T) {
	w := newWorld(t)
	out := replSession(t, w, "stats\nq\n")
	if !strings.Contains(out, "events") {
		t.Fatalf("stats with tracing off should print the empty snapshot:\n%s", out)
	}
}
