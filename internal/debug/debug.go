// Package debug implements the §4 debugging scenario: "When a breakpoint is
// encountered ... the state of the machine is written on a disk file, and
// the machine state is restored from a file that contains the debugger. The
// debugging program may examine or alter the state of the faulty program by
// reading or writing portions of the file that was written as a result of
// the breakpoint. The debugger can later resume execution of the original
// program by restoring the machine state from the file. The original
// program and the debugger thus operate as coroutines."
//
// The Alto's debugger was Swat, its pickled victim the Swatee. Ours follows
// the same architecture: breakpoints are SYS-trap instructions patched over
// code; a hit writes the whole machine to the Swatee file; the debugger
// never touches the live machine — every examine and deposit is a read or
// write of the state *file* — and Resume restores the repaired machine and
// lets it run.
package debug

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"altoos/internal/asm"
	"altoos/internal/cpu"
	"altoos/internal/dir"
	"altoos/internal/exec"
	"altoos/internal/file"
	"altoos/internal/stream"
	"altoos/internal/swap"
	"altoos/internal/trace"
)

// breakInstr is the trap patched over a broken-into instruction.
const breakInstr = 3<<13 | exec.SysDebug

// ErrNoSwatee reports that no breakpoint has fired yet.
var ErrNoSwatee = errors.New("debug: no Swatee on the disk")

// Debugger operates on a machine's Swatee file.
type Debugger struct {
	OS  *exec.OS
	CPU *cpu.CPU

	// Trace is the machine's flight recorder, for the REPL's stats command.
	// Nil (tracing off) is fine; stats then reports an empty snapshot.
	Trace *trace.Recorder

	// breakpoints maps address -> displaced original instruction.
	breakpoints map[uint16]uint16
}

// New attaches a debugger to the resident system.
func New(o *exec.OS, c *cpu.CPU) *Debugger {
	return &Debugger{OS: o, CPU: c, breakpoints: map[uint16]uint16{}}
}

// SetBreak plants a breakpoint in live memory, remembering the displaced
// instruction.
func (d *Debugger) SetBreak(addr uint16) {
	if _, dup := d.breakpoints[addr]; dup {
		return
	}
	d.breakpoints[addr] = d.OS.Mem.Load(addr)
	d.OS.Mem.Store(addr, breakInstr)
}

// ClearBreak removes a live breakpoint.
func (d *Debugger) ClearBreak(addr uint16) {
	if orig, ok := d.breakpoints[addr]; ok {
		d.OS.Mem.Store(addr, orig)
		delete(d.breakpoints, addr)
	}
}

// Breakpoints lists planted breakpoint addresses.
func (d *Debugger) Breakpoints() []uint16 {
	out := make([]uint16, 0, len(d.breakpoints))
	for a := range d.breakpoints {
		out = append(out, a)
	}
	return out
}

// swateeFN finds the Swatee file.
func (d *Debugger) swateeFN() (file.FN, error) {
	root, err := dir.OpenRoot(d.OS.FS)
	if err != nil {
		return file.FN{}, err
	}
	fn, err := root.Lookup(exec.SwateeName)
	if err != nil {
		return file.FN{}, ErrNoSwatee
	}
	return fn, nil
}

// Regs reads the Swatee's registers from the state file.
func (d *Debugger) Regs() (swap.Regs, error) {
	fn, err := d.swateeFN()
	if err != nil {
		return swap.Regs{}, err
	}
	return swap.ReadStateRegs(d.OS.FS, fn)
}

// SetRegs alters the Swatee's registers in the state file.
func (d *Debugger) SetRegs(r swap.Regs) error {
	fn, err := d.swateeFN()
	if err != nil {
		return err
	}
	return swap.WriteStateRegs(d.OS.FS, fn, r)
}

// Examine reads n words of the Swatee's memory from the state file.
func (d *Debugger) Examine(addr uint16, n int) ([]uint16, error) {
	fn, err := d.swateeFN()
	if err != nil {
		return nil, err
	}
	return swap.ReadStateBlock(d.OS.FS, fn, addr, n)
}

// Deposit alters one word of the Swatee's memory in the state file. A
// deposit at a breakpoint address replaces the *displaced* instruction, so
// the repair survives Resume's un-patching.
func (d *Debugger) Deposit(addr, value uint16) error {
	if _, ok := d.breakpoints[addr]; ok {
		d.breakpoints[addr] = value
		return nil
	}
	fn, err := d.swateeFN()
	if err != nil {
		return err
	}
	return swap.WriteStateWord(d.OS.FS, fn, addr, value)
}

// Resume restores the displaced instructions inside the state file, reloads
// the machine from it, and runs — the coroutine return to the Swatee.
// LoadState, not InLoad: a resumed Swatee gets no message, and depositing
// one would scribble on its page-zero data.
func (d *Debugger) Resume(maxSteps int64) (int64, error) {
	fn, err := d.swateeFN()
	if err != nil {
		return 0, err
	}
	for addr, orig := range d.breakpoints {
		if err := swap.WriteStateWord(d.OS.FS, fn, addr, orig); err != nil {
			return 0, err
		}
		delete(d.breakpoints, addr)
	}
	if err := swap.LoadState(d.OS.FS, d.CPU, fn); err != nil {
		return 0, err
	}
	return d.CPU.Run(maxSteps)
}

// Step executes exactly one instruction of the Swatee: load the state,
// step, save it back. The displaced instruction at the current PC (if the
// PC sits on a breakpoint) is restored in the live memory for the step, so
// single-stepping off a fresh break executes the real instruction.
func (d *Debugger) Step() (swap.Regs, error) {
	fn, err := d.swateeFN()
	if err != nil {
		return swap.Regs{}, err
	}
	if err := swap.LoadState(d.OS.FS, d.CPU, fn); err != nil {
		return swap.Regs{}, err
	}
	if orig, ok := d.breakpoints[d.CPU.PC]; ok {
		d.OS.Mem.Store(d.CPU.PC, orig)
	}
	if err := d.CPU.Step(); err != nil && !errors.Is(err, cpu.ErrHalted) {
		return swap.Regs{}, err
	}
	halted := d.CPU.Halted
	if err := swap.SaveState(d.OS.FS, d.CPU, fn); err != nil {
		return swap.Regs{}, err
	}
	r := swap.Regs{AC: d.CPU.AC, PC: d.CPU.PC, Carry: d.CPU.Carry}
	if halted {
		return r, cpu.ErrHalted
	}
	return r, nil
}

// REPL reads debugger commands from in and answers on out until "q" or
// end of input. Commands:
//
//	r                     registers
//	e <addr> [n]          examine (with disassembly)
//	d <addr> <val>        deposit
//	pc <addr>             set the saved program counter
//	ac <i> <val>          set a saved accumulator
//	b <addr>              plant a breakpoint in the Swatee
//	s                     single-step one instruction
//	g                     resume the Swatee
//	stats                 print the flight recorder's metrics snapshot
//	q                     quit, leaving the Swatee on the disk
func (d *Debugger) REPL(in stream.Stream, out stream.Stream) error {
	printf := func(format string, args ...any) {
		//altovet:allow errdiscard debugger output is best-effort; Swat must keep responding even if the display stream fails
		_ = stream.PutString(out, fmt.Sprintf(format, args...))
	}
	readLine := func() (string, bool) {
		var b strings.Builder
		for {
			ch, err := in.Get()
			if err != nil {
				if b.Len() > 0 {
					return b.String(), true
				}
				return "", false
			}
			if ch == '\n' {
				return b.String(), true
			}
			b.WriteByte(ch)
		}
	}
	num := func(s string) (uint16, error) {
		v, err := strconv.ParseUint(s, 0, 16)
		return uint16(v), err
	}

	for {
		printf("swat>")
		line, ok := readLine()
		if !ok {
			return nil
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "q":
			return nil
		case "r":
			r, err := d.Regs()
			if err != nil {
				printf("?%v\n", err)
				continue
			}
			printf("PC=%#04x AC=[%#04x %#04x %#04x %#04x] C=%v\n",
				r.PC, r.AC[0], r.AC[1], r.AC[2], r.AC[3], r.Carry)
		case "e":
			if len(fields) < 2 {
				printf("?usage: e <addr> [n]\n")
				continue
			}
			addr, err := num(fields[1])
			if err != nil {
				printf("?%v\n", err)
				continue
			}
			n := 1
			if len(fields) > 2 {
				if v, err := strconv.Atoi(fields[2]); err == nil {
					n = v
				}
			}
			words, err := d.Examine(addr, n)
			if err != nil {
				printf("?%v\n", err)
				continue
			}
			for i, w := range words {
				a := addr + uint16(i)
				printf("%04x: %04x  %s\n", a, w, asm.Disasm(a, w))
			}
		case "d":
			if len(fields) != 3 {
				printf("?usage: d <addr> <val>\n")
				continue
			}
			addr, err1 := num(fields[1])
			val, err2 := num(fields[2])
			if err1 != nil || err2 != nil {
				printf("?bad number\n")
				continue
			}
			if err := d.Deposit(addr, val); err != nil {
				printf("?%v\n", err)
			}
		case "pc":
			if len(fields) != 2 {
				printf("?usage: pc <addr>\n")
				continue
			}
			v, err := num(fields[1])
			if err != nil {
				printf("?%v\n", err)
				continue
			}
			r, err := d.Regs()
			if err != nil {
				printf("?%v\n", err)
				continue
			}
			r.PC = v
			if err := d.SetRegs(r); err != nil {
				printf("?%v\n", err)
			}
		case "ac":
			if len(fields) != 3 {
				printf("?usage: ac <i> <val>\n")
				continue
			}
			i, err1 := strconv.Atoi(fields[1])
			v, err2 := num(fields[2])
			if err1 != nil || err2 != nil || i < 0 || i > 3 {
				printf("?bad accumulator\n")
				continue
			}
			r, err := d.Regs()
			if err != nil {
				printf("?%v\n", err)
				continue
			}
			r.AC[i] = v
			if err := d.SetRegs(r); err != nil {
				printf("?%v\n", err)
			}
		case "b":
			if len(fields) != 2 {
				printf("?usage: b <addr>\n")
				continue
			}
			addr, err := num(fields[1])
			if err != nil {
				printf("?%v\n", err)
				continue
			}
			// A breakpoint set from inside the debugger patches the Swatee
			// file, remembering the displaced instruction for Resume.
			words, err := d.Examine(addr, 1)
			if err != nil {
				printf("?%v\n", err)
				continue
			}
			d.breakpoints[addr] = words[0]
			if err := d.Deposit(addr, breakInstr); err != nil {
				printf("?%v\n", err)
			}
		case "s":
			r, err := d.Step()
			if err != nil && !errors.Is(err, cpu.ErrHalted) {
				printf("?step: %v\n", err)
				continue
			}
			words, werr := d.Examine(r.PC, 1)
			next := "?"
			if werr == nil {
				next = asm.Disasm(r.PC, words[0])
			}
			printf("PC=%#04x AC=[%#04x %#04x %#04x %#04x] C=%v  next: %s\n",
				r.PC, r.AC[0], r.AC[1], r.AC[2], r.AC[3], r.Carry, next)
			if errors.Is(err, cpu.ErrHalted) {
				printf("[swatee halted]\n")
			}
		case "g":
			n, err := d.Resume(10_000_000)
			if err != nil {
				printf("?resume: %v\n", err)
				continue
			}
			printf("[swatee ran %d instructions]\n", n)
			if d.OS.TookBreakpoint() {
				printf("[breakpoint]\n")
			}
		case "stats":
			// The broken-into machine's own observability: whatever the
			// flight recorder has aggregated so far, rendered as text.
			printf("%s", d.Trace.Snapshot().Text())
		default:
			printf("?commands: r, e <a> [n], d <a> <v>, pc <a>, ac <i> <v>, b <a>, s, g, stats, q\n")
		}
	}
}
