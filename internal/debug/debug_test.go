package debug

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"altoos/internal/asm"
	"altoos/internal/cpu"
	"altoos/internal/dir"
	"altoos/internal/disk"
	"altoos/internal/exec"
	"altoos/internal/file"
	"altoos/internal/mem"
	"altoos/internal/stream"
	"altoos/internal/zone"
)

type world struct {
	os  *exec.OS
	cpu *cpu.CPU
	dbg *Debugger
	out *bytes.Buffer
}

func newWorld(t *testing.T) *world {
	t.Helper()
	d, err := disk.NewDrive(disk.Diablo31(), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := file.Format(d)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dir.InitRoot(fs); err != nil {
		t.Fatal(err)
	}
	m := mem.New()
	z, err := zone.New(m, 0x7000, 0x7000)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	o := exec.NewOS(fs, m, z, stream.NewKeyboard(), stream.NewDisplay(&out))
	c := cpu.New(m, d.Clock(), o)
	return &world{os: o, cpu: c, dbg: New(o, c), out: &out}
}

// buggy is a program that prints 'a', then the (wrong) contents of VAL, and
// halts. The test breaks before the second print and repairs VAL.
const buggy = `
START:	LDA 0, CA
	SYS 1
PRINT2:	LDA 0, VAL
	SYS 1
	HALT
CA:	.word 'a'
VAL:	.word 'X'     ; the bug: should print 'b'
`

func loadBuggy(t *testing.T, w *world) *asm.Program {
	t.Helper()
	p := asm.MustAssemble(buggy)
	w.os.Mem.StoreBlock(p.Origin, p.Words)
	w.cpu.Reset(p.Entry)
	return p
}

func TestBreakpointWritesSwatee(t *testing.T) {
	w := newWorld(t)
	p := loadBuggy(t, w)
	w.dbg.SetBreak(p.Symbols["PRINT2"])
	if _, err := w.cpu.Run(1000); err != nil {
		t.Fatal(err)
	}
	if !w.os.TookBreakpoint() {
		t.Fatal("breakpoint did not fire")
	}
	if w.out.String() != "a" {
		t.Fatalf("pre-break output %q", w.out.String())
	}
	// The Swatee's saved PC points back at the breakpoint address.
	r, err := w.dbg.Regs()
	if err != nil {
		t.Fatal(err)
	}
	if r.PC != p.Symbols["PRINT2"] {
		t.Fatalf("saved PC %#04x, want %#04x", r.PC, p.Symbols["PRINT2"])
	}
}

func TestExamineDepositResume(t *testing.T) {
	w := newWorld(t)
	p := loadBuggy(t, w)
	w.dbg.SetBreak(p.Symbols["PRINT2"])
	if _, err := w.cpu.Run(1000); err != nil {
		t.Fatal(err)
	}
	if !w.os.TookBreakpoint() {
		t.Fatal("no breakpoint")
	}

	// Examine the Swatee: VAL holds the bug.
	val := p.Symbols["VAL"]
	words, err := w.dbg.Examine(val, 1)
	if err != nil {
		t.Fatal(err)
	}
	if words[0] != 'X' {
		t.Fatalf("VAL = %#x in the Swatee", words[0])
	}
	// Repair it in the state file, never touching the live machine.
	if err := w.dbg.Deposit(val, 'b'); err != nil {
		t.Fatal(err)
	}
	// Resume: displaced instruction restored, machine reloaded, program
	// finishes with the fix.
	if _, err := w.dbg.Resume(1000); err != nil {
		t.Fatal(err)
	}
	if got := w.out.String(); got != "ab" {
		t.Fatalf("output %q, want \"ab\"", got)
	}
}

func TestRegisterEditing(t *testing.T) {
	w := newWorld(t)
	p := loadBuggy(t, w)
	w.dbg.SetBreak(p.Symbols["PRINT2"])
	if _, err := w.cpu.Run(1000); err != nil {
		t.Fatal(err)
	}
	r, err := w.dbg.Regs()
	if err != nil {
		t.Fatal(err)
	}
	// Skip the second print entirely by pointing PC at the HALT.
	r.PC = p.Symbols["PRINT2"] + 2
	if err := w.dbg.SetRegs(r); err != nil {
		t.Fatal(err)
	}
	if _, err := w.dbg.Resume(1000); err != nil {
		t.Fatal(err)
	}
	if got := w.out.String(); got != "a" {
		t.Fatalf("output %q, want just \"a\"", got)
	}
}

func TestDebuggerWithoutSwatee(t *testing.T) {
	w := newWorld(t)
	if _, err := w.dbg.Regs(); !errors.Is(err, ErrNoSwatee) {
		t.Fatalf("got %v, want ErrNoSwatee", err)
	}
	if _, err := w.dbg.Examine(0, 1); !errors.Is(err, ErrNoSwatee) {
		t.Fatalf("got %v, want ErrNoSwatee", err)
	}
}

func TestREPLSession(t *testing.T) {
	w := newWorld(t)
	p := loadBuggy(t, w)
	w.dbg.SetBreak(p.Symbols["PRINT2"])
	if _, err := w.cpu.Run(1000); err != nil {
		t.Fatal(err)
	}
	if !w.os.TookBreakpoint() {
		t.Fatal("no breakpoint")
	}

	// Drive the REPL: inspect registers, examine code, fix VAL, resume.
	script := strings.Join([]string{
		"r",
		"e 0x400 2",
		"d " + hex(p.Symbols["VAL"]) + " 0x62", // 'b'
		"g",
		"q",
	}, "\n") + "\n"
	var replOut bytes.Buffer
	in := stream.NewMem([]byte(script))
	if err := w.dbg.REPL(in, stream.NewDisplay(&replOut)); err != nil {
		t.Fatal(err)
	}
	text := replOut.String()
	if !strings.Contains(text, "PC=") {
		t.Errorf("no register dump:\n%s", text)
	}
	if !strings.Contains(text, "LDA 0,") {
		t.Errorf("no disassembly:\n%s", text)
	}
	if got := w.out.String(); got != "ab" {
		t.Fatalf("program output %q, want \"ab\"", got)
	}
}

func TestREPLBreakpointInSwatee(t *testing.T) {
	// Set a second breakpoint from inside the debugger: the resumed program
	// must trap again at it.
	w := newWorld(t)
	p := loadBuggy(t, w)
	w.dbg.SetBreak(p.Symbols["PRINT2"])
	if _, err := w.cpu.Run(1000); err != nil {
		t.Fatal(err)
	}
	halt := p.Symbols["PRINT2"] + 2
	script := "b " + hex(halt) + "\ng\nr\nq\n"
	var replOut bytes.Buffer
	if err := w.dbg.REPL(stream.NewMem([]byte(script)), stream.NewDisplay(&replOut)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(replOut.String(), "[breakpoint]") {
		t.Fatalf("second breakpoint did not fire:\n%s", replOut.String())
	}
}

func hex(v uint16) string {
	const digits = "0123456789abcdef"
	return "0x" + string([]byte{
		digits[v>>12&0xF], digits[v>>8&0xF], digits[v>>4&0xF], digits[v&0xF],
	})
}

func TestDepositAtBreakpointSurvivesResume(t *testing.T) {
	// Repairing the very instruction the breakpoint displaced must not be
	// undone by Resume's un-patching.
	w := newWorld(t)
	p := loadBuggy(t, w)
	calc := p.Symbols["PRINT2"]
	w.dbg.SetBreak(calc)
	if _, err := w.cpu.Run(1000); err != nil {
		t.Fatal(err)
	}
	// Replace "LDA 0, VAL" with "LDA 0, CA": it will print 'a' again.
	patched := asm.MustAssemble(
		".org " + hex(calc) + "\nLDA 0, " + hex(p.Symbols["CA"]) + "\n")
	if err := w.dbg.Deposit(calc, patched.Words[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := w.dbg.Resume(1000); err != nil {
		t.Fatal(err)
	}
	if got := w.out.String(); got != "aa" {
		t.Fatalf("output %q, want \"aa\" (patch lost to un-patching?)", got)
	}
}

func TestSetClearBreakRestoresInstruction(t *testing.T) {
	w := newWorld(t)
	p := loadBuggy(t, w)
	addr := p.Symbols["PRINT2"]
	orig := w.os.Mem.Load(addr)
	w.dbg.SetBreak(addr)
	if w.os.Mem.Load(addr) == orig {
		t.Fatal("breakpoint not planted")
	}
	w.dbg.SetBreak(addr) // idempotent: must not forget the original
	w.dbg.ClearBreak(addr)
	if w.os.Mem.Load(addr) != orig {
		t.Fatal("original instruction lost")
	}
}
