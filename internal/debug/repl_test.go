package debug

import (
	"bytes"
	"strings"
	"testing"

	"altoos/internal/stream"
)

// replSession drives the REPL with scripted input and returns its output.
func replSession(t *testing.T, w *world, script string) string {
	t.Helper()
	var out bytes.Buffer
	if err := w.dbg.REPL(stream.NewMem([]byte(script)), stream.NewDisplay(&out)); err != nil {
		t.Fatal(err)
	}
	return out.String()
}

func breakIntoBuggy(t *testing.T, w *world) {
	t.Helper()
	p := loadBuggy(t, w)
	w.dbg.SetBreak(p.Symbols["PRINT2"])
	if _, err := w.cpu.Run(1000); err != nil {
		t.Fatal(err)
	}
	if !w.os.TookBreakpoint() {
		t.Fatal("no breakpoint")
	}
}

func TestREPLEditsRegisters(t *testing.T) {
	w := newWorld(t)
	breakIntoBuggy(t, w)
	out := replSession(t, w, "ac 1 0x1234\npc 0x500\nr\nq\n")
	if !strings.Contains(out, "PC=0x0500") || !strings.Contains(out, "0x1234") {
		t.Fatalf("register edits not visible:\n%s", out)
	}
}

func TestREPLErrorPaths(t *testing.T) {
	w := newWorld(t)
	breakIntoBuggy(t, w)
	out := replSession(t, w, strings.Join([]string{
		"e",          // missing operand
		"e zzz",      // bad number
		"d 1",        // missing operand
		"d zz zz",    // bad numbers
		"pc",         // missing operand
		"ac 9 0",     // bad accumulator
		"b",          // missing operand
		"frobnicate", // unknown command
		"",           // blank line
		"q",
	}, "\n")+"\n")
	if n := strings.Count(out, "?"); n < 8 {
		t.Fatalf("expected diagnostics for each bad command, saw %d:\n%s", n, out)
	}
	if !strings.Contains(out, "commands:") {
		t.Fatalf("no help on unknown command:\n%s", out)
	}
}

func TestREPLWithoutSwatee(t *testing.T) {
	w := newWorld(t)
	out := replSession(t, w, "r\ne 0x400\ng\nq\n")
	if n := strings.Count(out, "no Swatee"); n < 3 {
		t.Fatalf("missing-Swatee diagnostics:\n%s", out)
	}
}

func TestSingleStepping(t *testing.T) {
	w := newWorld(t)
	breakIntoBuggy(t, w)
	// Step off the breakpoint: the displaced instruction (LDA 0, VAL)
	// executes, so AC0 becomes 'X'; a second step executes the SYS 1.
	r, err := w.dbg.Step()
	if err != nil {
		t.Fatal(err)
	}
	if r.AC[0] != 'X' {
		t.Fatalf("after one step AC0 = %#x, want 'X'", r.AC[0])
	}
	if _, err := w.dbg.Step(); err != nil {
		t.Fatal(err)
	}
	if got := w.out.String(); got != "aX" {
		t.Fatalf("stepping produced %q", got)
	}
	// The page-zero message buffer must be untouched by all this loading
	// and saving (the InLoad-vs-LoadState distinction).
	for a := uint16(0x20); a < 0x34; a++ {
		if w.os.Mem.Load(a) != 0 {
			t.Fatalf("debugger scribbled on %#x", a)
		}
	}
}

func TestREPLStepCommand(t *testing.T) {
	w := newWorld(t)
	breakIntoBuggy(t, w)
	out := replSession(t, w, "s\ns\nq\n")
	if !strings.Contains(out, "next:") {
		t.Fatalf("step output missing disassembly:\n%s", out)
	}
}

func TestResumeDoesNotScribbleMessageBuffer(t *testing.T) {
	w := newWorld(t)
	p := loadBuggy(t, w)
	// The program owns 0x20..0x33; pretend it stored data there.
	w.os.Mem.Store(0x25, 0x1979)
	w.dbg.SetBreak(p.Symbols["PRINT2"])
	if _, err := w.cpu.Run(1000); err != nil {
		t.Fatal(err)
	}
	if _, err := w.dbg.Resume(1000); err != nil {
		t.Fatal(err)
	}
	if w.os.Mem.Load(0x25) != 0x1979 {
		t.Fatal("Resume corrupted the Swatee's page-zero data")
	}
}

func TestBreakpointsListing(t *testing.T) {
	w := newWorld(t)
	p := loadBuggy(t, w)
	w.dbg.SetBreak(p.Symbols["PRINT2"])
	w.dbg.SetBreak(p.Symbols["START"])
	if got := len(w.dbg.Breakpoints()); got != 2 {
		t.Fatalf("Breakpoints() = %d entries", got)
	}
	w.dbg.ClearBreak(p.Symbols["START"])
	if got := len(w.dbg.Breakpoints()); got != 1 {
		t.Fatalf("after clear: %d entries", got)
	}
}
