// Package mem models the Alto's main memory: 64K 16-bit words, with no
// protection hardware of any kind. Everything in the machine — user program,
// operating system packages, stream records, zone free lists, the keyboard
// buffer — lives in this one flat address space, which is precisely what
// makes the paper's open organization (and its Junta) possible.
package mem

import "fmt"

// Word is the 16-bit machine word.
type Word = uint16

// Addr is a word address in the 64K space.
type Addr = uint16

// Words is the size of main memory in words (§2: "64k words of 800 ns
// memory").
const Words = 1 << 16

// Memory is the machine's main store. The zero value is all-zero memory,
// ready to use.
type Memory struct {
	w [Words]Word
}

// New returns zeroed memory.
func New() *Memory { return &Memory{} }

// Load returns the word at address a.
func (m *Memory) Load(a Addr) Word { return m.w[a] }

// Store writes the word at address a.
func (m *Memory) Store(a Addr, v Word) { m.w[a] = v }

// LoadBlock copies n words starting at a into dst (which must have length
// >= n). The copy wraps at the top of memory, as the hardware would.
func (m *Memory) LoadBlock(a Addr, dst []Word) {
	for i := range dst {
		dst[i] = m.w[a+Addr(i)]
	}
}

// StoreBlock copies src into memory starting at a, wrapping at the top.
func (m *Memory) StoreBlock(a Addr, src []Word) {
	for i, v := range src {
		m.w[a+Addr(i)] = v
	}
}

// Snapshot returns a copy of all of memory. OutLoad's raw material.
func (m *Memory) Snapshot() []Word {
	s := make([]Word, Words)
	copy(s, m.w[:])
	return s
}

// Restore replaces all of memory from a snapshot. It panics if the snapshot
// is not exactly memory-sized; a partial machine state is never restorable.
func (m *Memory) Restore(s []Word) {
	if len(s) != Words {
		panic(fmt.Sprintf("mem: Restore with %d words, need %d", len(s), Words))
	}
	copy(m.w[:], s)
}

// Clear zeroes n words starting at a.
func (m *Memory) Clear(a Addr, n int) {
	for i := 0; i < n; i++ {
		m.w[a+Addr(i)] = 0
	}
}

// Checksum returns a simple additive checksum of all memory, used by tests
// to compare machine states cheaply.
func (m *Memory) Checksum() uint32 {
	var sum uint32
	for i, v := range m.w {
		sum += uint32(v) * uint32(i+1)
	}
	return sum
}

// Region is a half-open range [Start, End) of the address space. The
// operating system's level structure (§5.2) is expressed as regions.
type Region struct {
	Start Addr
	End   Addr // exclusive; End==0 with Start>0 means "through the top"
}

// Size returns the region's length in words.
func (r Region) Size() int {
	end := int(r.End)
	if end == 0 && r.Start > 0 {
		end = Words
	}
	return end - int(r.Start)
}

// Contains reports whether a lies in the region.
func (r Region) Contains(a Addr) bool {
	end := int(r.End)
	if end == 0 && r.Start > 0 {
		end = Words
	}
	return int(a) >= int(r.Start) && int(a) < end
}

// String implements fmt.Stringer.
func (r Region) String() string {
	end := int(r.End)
	if end == 0 && r.Start > 0 {
		end = Words
	}
	return fmt.Sprintf("[%#04x, %#05x)", r.Start, end)
}
