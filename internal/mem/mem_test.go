package mem

import (
	"testing"
	"testing/quick"
)

func TestLoadStore(t *testing.T) {
	m := New()
	m.Store(0, 0x1234)
	m.Store(0xFFFF, 0xBEEF)
	if m.Load(0) != 0x1234 || m.Load(0xFFFF) != 0xBEEF {
		t.Fatal("load/store round trip failed")
	}
}

func TestBlockWraps(t *testing.T) {
	m := New()
	src := []Word{1, 2, 3, 4}
	m.StoreBlock(0xFFFE, src)
	if m.Load(0xFFFE) != 1 || m.Load(0xFFFF) != 2 || m.Load(0) != 3 || m.Load(1) != 4 {
		t.Fatal("StoreBlock did not wrap at top of memory")
	}
	dst := make([]Word, 4)
	m.LoadBlock(0xFFFE, dst)
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("LoadBlock wrap: dst[%d]=%d want %d", i, dst[i], src[i])
		}
	}
}

func TestSnapshotRestore(t *testing.T) {
	m := New()
	for i := 0; i < 100; i++ {
		m.Store(Addr(i*613), Word(i))
	}
	snap := m.Snapshot()
	before := m.Checksum()
	m.Store(5, 0xDEAD)
	if m.Checksum() == before {
		t.Fatal("checksum insensitive to change")
	}
	m.Restore(snap)
	if m.Checksum() != before {
		t.Fatal("restore did not reproduce the snapshot")
	}
	// Snapshot is a copy: mutating memory must not change it.
	m.Store(6, 0xBEEF)
	if snap[6] == 0xBEEF {
		t.Fatal("snapshot aliases live memory")
	}
}

func TestRestorePanicsOnShortSnapshot(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Restore of short snapshot did not panic")
		}
	}()
	New().Restore(make([]Word, 10))
}

func TestClear(t *testing.T) {
	m := New()
	for i := 0; i < 10; i++ {
		m.Store(Addr(100+i), 0xAAAA)
	}
	m.Clear(102, 4)
	for i := 0; i < 10; i++ {
		v := m.Load(Addr(100 + i))
		inCleared := i >= 2 && i < 6
		if inCleared && v != 0 {
			t.Errorf("word %d not cleared", i)
		}
		if !inCleared && v != 0xAAAA {
			t.Errorf("word %d clobbered", i)
		}
	}
}

func TestRegion(t *testing.T) {
	r := Region{Start: 0x100, End: 0x200}
	if r.Size() != 0x100 {
		t.Errorf("Size = %d", r.Size())
	}
	if !r.Contains(0x100) || r.Contains(0x200) || r.Contains(0xFF) {
		t.Error("Contains wrong at boundaries")
	}
	top := Region{Start: 0xFF00, End: 0}
	if top.Size() != 0x100 {
		t.Errorf("through-the-top region Size = %d", top.Size())
	}
	if !top.Contains(0xFFFF) || top.Contains(0xFEFF) {
		t.Error("through-the-top Contains wrong")
	}
}

func TestBlockRoundTripProperty(t *testing.T) {
	f := func(a Addr, data []Word) bool {
		if len(data) > Words {
			data = data[:Words]
		}
		m := New()
		m.StoreBlock(a, data)
		got := make([]Word, len(data))
		m.LoadBlock(a, got)
		for i := range data {
			if got[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
