package swap

import (
	"errors"
	"testing"
	"testing/quick"

	"altoos/internal/cpu"
	"altoos/internal/dir"
	"altoos/internal/disk"
	"altoos/internal/file"
	"altoos/internal/mem"
	"altoos/internal/sim"
)

// machine builds a formatted FS plus a CPU sharing the clock.
func machine(t *testing.T) (*file.FS, *cpu.CPU, *dir.Directory) {
	t.Helper()
	d, err := disk.NewDrive(disk.Diablo31(), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := file.Format(d)
	if err != nil {
		t.Fatal(err)
	}
	root, err := dir.InitRoot(fs)
	if err != nil {
		t.Fatal(err)
	}
	c := cpu.New(mem.New(), d.Clock(), nil)
	return fs, c, root
}

func stateFile(t *testing.T, fs *file.FS, root *dir.Directory, name string) file.FN {
	t.Helper()
	f, err := fs.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	if err := root.Insert(name, f.FN()); err != nil {
		t.Fatal(err)
	}
	return f.FN()
}

func TestSaveLoadRoundTripProperty(t *testing.T) {
	fs, c, root := machine(t)
	fn := stateFile(t, fs, root, "rt.state")
	i := 0
	f := func(seed uint64) bool {
		i++
		r := sim.NewRand(seed)
		for j := 0; j < 200; j++ {
			c.Mem.Store(r.Word(), r.Word())
		}
		c.AC = [4]uint16{r.Word(), r.Word(), r.Word(), r.Word()}
		c.PC = r.Word()
		c.Carry = seed%2 == 0
		sum := c.Mem.Checksum()
		ac, pc, carry := c.AC, c.PC, c.Carry

		if err := SaveState(fs, c, fn); err != nil {
			return false
		}
		c.Mem.Store(r.Word(), 0xDEAD)
		c.AC[0] ^= 0xFFFF
		if err := LoadState(fs, c, fn); err != nil {
			return false
		}
		return c.Mem.Checksum() == sum && c.AC == ac && c.PC == pc && c.Carry == carry
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Fatal(err)
	}
}

func TestOutLoadDoubleReturnSemantics(t *testing.T) {
	fs, c, root := machine(t)
	fn := stateFile(t, fs, root, "dr.state")
	c.AC[0] = 0x1234 // live value, must survive the OutLoad call itself
	written, err := OutLoad(fs, c, fn)
	if err != nil || !written {
		t.Fatalf("OutLoad: %v %v", written, err)
	}
	if c.AC[0] != 0x1234 {
		t.Fatal("OutLoad clobbered the live AC0")
	}
	// The *saved* image must carry AC0 = 0: the continuation sees
	// written=false.
	if err := InLoad(fs, c, fn, Message{7, 8, 9}); err != nil {
		t.Fatal(err)
	}
	if c.AC[0] != 0 {
		t.Fatalf("restored AC0 = %#x, want 0 (written=false)", c.AC[0])
	}
	msg := ReadMessage(c)
	if msg[0] != 7 || msg[1] != 8 || msg[2] != 9 {
		t.Fatalf("message not delivered: %v", msg)
	}
}

func TestInLoadRejectsNonStateFiles(t *testing.T) {
	fs, c, root := machine(t)
	f, err := fs.Create("short.dat")
	if err != nil {
		t.Fatal(err)
	}
	if err := root.Insert("short.dat", f.FN()); err != nil {
		t.Fatal(err)
	}
	if err := InLoad(fs, c, f.FN(), Message{}); !errors.Is(err, ErrNotState) {
		t.Fatalf("got %v, want ErrNotState", err)
	}
	// A long file with the wrong magic is also rejected.
	var page [disk.PageWords]disk.Word
	page[0] = 0xBAD0
	for pn := disk.Word(1); pn <= statePages; pn++ {
		if err := f.WritePage(pn, &page, disk.PageBytes); err != nil {
			t.Fatal(err)
		}
	}
	if err := InLoad(fs, c, f.FN(), Message{}); !errors.Is(err, ErrNotState) {
		t.Fatalf("bad magic: got %v, want ErrNotState", err)
	}
}

func TestEmergencyOutLoadCensorsRegisters(t *testing.T) {
	fs, c, root := machine(t)
	fn := stateFile(t, fs, root, "emergency.state")
	c.Mem.Store(0x2000, 0xFACE)
	c.AC = [4]uint16{1, 2, 3, 4}
	c.PC = 0x2222
	c.Carry = true
	if err := EmergencyOutLoad(fs, c, fn); err != nil {
		t.Fatal(err)
	}
	// The live machine is untouched.
	if c.AC[1] != 2 || c.PC != 0x2222 || !c.Carry {
		t.Fatal("emergency save disturbed the live machine")
	}
	if err := LoadState(fs, c, fn); err != nil {
		t.Fatal(err)
	}
	// Memory survives; the "most vital state" does not, as on the Alto.
	if c.Mem.Load(0x2000) != 0xFACE {
		t.Error("memory lost in emergency save")
	}
	if c.AC != [4]uint16{} || c.PC != 0 || c.Carry {
		t.Errorf("registers should be lost: %v", c)
	}
}

func TestBootRoundTripAndFixedSector(t *testing.T) {
	fs, c, _ := machine(t)
	c.Mem.Store(0x1000, 0xB007)
	c.PC = 0x1000
	fn, err := WriteBoot(fs, c)
	if err != nil {
		t.Fatal(err)
	}
	// The boot file's first data page must be at the fixed sector.
	f, err := fs.Open(fn)
	if err != nil {
		t.Fatal(err)
	}
	a, err := f.PageAddr(1)
	if err != nil {
		t.Fatal(err)
	}
	if a != file.BootVDA {
		t.Fatalf("boot page at %d, want %d", a, file.BootVDA)
	}
	// BootFN reconstructs the full name from the sector alone.
	got, err := BootFN(fs.Device())
	if err != nil {
		t.Fatal(err)
	}
	if got.FV != fn.FV {
		t.Fatalf("BootFN = %v, want %v", got.FV, fn.FV)
	}
	// Boot restores the world.
	c.Mem.Store(0x1000, 0)
	c.PC = 0
	if err := Boot(fs, c); err != nil {
		t.Fatal(err)
	}
	if c.Mem.Load(0x1000) != 0xB007 || c.PC != 0x1000 {
		t.Fatal("boot did not restore the machine")
	}
}

func TestWriteBootReusesTheBootFile(t *testing.T) {
	fs, c, _ := machine(t)
	fn1, err := WriteBoot(fs, c)
	if err != nil {
		t.Fatal(err)
	}
	fn2, err := WriteBoot(fs, c)
	if err != nil {
		t.Fatal(err)
	}
	if fn1.FV != fn2.FV {
		t.Fatalf("second WriteBoot made a new file: %v vs %v", fn1.FV, fn2.FV)
	}
}

func TestMessageFNPacking(t *testing.T) {
	f := func(fid uint32, ver, leader uint16) bool {
		fn := file.FN{FV: disk.FV{FID: disk.FID(fid), Version: ver}, Leader: disk.VDA(leader)}
		return UnpackFN(PackFN(fn)) == fn
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStateSurvivesScavenge(t *testing.T) {
	// A machine state file is just a file: after random unrelated damage
	// and a scavenge, the world must still boot.
	fs, c, _ := machine(t)
	c.Mem.Store(0x0F00, 0x5AFE)
	c.PC = 0x0F00
	if _, err := WriteBoot(fs, c); err != nil {
		t.Fatal(err)
	}
	// (Scavenging lives a package up; here we just verify the state file
	// reads back through a freshly mounted FS, as after a reboot.)
	fs2, err := file.Mount(fs.Device())
	if err != nil {
		t.Fatal(err)
	}
	c2 := cpu.New(mem.New(), fs.Device().Clock(), nil)
	if err := Boot(fs2, c2); err != nil {
		t.Fatal(err)
	}
	if c2.Mem.Load(0x0F00) != 0x5AFE || c2.PC != 0x0F00 {
		t.Fatal("boot after remount failed")
	}
}
