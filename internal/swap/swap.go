// Package swap implements the paper's inter-program communication mechanism
// (§4, §4.1): "a convention for restoring the entire state of the machine
// from a disk file", which lets an arbitrary program take over the machine.
// OutLoad writes the current machine state (accumulators, program counter,
// carry, and all 64K words of memory) onto a file; InLoad restores a state
// and passes a small message to the restored program.
//
// The key property — "the effect is that OutLoad returns again, this time
// with written false and with the message that was provided in the InLoad
// call" — is real here because the machine is a real interpreter: the saved
// program counter points just after the OutLoad trap, and the saved AC0 says
// "not written", so the restored program continues as if its own OutLoad had
// just returned with the partner's message.
//
// Timing: a machine state is 257 data pages. On a state file that already
// exists (the installed case) every page is an ordinary full-page write with
// the label checked in passing, so the whole swap streams at full disk rate:
// about a second on the standard drive, as §4.1 says. The first OutLoad to a
// fresh file also pays the one-revolution-per-page allocation cost — that is
// the installation pass.
package swap

import (
	"errors"
	"fmt"

	"altoos/internal/cpu"
	"altoos/internal/disk"
	"altoos/internal/file"
	"altoos/internal/trace"
)

// MsgWords is the size of the message vector ("about 20 words", §4.1).
const MsgWords = 20

// MsgBufAddr is the fixed page-zero address where InLoad deposits the
// message for the restored program.
const MsgBufAddr = 0x0020

// Message is the small parameter vector passed through InLoad. When the
// parameters don't fit, the convention is to pass the full name of a disk
// file holding them (§4.1) — see PackFN/UnpackFN.
type Message [MsgWords]uint16

// State-file layout, in data pages:
//
//	page 1:       header — magic, AC0..AC3, PC, carry
//	pages 2..257: the 64K words of memory, 256 words per page
const (
	stateMagic = 0xA175
	headerPage = 1
	memPages   = 256
	statePages = 1 + memPages // data pages holding real content
)

// Errors.
var (
	// ErrNotState reports a file that does not hold a machine state.
	ErrNotState = errors.New("swap: not a machine state file")
)

// SaveState writes the machine's entire state to the file named fn. The
// caller chooses what AC0 in the saved image says; OutLoad uses that to make
// the saved continuation see written=false.
func SaveState(fs *file.FS, c *cpu.CPU, fn file.FN) error {
	f, err := fs.Open(fn)
	if err != nil {
		return fmt.Errorf("swap: opening state file: %w", err)
	}
	return saveTo(f, c)
}

func saveTo(f *file.File, c *cpu.CPU) error {
	dev := f.Device()
	sp := trace.Of(dev).Begin(dev.Clock(), trace.KindSwapOut, f.Name(), int64(f.FN().FV.FID), statePages)
	defer sp.End()
	trace.Of(dev).Add("swap.outload", 1)
	// Installation: grow the file once so every later save is pure
	// streaming writes.
	if err := ensureSize(f); err != nil {
		return err
	}
	// Build the whole image — header page plus the 64K words of memory —
	// and write it as one chained transfer: on an installed state file every
	// page address is known, so the drive makes a single scheduling decision
	// and streams the state at full disk rate.
	pages := make([][disk.PageWords]disk.Word, statePages)
	hdr := &pages[0]
	hdr[0] = stateMagic
	for i, v := range c.AC {
		hdr[1+i] = v
	}
	hdr[5] = c.PC
	if c.Carry {
		hdr[6] = 1
	}
	for p := 0; p < memPages; p++ {
		//altovet:allow wordwidth p < memPages = 256, so p*PageWords < 2^16
		c.Mem.LoadBlock(uint16(p*disk.PageWords), pages[1+p][:])
	}
	if err := f.WritePages(headerPage, pages); err != nil {
		return err
	}
	return f.Sync()
}

// ensureSize grows the file to hold a machine state.
func ensureSize(f *file.File) error {
	var zero [disk.PageWords]disk.Word
	for {
		lastPN := f.LastPN()
		if int(lastPN) > statePages {
			return nil
		}
		if err := f.WritePage(lastPN, &zero, disk.PageBytes); err != nil {
			return err
		}
	}
}

// LoadState replaces the machine's state from the file named fn.
func LoadState(fs *file.FS, c *cpu.CPU, fn file.FN) error {
	f, err := fs.Open(fn)
	if err != nil {
		return fmt.Errorf("swap: opening state file: %w", err)
	}
	lastPN := f.LastPN()
	if int(lastPN) < statePages {
		return fmt.Errorf("%w: %v has only %d pages", ErrNotState, fn.FV, lastPN)
	}
	dev := f.Device()
	sp := trace.Of(dev).Begin(dev.Clock(), trace.KindSwapIn, f.Name(), int64(fn.FV.FID), statePages)
	defer sp.End()
	trace.Of(dev).Add("swap.inload", 1)
	var hdr [disk.PageWords]disk.Word
	if _, err := f.ReadPage(headerPage, &hdr); err != nil {
		return err
	}
	if hdr[0] != stateMagic {
		return fmt.Errorf("%w: bad magic %#04x", ErrNotState, hdr[0])
	}
	// Read the memory image as one chained transfer, into a buffer first so
	// a read failure leaves the running machine untouched. A state file
	// written by saveTo keeps all 256 memory pages interior; a hand-built
	// file may end exactly at page 257, whose last page is read singly.
	mem := make([][disk.PageWords]disk.Word, memPages)
	interior := int(lastPN) - 1 - headerPage // pages headerPage+1..lastPN-1
	if interior > memPages {
		interior = memPages
	}
	if interior > 0 {
		if err := f.ReadPages(headerPage+1, mem[:interior]); err != nil {
			return err
		}
	}
	for p := interior; p < memPages; p++ {
		//altovet:allow wordwidth headerPage+1+p <= 257, far below 2^16
		if _, err := f.ReadPage(disk.Word(headerPage+1+p), &mem[p]); err != nil {
			return err
		}
	}
	for p := range mem {
		//altovet:allow wordwidth p < memPages = 256, so p*PageWords < 2^16
		c.Mem.StoreBlock(uint16(p*disk.PageWords), mem[p][:])
	}
	// Registers last, from the header we read first.
	for i := range c.AC {
		c.AC[i] = hdr[1+i]
	}
	c.PC = hdr[5]
	c.Carry = hdr[6] != 0
	c.Halted = false
	return nil
}

// OutLoad writes the current machine state on the file and returns with
// written true. The state is saved with AC0 = 0, so when some later InLoad
// restores it, the machine continues from the saved PC seeing written =
// false, with the message at MsgBufAddr — the paper's double return.
func OutLoad(fs *file.FS, c *cpu.CPU, fn file.FN) (written bool, err error) {
	savedAC0 := c.AC[0]
	c.AC[0] = 0 // the continuation's view: written = false
	err = SaveState(fs, c, fn)
	c.AC[0] = savedAC0
	if err != nil {
		return false, err
	}
	return true, nil
}

// InLoad restores the machine state from the given file and passes the
// message to the restored program by depositing it at MsgBufAddr. After
// InLoad the machine is ready to Run; it "does not return" to the program
// that called it, whose state is simply gone unless it OutLoaded first.
func InLoad(fs *file.FS, c *cpu.CPU, fn file.FN, msg Message) error {
	if err := LoadState(fs, c, fn); err != nil {
		return err
	}
	for i, w := range msg {
		c.Mem.Store(MsgBufAddr+uint16(i), w)
	}
	return nil
}

// EmergencyOutLoad is the §4.1 "partial solution" for saving a machine whose
// resident system may have been obliterated: "a special emergency bootstrap
// program, containing only the OutLoad procedure, that writes most of the
// machine state onto a disk file. Unfortunately, this method could not
// preserve some of the most vital state (e.g., processor registers)."
//
// Ours writes all of memory but, faithfully, not the registers: the restored
// machine has the dead program's memory for a debugger to pick over, with
// AC0..AC3, PC and carry zeroed.
func EmergencyOutLoad(fs *file.FS, c *cpu.CPU, fn file.FN) error {
	ghost := *c // copy registers so we can censor them
	ghost.AC = [4]disk.Word{}
	ghost.PC = 0
	ghost.Carry = false
	return SaveState(fs, &ghost, fn)
}

// PackFN encodes a full name into the head of a message — the convention
// for passing "a return address, that is, the full name of a file to
// restore upon return" (§4.1).
func PackFN(fn file.FN) Message {
	var m Message
	m[0] = uint16(fn.FV.FID >> 16)
	m[1] = uint16(fn.FV.FID)
	m[2] = fn.FV.Version
	m[3] = uint16(fn.Leader)
	return m
}

// UnpackFN decodes a full name from the head of a message.
func UnpackFN(m Message) file.FN {
	return file.FN{
		FV: disk.FV{
			FID:     disk.FID(m[0])<<16 | disk.FID(m[1]),
			Version: m[2],
		},
		Leader: disk.VDA(m[3]),
	}
}

// ReadMessage fetches the message a restored program received.
func ReadMessage(c *cpu.CPU) Message {
	var m Message
	for i := range m {
		m[i] = c.Mem.Load(MsgBufAddr + uint16(i))
	}
	return m
}
