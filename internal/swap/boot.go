package swap

import (
	"errors"
	"fmt"

	"altoos/internal/cpu"
	"altoos/internal/dir"
	"altoos/internal/disk"
	"altoos/internal/file"
)

// Bootstrapping (§4): "A hardware bootstrap button causes the state of the
// machine to be restored from a disk file whose first page is kept at a
// fixed location on the disk." Our fixed location is file.BootVDA (sector
// 0), which Format reserves; the boot file's first data page lives there.

// BootName is the boot file's leader name and root-directory entry.
const BootName = "SysBoot."

// EnsureBootFile returns the boot file's full name, creating the file (with
// its first data page at the fixed boot sector) and its root-directory entry
// if needed.
func EnsureBootFile(fs *file.FS) (file.FN, error) {
	root, err := dir.OpenRoot(fs)
	if err != nil {
		return file.FN{}, err
	}
	if fn, err := root.Lookup(BootName); err == nil {
		return fn, nil
	}
	f, err := fs.CreateBootFile(BootName)
	if err != nil {
		return file.FN{}, err
	}
	if err := root.Insert(BootName, f.FN()); err != nil {
		return file.FN{}, err
	}
	return f.FN(), nil
}

// WriteBoot saves the machine state as the boot image: after this, Boot (or
// the hardware button) brings the machine back to exactly this state.
// The alternative described in §4 — a linker writing a program image
// arranged to be a running machine state — is what exec.MakeBootImage does.
func WriteBoot(fs *file.FS, c *cpu.CPU) (file.FN, error) {
	fn, err := EnsureBootFile(fs)
	if err != nil {
		return file.FN{}, err
	}
	if _, err := OutLoad(fs, c, fn); err != nil {
		return file.FN{}, err
	}
	return fn, nil
}

// Boot simulates the hardware bootstrap button: it finds the boot file by
// its fixed first-page location — no directory, no descriptor, no leader
// needed, exactly like the hardware — and restores the machine from it.
func Boot(fs *file.FS, c *cpu.CPU) error {
	fn, err := BootFN(fs.Device())
	if err != nil {
		return err
	}
	return InLoad(fs, c, fn, Message{})
}

// BootFN reconstructs the boot file's full name from the fixed sector alone:
// the label of the page at BootVDA carries the absolute name, and its back
// link is a hint for the leader.
func BootFN(dev disk.Device) (file.FN, error) {
	raw, err := disk.ReadAnyLabel(dev, file.BootVDA)
	if err != nil {
		return file.FN{}, fmt.Errorf("swap: reading boot sector: %w", err)
	}
	if !disk.InUse(raw) {
		return file.FN{}, errors.New("swap: no boot file installed")
	}
	lbl := disk.LabelFromWords(raw)
	if lbl.PageNum != 1 {
		return file.FN{}, fmt.Errorf("swap: boot sector holds %s, not a first page", lbl.Name())
	}
	return file.FN{FV: lbl.FV(), Leader: lbl.Prev}, nil
}
