package swap

import (
	"testing"
	"testing/quick"

	"altoos/internal/mem"
)

func TestStateFileWordAccess(t *testing.T) {
	fs, c, root := machine(t)
	fn := stateFile(t, fs, root, "sf.state")
	c.Mem.Store(0x1234, 0xBEEF)
	c.Mem.Store(0x00FF, 0x0001) // page-boundary neighbours
	c.Mem.Store(0x0100, 0x0002)
	if err := SaveState(fs, c, fn); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		addr, want uint16
	}{{0x1234, 0xBEEF}, {0x00FF, 1}, {0x0100, 2}, {0x0000, 0}} {
		got, err := ReadStateWord(fs, fn, tc.addr)
		if err != nil {
			t.Fatalf("ReadStateWord(%#x): %v", tc.addr, err)
		}
		if got != tc.want {
			t.Errorf("word %#x = %#x, want %#x", tc.addr, got, tc.want)
		}
	}

	// Alter a word in the file; the live machine must not change, and the
	// file must hold the new value.
	if err := WriteStateWord(fs, fn, 0x1234, 0xCAFE); err != nil {
		t.Fatal(err)
	}
	if c.Mem.Load(0x1234) != 0xBEEF {
		t.Error("poking the file changed the live machine")
	}
	got, _ := ReadStateWord(fs, fn, 0x1234)
	if got != 0xCAFE {
		t.Errorf("poked word = %#x", got)
	}
	// And a reload sees it.
	if err := LoadState(fs, c, fn); err != nil {
		t.Fatal(err)
	}
	if c.Mem.Load(0x1234) != 0xCAFE {
		t.Error("reload did not see the poke")
	}
}

func TestStateFileRegAccess(t *testing.T) {
	fs, c, root := machine(t)
	fn := stateFile(t, fs, root, "regs.state")
	c.AC = [4]uint16{10, 20, 30, 40}
	c.PC = 0x777
	c.Carry = true
	if err := SaveState(fs, c, fn); err != nil {
		t.Fatal(err)
	}
	r, err := ReadStateRegs(fs, fn)
	if err != nil {
		t.Fatal(err)
	}
	if r.AC != c.AC || r.PC != 0x777 || !r.Carry {
		t.Fatalf("regs %+v", r)
	}
	r.PC = 0x888
	r.Carry = false
	if err := WriteStateRegs(fs, fn, r); err != nil {
		t.Fatal(err)
	}
	if err := LoadState(fs, c, fn); err != nil {
		t.Fatal(err)
	}
	if c.PC != 0x888 || c.Carry {
		t.Fatalf("edited regs not loaded: %v", c)
	}
}

func TestStateFileRegAccessRejectsNonState(t *testing.T) {
	fs, _, root := machine(t)
	f, err := fs.Create("fake.state")
	if err != nil {
		t.Fatal(err)
	}
	if err := root.Insert("fake.state", f.FN()); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadStateRegs(fs, f.FN()); err == nil {
		t.Fatal("read regs from a non-state file")
	}
}

func TestStateBlockSpansPages(t *testing.T) {
	fs, c, root := machine(t)
	fn := stateFile(t, fs, root, "blk.state")
	base := uint16(0x00F8) // crosses the page-1/page-2 boundary at 0x0100
	for i := uint16(0); i < 16; i++ {
		c.Mem.Store(base+i, 0x4000+i)
	}
	if err := SaveState(fs, c, fn); err != nil {
		t.Fatal(err)
	}
	got, err := ReadStateBlock(fs, fn, base, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range got {
		if w != 0x4000+uint16(i) {
			t.Fatalf("block[%d] = %#x", i, w)
		}
	}
}

func TestStatePageMappingProperty(t *testing.T) {
	f := func(addr uint16) bool {
		pn, off := statePageFor(addr)
		// Invertible and in range.
		back := (int(pn)-headerPage-1)*256 + off
		return back == int(addr) && int(pn) >= headerPage+1 && int(pn) <= headerPage+memPages && off < 256
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMessageRoundTripThroughMemory(t *testing.T) {
	fs, c, root := machine(t)
	fn := stateFile(t, fs, root, "msg.state")
	if err := SaveState(fs, c, fn); err != nil {
		t.Fatal(err)
	}
	var msg Message
	for i := range msg {
		msg[i] = uint16(i * 3)
	}
	if err := InLoad(fs, c, fn, msg); err != nil {
		t.Fatal(err)
	}
	if got := ReadMessage(c); got != msg {
		t.Fatalf("message %v", got)
	}
	_ = mem.Words // keep the import meaningful if layout constants change
}
