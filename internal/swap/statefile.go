package swap

// Random access into machine-state files. The paper's debugger "may examine
// or alter the state of the faulty program by reading or writing portions of
// the file that was written as a result of the breakpoint" (§4) — these are
// those portions: registers in the header page, one memory word per word of
// the image. Each access is a single guarded page read or write; nothing is
// loaded into the live machine.

import (
	"fmt"

	"altoos/internal/disk"
	"altoos/internal/file"
)

// Regs is the register portion of a saved machine state.
type Regs struct {
	AC    [4]uint16
	PC    uint16
	Carry bool
}

// statePageFor maps a memory address to its page and in-page word offset.
func statePageFor(addr uint16) (disk.Word, int) {
	//altovet:allow wordwidth addr/PageWords <= 255, so the page number stays far below 2^16
	return disk.Word(headerPage + 1 + int(addr)/disk.PageWords), int(addr) % disk.PageWords
}

// ReadStateRegs reads the registers from a state file.
func ReadStateRegs(fs *file.FS, fn file.FN) (Regs, error) {
	f, err := fs.Open(fn)
	if err != nil {
		return Regs{}, err
	}
	var page [disk.PageWords]disk.Word
	if _, err := f.ReadPage(headerPage, &page); err != nil {
		return Regs{}, err
	}
	if page[0] != stateMagic {
		return Regs{}, fmt.Errorf("%w: bad magic %#04x", ErrNotState, page[0])
	}
	var r Regs
	for i := range r.AC {
		r.AC[i] = page[1+i]
	}
	r.PC = page[5]
	r.Carry = page[6] != 0
	return r, nil
}

// WriteStateRegs replaces the registers in a state file.
func WriteStateRegs(fs *file.FS, fn file.FN, r Regs) error {
	f, err := fs.Open(fn)
	if err != nil {
		return err
	}
	var page [disk.PageWords]disk.Word
	if _, err := f.ReadPage(headerPage, &page); err != nil {
		return err
	}
	if page[0] != stateMagic {
		return fmt.Errorf("%w: bad magic %#04x", ErrNotState, page[0])
	}
	for i, v := range r.AC {
		page[1+i] = v
	}
	page[5] = r.PC
	page[6] = 0
	if r.Carry {
		page[6] = 1
	}
	return f.WritePage(headerPage, &page, disk.PageBytes)
}

// ReadStateWord reads one memory word from a saved machine image.
func ReadStateWord(fs *file.FS, fn file.FN, addr uint16) (uint16, error) {
	f, err := fs.Open(fn)
	if err != nil {
		return 0, err
	}
	pn, off := statePageFor(addr)
	var page [disk.PageWords]disk.Word
	if _, err := f.ReadPage(pn, &page); err != nil {
		return 0, err
	}
	return page[off], nil
}

// WriteStateWord alters one memory word in a saved machine image.
func WriteStateWord(fs *file.FS, fn file.FN, addr, value uint16) error {
	f, err := fs.Open(fn)
	if err != nil {
		return err
	}
	pn, off := statePageFor(addr)
	var page [disk.PageWords]disk.Word
	if _, err := f.ReadPage(pn, &page); err != nil {
		return err
	}
	page[off] = value
	return f.WritePage(pn, &page, disk.PageBytes)
}

// ReadStateBlock reads n consecutive memory words from a saved image,
// page-efficiently.
func ReadStateBlock(fs *file.FS, fn file.FN, addr uint16, n int) ([]uint16, error) {
	f, err := fs.Open(fn)
	if err != nil {
		return nil, err
	}
	out := make([]uint16, 0, n)
	var page [disk.PageWords]disk.Word
	for n > 0 {
		pn, off := statePageFor(addr)
		if _, err := f.ReadPage(pn, &page); err != nil {
			return nil, err
		}
		for ; off < disk.PageWords && n > 0; off++ {
			out = append(out, page[off])
			addr++
			n--
		}
	}
	return out, nil
}
