package experiments

import (
	"fmt"
	"time"

	"altoos/internal/dir"
	"altoos/internal/disk"
	"altoos/internal/file"
	"altoos/internal/scavenge"
	"altoos/internal/sim"
	"altoos/internal/trace"
)

// E1RawTransfer — §2: each drive "can transfer 64k words in about one
// second". A 256-page consecutively allocated file is read sequentially and
// the achieved word rate compared with the claim.
func E1RawTransfer() (*Result, error) { return e1RawTransfer(nil) }

func e1RawTransfer(rec *trace.Recorder) (*Result, error) {
	res := &Result{
		ID:    "E1",
		Title: "raw sequential transfer",
		Claim: "the disk can transfer 64K words in about one second (§2)",
	}
	r, err := newRig(disk.Diablo31(), rec)
	if err != nil {
		return nil, err
	}
	f, err := r.addFile("e1.dat", 256) // 256 pages = 64K words
	if err != nil {
		return nil, err
	}
	elapsed, pages, err := r.readSequential(f)
	if err != nil {
		return nil, err
	}
	words := pages * disk.PageWords
	rate := float64(words) / secs(elapsed)
	for64k := 65536 / rate
	res.add("file size", "%d pages (%d words)", pages, words)
	res.add("sequential read time", "%.2f s simulated", secs(elapsed))
	res.add("achieved rate", "%.0f words/s", rate)
	res.add("time for 64K words at that rate", "%.2f s (paper: about 1 s)", for64k)
	res.metric("sim_seconds_64kwords", for64k)
	res.metric("words_per_sec", rate)
	return res, nil
}

// E2AllocFreeCost — §3.3: the label discipline "costs a disk revolution each
// time a page is allocated or freed", while "on any other write the label is
// checked, at no cost in time". Averages over random sectors.
func E2AllocFreeCost() (*Result, error) { return e2AllocFreeCost(nil) }

func e2AllocFreeCost(rec *trace.Recorder) (*Result, error) {
	res := &Result{
		ID:    "E2",
		Title: "allocation and free cost in revolutions",
		Claim: "allocating or freeing a page costs one disk revolution; ordinary writes check the label free of charge (§3.3)",
	}
	g := disk.Diablo31()
	d, err := disk.NewDrive(g, 1, nil)
	if err != nil {
		return nil, err
	}
	d.SetRecorder(rec)
	rnd := sim.NewRand(2)
	const n = 400
	addrs := make([]disk.VDA, 0, n)
	seen := map[disk.VDA]bool{}
	for len(addrs) < n {
		a := disk.VDA(rnd.Intn(g.NSectors()))
		if !seen[a] {
			seen[a] = true
			addrs = append(addrs, a)
		}
	}
	lbl := func(i int) disk.Label {
		return disk.Label{FID: disk.FirstUserFID, Version: 1, PageNum: disk.Word(i),
			Length: disk.PageBytes, Next: disk.NilVDA, Prev: disk.NilVDA}
	}
	var v [disk.PageWords]disk.Word

	measure := func(f func(i int, a disk.VDA) error) (time.Duration, error) {
		start := d.Clock().Now()
		for i, a := range addrs {
			if err := f(i, a); err != nil {
				return 0, err
			}
		}
		return (d.Clock().Now() - start) / n, nil
	}

	alloc, err := measure(func(i int, a disk.VDA) error { return disk.Allocate(d, a, lbl(i), &v) })
	if err != nil {
		return nil, err
	}
	write, err := measure(func(i int, a disk.VDA) error { return disk.WriteValue(d, a, lbl(i), &v) })
	if err != nil {
		return nil, err
	}
	read, err := measure(func(i int, a disk.VDA) error { return disk.ReadValue(d, a, lbl(i), &v) })
	if err != nil {
		return nil, err
	}
	free, err := measure(func(i int, a disk.VDA) error { return disk.Free(d, a, lbl(i)) })
	if err != nil {
		return nil, err
	}

	rev := float64(g.RevTime)
	res.add("ordinary write (check label + write value)", "%.2f rev (%.1f ms)", float64(write)/rev, ms(write))
	res.add("ordinary read (check label + read value)", "%.2f rev (%.1f ms)", float64(read)/rev, ms(read))
	res.add("allocate (check free, then write label)", "%.2f rev (%.1f ms)", float64(alloc)/rev, ms(alloc))
	res.add("free (check label, then write ones)", "%.2f rev (%.1f ms)", float64(free)/rev, ms(free))
	res.add("allocation overhead over ordinary write", "%.2f rev (paper: 1 revolution)", float64(alloc-write)/rev)
	res.add("free overhead over ordinary write", "%.2f rev (paper: 1 revolution)", float64(free-write)/rev)
	res.metric("alloc_overhead_revs", float64(alloc-write)/rev)
	res.metric("free_overhead_revs", float64(free-write)/rev)
	return res, nil
}

// E3Scavenge — §3.5: scavenging "takes about a minute for a 2.5 megabyte
// disk". Populates disks of both geometries to ~60% and scavenges.
func E3Scavenge() (*Result, error) { return e3Scavenge(nil) }

func e3Scavenge(rec *trace.Recorder) (*Result, error) {
	res := &Result{
		ID:    "E3",
		Title: "scavenge time by disk size",
		Claim: "scavenging takes about a minute for a 2.5 megabyte disk (§3.5)",
	}
	for _, g := range []disk.Geometry{disk.Diablo31(), disk.Trident()} {
		r, err := newRig(g, rec)
		if err != nil {
			return nil, err
		}
		// ~60% full: files of 24 data pages each.
		budget := g.NSectors() * 60 / 100
		nfiles := budget / 26
		for i := 0; i < nfiles; i++ {
			if _, err := r.addFile(fmt.Sprintf("f%04d", i), 24); err != nil {
				return nil, err
			}
		}
		_, rep, err := scavenge.Run(r.drive)
		if err != nil {
			return nil, err
		}
		mb := float64(g.Bytes()) / 1e6
		res.add(fmt.Sprintf("%s (%.1f MB, %d files, %d%% full)", g.Name, mb, rep.FilesFound,
			100-100*rep.FreePages/g.NSectors()),
			"%.1f s simulated (paper: ~60 s)", secs(rep.Elapsed))
		res.metric("scavenge_seconds_"+g.Name, secs(rep.Elapsed))
	}
	return res, nil
}

// E4Compaction — §3.5: consecutive layout "typically increases the speed
// with which the files can be read sequentially by an order of magnitude
// over what is possible if the pages have become scattered".
func E4Compaction() (*Result, error) { return e4Compaction(nil) }

func e4Compaction(rec *trace.Recorder) (*Result, error) {
	res := &Result{
		ID:    "E4",
		Title: "sequential read speedup from the compacting scavenger",
		Claim: "compaction speeds sequential reads by an order of magnitude (§3.5)",
	}
	r, err := newRig(disk.Diablo31(), rec)
	if err != nil {
		return nil, err
	}
	// Worst-case natural fragmentation: 12 files grown in lockstep, so each
	// file's consecutive pages are one revolution apart.
	const nfiles, pages = 12, 128
	files := make([]*file.File, nfiles)
	for i := range files {
		f, err := r.fs.Create(fmt.Sprintf("frag%02d", i))
		if err != nil {
			return nil, err
		}
		if err := r.root.Insert(fmt.Sprintf("frag%02d", i), f.FN()); err != nil {
			return nil, err
		}
		files[i] = f
	}
	var page [disk.PageWords]disk.Word
	for pn := 1; pn <= pages; pn++ {
		for _, f := range files {
			if err := f.WritePage(disk.Word(pn), &page, disk.PageBytes); err != nil {
				return nil, err
			}
		}
	}
	for _, f := range files {
		if err := f.Sync(); err != nil {
			return nil, err
		}
	}

	// Steady-state sequential read: one warm-up pass fills the page-address
	// hints, the measured pass shows pure layout cost — the regime the
	// paper's order-of-magnitude claim describes.
	target, err := r.fs.Open(files[5].FN())
	if err != nil {
		return nil, err
	}
	if _, _, err := r.readSequential(target); err != nil {
		return nil, err
	}
	before, n, err := r.readSequential(target)
	if err != nil {
		return nil, err
	}

	// An aged disk scatters pages across cylinders, not just across a
	// track: move the target file's pages to random free sectors, let the
	// Scavenger rebuild the links, and measure again.
	rnd := sim.NewRand(4)
	fv := files[5].FN().FV
	lastPN := target.LastPN()
	for pn := disk.Word(0); pn <= lastPN; pn++ {
		from, err := target.PageAddr(pn)
		if err != nil {
			return nil, err
		}
		to := disk.VDA(rnd.Intn(r.drive.Geometry().NSectors()))
		if r.fs.Descriptor().Free.Busy(to) {
			continue // only move into genuinely free sectors
		}
		if err := movePage(r.drive, from, to, fv, pn); err != nil {
			return nil, err
		}
		r.fs.Descriptor().Free.SetBusy(to)
		r.fs.Descriptor().Free.SetFree(from)
	}
	fsAged, _, err := scavenge.Run(r.drive)
	if err != nil {
		return nil, err
	}
	agedFN, err := dir.ResolveName(fsAged, "frag05")
	if err != nil {
		return nil, err
	}
	agedFile, err := fsAged.Open(agedFN)
	if err != nil {
		return nil, err
	}
	rAged := &rig{drive: r.drive, fs: fsAged}
	if _, _, err := rAged.readSequential(agedFile); err != nil {
		return nil, err
	}
	aged, _, err := rAged.readSequential(agedFile)
	if err != nil {
		return nil, err
	}

	fs2, crep, err := scavenge.Compact(r.drive)
	if err != nil {
		return nil, err
	}
	fn, err := dir.ResolveName(fs2, "frag05")
	if err != nil {
		return nil, err
	}
	after2, err := fs2.Open(fn)
	if err != nil {
		return nil, err
	}
	r2 := &rig{drive: r.drive, fs: fs2}
	if _, _, err := r2.readSequential(after2); err != nil {
		return nil, err
	}
	after, _, err := r2.readSequential(after2)
	if err != nil {
		return nil, err
	}

	speedup := float64(before) / float64(after)
	agedSpeedup := float64(aged) / float64(after)
	res.add(fmt.Sprintf("scattered (%d-way interleave, %d pages)", nfiles, n),
		"%.2f ms/page", ms(before)/float64(n))
	res.add("scattered (aged disk: random cylinders)", "%.2f ms/page", ms(aged)/float64(n))
	res.add("compacted (consecutive sectors)", "%.2f ms/page", ms(after)/float64(n))
	res.add("speedup, interleaved -> compacted", "%.1fx", speedup)
	res.add("speedup, aged -> compacted", "%.1fx (paper: about 10x)", agedSpeedup)
	res.add("compaction work", "%d pages moved in %.0f s simulated", crep.PagesMoved, secs(crep.Elapsed))
	res.metric("speedup", speedup)
	res.metric("aged_speedup", agedSpeedup)
	res.metric("ms_per_page_scattered", ms(before)/float64(n))
	res.metric("ms_per_page_compacted", ms(after)/float64(n))
	return res, nil
}

// movePage relocates one page to a free sector under the full label
// discipline: read under the old name, allocate the destination under the
// same name, free the source. Links go stale; the Scavenger repairs them.
func movePage(d *disk.Drive, from, to disk.VDA, fv disk.FV, pn disk.Word) error {
	lbl, err := disk.ReadLabel(d, from, fv, pn)
	if err != nil {
		return err
	}
	var v [disk.PageWords]disk.Word
	if err := disk.ReadValue(d, from, lbl, &v); err != nil {
		return err
	}
	if err := disk.Allocate(d, to, lbl, &v); err != nil {
		return err
	}
	return disk.Free(d, from, lbl)
}
