package experiments

// E10 and E11 measure the network story past the paper's demo scale: §1
// claims an open system where only the packet representation is standardized
// and "radically different" programs interoperate over the 3 Mb/s Ethernet.
// That claim is empty on a perfect wire — so both experiments run the
// reliable transport and the multi-client file server over ether.FaultMedium
// and measure what loss actually costs.

import (
	"bytes"
	"errors"
	"fmt"
	"time"

	"altoos/internal/dir"
	"altoos/internal/disk"
	"altoos/internal/ether"
	"altoos/internal/file"
	"altoos/internal/fileserver"
	"altoos/internal/fleet"
	"altoos/internal/pup"
	"altoos/internal/sim"
	"altoos/internal/trace"
)

// netRig is one simulated machine room: a wire, a server with a formatted
// disk behind it, and n client stations.
type netRig struct {
	clock   *sim.Clock
	wire    *ether.Network
	srv     *fileserver.Server
	clients []*fileserver.Client
}

// newNetRig wires everything to one clock and one recorder, so the disk and
// the network advance the same simulated time and trace into one stream.
func newNetRig(n int, rec *trace.Recorder) (*netRig, error) {
	return newNetRigFleet(n, func(string) *trace.Recorder { return rec })
}

// newNetRigFleet wires the machine room with per-machine recorders: the wire
// is its own machine (sends, collisions and fault verdicts belong to the
// medium), the server's disk and station record into "server", and each
// client station into "clientN". Everything still shares one clock. Handing
// in a constant function collapses the fleet back onto a single recorder —
// the single-machine rig above — with identical event streams.
func newNetRigFleet(n int, machine func(string) *trace.Recorder) (*netRig, error) {
	clock := sim.NewClock()
	wire := ether.New(clock)
	wire.SetRecorder(machine("wire"))
	srvRec := machine("server")
	drv, err := disk.NewDrive(disk.Diablo31(), 1, clock)
	if err != nil {
		return nil, err
	}
	drv.SetRecorder(srvRec)
	fs, err := file.Format(drv)
	if err != nil {
		return nil, err
	}
	if _, err := dir.InitRoot(fs); err != nil {
		return nil, err
	}
	sst, err := wire.Attach(1)
	if err != nil {
		return nil, err
	}
	sst.SetRecorder(srvRec)
	rig := &netRig{
		clock: clock,
		wire:  wire,
		srv:   fileserver.NewServer(fs, pup.NewEndpoint(sst, pup.Config{})),
	}
	for i := 0; i < n; i++ {
		cst, err := wire.Attach(ether.Addr((2 + i) & 0xFFFF))
		if err != nil {
			return nil, err
		}
		cst.SetRecorder(machine(fmt.Sprintf("client%d", i)))
		c := fileserver.NewClient(pup.NewEndpoint(cst, pup.Config{Seed: uint64(i + 1)}))
		if err := c.Connect(1); err != nil {
			return nil, err
		}
		rig.clients = append(rig.clients, c)
	}
	return rig, nil
}

// netOp is one scripted transfer: store data under name, or fetch name and
// expect data back.
type netOp struct {
	store bool
	name  string
	data  []byte
}

// runScripts drives every client through its op list concurrently, as
// actors on a coupled fleet engine round-robined with the server — the
// loaded-server shape: one poll per machine per round, many sessions. It
// returns the number of corrupted fetches (payload mismatches the reliable
// transport failed to hide) and the total data bytes moved.
func (r *netRig) runScripts(scripts [][]netOp) (corrupt int, bytesMoved int64, err error) {
	// Round state shared between the actors: machines run one at a time on
	// a coupled engine, and the exit decision is made between rounds —
	// exactly the hand-written loop this replaces.
	running, stop := false, false
	eng := fleet.NewCoupled(fleet.AfterRound(func() {
		if !running {
			stop = true
		}
		running = false
	}))
	eng.Add(fleet.MachineConfig{Name: "server", Program: func(m *fleet.Machine) error {
		for !stop {
			if _, err := r.srv.Poll(); err != nil {
				return err
			}
			m.Yield()
		}
		return nil
	}})
	for i := range r.clients {
		i := i
		c := r.clients[i]
		idx, started := 0, false
		eng.Add(fleet.MachineConfig{Name: fmt.Sprintf("client%d", i), Program: func(m *fleet.Machine) error {
			for !stop {
				if _, err := c.Poll(); err != nil {
					return err
				}
				if idx < len(scripts[i]) {
					running = true
					op := scripts[i][idx]
					switch {
					case !started:
						var err error
						if op.store {
							err = c.Store(op.name, op.data)
						} else {
							err = c.Fetch(op.name)
						}
						if err != nil {
							return err
						}
						started = true
					case c.Done():
						got, err := c.Result()
						if err != nil {
							return fmt.Errorf("client %d %s %q: %w", i, opName(op), op.name, err)
						}
						if !op.store && !bytes.Equal(got, op.data) {
							corrupt++
						}
						bytesMoved += int64(len(op.data))
						idx++
						started = false
					}
				}
				m.Yield()
			}
			return nil
		}})
	}
	if err := eng.Run(); err != nil {
		if errors.Is(err, fleet.ErrRoundCap) {
			return corrupt, bytesMoved, fmt.Errorf("experiments: transfers never completed")
		}
		return corrupt, bytesMoved, err
	}
	return corrupt, bytesMoved, nil
}

func opName(op netOp) string {
	if op.store {
		return "store"
	}
	return "fetch"
}

// closeAll closes every client connection and runs a coupled teardown
// fleet — clients first, server last, the legacy round order — until the
// server has retired the sessions, so the per-session trace spans are
// emitted.
func (r *netRig) closeAll() error {
	for _, c := range r.clients {
		if err := c.Close(); err != nil {
			return err
		}
	}
	open, stop := false, false
	eng := fleet.NewCoupled(fleet.MaxRounds(1_000_000), fleet.AfterRound(func() {
		if !open && r.srv.Stats().Active == 0 {
			stop = true
		}
		open = false
	}))
	for i, c := range r.clients {
		c := c
		eng.Add(fleet.MachineConfig{Name: fmt.Sprintf("client%d", i), Program: func(m *fleet.Machine) error {
			for !stop {
				if _, err := c.Poll(); err != nil {
					return err
				}
				if c.Conn().State() != pup.StateClosed {
					open = true
				}
				m.Yield()
			}
			return nil
		}})
	}
	eng.Add(fleet.MachineConfig{Name: "server", Program: func(m *fleet.Machine) error {
		for !stop {
			if _, err := r.srv.Poll(); err != nil {
				return err
			}
			m.Yield()
		}
		return nil
	}})
	if err := eng.Run(); err != nil {
		if errors.Is(err, fleet.ErrRoundCap) {
			return fmt.Errorf("experiments: sessions never closed")
		}
		return err
	}
	return nil
}

// netPattern builds deterministic transfer content.
func netPattern(n, salt int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(i*11 + salt*17)
	}
	return out
}

// E10LoadedServer runs 8 client stations hammering one file server over a
// wire losing 10% of its packets (§1's open-system claim, under load).
func E10LoadedServer() (*Result, error) { return e10LoadedServer(nil) }

func e10LoadedServer(tr *trace.Recorder) (*Result, error) {
	// The retransmit evidence comes from trace counters, so the experiment
	// runs a private recorder when the caller brings none.
	rec := tr
	if rec == nil {
		rec = trace.New(1 << 16)
	}
	return e10Run(func(string) *trace.Recorder { return rec })
}

// e10Scoped is the fleet-aware entry point (cmd/altoscope): every machine
// gets its own recorder, merged afterwards by internal/scope.
func e10Scoped(machine func(string) *trace.Recorder) (*Result, error) {
	return e10Run(machine)
}

// e10Run is the E10 workload over any recorder assignment. Counters are
// summed across every distinct recorder the rig was given, so the numbers
// come out the same whether the run was one machine or ten: retransmits live
// on the client and server machines, drops on the wire.
func e10Run(machine func(string) *trace.Recorder) (*Result, error) {
	var recs []*trace.Recorder
	seen := map[*trace.Recorder]bool{}
	collect := func(name string) *trace.Recorder {
		r := machine(name)
		if r != nil && !seen[r] {
			seen[r] = true
			recs = append(recs, r)
		}
		return r
	}
	counter := func(name string) int64 {
		var total int64
		for _, rc := range recs {
			total += rc.Counter(name)
		}
		return total
	}
	const clients = 8
	r, err := newNetRigFleet(clients, collect)
	if err != nil {
		return nil, err
	}
	r.wire.InjectFaults(ether.FaultConfig{
		Seed:    42,
		Drop:    ether.Rate{Num: 1, Den: 10},
		Dup:     ether.Rate{Num: 1, Den: 50},
		Corrupt: ether.Rate{Num: 1, Den: 50},
	})

	// Each client stores a file, reads it back, overwrites it with a
	// different size (growth for even clients, truncation for odd), and
	// reads again — every disk path the server has, under contention.
	scripts := make([][]netOp, clients)
	for i := range scripts {
		name := fmt.Sprintf("load%d", i)
		v1 := netPattern(3*disk.PageBytes+100*i+57, i)
		size2 := 5*disk.PageBytes + 201
		if i%2 == 1 {
			size2 = disk.PageBytes + 33*i
		}
		v2 := netPattern(size2, i+100)
		scripts[i] = []netOp{
			{store: true, name: name, data: v1},
			{name: name, data: v1},
			{store: true, name: name, data: v2},
			{name: name, data: v2},
		}
	}

	corrupt, moved, err := r.runScripts(scripts)
	if err != nil {
		return nil, err
	}
	if err := r.closeAll(); err != nil {
		return nil, err
	}
	if corrupt != 0 {
		return nil, fmt.Errorf("e10: %d corrupted transfers leaked through the reliable transport", corrupt)
	}
	retrans := counter("pup.retransmit")
	drops := counter("ether.drop")
	if retrans == 0 {
		return nil, fmt.Errorf("e10: 10%% loss produced no retransmissions; the fault medium is not wired in")
	}

	simSec := r.clock.Now().Seconds()
	words := float64(moved) / 2
	st := r.srv.Stats()
	res := &Result{
		ID:    "E10",
		Title: "loaded file server over a 10%-loss wire",
		Claim: "§1: only the packet representation is standardized; different programs interoperate over the network",
	}
	res.add("clients x transfers", "%d x %d, %d bytes of payload", clients, len(scripts[0]), moved)
	res.add("corrupted transfers", "%d (checksum + retransmission hid every fault)", corrupt)
	res.add("packets dropped by the medium", "%d (plus %d duplicated, %d corrupted)",
		drops, counter("ether.dup"), counter("ether.corrupt"))
	res.add("retransmissions", "%d (bounded: %.2f per drop)", retrans, float64(retrans)/float64(drops))
	res.add("sessions served", "%d concurrent, %d stores, %d fetches", st.Sessions, st.Stores, st.Fetches)
	res.add("simulated completion time", "%.2f s", simSec)
	res.add("goodput", "%.0f words/s of file data", words/simSec)
	res.metric("sim_seconds", simSec)
	res.metric("goodput_words_per_sec", words/simSec)
	res.metric("retransmits", float64(retrans))
	return res, nil
}

// E11LossSweep measures steady-state goodput against loss rate, 0% to 20%.
func E11LossSweep() (*Result, error) { return e11LossSweep(nil) }

// e11LossSweep primes each client's file once (uncounted: disk formatting
// and page-growth writes say nothing about the transport) and then measures
// a phase of same-size overwrites and fetches — warm congestion windows,
// chained interior disk transfers, the wire under real pressure. All
// numbers are counter/clock deltas around the measured phase, so the same
// recorder can persist across sweep points (cmd/altotrace hands in one).
func e11LossSweep(tr *trace.Recorder) (*Result, error) {
	res := &Result{
		ID:    "E11",
		Title: "steady-state goodput vs. packet loss",
		Claim: "§1: the network is a facility, not a guarantee — software above the packet layer pays for loss",
	}
	// A 16-page file per client: long enough that every transfer keeps a
	// window's worth of packets in flight (selective repeat has holes to
	// cover), short enough that five sweep points stay cheap.
	const fileBytes = 16*disk.PageBytes - 76
	for _, lossPct := range []int{0, 5, 10, 15, 20} {
		rec := tr
		if rec == nil {
			rec = trace.New(1 << 16)
		}
		r, err := newNetRig(2, rec)
		if err != nil {
			return nil, err
		}
		r.wire.InjectFaults(ether.FaultConfig{
			Seed: 7,
			Drop: ether.Rate{Num: lossPct, Den: 100},
		})
		prime := make([][]netOp, 2)
		for i := range prime {
			prime[i] = []netOp{{store: true, name: fmt.Sprintf("sweep%d", i), data: netPattern(fileBytes, i+lossPct)}}
		}
		if _, _, err := r.runScripts(prime); err != nil {
			return nil, fmt.Errorf("loss %d%% prime: %w", lossPct, err)
		}
		markClock := r.clock.Now()
		markRetrans := rec.Counter("pup.retransmit")
		markRexWords := rec.Counter("pup.retransmit.words")
		markDataWords := rec.Counter("pup.data.words")
		markEtherWords := rec.Counter("ether.words")
		scripts := make([][]netOp, 2)
		for i := range scripts {
			name := fmt.Sprintf("sweep%d", i)
			v2 := netPattern(fileBytes, i+lossPct+50)
			v3 := netPattern(fileBytes, i+lossPct+100)
			scripts[i] = []netOp{
				{store: true, name: name, data: v2},
				{name: name, data: v2},
				{store: true, name: name, data: v3},
				{name: name, data: v3},
			}
		}
		corrupt, moved, err := r.runScripts(scripts)
		if err != nil {
			return nil, fmt.Errorf("loss %d%%: %w", lossPct, err)
		}
		phase := r.clock.Now() - markClock
		retrans := rec.Counter("pup.retransmit") - markRetrans
		rexWords := rec.Counter("pup.retransmit.words") - markRexWords
		dataWords := rec.Counter("pup.data.words") - markDataWords
		wireBusy := time.Duration(rec.Counter("ether.words")-markEtherWords) * ether.WireTime
		if err := r.closeAll(); err != nil {
			return nil, fmt.Errorf("loss %d%%: %w", lossPct, err)
		}
		if corrupt != 0 {
			return nil, fmt.Errorf("loss %d%%: %d corrupted transfers", lossPct, corrupt)
		}
		goodput := float64(moved) / 2 / phase.Seconds()
		// Retransmitted-words ratio: what fraction of the data words put on
		// the wire were repeats. Go-back-N resent whole windows per hole;
		// selective repeat resends only the holes.
		ratio := 0.0
		if dataWords+rexWords > 0 {
			ratio = float64(rexWords) / float64(dataWords+rexWords)
		}
		// Wire-idle fraction: the share of the measured phase the 3 Mb/s
		// wire spent silent — time the transport failed to use.
		idle := 1 - wireBusy.Seconds()/phase.Seconds()
		res.add(fmt.Sprintf("loss %2d%%", lossPct),
			"%6.0f words/s goodput, %3d retransmits, %4.1f%% resent words, %4.1f%% wire idle, %.2f s measured",
			goodput, retrans, 100*ratio, 100*idle, phase.Seconds())
		res.metric(fmt.Sprintf("goodput_words_per_sec_loss%d", lossPct), goodput)
		res.metric(fmt.Sprintf("retransmits_loss%d", lossPct), float64(retrans))
		res.metric(fmt.Sprintf("retransmitted_words_ratio_loss%d", lossPct), ratio)
		res.metric(fmt.Sprintf("wire_idle_frac_loss%d", lossPct), idle)
	}
	return res, nil
}
