package experiments

import (
	"fmt"
	"time"

	"altoos/internal/cpu"
	"altoos/internal/dir"
	"altoos/internal/disk"
	"altoos/internal/file"
	"altoos/internal/junta"
	"altoos/internal/mem"
	"altoos/internal/scavenge"
	"altoos/internal/sim"
	"altoos/internal/swap"
	"altoos/internal/trace"
)

// E5HintLadder — §3.6: the cost of each level of the hint recovery ladder,
// from a correct direct hint down to running the Scavenger.
func E5HintLadder() (*Result, error) { return e5HintLadder(nil) }

func e5HintLadder(rec *trace.Recorder) (*Result, error) {
	res := &Result{
		ID:    "E5",
		Title: "cost of each hint-ladder level",
		Claim: "a correct hint reaches a page in one access; each recovery level costs more, ending at the Scavenger (§3.6)",
	}
	r, err := newRig(disk.Diablo31(), rec)
	if err != nil {
		return nil, err
	}
	const pages = 120
	f, err := r.addFile("ladder.dat", pages)
	if err != nil {
		return nil, err
	}
	r.fs.SetRecovery(file.Recovery{ResolveFV: dir.ResolveFV(r.fs)})
	rnd := sim.NewRand(5)
	var buf [disk.PageWords]disk.Word

	// Average the cost of reading a random interior page under each
	// strategy. Every trial uses a fresh handle so only the planted hints
	// exist.
	trial := func(n int, prep func(h *file.File, pn disk.Word)) (time.Duration, error) {
		var total time.Duration
		for i := 0; i < n; i++ {
			//altovet:allow wordwidth pages < 2^16, so any page index fits a Word
			pn := disk.Word(2 + rnd.Intn(pages-2))
			h, err := r.fs.Open(f.FN())
			if err != nil {
				return 0, err
			}
			h.ForgetHints()
			if prep != nil {
				prep(h, pn)
			}
			start := r.drive.Clock().Now()
			if _, err := h.ReadPage(pn, &buf); err != nil {
				return 0, err
			}
			total += r.drive.Clock().Now() - start
		}
		return total / time.Duration(n), nil
	}

	direct, err := trial(30, func(h *file.File, pn disk.Word) {
		a, err := f.PageAddr(pn)
		if err != nil {
			return // page unreachable: plant no hint, trial falls back to chasing
		}
		h.SetHint(pn, a)
	})
	if err != nil {
		return nil, err
	}
	res.add("1. correct direct hint", "%.1f ms/access", ms(direct))
	res.metric("ms_direct_hint", ms(direct))

	chase, err := trial(12, nil) // only the leader: chase links from page 0
	if err != nil {
		return nil, err
	}
	res.add("2. follow links from the leader", "%.1f ms/access", ms(chase))
	res.metric("ms_link_chase", ms(chase))

	kth, err := trial(12, func(h *file.File, pn disk.Word) {
		// Hints for every 10th page, as the paper suggests.
		for k := disk.Word(10); k < pages; k += 10 {
			if a, err := f.PageAddr(k); err == nil {
				h.SetHint(k, a)
			}
		}
	})
	if err != nil {
		return nil, err
	}
	res.add("2a. hints for every 10th page", "%.1f ms/access", ms(kth))
	res.metric("ms_kth_page", ms(kth))

	// 3. Stale leader hint: recover via directory FV lookup, then chase.
	fvCost, err := func() (time.Duration, error) {
		var total time.Duration
		const n = 8
		for i := 0; i < n; i++ {
			//altovet:allow wordwidth pages < 2^16, so any page index fits a Word
			pn := disk.Word(2 + rnd.Intn(pages-2))
			stale := f.FN()
			stale.Leader = 4500 // wrong
			start := r.drive.Clock().Now()
			h, err := r.fs.Open(stale)
			if err != nil {
				return 0, err
			}
			if _, err := h.ReadPage(pn, &buf); err != nil {
				return 0, err
			}
			total += r.drive.Clock().Now() - start
		}
		return total / n, nil
	}()
	if err != nil {
		return nil, err
	}
	res.add("3. stale address: directory FV lookup + chase", "%.1f ms/access", ms(fvCost))
	res.metric("ms_fv_lookup", ms(fvCost))

	// 4. String lookup in the directory graph.
	strCost := func() time.Duration {
		start := r.drive.Clock().Now()
		fn, err := dir.ResolveName(r.fs, "ladder.dat")
		if err == nil {
			if h, err := r.fs.Open(fn); err == nil {
				//altovet:allow errdiscard timing probe: the lookup cost is measured whether or not the read succeeds
				h.ReadPage(3, &buf)
			}
		}
		return r.drive.Clock().Now() - start
	}()
	res.add("4. string-name lookup + open + read", "%.1f ms/access", ms(strCost))
	res.metric("ms_string_lookup", ms(strCost))

	// 5. The last resort: scavenge, then retry.
	scavCost := func() (time.Duration, error) {
		start := r.drive.Clock().Now()
		if _, _, err := scavenge.Run(r.drive); err != nil {
			return 0, err
		}
		return r.drive.Clock().Now() - start, nil
	}
	sc, err := scavCost()
	if err != nil {
		return nil, err
	}
	res.add("5. invoke the Scavenger, then retry", "%.0f ms (one-time)", ms(sc))
	res.metric("ms_scavenge", ms(sc))
	return res, nil
}

// E6WorldSwap — §4.1: OutLoad and InLoad each take "about a second"; a
// coroutine transfer is an OutLoad plus an InLoad.
func E6WorldSwap() (*Result, error) { return e6WorldSwap(nil) }

func e6WorldSwap(rec *trace.Recorder) (*Result, error) {
	res := &Result{
		ID:    "E6",
		Title: "world-swap (OutLoad/InLoad) timing",
		Claim: "OutLoad and InLoad each require about a second (§4.1)",
	}
	r, err := newRig(disk.Diablo31(), rec)
	if err != nil {
		return nil, err
	}
	m := mem.New()
	for i := 0; i < mem.Words; i += 3 {
		m.Store(uint16(i), uint16(i))
	}
	c := cpu.New(m, r.drive.Clock(), nil)
	f, err := r.fs.Create("world.state")
	if err != nil {
		return nil, err
	}
	if err := r.root.Insert("world.state", f.FN()); err != nil {
		return nil, err
	}

	// Installation pass: the one-time allocation cost.
	start := r.drive.Clock().Now()
	if err := swap.SaveState(r.fs, c, f.FN()); err != nil {
		return nil, err
	}
	install := r.drive.Clock().Now() - start

	// Installed OutLoad: pure streaming writes.
	start = r.drive.Clock().Now()
	written, err := swap.OutLoad(r.fs, c, f.FN())
	if err != nil || !written {
		return nil, fmt.Errorf("OutLoad: written=%v err=%v", written, err)
	}
	outTime := r.drive.Clock().Now() - start

	start = r.drive.Clock().Now()
	if err := swap.InLoad(r.fs, c, f.FN(), swap.Message{}); err != nil {
		return nil, err
	}
	inTime := r.drive.Clock().Now() - start

	res.add("state size", "64K words + registers (258 pages)")
	res.add("first save (allocates the state file)", "%.1f s simulated (one-time installation)", secs(install))
	res.add("OutLoad, installed file", "%.2f s simulated (paper: ~1 s)", secs(outTime))
	res.add("InLoad", "%.2f s simulated (paper: ~1 s)", secs(inTime))
	res.add("coroutine transfer (OutLoad + InLoad)", "%.2f s simulated", secs(outTime+inTime))
	res.metric("outload_seconds", secs(outTime))
	res.metric("inload_seconds", secs(inTime))
	return res, nil
}

// E7Junta — §5.2: the level table, and the memory a program gains by
// removing levels it does not need.
func E7Junta() (*Result, error) { return e7Junta(nil) }

// e7Junta takes the recorder for signature uniformity only: the experiment
// never touches a disk, so there is nothing to trace.
func e7Junta(_ *trace.Recorder) (*Result, error) {
	res := &Result{
		ID:    "E7",
		Title: "memory reclaimed per Junta level",
		Claim: "Junta removes all higher-numbered levels and frees the storage they occupy (§5.2)",
	}
	fullResident := 65536 - int(junta.New(mem.New()).Base())
	res.add("full system resident", fmt.Sprintf("%d words of 65536", fullResident))
	maxFreed := 0
	for keep := junta.Level(junta.NumLevels); keep >= 1; keep-- {
		j := junta.New(mem.New())
		_, words, err := j.Do(keep)
		if err != nil {
			return nil, err
		}
		res.add(fmt.Sprintf("keep 1..%-2d (%v)", int(keep), keep),
			"%5d words freed, %5d still resident", words, fullResident-words)
		if words > maxFreed {
			maxFreed = words
		}
	}
	res.metric("max_words_freed", float64(maxFreed))
	res.metric("full_resident_words", float64(fullResident))
	return res, nil
}

// E8Robustness — §3.3/§6: "the label checking is crucial ... the incidence
// of complaints about lost information is negligible". Wild writes must all
// be rejected; map lies must cost retries only; random damage must lose only
// what it directly destroyed.
func E8Robustness() (*Result, error) { return e8Robustness(nil) }

func e8Robustness(rec *trace.Recorder) (*Result, error) {
	res := &Result{
		ID:    "E8",
		Title: "fault injection: label checks and the Scavenger",
		Claim: "label checking makes accidental overwriting quite unlikely; lost information is negligible (§3.3, §6)",
	}
	r, err := newRig(disk.Diablo31(), rec)
	if err != nil {
		return nil, err
	}
	const nfiles, pages = 24, 4
	files := make([]*file.File, nfiles)
	for i := range files {
		f, err := r.addFile(fmt.Sprintf("vault%02d", i), pages)
		if err != nil {
			return nil, err
		}
		files[i] = f
	}
	rnd := sim.NewRand(8)

	// (a) Wild writes: stale or fabricated full names.
	const wild = 200
	rejected := 0
	var junk [disk.PageWords]disk.Word
	for i := 0; i < wild; i++ {
		f := files[rnd.Intn(nfiles)]
		//altovet:allow wordwidth pages < 2^16, so any page index fits a Word
		a, err := f.PageAddr(disk.Word(1 + rnd.Intn(pages)))
		if err != nil {
			return nil, err
		}
		bad := disk.Label{
			FID:     disk.FID(rnd.Word()) | 0x10000,
			Version: 1 + disk.Word(rnd.Intn(3)),
			PageNum: disk.Word(rnd.Intn(8)),
			Length:  disk.PageBytes,
		}
		if err := disk.WriteValue(r.drive, a, bad, &junk); disk.IsCheck(err) {
			rejected++
		}
	}
	res.add(fmt.Sprintf("(a) %d wild writes with wrong full names", wild),
		"%d rejected by label checks (%.0f%%)", rejected, 100*float64(rejected)/wild)
	res.metric("wild_writes_rejected_pct", 100*float64(rejected)/wild)

	// (b) Allocation-map lies: mark 50 busy pages free; allocate through
	// them; count retries, verify no file damaged.
	lies := 0
	for i := 0; i < 50; i++ {
		f := files[rnd.Intn(nfiles)]
		//altovet:allow wordwidth pages < 2^16, so any page index fits a Word
		if a, err := f.PageAddr(disk.Word(1 + rnd.Intn(pages))); err == nil {
			if r.fs.Descriptor().Free.Busy(a) {
				r.fs.Descriptor().Free.SetFree(a)
				r.fs.SetRover(a)
				lies++
				if _, err := r.addFile(fmt.Sprintf("lie%03d", i), 1); err != nil {
					return nil, err
				}
			}
		}
	}
	res.add(fmt.Sprintf("(b) %d allocation-map lies", lies),
		"%d label-check retries, 0 overwrites", r.fs.Stats().AllocRetries)
	res.metric("map_lie_retries", float64(r.fs.Stats().AllocRetries))

	// (c) Random label corruption + scavenge: undamaged files must survive.
	touched := map[disk.VDA]bool{}
	for i := 0; i < 40; i++ {
		a := disk.VDA(rnd.Intn(r.drive.Geometry().NSectors()))
		touched[a] = true
		r.drive.CorruptLabel(a, rnd)
	}
	fs2, rep, err := scavenge.Run(r.drive)
	if err != nil {
		return nil, err
	}
	undamaged, recovered := 0, 0
	var buf [disk.PageWords]disk.Word
	for i, f := range files {
		hit := false
		for pn := disk.Word(0); pn <= pages; pn++ {
			if a, err := f.PageAddr(pn); err == nil && touched[a] {
				hit = true
			}
		}
		if hit {
			continue
		}
		undamaged++
		fn, err := dir.ResolveName(fs2, fmt.Sprintf("vault%02d", i))
		if err != nil {
			continue
		}
		g, err := fs2.Open(fn)
		if err != nil {
			continue
		}
		ok := true
		for pn := disk.Word(1); pn <= pages; pn++ {
			if _, err := g.ReadPage(pn, &buf); err != nil {
				ok = false
				break
			}
		}
		if ok {
			recovered++
		}
	}
	res.add("(c) 40 corrupted labels, then scavenge",
		"%d/%d untouched files fully recovered; %s", recovered, undamaged, rep)
	res.metric("undamaged_recovery_pct", 100*float64(recovered)/float64(max(1, undamaged)))
	return res, nil
}

// E9InstalledHints — §3.6/§4: installed hints survive world swaps and give
// warm starts at full disk speed; a failed hint means reinstalling, never
// damage.
func E9InstalledHints() (*Result, error) { return e9InstalledHints(nil) }

func e9InstalledHints(tr *trace.Recorder) (*Result, error) {
	res := &Result{
		ID:    "E9",
		Title: "installed-program hints: warm start vs reinstallation",
		Claim: "an installed program starts up and reaches its auxiliary files at maximum disk speed; a failed hint forces reinstallation (§3.6)",
	}
	r, err := newRig(disk.Diablo31(), tr)
	if err != nil {
		return nil, err
	}
	r.fs.SetRecovery(file.Recovery{ResolveFV: dir.ResolveFV(r.fs)})
	const aux = 6
	type rec struct {
		fn   file.FN
		page disk.VDA
	}
	install := func() ([]rec, time.Duration, error) {
		start := r.drive.Clock().Now()
		out := make([]rec, 0, aux)
		for i := 0; i < aux; i++ {
			name := fmt.Sprintf("aux%d", i)
			fn, err := dir.ResolveName(r.fs, name)
			var f *file.File
			if err != nil {
				if f, err = r.addFile(name, 2); err != nil {
					return nil, 0, err
				}
			} else if f, err = r.fs.Open(fn); err != nil {
				return nil, 0, err
			}
			a, err := f.PageAddr(1)
			if err != nil {
				return nil, 0, err
			}
			out = append(out, rec{fn: f.FN(), page: a})
		}
		return out, r.drive.Clock().Now() - start, nil
	}
	records, installTime, err := install()
	if err != nil {
		return nil, err
	}
	res.add("installation (create/lookup 6 aux files)", "%.0f ms simulated", ms(installTime))

	var buf [disk.PageWords]disk.Word
	warm := func() (time.Duration, error) {
		start := r.drive.Clock().Now()
		for _, rc := range records {
			h, err := r.fs.Open(rc.fn)
			if err != nil {
				return 0, err
			}
			h.ForgetHints()
			h.SetHint(1, rc.page)
			if _, err := h.ReadPage(1, &buf); err != nil {
				return 0, err
			}
		}
		return r.drive.Clock().Now() - start, nil
	}
	warmTime, err := warm()
	if err != nil {
		return nil, err
	}
	res.add("warm start (hints valid, 6 files touched)", "%.0f ms simulated", ms(warmTime))
	res.metric("warm_ms", ms(warmTime))

	cold := func() (time.Duration, error) {
		start := r.drive.Clock().Now()
		for i := 0; i < aux; i++ {
			fn, err := dir.ResolveName(r.fs, fmt.Sprintf("aux%d", i))
			if err != nil {
				return 0, err
			}
			h, err := r.fs.Open(fn)
			if err != nil {
				return 0, err
			}
			if _, err := h.ReadPage(1, &buf); err != nil {
				return 0, err
			}
		}
		return r.drive.Clock().Now() - start, nil
	}
	coldTime, err := cold()
	if err != nil {
		return nil, err
	}
	res.add("cold start (string lookups, no hints)", "%.0f ms simulated", ms(coldTime))
	res.metric("cold_ms", ms(coldTime))
	res.add("warm-start advantage", "%.1fx", float64(coldTime)/float64(warmTime))
	res.metric("warm_advantage", float64(coldTime)/float64(warmTime))

	// Delete a scratch file; the hint fails; reinstallation cures it.
	f, err := r.fs.Open(records[2].fn)
	if err != nil {
		return nil, err
	}
	if err := f.Delete(); err != nil {
		return nil, err
	}
	if err := r.root.Remove("aux2"); err != nil {
		return nil, err
	}
	failed := 0
	for _, rc := range records {
		h, err := r.fs.Open(rc.fn)
		if err != nil {
			failed++
			continue
		}
		h.ForgetHints()
		h.SetHint(1, rc.page)
		if _, err := h.ReadPage(1, &buf); err != nil {
			failed++
		}
	}
	res.add("after deleting one scratch file", "%d/%d hints fail cleanly (no damage), reinstall repairs", failed, aux)
	if _, _, err := install(); err != nil {
		return nil, err
	}
	res.metric("hints_failed_after_delete", float64(failed))
	return res, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// All runs every experiment in order.
func All() ([]*Result, error) {
	funcs := []func() (*Result, error){
		E1RawTransfer, E2AllocFreeCost, E3Scavenge, E4Compaction,
		E5HintLadder, E6WorldSwap, E7Junta, E8Robustness, E9InstalledHints,
		E10LoadedServer, E11LossSweep, E12CrashSweep, E13Saturation,
		E14FleetFanIn,
	}
	out := make([]*Result, 0, len(funcs))
	for _, f := range funcs {
		r, err := f()
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}
