package experiments

import (
	"fmt"

	"altoos/internal/crashpoint"
	"altoos/internal/trace"
)

// E12CrashSweep exhaustively explores crash points: the paper claims a
// crash at an arbitrary point costs at most recent work, never consistency
// (§3.5). The explorer enumerates every point — power failing after write
// 1, 2, …, N of a journaled directory workload and of a pack compaction,
// each write also replayed as a torn (garbled mid-sector) landing — and
// after each crash the Scavenger repairs the pack and fsck re-proves every
// invariant.
func E12CrashSweep() (*Result, error) { return e12CrashSweep(nil) }

func e12CrashSweep(tr *trace.Recorder) (*Result, error) {
	res := &Result{
		ID:    "E12",
		Title: "exhaustive crash-point sweep",
		Claim: "§3.5: a crash at an arbitrary point loses at most recent work; the Scavenger restores consistency",
	}
	var points, runs, clean, violations, repairs int
	for _, name := range []string{"journaled-insert", "compact"} {
		w, ok := crashpoint.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("e12: workload %q not registered", name)
		}
		r, err := crashpoint.Explore(w, crashpoint.Options{Workers: 4, Torn: true, Rec: tr})
		if err != nil {
			return nil, err
		}
		var reps, viols int
		for _, o := range r.Outcomes {
			reps += o.Repairs.Total()
			viols += len(o.Violations)
		}
		points += len(r.Points)
		runs += len(r.Outcomes)
		clean += r.Clean
		violations += viols
		repairs += reps
		res.add(fmt.Sprintf("%s: crash points", name), "%d (every write action, clean + torn)", len(r.Points))
		res.add(fmt.Sprintf("%s: recovered", name), "%d/%d runs, %d repairs applied, %d violations",
			r.Clean, len(r.Outcomes), reps, viols)
	}
	if violations != 0 {
		return nil, fmt.Errorf("e12: %d invariant violations survived recovery", violations)
	}
	res.add("total", "%d points, %d crash-and-recover runs, %d repairs", points, runs, repairs)
	res.metric("crash_points_total", float64(points))
	res.metric("violations_total", float64(violations))
	res.metric("recovered_pct", 100*float64(clean)/float64(runs))
	return res, nil
}
