package experiments

// E15 is the cluster experiment: a 4-shard × 3-replica file service — twelve
// fileserver machines under the windowed fleet engine — takes hundreds of
// client store sessions over a wire losing 10% of its packets, while two
// kinds of silent damage are manufactured on purpose: replicas that missed an
// overwrite (the client skipped them mid-group-write) and seeded bit-rot
// struck onto idle packs between phases. Then every replica runs the
// distributed Scavenger — the peer-audit daemon of internal/cluster — until
// the whole fleet goes quiet. The claim under test: every divergence is
// detected and healed with zero files lost and zero bytes corrupted, and the
// entire two-phase schedule is byte-identical across runs and worker widths.

import (
	"fmt"
	"time"

	"altoos/internal/cluster"
	"altoos/internal/disk"
	"altoos/internal/ether"
	"altoos/internal/fileserver"
	"altoos/internal/fleet"
	"altoos/internal/pup"
	"altoos/internal/sim"
	"altoos/internal/trace"
)

const (
	// e15Shards × e15Replicas is the cluster: the headline config from the
	// issue, twelve storage machines.
	e15Shards   = 4
	e15Replicas = 3
	// e15Clients is the default client-machine count; each runs several
	// group stores, so sessions = clients × stores × replicas.
	e15Clients = 24
	// e15Files is how many files each client stores; e15Overwrites of them
	// are then overwritten (even-numbered clients skip one replica while
	// doing so — the manufactured divergent store).
	e15Files      = 3
	e15Overwrites = 2
	// e15RotSectors is how many user-data sectors rot on each shard's
	// designated victim replica between the load and audit phases.
	e15RotSectors = 2
	// e15Workers is the scoped worker-pool width; the schedule is identical
	// at any width.
	e15Workers = 8
	// e15BootStagger separates client boot wakes; e15AuditStagger separates
	// the replicas' first audit deadlines so rounds interleave.
	e15BootStagger  = 160 * time.Nanosecond
	e15AuditStagger = 250 * time.Microsecond
)

// e15Geometry is each replica's pack: real Diablo31 arm timing on a short
// cylinder stack.
func e15Geometry() disk.Geometry {
	g := disk.Diablo31()
	g.Name = "Diablo31/14"
	g.Cylinders = 14
	return g
}

// e15Payload builds deterministic non-periodic content for client i's file f
// at version v. (A byte pattern with a 256-byte period folds to a zero page
// CRC under the drive's rotate-xor checksum and would hide from the audit
// digests, so the generator is a word-mixing LCG.)
func e15Payload(i, f, v int) []byte {
	n := 200 + ((i*7+f*3+v)%5)*130
	data := make([]byte, n)
	x := uint32(i*131071+f*8191+v*127) * 2654435761
	for j := range data {
		x = x*1664525 + 1013904223
		data[j] = byte(x >> 24)
	}
	return data
}

// e15Name is client i's file f on the cluster namespace.
func e15Name(i, f int) string { return fmt.Sprintf("c%02d.f%d", i, f) }

// E15ClusterAudit runs the experiment at its default scale with tracing off.
func E15ClusterAudit() (*Result, error) { return E15Cluster(e15Clients, 1, nil) }

// e15ClusterAudit is the registry entry: one shared recorder, one worker.
func e15ClusterAudit(rec *trace.Recorder) (*Result, error) {
	if rec == nil {
		return E15Cluster(e15Clients, 1, nil)
	}
	return E15Cluster(e15Clients, 1, func(string) *trace.Recorder { return rec })
}

// e15Scoped is the fleet-aware entry: one recorder per machine, full pool.
func e15Scoped(machine func(string) *trace.Recorder) (*Result, error) {
	return E15Cluster(e15Clients, e15Workers, machine)
}

// E15Cluster runs the two-phase cluster experiment: a load phase (clients
// store and divergently overwrite through the shard groups), seeded rot
// struck between phases, then an audit phase (every replica a scavenging
// daemon) that must drain only when the whole fleet has gone quiet. machine
// maps a machine name to its trace recorder; nil gives every machine a small
// private recorder (counters only). Every reported metric is a function of
// the schedule alone.
func E15Cluster(clients, workers int, machine func(string) *trace.Recorder) (*Result, error) {
	if clients < 1 {
		return nil, fmt.Errorf("e15: need at least 1 client machine, got %d", clients)
	}
	if machine == nil {
		machine = func(string) *trace.Recorder { return trace.New(1 << 10) }
	}
	var recs []*trace.Recorder
	seen := map[*trace.Recorder]bool{}
	collect := func(name string) *trace.Recorder {
		r := machine(name)
		if r != nil && !seen[r] {
			seen[r] = true
			recs = append(recs, r)
		}
		return r
	}
	counter := func(name string) int64 {
		var total int64
		for _, rc := range recs {
			total += rc.Counter(name)
		}
		return total
	}

	// One wire for both phases, losing a tenth of everything on it.
	wire := ether.New(nil)
	wire.SetRecorder(collect("wire"))
	wire.InjectFaults(ether.FaultConfig{
		Seed: 15,
		Drop: ether.Rate{Num: 1, Den: 10},
	})

	// The cluster: per-replica clocks (fleet mode), generous audit transport
	// budgets — at 10% loss a digest poll can take many retries and still
	// must not be mistaken for an unreachable peer.
	c, err := cluster.New(cluster.Config{
		Shards:        e15Shards,
		Replicas:      e15Replicas,
		Wire:          wire,
		Geometry:      e15Geometry(),
		AuditInterval: 120 * time.Millisecond,
		AuditQuiet:    2,
		AuditPup: pup.Config{
			MaxRTO:     time.Second,
			MaxRetries: 300,
		},
		Recorder: collect,
	})
	if err != nil {
		return nil, err
	}

	// Expected end-state of the namespace: every stored file at its final
	// version, byte for byte, on every replica of its shard.
	want := map[string][]byte{}
	for i := 0; i < clients; i++ {
		for f := 0; f < e15Files; f++ {
			v := 1
			if f < e15Overwrites {
				v = 2
			}
			want[e15Name(i, f)] = e15Payload(i, f, v)
		}
	}

	// ---- Phase 1: the load. Replicas serve; clients write through shards.
	eng1 := fleet.New(fleet.Workers(workers), fleet.Medium(wire))
	for _, r := range c.Replicas {
		r := r
		eng1.Add(fleet.MachineConfig{
			Name:     r.Name(),
			Clock:    r.Clock(),
			Stations: r.Stations(),
			Daemon:   true,
			Program:  r.ServeProgram(),
		})
	}
	sessions := 0
	for i := 0; i < clients; i++ {
		i := i
		clk := sim.NewClock()
		st, err := wire.Attach(cluster.ClientAddrBase + ether.Addr(i))
		if err != nil {
			return nil, err
		}
		st.SetClock(clk)
		st.SetRecorder(collect(fmt.Sprintf("client%02d", i)))
		sessions += (e15Files + e15Overwrites) * e15Replicas
		eng1.Add(fleet.MachineConfig{
			Name:    fmt.Sprintf("client%02d", i),
			Clock:   clk,
			Station: st,
			StartAt: time.Duration(i+1) * e15BootStagger,
			Program: func(m *fleet.Machine) error {
				cl := cluster.NewClient(c.Place, pup.NewEndpoint(st, pup.Config{
					Seed:       uint64(i) + 100,
					MaxRTO:     time.Second,
					MaxRetries: 300,
				}))
				wait := func(fc *fileserver.Client) error {
					for !fc.Done() {
						m.Sync()
						worked, err := fc.Poll()
						if err != nil {
							return err
						}
						if !worked {
							m.Idle()
						}
					}
					_, err := fc.Result()
					return err
				}
				for f := 0; f < e15Files; f++ {
					if err := cl.Store(e15Name(i, f), e15Payload(i, f, 1), wait); err != nil {
						return fmt.Errorf("client%02d: %w", i, err)
					}
				}
				for f := 0; f < e15Overwrites; f++ {
					if i%2 == 0 {
						// The divergent store: this overwrite silently skips
						// one replica, which keeps serving version 1 until
						// the audit phase catches it.
						skip := (i/2 + f) % e15Replicas
						cl.SetSkip(func(_, replica int) bool { return replica == skip })
					}
					if err := cl.Store(e15Name(i, f), e15Payload(i, f, 2), wait); err != nil {
						return fmt.Errorf("client%02d overwrite: %w", i, err)
					}
					cl.SetSkip(nil)
				}
				// Graceful goodbye on every dialed session, so phase 1
				// drains with no connection state left ticking anywhere.
				for _, fc := range cl.Close() {
					for fc.Conn().State() != pup.StateClosed {
						m.Sync()
						worked, err := fc.Poll()
						if err != nil {
							return err
						}
						if !worked {
							m.Idle()
						}
					}
				}
				return nil
			},
		})
	}
	if err := eng1.Run(); err != nil {
		return nil, fmt.Errorf("e15 load phase: %w", err)
	}

	// ---- Between phases: rot strikes one victim replica per shard, on
	// user-data sectors only (leaders stay sound so every file still opens).
	rotted := 0
	for s := 0; s < e15Shards; s++ {
		victim := c.Replicas[s*e15Replicas+s%e15Replicas]
		struck := victim.Drive().Rot(sim.NewRand(uint64(1500+s)), e15RotSectors,
			func(lbl disk.Label) bool {
				return !lbl.FID.IsDirectory() && lbl.FID >= disk.FirstUserFID && lbl.PageNum >= 1
			})
		rotted += len(struck)
	}
	if rotted == 0 {
		return nil, fmt.Errorf("e15: rot struck no sectors; nothing to audit")
	}

	// ---- Phase 2: the audit. Every replica is a scavenging daemon; the
	// fleet drains only when every one of them has seen quiet clean rounds —
	// i.e. when every divergence this experiment manufactured is healed.
	eng2 := fleet.New(fleet.Workers(workers), fleet.Medium(wire))
	for g, r := range c.Replicas {
		r := r
		startAt := r.Clock().Now() + 10*time.Millisecond + time.Duration(g)*e15AuditStagger
		eng2.Add(fleet.MachineConfig{
			Name:     r.Name(),
			Clock:    r.Clock(),
			Stations: r.Stations(),
			Daemon:   true,
			StartAt:  startAt,
			Program:  r.AuditProgram(startAt),
		})
	}
	if err := eng2.Run(); err != nil {
		return nil, fmt.Errorf("e15 audit phase: %w", err)
	}

	// ---- Offline verification, straight off every pack: the replicated
	// namespace must hold every file at its final version everywhere.
	filesLost, bytesCorrupted := 0, 0
	for i := 0; i < clients; i++ {
		for f := 0; f < e15Files; f++ {
			name := e15Name(i, f)
			shard := c.Place.Shard(name)
			data := want[name]
			for idx := 0; idx < e15Replicas; idx++ {
				r := c.Replicas[shard*e15Replicas+idx]
				got, err := cluster.ReadLocal(r.FS(), name)
				if err != nil {
					filesLost++
					continue
				}
				if len(got) != len(data) {
					bytesCorrupted += len(data)
					continue
				}
				for j := range got {
					if got[j] != data[j] {
						bytesCorrupted++
					}
				}
			}
		}
	}

	var simEnd time.Duration
	maxHealRound := 0
	for _, r := range c.Replicas {
		if t := r.Clock().Now(); t > simEnd {
			simEnd = t
		}
		if hr := r.LastHealRound(); hr > maxHealRound {
			maxHealRound = hr
		}
	}
	steps := eng1.Steps() + eng2.Steps()
	divergence := counter("cluster.divergence")
	heals := counter("cluster.heal")
	rounds := counter("cluster.round")
	if divergence == 0 {
		return nil, fmt.Errorf("e15: no divergence detected despite %d rotted sectors and the skipped overwrites", rotted)
	}

	res := &Result{
		ID:    "E15",
		Title: "sharded cluster: replicated stores, rot, and the distributed Scavenger",
		Claim: "§3.5 across machines: replicas audit each other back to byte-identical packs",
	}
	res.add("cluster", "%d shards × %d replicas, %d client machines, %d-worker windowed schedule",
		e15Shards, e15Replicas, clients, workers)
	res.add("client sessions", "%d fileserver sessions at 10%% wire loss", sessions)
	res.add("manufactured damage", "%d rotted sectors + skipped overwrites on even clients", rotted)
	res.add("audit verdict", "%d divergent observations, %d heals over %d rounds", divergence, heals, rounds)
	res.add("end state", "%d files lost, %d bytes corrupted (want 0 / 0)", filesLost, bytesCorrupted)
	res.add("scheduler activations", "%d over %.3f s simulated", steps, simEnd.Seconds())
	res.metric("machines", float64(len(c.Replicas)+clients))
	res.metric("sessions", float64(sessions))
	res.metric("files_lost", float64(filesLost))
	res.metric("bytes_corrupted", float64(bytesCorrupted))
	res.metric("divergence_detected", float64(divergence))
	res.metric("heals", float64(heals))
	res.metric("audit_rounds_to_heal", float64(maxHealRound))
	res.metric("sim_seconds", simEnd.Seconds())
	res.metric("scheduler_steps", float64(steps))
	res.metric("retransmits", float64(counter("pup.retransmit")))
	return res, nil
}
