package experiments

import (
	"strings"
	"testing"
)

// Each experiment must run, produce its table, and land inside the loose
// bands that make it a faithful reproduction of the paper's claim. The
// virtual clock and seeded PRNG make every value deterministic, so these
// bounds are regression tripwires, not flaky thresholds.

func check(t *testing.T, r *Result, metric string, lo, hi float64) {
	t.Helper()
	v, ok := r.Metrics[metric]
	if !ok {
		t.Fatalf("%s: metric %q missing (have %v)", r.ID, metric, r.Metrics)
	}
	if v < lo || v > hi {
		t.Errorf("%s: %s = %.3f, want within [%.3f, %.3f]", r.ID, metric, v, lo, hi)
	}
}

func TestE1RawTransfer(t *testing.T) {
	r, err := E1RawTransfer()
	if err != nil {
		t.Fatal(err)
	}
	// "about one second" for 64K words.
	check(t, r, "sim_seconds_64kwords", 0.5, 2.0)
	check(t, r, "words_per_sec", 30_000, 80_000)
}

func TestE2AllocFreeCost(t *testing.T) {
	r, err := E2AllocFreeCost()
	if err != nil {
		t.Fatal(err)
	}
	// "costs a disk revolution each time a page is allocated or freed".
	check(t, r, "alloc_overhead_revs", 0.9, 1.1)
	check(t, r, "free_overhead_revs", 0.9, 1.1)
}

func TestE3Scavenge(t *testing.T) {
	r, err := E3Scavenge()
	if err != nil {
		t.Fatal(err)
	}
	// "about a minute for a 2.5 megabyte disk": same order of magnitude.
	check(t, r, "scavenge_seconds_Diablo31", 10, 120)
	check(t, r, "scavenge_seconds_Trident", 5, 120)
}

func TestE4Compaction(t *testing.T) {
	r, err := E4Compaction()
	if err != nil {
		t.Fatal(err)
	}
	// "an order of magnitude": the two scatter regimes bracket 10x.
	check(t, r, "speedup", 4, 20)
	check(t, r, "aged_speedup", 8, 25)
}

func TestE5HintLadder(t *testing.T) {
	r, err := E5HintLadder()
	if err != nil {
		t.Fatal(err)
	}
	direct := r.Metrics["ms_direct_hint"]
	chase := r.Metrics["ms_link_chase"]
	kth := r.Metrics["ms_kth_page"]
	fv := r.Metrics["ms_fv_lookup"]
	scav := r.Metrics["ms_scavenge"]
	if !(direct < kth && kth < chase && chase < fv && fv < scav) {
		t.Errorf("ladder not ordered: direct=%.0f kth=%.0f chase=%.0f fv=%.0f scavenge=%.0f",
			direct, kth, chase, fv, scav)
	}
	// A correct hint is a single disk access: well under two revolutions.
	check(t, r, "ms_direct_hint", 1, 80)
}

func TestE6WorldSwap(t *testing.T) {
	r, err := E6WorldSwap()
	if err != nil {
		t.Fatal(err)
	}
	// "requires about a second".
	check(t, r, "outload_seconds", 0.5, 3)
	check(t, r, "inload_seconds", 0.5, 3)
}

func TestE7Junta(t *testing.T) {
	r, err := E7Junta()
	if err != nil {
		t.Fatal(err)
	}
	full := r.Metrics["full_resident_words"]
	freed := r.Metrics["max_words_freed"]
	if freed >= full {
		t.Errorf("freed %v >= resident %v: level 1 must stay", freed, full)
	}
	if full-freed > 2048 {
		t.Errorf("resident floor %v too big: InLoad/OutLoad is about 900 words", full-freed)
	}
}

func TestE8Robustness(t *testing.T) {
	r, err := E8Robustness()
	if err != nil {
		t.Fatal(err)
	}
	check(t, r, "wild_writes_rejected_pct", 100, 100)
	check(t, r, "undamaged_recovery_pct", 100, 100)
	if r.Metrics["map_lie_retries"] < 1 {
		t.Error("map lies cost no retries — the experiment is not exercising the check")
	}
}

func TestE9InstalledHints(t *testing.T) {
	r, err := E9InstalledHints()
	if err != nil {
		t.Fatal(err)
	}
	check(t, r, "warm_advantage", 1.5, 20)
	check(t, r, "hints_failed_after_delete", 1, 1)
}

func TestE10LoadedServer(t *testing.T) {
	r, err := E10LoadedServer()
	if err != nil {
		t.Fatal(err)
	}
	// 8 clients over a 10%-loss wire: the run errors internally on any
	// corruption or on zero retransmissions, so the bands here guard the
	// throughput shape. Retransmits are bounded: well under one per sent
	// packet even with every duplicate and corruption counted against us.
	check(t, r, "goodput_words_per_sec", 300, 20_000)
	check(t, r, "retransmits", 1, 2_000)
	check(t, r, "sim_seconds", 1, 120)
}

func TestE11LossSweep(t *testing.T) {
	r, err := E11LossSweep()
	if err != nil {
		t.Fatal(err)
	}
	g0 := r.Metrics["goodput_words_per_sec_loss0"]
	g20 := r.Metrics["goodput_words_per_sec_loss20"]
	if g0 <= 0 || g20 <= 0 {
		t.Fatalf("sweep produced non-positive goodput: %v", r.Metrics)
	}
	// Loss must cost something, but the transport must keep most of the
	// goodput at 20% loss — that is the whole point of selective repeat.
	if g20 >= g0 {
		t.Errorf("goodput at 20%% loss (%.0f) not below lossless (%.0f)", g20, g0)
	}
	if g20 < g0/4 {
		t.Errorf("goodput collapsed under loss: %.0f vs lossless %.0f", g20, g0)
	}
	// The transport-v2 floor: go-back-N measured ~979 words/s at 10% loss
	// and ~957 at 20%; selective repeat + AIMD must hold at least 5x that.
	check(t, r, "goodput_words_per_sec_loss10", 4900, 1e9)
	check(t, r, "goodput_words_per_sec_loss20", 4800, 1e9)
	// A handful of retransmits at 0% loss are genuine RTOs: one session's
	// packets waiting out another session's disk write. They must stay a
	// handful.
	check(t, r, "retransmits_loss0", 0, 10)
	check(t, r, "retransmits_loss20", 1, 500)
	// The new lower-better metrics: resent words track the loss rate (not
	// the window size, as under go-back-N), and the wire is mostly idle —
	// the file server is disk-bound, which is the honest headline.
	check(t, r, "retransmitted_words_ratio_loss0", 0, 0.05)
	check(t, r, "retransmitted_words_ratio_loss20", 0.1, 0.5)
	check(t, r, "wire_idle_frac_loss0", 0.5, 1)
	check(t, r, "wire_idle_frac_loss20", 0.5, 1)
}

func TestE13Saturation(t *testing.T) {
	r, err := E13Saturation()
	if err != nil {
		t.Fatal(err)
	}
	// The run errors internally on any corrupted delivery; the metrics
	// guard fairness and liveness. Jain's index >= 0.9 is the acceptance
	// bar: every one of the 24 flows got a comparable share.
	check(t, r, "jain_fairness_pct", 90, 100)
	check(t, r, "goodput_words_per_sec_total", 50_000, 1e9)
	if r.Metrics["retransmits"] < 1 {
		t.Error("10% loss produced no retransmissions — the fault medium is not wired in")
	}
}

func TestE12CrashSweep(t *testing.T) {
	r, err := E12CrashSweep()
	if err != nil {
		t.Fatal(err)
	}
	// Every crash point of both workloads, clean and torn, must recover.
	check(t, r, "violations_total", 0, 0)
	check(t, r, "recovered_pct", 100, 100)
	// The journaled-insert window alone is ~48 writes; compact adds ~125.
	check(t, r, "crash_points_total", 100, 1000)
}

func TestAllRunsEveryExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	results, err := All()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 14 {
		t.Fatalf("All returned %d results", len(results))
	}
	for _, r := range results {
		tbl := r.Table()
		if !strings.Contains(tbl, r.ID) || !strings.Contains(tbl, "paper:") {
			t.Errorf("%s: malformed table:\n%s", r.ID, tbl)
		}
		if len(r.Rows) == 0 {
			t.Errorf("%s: no rows", r.ID)
		}
	}
}
