package experiments

// E13 saturates one ether segment: two dozen stations each push a sustained
// stream at a single sink over a 10%-loss wire. The paper's open-system
// claim (§1) implies the shared wire is a commons — the transport must keep
// every flow live and give each a fair share without any central allocator,
// exactly what AIMD congestion control promises. Fairness is reported as
// Jain's index over per-flow goodput; the experiment fails outright if any
// delivered word differs from what its sender put in.

import (
	"errors"
	"fmt"
	"time"

	"altoos/internal/ether"
	"altoos/internal/fleet"
	"altoos/internal/pup"
	"altoos/internal/sim"
	"altoos/internal/trace"
)

const (
	e13Senders  = 24
	e13Messages = 64
	// Each message fills one maximal packet: saturation means full frames.
	e13MsgWords = pup.MaxData
)

// e13Word is the deterministic content pattern; the sink revalidates every
// word of every delivered message against it.
func e13Word(sender, msg, i int) ether.Word {
	return ether.Word((sender*31 + msg*7 + i*3) & 0xFFFF)
}

// E13Saturation runs the saturation + fairness experiment.
func E13Saturation() (*Result, error) { return e13Saturation(nil) }

func e13Saturation(tr *trace.Recorder) (*Result, error) {
	rec := tr
	if rec == nil {
		rec = trace.New(1 << 16)
	}
	return e13Run(func(string) *trace.Recorder { return rec })
}

// e13Scoped is the fleet-aware entry point (cmd/altoscope): the wire, the
// sink and all 24 senders each trace into their own recorder.
func e13Scoped(machine func(string) *trace.Recorder) (*Result, error) {
	return e13Run(machine)
}

func e13Run(machine func(string) *trace.Recorder) (*Result, error) {
	var recs []*trace.Recorder
	seen := map[*trace.Recorder]bool{}
	collect := func(name string) *trace.Recorder {
		r := machine(name)
		if r != nil && !seen[r] {
			seen[r] = true
			recs = append(recs, r)
		}
		return r
	}
	counter := func(name string) int64 {
		var total int64
		for _, rc := range recs {
			total += rc.Counter(name)
		}
		return total
	}

	clock := sim.NewClock()
	wire := ether.New(clock)
	wire.SetRecorder(collect("wire"))
	sinkSt, err := wire.Attach(1)
	if err != nil {
		return nil, err
	}
	sinkSt.SetRecorder(collect("sink"))
	sink := pup.NewEndpoint(sinkSt, pup.Config{})
	sink.Listen()
	wire.InjectFaults(ether.FaultConfig{
		Seed:    13,
		Drop:    ether.Rate{Num: 1, Den: 10},
		Corrupt: ether.Rate{Num: 1, Den: 50},
	})

	type sender struct {
		ep   *pup.Endpoint
		conn *pup.Conn
		sent int
	}
	senders := make([]*sender, e13Senders)
	for i := range senders {
		st, err := wire.Attach(ether.Addr((2 + i) & 0xFFFF))
		if err != nil {
			return nil, err
		}
		mrec := collect(fmt.Sprintf("sender%02d", i))
		ep := pup.NewEndpoint(st, pup.Config{Seed: uint64(i + 1)})
		conn, err := ep.Dial(1)
		if err != nil {
			return nil, err
		}
		// One trace flow per stream, allocated on the sender's own machine,
		// carried in every header — retransmissions included.
		if mrec != nil {
			conn.SetFlow(mrec.NextFlow())
		} else {
			conn.SetFlow(int64(i + 1))
		}
		senders[i] = &sender{ep: ep, conn: conn}
	}

	// Drive everything as actors on a coupled fleet engine: the sink
	// accepts and drains, each sender keeps its window full until its
	// stream is done, one activation per machine per round in creation
	// order — the hand-written poll loop this replaces. Per-flow completion
	// is the sim time the sink delivered the flow's last message, in order
	// and intact.
	accepted := make([]*pup.Conn, e13Senders)
	delivered := make([]int, e13Senders)
	completion := make([]time.Duration, e13Senders)
	finished, corrupt := 0, 0
	msg := make([]ether.Word, e13MsgWords)
	stop := false
	eng := fleet.NewCoupled(fleet.AfterRound(func() {
		if finished >= e13Senders {
			stop = true
		}
	}))
	eng.Add(fleet.MachineConfig{Name: "sink", Program: func(m *fleet.Machine) error {
		for !stop {
			if _, err := sink.Poll(); err != nil {
				return err
			}
			for {
				conn, ok := sink.Accept()
				if !ok {
					break
				}
				accepted[int(conn.Remote())-2] = conn
			}
			for i, conn := range accepted {
				if conn == nil {
					continue
				}
				for {
					data, ok := conn.Recv()
					if !ok {
						break
					}
					if len(data) != e13MsgWords {
						corrupt++
					} else {
						for j, w := range data {
							if w != e13Word(i, delivered[i], j) {
								corrupt++
								break
							}
						}
					}
					delivered[i]++
					if delivered[i] == e13Messages {
						completion[i] = clock.Now()
						finished++
					}
				}
			}
			m.Yield()
		}
		return nil
	}})
	for i, s := range senders {
		i, s := i, s
		eng.Add(fleet.MachineConfig{Name: fmt.Sprintf("sender%02d", i), Program: func(m *fleet.Machine) error {
			for !stop {
				if _, err := s.ep.Poll(); err != nil {
					return err
				}
				for s.sent < e13Messages && s.conn.Avail() > 0 {
					for j := range msg {
						msg[j] = e13Word(i, s.sent, j)
					}
					if err := s.conn.Send(msg); err != nil {
						return fmt.Errorf("e13 sender %d: %w", i, err)
					}
					s.sent++
				}
				m.Yield()
			}
			return nil
		}})
	}
	if err := eng.Run(); err != nil {
		if errors.Is(err, fleet.ErrRoundCap) {
			return nil, fmt.Errorf("e13: saturation run never completed (%d/%d flows)", finished, e13Senders)
		}
		return nil, err
	}
	total := clock.Now()
	if corrupt != 0 {
		return nil, fmt.Errorf("e13: %d corrupted deliveries leaked through the transport", corrupt)
	}

	// Tear down cleanly so the conns' final state is part of the trace:
	// senders first, sink last, the legacy round order.
	for _, s := range senders {
		if err := s.conn.Close(); err != nil {
			return nil, err
		}
	}
	open, closed := false, false
	down := fleet.NewCoupled(fleet.MaxRounds(1_000_000), fleet.AfterRound(func() {
		if !open {
			closed = true
		}
		open = false
	}))
	for i, s := range senders {
		s := s
		down.Add(fleet.MachineConfig{Name: fmt.Sprintf("sender%02d", i), Program: func(m *fleet.Machine) error {
			for !closed {
				if _, err := s.ep.Poll(); err != nil {
					return err
				}
				if s.conn.State() != pup.StateClosed {
					open = true
				}
				m.Yield()
			}
			return nil
		}})
	}
	down.Add(fleet.MachineConfig{Name: "sink", Program: func(m *fleet.Machine) error {
		for !closed {
			if _, err := sink.Poll(); err != nil {
				return err
			}
			m.Yield()
		}
		return nil
	}})
	if err := down.Run(); err != nil {
		if errors.Is(err, fleet.ErrRoundCap) {
			return nil, fmt.Errorf("e13: close handshakes never completed")
		}
		return nil, err
	}

	// Per-flow goodput and Jain's fairness index: J = (Σx)² / (n·Σx²),
	// 1.0 when every flow got an equal share, 1/n when one flow starved
	// the rest.
	const flowWords = e13Messages * e13MsgWords
	xs := make([]float64, e13Senders)
	var sum, sumSq float64
	minX, maxX := 0.0, 0.0
	for i, t := range completion {
		xs[i] = flowWords / t.Seconds()
		sum += xs[i]
		sumSq += xs[i] * xs[i]
		if i == 0 || xs[i] < minX {
			minX = xs[i]
		}
		if i == 0 || xs[i] > maxX {
			maxX = xs[i]
		}
	}
	jain := sum * sum / (float64(e13Senders) * sumSq)
	goodput := float64(e13Senders*flowWords) / total.Seconds()
	retrans := counter("pup.retransmit")
	drops := counter("ether.drop")

	res := &Result{
		ID:    "E13",
		Title: "segment saturation: two dozen flows share one lossy wire",
		Claim: "§1: the network is a shared facility — flows must coexist without a central allocator",
	}
	res.add("flows x messages", "%d x %d full packets (%d words each)", e13Senders, e13Messages, e13MsgWords)
	res.add("corrupted deliveries", "%d (checksum + retransmission hid every fault)", corrupt)
	res.add("packets dropped/corrupted by the medium", "%d / %d", drops, counter("ether.corrupt"))
	res.add("retransmissions", "%d", retrans)
	res.add("aggregate goodput", "%.0f words/s over %.2f s simulated", goodput, total.Seconds())
	res.add("per-flow goodput", "min %.0f, max %.0f words/s", minX, maxX)
	res.add("Jain fairness index", "%.4f (1.0 = perfectly fair)", jain)
	res.metric("jain_fairness_pct", 100*jain)
	res.metric("goodput_words_per_sec_total", goodput)
	res.metric("retransmits", float64(retrans))
	return res, nil
}
