package experiments

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"altoos/internal/trace"
)

func TestE14FleetFanIn(t *testing.T) {
	r, err := E14FleetFanIn()
	if err != nil {
		t.Fatal(err)
	}
	// The run errors internally on any corrupted journal page or network
	// payload; the metrics guard the shape. A hundred clients against one
	// disk-bound server queue up minutes of simulated time, and the lossy
	// wire plus the queueing make retransmissions unavoidable.
	check(t, r, "machines", 101, 101)
	check(t, r, "sim_seconds", 10, 1000)
	check(t, r, "scheduler_steps", 1000, 10_000_000)
	check(t, r, "bytes_moved", 100_000, 200_000)
	if r.Metrics["retransmits"] < 1 {
		t.Error("a lossy wire and a backlogged server produced no retransmissions")
	}
}

// e14Snapshot runs the fleet with per-machine recorders and flattens every
// machine's full event stream plus the Result metrics into one string — the
// byte-level artifact the determinism tests compare.
func e14Snapshot(t *testing.T, machines, workers int) string {
	t.Helper()
	names := []string{}
	recs := map[string]*trace.Recorder{}
	r, err := E14FanIn(machines, workers, func(name string) *trace.Recorder {
		rec := trace.New(1 << 14)
		names = append(names, name)
		recs[name] = rec
		return rec
	})
	if err != nil {
		t.Fatalf("E14 (workers=%d): %v", workers, err)
	}
	var b strings.Builder
	sort.Strings(names)
	for _, name := range names {
		rec := recs[name]
		fmt.Fprintf(&b, "== %s events=%d\n", name, rec.Len())
		for _, ev := range rec.Events() {
			fmt.Fprintf(&b, "%d %d %d %s %d %d %d\n", ev.T, ev.Dur, ev.Kind, ev.Name, ev.A0, ev.A1, ev.Flow)
		}
	}
	keys := make([]string, 0, len(r.Metrics))
	for k := range r.Metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "metric %s %v\n", k, r.Metrics[k])
	}
	return b.String()
}

// TestE14Determinism is the subsystem's acceptance gate: the merged
// per-machine trace and every metric of a 20-Alto fan-in are byte-identical
// across repeated runs and across worker-pool widths.
func TestE14Determinism(t *testing.T) {
	const machines = 20
	base := e14Snapshot(t, machines, 1)
	if !strings.Contains(base, "== server") || len(base) < 10_000 {
		t.Fatalf("baseline snapshot implausibly small (%d bytes) — tracing is not wired in", len(base))
	}
	for _, workers := range []int{1, 4, 8} {
		for run := 0; run < 2; run++ {
			got := e14Snapshot(t, machines, workers)
			if got == base {
				continue
			}
			bl, gl := strings.Split(base, "\n"), strings.Split(got, "\n")
			for i := 0; i < len(bl) && i < len(gl); i++ {
				if bl[i] != gl[i] {
					t.Fatalf("workers=%d run=%d diverged at line %d:\nbase: %s\ngot:  %s", workers, run, i, bl[i], gl[i])
				}
			}
			t.Fatalf("workers=%d run=%d diverged in length: %d vs %d lines", workers, run, len(bl), len(gl))
		}
	}
}
