package experiments

// E14 is the fleet-scale experiment: a hundred Altos, each booting its own
// OS from its own pack, fan in on one file server over a shared lossy
// ether. Every machine is a real actor on the windowed fleet scheduler —
// its own clock, its own station, its own disk — and the schedule is
// byte-identically replayable across worker counts, so the experiment
// doubles as the determinism gate for internal/fleet. The paper's
// single-user machines (§1) only become a system when a building's worth of
// them share servers; this is that building.

import (
	"bytes"
	"fmt"
	"io"
	"time"

	"altoos/internal/core"
	"altoos/internal/dir"
	"altoos/internal/disk"
	"altoos/internal/ether"
	"altoos/internal/file"
	"altoos/internal/fileserver"
	"altoos/internal/fleet"
	"altoos/internal/pup"
	"altoos/internal/sim"
	"altoos/internal/trace"
)

const (
	// e14Machines is the default fleet size: one server plus this many
	// client Altos.
	e14Machines = 100
	// e14Workers is the scoped (cmd/altoscope, cmd/altofleet) worker-pool
	// width; the schedule is identical at any width.
	e14Workers = 8
	// e14BootStagger separates the client boot wakes so the event queue
	// tie-breaks on time, not only on machine sequence.
	e14BootStagger = 160 * time.Nanosecond
	// e14LocalPages is the local journal each Alto writes and re-reads on
	// its own disk before touching the network.
	e14LocalPages = 3
)

// e14MiniGeometry is each client Alto's pack: Diablo31 head and arm timing
// on a short stack of cylinders, so a hundred Formats stay cheap while every
// seek and rotation still costs real simulated time.
func e14MiniGeometry() disk.Geometry {
	g := disk.Diablo31()
	g.Name = "Diablo31/16"
	g.Cylinders = 16
	return g
}

// e14Word is the deterministic content pattern for machine i's pages and
// its stored file.
func e14Word(machine, page, i int) disk.Word {
	return disk.Word((machine*37 + page*11 + i*3) & 0xFFFF)
}

// e14Payload builds machine i's network payload: sizes vary per machine so
// the server sees a mix of transfer lengths.
func e14Payload(i int) []byte {
	data := make([]byte, 300+(i%7)*90)
	for j := range data {
		data[j] = byte((i*13 + j*7) & 0xFF)
	}
	return data
}

// E14FleetFanIn runs the experiment at its default scale with tracing off.
func E14FleetFanIn() (*Result, error) { return E14FanIn(e14Machines, 1, nil) }

// e14FleetFanIn is the registry entry: one shared recorder, one worker (a
// shared recorder is only safe when the window executes serially).
func e14FleetFanIn(rec *trace.Recorder) (*Result, error) {
	if rec == nil {
		return E14FanIn(e14Machines, 1, nil)
	}
	return E14FanIn(e14Machines, 1, func(string) *trace.Recorder { return rec })
}

// e14Scoped is the fleet-aware entry (cmd/altoscope, cmd/altofleet): one
// recorder per machine, and the full worker pool — per-machine recorders are
// only ever written by their own machine, so parallel windows are safe.
func e14Scoped(machine func(string) *trace.Recorder) (*Result, error) {
	return E14FanIn(e14Machines, e14Workers, machine)
}

// E14FanIn runs machines client Altos against one file server on a windowed
// fleet engine with the given worker-pool width. machine maps a machine
// name to its trace recorder; nil gives every machine a small private
// recorder (counters only). Every metric in the Result is a function of the
// schedule alone — wall-clock throughput belongs to the caller's stopwatch.
func E14FanIn(machines, workers int, machine func(string) *trace.Recorder) (*Result, error) {
	if machines < 1 {
		return nil, fmt.Errorf("e14: need at least 1 client machine, got %d", machines)
	}
	if machine == nil {
		machine = func(string) *trace.Recorder { return trace.New(1 << 10) }
	}
	var recs []*trace.Recorder
	seen := map[*trace.Recorder]bool{}
	collect := func(name string) *trace.Recorder {
		r := machine(name)
		if r != nil && !seen[r] {
			seen[r] = true
			recs = append(recs, r)
		}
		return r
	}
	counter := func(name string) int64 {
		var total int64
		for _, rc := range recs {
			total += rc.Counter(name)
		}
		return total
	}

	// The wire is shared; the fleet engine switches it into fleet mode and
	// feeds it each window's horizon. The loss rates are modest — enough to
	// exercise retransmission on a hundred concurrent flows without turning
	// the run into a retransmission benchmark.
	wire := ether.New(nil)
	wire.SetRecorder(collect("wire"))
	wire.InjectFaults(ether.FaultConfig{
		Seed:    14,
		Drop:    ether.Rate{Num: 1, Den: 200},
		Corrupt: ether.Rate{Num: 1, Den: 400},
	})
	eng := fleet.New(fleet.Workers(workers), fleet.Medium(wire))

	// The server: a full Diablo31 behind a formatted file system, serving
	// as a daemon — it runs until every client is done and the engine
	// drains it.
	var clocks []*sim.Clock
	srvClock := sim.NewClock()
	clocks = append(clocks, srvClock)
	srvRec := collect("server")
	srvSt, err := wire.Attach(1)
	if err != nil {
		return nil, err
	}
	srvSt.SetClock(srvClock)
	srvSt.SetRecorder(srvRec)
	srvDrv, err := disk.NewDrive(disk.Diablo31(), 1, srvClock)
	if err != nil {
		return nil, err
	}
	srvDrv.SetRecorder(srvRec)
	srvFS, err := file.Format(srvDrv)
	if err != nil {
		return nil, err
	}
	if _, err := dir.InitRoot(srvFS); err != nil {
		return nil, err
	}
	srv := fileserver.NewServer(srvFS, pup.NewEndpoint(srvSt, pup.Config{}))
	// The server was up before the building woke: formatting its pack is
	// not part of the experiment's timeline, so its clock restarts at zero
	// and the serve loop is the whole program.
	srvClock.Reset()
	eng.Add(fleet.MachineConfig{
		Name:    "server",
		Clock:   srvClock,
		Station: srvSt,
		Daemon:  true,
		Program: func(m *fleet.Machine) error {
			for !m.Draining() {
				m.Sync()
				worked, err := srv.Poll()
				if err != nil {
					return err
				}
				if !worked {
					m.Idle()
				}
			}
			return nil
		},
	})

	// The clients: each Alto boots its own OS from its own mini pack, runs
	// a local file workload, then stores its payload on the server, fetches
	// it back, verifies it byte for byte, and closes. Clocks, stations and
	// recorders are made here, in creation order; everything else happens
	// inside the machine's own program, on its own time.
	for i := 0; i < machines; i++ {
		i := i
		clk := sim.NewClock()
		clocks = append(clocks, clk)
		st, err := wire.Attach(ether.Addr((2 + i) & 0xFFFF))
		if err != nil {
			return nil, err
		}
		st.SetClock(clk)
		mrec := collect(fmt.Sprintf("alto%03d", i))
		st.SetRecorder(mrec)
		eng.Add(fleet.MachineConfig{
			Name:    fmt.Sprintf("alto%03d", i),
			Clock:   clk,
			Station: st,
			StartAt: time.Duration(i+1) * e14BootStagger,
			Program: func(m *fleet.Machine) error {
				// Boot: format the local pack, install a root directory,
				// and bring up the OS proper on the drive.
				drv, err := disk.NewDrive(e14MiniGeometry(), disk.Word((2+i)&0xFFFF), clk)
				if err != nil {
					return err
				}
				drv.SetRecorder(mrec)
				if _, err := file.Format(drv); err != nil {
					return err
				}
				sys, err := core.New(core.Config{Drive: drv, Display: io.Discard})
				if err != nil {
					return fmt.Errorf("alto%03d boot: %w", i, err)
				}
				if _, err := dir.InitRoot(sys.FS); err != nil {
					return err
				}
				root, err := dir.OpenRoot(sys.FS)
				if err != nil {
					return err
				}

				// Local workload: a journal written and re-read on the
				// machine's own disk, all before the first packet.
				f, err := sys.FS.Create("journal")
				if err != nil {
					return err
				}
				var page [disk.PageWords]disk.Word
				for pn := 1; pn <= e14LocalPages; pn++ {
					for w := range page {
						page[w] = e14Word(i, pn, w)
					}
					if err := f.WritePage(disk.Word(pn), &page, disk.PageBytes); err != nil {
						return err
					}
				}
				if err := f.Sync(); err != nil {
					return err
				}
				if err := root.Insert("journal", f.FN()); err != nil {
					return err
				}
				for pn := 1; pn <= e14LocalPages; pn++ {
					if _, err := f.ReadPage(disk.Word(pn), &page); err != nil {
						return err
					}
					for w := range page {
						if page[w] != e14Word(i, pn, w) {
							return fmt.Errorf("alto%03d: journal page %d word %d corrupt", i, pn, w)
						}
					}
				}

				// Fan-in: store the payload on the server, fetch it back,
				// verify, close. Sync before every network observation;
				// Idle when a poll moved nothing. The server is disk-bound
				// (one rotation per page, sessions served in arrival order),
				// so a whole building fanning in queues up minutes of disk
				// time — the clients' retry budget must cover their place
				// in that queue, or the transport gives up on a server that
				// is merely busy.
				cl := fileserver.NewClient(pup.NewEndpoint(st, pup.Config{
					Seed:       uint64(i + 1),
					MaxRTO:     time.Second,
					MaxRetries: 50 + 3*machines,
				}))
				if err := cl.Connect(1); err != nil {
					return err
				}
				poll := func() error {
					for !cl.Done() {
						m.Sync()
						worked, err := cl.Poll()
						if err != nil {
							return err
						}
						if !worked {
							m.Idle()
						}
					}
					_, err := cl.Result()
					return err
				}
				data := e14Payload(i)
				name := fmt.Sprintf("alto%03d", i)
				if err := cl.Store(name, data); err != nil {
					return err
				}
				if err := poll(); err != nil {
					return fmt.Errorf("alto%03d store: %w", i, err)
				}
				if err := cl.Fetch(name); err != nil {
					return err
				}
				if err := poll(); err != nil {
					return fmt.Errorf("alto%03d fetch: %w", i, err)
				}
				got, err := cl.Result()
				if err != nil {
					return err
				}
				if !bytes.Equal(got, data) {
					return fmt.Errorf("alto%03d: fetched %d bytes differ from the %d stored", i, len(got), len(data))
				}
				if err := cl.Close(); err != nil {
					return err
				}
				for cl.Conn().State() != pup.StateClosed {
					m.Sync()
					worked, err := cl.Poll()
					if err != nil {
						return err
					}
					if !worked {
						m.Idle()
					}
				}
				return nil
			},
		})
	}

	if err := eng.Run(); err != nil {
		return nil, err
	}

	// Every metric below is deterministic: simulated times, activation
	// counts and counters are functions of the schedule, never of the host.
	var simEnd time.Duration
	for _, c := range clocks {
		if t := c.Now(); t > simEnd {
			simEnd = t
		}
	}
	var bytesMoved int64
	for i := 0; i < machines; i++ {
		bytesMoved += 2 * int64(len(e14Payload(i))) // stored + fetched
	}
	steps := eng.Steps()
	retrans := counter("pup.retransmit")
	drops := counter("ether.drop")
	sends := counter("ether.send")

	res := &Result{
		ID:    "E14",
		Title: "fleet fan-in: a hundred Altos boot and share one file server",
		Claim: "§1: single-user machines plus one shared wire scale to a building-sized system",
	}
	res.add("fleet", "%d client Altos + 1 server, %d-worker windowed schedule", machines, workers)
	res.add("per-machine boot", "format, OS bring-up, %d-page journal on a private %s", e14LocalPages, e14MiniGeometry().Name)
	res.add("data through the server", "%d bytes stored and fetched back intact", bytesMoved)
	res.add("packets sent / dropped by the medium", "%d / %d", sends, drops)
	res.add("retransmissions", "%d", retrans)
	res.add("scheduler activations", "%d over %.3f s simulated", steps, simEnd.Seconds())
	res.metric("machines", float64(machines+1))
	res.metric("sim_seconds", simEnd.Seconds())
	res.metric("scheduler_steps", float64(steps))
	res.metric("retransmits", float64(retrans))
	res.metric("bytes_moved", float64(bytesMoved))
	return res, nil
}
