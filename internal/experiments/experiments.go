// Package experiments regenerates every quantitative claim in the paper's
// text — its "tables and figures". The paper is a design paper with no
// numbered exhibits, so each embedded claim is promoted to an experiment
// E1..E9 (see DESIGN.md §3 and EXPERIMENTS.md for the index). Each
// experiment builds the workload it needs from scratch, runs it on the
// simulated machine, and reports the measured shape next to the paper's
// sentence.
//
// All times are simulated (the virtual clock the disk, CPU and network
// models advance); wall-clock time on the host is irrelevant to the claims.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"altoos/internal/dir"
	"altoos/internal/disk"
	"altoos/internal/file"
	"altoos/internal/sim"
	"altoos/internal/trace"
)

// Row is one line of an experiment's table.
type Row struct {
	Label string
	Value string
}

// Result is a completed experiment.
type Result struct {
	ID    string
	Title string
	Claim string // the paper's sentence, abridged
	Rows  []Row
	// Metrics carries machine-readable values for benchmarks.
	Metrics map[string]float64
}

// Table renders the result for a terminal.
func (r *Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", r.ID, r.Title)
	fmt.Fprintf(&b, "  paper: %s\n", r.Claim)
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-44s %s\n", row.Label, row.Value)
	}
	return b.String()
}

func (r *Result) add(label, format string, args ...any) {
	r.Rows = append(r.Rows, Row{Label: label, Value: fmt.Sprintf(format, args...)})
}

func (r *Result) metric(name string, v float64) {
	if r.Metrics == nil {
		r.Metrics = map[string]float64{}
	}
	r.Metrics[name] = v
}

// rig builds a formatted drive + fs + root for experiments.
type rig struct {
	drive *disk.Drive
	fs    *file.FS
	root  *dir.Directory
}

func newRig(g disk.Geometry, rec *trace.Recorder) (*rig, error) {
	d, err := disk.NewDrive(g, 1, nil)
	if err != nil {
		return nil, err
	}
	d.SetRecorder(rec)
	fs, err := file.Format(d)
	if err != nil {
		return nil, err
	}
	root, err := dir.InitRoot(fs)
	if err != nil {
		return nil, err
	}
	return &rig{drive: d, fs: fs, root: root}, nil
}

// addFile creates a named file with n full data pages of deterministic
// content plus the trailing partial page.
func (r *rig) addFile(name string, pages int) (*file.File, error) {
	f, err := r.fs.Create(name)
	if err != nil {
		return nil, err
	}
	var page [disk.PageWords]disk.Word
	for pn := 1; pn <= pages; pn++ {
		for i := range page {
			page[i] = disk.Word((pn*31 + i) & 0xFFFF) // test-pattern fill: truncation is the point
		}
		if err := f.WritePage(disk.Word(pn), &page, disk.PageBytes); err != nil {
			return nil, err
		}
	}
	if err := f.Sync(); err != nil {
		return nil, err
	}
	if err := r.root.Insert(name, f.FN()); err != nil {
		return nil, err
	}
	return f, nil
}

// readSequential reads pages 1..last of f, returning simulated time per page.
func (r *rig) readSequential(f *file.File) (time.Duration, int, error) {
	lastPN := f.LastPN()
	start := r.drive.Clock().Now()
	var buf [disk.PageWords]disk.Word
	for pn := disk.Word(1); pn <= lastPN; pn++ {
		if _, err := f.ReadPage(pn, &buf); err != nil {
			return 0, 0, err
		}
	}
	return r.drive.Clock().Now() - start, int(lastPN), nil
}

// ms formats a duration as milliseconds.
func ms(d time.Duration) float64 { return float64(d) / 1e6 }

// secs formats a duration as seconds.
func secs(d time.Duration) float64 { return d.Seconds() }

var _ = sim.NewRand // keep the import set stable across experiment files

// Runner names one experiment and its recorder-threading entry point, for
// drivers (cmd/altotrace) that run experiments by id with tracing on.
// Scoped, when set, is the fleet-aware variant: it draws one recorder per
// simulated machine from the supplied function (cmd/altoscope passes
// scope.Fleet.Machine) instead of tracing everything into one stream.
type Runner struct {
	ID     string
	Title  string
	Run    func(rec *trace.Recorder) (*Result, error)
	Scoped func(machine func(string) *trace.Recorder) (*Result, error)
}

// registry lists every experiment in order. The Run functions are the
// unexported recorder-taking variants the public E1..E9 wrappers call.
var registry = []Runner{
	{ID: "e1", Title: "raw sequential transfer", Run: e1RawTransfer},
	{ID: "e2", Title: "allocation and free cost", Run: e2AllocFreeCost},
	{ID: "e3", Title: "scavenge time by disk size", Run: e3Scavenge},
	{ID: "e4", Title: "compaction speedup", Run: e4Compaction},
	{ID: "e5", Title: "hint-ladder costs", Run: e5HintLadder},
	{ID: "e6", Title: "world-swap timing", Run: e6WorldSwap},
	{ID: "e7", Title: "Junta memory reclaim", Run: e7Junta},
	{ID: "e8", Title: "fault injection", Run: e8Robustness},
	{ID: "e9", Title: "installed hints", Run: e9InstalledHints},
	{ID: "e10", Title: "loaded file server over a lossy wire", Run: e10LoadedServer, Scoped: e10Scoped},
	{ID: "e11", Title: "goodput vs. packet loss", Run: e11LossSweep},
	{ID: "e12", Title: "exhaustive crash-point sweep", Run: e12CrashSweep},
	{ID: "e13", Title: "segment saturation and fairness", Run: e13Saturation, Scoped: e13Scoped},
	{ID: "e14", Title: "fleet fan-in: a hundred Altos on one file server", Run: e14FleetFanIn, Scoped: e14Scoped},
	{ID: "e15", Title: "sharded cluster with a distributed Scavenger", Run: e15ClusterAudit, Scoped: e15Scoped},
}

// IDs lists the experiment ids Run accepts, in order.
func IDs() []string {
	out := make([]string, len(registry))
	for i, r := range registry {
		out[i] = r.ID
	}
	return out
}

// Run executes the experiment with the given id (case-insensitive), with
// every drive it builds emitting into rec (nil: tracing off).
func Run(id string, rec *trace.Recorder) (*Result, error) {
	for _, r := range registry {
		if strings.EqualFold(r.ID, id) {
			return r.Run(rec)
		}
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q (have %s)", id, strings.Join(IDs(), ", "))
}

// RunScoped executes the experiment with per-machine recorders drawn from
// machine (name → recorder; scope.Fleet.Machine is the canonical source).
// Experiments without a fleet-aware variant run whole on one machine named
// "machine", so every experiment remains drivable from cmd/altoscope.
func RunScoped(id string, machine func(string) *trace.Recorder) (*Result, error) {
	for _, r := range registry {
		if strings.EqualFold(r.ID, id) {
			if r.Scoped != nil {
				return r.Scoped(machine)
			}
			return r.Run(machine("machine"))
		}
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q (have %s)", id, strings.Join(IDs(), ", "))
}
