package experiments

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"altoos/internal/trace"
)

// TestE15ClusterAudit runs the cluster experiment at a reduced client count
// and checks the headline acceptance: zero files lost, zero bytes corrupted,
// every manufactured divergence detected and healed within a few rounds.
func TestE15ClusterAudit(t *testing.T) {
	r, err := E15Cluster(8, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	check(t, r, "files_lost", 0, 0)
	check(t, r, "bytes_corrupted", 0, 0)
	check(t, r, "machines", 20, 20)
	if r.Metrics["divergence_detected"] < 1 {
		t.Error("rot and skipped overwrites produced no detected divergence")
	}
	if r.Metrics["heals"] < 1 {
		t.Error("divergence was detected but nothing healed")
	}
	if rounds := r.Metrics["audit_rounds_to_heal"]; rounds < 1 || rounds > 10 {
		t.Errorf("audit_rounds_to_heal = %v, want within [1, 10]", rounds)
	}
	if r.Metrics["retransmits"] < 1 {
		t.Error("a wire losing 10% of its packets produced no retransmissions")
	}
}

// e15Snapshot runs the cluster fleet with per-machine recorders and flattens
// every machine's full event stream plus the Result metrics into one string.
func e15Snapshot(t *testing.T, clients, workers int) string {
	t.Helper()
	names := []string{}
	recs := map[string]*trace.Recorder{}
	r, err := E15Cluster(clients, workers, func(name string) *trace.Recorder {
		rec := trace.New(1 << 14)
		names = append(names, name)
		recs[name] = rec
		return rec
	})
	if err != nil {
		t.Fatalf("E15 (workers=%d): %v", workers, err)
	}
	var b strings.Builder
	sort.Strings(names)
	for _, name := range names {
		rec := recs[name]
		fmt.Fprintf(&b, "== %s events=%d\n", name, rec.Len())
		for _, ev := range rec.Events() {
			fmt.Fprintf(&b, "%d %d %d %s %d %d %d\n", ev.T, ev.Dur, ev.Kind, ev.Name, ev.A0, ev.A1, ev.Flow)
		}
	}
	keys := make([]string, 0, len(r.Metrics))
	for k := range r.Metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "metric %s %v\n", k, r.Metrics[k])
	}
	return b.String()
}

// TestE15Determinism pins the cluster's replay claim: the merged per-machine
// trace — every audit round, every heal, every packet of a two-phase run —
// and every metric are byte-identical across repeated runs and widths.
func TestE15Determinism(t *testing.T) {
	const clients = 6
	base := e15Snapshot(t, clients, 1)
	if !strings.Contains(base, "== shard0/r0") || len(base) < 10_000 {
		t.Fatalf("baseline snapshot implausibly small (%d bytes) — tracing is not wired in", len(base))
	}
	for _, workers := range []int{1, 8} {
		for run := 0; run < 2; run++ {
			got := e15Snapshot(t, clients, workers)
			if got == base {
				continue
			}
			bl, gl := strings.Split(base, "\n"), strings.Split(got, "\n")
			for i := 0; i < len(bl) && i < len(gl); i++ {
				if bl[i] != gl[i] {
					t.Fatalf("workers=%d run=%d diverged at line %d:\nbase: %s\ngot:  %s", workers, run, i, bl[i], gl[i])
				}
			}
			t.Fatalf("workers=%d run=%d diverged in length: %d vs %d lines", workers, run, len(bl), len(gl))
		}
	}
}
