package disk

import (
	"testing"
	"time"
)

// Golden timing tests: the paper's §3.3 numbers pinned in absolute simulated
// time, so no scheduler change can quietly trade them away. Two claims:
//
//   - consecutive sectors transfer back to back — a whole track costs one
//     sector time per sector, with no missed revolution between sectors;
//   - allocating or freeing a page costs exactly one extra revolution over
//     a plain data write, because the label write is a second operation on
//     the same sector.

func TestGoldenConsecutiveSectorsMissNoRevolution(t *testing.T) {
	for _, g := range []Geometry{Diablo31(), Trident()} {
		t.Run(g.Name, func(t *testing.T) {
			st := g.SectorTime()
			spt := g.SectorsPerTrack

			// One full track, starting slot-aligned: every sector costs
			// exactly one sector time, whether issued one Do at a time or
			// as a single chain in either mode.
			for _, issue := range []struct {
				name string
				run  func(d *Drive, ops []Op) error
			}{
				{"Do", func(d *Drive, ops []Op) error {
					for i := range ops {
						if err := d.Do(&ops[i]); err != nil {
							return err
						}
					}
					return nil
				}},
				{"DoChain/ordered", func(d *Drive, ops []Op) error {
					return FirstChainError(d.DoChain(ops, Ordered))
				}},
				{"DoChain/free-order", func(d *Drive, ops []Op) error {
					return FirstChainError(d.DoChain(ops, FreeOrder))
				}},
			} {
				d, err := NewDrive(g, 1, nil)
				if err != nil {
					t.Fatal(err)
				}
				addrs := make([]VDA, spt)
				for i := range addrs {
					addrs[i] = VDA(i)
				}
				lbls := make([][LabelWords]Word, spt)
				ops := readOps(addrs, lbls)
				start := d.Clock().Now()
				if err := issue.run(d, ops); err != nil {
					t.Fatalf("%s: %v", issue.name, err)
				}
				got := d.Clock().Now() - start
				want := time.Duration(spt) * st
				if got != want {
					t.Errorf("%s: full track took %v, want %d sector times = %v (a missed revolution would add %v)",
						issue.name, got, spt, want, g.RevTime)
				}
			}

			// Both tracks of the first cylinder: the head switch is free and
			// the second track starts at the top of the next revolution, so
			// the whole cylinder costs one revolution plus one track pass.
			d, err := NewDrive(g, 1, nil)
			if err != nil {
				t.Fatal(err)
			}
			n := spt * g.Heads
			addrs := make([]VDA, n)
			for i := range addrs {
				addrs[i] = VDA(i)
			}
			lbls := make([][LabelWords]Word, n)
			ops := readOps(addrs, lbls)
			start := d.Clock().Now()
			if err := FirstChainError(d.DoChain(ops, FreeOrder)); err != nil {
				t.Fatal(err)
			}
			got := d.Clock().Now() - start
			want := g.RevTime + time.Duration(spt)*st
			if got != want {
				t.Errorf("full cylinder took %v, want %v", got, want)
			}
		})
	}
}

func TestGoldenFreeOrderCatchesMidRotationArrival(t *testing.T) {
	// Arriving mid-rotation, the scheduler starts a dense track at the next
	// slot to pass under the head instead of waiting for slot zero: the
	// track costs the fraction of a slot to the next boundary plus one
	// revolution, not up to two.
	g := Diablo31()
	st := g.SectorTime()
	d, err := NewDrive(g, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	off := 5*st + st/2 // between slot 5 and 6
	d.Clock().Advance(off)
	addrs := make([]VDA, g.SectorsPerTrack)
	for i := range addrs {
		addrs[i] = VDA(i)
	}
	lbls := make([][LabelWords]Word, len(addrs))
	ops := readOps(addrs, lbls)
	start := d.Clock().Now()
	if err := FirstChainError(d.DoChain(ops, FreeOrder)); err != nil {
		t.Fatal(err)
	}
	got := d.Clock().Now() - start
	// Catch slot 6, then one full revolution brings the head back through
	// the wrap to the end of slot 5.
	want := (6*st - off) + g.RevTime
	if got != want {
		t.Errorf("mid-rotation dense track took %v, want %v", got, want)
	}
	if ops[0].Addr != 6 {
		t.Errorf("schedule starts at slot %d, want 6 (first slot after the head)", ops[0].Addr)
	}
}

func TestGoldenAllocFreeCostExactlyOneRevolution(t *testing.T) {
	for _, g := range []Geometry{Diablo31(), Trident()} {
		t.Run(g.Name, func(t *testing.T) {
			st := g.SectorTime()
			var v [PageWords]Word
			fill(&v, 0x200)

			// timeOf measures fn on a fresh, slot-aligned drive.
			timeOf := func(fn func(d *Drive) error) time.Duration {
				d, err := NewDrive(g, 1, nil)
				if err != nil {
					t.Fatal(err)
				}
				start := d.Clock().Now()
				if err := fn(d); err != nil {
					t.Fatal(err)
				}
				return d.Clock().Now() - start
			}

			write := timeOf(func(d *Drive) error {
				if err := Allocate(d, 0, testLabel(1), &v); err != nil {
					return err
				}
				// Align to the next slot-0 boundary, then measure the write.
				d.Clock().Advance(g.RevTime - d.Clock().Now()%g.RevTime)
				start := d.Clock().Now()
				err := WriteValue(d, 0, testLabel(1), &v)
				if got := d.Clock().Now() - start; got != st {
					t.Errorf("plain write took %v, want one sector time %v", got, st)
				}
				return err
			})
			_ = write

			alloc := timeOf(func(d *Drive) error {
				return Allocate(d, 0, testLabel(1), &v)
			})
			if want := g.RevTime + st; alloc != want {
				t.Errorf("Allocate took %v, want check+write = one revolution + one sector = %v", alloc, want)
			}
			if overhead := alloc - st; overhead != g.RevTime {
				t.Errorf("allocation overhead over a plain write = %v, want exactly one revolution %v", overhead, g.RevTime)
			}

			free := timeOf(func(d *Drive) error {
				if err := Allocate(d, 0, testLabel(1), &v); err != nil {
					return err
				}
				d.Clock().Advance(g.RevTime - d.Clock().Now()%g.RevTime)
				start := d.Clock().Now()
				err := Free(d, 0, testLabel(1))
				if got := d.Clock().Now() - start; got != g.RevTime+st {
					t.Errorf("Free took %v, want one revolution + one sector = %v", got, g.RevTime+st)
				}
				return err
			})
			_ = free

			// The chained forms must cost the identical simulated time.
			var sc OpScratch
			chainAlloc := timeOf(func(d *Drive) error {
				return sc.Allocate(d, 0, testLabel(1), &v)
			})
			if chainAlloc != alloc {
				t.Errorf("chained Allocate took %v, plain took %v; must be identical", chainAlloc, alloc)
			}
			chainFree := timeOf(func(d *Drive) error {
				if err := sc.Allocate(d, 0, testLabel(1), &v); err != nil {
					return err
				}
				d.Clock().Advance(g.RevTime - d.Clock().Now()%g.RevTime)
				start := d.Clock().Now()
				err := sc.Free(d, 0, testLabel(1))
				if got := d.Clock().Now() - start; got != g.RevTime+st {
					t.Errorf("chained Free took %v, want %v", got, g.RevTime+st)
				}
				return err
			})
			_ = chainFree
		})
	}
}

// The tentpole's zero-allocation contract: with no recorder attached, the
// drive's hot path — Do and DoChain in both modes, scheduler included —
// allocates nothing.
func TestUntracedHotPathAllocationFree(t *testing.T) {
	d := newTestDrive(t)
	var hdr [HeaderWords]Word
	var lbl [LabelWords]Word
	var val [PageWords]Word
	op := Op{Addr: 5, Header: Read, HeaderData: &hdr, Label: Read, LabelData: &lbl, Value: Read, ValueData: &val}
	if a := testing.AllocsPerRun(200, func() {
		if err := d.Do(&op); err != nil {
			t.Fatal(err)
		}
	}); a != 0 {
		t.Errorf("untraced Do allocates %.1f objects per op, want 0", a)
	}

	addrs := make([]VDA, 24)
	for i := range addrs {
		addrs[i] = VDA((i * 7) % 48) // scattered: exercise the scheduler
	}
	lbls := make([][LabelWords]Word, len(addrs))
	ops := readOps(addrs, lbls)
	for _, mode := range []ChainMode{Ordered, FreeOrder} {
		if a := testing.AllocsPerRun(50, func() {
			if errs := d.DoChain(ops, mode); errs != nil {
				t.Fatal(FirstChainError(errs))
			}
		}); a != 0 {
			t.Errorf("untraced DoChain(%v) allocates %.1f objects per chain, want 0", mode, a)
		}
	}
}
