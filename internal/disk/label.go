package disk

import "fmt"

// FID is a file identifier: the two-word serial number from the page label
// (§3.1). The top bit of the serial is reserved to mark directory files, so
// that the Scavenger can identify every directory from labels alone (§3.4).
type FID uint32

// DirFIDBit marks a file identifier as belonging to a directory file.
const DirFIDBit FID = 0x8000_0000

// Well-known file identifiers. The paper gives the main directory and the
// disk descriptor "standard names and disk addresses"; we fix their FIDs too
// so that a freshly scavenged disk reconstructs identical structures.
const (
	// SysDirFID identifies the root directory (a directory file).
	SysDirFID FID = DirFIDBit | 1
	// DescriptorFID identifies the disk descriptor file.
	DescriptorFID FID = 2
	// BootFID identifies the boot file whose first page sits at BootVDA.
	BootFID FID = 3
	// FirstUserFID is the first serial handed to ordinary files.
	FirstUserFID FID = 0x100
)

// IsDirectory reports whether the identifier names a directory file.
func (f FID) IsDirectory() bool { return f&DirFIDBit != 0 }

// String implements fmt.Stringer.
func (f FID) String() string {
	if f.IsDirectory() {
		return fmt.Sprintf("dir#%d", uint32(f&^DirFIDBit))
	}
	return fmt.Sprintf("file#%d", uint32(f))
}

// FV is the (file identifier, version) pair that, with a page number, forms
// a page's absolute name (§3.1).
type FV struct {
	FID     FID
	Version Word
}

// String implements fmt.Stringer.
func (fv FV) String() string { return fmt.Sprintf("%v!%d", fv.FID, fv.Version) }

// Label is the seven-word absolute-plus-hint record carried by every sector
// (§3.1):
//
//	F  file identifier — two words  (absolute)
//	V  version number  — one word   (absolute)
//	PN page number     — one word   (absolute)
//	L  length in bytes — one word   (absolute)
//	NL next link       — one word   (hint)
//	PL previous link   — one word   (hint)
//
// A page is completely defined by its absolutes; the links are hints that
// can be reconstructed from the absolutes by the Scavenger.
type Label struct {
	FID     FID
	Version Word
	PageNum Word
	Length  Word // bytes of data in this page; full pages have PageBytes
	Next    VDA  // address of page (FV, PN+1), or NilVDA
	Prev    VDA  // address of page (FV, PN-1), or NilVDA
}

// FV returns the label's (file identifier, version) pair.
func (l Label) FV() FV { return FV{l.FID, l.Version} }

// Name returns the page's absolute name as a string, for diagnostics.
func (l Label) Name() string {
	return fmt.Sprintf("(%v, %d)", l.FV(), l.PageNum)
}

// Words encodes the label into its on-disk seven-word form.
func (l Label) Words() [LabelWords]Word {
	return [LabelWords]Word{
		Word(l.FID >> 16),
		Word(l.FID),
		l.Version,
		l.PageNum,
		l.Length,
		Word(l.Next),
		Word(l.Prev),
	}
}

// LabelFromWords decodes a seven-word on-disk label.
func LabelFromWords(w [LabelWords]Word) Label {
	return Label{
		FID:     FID(w[0])<<16 | FID(w[1]),
		Version: w[2],
		PageNum: w[3],
		Length:  w[4],
		Next:    VDA(w[5]),
		Prev:    VDA(w[6]),
	}
}

// Free-page and bad-page sentinels. Freeing a page writes ones into label and
// value "to ensure that any attempt to treat the page as part of a file will
// fail with a label check error" (§3.3). Permanently bad pages are "marked in
// the label with a special value so that they will never be used again"
// (§3.5).
var (
	freeLabelWords = [LabelWords]Word{0xFFFF, 0xFFFF, 0xFFFF, 0xFFFF, 0xFFFF, 0xFFFF, 0xFFFF}
	badLabelWords  = [LabelWords]Word{0xFFFF, 0xFFFE, 0xFFFF, 0xFFFF, 0xFFFF, 0xFFFF, 0xFFFF}
)

// FreeLabelWords returns the label pattern carried by free pages.
func FreeLabelWords() [LabelWords]Word { return freeLabelWords }

// BadLabelWords returns the label pattern that permanently retires a page.
func BadLabelWords() [LabelWords]Word { return badLabelWords }

// IsFreeLabel reports whether the words are the free-page pattern.
func IsFreeLabel(w [LabelWords]Word) bool { return w == freeLabelWords }

// IsBadLabel reports whether the words are the bad-page pattern.
func IsBadLabel(w [LabelWords]Word) bool { return w == badLabelWords }

// InUse reports whether the words describe a live page of some file (neither
// free nor retired).
func InUse(w [LabelWords]Word) bool { return !IsFreeLabel(w) && !IsBadLabel(w) }

// Header is the two-word sector header: the pack number (different for each
// removable pack) and the sector's own disk address (§3.3).
type Header struct {
	Pack Word
	Addr VDA
}

// Words encodes the header into its on-disk two-word form.
func (h Header) Words() [HeaderWords]Word {
	return [HeaderWords]Word{h.Pack, Word(h.Addr)}
}

// HeaderFromWords decodes a two-word on-disk header.
func HeaderFromWords(w [HeaderWords]Word) Header {
	return Header{Pack: w[0], Addr: VDA(w[1])}
}
