package disk

import (
	"errors"
	"time"

	"altoos/internal/trace"
)

// The Alto's disk controller does not take one command at a time: the
// microcode walks a chain of command blocks, deciding once how to schedule
// the whole transfer. DoChain is that controller interface. A chain is
// cheaper than the equivalent Do calls in two ways: the drive makes one
// scheduling decision (and takes its lock once) for the whole batch, and in
// free order it can serve a scattered batch in rotational position order
// instead of paying a missed revolution per out-of-phase sector.

// ChainMode selects how DoChain may order the operations of a chain.
type ChainMode uint8

const (
	// Ordered preserves the caller's order exactly. Use it whenever one
	// operation's meaning depends on an earlier one — link-chasing label
	// checks, check-then-write pairs, anything that must abort as a unit.
	// An operation that fails stops the chain: later operations do not run
	// and report ErrChainAborted.
	Ordered ChainMode = iota
	// FreeOrder lets the rotational scheduler reorder the chain for minimal
	// seek and rotational latency. The operations must be independent: each
	// runs regardless of the others' outcomes and reports its own error.
	// The ops slice is reordered in place; errs[i] always describes ops[i]
	// as returned. One exception to independence: a simulated power failure
	// (ErrCrashed) kills the controller, not one command block, so the rest
	// of the chain never runs and reports ErrChainAborted — in either mode.
	FreeOrder
)

// String implements fmt.Stringer.
func (m ChainMode) String() string {
	if m == Ordered {
		return "ordered"
	}
	return "free-order"
}

// ErrChainAborted marks an operation that never ran because an earlier
// operation of an Ordered chain failed. The failure itself is reported at
// the earlier operation's position.
var ErrChainAborted = errors.New("disk: chain aborted by earlier operation failure")

// ChainDevice is implemented by devices that accept chained transfers.
// It is optional: the standard packages probe for it and fall back to
// one-at-a-time Do calls, so a custom Device (§5.2) keeps working unchanged.
type ChainDevice interface {
	// DoChain performs a chain of sector operations under one scheduling
	// decision. A nil result means every operation succeeded; otherwise the
	// result has len(ops) entries and errs[i] reports ops[i]'s outcome
	// (nil for success). In FreeOrder mode ops may be reordered in place.
	DoChain(ops []Op, mode ChainMode) []error
}

var _ ChainDevice = (*Drive)(nil)

// DoChain implements ChainDevice. Timing and semantics per sector are
// exactly those of Do — same label-check abort within a sector, same
// "once a write begins it must continue" rule — the chain only changes how
// many scheduling decisions are made and, in FreeOrder mode, the order of
// independent operations. The untraced success path allocates nothing.
func (d *Drive) DoChain(ops []Op, mode ChainMode) []error {
	if len(ops) == 0 {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()

	if mode == FreeOrder {
		d.schedule(ops)
	}
	d.stats.Chains++
	chainStart := d.clock.Now()

	var errs []error
	fail := func(i int, err error) {
		if errs == nil {
			errs = make([]error, len(ops))
		}
		errs[i] = err
	}
	failures := int64(0)
	for i := range ops {
		op := &ops[i]
		err := validate(op)
		if err == nil {
			d.stats.Ops++
			start := d.clock.Now()
			err = d.do(op)
			if d.rec != nil {
				d.traceOp(op, start, err)
			}
		}
		if err == nil {
			continue
		}
		failures++
		fail(i, err)
		// Ordered chains abort on any failure. A crash aborts in either
		// mode: power failed under the controller mid-chain, so the ops it
		// had not reached yet were never issued at all.
		if mode == Ordered || errors.Is(err, ErrCrashed) {
			for j := i + 1; j < len(ops); j++ {
				errs[j] = ErrChainAborted
			}
			break
		}
	}
	if d.rec != nil {
		now := d.clock.Now()
		d.rec.EmitSpan(chainStart, now-chainStart, trace.KindDiskChain,
			mode.String(), int64(len(ops)), failures)
		d.rec.Add("disk.chains", 1)
	}
	return errs
}

// DoChainOn runs a chain on any Device. A device implementing ChainDevice
// gets the controller path; anything else falls back to issuing the
// operations one at a time with identical semantics (including Ordered's
// abort), so code written against chains still runs on a plain Device.
func DoChainOn(dev Device, ops []Op, mode ChainMode) []error {
	if cd, ok := dev.(ChainDevice); ok {
		return cd.DoChain(ops, mode)
	}
	var errs []error
	for i := range ops {
		err := dev.Do(&ops[i])
		if err == nil {
			continue
		}
		if errs == nil {
			errs = make([]error, len(ops))
		}
		errs[i] = err
		if mode == Ordered || errors.Is(err, ErrCrashed) {
			for j := i + 1; j < len(ops); j++ {
				errs[j] = ErrChainAborted
			}
			break
		}
	}
	return errs
}

// FirstChainError extracts the first real failure from a DoChain result:
// the first non-nil entry that is not the ErrChainAborted echo of an
// earlier failure. Nil when the chain succeeded.
func FirstChainError(errs []error) error {
	for _, err := range errs {
		if err != nil && !errors.Is(err, ErrChainAborted) {
			return err
		}
	}
	return nil
}

// schedule reorders a FreeOrder chain for minimal latency. It is the
// simulation's stand-in for the controller microcode's transfer ordering,
// and it must be deterministic: it derives everything from the operations'
// addresses, the geometry, and the current simulated clock — no maps, no
// wall clock, no randomness — so two runs of the same workload schedule
// identically and the flight-recorder traces stay byte-identical.
//
// The policy is an elevator over the pack: sort by (cylinder, head, slot),
// which for this geometry is exactly ascending disk address, then rotate
// each same-track run so it starts at the first slot at or after the head's
// predicted rotational position on arrival. A dense track (all twelve
// sectors) is then served in one revolution from wherever the head lands,
// instead of waiting for slot zero to come around. Same-cylinder ops on
// different heads stay grouped per head: a head switch is free, but reading
// the same slot range on both heads takes a revolution each regardless of
// order, and interleaving the heads slot-by-slot would miss nearly a full
// revolution per sector.
//
// schedule only plans: it predicts arrival times with the same arithmetic
// advanceTo charges later, and mutates nothing but the order of ops.
// d.mu is held.
func (d *Drive) schedule(ops []Op) {
	sortOpsByAddr(ops)

	g := d.geom
	st := g.SectorTime()
	rev := g.RevTime
	spt := g.SectorsPerTrack
	n := VDA(g.NSectors())

	t := d.clock.Now()
	cur := d.curCyl
	i := 0
	for i < len(ops) {
		if ops[i].Addr >= n {
			// Out-of-range addresses sort to the end and will fail in
			// execution; there is nothing to schedule.
			break
		}
		// A run is a maximal group of ops on one track (cylinder + head).
		track := int(ops[i].Addr) / spt
		j := i + 1
		for j < len(ops) && ops[j].Addr < n && int(ops[j].Addr)/spt == track {
			j++
		}
		run := ops[i:j]

		cyl, _, _ := g.Locate(ops[i].Addr)
		if cyl != cur {
			t += g.SeekTime(cyl - cur)
			cur = cyl
		}

		// Rotate the run to start at the first slot the head can still
		// catch this revolution; if every slot has already passed, the
		// earliest slot of the next revolution is the natural start.
		pos := t % rev
		k := 0
		for k < len(run) {
			_, _, sect := g.Locate(run[k].Addr)
			if time.Duration(sect)*st >= pos {
				break
			}
			k++
		}
		if k == len(run) {
			k = 0
		}
		rotateOps(run, k)

		// Predict the time the run consumes, mirroring advanceTo.
		for idx := range run {
			_, _, sect := g.Locate(run[idx].Addr)
			target := time.Duration(sect) * st
			wait := target - t%rev
			if wait < 0 {
				wait += rev
			}
			t += wait + st
		}
		i = j
	}
}

// sortOpsByAddr sorts ops by disk address — physically, by (cylinder, head,
// slot). Shell sort: in place, no allocation, deterministic. Operations on
// the same sector keep no guaranteed relative order, which FreeOrder's
// independence requirement already demands.
func sortOpsByAddr(ops []Op) {
	for gap := len(ops) / 2; gap > 0; gap /= 2 {
		for i := gap; i < len(ops); i++ {
			for j := i; j >= gap && ops[j].Addr < ops[j-gap].Addr; j -= gap {
				ops[j], ops[j-gap] = ops[j-gap], ops[j]
			}
		}
	}
}

// rotateOps rotates run left by k positions using triple reversal, so the
// op at index k becomes first. In place, no allocation.
func rotateOps(run []Op, k int) {
	if k <= 0 || k >= len(run) {
		return
	}
	reverseOps(run[:k])
	reverseOps(run[k:])
	reverseOps(run)
}

func reverseOps(run []Op) {
	for l, r := 0, len(run)-1; l < r; l, r = l+1, r-1 {
		run[l], run[r] = run[r], run[l]
	}
}
