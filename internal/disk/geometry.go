// Package disk models the Alto's moving-head disk at the level the paper
// standardizes: a disk is an array of sectors, each holding a 2-word header,
// a 7-word label and a 256-word value, and a single disk operation performs
// read, check or write actions independently on each part (§3.3).
//
// Two properties of the model carry the paper's robustness and performance
// story:
//
//  1. Check semantics. A check compares memory words against disk words; a
//     zero memory word is a wildcard that is replaced by the disk word, so a
//     check doubles as a guarded read. A mismatch aborts the rest of the
//     operation before anything is written.
//
//  2. Rotational timing. The drive advances a shared virtual clock by seek,
//     rotational-latency and transfer time. Because a check of a sector's
//     label completes only as that label passes under the head, an operation
//     that must *rewrite the same label it checked* needs a second pass —
//     which is exactly why the paper says allocating or freeing a page
//     "costs a disk revolution", while an ordinary data write (check label,
//     then write the value that follows it) costs nothing extra.
package disk

import (
	"fmt"
	"time"
)

// Word is the Alto's 16-bit machine word. Every on-disk and in-memory datum
// in the system is expressed in words.
type Word = uint16

// VDA is a virtual disk address: the index of a sector on a pack. One word,
// as in the paper's label format, so a pack holds at most 65535 sectors.
type VDA uint16

// NilVDA is the distinguished "no such page" link value (the paper's NIL).
const NilVDA VDA = 0xFFFF

const (
	// PageWords is the size of a page value in words (§3.1: 256 data words).
	PageWords = 256
	// PageBytes is the page size in bytes; the label's length field counts
	// bytes, so a full page has length 512.
	PageBytes = 2 * PageWords
	// LabelWords is the size of a label in words (§3.1 lists seven).
	LabelWords = 7
	// HeaderWords is the size of a sector header: pack number and address.
	HeaderWords = 2
)

// Geometry describes the shape and timing of a disk model. The shape is part
// of the disk descriptor's absolute information (§3.3); the timing drives the
// virtual clock.
type Geometry struct {
	Name            string        // model name, e.g. "Diablo31"
	Cylinders       int           // number of cylinders (seek positions)
	Heads           int           // surfaces per cylinder
	SectorsPerTrack int           // sectors per track
	RevTime         time.Duration // time per spindle revolution
	SeekSettle      time.Duration // fixed cost of any non-zero seek
	SeekPerCyl      time.Duration // additional cost per cylinder crossed
}

// Diablo31 is the Alto's standard drive: a removable 2.5-megabyte pack
// (203 cylinders x 2 heads x 12 sectors x 256 words + label + header).
// The paper's machine "can transfer 64k words in about one second" on it.
func Diablo31() Geometry {
	return Geometry{
		Name:            "Diablo31",
		Cylinders:       203,
		Heads:           2,
		SectorsPerTrack: 12,
		RevTime:         40 * time.Millisecond, // 1500 rpm
		SeekSettle:      15 * time.Millisecond,
		SeekPerCyl:      560 * time.Microsecond,
	}
}

// Trident is the "other disk with about twice the size and performance"
// mentioned in §2.
func Trident() Geometry {
	return Geometry{
		Name:            "Trident",
		Cylinders:       406,
		Heads:           2,
		SectorsPerTrack: 12,
		RevTime:         20 * time.Millisecond, // twice the rotation rate
		SeekSettle:      10 * time.Millisecond,
		SeekPerCyl:      280 * time.Microsecond,
	}
}

// NSectors returns the number of sectors on a pack with this geometry.
func (g Geometry) NSectors() int {
	return g.Cylinders * g.Heads * g.SectorsPerTrack
}

// Bytes returns the data capacity of the pack in bytes.
func (g Geometry) Bytes() int { return g.NSectors() * PageBytes }

// SectorTime returns the time one sector takes to pass under the head.
func (g Geometry) SectorTime() time.Duration {
	return g.RevTime / time.Duration(g.SectorsPerTrack)
}

// SeekTime returns the modelled time to move the head across dist cylinders.
func (g Geometry) SeekTime(dist int) time.Duration {
	if dist < 0 {
		dist = -dist
	}
	if dist == 0 {
		return 0
	}
	return g.SeekSettle + time.Duration(dist-1)*g.SeekPerCyl
}

// Validate reports whether the geometry is internally consistent and small
// enough that every sector is addressable by a one-word VDA.
func (g Geometry) Validate() error {
	switch {
	case g.Cylinders <= 0 || g.Heads <= 0 || g.SectorsPerTrack <= 0:
		return fmt.Errorf("disk: geometry %q has non-positive dimension", g.Name)
	case g.NSectors() >= int(NilVDA):
		return fmt.Errorf("disk: geometry %q has %d sectors, exceeding the VDA word", g.Name, g.NSectors())
	case g.RevTime <= 0:
		return fmt.Errorf("disk: geometry %q has non-positive revolution time", g.Name)
	}
	return nil
}

// Locate converts a virtual disk address to its physical (cylinder, head,
// sector) coordinates.
func (g Geometry) Locate(a VDA) (cyl, head, sector int) {
	n := int(a)
	sector = n % g.SectorsPerTrack
	n /= g.SectorsPerTrack
	head = n % g.Heads
	cyl = n / g.Heads
	return
}

// Address converts physical coordinates to a virtual disk address.
func (g Geometry) Address(cyl, head, sector int) VDA {
	//altovet:allow wordwidth NSectors = Cylinders*Heads*SectorsPerTrack fits a Word, so any in-range coordinate does too
	return VDA((cyl*g.Heads+head)*g.SectorsPerTrack + sector)
}

// String implements fmt.Stringer.
func (g Geometry) String() string {
	return fmt.Sprintf("%s: %d cyl x %d heads x %d sectors (%d KB)",
		g.Name, g.Cylinders, g.Heads, g.SectorsPerTrack, g.Bytes()/1024)
}
