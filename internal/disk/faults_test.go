package disk

import (
	"errors"
	"testing"

	"altoos/internal/sim"
	"altoos/internal/trace"
)

// Every injected fault must surface in the flight recorder: the injectors
// bypass the disciplined write path, so the recorder's counted label-check,
// bad-sector, crash and CRC events are how a trace of a damaged run explains
// itself. Each subtest injures a fresh drive one way and asserts the
// corresponding event kind and counter appear.

// newTracedDrive builds a drive with a recorder attached and one allocated
// page at addr 7 to injure.
func newTracedDrive(t *testing.T) (*Drive, *trace.Recorder) {
	t.Helper()
	d := newTestDrive(t)
	rec := trace.New(1024)
	d.SetRecorder(rec)
	var v [PageWords]Word
	fill(&v, 0x300)
	if err := Allocate(d, 7, testLabel(0), &v); err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	return d, rec
}

// countKind tallies recorded events of one kind.
func countKind(rec *trace.Recorder, k trace.Kind) int {
	n := 0
	for _, ev := range rec.Events() {
		if ev.Kind == k {
			n++
		}
	}
	return n
}

func TestMarkBadSurfacesAsBadSectorEvent(t *testing.T) {
	d, rec := newTracedDrive(t)
	d.MarkBad(7)
	var got [PageWords]Word
	if err := ReadValue(d, 7, testLabel(0), &got); !errors.Is(err, ErrBadSector) {
		t.Fatalf("read of bad sector: got %v, want ErrBadSector", err)
	}
	if n := countKind(rec, trace.KindBadSector); n == 0 {
		t.Error("no KindBadSector event recorded")
	}
	if c := rec.Counter("disk.bad_sector"); c == 0 {
		t.Error("disk.bad_sector counter not incremented")
	}
}

func TestZapLabelSurfacesAsCheckFailEvent(t *testing.T) {
	d, rec := newTracedDrive(t)
	var junk [LabelWords]Word
	for i := range junk {
		junk[i] = 0xDEAD
	}
	d.ZapLabel(7, junk)
	var got [PageWords]Word
	if err := ReadValue(d, 7, testLabel(0), &got); !IsCheck(err) {
		t.Fatalf("read after ZapLabel: got %v, want a check error", err)
	}
	if n := countKind(rec, trace.KindCheckFail); n == 0 {
		t.Error("no KindCheckFail event recorded")
	}
	if c := rec.Counter("disk.check.fail"); c == 0 {
		t.Error("disk.check.fail counter not incremented")
	}
}

func TestCorruptLabelSurfacesAsCheckFailEvent(t *testing.T) {
	d, rec := newTracedDrive(t)
	d.CorruptLabel(7, sim.NewRand(1))
	var got [PageWords]Word
	if err := ReadValue(d, 7, testLabel(0), &got); !IsCheck(err) {
		t.Fatalf("read after CorruptLabel: got %v, want a check error", err)
	}
	if n := countKind(rec, trace.KindCheckFail); n == 0 {
		t.Error("no KindCheckFail event recorded")
	}
	if c := rec.Counter("disk.check.fail"); c == 0 {
		t.Error("disk.check.fail counter not incremented")
	}
}

func TestZapValueSurfacesAsCRCMismatchEvent(t *testing.T) {
	d, rec := newTracedDrive(t)
	var junk [PageWords]Word
	fill(&junk, 0x666)
	d.ZapValue(7, junk)
	// The label is intact, so the read succeeds — silent data damage. The
	// recorder is the only place it shows: the sector's value checksum no
	// longer matches what the disciplined path last wrote.
	var got [PageWords]Word
	if err := ReadValue(d, 7, testLabel(0), &got); err != nil {
		t.Fatalf("read after ZapValue: %v (the label is intact; the read must succeed)", err)
	}
	if n := countKind(rec, trace.KindCRCMismatch); n == 0 {
		t.Error("no KindCRCMismatch event recorded for silently zapped value")
	}
	if c := rec.Counter("disk.crc.mismatch"); c == 0 {
		t.Error("disk.crc.mismatch counter not incremented")
	}
}

func TestCorruptValueSurfacesAsCRCMismatchEvent(t *testing.T) {
	d, rec := newTracedDrive(t)
	d.CorruptValue(7, sim.NewRand(2))
	var got [PageWords]Word
	if err := ReadValue(d, 7, testLabel(0), &got); err != nil {
		t.Fatalf("read after CorruptValue: %v (the label is intact; the read must succeed)", err)
	}
	if n := countKind(rec, trace.KindCRCMismatch); n == 0 {
		t.Error("no KindCRCMismatch event recorded for corrupted value")
	}
	if c := rec.Counter("disk.crc.mismatch"); c == 0 {
		t.Error("disk.crc.mismatch counter not incremented")
	}
}

func TestDisciplinedRewriteClearsCRCMismatch(t *testing.T) {
	d, rec := newTracedDrive(t)
	var junk [PageWords]Word
	fill(&junk, 0x666)
	d.ZapValue(7, junk)
	// Writing through the checked path refreshes the checksum: the damage
	// has been overwritten, so later reads must be quiet again.
	var v [PageWords]Word
	fill(&v, 0x400)
	if err := WriteValue(d, 7, testLabel(0), &v); err != nil {
		t.Fatalf("WriteValue: %v", err)
	}
	before := rec.Counter("disk.crc.mismatch")
	var got [PageWords]Word
	if err := ReadValue(d, 7, testLabel(0), &got); err != nil {
		t.Fatalf("ReadValue: %v", err)
	}
	if after := rec.Counter("disk.crc.mismatch"); after != before {
		t.Errorf("read after disciplined rewrite still reports CRC mismatch (%d -> %d)", before, after)
	}
}

func TestCrashSurfacesAsCrashWriteEvent(t *testing.T) {
	d, rec := newTracedDrive(t)
	d.CrashAfterWrites(0)
	var v [PageWords]Word
	fill(&v, 0x500)
	if err := WriteValue(d, 7, testLabel(0), &v); !errors.Is(err, ErrCrashed) {
		t.Fatalf("write after crash: got %v, want ErrCrashed", err)
	}
	if n := countKind(rec, trace.KindCrashWrite); n == 0 {
		t.Error("no KindCrashWrite event recorded")
	}
	if c := rec.Counter("disk.write.crashed"); c == 0 {
		t.Error("disk.write.crashed counter not incremented")
	}
}

func TestTornCrashGarblesInFlightWrite(t *testing.T) {
	d, rec := newTracedDrive(t)
	d.SetTornCrash(true)
	d.CrashAfterWrites(0)
	var v [PageWords]Word
	fill(&v, 0x500)
	if err := WriteValue(d, 7, testLabel(0), &v); !errors.Is(err, ErrCrashed) {
		t.Fatalf("torn write: got %v, want ErrCrashed", err)
	}
	d.ClearCrash()
	s, ok := d.peek(7)
	if !ok {
		t.Fatal("peek failed")
	}
	var old [PageWords]Word
	fill(&old, 0x300) // what newTracedDrive allocated
	if s.value == old {
		t.Error("torn write left the old value intact; it must land garbled")
	}
	if s.value == v {
		t.Error("torn write landed the complete new value; it must land garbled")
	}
	if c := rec.Counter("disk.write.torn"); c != 1 {
		t.Errorf("disk.write.torn = %d, want 1", c)
	}
	if st := d.Stats(); st.TornWrites != 1 || st.CrashedWrites != 1 {
		t.Errorf("Stats torn/crashed = %d/%d, want 1/1", st.TornWrites, st.CrashedWrites)
	}
	// The label is intact, so a restarted machine reads the page without
	// complaint — the damage shows only as a stale value checksum.
	var got [PageWords]Word
	if err := ReadValue(d, 7, testLabel(0), &got); err != nil {
		t.Fatalf("read after torn crash: %v (the label is intact; the read must succeed)", err)
	}
	if c := rec.Counter("disk.crc.mismatch"); c == 0 {
		t.Error("torn value read fired no CRC mismatch; the checksum must be left stale")
	}
}

func TestTornCrashIsDeterministic(t *testing.T) {
	tear := func() [PageWords]Word {
		d := newTestDrive(t)
		var v0 [PageWords]Word
		fill(&v0, 0x300)
		if err := Allocate(d, 7, testLabel(0), &v0); err != nil {
			t.Fatal(err)
		}
		d.SetTornCrash(true)
		d.CrashAfterWrites(0)
		var v [PageWords]Word
		fill(&v, 0x500)
		if err := WriteValue(d, 7, testLabel(0), &v); !errors.Is(err, ErrCrashed) {
			t.Fatalf("torn write: got %v, want ErrCrashed", err)
		}
		s, _ := d.peek(7)
		return s.value
	}
	if tear() != tear() {
		t.Error("two identical torn runs left different sector contents; the crash explorer needs replayable tears")
	}
}

func TestCrashAtReportsWriteIndex(t *testing.T) {
	d := newTestDrive(t)
	if _, fired := d.CrashAt(); fired {
		t.Fatal("CrashAt fired before any crash")
	}
	// Allocate is two write actions (label, then value); arming after one
	// write makes the value write — lifetime write action #2 — the one the
	// power failure eats.
	d.CrashAfterWrites(1)
	var v [PageWords]Word
	fill(&v, 0x100)
	if err := Allocate(d, 7, testLabel(0), &v); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Allocate under crash: got %v, want ErrCrashed", err)
	}
	if at, fired := d.CrashAt(); !fired || at != 2 {
		t.Errorf("CrashAt = %d, %v; want 2, true", at, fired)
	}
	d.ClearCrash()
	if at, fired := d.CrashAt(); !fired || at != 2 {
		t.Errorf("after ClearCrash: CrashAt = %d, %v; want 2, true (kept for post-mortem reporting)", at, fired)
	}
	d.CrashAfterWrites(5)
	if _, fired := d.CrashAt(); fired {
		t.Error("re-arming must reset CrashAt")
	}
}

func TestCrashWriteEventCarriesWriteIndex(t *testing.T) {
	d, rec := newTracedDrive(t)
	d.CrashAfterWrites(0)
	var v [PageWords]Word
	fill(&v, 0x500)
	if err := WriteValue(d, 7, testLabel(0), &v); !errors.Is(err, ErrCrashed) {
		t.Fatalf("write under crash: got %v, want ErrCrashed", err)
	}
	at, fired := d.CrashAt()
	if !fired {
		t.Fatal("crash did not fire")
	}
	for _, ev := range rec.Events() {
		if ev.Kind == trace.KindCrashWrite && ev.A1 != at {
			t.Errorf("crash-write event write_idx = %d, want %d", ev.A1, at)
		}
	}
}
