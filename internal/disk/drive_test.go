package disk

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"altoos/internal/sim"
)

func newTestDrive(t *testing.T) *Drive {
	t.Helper()
	d, err := NewDrive(Diablo31(), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func testLabel(pn Word) Label {
	return Label{FID: FirstUserFID, Version: 1, PageNum: pn, Length: PageBytes, Next: NilVDA, Prev: NilVDA}
}

func fill(v *[PageWords]Word, seed Word) {
	for i := range v {
		v[i] = seed + Word(i)
	}
}

func TestFreshPackIsAllFree(t *testing.T) {
	d := newTestDrive(t)
	for _, a := range []VDA{0, 1, 100, VDA(d.Geometry().NSectors() - 1)} {
		lbl, err := ReadAnyLabel(d, a)
		if err != nil {
			t.Fatalf("ReadAnyLabel(%d): %v", a, err)
		}
		if !IsFreeLabel(lbl) {
			t.Errorf("sector %d not free after format: %v", a, lbl)
		}
	}
}

func TestAllocateWriteReadFree(t *testing.T) {
	d := newTestDrive(t)
	lbl := testLabel(0)
	var v, got [PageWords]Word
	fill(&v, 0x100)

	if err := Allocate(d, 7, lbl, &v); err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if err := ReadValue(d, 7, lbl, &got); err != nil {
		t.Fatalf("ReadValue: %v", err)
	}
	if got != v {
		t.Fatal("read back wrong value")
	}

	fill(&v, 0x200)
	if err := WriteValue(d, 7, lbl, &v); err != nil {
		t.Fatalf("WriteValue: %v", err)
	}
	if err := ReadValue(d, 7, lbl, &got); err != nil {
		t.Fatalf("ReadValue after rewrite: %v", err)
	}
	if got != v {
		t.Fatal("rewrite not visible")
	}

	if err := Free(d, 7, lbl); err != nil {
		t.Fatalf("Free: %v", err)
	}
	raw, err := ReadAnyLabel(d, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !IsFreeLabel(raw) {
		t.Fatal("label not free after Free")
	}
}

func TestDoubleAllocateFailsCheck(t *testing.T) {
	d := newTestDrive(t)
	var v [PageWords]Word
	if err := Allocate(d, 3, testLabel(0), &v); err != nil {
		t.Fatal(err)
	}
	err := Allocate(d, 3, testLabel(1), &v)
	if !IsCheck(err) {
		t.Fatalf("second Allocate: got %v, want check failure", err)
	}
}

func TestStaleNameRejected(t *testing.T) {
	// The heart of §3.3: any attempt to use a page under the wrong full name
	// fails the label check and writes nothing.
	d := newTestDrive(t)
	right := testLabel(0)
	var v [PageWords]Word
	fill(&v, 1)
	if err := Allocate(d, 9, right, &v); err != nil {
		t.Fatal(err)
	}

	wrongFID := right
	wrongFID.FID++
	wrongVer := right
	wrongVer.Version++
	wrongPN := right
	wrongPN.PageNum++

	var junk [PageWords]Word
	fill(&junk, 0x7777)
	for name, wrong := range map[string]Label{"fid": wrongFID, "version": wrongVer, "page": wrongPN} {
		if err := WriteValue(d, 9, wrong, &junk); !IsCheck(err) {
			t.Errorf("write with wrong %s: got %v, want check failure", name, err)
		}
	}

	var got [PageWords]Word
	if err := ReadValue(d, 9, right, &got); err != nil {
		t.Fatal(err)
	}
	if got != v {
		t.Fatal("rejected writes still damaged the value")
	}
}

func TestFreedPageUnusableUnderOldName(t *testing.T) {
	d := newTestDrive(t)
	lbl := testLabel(0)
	var v [PageWords]Word
	if err := Allocate(d, 11, lbl, &v); err != nil {
		t.Fatal(err)
	}
	if err := Free(d, 11, lbl); err != nil {
		t.Fatal(err)
	}
	if err := ReadValue(d, 11, lbl, &v); !IsCheck(err) {
		t.Fatalf("read of freed page under old name: got %v, want check failure", err)
	}
}

func TestCheckWildcardReadsLinks(t *testing.T) {
	d := newTestDrive(t)
	lbl := testLabel(4)
	lbl.Next = 42
	lbl.Prev = 17
	lbl.Length = 100
	var v [PageWords]Word
	if err := Allocate(d, 20, lbl, &v); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLabel(d, 20, lbl.FV(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if got.Next != 42 || got.Prev != 17 || got.Length != 100 {
		t.Errorf("wildcard check did not fill hints: %+v", got)
	}
}

func TestCheckAbortsBeforeWrite(t *testing.T) {
	d := newTestDrive(t)
	var v [PageWords]Word
	fill(&v, 5)
	if err := Allocate(d, 30, testLabel(0), &v); err != nil {
		t.Fatal(err)
	}
	// Single op: check a wrong label, then write the value. The check fails,
	// so the write must not happen.
	bad := testLabel(9).Words()
	var junk [PageWords]Word
	err := d.Do(&Op{Addr: 30, Label: Check, LabelData: &bad, Value: Write, ValueData: &junk})
	if !IsCheck(err) {
		t.Fatalf("got %v, want check failure", err)
	}
	var got [PageWords]Word
	if err := ReadValue(d, 30, testLabel(0), &got); err != nil {
		t.Fatal(err)
	}
	if got != v {
		t.Fatal("value written despite failed check")
	}
}

func TestWriteMustContinueThroughSector(t *testing.T) {
	d := newTestDrive(t)
	var lbl [LabelWords]Word
	var v [PageWords]Word
	// Label write with value read is illegal: a write must continue.
	err := d.Do(&Op{Addr: 0, Label: Write, LabelData: &lbl, Value: Read, ValueData: &v})
	if !errors.Is(err, ErrBadOp) {
		t.Fatalf("got %v, want ErrBadOp", err)
	}
	// Label write with value none is equally illegal.
	err = d.Do(&Op{Addr: 0, Label: Write, LabelData: &lbl})
	if !errors.Is(err, ErrBadOp) {
		t.Fatalf("got %v, want ErrBadOp", err)
	}
	// Value write alone is fine (write begins at the last part).
	free := FreeLabelWords()
	if err := d.Do(&Op{Addr: 0, Label: Check, LabelData: &free, Value: Write, ValueData: &v}); err != nil {
		t.Fatalf("check+write value: %v", err)
	}
}

func TestActionWithoutBufferRejected(t *testing.T) {
	d := newTestDrive(t)
	if err := d.Do(&Op{Addr: 0, Label: Read}); !errors.Is(err, ErrBadOp) {
		t.Fatalf("got %v, want ErrBadOp", err)
	}
}

func TestAddressOutOfRange(t *testing.T) {
	d := newTestDrive(t)
	var lbl [LabelWords]Word
	err := d.Do(&Op{Addr: VDA(d.Geometry().NSectors()), Label: Read, LabelData: &lbl})
	if !errors.Is(err, ErrAddress) {
		t.Fatalf("got %v, want ErrAddress", err)
	}
}

func TestHeaderCheckCatchesWrongPack(t *testing.T) {
	d := newTestDrive(t)
	hdr := Header{Pack: 99, Addr: 0}.Words() // drive was formatted as pack 1
	err := d.Do(&Op{Addr: 0, Header: Check, HeaderData: &hdr})
	if !IsCheck(err) {
		t.Fatalf("got %v, want check failure on pack number", err)
	}
}

func TestBadSector(t *testing.T) {
	d := newTestDrive(t)
	d.MarkBad(5)
	var lbl [LabelWords]Word
	err := d.Do(&Op{Addr: 5, Label: Read, LabelData: &lbl})
	if !errors.Is(err, ErrBadSector) {
		t.Fatalf("got %v, want ErrBadSector", err)
	}
	d.HealBad(5)
	if err := d.Do(&Op{Addr: 5, Label: Read, LabelData: &lbl}); err != nil {
		t.Fatalf("after heal: %v", err)
	}
}

func TestCrashInjection(t *testing.T) {
	d := newTestDrive(t)
	var v [PageWords]Word
	// Allocate performs two write actions (label, value). Crash after the
	// first: the label lands but the value write is lost.
	d.CrashAfterWrites(1)
	err := Allocate(d, 2, testLabel(0), &v)
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("got %v, want ErrCrashed", err)
	}
	if !d.Crashed() {
		t.Fatal("drive should report crashed")
	}
	// After "reboot" the torn state is visible: label present.
	d.ClearCrash()
	raw, err := ReadAnyLabel(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	if IsFreeLabel(raw) {
		t.Fatal("label write before crash was lost")
	}
}

func TestTimingSequentialTrackReadIsOneRevolution(t *testing.T) {
	// Reading the 12 labels of one track in address order should take about
	// one revolution plus initial latency — this is what makes the Scavenger
	// sweep fast.
	d := newTestDrive(t)
	g := d.Geometry()
	before := d.Clock().Now()
	for s := 0; s < g.SectorsPerTrack; s++ {
		if _, err := ReadAnyLabel(d, VDA(s)); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := d.Clock().Now() - before
	if elapsed > 2*g.RevTime {
		t.Errorf("track label sweep took %v, want <= %v", elapsed, 2*g.RevTime)
	}
}

func TestTimingAllocCostsARevolution(t *testing.T) {
	// §3.3: "This scheme costs a disk revolution each time a page is
	// allocated or freed ... On any other write the label is checked, at no
	// cost in time."
	// Averaged over many sectors at random rotational phases, an allocation
	// (check-free pass, then label-write pass on the same sector) costs one
	// revolution more than an ordinary data write (label check and value
	// write in a single pass).
	d := newTestDrive(t)
	g := d.Geometry()
	r := sim.NewRand(1)
	const n = 200
	addrs := make([]VDA, n)
	for i := range addrs {
		addrs[i] = VDA(r.Intn(g.NSectors()))
	}

	var v [PageWords]Word
	t0 := d.Clock().Now()
	for i, a := range addrs {
		if err := Allocate(d, a, testLabel(Word(i)), &v); err != nil {
			if IsCheck(err) {
				continue // duplicate random address, already allocated
			}
			t.Fatal(err)
		}
	}
	alloc := (d.Clock().Now() - t0) / n

	seen := map[VDA]bool{}
	var m time.Duration
	writes := 0
	for i, a := range addrs {
		if seen[a] {
			continue
		}
		seen[a] = true
		w := d.Clock().Now()
		if err := WriteValue(d, a, testLabel(Word(i)), &v); err != nil && !IsCheck(err) {
			t.Fatal(err)
		}
		m += d.Clock().Now() - w
		writes++
	}
	plain := m / time.Duration(writes)

	if delta := alloc - plain; delta < g.RevTime*7/10 || delta > g.RevTime*13/10 {
		t.Errorf("allocation overhead = %v, want about one revolution (%v); plain=%v alloc=%v",
			delta, g.RevTime, plain, alloc)
	}
}

func TestStatsAccumulate(t *testing.T) {
	d := newTestDrive(t)
	var v [PageWords]Word
	if err := Allocate(d, 1, testLabel(0), &v); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.Ops == 0 || st.Writes == 0 || st.Checks == 0 || st.Busy == 0 {
		t.Errorf("stats not accumulating: %+v", st)
	}
	if st.Revolutions(d.Geometry()) <= 0 {
		t.Error("Revolutions() should be positive")
	}
	d.ResetStats()
	if st := d.Stats(); st.Ops != 0 {
		t.Error("ResetStats did not clear")
	}
}

func TestImageRoundTrip(t *testing.T) {
	d := newTestDrive(t)
	lbl := testLabel(0)
	var v [PageWords]Word
	fill(&v, 0xABC)
	if err := Allocate(d, 123, lbl, &v); err != nil {
		t.Fatal(err)
	}
	d.MarkBad(200)

	var buf bytes.Buffer
	if err := d.SaveImage(&buf); err != nil {
		t.Fatalf("SaveImage: %v", err)
	}
	d2, err := LoadImage(&buf, sim.NewClock())
	if err != nil {
		t.Fatalf("LoadImage: %v", err)
	}
	if d2.Geometry().Name != d.Geometry().Name || d2.Pack() != d.Pack() {
		t.Error("geometry or pack lost in round trip")
	}
	var got [PageWords]Word
	if err := ReadValue(d2, 123, lbl, &got); err != nil {
		t.Fatal(err)
	}
	if got != v {
		t.Error("sector value lost in round trip")
	}
	var l [LabelWords]Word
	if err := d2.Do(&Op{Addr: 200, Label: Read, LabelData: &l}); !errors.Is(err, ErrBadSector) {
		t.Error("bad-sector flag lost in round trip")
	}
}

func TestLoadImageRejectsGarbage(t *testing.T) {
	if _, err := LoadImage(bytes.NewReader([]byte("not a pack")), nil); !errors.Is(err, ErrImage) {
		t.Fatalf("got %v, want ErrImage", err)
	}
}

func TestRelabel(t *testing.T) {
	d := newTestDrive(t)
	lbl := testLabel(0)
	var v [PageWords]Word
	fill(&v, 3)
	if err := Allocate(d, 50, lbl, &v); err != nil {
		t.Fatal(err)
	}
	newLbl := lbl
	newLbl.Length = 10
	newLbl.Next = 51
	if err := Relabel(d, 50, lbl, newLbl, &v); err != nil {
		t.Fatalf("Relabel: %v", err)
	}
	got, err := ReadLabel(d, 50, lbl.FV(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Length != 10 || got.Next != 51 {
		t.Errorf("relabel not applied: %+v", got)
	}
	// Relabel with a stale old label must fail.
	if err := Relabel(d, 50, lbl, newLbl, &v); !IsCheck(err) {
		t.Fatalf("stale relabel: got %v, want check failure", err)
	}
}

func TestSeekAdvancesClockMoreThanNoSeek(t *testing.T) {
	d := newTestDrive(t)
	g := d.Geometry()
	// Two reads on the same cylinder vs a far cylinder.
	lastCyl := g.Address(g.Cylinders-1, 0, 0)

	t0 := d.Clock().Now()
	if _, err := ReadAnyLabel(d, 0); err != nil {
		t.Fatal(err)
	}
	near := d.Clock().Now() - t0

	t1 := d.Clock().Now()
	if _, err := ReadAnyLabel(d, lastCyl); err != nil {
		t.Fatal(err)
	}
	far := d.Clock().Now() - t1

	if far <= near {
		t.Errorf("long seek (%v) not slower than no seek (%v)", far, near)
	}
	if far < g.SeekTime(g.Cylinders-1) {
		t.Errorf("long seek %v less than pure seek time %v", far, g.SeekTime(g.Cylinders-1))
	}
}

func TestDriveTimeIsDeterministic(t *testing.T) {
	run := func() time.Duration {
		d, err := NewDrive(Diablo31(), 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		var v [PageWords]Word
		for i := 0; i < 20; i++ {
			if err := Allocate(d, VDA(i*37%100), testLabel(Word(i)), &v); err != nil {
				t.Fatal(err)
			}
		}
		return d.Clock().Now()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same op sequence took %v then %v", a, b)
	}
}
