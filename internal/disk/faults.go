package disk

// Fault injection. These methods model damage happening to the pack outside
// the disciplined label-checked write path: media decay, a crashed program
// scribbling with a stale map, a power failure mid-write. They bypass every
// check and charge no simulated time, exactly as real damage would. The
// robustness experiments (E8) injure a disk this way and then measure how
// much the label checks and the Scavenger recover.

import "altoos/internal/sim"

// MarkBad makes the sector permanently unreadable: every operation on it
// fails with ErrBadSector. The Scavenger retires such pages with the special
// bad-page label so they are never allocated again (§3.5).
func (d *Drive) MarkBad(addr VDA) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if int(addr) < len(d.sectors) {
		d.sectors[addr].bad = true
	}
}

// HealBad clears a bad-sector fault (the media recovered or was replaced).
func (d *Drive) HealBad(addr VDA) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if int(addr) < len(d.sectors) {
		d.sectors[addr].bad = false
	}
}

// ZapLabel overwrites the sector's label with arbitrary words, bypassing all
// checks — the kind of damage a wild microcode write or media failure causes.
func (d *Drive) ZapLabel(addr VDA, w [LabelWords]Word) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if int(addr) < len(d.sectors) {
		d.sectors[addr].label = w
	}
}

// ZapValue overwrites the sector's value with arbitrary words, bypassing all
// checks.
func (d *Drive) ZapValue(addr VDA, v [PageWords]Word) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if int(addr) < len(d.sectors) {
		d.sectors[addr].value = v
	}
}

// CorruptLabel flips pseudo-random bits in the sector's label.
func (d *Drive) CorruptLabel(addr VDA, r *sim.Rand) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if int(addr) >= len(d.sectors) {
		return
	}
	lbl := &d.sectors[addr].label
	for i := 0; i < 3; i++ {
		w := r.Intn(LabelWords)
		lbl[w] ^= 1 << uint(r.Intn(16))
	}
}

// CorruptValue flips pseudo-random bits in the sector's value.
func (d *Drive) CorruptValue(addr VDA, r *sim.Rand) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if int(addr) >= len(d.sectors) {
		return
	}
	v := &d.sectors[addr].value
	for i := 0; i < 8; i++ {
		w := r.Intn(PageWords)
		v[w] ^= 1 << uint(r.Intn(16))
	}
}

// Rot models slow media decay on an idle pack: up to n distinct in-use
// sectors whose labels pass the eligibility filter get pseudo-random bits
// flipped in their values, checksums deliberately left stale. Candidates are
// gathered in address order and chosen by the caller's seeded Rand, so a
// replayed run rots identically. A nil filter makes every in-use sector
// eligible. The struck addresses are returned for the experiment's ledger —
// what the audit protocol must later detect and heal.
func (d *Drive) Rot(r *sim.Rand, n int, eligible func(Label) bool) []VDA {
	d.mu.Lock()
	defer d.mu.Unlock()
	var cand []VDA
	for i := range d.sectors {
		w := d.sectors[i].label
		if !InUse(w) {
			continue
		}
		if eligible != nil && !eligible(LabelFromWords(w)) {
			continue
		}
		cand = append(cand, VDA(i))
	}
	if n > len(cand) {
		n = len(cand)
	}
	struck := make([]VDA, 0, n)
	for k := 0; k < n; k++ {
		pick := k + r.Intn(len(cand)-k)
		cand[k], cand[pick] = cand[pick], cand[k]
		addr := cand[k]
		v := &d.sectors[addr].value
		for i := 0; i < 8; i++ {
			w := r.Intn(PageWords)
			v[w] ^= 1 << uint(r.Intn(16))
		}
		struck = append(struck, addr)
	}
	return struck
}

// CrashAfterWrites arms the crash injector: after n more successful write
// actions the drive behaves as if power failed — the (n+1)th and all later
// writes are lost and return ErrCrashed. Reads and checks keep working, as
// they would on a machine restarted after the crash. Pass a negative n to
// disarm.
func (d *Drive) CrashAfterWrites(n int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.crashAfterWrites = n
	if n >= 0 {
		d.crashed = false
		d.crashAt = 0
	}
}

// SetTornCrash selects how the armed crash lands. With torn on, the write
// the power failure catches is not suppressed cleanly: the part under the
// head is deposited garbled (tearInto) and its checksum goes stale, as a
// real head drop leaves it. Later writes are suppressed as usual. The flag
// persists across ClearCrash so a rig can be armed once per run.
func (d *Drive) SetTornCrash(torn bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.tornCrash = torn
}

// CrashAt reports the write-action sequence number (1-based over the
// drive's lifetime) of the write the armed crash destroyed, and whether the
// crash has fired at all. ClearCrash keeps the value for post-mortem
// reporting; re-arming with CrashAfterWrites resets it.
func (d *Drive) CrashAt() (int64, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.crashAt, d.crashAt != 0
}

// ClearCrash models restarting the machine after a crash: writes work again.
func (d *Drive) ClearCrash() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.crashed = false
	d.crashAfterWrites = -1
}

// Crashed reports whether the simulated crash has triggered.
func (d *Drive) Crashed() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.crashed
}
