package disk

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"altoos/internal/sim"
	"altoos/internal/trace"
)

// Action selects what a disk operation does to one part of a sector.
type Action uint8

const (
	// None skips the part.
	None Action = iota
	// Read copies the part from disk into the caller's buffer.
	Read
	// Check compares the caller's buffer with the disk word by word and
	// aborts the entire operation on mismatch. A zero buffer word is a
	// wildcard: it is replaced by the disk word, so a check is "a simple
	// kind of pattern match" (§3.3) that doubles as a guarded read.
	Check
	// Write copies the caller's buffer onto the disk. Once a write is begun
	// it must continue through the rest of the sector (§3.3): a Write on an
	// earlier part requires Write on every later part.
	Write
)

// String implements fmt.Stringer.
func (a Action) String() string {
	switch a {
	case None:
		return "none"
	case Read:
		return "read"
	case Check:
		return "check"
	case Write:
		return "write"
	}
	return fmt.Sprintf("Action(%d)", uint8(a))
}

// Part names one of the three regions of a sector, in rotational order.
type Part uint8

const (
	PartHeader Part = iota
	PartLabel
	PartValue
)

// String implements fmt.Stringer.
func (p Part) String() string {
	switch p {
	case PartHeader:
		return "header"
	case PartLabel:
		return "label"
	case PartValue:
		return "value"
	}
	return fmt.Sprintf("Part(%d)", uint8(p))
}

// Op describes a single disk operation on the sector at Addr. Each part has
// an action and, for Read/Check/Write, a caller-owned buffer. Nil buffers are
// only legal with action None.
type Op struct {
	Addr VDA

	Header Action
	Label  Action
	Value  Action

	HeaderData *[HeaderWords]Word
	LabelData  *[LabelWords]Word
	ValueData  *[PageWords]Word
}

// CheckError reports a failed check action: the operation was aborted at the
// given part and word, before any later action ran.
type CheckError struct {
	Addr     VDA
	Part     Part
	WordIdx  int
	Expected Word
	OnDisk   Word
}

// Error implements error.
func (e *CheckError) Error() string {
	return fmt.Sprintf("disk: check failed at %d %s word %d: expected %#04x, disk has %#04x",
		e.Addr, e.Part, e.WordIdx, e.Expected, e.OnDisk)
}

// Errors returned by Drive.Do.
var (
	// ErrBadSector reports a permanently unreadable sector (fault injection
	// or a scavenger-retired page).
	ErrBadSector = errors.New("disk: unrecoverable sector error")
	// ErrCrashed reports that the simulated machine lost power mid-write;
	// every subsequent write is suppressed until ClearCrash.
	ErrCrashed = errors.New("disk: simulated crash: write suppressed")
	// ErrAddress reports an out-of-range virtual disk address.
	ErrAddress = errors.New("disk: address out of range")
	// ErrBadOp reports a malformed operation (missing buffer, or a write
	// that does not continue through the rest of the sector).
	ErrBadOp = errors.New("disk: malformed operation")
)

// IsCheck reports whether err is a check failure, the expected outcome when
// a hint proves stale.
func IsCheck(err error) bool {
	if err == nil {
		return false // fast path: keeps the no-error case allocation-free
	}
	var ce *CheckError
	return errors.As(err, &ce)
}

// Stats counts drive activity. Revolutions is the total simulated time spent
// divided by the revolution time, the unit the paper uses for the cost of
// allocation and freeing.
type Stats struct {
	Ops       int64
	Chains    int64
	Seeks     int64
	Reads     int64
	Writes    int64
	Checks    int64
	CheckFail int64
	// CrashedWrites counts write actions lost to the simulated power
	// failure; TornWrites counts the subset that landed garbled mid-sector
	// instead of being suppressed cleanly (at most one per crash).
	CrashedWrites int64
	TornWrites    int64
	Busy          time.Duration
}

// Revolutions reports total busy time in units of disk revolutions.
func (s Stats) Revolutions(g Geometry) float64 {
	return float64(s.Busy) / float64(g.RevTime)
}

// sector is the in-memory image of one disk sector. vcrc is a checksum of
// the value words, computed lazily when a flight recorder first attaches
// (Drive.vcrcValid) and from then on maintained by every disciplined write
// (Write actions, image load) and deliberately left stale by the fault injectors:
// a mismatch found on a later read means damage happened outside the
// label-checked write path. It is bookkeeping for the flight recorder only
// — detection never changes an operation's outcome.
type sector struct {
	header [HeaderWords]Word
	label  [LabelWords]Word
	value  [PageWords]Word
	vcrc   Word
	bad    bool // fault injection: unrecoverable
}

// valueCRC folds the value words into one checksum word (rotate-and-xor,
// order-sensitive so transposed words are caught too).
func valueCRC(v []Word) Word {
	var c Word
	for _, w := range v {
		c = c<<1 | c>>15
		c ^= w
	}
	return c
}

// ValueCRC is the drive's per-sector value checksum, exported so higher
// layers (the cluster audit protocol) fold page contents with exactly the
// fold the flight recorder verifies — a digest disagreement between replicas
// then means the same thing as a KindCRCMismatch on one of them.
func ValueCRC(v []Word) Word { return valueCRC(v) }

// Drive is the standard disk object: a simulated moving-head drive holding
// one removable pack. It implements Device. A Drive is safe for concurrent
// use, although the modelled machine is single-user.
type Drive struct {
	mu      sync.Mutex
	geom    Geometry
	clock   *sim.Clock
	pack    Word
	sectors []sector
	curCyl  int
	stats   Stats

	// rec is the system's flight recorder; nil means tracing is off and
	// every emission site pays one branch. The recorder is a lock-order
	// leaf, so emitting under d.mu is safe.
	rec *trace.Recorder

	// vcrcValid reports that every sector's vcrc matches its value (minus
	// deliberate fault-injector staleness). The checksums exist only for
	// the flight recorder, so they are computed lazily when a recorder is
	// first attached; an untraced run never pays for them.
	vcrcValid bool

	// crashAfterWrites, when >= 0, counts down on each write action; when it
	// reaches zero the drive behaves as if power failed: the write and all
	// later ones are lost and ErrCrashed is returned.
	crashAfterWrites int64
	crashed          bool

	// tornCrash selects the torn flavour of the armed crash: the write the
	// power failure catches lands garbled mid-sector instead of being
	// suppressed cleanly, and its checksum goes stale — what a real head
	// drop leaves on the platter.
	tornCrash bool

	// writeSeq numbers every write action ever asked of the drive,
	// including ones suppressed after a crash; crashAt records the sequence
	// number of the write the crash destroyed (0 = the crash has not fired).
	writeSeq int64
	crashAt  int64
}

// Device is the abstract disk object of §2: anything that can perform
// sector operations. The operating system's own file and stream packages are
// written against Device so that "a program using a large non-standard disk"
// can supply its own implementation and still use the standard packages
// (§5.2).
type Device interface {
	// Do performs one sector operation, advancing simulated time.
	Do(op *Op) error
	// Geometry describes the device's shape and timing.
	Geometry() Geometry
	// Pack returns the mounted pack's number, recorded in sector headers.
	Pack() Word
	// Clock returns the virtual clock the device advances.
	Clock() *sim.Clock
}

var _ Device = (*Drive)(nil)

// NewDrive creates a drive with the given geometry holding a freshly
// low-level-formatted pack: every sector carries a correct header and the
// free-page label/value pattern. The clock may be shared with other devices;
// if nil, a new clock is created.
func NewDrive(g Geometry, pack Word, clock *sim.Clock) (*Drive, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if clock == nil {
		clock = sim.NewClock()
	}
	d := &Drive{
		geom:             g,
		clock:            clock,
		pack:             pack,
		sectors:          make([]sector, g.NSectors()),
		crashAfterWrites: -1,
	}
	for i := range d.sectors {
		d.sectors[i].header = Header{Pack: pack, Addr: VDA(i)}.Words()
		d.sectors[i].label = freeLabelWords
		d.sectors[i].value = onesValue // block copy: this loop is format time
	}
	return d, nil
}

// SetRecorder attaches a flight recorder to the drive (nil detaches). Every
// layer holding a Device reaches the recorder through TraceRecorder, so the
// drive is the distribution point for tracing across the storage stack.
func (d *Drive) SetRecorder(r *trace.Recorder) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.rec = r
	if r != nil && !d.vcrcValid {
		// First attachment: bring every checksum up to date with the pack
		// as it stands, so later mismatches mean post-attachment damage.
		for i := range d.sectors {
			d.sectors[i].vcrc = valueCRC(d.sectors[i].value[:])
		}
		d.vcrcValid = true
	}
}

// EnsureVCRC brings every sector's checksum up to date without attaching a
// recorder. The rot injector needs the checksums live before it strikes —
// rot deliberately leaves them stale, and that staleness is the audit
// protocol's local dirty bit — but an untraced rig (the crash explorer) has
// no recorder to trigger the lazy bootstrap in SetRecorder.
func (d *Drive) EnsureVCRC() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.vcrcValid {
		return
	}
	for i := range d.sectors {
		d.sectors[i].vcrc = valueCRC(d.sectors[i].value[:])
	}
	d.vcrcValid = true
}

// PeekVCRC returns the sector's recorded value checksum without charging
// time, and whether checksum maintenance is live at all. Like PeekLabel it
// models examining the pack offline; the audit protocol uses it to tell a
// locally-clean copy (recorded checksum matches the value just read) from a
// rotted one, without a second paid read.
func (d *Drive) PeekVCRC(addr VDA) (Word, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.vcrcValid || int(addr) >= len(d.sectors) {
		return 0, false
	}
	return d.sectors[addr].vcrc, true
}

// TraceRecorder implements trace.Source.
func (d *Drive) TraceRecorder() *trace.Recorder {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.rec
}

// Geometry implements Device.
func (d *Drive) Geometry() Geometry { return d.geom }

// Pack implements Device.
func (d *Drive) Pack() Word { return d.pack }

// Clock implements Device.
func (d *Drive) Clock() *sim.Clock { return d.clock }

// Stats returns a snapshot of accumulated drive statistics.
func (d *Drive) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ResetStats zeroes the accumulated statistics.
func (d *Drive) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats = Stats{}
}

// validate checks the static shape of an operation.
func validate(op *Op) error {
	type part struct {
		a   Action
		buf bool
	}
	parts := [3]part{
		{op.Header, op.HeaderData != nil},
		{op.Label, op.LabelData != nil},
		{op.Value, op.ValueData != nil},
	}
	writing := false
	for i, p := range parts {
		if p.a != None && !p.buf {
			return fmt.Errorf("%w: %s action %v without buffer", ErrBadOp, Part(i), p.a)
		}
		if p.a > Write {
			return fmt.Errorf("%w: unknown action %d", ErrBadOp, p.a)
		}
		if writing && p.a != Write {
			return fmt.Errorf("%w: write must continue through the rest of the sector (%s is %v)",
				ErrBadOp, Part(i), p.a)
		}
		if p.a == Write {
			writing = true
		}
	}
	return nil
}

// Do implements Device. It advances the clock by the seek, rotational-latency
// and transfer time the operation costs, then performs the actions in
// rotational order (header, label, value). A failed check aborts the
// remaining actions.
func (d *Drive) Do(op *Op) error {
	if err := validate(op); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()

	d.stats.Ops++
	start := d.clock.Now()
	err := d.do(op)
	if d.rec != nil {
		d.traceOp(op, start, err)
	}
	return err
}

// do performs the operation proper. d.mu is held.
func (d *Drive) do(op *Op) error {
	if int(op.Addr) >= len(d.sectors) {
		return fmt.Errorf("%w: %d (disk has %d sectors)", ErrAddress, op.Addr, len(d.sectors))
	}

	d.advanceTo(op.Addr)

	s := &d.sectors[op.Addr]
	if s.bad {
		return fmt.Errorf("%w: sector %d", ErrBadSector, op.Addr)
	}

	if err := d.doPart(op.Addr, PartHeader, op.Header, s.header[:], slice2(op.HeaderData)); err != nil {
		return err
	}
	if err := d.doPart(op.Addr, PartLabel, op.Label, s.label[:], slice7(op.LabelData)); err != nil {
		return err
	}
	return d.doPart(op.Addr, PartValue, op.Value, s.value[:], slice256(op.ValueData))
}

// Outcome codes carried in a KindDiskOp event's second argument.
const (
	opOK int64 = iota
	opCheckFail
	opBadSector
	opCrashed
	opError
)

// traceOp emits the operation-level span and failure events. d.mu is held
// and d.rec is known non-nil.
func (d *Drive) traceOp(op *Op, start time.Duration, err error) {
	now := d.clock.Now()
	outcome := opOK
	switch {
	case err == nil:
	case IsCheck(err):
		outcome = opCheckFail
	case errors.Is(err, ErrBadSector):
		outcome = opBadSector
		d.rec.Emit(now, trace.KindBadSector, "", int64(op.Addr), outcome)
		d.rec.Add("disk.bad_sector", 1)
	case errors.Is(err, ErrCrashed):
		outcome = opCrashed
	default:
		outcome = opError
	}
	d.rec.EmitSpan(start, now-start, trace.KindDiskOp, opName(op), int64(op.Addr), outcome)
	d.rec.Add("disk.ops", 1)
	d.rec.Observe("disk.op.revs", float64(now-start)/float64(d.geom.RevTime))
}

// opNames precomputes the "header/label/value" action triple for every
// operation shape, so tracing an op does not build a string per sector.
// Index: 16*header + 4*label + value; validate has already rejected any
// action above Write.
var opNames = func() (t [64]string) {
	for h := None; h <= Write; h++ {
		for l := None; l <= Write; l++ {
			for v := None; v <= Write; v++ {
				t[16*uint8(h)+4*uint8(l)+uint8(v)] = h.String() + "/" + l.String() + "/" + v.String()
			}
		}
	}
	return t
}()

func opName(op *Op) string {
	i := 16*uint8(op.Header) + 4*uint8(op.Label) + uint8(op.Value)
	if int(i) < len(opNames) {
		return opNames[i]
	}
	return "?"
}

func slice2(p *[HeaderWords]Word) []Word {
	if p == nil {
		return nil
	}
	return p[:]
}

func slice7(p *[LabelWords]Word) []Word {
	if p == nil {
		return nil
	}
	return p[:]
}

func slice256(p *[PageWords]Word) []Word {
	if p == nil {
		return nil
	}
	return p[:]
}

// doPart applies one action to one sector part. d.mu is held.
func (d *Drive) doPart(addr VDA, part Part, a Action, dst, mem []Word) error {
	switch a {
	case None:
		return nil
	case Read:
		d.stats.Reads++
		copy(mem, dst)
		if part == PartValue && d.rec != nil {
			d.checkValueCRC(addr, dst)
		}
		return nil
	case Check:
		d.stats.Checks++
		for i := range mem {
			if mem[i] == 0 {
				mem[i] = dst[i] // wildcard: pattern match fills in the disk word
				continue
			}
			if mem[i] != dst[i] {
				d.stats.CheckFail++
				if d.rec != nil {
					d.rec.Emit(d.clock.Now(), trace.KindCheckFail, part.String(), int64(addr), int64(i))
					d.rec.Add("disk.check.fail", 1)
				}
				return &CheckError{Addr: addr, Part: part, WordIdx: i, Expected: mem[i], OnDisk: dst[i]}
			}
		}
		if part == PartValue && d.rec != nil {
			d.checkValueCRC(addr, dst)
		}
		return nil
	case Write:
		d.writeSeq++
		if d.crashed {
			d.stats.CrashedWrites++
			if d.rec != nil {
				d.rec.Emit(d.clock.Now(), trace.KindCrashWrite, part.String(), int64(addr), d.writeSeq)
				d.rec.Add("disk.write.crashed", 1)
			}
			return ErrCrashed
		}
		if d.crashAfterWrites == 0 {
			d.crashed = true
			d.crashAt = d.writeSeq
			d.stats.CrashedWrites++
			if d.tornCrash {
				// The head was over the sector when power failed: the part
				// in flight lands garbled — neither the old words nor the
				// new — and the recorded checksum is deliberately left
				// stale, so a later read surfaces the damage to the flight
				// recorder as KindCRCMismatch.
				tearInto(dst, mem, addr, part)
				d.stats.TornWrites++
				if d.rec != nil {
					d.rec.Add("disk.write.torn", 1)
				}
			}
			if d.rec != nil {
				d.rec.Emit(d.clock.Now(), trace.KindCrashWrite, part.String(), int64(addr), d.writeSeq)
				d.rec.Add("disk.write.crashed", 1)
			}
			return ErrCrashed
		}
		if d.crashAfterWrites > 0 {
			d.crashAfterWrites--
		}
		d.stats.Writes++
		copy(dst, mem)
		if part == PartValue && d.vcrcValid {
			d.sectors[addr].vcrc = valueCRC(dst)
		}
		return nil
	}
	return fmt.Errorf("%w: action %d", ErrBadOp, a)
}

// tearInto deposits what a torn write leaves on the platter: the first words
// of the new data, then garbage from where the transfer stopped. The garble
// is a pure function of the buffer, the sector address and the word index,
// so a replayed run tears identically — the crash explorer depends on it.
func tearInto(dst, mem []Word, addr VDA, part Part) {
	cut := len(dst) / 2
	copy(dst[:cut], mem[:cut])
	for i := cut; i < len(dst); i++ {
		dst[i] = mem[i] ^ 0xA5A5 ^ Word((i*7)&0xFFFF) ^ Word(addr) ^ Word(part)<<13
	}
}

// The header part of a sector is written at format time only; sectors are
// addressed by position, so a Read or Check of the header serves to verify
// the pack number and that the head really reached the sector it sought.

// advanceTo charges the clock for reaching the sector at addr: a seek if the
// cylinder differs, then rotational delay until the sector's slot arrives,
// then one sector transfer time. d.mu is held.
func (d *Drive) advanceTo(addr VDA) {
	g := d.geom
	cyl, _, sect := g.Locate(addr)
	start := d.clock.Now()
	t := start
	if cyl != d.curCyl {
		from := d.curCyl
		t += g.SeekTime(cyl - d.curCyl)
		d.curCyl = cyl
		d.stats.Seeks++
		if d.rec != nil {
			d.rec.EmitSpan(start, t-start, trace.KindSeek, "", int64(from), int64(cyl))
			d.rec.Add("disk.seeks", 1)
		}
	}
	// Rotational position is a global property of the spindle: the slot that
	// is under the heads at time t.
	st := g.SectorTime()
	rev := g.RevTime
	pos := t % rev
	target := time.Duration(sect) * st
	wait := target - pos
	if wait < 0 {
		wait += rev
	}
	if d.rec != nil && wait > 0 {
		d.rec.EmitSpan(t, wait, trace.KindRotate, "", int64(sect), int64(addr))
	}
	t += wait + st // wait for the slot, then transfer the sector
	d.clock.Advance(t - start)
	d.stats.Busy += t - start
}

// checkValueCRC compares the sector's stored checksum with one recomputed
// from the value just read. A mismatch means the value changed outside the
// disciplined write path — a fault injector, modelling media decay or a wild
// write — and is reported to the recorder only; the read itself still
// succeeds, exactly as on the real hardware, where such damage surfaces
// later as inconsistency. d.mu is held and d.rec is known non-nil.
func (d *Drive) checkValueCRC(addr VDA, dst []Word) {
	if valueCRC(dst) != d.sectors[addr].vcrc {
		d.rec.Emit(d.clock.Now(), trace.KindCRCMismatch, "value", int64(addr), opError)
		d.rec.Add("disk.crc.mismatch", 1)
	}
}

// peek returns a copy of the raw sector for tools, tests and the fault
// injector. It models removing the pack and examining it offline: no time is
// charged and no checks are made.
func (d *Drive) peek(addr VDA) (sector, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if int(addr) >= len(d.sectors) {
		return sector{}, false
	}
	return d.sectors[addr], true
}

// PeekLabel returns the raw label words of a sector without charging time.
// It exists for tests and offline tools only; the operating system proper
// always pays for its accesses.
func (d *Drive) PeekLabel(addr VDA) ([LabelWords]Word, bool) {
	s, ok := d.peek(addr)
	return s.label, ok
}
