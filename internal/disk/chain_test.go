package disk

import (
	"errors"
	"testing"
	"time"

	"altoos/internal/sim"
	"altoos/internal/trace"
)

// readOps builds a chain of plain label reads for addrs, backed by lbls.
func readOps(addrs []VDA, lbls [][LabelWords]Word) []Op {
	ops := make([]Op, len(addrs))
	for i, a := range addrs {
		ops[i] = Op{Addr: a, Label: Read, LabelData: &lbls[i]}
	}
	return ops
}

func TestChainOrderedPreservesOrderAndAborts(t *testing.T) {
	d := newTestDrive(t)
	var v [PageWords]Word
	fill(&v, 0x100)
	if err := Allocate(d, 3, testLabel(1), &v); err != nil {
		t.Fatal(err)
	}

	// Op 0 succeeds, op 1's check fails (sector 5 is free, not testLabel),
	// op 2 must never run: its write would claim sector 7.
	pat0 := freeLabelWords
	pat1 := testLabel(9).Words()
	lbl2 := testLabel(2).Words()
	ops := []Op{
		{Addr: 4, Label: Check, LabelData: &pat0},
		{Addr: 5, Label: Check, LabelData: &pat1},
		{Addr: 7, Label: Write, LabelData: &lbl2, Value: Write, ValueData: &v},
	}
	errs := d.DoChain(ops, Ordered)
	if errs == nil {
		t.Fatal("expected errors from chain with failing check")
	}
	if errs[0] != nil {
		t.Errorf("op 0: %v, want success", errs[0])
	}
	if !IsCheck(errs[1]) {
		t.Errorf("op 1: %v, want check failure", errs[1])
	}
	if !errors.Is(errs[2], ErrChainAborted) {
		t.Errorf("op 2: %v, want ErrChainAborted", errs[2])
	}
	if got, _ := d.PeekLabel(7); !IsFreeLabel(got) {
		t.Error("aborted op 2 wrote its label anyway")
	}
	if err := FirstChainError(errs); !IsCheck(err) {
		t.Errorf("FirstChainError = %v, want the check failure", err)
	}
}

func TestChainFreeOrderRunsEveryOpAndMapsErrors(t *testing.T) {
	d := newTestDrive(t)
	// Scattered reads plus one failing check; free order must execute all
	// of them and report the failure at the failing op's (post-reorder)
	// position.
	addrs := []VDA{90, 7, 55, 20}
	lbls := make([][LabelWords]Word, len(addrs))
	ops := readOps(addrs, lbls)
	bad := testLabel(3).Words()
	ops = append(ops, Op{Addr: 33, Label: Check, LabelData: &bad})

	errs := d.DoChain(ops, FreeOrder)
	if errs == nil {
		t.Fatal("expected errors from chain with failing check")
	}
	for i := range ops {
		if ops[i].Addr == 33 {
			if !IsCheck(errs[i]) {
				t.Errorf("op at addr 33: %v, want check failure", errs[i])
			}
		} else if errs[i] != nil {
			t.Errorf("op at addr %d: %v, want success (free order must not abort)", ops[i].Addr, errs[i])
		}
	}
}

func TestChainFreeOrderSchedulerIsDeterministic(t *testing.T) {
	run := func() ([]VDA, time.Duration) {
		d := newTestDrive(t)
		d.Clock().Advance(7 * time.Millisecond) // mid-rotation arrival
		addrs := make([]VDA, 0, 36)
		for i := 0; i < 36; i++ {
			addrs = append(addrs, VDA((i*17+5)%120)) // scrambled, with repeats across tracks
		}
		lbls := make([][LabelWords]Word, len(addrs))
		ops := readOps(addrs, lbls)
		start := d.Clock().Now()
		if errs := d.DoChain(ops, FreeOrder); errs != nil {
			t.Fatalf("chain failed: %v", FirstChainError(errs))
		}
		order := make([]VDA, len(ops))
		for i := range ops {
			order[i] = ops[i].Addr
		}
		return order, d.Clock().Now() - start
	}
	o1, t1 := run()
	o2, t2 := run()
	if t1 != t2 {
		t.Errorf("elapsed differs between identical runs: %v vs %v", t1, t2)
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("schedule differs at %d: %d vs %d", i, o1[i], o2[i])
		}
	}
	// The elevator visits tracks in ascending order; within a track the
	// slots are a rotation of ascending order (at most one wrap point),
	// chosen by the arrival phase.
	g := Diablo31()
	spt := g.SectorsPerTrack
	for i := 1; i < len(o1); i++ {
		prevTrack, curTrack := int(o1[i-1])/spt, int(o1[i])/spt
		if curTrack < prevTrack {
			t.Fatalf("schedule visits track %d after track %d: %v", curTrack, prevTrack, o1)
		}
	}
	for i, j := 0, 0; i < len(o1); i = j {
		track := int(o1[i]) / spt
		for j = i; j < len(o1) && int(o1[j])/spt == track; j++ {
		}
		wraps := 0
		for k := i + 1; k < j; k++ {
			if o1[k] < o1[k-1] {
				wraps++
			}
		}
		if wraps > 1 {
			t.Fatalf("track %d run is not a single rotation of slot order: %v", track, o1[i:j])
		}
	}
}

func TestChainFreeOrderBeatsOrderedOnScatteredBatch(t *testing.T) {
	elapsed := func(mode ChainMode) time.Duration {
		d := newTestDrive(t)
		// Slots visited in reverse order on one track: worst case for
		// in-order service, one revolution when sorted.
		addrs := make([]VDA, 0, 12)
		for s := 11; s >= 0; s-- {
			addrs = append(addrs, VDA(s))
		}
		lbls := make([][LabelWords]Word, len(addrs))
		ops := readOps(addrs, lbls)
		start := d.Clock().Now()
		if errs := d.DoChain(ops, mode); errs != nil {
			t.Fatalf("chain failed: %v", FirstChainError(errs))
		}
		return d.Clock().Now() - start
	}
	ordered := elapsed(Ordered)
	free := elapsed(FreeOrder)
	if free >= ordered {
		t.Errorf("free order (%v) not faster than ordered (%v) on reversed batch", free, ordered)
	}
	g := Diablo31()
	if want := 12 * g.SectorTime(); free != want {
		t.Errorf("free-order reversed track took %v, want one pass = %v", free, want)
	}
}

func TestChainTraceEvents(t *testing.T) {
	d := newTestDrive(t)
	rec := trace.New(256)
	d.SetRecorder(rec)
	lbls := make([][LabelWords]Word, 3)
	ops := readOps([]VDA{1, 2, 3}, lbls)
	if errs := d.DoChain(ops, Ordered); errs != nil {
		t.Fatalf("chain failed: %v", FirstChainError(errs))
	}
	if n := countKind(rec, trace.KindDiskChain); n != 1 {
		t.Errorf("KindDiskChain events = %d, want 1", n)
	}
	if n := countKind(rec, trace.KindDiskOp); n != 3 {
		t.Errorf("KindDiskOp events = %d, want 3", n)
	}
	if c := rec.Counter("disk.chains"); c != 1 {
		t.Errorf("disk.chains counter = %d, want 1", c)
	}
	if got := d.Stats().Chains; got != 1 {
		t.Errorf("Stats.Chains = %d, want 1", got)
	}
}

func TestDoChainOnFallsBackForPlainDevices(t *testing.T) {
	d := newTestDrive(t)
	dev := plainDevice{d} // hides DoChain
	pat := testLabel(9).Words()
	var lbl [LabelWords]Word
	ops := []Op{
		{Addr: 5, Label: Check, LabelData: &pat},
		{Addr: 6, Label: Read, LabelData: &lbl},
	}
	errs := DoChainOn(dev, ops, Ordered)
	if errs == nil {
		t.Fatal("expected errors")
	}
	if !IsCheck(errs[0]) || !errors.Is(errs[1], ErrChainAborted) {
		t.Errorf("fallback semantics differ: %v", errs)
	}
}

// plainDevice wraps a Drive exposing only the four Device methods, the way
// a custom §5.2 device would look to the standard packages.
type plainDevice struct{ d *Drive }

func (p plainDevice) Do(op *Op) error    { return p.d.Do(op) }
func (p plainDevice) Geometry() Geometry { return p.d.Geometry() }
func (p plainDevice) Pack() Word         { return p.d.Pack() }
func (p plainDevice) Clock() *sim.Clock  { return p.d.Clock() }

func TestChainFreeOrderAbortsAsUnitOnCrash(t *testing.T) {
	d := newTestDrive(t)
	// A free-order chain of three independent allocations, with power
	// failing on the first write action the scheduler issues. Unlike an
	// ordinary per-op failure, a crash kills the controller: the remaining
	// ops must never run and must report ErrChainAborted, not their own
	// ErrCrashed — the controller never reached them.
	d.CrashAfterWrites(0)
	var v [PageWords]Word
	fill(&v, 0x200)
	lbls := [3][LabelWords]Word{testLabel(1).Words(), testLabel(2).Words(), testLabel(3).Words()}
	ops := []Op{
		{Addr: 40, Label: Write, LabelData: &lbls[0], Value: Write, ValueData: &v},
		{Addr: 80, Label: Write, LabelData: &lbls[1], Value: Write, ValueData: &v},
		{Addr: 10, Label: Write, LabelData: &lbls[2], Value: Write, ValueData: &v},
	}
	errs := d.DoChain(ops, FreeOrder)
	if errs == nil {
		t.Fatal("expected errors from chain under crash")
	}
	crashes, aborted := 0, 0
	for i := range ops {
		switch {
		case errors.Is(errs[i], ErrCrashed):
			crashes++
		case errors.Is(errs[i], ErrChainAborted):
			aborted++
		default:
			t.Errorf("op at addr %d: %v, want ErrCrashed or ErrChainAborted", ops[i].Addr, errs[i])
		}
	}
	if crashes != 1 || aborted != 2 {
		t.Errorf("got %d crashed + %d aborted ops, want exactly 1 + 2: the crash must abort the chain as a unit", crashes, aborted)
	}
	// No op after the crash was issued: exactly one write action was asked
	// of the drive (and lost).
	if st := d.Stats(); st.CrashedWrites != 1 {
		t.Errorf("CrashedWrites = %d, want 1 (later ops must not reach the drive)", st.CrashedWrites)
	}
	for _, a := range []VDA{40, 80, 10} {
		if got, _ := d.PeekLabel(a); !IsFreeLabel(got) {
			t.Errorf("sector %d was written by a chain op past the crash", a)
		}
	}
}

func TestDoChainOnFallbackAbortsOnCrash(t *testing.T) {
	d := newTestDrive(t)
	d.CrashAfterWrites(0)
	var v [PageWords]Word
	fill(&v, 0x300)
	lbls := [2][LabelWords]Word{testLabel(1).Words(), testLabel(2).Words()}
	ops := []Op{
		{Addr: 12, Label: Write, LabelData: &lbls[0], Value: Write, ValueData: &v},
		{Addr: 60, Label: Write, LabelData: &lbls[1], Value: Write, ValueData: &v},
	}
	errs := DoChainOn(plainDevice{d}, ops, FreeOrder)
	if errs == nil {
		t.Fatal("expected errors from fallback chain under crash")
	}
	if !errors.Is(errs[0], ErrCrashed) {
		t.Errorf("op 0: %v, want ErrCrashed", errs[0])
	}
	if !errors.Is(errs[1], ErrChainAborted) {
		t.Errorf("op 1: %v, want ErrChainAborted (crash aborts the fallback chain too)", errs[1])
	}
}
