package disk

// Pack images. A drive's pack can be saved to and restored from a byte
// stream, which is how the cmd/altofs and cmd/altoexec tools persist a
// simulated disk between runs — the moral equivalent of a removable pack.
//
// The format is deliberately simple and fully self-describing: a magic
// string, the geometry, the pack number, then every sector (header, label,
// value, bad flag) in address order, all in big-endian 16-bit words.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"altoos/internal/sim"
)

const (
	imageMagic   = "ALTOPACK"
	imageVersion = uint16(1)
)

// ErrImage reports a malformed pack image.
var ErrImage = errors.New("disk: bad pack image")

// SaveImage writes the drive's pack to w.
func (d *Drive) SaveImage(w io.Writer) error {
	d.mu.Lock()
	defer d.mu.Unlock()

	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(imageMagic); err != nil {
		return err
	}
	hdr := []uint16{
		imageVersion,
		uint16(d.geom.Cylinders),
		uint16(d.geom.Heads),
		uint16(d.geom.SectorsPerTrack),
		uint16(d.geom.RevTime / time.Microsecond / 100), // units of 100us
		uint16(d.geom.SeekSettle / time.Microsecond / 100),
		uint16(d.geom.SeekPerCyl / time.Microsecond),
		d.pack,
	}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.BigEndian, v); err != nil {
			return err
		}
	}
	if err := writeString(bw, d.geom.Name); err != nil {
		return err
	}
	for i := range d.sectors {
		s := &d.sectors[i]
		if err := binary.Write(bw, binary.BigEndian, s.header); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.BigEndian, s.label); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.BigEndian, s.value); err != nil {
			return err
		}
		b := byte(0)
		if s.bad {
			b = 1
		}
		if err := bw.WriteByte(b); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadImage reads a pack image from r and returns a drive holding it. The
// clock may be shared; if nil a new one is created.
func LoadImage(r io.Reader, clock *sim.Clock) (*Drive, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(imageMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrImage, err)
	}
	if string(magic) != imageMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrImage, magic)
	}
	var hdr [8]uint16
	for i := range hdr {
		if err := binary.Read(br, binary.BigEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrImage, err)
		}
	}
	if hdr[0] != imageVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrImage, hdr[0])
	}
	name, err := readString(br)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrImage, err)
	}
	g := Geometry{
		Name:            name,
		Cylinders:       int(hdr[1]),
		Heads:           int(hdr[2]),
		SectorsPerTrack: int(hdr[3]),
		RevTime:         time.Duration(hdr[4]) * 100 * time.Microsecond,
		SeekSettle:      time.Duration(hdr[5]) * 100 * time.Microsecond,
		SeekPerCyl:      time.Duration(hdr[6]) * time.Microsecond,
	}
	d, err := NewDrive(g, hdr[7], clock)
	if err != nil {
		return nil, err
	}
	for i := range d.sectors {
		s := &d.sectors[i]
		if err := binary.Read(br, binary.BigEndian, &s.header); err != nil {
			return nil, fmt.Errorf("%w: sector %d: %v", ErrImage, i, err)
		}
		if err := binary.Read(br, binary.BigEndian, &s.label); err != nil {
			return nil, fmt.Errorf("%w: sector %d: %v", ErrImage, i, err)
		}
		if err := binary.Read(br, binary.BigEndian, &s.value); err != nil {
			return nil, fmt.Errorf("%w: sector %d: %v", ErrImage, i, err)
		}
		b, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("%w: sector %d: %v", ErrImage, i, err)
		}
		s.bad = b != 0
		// Loading an image is a disciplined path: the checksum reflects the
		// value as loaded, so only post-load damage can trip it.
		s.vcrc = valueCRC(s.value[:])
	}
	d.vcrcValid = true
	return d, nil
}

func writeString(w *bufio.Writer, s string) error {
	if len(s) > 0xFF {
		s = s[:0xFF]
	}
	if err := w.WriteByte(byte(len(s))); err != nil {
		return err
	}
	_, err := w.WriteString(s)
	return err
}

func readString(r *bufio.Reader) (string, error) {
	n, err := r.ReadByte()
	if err != nil {
		return "", err
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
