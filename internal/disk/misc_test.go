package disk

import (
	"strings"
	"testing"

	"altoos/internal/sim"
)

func TestStringers(t *testing.T) {
	for _, s := range []string{
		Read.String(), Check.String(), Write.String(), None.String(),
		PartHeader.String(), PartLabel.String(), PartValue.String(),
		Diablo31().String(),
		FV{FID: 3, Version: 1}.String(),
		Label{FID: 3, Version: 1, PageNum: 2}.Name(),
		(&CheckError{Addr: 1, Part: PartLabel, WordIdx: 2, Expected: 3, OnDisk: 4}).Error(),
	} {
		if s == "" {
			t.Fatal("empty Stringer output")
		}
	}
	if got := Action(200).String(); !strings.Contains(got, "200") {
		t.Errorf("unknown action: %q", got)
	}
	if got := Part(9).String(); !strings.Contains(got, "9") {
		t.Errorf("unknown part: %q", got)
	}
}

func TestPeekLabel(t *testing.T) {
	d := newTestDrive(t)
	lbl, ok := d.PeekLabel(0)
	if !ok || !IsFreeLabel(lbl) {
		t.Fatalf("PeekLabel(0) = %v %v", lbl, ok)
	}
	if _, ok := d.PeekLabel(VDA(d.Geometry().NSectors())); ok {
		t.Fatal("PeekLabel out of range succeeded")
	}
}

func TestZapAndCorrupt(t *testing.T) {
	d := newTestDrive(t)
	lbl := testLabel(0)
	var v [PageWords]Word
	fill(&v, 1)
	if err := Allocate(d, 5, lbl, &v); err != nil {
		t.Fatal(err)
	}

	d.ZapLabel(5, BadLabelWords())
	raw, _ := d.PeekLabel(5)
	if !IsBadLabel(raw) {
		t.Fatal("ZapLabel did not take")
	}

	var ones [PageWords]Word
	for i := range ones {
		ones[i] = 0xFFFF
	}
	d.ZapValue(5, ones)

	r := sim.NewRand(1)
	before, _ := d.PeekLabel(5)
	d.CorruptLabel(5, r)
	after, _ := d.PeekLabel(5)
	if before == after {
		t.Fatal("CorruptLabel changed nothing")
	}
	d.CorruptValue(5, r) // must not panic; content intentionally unchecked

	// Out-of-range injections are harmless no-ops.
	big := VDA(d.Geometry().NSectors())
	d.ZapLabel(big, BadLabelWords())
	d.ZapValue(big, ones)
	d.CorruptLabel(big, r)
	d.CorruptValue(big, r)
}

func TestValidateRejectsUnknownAction(t *testing.T) {
	d := newTestDrive(t)
	var lbl [LabelWords]Word
	err := d.Do(&Op{Addr: 0, Label: Action(7), LabelData: &lbl})
	if err == nil {
		t.Fatal("unknown action accepted")
	}
}

func TestDriveConcurrentOperations(t *testing.T) {
	// The drive serializes operations internally; concurrent clients (the
	// keyboard process and the main program, say) must never corrupt
	// sectors or the clock.
	d := newTestDrive(t)
	done := make(chan error, 4)
	for g := 0; g < 4; g++ {
		g := g
		go func() {
			var v [PageWords]Word
			for i := 0; i < 50; i++ {
				a := VDA(g*500 + i)
				lbl := Label{FID: FID(0x100 + g), Version: 1, PageNum: Word(i),
					Length: PageBytes, Next: NilVDA, Prev: NilVDA}
				if err := Allocate(d, a, lbl, &v); err != nil {
					done <- err
					return
				}
				if err := ReadValue(d, a, lbl, &v); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 4; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if d.Stats().Ops != 4*50*3 {
		t.Fatalf("ops = %d", d.Stats().Ops)
	}
}
