package disk

import (
	"testing"
	"testing/quick"
)

func TestLabelWordsRoundTrip(t *testing.T) {
	f := func(fid uint32, ver, pn, length uint16, next, prev uint16) bool {
		l := Label{
			FID:     FID(fid),
			Version: ver,
			PageNum: pn,
			Length:  length,
			Next:    VDA(next),
			Prev:    VDA(prev),
		}
		return LabelFromWords(l.Words()) == l
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDirectoryFIDs(t *testing.T) {
	if !SysDirFID.IsDirectory() {
		t.Error("SysDirFID must be a directory FID")
	}
	if DescriptorFID.IsDirectory() {
		t.Error("DescriptorFID must not be a directory FID")
	}
	if BootFID.IsDirectory() {
		t.Error("BootFID must not be a directory FID")
	}
	if f := FirstUserFID | DirFIDBit; !f.IsDirectory() {
		t.Error("setting DirFIDBit must mark a FID as a directory")
	}
}

func TestSentinelLabels(t *testing.T) {
	free, bad := FreeLabelWords(), BadLabelWords()
	if free == bad {
		t.Fatal("free and bad label patterns must differ")
	}
	if !IsFreeLabel(free) || IsFreeLabel(bad) {
		t.Error("IsFreeLabel misclassifies")
	}
	if !IsBadLabel(bad) || IsBadLabel(free) {
		t.Error("IsBadLabel misclassifies")
	}
	if InUse(free) || InUse(bad) {
		t.Error("sentinel labels must not be in use")
	}
	live := Label{FID: FirstUserFID, Version: 1, PageNum: 0}.Words()
	if !InUse(live) {
		t.Error("a live label must be in use")
	}
}

func TestLiveLabelIsNeverASentinel(t *testing.T) {
	// Property: no label produced by the file layer (version >= 1, FID with a
	// zero upper bit pattern outside 0xFFFF) collides with the sentinels.
	f := func(fid uint32, ver uint16, pn uint16) bool {
		if ver == 0 {
			ver = 1
		}
		if fid == 0xFFFFFFFF || fid == 0xFFFFFFFE {
			fid = uint32(FirstUserFID)
		}
		w := Label{FID: FID(fid), Version: ver, PageNum: pn}.Words()
		return InUse(w)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	f := func(pack, addr uint16) bool {
		h := Header{Pack: pack, Addr: VDA(addr)}
		return HeaderFromWords(h.Words()) == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFIDStrings(t *testing.T) {
	if s := SysDirFID.String(); s != "dir#1" {
		t.Errorf("SysDirFID.String() = %q", s)
	}
	if s := DescriptorFID.String(); s != "file#2" {
		t.Errorf("DescriptorFID.String() = %q", s)
	}
}

func TestLinkPatternWildcardsHints(t *testing.T) {
	fv := FV{FID: 7, Version: 3}
	pat := LinkPattern(fv, 5)
	if pat[4] != 0 || pat[5] != 0 || pat[6] != 0 {
		t.Error("length and links must be wildcards in a link pattern")
	}
	got := LabelFromWords(pat)
	if got.FID != 7 || got.Version != 3 || got.PageNum != 5 {
		t.Errorf("absolute name mangled: %+v", got)
	}
}
