package disk

import (
	"testing"
	"testing/quick"
	"time"
)

func TestGeometryPresetsValid(t *testing.T) {
	for _, g := range []Geometry{Diablo31(), Trident()} {
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", g.Name, err)
		}
	}
}

func TestDiablo31MatchesPaper(t *testing.T) {
	g := Diablo31()
	// §2: "each of which can store 2.5 megabytes on a single removable pack"
	if mb := float64(g.Bytes()) / 1e6; mb < 2.3 || mb > 2.7 {
		t.Errorf("Diablo31 capacity = %.2f MB, want about 2.5 MB", mb)
	}
	// §2: "can transfer 64k words in about one second": full-track streaming
	// moves SectorsPerTrack*256 words per revolution.
	wordsPerSec := float64(g.SectorsPerTrack*PageWords) / g.RevTime.Seconds()
	secFor64K := 65536 / wordsPerSec
	if secFor64K < 0.5 || secFor64K > 1.5 {
		t.Errorf("64K words take %.2f s at full rate, want about 1 s", secFor64K)
	}
}

func TestTridentRoughlyTwiceDiablo(t *testing.T) {
	d, tr := Diablo31(), Trident()
	if tr.Bytes() < 2*d.Bytes()*9/10 {
		t.Errorf("Trident capacity %d not about twice Diablo %d", tr.Bytes(), d.Bytes())
	}
	if tr.RevTime >= d.RevTime {
		t.Errorf("Trident not faster than Diablo: rev %v vs %v", tr.RevTime, d.RevTime)
	}
}

func TestGeometryValidateRejectsBadShapes(t *testing.T) {
	cases := []Geometry{
		{Name: "zero"},
		{Name: "neg", Cylinders: -1, Heads: 2, SectorsPerTrack: 12, RevTime: time.Millisecond},
		{Name: "huge", Cylinders: 4096, Heads: 16, SectorsPerTrack: 12, RevTime: time.Millisecond},
		{Name: "norev", Cylinders: 10, Heads: 2, SectorsPerTrack: 12},
	}
	for _, g := range cases {
		if err := g.Validate(); err == nil {
			t.Errorf("%s: Validate accepted bad geometry", g.Name)
		}
	}
}

func TestLocateAddressRoundTrip(t *testing.T) {
	g := Diablo31()
	f := func(raw uint16) bool {
		a := VDA(int(raw) % g.NSectors())
		cyl, head, sector := g.Locate(a)
		if cyl < 0 || cyl >= g.Cylinders || head < 0 || head >= g.Heads ||
			sector < 0 || sector >= g.SectorsPerTrack {
			return false
		}
		return g.Address(cyl, head, sector) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSeekTime(t *testing.T) {
	g := Diablo31()
	if g.SeekTime(0) != 0 {
		t.Error("zero-distance seek should be free")
	}
	if g.SeekTime(1) != g.SeekSettle {
		t.Errorf("one-cylinder seek = %v, want settle time %v", g.SeekTime(1), g.SeekSettle)
	}
	if g.SeekTime(-5) != g.SeekTime(5) {
		t.Error("seek time should be symmetric in direction")
	}
	if g.SeekTime(100) <= g.SeekTime(10) {
		t.Error("longer seeks should cost more")
	}
}

func TestSectorTime(t *testing.T) {
	g := Diablo31()
	got, want := g.SectorTime()*time.Duration(g.SectorsPerTrack), g.RevTime
	if diff := want - got; diff < 0 || diff >= time.Duration(g.SectorsPerTrack) {
		t.Errorf("sector times sum to %v, want one revolution %v (within integer rounding)", got, want)
	}
}
