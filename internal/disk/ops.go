package disk

// Convenience constructors for the handful of operation shapes the system
// uses. Higher layers are free to build Ops directly — the point of the open
// design is that nothing here is privileged — but these helpers encode the
// label discipline of §3.3 in one place:
//
//   - every access gives the page's full name, and the label is checked
//     before it is read, written or rewritten;
//   - a label is only written when freeing a page, when writing a page the
//     first time after allocation, or when changing the length of a file;
//   - each of those label writes is a separate operation from the check that
//     precedes it, so it costs an extra disk revolution, while ordinary data
//     reads and writes check the label in passing at no cost.

// checkWords converts a Label to the pattern a Check expects. Wildcarding is
// the caller's business: callers that want a guarded read of some field zero
// it explicitly (see LinkPattern).
func checkWords(l Label) [LabelWords]Word { return l.Words() }

// ReadValue reads the 256-word value of the page named by expect, verifying
// the label on the way past. On success the value is stored in *v.
func ReadValue(dev Device, addr VDA, expect Label, v *[PageWords]Word) error {
	lbl := checkWords(expect)
	return dev.Do(&Op{
		Addr:      addr,
		Label:     Check,
		LabelData: &lbl,
		Value:     Read,
		ValueData: v,
	})
}

// WriteValue writes the 256-word value of the page named by expect, verifying
// the label on the way past. The label itself is not touched, so this costs
// no extra revolution.
func WriteValue(dev Device, addr VDA, expect Label, v *[PageWords]Word) error {
	lbl := checkWords(expect)
	return dev.Do(&Op{
		Addr:      addr,
		Label:     Check,
		LabelData: &lbl,
		Value:     Write,
		ValueData: v,
	})
}

// LinkPattern builds a check pattern carrying only the absolute name
// (FID, version, page number), with the length and both links wildcarded.
// Checking with this pattern is how the system reads a page's links and
// length while verifying its identity — the paper's "basic operation ... to
// read the links, given the full name".
func LinkPattern(fv FV, pn Word) [LabelWords]Word {
	return [LabelWords]Word{
		Word(fv.FID >> 16),
		Word(fv.FID),
		fv.Version,
		pn,
		0, // length: wildcard
		0, // next link: wildcard
		0, // previous link: wildcard
	}
}

// ReadLabel reads back the full label of the page (FV, pn) expected at addr,
// verifying the absolute name and filling in the hint fields from the disk.
func ReadLabel(dev Device, addr VDA, fv FV, pn Word) (Label, error) {
	pat := LinkPattern(fv, pn)
	err := dev.Do(&Op{Addr: addr, Label: Check, LabelData: &pat})
	if err != nil {
		return Label{}, err
	}
	return LabelFromWords(pat), nil
}

// ReadAnyLabel reads the raw label at addr with no expectations — the
// Scavenger's basic operation. The header is checked against the pack and
// address to confirm the head reached the right sector.
func ReadAnyLabel(dev Device, addr VDA) ([LabelWords]Word, error) {
	hdr := Header{Pack: dev.Pack(), Addr: addr}.Words()
	var lbl [LabelWords]Word
	err := dev.Do(&Op{
		Addr:       addr,
		Header:     Check,
		HeaderData: &hdr,
		Label:      Read,
		LabelData:  &lbl,
	})
	return lbl, err
}

// Allocate claims the page at addr for the label newLabel and writes its
// first value. It is the "first time the page is written after it has been
// allocated" case: the check is that the page is free, then the proper label
// is written (§3.3). Two operations on the same sector: one revolution.
func Allocate(dev Device, addr VDA, newLabel Label, v *[PageWords]Word) error {
	pat := freeLabelWords
	if err := dev.Do(&Op{Addr: addr, Label: Check, LabelData: &pat}); err != nil {
		return err
	}
	lbl := newLabel.Words()
	return dev.Do(&Op{
		Addr:      addr,
		Label:     Write,
		LabelData: &lbl,
		Value:     Write,
		ValueData: v,
	})
}

// onesValue is the all-ones value pattern written into a freed page. Write
// actions only read the caller's buffer, so one shared read-only copy
// serves every Free.
var onesValue = func() (v [PageWords]Word) {
	for i := range v {
		v[i] = 0xFFFF
	}
	return v
}()

// Free releases the page named by expect: its full name must be given, the
// check is that the label is the right one, and then ones are written into
// label and value (§3.3). One revolution.
func Free(dev Device, addr VDA, expect Label) error {
	pat := checkWords(expect)
	if err := dev.Do(&Op{Addr: addr, Label: Check, LabelData: &pat}); err != nil {
		return err
	}
	lbl := freeLabelWords
	return dev.Do(&Op{
		Addr:      addr,
		Label:     Write,
		LabelData: &lbl,
		Value:     Write,
		ValueData: &onesValue,
	})
}

// Relabel rewrites the label of the page named by expect — the "change the
// length of the file" case (§3.3): the old label is read and checked, then
// rewritten with new values. The value must be rewritten too (a write
// continues through the rest of the sector), so the caller supplies it.
// One revolution.
func Relabel(dev Device, addr VDA, expect, newLabel Label, v *[PageWords]Word) error {
	pat := checkWords(expect)
	if err := dev.Do(&Op{Addr: addr, Label: Check, LabelData: &pat}); err != nil {
		return err
	}
	lbl := newLabel.Words()
	return dev.Do(&Op{
		Addr:      addr,
		Label:     Write,
		LabelData: &lbl,
		Value:     Write,
		ValueData: v,
	})
}

// OpScratch holds reusable operation and pattern storage for the chained
// forms of the helpers above. The storage layer's hot paths keep one
// OpScratch per long-lived handle (a file handle, a scavenger) and reuse it
// for every allocate/free/relabel, so the steady state allocates nothing;
// the package-level helpers remain for one-shot callers. An OpScratch is
// not safe for concurrent use — neither is the single-user machine.
type OpScratch struct {
	ops [2]Op
	pat [LabelWords]Word
	lbl [LabelWords]Word
}

// Allocate is the chained form of Allocate: check-free then write, issued
// as one two-operation ordered chain. Same single revolution.
func (s *OpScratch) Allocate(dev Device, addr VDA, newLabel Label, v *[PageWords]Word) error {
	s.pat = freeLabelWords
	s.lbl = newLabel.Words()
	s.ops[0] = Op{Addr: addr, Label: Check, LabelData: &s.pat}
	s.ops[1] = Op{Addr: addr, Label: Write, LabelData: &s.lbl, Value: Write, ValueData: v}
	return FirstChainError(DoChainOn(dev, s.ops[:], Ordered))
}

// Free is the chained form of Free.
func (s *OpScratch) Free(dev Device, addr VDA, expect Label) error {
	s.pat = checkWords(expect)
	s.lbl = freeLabelWords
	s.ops[0] = Op{Addr: addr, Label: Check, LabelData: &s.pat}
	s.ops[1] = Op{Addr: addr, Label: Write, LabelData: &s.lbl, Value: Write, ValueData: &onesValue}
	return FirstChainError(DoChainOn(dev, s.ops[:], Ordered))
}

// Relabel is the chained form of Relabel.
func (s *OpScratch) Relabel(dev Device, addr VDA, expect, newLabel Label, v *[PageWords]Word) error {
	s.pat = checkWords(expect)
	s.lbl = newLabel.Words()
	s.ops[0] = Op{Addr: addr, Label: Check, LabelData: &s.pat}
	s.ops[1] = Op{Addr: addr, Label: Write, LabelData: &s.lbl, Value: Write, ValueData: v}
	return FirstChainError(DoChainOn(dev, s.ops[:], Ordered))
}
