package fileserver

// The digest RPC is the wire half of the cluster's distributed Scavenger
// (§3.5 grown across machines): a replica answers MsgDigest with one record
// per file in its root directory — enough for a peer to decide, without
// moving any file data, whether the two copies agree and which of them is
// trustworthy. The content checksum folds every page's value words with the
// drive's own per-sector checksum fold (disk.ValueCRC), and the Clean bit
// reports whether the drive's recorded per-sector checksums still match the
// values just read — false means damage happened outside the disciplined
// write path on *this* replica, so a digest disagreement can be blamed
// locally instead of by vote alone.

import (
	"fmt"
	"sort"
	"time"

	"altoos/internal/dir"
	"altoos/internal/disk"
	"altoos/internal/ether"
	"altoos/internal/file"
)

// Digest summarizes one file for the peer-audit protocol.
type Digest struct {
	Name    string
	Size    int           // bytes, as the leader records them
	CRC     disk.Word     // order-sensitive fold of every page's value CRC
	Written time.Duration // leader write stamp, ms precision on the wire
	Clean   bool          // every page's recorded sector checksum matched
}

// DigestTable reads every file named in fs's root directory and returns its
// digests sorted by name. Reading every page charges the disk time a local
// Scavenger pass would (§3.5); digesting is scrubbing. A replica runs it
// directly for its own copy; the server runs it to answer MsgDigest.
func DigestTable(fs *file.FS) ([]Digest, error) {
	root, err := dir.OpenRoot(fs)
	if err != nil {
		return nil, fmt.Errorf("no root directory")
	}
	entries, err := root.Load()
	if err != nil {
		return nil, fmt.Errorf("root directory unreadable")
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	drv, _ := fs.Device().(*disk.Drive)
	out := make([]Digest, 0, len(entries))
	var pages int64
	for _, e := range entries {
		// The directory and descriptor are per-pack state, not replicated
		// content: their bytes legitimately differ across honest replicas
		// (free maps, local leader addresses), so they never enter the audit.
		if e.FN.FV.FID == disk.SysDirFID || e.FN.FV.FID == disk.DescriptorFID {
			continue
		}
		f, err := fs.Open(e.FN)
		if err != nil {
			return nil, fmt.Errorf("open %q failed", e.Name)
		}
		d := Digest{Name: e.Name, Size: f.Size(), Written: f.Leader().Written, Clean: true}
		lastPN := f.LastPN()
		var buf [disk.PageWords]disk.Word
		for pn := disk.Word(1); pn <= lastPN; pn++ {
			if _, err := f.ReadPage(pn, &buf); err != nil {
				return nil, fmt.Errorf("digest %q page %d failed", e.Name, pn)
			}
			pages++
			pageCRC := disk.ValueCRC(buf[:])
			d.CRC = d.CRC<<1 | d.CRC>>15
			d.CRC ^= pageCRC
			if drv != nil {
				if addr, err := f.PageAddr(pn); err == nil {
					if rec, ok := drv.PeekVCRC(addr); ok && rec != pageCRC {
						d.Clean = false
					}
				}
			}
		}
		out = append(out, d)
	}
	if drv != nil {
		drv.TraceRecorder().Add("fs.scrub.pages", pages)
	}
	return out, nil
}

// digestTable is the serve-side half of MsgDigest: the table, serialized.
func (s *Server) digestTable() ([]byte, error) {
	digs, err := DigestTable(s.fs)
	if err != nil {
		return nil, err
	}
	var out []byte
	for _, d := range digs {
		out = appendDigest(out, d)
	}
	return out, nil
}

// appendDigest serializes one record: name length and bytes, 32-bit size,
// the checksum word, the write stamp in milliseconds, the Clean bit.
func appendDigest(out []byte, d Digest) []byte {
	out = append(out, byte(len(d.Name)))
	out = append(out, d.Name...)
	out = append(out, byte(d.Size>>24), byte(d.Size>>16), byte(d.Size>>8), byte(d.Size))
	out = append(out, byte(d.CRC>>8), byte(d.CRC))
	ms := d.Written.Milliseconds()
	out = append(out, byte(ms>>24), byte(ms>>16), byte(ms>>8), byte(ms))
	if d.Clean {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	return out
}

// ParseDigests decodes a serialized digest table, name order preserved.
func ParseDigests(data []byte) ([]Digest, error) {
	var out []Digest
	for len(data) > 0 {
		n := int(data[0])
		if len(data) < 1+n+11 {
			return nil, fmt.Errorf("%w: truncated digest table", ErrProtocol)
		}
		d := Digest{Name: string(data[1 : 1+n])}
		p := data[1+n:]
		d.Size = int(p[0])<<24 | int(p[1])<<16 | int(p[2])<<8 | int(p[3])
		d.CRC = disk.Word(p[4])<<8 | disk.Word(p[5])
		ms := int64(p[6])<<24 | int64(p[7])<<16 | int64(p[8])<<8 | int64(p[9])
		d.Written = time.Duration(ms) * time.Millisecond
		d.Clean = p[10] == 1
		out = append(out, d)
		data = p[11:]
	}
	return out, nil
}

// Digests asks the server for its digest table. Poll until Done, then hand
// Result's bytes to ParseDigests.
func (c *Client) Digests() error {
	if err := c.begin(); err != nil {
		return err
	}
	c.outq = append(c.outq, []ether.Word{MsgDigest})
	return nil
}
