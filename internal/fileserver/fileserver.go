// Package fileserver is a multi-client file server over the reliable
// transport — the paper's §1 "remote facilities" grown past a demo: one
// station, one file system, N concurrent sessions, each its own reliable
// connection, multiplexed by (source address, connection id) and served
// round-robin from the server's single poll loop (§2: the machine has no
// scheduler, so concurrency is the server program's own business).
//
// The wire protocol is word-level messages over pup connections:
//
//	[MsgFetch, name...]        client asks for a file by name
//	[MsgStore, name...]        client begins storing a file
//	[MsgData,  count, bytes]   one chunk, either direction
//	[MsgEnd,   lo, hi]         end of data, total byte count
//	[MsgOK]                    server confirms a store hit the disk
//	[MsgError, message...]     either side reports failure
//
// The server serves reads and writes through the multipage chain paths:
// full interior pages move in chained batches (file.ReadPages/WritePages),
// only the partial last page takes the one-page path. Every session is a
// trace span (trace.KindFSSession), and Stats summarizes the server's life.
package fileserver

import (
	"errors"
	"fmt"
	"time"

	"altoos/internal/dir"
	"altoos/internal/disk"
	"altoos/internal/ether"
	"altoos/internal/file"
	"altoos/internal/pup"
	"altoos/internal/trace"
)

// Message opcodes (the first payload word of every transport message).
const (
	MsgFetch ether.Word = 1 + iota
	MsgStore
	MsgData
	MsgEnd
	MsgOK
	MsgError
	// MsgDigest asks for the server's per-file digest table — name, size,
	// content checksum, write stamp, local-cleanliness bit for every file in
	// the root directory. The reply is the serialized table as ordinary
	// MsgData chunks. The cluster audit protocol polls peers with it.
	MsgDigest
)

// DataBytesPerMsg is the chunk size: a transport message minus the opcode
// and byte-count words, two bytes per word.
const DataBytesPerMsg = 2 * (pup.MaxData - 2)

// chainPages is the batch size for multipage disk transfers.
const chainPages = 8

// Errors.
var (
	// ErrRemote reports a MsgError from the far end.
	ErrRemote = errors.New("fileserver: remote error")
	// ErrBusy reports a second request before the first completed.
	ErrBusy = errors.New("fileserver: transfer already in progress")
	// ErrProtocol reports a malformed message.
	ErrProtocol = errors.New("fileserver: protocol error")
)

// Stats summarizes a server's life so far.
type Stats struct {
	Sessions int64 // connections accepted
	Active   int64 // connections live right now
	Fetches  int64 // files served
	Stores   int64 // files written
	Digests  int64 // digest tables served
	BytesIn  int64 // data bytes received from clients
	BytesOut int64 // data bytes sent to clients
}

// Server serves one file system to any number of clients over one station.
type Server struct {
	fs *file.FS
	ep *pup.Endpoint

	// sessions in accept order: every sweep walks this slice, never a map,
	// so service order — and with it the trace — is deterministic.
	sessions []*session
	stats    Stats
}

// session is one client connection's server-side state.
type session struct {
	conn   *pup.Conn
	opened time.Duration
	moved  int64 // data bytes in either direction, for the trace span
	flow   int64 // first client flow adopted, stamped on the session span

	// outq is the pending outbound message queue; push drains it as the
	// send window allows (backpressure, never blocking the poll loop).
	outq [][]ether.Word

	// inbound store in progress, if any. The store's flow and start are
	// held from MsgStore to MsgEnd so the request span covers the whole
	// inbound transfer plus the disk chain that lands it.
	storing    bool
	storeName  string
	in         []byte
	storeFlow  int64
	storeStart time.Duration
}

// NewServer builds a server from a file system and a transport endpoint.
// The endpoint is put into listening mode; the caller just polls.
func NewServer(fs *file.FS, ep *pup.Endpoint) *Server {
	ep.Listen()
	return &Server{fs: fs, ep: ep}
}

// Endpoint returns the server's transport endpoint.
func (s *Server) Endpoint() *pup.Endpoint { return s.ep }

// Stats returns a snapshot of the server's counters.
func (s *Server) Stats() Stats {
	st := s.stats
	st.Active = int64(len(s.sessions))
	return st
}

// rec reaches the medium's flight recorder (nil when tracing is off).
func (s *Server) rec() *trace.Recorder { return s.ep.Station().TraceRecorder() }

// Poll is the server's activity: one transport poll, new connections
// accepted, every session advanced one step. Returns whether any work
// happened, so activity-switching loops can tell busy from idle.
func (s *Server) Poll() (bool, error) {
	worked, err := s.ep.Poll()
	if err != nil {
		return true, err
	}
	for {
		conn, ok := s.ep.Accept()
		if !ok {
			break
		}
		s.sessions = append(s.sessions, &session{
			conn:   conn,
			opened: s.ep.Station().Clock().Now(),
		})
		s.stats.Sessions++
		worked = true
	}
	live := s.sessions[:0]
	for _, ss := range s.sessions {
		w := s.serve(ss)
		worked = worked || w
		if ss.conn.State() == pup.StateClosed {
			s.closeSession(ss)
			continue
		}
		live = append(live, ss)
	}
	s.sessions = live
	return worked, nil
}

// closeSession retires a finished session, emitting its trace span. The span
// carries the first flow the session adopted, linking the server's view back
// to the client request that opened the exchange.
func (s *Server) closeSession(ss *session) {
	if rec := s.rec(); rec != nil {
		now := s.ep.Station().Clock().Now()
		rec.EmitSpanFlow(ss.opened, now-ss.opened, trace.KindFSSession, "",
			int64(ss.conn.Remote()), ss.moved, ss.flow)
		rec.Add("fs.session.close", 1)
	}
}

// serve advances one session: drain inbound messages, push outbound ones.
func (s *Server) serve(ss *session) bool {
	worked := false
	for {
		msg, flow, ok := ss.conn.RecvFlow()
		if !ok {
			break
		}
		worked = true
		s.handle(ss, msg, flow)
	}
	if ss.push() {
		worked = true
	}
	return worked
}

// push sends queued messages while the window has room; other errors kill
// the connection (its own state reports why). Avail batches the sends —
// ErrWindowFull stays as a backstop only.
func (ss *session) push() bool {
	worked := false
	for len(ss.outq) > 0 && ss.conn.Avail() > 0 {
		err := ss.conn.Send(ss.outq[0])
		if errors.Is(err, pup.ErrWindowFull) {
			break
		}
		if err != nil {
			ss.outq = nil
			break
		}
		ss.outq = ss.outq[1:]
		worked = true
	}
	return worked
}

// handle processes one client message. The message's flow — allocated by the
// client, carried in every transport header — is adopted here: replies ride
// it back, the per-request span is stamped with it, and the session span
// keeps the first one it saw.
func (s *Server) handle(ss *session, msg []ether.Word, flow int64) {
	if len(msg) == 0 {
		return
	}
	if ss.flow == 0 {
		ss.flow = flow
	}
	// Replies queued from here on carry the request's flow on the wire.
	ss.conn.SetFlow(flow)
	switch msg[0] {
	case MsgFetch:
		name, err := ether.UnpackString(msg[1:])
		if err != nil {
			ss.sendError("bad fetch request")
			return
		}
		start := s.ep.Station().Clock().Now()
		// The disk read blocks every poll for tens of milliseconds; flush
		// the delayed ack first so the client's RTT estimator never sees a
		// disk stall where a wire round trip should be.
		ss.conn.FlushAck()
		data, err := s.readFile(name)
		if err != nil {
			ss.sendError(err.Error())
			return
		}
		ss.queueData(data)
		ss.moved += int64(len(data))
		s.stats.Fetches++
		s.stats.BytesOut += int64(len(data))
		if rec := s.rec(); rec != nil {
			now := s.ep.Station().Clock().Now()
			rec.EmitSpanFlow(start, now-start, trace.KindFSRequest, "fetch",
				int64(ss.conn.Remote()), int64(len(data)), flow)
			rec.Add("fs.fetch", 1)
		}
	case MsgDigest:
		start := s.ep.Station().Clock().Now()
		// Digesting reads every page of every file — tens of milliseconds of
		// disk time per file; flush the delayed ack first, as fetch does.
		ss.conn.FlushAck()
		data, err := s.digestTable()
		if err != nil {
			ss.sendError(err.Error())
			return
		}
		ss.queueData(data)
		ss.moved += int64(len(data))
		s.stats.Digests++
		s.stats.BytesOut += int64(len(data))
		if rec := s.rec(); rec != nil {
			now := s.ep.Station().Clock().Now()
			rec.EmitSpanFlow(start, now-start, trace.KindFSRequest, "digest",
				int64(ss.conn.Remote()), int64(len(data)), flow)
			rec.Add("fs.digest", 1)
		}
	case MsgStore:
		name, err := ether.UnpackString(msg[1:])
		if err != nil {
			ss.sendError("bad store request")
			return
		}
		ss.storing, ss.storeName, ss.in = true, name, nil
		ss.storeFlow = flow
		ss.storeStart = s.ep.Station().Clock().Now()
	case MsgData:
		if !ss.storing {
			return // stray data: drop, as on a real wire
		}
		data, err := unpackChunk(msg)
		if err != nil {
			ss.sendError(err.Error())
			ss.storing = false
			return
		}
		ss.in = append(ss.in, data...)
	case MsgEnd:
		if !ss.storing {
			return
		}
		ss.storing = false
		if total, ok := unpackTotal(msg); !ok || total != len(ss.in) {
			ss.sendError("store length mismatch")
			return
		}
		// As with fetch: ack the tail of the store before the long write
		// so the client does not retransmit into a silent disk stall.
		ss.conn.FlushAck()
		if err := s.writeFile(ss.storeName, ss.in); err != nil {
			ss.sendError(err.Error())
			return
		}
		ss.moved += int64(len(ss.in))
		s.stats.Stores++
		s.stats.BytesIn += int64(len(ss.in))
		if rec := s.rec(); rec != nil {
			now := s.ep.Station().Clock().Now()
			rec.EmitSpanFlow(ss.storeStart, now-ss.storeStart, trace.KindFSRequest, "store",
				int64(ss.conn.Remote()), int64(len(ss.in)), ss.storeFlow)
			rec.Add("fs.store", 1)
		}
		ss.outq = append(ss.outq, []ether.Word{MsgOK})
		ss.in = nil
	}
}

// sendError queues a MsgError reply.
func (ss *session) sendError(msg string) {
	ss.outq = append(ss.outq, append([]ether.Word{MsgError}, ether.PackString(msg)...))
}

// queueData queues a full fetch reply: data chunks, then the end marker.
func (ss *session) queueData(data []byte) {
	for off := 0; off < len(data); off += DataBytesPerMsg {
		end := off + DataBytesPerMsg
		if end > len(data) {
			end = len(data)
		}
		ss.outq = append(ss.outq, packChunk(data[off:end]))
	}
	ss.outq = append(ss.outq, packTotal(len(data)))
}

// readFile reads a whole named file: full interior pages in chained
// batches, the partial last page on the one-page path.
func (s *Server) readFile(name string) ([]byte, error) {
	fn, err := dir.ResolveName(s.fs, name)
	if err != nil {
		return nil, fmt.Errorf("no such file %q", name)
	}
	f, err := s.fs.Open(fn)
	if err != nil {
		return nil, fmt.Errorf("open %q failed", name)
	}
	lastPN, lastLen := f.LastPage()
	out := make([]byte, 0, (int(lastPN)-1)*disk.PageBytes+lastLen)
	var pages [chainPages][disk.PageWords]disk.Word
	for pn := disk.Word(1); pn < lastPN; {
		n := int(lastPN - pn)
		if n > chainPages {
			n = chainPages
		}
		if err := f.ReadPages(pn, pages[:n]); err != nil {
			return nil, fmt.Errorf("read %q page %d failed", name, pn)
		}
		for i := 0; i < n; i++ {
			out = appendWords(out, pages[i][:], disk.PageBytes)
		}
		pn += disk.Word(n)
	}
	var buf [disk.PageWords]disk.Word
	n, err := f.ReadPage(lastPN, &buf)
	if err != nil {
		return nil, fmt.Errorf("read %q last page failed", name)
	}
	return appendWords(out, buf[:], n), nil
}

// writeFile stores data under name: existing interior pages are overwritten
// in chained batches, growth and the last page go through the one-page path,
// and a shrinking store truncates the leftovers.
func (s *Server) writeFile(name string, data []byte) error {
	root, err := dir.OpenRoot(s.fs)
	if err != nil {
		return errors.New("no root directory")
	}
	var f *file.File
	if fn, err := root.Lookup(name); err == nil {
		if f, err = s.fs.Open(fn); err != nil {
			return fmt.Errorf("open %q failed", name)
		}
	} else {
		if f, err = s.fs.Create(name); err != nil {
			return errors.New("disk full")
		}
		if err := root.Insert(name, f.FN()); err != nil {
			return errors.New("directory full")
		}
	}

	// The last page of a file is always partial (see File.WritePage), so
	// len(data) lays out as full interior pages plus a partial tail.
	full := len(data) / disk.PageBytes
	lastLen := len(data) % disk.PageBytes
	lastPN := disk.Word((full + 1) & 0xFFFF)

	// A shrinking store truncates first, so everything below is overwrite
	// or growth.
	oldLast := f.LastPN()
	if oldLast > lastPN {
		if err := f.Truncate(lastPN, lastLen); err != nil {
			return fmt.Errorf("truncate %q failed", name)
		}
		oldLast = lastPN
	}

	// Chained overwrites: the new file's interior pages (all full by
	// construction) that already exist on disk as interior pages.
	limit := lastPN - 1
	if oldLast-1 < limit {
		limit = oldLast - 1
	}
	var pages [chainPages][disk.PageWords]disk.Word
	pn := disk.Word(1)
	for pn <= limit {
		n := int(limit - pn + 1)
		if n > chainPages {
			n = chainPages
		}
		for i := 0; i < n; i++ {
			fillPage(&pages[i], data, int(pn)+i)
		}
		if err := f.WritePages(pn, pages[:n]); err != nil {
			return fmt.Errorf("write %q page %d failed", name, pn)
		}
		pn += disk.Word(n)
	}
	// Growth and the tail: each full write of the current last page
	// appends a fresh page, so the file extends one page per pass.
	for ; pn <= lastPN; pn++ {
		fillPage(&pages[0], data, int(pn))
		length := disk.PageBytes
		if pn == lastPN {
			length = lastLen
		}
		if err := f.WritePage(pn, &pages[0], length); err != nil {
			return fmt.Errorf("write %q page %d failed", name, pn)
		}
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("sync %q failed", name)
	}
	return nil
}

// fillPage packs the pn-th (1-based) page of data into buf, zero-padded.
func fillPage(buf *[disk.PageWords]disk.Word, data []byte, pn int) {
	off := (pn - 1) * disk.PageBytes
	for i := range buf {
		var w disk.Word
		if off < len(data) {
			w = disk.Word(data[off]) << 8
		}
		if off+1 < len(data) {
			w |= disk.Word(data[off+1])
		}
		buf[i] = w
		off += 2
	}
}

// appendWords unpacks n bytes out of words (big-endian, as the disk stream
// packs them) onto dst.
func appendWords(dst []byte, words []disk.Word, n int) []byte {
	for i := 0; i < n; i++ {
		w := words[i/2]
		if i%2 == 0 {
			dst = append(dst, byte(w>>8))
		} else {
			dst = append(dst, byte(w))
		}
	}
	return dst
}

// packChunk builds a MsgData message: opcode, byte count, packed bytes.
func packChunk(data []byte) []ether.Word {
	out := make([]ether.Word, 2+(len(data)+1)/2)
	out[0] = MsgData
	out[1] = ether.Word(len(data))
	for i, b := range data {
		if i%2 == 0 {
			out[2+i/2] |= ether.Word(b) << 8
		} else {
			out[2+i/2] |= ether.Word(b)
		}
	}
	return out
}

// unpackChunk is the inverse of packChunk.
func unpackChunk(msg []ether.Word) ([]byte, error) {
	if len(msg) < 2 {
		return nil, fmt.Errorf("%w: short data message", ErrProtocol)
	}
	n := int(msg[1])
	if 2+(n+1)/2 > len(msg) {
		return nil, fmt.Errorf("%w: truncated data message", ErrProtocol)
	}
	data := make([]byte, n)
	for i := range data {
		w := msg[2+i/2]
		if i%2 == 0 {
			data[i] = byte(w >> 8)
		} else {
			data[i] = byte(w)
		}
	}
	return data, nil
}

// packTotal builds a MsgEnd message carrying the 32-bit total byte count.
func packTotal(n int) []ether.Word {
	return []ether.Word{MsgEnd, ether.Word(n & 0xFFFF), ether.Word(n >> 16)}
}

// unpackTotal is the inverse of packTotal.
func unpackTotal(msg []ether.Word) (int, bool) {
	if len(msg) < 3 {
		return 0, false
	}
	return int(msg[1]) | int(msg[2])<<16, true
}
