package fileserver

import (
	"errors"
	"fmt"
	"time"

	"altoos/internal/ether"
	"altoos/internal/pup"
	"altoos/internal/trace"
)

// Client runs one transfer at a time against a remote server, over one
// reliable connection. Several Clients can share one endpoint (one station):
// each dials its own connection and the ids keep them apart.
type Client struct {
	ep   *pup.Endpoint
	conn *pup.Conn

	outq    [][]ether.Word // pending outbound messages (store traffic)
	busy    bool
	done    bool
	failure error
	data    []byte        // fetch accumulator
	started time.Duration // transfer start on the simulated clock
	flow    int64         // this transfer's causal flow id (0: tracing off)
}

// NewClient builds a client on a transport endpoint.
func NewClient(ep *pup.Endpoint) *Client {
	return &Client{ep: ep}
}

// Connect dials the server. Data may be queued immediately; the open
// handshake and everything after it happen during Poll.
func (c *Client) Connect(server ether.Addr) error {
	conn, err := c.ep.Dial(server)
	if err != nil {
		return err
	}
	c.conn = conn
	c.rec().Add("fs.client.dial", 1)
	return nil
}

// rec reaches the medium's flight recorder (nil when tracing is off).
func (c *Client) rec() *trace.Recorder { return c.ep.Station().TraceRecorder() }

// now reads the station's simulated clock.
func (c *Client) now() time.Duration { return c.ep.Station().Clock().Now() }

// Conn exposes the underlying connection (state and error inspection).
func (c *Client) Conn() *pup.Conn { return c.conn }

// Fetch asks the server for a named file. Poll until Done, then Result.
func (c *Client) Fetch(name string) error {
	if err := c.begin(); err != nil {
		return err
	}
	c.outq = append(c.outq, append([]ether.Word{MsgFetch}, ether.PackString(name)...))
	return nil
}

// Store begins pushing data to the server under name. The entire transfer
// is queued here and drained by Poll as the send window allows; Done turns
// true when the server confirms the file hit the disk.
func (c *Client) Store(name string, data []byte) error {
	if err := c.begin(); err != nil {
		return err
	}
	c.outq = append(c.outq, append([]ether.Word{MsgStore}, ether.PackString(name)...))
	for off := 0; off < len(data); off += DataBytesPerMsg {
		end := off + DataBytesPerMsg
		if end > len(data) {
			end = len(data)
		}
		c.outq = append(c.outq, packChunk(data[off:end]))
	}
	c.outq = append(c.outq, packTotal(len(data)))
	return nil
}

func (c *Client) begin() error {
	if c.conn == nil {
		return errors.New("fileserver: not connected")
	}
	if c.busy && !c.done {
		return ErrBusy
	}
	c.busy, c.done, c.failure, c.data = true, false, nil, nil
	c.started = c.now()
	// Each transfer is one causal flow: allocated here, carried by every
	// packet of the request (retransmits included), adopted by the server's
	// session, and echoed on every reply and ack.
	c.flow = c.rec().NextFlow()
	c.conn.SetFlow(c.flow)
	return nil
}

// Poll advances the transfer: one transport poll, pending messages pushed,
// inbound messages consumed. Returns whether it did any work.
func (c *Client) Poll() (bool, error) {
	worked, err := c.ep.Poll()
	if err != nil {
		return true, err
	}
	if c.conn == nil {
		return worked, nil
	}
	if cerr := c.conn.Err(); cerr != nil && !c.done {
		c.finish(cerr)
		return worked, nil
	}
	// Avail batches the pushes; ErrWindowFull stays as a backstop only.
	for len(c.outq) > 0 && c.conn.Avail() > 0 {
		err := c.conn.Send(c.outq[0])
		if errors.Is(err, pup.ErrWindowFull) {
			break
		}
		if err != nil {
			c.finish(err)
			return true, nil
		}
		c.outq = c.outq[1:]
		worked = true
	}
	for {
		msg, ok := c.conn.Recv()
		if !ok {
			break
		}
		worked = true
		c.handle(msg)
	}
	return worked, nil
}

// handle processes one server message.
func (c *Client) handle(msg []ether.Word) {
	if len(msg) == 0 || !c.busy || c.done {
		return
	}
	switch msg[0] {
	case MsgData:
		data, err := unpackChunk(msg)
		if err != nil {
			c.finish(err)
			return
		}
		c.data = append(c.data, data...)
	case MsgEnd:
		if total, ok := unpackTotal(msg); !ok || total != len(c.data) {
			c.finish(fmt.Errorf("%w: fetch length mismatch", ErrProtocol))
			return
		}
		c.finish(nil)
	case MsgOK:
		c.finish(nil)
	case MsgError:
		text, _ := ether.UnpackString(msg[1:])
		c.finish(fmt.Errorf("%w: %s", ErrRemote, text))
	}
}

func (c *Client) finish(err error) {
	c.done = true
	c.failure = err
	if c.busy {
		c.rec().EmitSpanFlow(c.started, c.now()-c.started, trace.KindFSSession, "client",
			int64(c.conn.Remote()), int64(len(c.data)), c.flow)
	}
	c.rec().Add("fs.client.done", 1)
}

// Done reports whether the transfer completed (or failed).
func (c *Client) Done() bool { return c.done }

// Result returns the transfer's outcome once Done: the fetched bytes (nil
// for a store) and the failure, if any.
func (c *Client) Result() ([]byte, error) {
	if !c.done {
		return nil, errors.New("fileserver: transfer still in progress")
	}
	c.busy = false
	return c.data, c.failure
}

// Close begins a graceful close of the connection; poll until the conn
// reports StateClosed.
func (c *Client) Close() error {
	if c.conn == nil {
		return nil
	}
	return c.conn.Close()
}
