package fileserver

import (
	"bytes"
	"errors"
	"testing"

	"altoos/internal/dir"
	"altoos/internal/disk"
	"altoos/internal/ether"
	"altoos/internal/file"
	"altoos/internal/pup"
	"altoos/internal/sim"
	"altoos/internal/trace"
)

// fixture builds a server machine and n client endpoints on one wire.
func fixture(t *testing.T, n int) (*ether.Network, *Server, []*Client, *trace.Recorder) {
	t.Helper()
	clock := sim.NewClock()
	wire := ether.New(clock)
	rec := trace.New(1 << 16)
	wire.SetRecorder(rec)

	d, err := disk.NewDrive(disk.Diablo31(), 1, clock)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := file.Format(d)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dir.InitRoot(fs); err != nil {
		t.Fatal(err)
	}
	sst, err := wire.Attach(1)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(fs, pup.NewEndpoint(sst, pup.Config{}))
	clients := make([]*Client, n)
	for i := range clients {
		cst, err := wire.Attach(ether.Addr(2 + i))
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = NewClient(pup.NewEndpoint(cst, pup.Config{Seed: uint64(i)}))
		if err := clients[i].Connect(1); err != nil {
			t.Fatal(err)
		}
	}
	return wire, srv, clients, rec
}

// pump polls the server and every client until all clients are Done.
func pump(t *testing.T, srv *Server, clients []*Client) {
	t.Helper()
	for i := 0; i < 200000; i++ {
		if _, err := srv.Poll(); err != nil {
			t.Fatalf("server: %v", err)
		}
		done := true
		for _, c := range clients {
			if _, err := c.Poll(); err != nil {
				t.Fatalf("client: %v", err)
			}
			done = done && c.Done()
		}
		if done {
			return
		}
	}
	t.Fatal("transfers never completed")
}

// pattern builds deterministic test content.
func pattern(n, salt int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(i*7 + salt)
	}
	return out
}

func TestStoreAndFetch(t *testing.T) {
	_, srv, clients, _ := fixture(t, 1)
	c := clients[0]

	// A multi-page file: exercises the chained interior-page paths.
	want := pattern(5*disk.PageBytes+123, 1)
	if err := c.Store("alpha", want); err != nil {
		t.Fatal(err)
	}
	pump(t, srv, clients)
	if _, err := c.Result(); err != nil {
		t.Fatalf("store: %v", err)
	}

	if err := c.Fetch("alpha"); err != nil {
		t.Fatal(err)
	}
	pump(t, srv, clients)
	got, err := c.Result()
	if err != nil {
		t.Fatalf("fetch: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("fetched %d bytes, want %d; corrupted", len(got), len(want))
	}

	st := srv.Stats()
	if st.Fetches != 1 || st.Stores != 1 || st.Sessions != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.BytesIn != int64(len(want)) || st.BytesOut != int64(len(want)) {
		t.Fatalf("byte stats = %+v, want %d each way", st, len(want))
	}
}

func TestOverwriteShrinkAndGrow(t *testing.T) {
	_, srv, clients, _ := fixture(t, 1)
	c := clients[0]

	store := func(name string, data []byte) {
		t.Helper()
		if err := c.Store(name, data); err != nil {
			t.Fatal(err)
		}
		pump(t, srv, clients)
		if _, err := c.Result(); err != nil {
			t.Fatalf("store: %v", err)
		}
	}
	fetch := func(name string) []byte {
		t.Helper()
		if err := c.Fetch(name); err != nil {
			t.Fatal(err)
		}
		pump(t, srv, clients)
		got, err := c.Result()
		if err != nil {
			t.Fatalf("fetch: %v", err)
		}
		return got
	}

	// Grow, shrink, and exact-page-boundary contents through the same name:
	// chained overwrites, one-page growth, and truncation all fire.
	cases := [][]byte{
		pattern(3*disk.PageBytes+10, 2),
		pattern(7*disk.PageBytes+499, 3),
		pattern(2*disk.PageBytes, 4),
		pattern(17, 5),
		{},
	}
	for i, want := range cases {
		store("beta", want)
		if got := fetch("beta"); !bytes.Equal(got, want) {
			t.Fatalf("case %d: fetched %d bytes, want %d", i, len(got), len(want))
		}
	}
}

func TestFetchMissingFile(t *testing.T) {
	_, srv, clients, _ := fixture(t, 1)
	c := clients[0]
	if err := c.Fetch("no-such-file"); err != nil {
		t.Fatal(err)
	}
	pump(t, srv, clients)
	if _, err := c.Result(); !errors.Is(err, ErrRemote) {
		t.Fatalf("got %v, want ErrRemote", err)
	}
}

func TestConcurrentSessionsOverLossyWire(t *testing.T) {
	const n = 4
	wire, srv, clients, rec := fixture(t, n)
	wire.InjectFaults(ether.FaultConfig{
		Seed:    5,
		Drop:    ether.Rate{Num: 1, Den: 12},
		Dup:     ether.Rate{Num: 1, Den: 40},
		Corrupt: ether.Rate{Num: 1, Den: 40},
	})

	// All clients store concurrently, then all fetch back.
	want := make([][]byte, n)
	for i, c := range clients {
		want[i] = pattern(2*disk.PageBytes+100*i+7, i)
		if err := c.Store("f"+string(rune('a'+i)), want[i]); err != nil {
			t.Fatal(err)
		}
	}
	pump(t, srv, clients)
	for i, c := range clients {
		if _, err := c.Result(); err != nil {
			t.Fatalf("client %d store: %v", i, err)
		}
	}
	for i, c := range clients {
		if err := c.Fetch("f" + string(rune('a'+i))); err != nil {
			t.Fatal(err)
		}
	}
	pump(t, srv, clients)
	for i, c := range clients {
		got, err := c.Result()
		if err != nil {
			t.Fatalf("client %d fetch: %v", i, err)
		}
		if !bytes.Equal(got, want[i]) {
			t.Fatalf("client %d: payload corrupted", i)
		}
	}
	if st := srv.Stats(); st.Sessions != n || st.Stores != n || st.Fetches != n {
		t.Fatalf("stats = %+v", st)
	}
	if rec.Counter("ether.drop") == 0 {
		t.Fatal("fault medium never dropped a packet; test proves nothing")
	}
	if rec.Counter("pup.retransmit") == 0 {
		t.Fatal("no retransmissions despite drops")
	}
}

func TestSessionSpanTraced(t *testing.T) {
	_, srv, clients, rec := fixture(t, 1)
	c := clients[0]
	if err := c.Store("gamma", pattern(100, 9)); err != nil {
		t.Fatal(err)
	}
	pump(t, srv, clients)
	if _, err := c.Result(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100000 && c.Conn().State() != pup.StateClosed; i++ {
		if _, err := srv.Poll(); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Poll(); err != nil {
			t.Fatal(err)
		}
	}
	// Let the server notice the close and retire the session.
	for i := 0; i < 100; i++ {
		if _, err := srv.Poll(); err != nil {
			t.Fatal(err)
		}
	}
	if n := rec.Counter("fs.session.close"); n != 1 {
		t.Fatalf("fs.session.close = %d, want 1", n)
	}
	if st := srv.Stats(); st.Active != 0 {
		t.Fatalf("active sessions = %d, want 0", st.Active)
	}
}
