package asm

import (
	"errors"
	"strings"
	"testing"
)

func TestDirectives(t *testing.T) {
	p, err := Assemble(`
.org 0x500
A:	.word 1, 2, A, .+1
B:	.blk 3
C:	.txt "hi!"
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Origin != 0x500 {
		t.Fatalf("origin %#x", p.Origin)
	}
	want := []Word{1, 2, 0x500, 0x504, 0, 0, 0, 'h'<<8 | 'i', '!' << 8}
	for i, w := range want {
		if p.Words[i] != w {
			t.Errorf("word %d = %#x, want %#x", i, p.Words[i], w)
		}
	}
	if p.Symbols["B"] != 0x504 || p.Symbols["C"] != 0x507 {
		t.Errorf("symbols: %v", p.Symbols)
	}
}

func TestNumberFormats(t *testing.T) {
	p, err := Assemble(`.word 10, 0x10, 0o10, 'A', -1`)
	if err != nil {
		t.Fatal(err)
	}
	want := []Word{10, 16, 8, 65, 0xFFFF}
	for i, w := range want {
		if p.Words[i] != w {
			t.Errorf("word %d = %d, want %d", i, p.Words[i], w)
		}
	}
}

func TestEntryDefaultsAndStart(t *testing.T) {
	p := MustAssemble(".org 0x600\n.word 0")
	if p.Entry != 0x600 {
		t.Errorf("entry %#x, want origin", p.Entry)
	}
	p = MustAssemble(".org 0x600\nX: .word 0\nSTART: HALT")
	if p.Entry != 0x601 {
		t.Errorf("entry %#x, want START", p.Entry)
	}
}

func TestMemRefEncodings(t *testing.T) {
	p := MustAssemble(`
.org 0x400
	LDA 0, 0x20     ; page zero
	LDA 1, TARGET   ; PC-relative
	LDA 2, @0x20    ; indirect page zero
	LDA 3, 5(2)     ; AC2 indexed
	STA 0, -3(3)    ; AC3 indexed, negative disp
TARGET:	.word 0
`)
	want := []Word{
		1<<13 | 0<<11 | 0x20,
		1<<13 | 1<<11 | 1<<8 | 4, // target is 4 ahead of instruction 1
		1<<13 | 2<<11 | 1<<10 | 0x20,
		1<<13 | 3<<11 | 2<<8 | 5,
		2<<13 | 0<<11 | 3<<8 | 0xFD,
	}
	for i, w := range want {
		if p.Words[i] != w {
			t.Errorf("instr %d = %#04x, want %#04x", i, p.Words[i], w)
		}
	}
}

func TestALUEncodings(t *testing.T) {
	p := MustAssemble(`
	ADD 1, 2
	SUBZL# 0, 0, SZR
	MOVS 3, 1
`)
	want := []Word{
		0x8000 | 1<<13 | 2<<11 | 6<<8,
		0x8000 | 0<<13 | 0<<11 | 5<<8 | 1<<6 | 1<<4 | 1<<3 | 4,
		0x8000 | 3<<13 | 1<<11 | 2<<8 | 3<<6,
	}
	for i, w := range want {
		if p.Words[i] != w {
			t.Errorf("instr %d = %#04x, want %#04x", i, p.Words[i], w)
		}
	}
}

func TestErrors(t *testing.T) {
	cases := map[string]string{
		"far reference":    ".org 0x400\nLDA 0, FAR\n.org 0x4000\nFAR: .word 0",
		"duplicate label":  "A: .word 1\nA: .word 2",
		"unknown mnemonic": "FROB 1, 2",
		"bad accumulator":  "LDA 9, 0x10",
		"bad skip":         "ADD 0, 1, WAT",
		"undefined symbol": "JMP NOWHERE",
		"sys out of range": "SYS 0x4000",
		"empty":            "; nothing here",
	}
	for name, src := range cases {
		if _, err := Assemble(src); !errors.Is(err, ErrAsm) {
			t.Errorf("%s: got %v, want ErrAsm", name, err)
		}
	}
}

func TestErrorsCarryLineNumbers(t *testing.T) {
	_, err := Assemble("\n\nFROB 1")
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("error %v should name line 3", err)
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	p := MustAssemble(`
; leading comment
   ; indented comment

LABEL:          ; label-only line
	.word 7 ; trailing comment
`)
	if p.Words[0] != 7 || p.Symbols["LABEL"] != 0x400 {
		t.Fatalf("comments mishandled: %+v", p)
	}
}
