package asm

import (
	"fmt"
	"strings"
)

// Instruction encoding tables.
var (
	aluFns = map[string]Word{
		"COM": 0, "NEG": 1, "MOV": 2, "INC": 3,
		"ADC": 4, "SUB": 5, "ADD": 6, "AND": 7,
	}
	skips = map[string]Word{
		"SKP": 1, "SZC": 2, "SNC": 3, "SZR": 4, "SNR": 5, "SEZ": 6, "SBN": 7,
	}
)

// encode assembles one statement into words.
func encode(st *statement, syms map[string]Word) ([]Word, error) {
	switch st.mnem {
	case "", ".org":
		return nil, nil
	case ".word":
		out := make([]Word, len(st.args))
		for i, a := range st.args {
			v, err := evalExpr(a, syms, st.loc+Word(i))
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	case ".blk":
		return make([]Word, st.nwords), nil
	case ".txt":
		s, err := unquote(st.args[0])
		if err != nil {
			return nil, err
		}
		out := make([]Word, (len(s)+1)/2)
		for i := 0; i < len(s); i++ {
			if i%2 == 0 {
				out[i/2] |= Word(s[i]) << 8
			} else {
				out[i/2] |= Word(s[i])
			}
		}
		return out, nil
	case "HALT":
		return []Word{3 << 13}, nil
	case "SYS":
		if len(st.args) != 1 {
			return nil, fmt.Errorf("SYS needs one operand")
		}
		v, err := evalExpr(st.args[0], syms, st.loc)
		if err != nil {
			return nil, err
		}
		if v > 0x1FFF {
			return nil, fmt.Errorf("SYS code %d out of range", v)
		}
		return []Word{3<<13 | v}, nil
	case "JMP", "JSR", "ISZ", "DSZ":
		if len(st.args) != 1 {
			return nil, fmt.Errorf("%s needs one operand", st.mnem)
		}
		fn := map[string]Word{"JMP": 0, "JSR": 1, "ISZ": 2, "DSZ": 3}[st.mnem]
		mode, err := address(st.args[0], syms, st.loc)
		if err != nil {
			return nil, err
		}
		return []Word{fn<<11 | mode}, nil
	case "LDA", "STA":
		if len(st.args) != 2 {
			return nil, fmt.Errorf("%s needs accumulator, address", st.mnem)
		}
		ac, err := evalNum(st.args[0])
		if err != nil || ac > 3 {
			return nil, fmt.Errorf("bad accumulator %q", st.args[0])
		}
		op := Word(1)
		if st.mnem == "STA" {
			op = 2
		}
		mode, err := address(st.args[1], syms, st.loc)
		if err != nil {
			return nil, err
		}
		return []Word{op<<13 | ac<<11 | mode}, nil
	}

	// ALU mnemonics: FN [Z|O|C] [L|R|S] [#], operands src, dst [, skip].
	if w, err := encodeALU(st, syms); err == nil || !strings.Contains(err.Error(), "not an instruction") {
		return w, err
	}
	return nil, fmt.Errorf("not an instruction: %q", st.mnem)
}

// encodeALU handles the two-accumulator format.
func encodeALU(st *statement, syms map[string]Word) ([]Word, error) {
	m := st.mnem
	if len(m) < 3 {
		return nil, fmt.Errorf("not an instruction: %q", m)
	}
	fn, ok := aluFns[m[:3]]
	if !ok {
		return nil, fmt.Errorf("not an instruction: %q", m)
	}
	rest := m[3:]
	var cy, sh, noload Word
	for len(rest) > 0 {
		switch rest[0] {
		case 'Z':
			cy = 1
		case 'O':
			cy = 2
		case 'C':
			cy = 3
		case 'L':
			sh = 1
		case 'R':
			sh = 2
		case 'S':
			sh = 3
		case '#':
			noload = 1
		default:
			return nil, fmt.Errorf("not an instruction: %q", m)
		}
		rest = rest[1:]
	}
	if len(st.args) < 2 || len(st.args) > 3 {
		return nil, fmt.Errorf("%s needs src, dst[, skip]", m)
	}
	src, err := evalNum(st.args[0])
	if err != nil || src > 3 {
		return nil, fmt.Errorf("bad source accumulator %q", st.args[0])
	}
	dst, err := evalNum(st.args[1])
	if err != nil || dst > 3 {
		return nil, fmt.Errorf("bad destination accumulator %q", st.args[1])
	}
	var skip Word
	if len(st.args) == 3 {
		skip, ok = skips[strings.ToUpper(st.args[2])]
		if !ok {
			return nil, fmt.Errorf("bad skip %q", st.args[2])
		}
	}
	return []Word{0x8000 | src<<13 | dst<<11 | fn<<8 | sh<<6 | cy<<4 | noload<<3 | skip}, nil
}

// address encodes the addressing-mode bits for a memory-reference operand:
// [@]expr, or [@]disp(2|3) for index-register addressing.
func address(arg string, syms map[string]Word, instrLoc Word) (Word, error) {
	var mode Word
	if strings.HasPrefix(arg, "@") {
		mode |= 1 << 10
		arg = strings.TrimSpace(arg[1:])
	}
	// Index-register form: disp(2) or disp(3).
	if strings.HasSuffix(arg, "(2)") || strings.HasSuffix(arg, "(3)") {
		idx := Word(2)
		if strings.HasSuffix(arg, "(3)") {
			idx = 3
		}
		dispStr := strings.TrimSpace(arg[:len(arg)-3])
		disp, err := evalExpr(dispStr, syms, instrLoc)
		if err != nil {
			return 0, err
		}
		if int16(disp) < -128 || int16(disp) > 127 {
			return 0, fmt.Errorf("index displacement %d out of range", int16(disp))
		}
		return mode | idx<<8 | disp&0xFF, nil
	}
	target, err := evalExpr(arg, syms, instrLoc)
	if err != nil {
		return 0, err
	}
	if target < 0x100 {
		return mode | target, nil // page zero
	}
	rel := int32(target) - int32(instrLoc)
	if rel >= -128 && rel <= 127 {
		return mode | 1<<8 | Word(rel)&0xFF, nil // PC-relative
	}
	return 0, fmt.Errorf("address %#x unreachable from %#x (use an indirect pointer)", target, instrLoc)
}
