// Package asm is a two-pass assembler for the machine's Nova-like
// instruction set (see package cpu). It exists so that the programs run by
// the loader, the Executive, and the world-swap examples are real machine
// code rather than mocks — the moral equivalent of the BCPL compiler in the
// paper's system, at far smaller scope.
//
// Syntax, one statement per line:
//
//	; comment                    anything after ';' is ignored
//	LABEL: ...                   define LABEL at the current location
//	.org 0x400                   set the location counter
//	.word 1, LABEL, 'a', .-2     assemble literal words
//	.blk 10                      reserve 10 zero words
//	.txt "hi"                    bytes packed two per word, zero padded
//
//	LDA 0, X      STA 3, @PTR    memory reference: accumulator, address
//	JMP LOOP      JSR @VEC       control transfer
//	ISZ COUNT     DSZ COUNT      increment/decrement and skip on zero
//	ADD 1, 2      SUBZL# 0,0,SZR two-accumulator ALU, with optional
//	                             carry (Z,O,C), shift (L,R,S), no-load (#)
//	                             suffixes and an optional skip operand
//	SYS 3                        trap into the operating system
//	HALT                         SYS 0
//
// Addresses assemble as page-zero references when below 0x100, else
// PC-relative when within reach; "d(2)"/"d(3)" forces index-register
// addressing; a leading '@' sets the indirect bit.
package asm

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Word is the assembled unit.
type Word = uint16

// Program is the output of assembly.
type Program struct {
	Origin  Word            // lowest assembled address
	Words   []Word          // contiguous image from Origin
	Entry   Word            // the START label, or Origin
	Symbols map[string]Word // every label
}

// ErrAsm reports an assembly failure; the message carries the line number.
var ErrAsm = errors.New("asm: error")

type statement struct {
	line   int
	label  string
	mnem   string
	args   []string
	loc    Word
	nwords int
}

// Assemble translates source into a Program.
func Assemble(src string) (*Program, error) {
	stmts, err := parse(src)
	if err != nil {
		return nil, err
	}

	// Pass 1: assign locations, collect symbols.
	syms := map[string]Word{}
	loc := Word(0x400) // conventional load point (§5.1: "low memory addresses")
	for i := range stmts {
		st := &stmts[i]
		if st.mnem == ".org" {
			v, err := evalNum(st.args[0])
			if err != nil {
				return nil, lineErr(st.line, "bad .org: %v", err)
			}
			loc = v
		}
		if st.label != "" {
			if _, dup := syms[st.label]; dup {
				return nil, lineErr(st.line, "duplicate label %q", st.label)
			}
			syms[st.label] = loc
		}
		st.loc = loc
		n, err := sizeOf(st)
		if err != nil {
			return nil, lineErr(st.line, "%v", err)
		}
		st.nwords = n
		loc += Word(n)
	}

	// Pass 2: encode.
	image := map[Word]Word{}
	for i := range stmts {
		st := &stmts[i]
		words, err := encode(st, syms)
		if err != nil {
			return nil, lineErr(st.line, "%v", err)
		}
		for j, w := range words {
			image[st.loc+Word(j)] = w
		}
	}
	if len(image) == 0 {
		return nil, fmt.Errorf("%w: empty program", ErrAsm)
	}

	addrs := make([]int, 0, len(image))
	for a := range image {
		addrs = append(addrs, int(a))
	}
	sort.Ints(addrs)
	origin := Word(addrs[0])
	span := addrs[len(addrs)-1] - addrs[0] + 1
	out := make([]Word, span)
	for a, w := range image {
		out[a-origin] = w
	}
	entry := origin
	if e, ok := syms["START"]; ok {
		entry = e
	}
	return &Program{Origin: origin, Words: out, Entry: entry, Symbols: syms}, nil
}

// MustAssemble panics on error; for tests and fixed embedded programs.
func MustAssemble(src string) *Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

func lineErr(line int, format string, args ...any) error {
	return fmt.Errorf("%w: line %d: %s", ErrAsm, line, fmt.Sprintf(format, args...))
}

// parse splits source into statements.
func parse(src string) ([]statement, error) {
	var stmts []statement
	for i, raw := range strings.Split(src, "\n") {
		line := i + 1
		s := raw
		if j := strings.IndexByte(s, ';'); j >= 0 {
			s = s[:j]
		}
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		st := statement{line: line}
		if j := strings.IndexByte(s, ':'); j >= 0 && !strings.ContainsAny(s[:j], " \t\"") {
			st.label = s[:j]
			s = strings.TrimSpace(s[j+1:])
		}
		if s != "" {
			fields := strings.SplitN(s, " ", 2)
			st.mnem = strings.ToUpper(fields[0])
			if strings.HasPrefix(fields[0], ".") {
				st.mnem = strings.ToLower(fields[0])
			}
			if len(fields) > 1 {
				rest := strings.TrimSpace(fields[1])
				if st.mnem == ".txt" {
					st.args = []string{rest}
				} else {
					for _, a := range strings.Split(rest, ",") {
						st.args = append(st.args, strings.TrimSpace(a))
					}
				}
			}
		}
		if st.label == "" && st.mnem == "" {
			continue
		}
		stmts = append(stmts, st)
	}
	return stmts, nil
}

// sizeOf returns the number of words a statement assembles to.
func sizeOf(st *statement) (int, error) {
	switch st.mnem {
	case "", ".org":
		return 0, nil
	case ".word":
		return len(st.args), nil
	case ".blk":
		n, err := evalNum(st.args[0])
		return int(n), err
	case ".txt":
		s, err := unquote(st.args[0])
		if err != nil {
			return 0, err
		}
		return (len(s) + 1) / 2, nil
	default:
		return 1, nil
	}
}

func unquote(s string) (string, error) {
	if len(s) < 2 || s[0] != '"' || s[len(s)-1] != '"' {
		return "", fmt.Errorf("bad string %q", s)
	}
	return strconv.Unquote(s)
}

// evalNum parses a bare number (decimal, 0x hex, 0o octal) or char literal.
func evalNum(s string) (Word, error) {
	s = strings.TrimSpace(s)
	if len(s) >= 3 && s[0] == '\'' && s[len(s)-1] == '\'' {
		body, err := strconv.Unquote(s)
		if err != nil || len(body) != 1 {
			return 0, fmt.Errorf("bad char literal %s", s)
		}
		return Word(body[0]), nil
	}
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	v, err := strconv.ParseUint(s, 0, 17)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", s)
	}
	w := Word(v)
	if neg {
		w = -w
	}
	return w, nil
}

// evalExpr evaluates NUMBER | SYMBOL | expr(+|-)number | '.'.
func evalExpr(s string, syms map[string]Word, here Word) (Word, error) {
	s = strings.TrimSpace(s)
	// Split at the last top-level + or - (but not a leading sign).
	for i := len(s) - 1; i > 0; i-- {
		if s[i] == '+' || s[i] == '-' {
			left, err := evalExpr(s[:i], syms, here)
			if err != nil {
				return 0, err
			}
			right, err := evalNum(s[i+1:])
			if err != nil {
				return 0, err
			}
			if s[i] == '+' {
				return left + right, nil
			}
			return left - right, nil
		}
	}
	if s == "." {
		return here, nil
	}
	if v, ok := syms[s]; ok {
		return v, nil
	}
	return evalNum(s)
}
