package asm

import "fmt"

// Disasm decodes one instruction word at address addr back into assembler
// syntax. The debugger's examine command uses it; round-tripping through
// Assemble is checked by tests. Addresses in memory-reference instructions
// are resolved to absolute form where possible (page zero and PC-relative).
func Disasm(addr Word, instr Word) string {
	switch {
	case instr&0x8000 != 0:
		return disasmALU(instr)
	case instr>>13 == 0:
		fn := [4]string{"JMP", "JSR", "ISZ", "DSZ"}[(instr>>11)&3]
		return fmt.Sprintf("%s %s", fn, disasmEA(addr, instr))
	case instr>>13 == 1:
		return fmt.Sprintf("LDA %d, %s", (instr>>11)&3, disasmEA(addr, instr))
	case instr>>13 == 2:
		return fmt.Sprintf("STA %d, %s", (instr>>11)&3, disasmEA(addr, instr))
	default: // trap format
		code := instr & 0x1FFF
		if code == 0 {
			return "HALT"
		}
		return fmt.Sprintf("SYS %d", code)
	}
}

func disasmEA(addr, instr Word) string {
	ind := ""
	if instr&0x0400 != 0 {
		ind = "@"
	}
	disp := instr & 0xFF
	switch (instr >> 8) & 3 {
	case 0:
		return fmt.Sprintf("%s0x%02X", ind, disp)
	case 1:
		target := addr + signExtendDisasm(disp)
		return fmt.Sprintf("%s0x%04X", ind, target)
	case 2:
		return fmt.Sprintf("%s%d(2)", ind, int16(signExtendDisasm(disp)))
	default:
		return fmt.Sprintf("%s%d(3)", ind, int16(signExtendDisasm(disp)))
	}
}

func signExtendDisasm(b Word) Word {
	if b&0x80 != 0 {
		return b | 0xFF00
	}
	return b
}

var aluNames = [8]string{"COM", "NEG", "MOV", "INC", "ADC", "SUB", "ADD", "AND"}
var skipNames = [8]string{"", "SKP", "SZC", "SNC", "SZR", "SNR", "SEZ", "SBN"}

func disasmALU(instr Word) string {
	src := (instr >> 13) & 3
	dst := (instr >> 11) & 3
	fn := (instr >> 8) & 7
	sh := (instr >> 6) & 3
	cy := (instr >> 4) & 3
	noload := instr&0x8 != 0
	skip := instr & 7

	m := aluNames[fn]
	m += [4]string{"", "Z", "O", "C"}[cy]
	m += [4]string{"", "L", "R", "S"}[sh]
	if noload {
		m += "#"
	}
	out := fmt.Sprintf("%s %d, %d", m, src, dst)
	if skip != 0 {
		out += ", " + skipNames[skip]
	}
	return out
}
