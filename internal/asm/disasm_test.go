package asm

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestDisasmKnownForms(t *testing.T) {
	cases := map[Word]string{
		3 << 13:                             "HALT",
		3<<13 | 7:                           "SYS 7",
		1<<13 | 0<<11 | 0x20:                "LDA 0, 0x20",
		2<<13 | 3<<11 | 1<<10 | 0x21:        "STA 3, @0x21",
		1<<13 | 1<<11 | 2<<8 | 5:            "LDA 1, 5(2)",
		1<<13 | 1<<11 | 3<<8 | 0xFD:         "LDA 1, -3(3)",
		0x8000 | 1<<13 | 2<<11 | 6<<8:       "ADD 1, 2",
		0x8000 | 5<<8 | 1<<6 | 1<<4 | 8 | 4: "SUBZL# 0, 0, SZR",
	}
	for instr, want := range cases {
		if got := Disasm(0x400, instr); got != want {
			t.Errorf("Disasm(%#04x) = %q, want %q", instr, got, want)
		}
	}
}

func TestDisasmPCRelative(t *testing.T) {
	// JMP to 0x404 from 0x400: PC-relative +4.
	instr := Word(0<<11 | 1<<8 | 4)
	if got := Disasm(0x400, instr); got != "JMP 0x0404" {
		t.Errorf("got %q", got)
	}
}

// Property: assembling a disassembled ALU instruction reproduces the word.
func TestDisasmAssembleRoundTripALU(t *testing.T) {
	f := func(raw uint16) bool {
		instr := raw | 0x8000
		text := Disasm(0x400, instr)
		p, err := Assemble(".org 0x400\n" + text + "\n")
		if err != nil {
			return false
		}
		return p.Words[0] == instr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: memory-reference instructions round-trip too (excluding
// page-zero targets that collide with the assembler's mode choice).
func TestDisasmAssembleRoundTripMemRef(t *testing.T) {
	f := func(raw uint16) bool {
		instr := raw & 0x7FFF // clear ALU bit
		if instr>>13 == 3 {   // trap: check separately
			return true
		}
		text := Disasm(0x400, instr)
		p, err := Assemble(".org 0x400\n" + text + "\n")
		if err != nil {
			// The assembler cannot express every encoding (e.g. a
			// PC-relative form whose absolute target is < 0x100 assembles
			// to page-zero instead). Accept only clean failures for
			// genuinely ambiguous targets.
			return strings.Contains(text, "0x00")
		}
		if p.Words[0] == instr {
			return true
		}
		// Mode-choice ambiguity: same effective address, different mode.
		return sameEffect(instr, p.Words[0])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// sameEffect reports whether two memory-reference encodings address the same
// location from 0x400 with the same opcode and indirect bit.
func sameEffect(a, b Word) bool {
	if a>>11 != b>>11 || a&0x0400 != b&0x0400 {
		return false
	}
	ea := func(instr Word) int {
		disp := instr & 0xFF
		switch (instr >> 8) & 3 {
		case 0:
			return int(disp)
		case 1:
			return int(0x400 + signExtendDisasm(disp))
		default:
			return -1 // index modes must match exactly
		}
	}
	ea1, ea2 := ea(a), ea(b)
	return ea1 >= 0 && ea1 == ea2
}
