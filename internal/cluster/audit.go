package cluster

// The peer-audit protocol: each round a replica gathers its shard group's
// digest tables — its own read straight off the pack, every peer's over the
// wire via MsgDigest — decides per file whether the group agrees, and when
// its own copy is the wrong one, heals it by fetching the authoritative copy
// from a peer. The decision is a pure function of the tables, so every
// replica reaches the same verdict independently: no coordinator, no
// election, no repair lock. A copy is wrong when it is missing, when its
// drive's own checksums say it was damaged outside the disciplined write
// path (rot), or when it loses the content vote — majority of clean copies
// first, freshest write stamp to break ties, lowest replica index last, so
// the vote never dead-heats.

import (
	"fmt"
	"sort"

	"altoos/internal/ether"
	"altoos/internal/fileserver"
	"altoos/internal/pup"
	"altoos/internal/trace"
)

// AuditOutcome reports one round.
type AuditOutcome struct {
	// Divergent counts files on which the shard group disagreed — a missing
	// copy, a rotted copy, or a content mismatch.
	Divergent int
	// Healed counts files this replica refetched from a peer.
	Healed int
	// Unreachable counts peers that failed to answer the digest poll.
	Unreachable int
}

// repair is one file this replica must refetch, and from whom.
type repair struct {
	name      string
	authority int // replica index holding the good copy
}

// AuditRound runs one full audit round synchronously. sync must let the
// fleet window catch up before each wire observation (fleet.Machine.Sync);
// idle must park the machine when a poll sweep moved nothing (Idle). Under a
// plain shared-clock rig both may be no-ops that nudge the clock.
func (r *Replica) AuditRound(sync, idle func()) (AuditOutcome, error) {
	r.rounds++
	var out AuditOutcome
	flow := r.rec.NextFlow()
	start := r.clock.Now()

	// Gather the group's tables, replica-index order, self read locally.
	group := len(r.peers) + 1
	tables := make([][]fileserver.Digest, group)
	have := make([]bool, group)
	local, err := fileserver.DigestTable(r.fs)
	if err != nil {
		return out, fmt.Errorf("%s: local digest: %w", r.Name(), err)
	}
	tables[r.Index], have[r.Index] = local, true
	for _, p := range r.peers {
		data, err := r.call(p.addr, func(cl *fileserver.Client) error { return cl.Digests() }, sync, idle)
		if err != nil {
			// An unreachable peer sits this round out; its copies are
			// neither voted on nor treated as missing.
			out.Unreachable++
			r.rec.Add("cluster.audit.unreachable", 1)
			continue
		}
		digs, err := fileserver.ParseDigests(data)
		if err != nil {
			return out, fmt.Errorf("%s: digest from r%d: %w", r.Name(), p.index, err)
		}
		tables[p.index], have[p.index] = digs, true
	}

	divergent, repairs := plan(r.Index, tables, have)
	out.Divergent = len(divergent)
	for _, rep := range repairs {
		if err := r.heal(rep, flow, sync, idle); err != nil {
			return out, err
		}
		out.Healed++
	}

	r.rec.EmitSpanFlow(start, r.clock.Now()-start, trace.KindClusterAudit, r.Name(),
		int64(len(r.peers)-out.Unreachable), int64(out.Divergent), flow)
	r.rec.Add("cluster.round", 1)
	r.rec.Add("cluster.divergence", int64(out.Divergent))
	return out, nil
}

// heal refetches one file from its authority and rewrites the local copy
// through the disciplined write path, which also refreshes the sector
// checksums rot left stale.
func (r *Replica) heal(rep repair, flow int64, sync, idle func()) error {
	start := r.clock.Now()
	addr := r.authorityAddr(rep.authority)
	data, err := r.call(addr, func(cl *fileserver.Client) error { return cl.Fetch(rep.name) }, sync, idle)
	if err != nil {
		return fmt.Errorf("%s: heal %q from r%d: %w", r.Name(), rep.name, rep.authority, err)
	}
	if err := StoreLocal(r.fs, rep.name, data); err != nil {
		return fmt.Errorf("%s: heal %q store: %w", r.Name(), rep.name, err)
	}
	r.heals++
	r.lastHealR = r.rounds
	r.rec.EmitSpanFlow(start, r.clock.Now()-start, trace.KindClusterHeal, rep.name,
		int64(rep.authority), int64(len(data)), flow)
	r.rec.Add("cluster.heal", 1)
	r.rec.Add("cluster.heal.bytes", int64(len(data)))
	return nil
}

// authorityAddr maps a peer replica index to its server address.
func (r *Replica) authorityAddr(index int) ether.Addr {
	for _, p := range r.peers {
		if p.index == index {
			return p.addr
		}
	}
	return 0 // unreachable: plan never names self or an unknown index
}

// call runs one RPC against a server: fresh connection, the request, the
// reply bytes, then a graceful close — every audit poll is its own session,
// so a round leaves no long-lived connection state behind to time out.
func (r *Replica) call(addr ether.Addr, req func(*fileserver.Client) error, sync, idle func()) ([]byte, error) {
	cl := fileserver.NewClient(r.audEp)
	if err := cl.Connect(addr); err != nil {
		return nil, err
	}
	if err := req(cl); err != nil {
		return nil, err
	}
	data, err := r.awaitDone(cl, sync, idle)
	if cl.Close() == nil {
		r.awaitClosed(cl, sync, idle)
	}
	return data, err
}

// awaitDone drives the replica until the RPC completes: poll the client,
// keep serving inbound sessions (a peer may be auditing us right now), and
// park when a sweep moved nothing.
func (r *Replica) awaitDone(cl *fileserver.Client, sync, idle func()) ([]byte, error) {
	for {
		sync()
		w1, err := cl.Poll()
		if err != nil {
			return nil, err
		}
		w2, err := r.srv.Poll()
		if err != nil {
			return nil, err
		}
		if cl.Done() {
			return cl.Result()
		}
		if !w1 && !w2 {
			idle()
		}
	}
}

// awaitClosed drives the close handshake to rest (an error also closes).
func (r *Replica) awaitClosed(cl *fileserver.Client, sync, idle func()) {
	for cl.Conn().State() != pup.StateClosed {
		sync()
		w1, err := cl.Poll()
		if err != nil {
			return
		}
		w2, err := r.srv.Poll()
		if err != nil {
			return
		}
		if !w1 && !w2 {
			idle()
		}
	}
}

// plan is the pure audit decision: given the shard group's digest tables
// (index = replica index; have marks reachable replicas), return the names
// the group diverges on and the repairs replica self must perform. Every
// replica computes the same divergence set and the same per-file authority;
// self's repairs are just the rows where self is on the losing side.
func plan(self int, tables [][]fileserver.Digest, have []bool) (divergent []string, repairs []repair) {
	names := nameUnion(tables, have)
	for _, name := range names {
		ds := make([]*fileserver.Digest, len(tables))
		for i := range tables {
			if !have[i] {
				continue
			}
			for j := range tables[i] {
				if tables[i][j].Name == name {
					ds[i] = &tables[i][j]
					break
				}
			}
		}
		if agreed(ds, have) {
			continue
		}
		divergent = append(divergent, name)
		winner := vote(ds, have)
		if winner < 0 || winner == self {
			continue
		}
		d := ds[self]
		w := ds[winner]
		if d == nil || !d.Clean || d.CRC != w.CRC || d.Size != w.Size {
			repairs = append(repairs, repair{name: name, authority: winner})
		}
	}
	return divergent, repairs
}

// agreed reports whether every reachable replica holds the file, clean,
// with identical content.
func agreed(ds []*fileserver.Digest, have []bool) bool {
	var first *fileserver.Digest
	for i, d := range ds {
		if !have[i] {
			continue
		}
		if d == nil || !d.Clean {
			return false
		}
		if first == nil {
			first = d
		} else if d.CRC != first.CRC || d.Size != first.Size {
			return false
		}
	}
	return true
}

// vote picks the authoritative copy: among clean copies, the content held
// by the most replicas wins; ties go to the freshest write stamp, then the
// lowest replica index. Returns that index, or -1 when no clean copy exists
// (nothing trustworthy to heal from).
func vote(ds []*fileserver.Digest, have []bool) int {
	best := -1
	bestCount := 0
	var bestWritten int64
	for i, d := range ds {
		if !have[i] || d == nil || !d.Clean {
			continue
		}
		count := 0
		written := int64(0)
		for j, e := range ds {
			if !have[j] || e == nil || !e.Clean || e.CRC != d.CRC || e.Size != d.Size {
				continue
			}
			count++
			if int64(e.Written) > written {
				written = int64(e.Written)
			}
		}
		if count > bestCount || (count == bestCount && written > bestWritten) {
			best, bestCount, bestWritten = i, count, written
		}
	}
	return best
}

// nameUnion returns every file name any reachable table mentions, sorted.
func nameUnion(tables [][]fileserver.Digest, have []bool) []string {
	var names []string
	for i := range tables {
		if !have[i] {
			continue
		}
		for _, d := range tables[i] {
			names = append(names, d.Name)
		}
	}
	sort.Strings(names)
	out := names[:0]
	for i, n := range names {
		if i == 0 || n != names[i-1] {
			out = append(out, n)
		}
	}
	return out
}
