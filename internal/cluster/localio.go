package cluster

// Local file I/O for heals and offline verification: the same byte layout
// the file server uses on the wire (big-endian bytes packed two to a word,
// last page always partial), but driven through the local FS — a heal is an
// ordinary label-checked store on the replica's own clock, which is also
// what refreshes the sector checksums rot left stale.

import (
	"errors"
	"fmt"

	"altoos/internal/dir"
	"altoos/internal/disk"
	"altoos/internal/file"
)

// StoreLocal writes data under name on fs, creating the file and its root
// directory entry if needed, truncating leftovers if the file shrank.
func StoreLocal(fs *file.FS, name string, data []byte) error {
	root, err := dir.OpenRoot(fs)
	if err != nil {
		return errors.New("no root directory")
	}
	var f *file.File
	if fn, err := root.Lookup(name); err == nil {
		if f, err = fs.Open(fn); err != nil {
			return fmt.Errorf("open %q failed", name)
		}
	} else {
		if f, err = fs.Create(name); err != nil {
			return errors.New("disk full")
		}
		if err := root.Insert(name, f.FN()); err != nil {
			return errors.New("directory full")
		}
	}
	lastLen := len(data) % disk.PageBytes
	lastPN := disk.Word((len(data)/disk.PageBytes + 1) & 0xFFFF)
	if f.LastPN() > lastPN {
		if err := f.Truncate(lastPN, lastLen); err != nil {
			return fmt.Errorf("truncate %q failed", name)
		}
	}
	var buf [disk.PageWords]disk.Word
	for pn := disk.Word(1); pn <= lastPN; pn++ {
		off := (int(pn) - 1) * disk.PageBytes
		for i := range buf {
			var w disk.Word
			if off < len(data) {
				w = disk.Word(data[off]) << 8
			}
			if off+1 < len(data) {
				w |= disk.Word(data[off+1])
			}
			buf[i] = w
			off += 2
		}
		length := disk.PageBytes
		if pn == lastPN {
			length = lastLen
		}
		if err := f.WritePage(pn, &buf, length); err != nil {
			return fmt.Errorf("write %q page %d failed", name, pn)
		}
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("sync %q failed", name)
	}
	if drv, ok := fs.Device().(*disk.Drive); ok {
		drv.TraceRecorder().Add("cluster.store.local", 1)
	}
	return nil
}

// ReadLocal reads the whole named file off fs, the inverse of StoreLocal.
func ReadLocal(fs *file.FS, name string) ([]byte, error) {
	fn, err := dir.ResolveName(fs, name)
	if err != nil {
		return nil, fmt.Errorf("no such file %q", name)
	}
	f, err := fs.Open(fn)
	if err != nil {
		return nil, fmt.Errorf("open %q failed", name)
	}
	lastPN, lastLen := f.LastPage()
	out := make([]byte, 0, (int(lastPN)-1)*disk.PageBytes+lastLen)
	var buf [disk.PageWords]disk.Word
	for pn := disk.Word(1); pn <= lastPN; pn++ {
		n, err := f.ReadPage(pn, &buf)
		if err != nil {
			return nil, fmt.Errorf("read %q page %d failed", name, pn)
		}
		for i := 0; i < n; i++ {
			w := buf[i/2]
			if i%2 == 0 {
				out = append(out, byte(w>>8))
			} else {
				out = append(out, byte(w))
			}
		}
	}
	if drv, ok := fs.Device().(*disk.Drive); ok {
		drv.TraceRecorder().Add("cluster.read.local", 1)
	}
	return out, nil
}
