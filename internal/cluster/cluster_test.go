package cluster

// Deterministic unit tests for the audit protocol, on a plain shared-clock
// rig (no fleet engine): scripted single-sector rot, a scripted divergent
// store (one replica missed an overwrite), and byte-identical replay of a
// full audit-heal round.

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"altoos/internal/dir"
	"altoos/internal/disk"
	"altoos/internal/ether"
	"altoos/internal/fileserver"
	"altoos/internal/pup"
	"altoos/internal/sim"
	"altoos/internal/trace"
)

// testGeometry is a small pack that still charges real seek/rotation time.
func testGeometry() disk.Geometry {
	g := disk.Diablo31()
	g.Name = "Diablo31/12"
	g.Cylinders = 12
	return g
}

// rig is one hand-polled cluster: shared clock, perfect wire.
type rig struct {
	t     *testing.T
	clock *sim.Clock
	c     *Cluster
	cl    *Client
}

func newRig(t *testing.T, shards, replicas int, rec func(string) *trace.Recorder) *rig {
	t.Helper()
	clock := sim.NewClock()
	wire := ether.New(clock)
	c, err := New(Config{
		Shards:   shards,
		Replicas: replicas,
		Wire:     wire,
		Clock:    clock,
		Geometry: testGeometry(),
		Recorder: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := wire.Attach(ClientAddrBase)
	if err != nil {
		t.Fatal(err)
	}
	if rec != nil {
		st.SetRecorder(rec("client"))
	}
	return &rig{t: t, clock: clock, c: c,
		cl: NewClient(c.Place, pup.NewEndpoint(st, pup.Config{}))}
}

// pump advances every replica one poll step.
func (rg *rig) pump() {
	for _, r := range rg.c.Replicas {
		if _, err := r.Poll(); err != nil {
			rg.t.Fatal(err)
		}
	}
}

// wait is the rig's WaitFunc: poll the transfer and every replica until done.
func (rg *rig) wait(fc *fileserver.Client) error {
	for i := 0; i < 1_000_000 && !fc.Done(); i++ {
		if _, err := fc.Poll(); err != nil {
			return err
		}
		rg.pump()
	}
	if !fc.Done() {
		rg.t.Fatal("transfer never completed")
	}
	_, err := fc.Result()
	return err
}

// audit runs one round on the given replica, pumping the rest of the rig
// while the round waits on the wire.
func (rg *rig) audit(r *Replica) AuditOutcome {
	rg.t.Helper()
	out, err := r.AuditRound(func() {}, rg.pump)
	if err != nil {
		rg.t.Fatal(err)
	}
	return out
}

// payload builds deterministic non-periodic content. (A pattern that repeats
// every 256 bytes would fold to a zero page CRC under the drive's rotate-xor
// checksum — a degenerate payload no real file exhibits on purpose.)
func payload(seed, n int) []byte {
	data := make([]byte, n)
	x := uint32(seed)*2654435761 + 12345
	for i := range data {
		x = x*1664525 + 1013904223
		data[i] = byte(x >> 24)
	}
	return data
}

// pageVDA locates one page of a stored file on a replica's pack.
func pageVDA(t *testing.T, r *Replica, name string, pn disk.Word) disk.VDA {
	t.Helper()
	fn, err := dir.ResolveName(r.FS(), name)
	if err != nil {
		t.Fatal(err)
	}
	f, err := r.FS().Open(fn)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := f.PageAddr(pn)
	if err != nil {
		t.Fatal(err)
	}
	return addr
}

// verifyAll asserts every replica of the file's shard holds exactly want.
func (rg *rig) verifyAll(name string, want []byte) {
	rg.t.Helper()
	shard := rg.c.Place.Shard(name)
	for _, r := range rg.c.Replicas {
		if r.Shard != shard {
			continue
		}
		got, err := ReadLocal(r.FS(), name)
		if err != nil {
			rg.t.Fatalf("%s: %v", r.Name(), err)
		}
		if !bytes.Equal(got, want) {
			rg.t.Fatalf("%s: %q differs: got %d bytes, want %d", r.Name(), name, len(got), len(want))
		}
	}
}

// TestAuditHealsRot injects single-sector damage on an idle replica — bit
// flips on one run, a full value zap on another — and demands the victim's
// own audit round detect the divergence and heal from a peer.
func TestAuditHealsRot(t *testing.T) {
	for _, tc := range []struct {
		name string
		hit  func(r *Replica, addr disk.VDA)
	}{
		{"corrupt", func(r *Replica, addr disk.VDA) { r.Drive().CorruptValue(addr, sim.NewRand(7)) }},
		{"zap", func(r *Replica, addr disk.VDA) { r.Drive().ZapValue(addr, [disk.PageWords]disk.Word{}) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rg := newRig(t, 1, 3, nil)
			data := payload(3, 2*disk.PageBytes+41)
			if err := rg.cl.Store("notes", data, rg.wait); err != nil {
				t.Fatal(err)
			}
			victim := rg.c.Replicas[1]
			tc.hit(victim, pageVDA(t, victim, "notes", 2))

			out := rg.audit(victim)
			if out.Divergent != 1 {
				t.Fatalf("divergent = %d, want 1", out.Divergent)
			}
			if out.Healed != 1 {
				t.Fatalf("healed = %d, want 1", out.Healed)
			}
			rg.verifyAll("notes", data)
			if out := rg.audit(victim); out.Divergent != 0 {
				t.Fatalf("round after heal still divergent: %d", out.Divergent)
			}
			// The healthy replicas see a clean group too.
			if out := rg.audit(rg.c.Replicas[0]); out.Divergent != 0 || out.Healed != 0 {
				t.Fatalf("healthy replica saw %+v", out)
			}
		})
	}
}

// TestAuditHealsDivergentStore makes one replica miss an overwrite — the
// client wrote through the group with the victim skipped — and demands the
// vote pick the newer content even at a one-against-one dead heat (the
// write-stamp tie-break), healing the stale copy.
func TestAuditHealsDivergentStore(t *testing.T) {
	rg := newRig(t, 1, 2, nil)
	old := payload(1, disk.PageBytes+100)
	if err := rg.cl.Store("doc", old, rg.wait); err != nil {
		t.Fatal(err)
	}
	// Let simulated time pass so the overwrite's stamp is strictly newer.
	rg.clock.Advance(50 * time.Millisecond)
	next := payload(2, disk.PageBytes+350)
	rg.cl.SetSkip(func(shard, replica int) bool { return replica == 1 })
	if err := rg.cl.Store("doc", next, rg.wait); err != nil {
		t.Fatal(err)
	}
	rg.cl.SetSkip(nil)

	// The up-to-date replica detects the divergence but must not touch its
	// own copy: it won the vote.
	if out := rg.audit(rg.c.Replicas[0]); out.Divergent != 1 || out.Healed != 0 {
		t.Fatalf("fresh replica saw %+v, want 1 divergent, 0 healed", out)
	}
	// The stale replica loses the tie on the write stamp and heals.
	out := rg.audit(rg.c.Replicas[1])
	if out.Divergent != 1 || out.Healed != 1 {
		t.Fatalf("stale replica saw %+v, want 1 divergent, 1 healed", out)
	}
	rg.verifyAll("doc", next)
	if out := rg.audit(rg.c.Replicas[1]); out.Divergent != 0 {
		t.Fatalf("round after heal still divergent: %d", out.Divergent)
	}
}

// TestAuditMissingCopyHealed: a file stored while a replica was skipped
// entirely appears on the group's next audit — present copies win, the
// absent replica fetches it fresh.
func TestAuditMissingCopyHealed(t *testing.T) {
	rg := newRig(t, 1, 3, nil)
	data := payload(9, 3*disk.PageBytes+17)
	rg.cl.SetSkip(func(shard, replica int) bool { return replica == 2 })
	if err := rg.cl.Store("memo", data, rg.wait); err != nil {
		t.Fatal(err)
	}
	rg.cl.SetSkip(nil)
	out := rg.audit(rg.c.Replicas[2])
	if out.Divergent != 1 || out.Healed != 1 {
		t.Fatalf("absent replica saw %+v, want 1 divergent, 1 healed", out)
	}
	rg.verifyAll("memo", data)
}

// snapshot flattens a recorder set into one comparable string.
func snapshot(recs map[string]*trace.Recorder, names []string) string {
	var buf bytes.Buffer
	for _, name := range names {
		rec := recs[name]
		fmt.Fprintf(&buf, "== %s\n", name)
		for _, ev := range rec.Events() {
			fmt.Fprintf(&buf, "%d %d %d %q %d %d %d\n",
				ev.T, ev.Dur, ev.Kind, ev.Name, ev.A0, ev.A1, ev.Flow)
		}
		for _, c := range []string{"cluster.round", "cluster.divergence", "cluster.heal", "cluster.heal.bytes", "fs.digest"} {
			fmt.Fprintf(&buf, "%s=%d\n", c, rec.Counter(c))
		}
	}
	return buf.String()
}

// TestAuditRoundReplay replays a full audit-heal round — store, rot, audit
// on every replica — twice from scratch and demands byte-identical traces
// and counters: the distributed Scavenger is as replayable as the local one.
func TestAuditRoundReplay(t *testing.T) {
	run := func() string {
		recs := map[string]*trace.Recorder{}
		var names []string
		rg := newRig(t, 1, 3, func(name string) *trace.Recorder {
			if recs[name] == nil {
				recs[name] = trace.New(1 << 14)
				names = append(names, name)
			}
			return recs[name]
		})
		data := payload(5, 2*disk.PageBytes+200)
		if err := rg.cl.Store("ledger", data, rg.wait); err != nil {
			t.Fatal(err)
		}
		victim := rg.c.Replicas[2]
		victim.Drive().CorruptValue(pageVDA(t, victim, "ledger", 1), sim.NewRand(11))
		for _, r := range rg.c.Replicas {
			rg.audit(r)
		}
		rg.verifyAll("ledger", data)
		return snapshot(recs, names)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("audit-heal round not replayable:\nrun1:\n%s\nrun2:\n%s", a, b)
	}
	if len(a) == 0 {
		t.Fatal("empty snapshot")
	}
}
