package cluster

// Client is the cluster's client-side library: it routes by the placement
// map, writes through every replica of a file's shard, and reads from any
// one of them with failover. It is deliberately thin — there is no cluster
// master to talk to, so "the cluster" from a client's seat is just the
// placement arithmetic plus ordinary fileserver sessions.

import (
	"errors"
	"fmt"

	"altoos/internal/fileserver"
	"altoos/internal/pup"
	"altoos/internal/trace"
)

// WaitFunc drives one fileserver transfer to completion: poll the transfer
// (and whatever else the machine must keep alive), parking as the caller's
// scheduling discipline demands, until Done, then return Result's error.
// The cluster client stays free of any scheduler this way — a fleet machine
// waits with Sync/Idle, a plain rig waits with a bare polling loop.
type WaitFunc func(*fileserver.Client) error

// Client talks to a cluster through one transport endpoint.
type Client struct {
	place Placement
	ep    *pup.Endpoint
	conns []*fileserver.Client // lazily dialed, indexed shard*Replicas+idx

	// skip, when set, makes Store silently bypass a replica — the fault
	// injection hook that manufactures a replica that missed an overwrite.
	skip func(shard, replica int) bool
}

// NewClient builds a cluster client for the given placement.
func NewClient(place Placement, ep *pup.Endpoint) *Client {
	return &Client{
		place: place,
		ep:    ep,
		conns: make([]*fileserver.Client, place.Shards*place.Replicas),
	}
}

// SetSkip installs the store-bypass hook (nil clears it).
func (c *Client) SetSkip(skip func(shard, replica int) bool) { c.skip = skip }

// rec reaches the endpoint's flight recorder (nil when tracing is off).
func (c *Client) rec() *trace.Recorder { return c.ep.Station().TraceRecorder() }

// conn returns the lazily-dialed session to one replica.
func (c *Client) conn(shard, idx int) (*fileserver.Client, error) {
	slot := shard*c.place.Replicas + idx
	if c.conns[slot] == nil {
		fc := fileserver.NewClient(c.ep)
		if err := fc.Connect(c.place.ServerAddr(shard, idx)); err != nil {
			return nil, err
		}
		c.conns[slot] = fc
	}
	return c.conns[slot], nil
}

// Store writes data under name through every replica of the name's shard,
// in replica-index order, waiting each copy onto the disk before the next.
// Every replica must confirm (minus any the skip hook bypasses): a cluster
// write is durable on the whole group or it is an error.
func (c *Client) Store(name string, data []byte, wait WaitFunc) error {
	shard := c.place.Shard(name)
	stored := 0
	for idx := 0; idx < c.place.Replicas; idx++ {
		if c.skip != nil && c.skip(shard, idx) {
			continue
		}
		fc, err := c.conn(shard, idx)
		if err != nil {
			return fmt.Errorf("cluster: dial shard%d/r%d: %w", shard, idx, err)
		}
		if err := fc.Store(name, data); err != nil {
			return err
		}
		if err := wait(fc); err != nil {
			return fmt.Errorf("cluster: store %q on shard%d/r%d: %w", name, shard, idx, err)
		}
		stored++
	}
	if stored == 0 {
		return fmt.Errorf("cluster: store %q: every replica skipped", name)
	}
	c.rec().Add("cluster.client.store", 1)
	return nil
}

// Fetch reads name from its shard, trying replicas in index order starting
// at a name-determined offset (spreading read load across the group) and
// failing over to the next on error.
func (c *Client) Fetch(name string, wait WaitFunc) ([]byte, error) {
	shard := c.place.Shard(name)
	first := c.place.Shard(name + "#read") % c.place.Replicas
	var lastErr error
	for k := 0; k < c.place.Replicas; k++ {
		idx := (first + k) % c.place.Replicas
		fc, err := c.conn(shard, idx)
		if err != nil {
			lastErr = err
			continue
		}
		if err := fc.Fetch(name); err != nil {
			lastErr = err
			continue
		}
		if err := wait(fc); err != nil {
			lastErr = err
			continue
		}
		data, err := fc.Result()
		if err != nil {
			lastErr = err
			continue
		}
		c.rec().Add("cluster.client.fetch", 1)
		return data, nil
	}
	if lastErr == nil {
		lastErr = errors.New("cluster: no replicas")
	}
	return nil, fmt.Errorf("cluster: fetch %q: %w", name, lastErr)
}

// Close begins a graceful close on every dialed session; the caller keeps
// polling (each session's wait discipline) until the conns report closed.
func (c *Client) Close() []*fileserver.Client {
	var open []*fileserver.Client
	for _, fc := range c.conns {
		if fc == nil {
			continue
		}
		if fc.Close() == nil {
			open = append(open, fc)
		}
	}
	return open
}
