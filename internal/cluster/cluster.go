// Package cluster is the sharded, replicated file service: N fileserver
// machines under internal/fleet, a deterministic placement map routing each
// file name to a shard replicated across consecutive machines, and — the
// ambitious part — a peer-audit daemon on every replica, the distributed
// descendant of §3.5's Scavenger. During idle rotations a replica polls its
// shard peers over pup for per-file digests (built on the drive's per-sector
// value checksums), detects silent divergence or bit-rot, and heals its own
// copy by fetching the good one from a peer, LOCKSS-style: no master, no
// repair coordinator, just every copy continuously voting on every other.
//
// Everything is deterministic under the fleet engine's windowed schedule —
// audit rounds, repairs and heals land at byte-identical simulated times
// across runs and worker widths, and every round and heal is a traced span
// on a causal flow, so altoscope shows who detected what and where the good
// copy came from.
package cluster

import (
	"fmt"
	"time"

	"altoos/internal/dir"
	"altoos/internal/disk"
	"altoos/internal/ether"
	"altoos/internal/file"
	"altoos/internal/fileserver"
	"altoos/internal/fleet"
	"altoos/internal/pup"
	"altoos/internal/sim"
	"altoos/internal/trace"
)

// Config describes a cluster to build.
type Config struct {
	// Shards and Replicas fix the placement map: Shards×Replicas machines.
	Shards   int
	Replicas int
	// Wire is the shared medium every station attaches to.
	Wire *ether.Network
	// Clock, when set, is shared by every replica — the plain hand-polled
	// rig the unit tests and the crash explorer drive. Nil gives each
	// replica its own clock, the fleet engine's windowed discipline.
	Clock *sim.Clock
	// Geometry is each replica's pack shape.
	Geometry disk.Geometry
	// AuditInterval separates a replica's audit rounds; AuditQuiet is how
	// many consecutive clean rounds a replica demands before it stops
	// scheduling audits and lets the fleet drain.
	AuditInterval time.Duration
	AuditQuiet    int
	// AuditPup tunes the auditor endpoints; each replica's Seed is offset
	// by its global index so connection ids stay distinct and deterministic.
	AuditPup pup.Config
	// Recorder maps a replica name ("shard0/r1") to its trace recorder.
	// Nil gives replicas no recorder (counters off).
	Recorder func(name string) *trace.Recorder
}

// Cluster is a built set of replicas, shard-major order.
type Cluster struct {
	Place    Placement
	Replicas []*Replica
}

// Replica is one storage machine: a fileserver over its own pack on one
// station, plus the auditor — a second station it dials shard peers from.
type Replica struct {
	Shard int
	Index int // within the shard

	clock *sim.Clock
	rec   *trace.Recorder
	drive *disk.Drive
	fs    *file.FS
	srv   *fileserver.Server
	srvSt *ether.Station
	audSt *ether.Station
	audEp *pup.Endpoint

	peers     []peerRef // shard peers in replica-index order, self excluded
	audCfg    pup.Config
	interval  time.Duration
	quiet     int
	rounds    int // audit rounds run
	heals     int // files healed over the replica's life
	lastHealR int // round number of the most recent heal
}

// peerRef names one shard peer: its replica index and server address.
type peerRef struct {
	index int
	addr  ether.Addr
}

// Name returns the replica's diagnostic name.
func (r *Replica) Name() string { return fmt.Sprintf("shard%d/r%d", r.Shard, r.Index) }

// Clock returns the replica's clock.
func (r *Replica) Clock() *sim.Clock { return r.clock }

// Drive returns the replica's disk, the surface rot and crashes land on.
func (r *Replica) Drive() *disk.Drive { return r.drive }

// FS returns the replica's mounted file system, for offline verification.
func (r *Replica) FS() *file.FS { return r.fs }

// Server returns the replica's file server.
func (r *Replica) Server() *fileserver.Server { return r.srv }

// Stations returns the replica's two attachments, server first — the fleet
// machine config lists both so the engine wakes the replica for arrivals on
// either.
func (r *Replica) Stations() []*ether.Station { return []*ether.Station{r.srvSt, r.audSt} }

// Rounds reports how many audit rounds the replica has run.
func (r *Replica) Rounds() int { return r.rounds }

// Heals reports how many files the replica has healed from peers.
func (r *Replica) Heals() int { return r.heals }

// LastHealRound reports the 1-based round number of the replica's most
// recent heal (0: never healed) — convergence took that many rounds.
func (r *Replica) LastHealRound() int { return r.lastHealR }

// New builds the cluster: Shards×Replicas machines, each with its own clock,
// formatted pack (checksum maintenance live, so later rot is detectable),
// file server, and auditor endpoint. Stations attach in shard-major order;
// creation order is part of the deterministic schedule.
func New(cfg Config) (*Cluster, error) {
	if cfg.Shards < 1 || cfg.Replicas < 2 {
		return nil, fmt.Errorf("cluster: need >=1 shards and >=2 replicas, got %dx%d", cfg.Shards, cfg.Replicas)
	}
	if cfg.AuditInterval <= 0 {
		cfg.AuditInterval = 500 * time.Millisecond
	}
	if cfg.AuditQuiet <= 0 {
		cfg.AuditQuiet = 2
	}
	place := Placement{Shards: cfg.Shards, Replicas: cfg.Replicas}
	c := &Cluster{Place: place}
	for s := 0; s < cfg.Shards; s++ {
		for i := 0; i < cfg.Replicas; i++ {
			r, err := newReplica(cfg, place, s, i)
			if err != nil {
				return nil, err
			}
			c.Replicas = append(c.Replicas, r)
		}
	}
	if cfg.Clock != nil {
		// Formatting the packs was not part of the timeline; with a shared
		// clock the rewind must wait until every pack is built.
		cfg.Clock.Reset()
	}
	return c, nil
}

func newReplica(cfg Config, place Placement, shard, idx int) (*Replica, error) {
	r := &Replica{
		Shard:    shard,
		Index:    idx,
		clock:    cfg.Clock,
		interval: cfg.AuditInterval,
		quiet:    cfg.AuditQuiet,
	}
	shared := r.clock != nil
	if !shared {
		r.clock = sim.NewClock()
	}
	if cfg.Recorder != nil {
		r.rec = cfg.Recorder(r.Name())
	}
	var err error
	if r.srvSt, err = cfg.Wire.Attach(place.ServerAddr(shard, idx)); err != nil {
		return nil, err
	}
	r.srvSt.SetClock(r.clock)
	r.srvSt.SetRecorder(r.rec)
	if r.audSt, err = cfg.Wire.Attach(place.AuditorAddr(shard, idx)); err != nil {
		return nil, err
	}
	r.audSt.SetClock(r.clock)
	r.audSt.SetRecorder(r.rec)

	global := shard*place.Replicas + idx
	//altovet:allow wordwidth global+1 counts the cluster's replicas, a fleet far below 2^16
	if r.drive, err = disk.NewDrive(cfg.Geometry, disk.Word(global+1), r.clock); err != nil {
		return nil, err
	}
	r.drive.SetRecorder(r.rec)
	// Checksum maintenance must be live before any rot strikes, recorder or
	// not: the stale checksum a rotted sector keeps is the audit protocol's
	// local evidence of damage.
	r.drive.EnsureVCRC()
	if r.fs, err = file.Format(r.drive); err != nil {
		return nil, err
	}
	if _, err = dir.InitRoot(r.fs); err != nil {
		return nil, err
	}
	r.srv = fileserver.NewServer(r.fs, pup.NewEndpoint(r.srvSt, pup.Config{}))

	r.audCfg = cfg.AuditPup
	r.audCfg.Seed = cfg.AuditPup.Seed + uint64(global) + 1
	r.audEp = pup.NewEndpoint(r.audSt, r.audCfg)

	for p := 0; p < place.Replicas; p++ {
		if p != idx {
			r.peers = append(r.peers, peerRef{index: p, addr: place.ServerAddr(shard, p)})
		}
	}
	// The pack was formatted before the cluster's timeline starts.
	if !shared {
		r.clock.Reset()
	}
	r.rec.Add("cluster.format", 1)
	return r, nil
}

// Reboot models the replica restarting after a crash: power is back, the
// Scavenger has already repaired the pack (the crash explorer's business),
// and the machine remounts its file system and brings up a fresh server and
// auditor on the same stations — every connection the old life held died
// with it, exactly as on real iron.
func (r *Replica) Reboot() error {
	r.drive.ClearCrash()
	fs, err := file.Mount(r.drive)
	if err != nil {
		return fmt.Errorf("%s: reboot mount: %w", r.Name(), err)
	}
	r.fs = fs
	r.srv = fileserver.NewServer(fs, pup.NewEndpoint(r.srvSt, pup.Config{}))
	r.audEp = pup.NewEndpoint(r.audSt, r.audCfg)
	r.rec.Add("cluster.reboot", 1)
	return nil
}

// Poll advances the replica's machinery one step: the file server serves
// inbound sessions, and the auditor endpoint drains any packets still
// addressed to closed audit connections. Returns whether any work happened.
func (r *Replica) Poll() (bool, error) {
	worked, err := r.srv.Poll()
	if err != nil {
		return true, err
	}
	w2, err := r.audEp.Poll()
	if err != nil {
		return true, err
	}
	if worked || w2 {
		r.rec.Add("cluster.poll.work", 1)
	}
	return worked || w2, nil
}

// ServeProgram is the replica's life as a pure file server (no audits): the
// fleet daemon program for a cluster under client load.
func (r *Replica) ServeProgram() func(*fleet.Machine) error {
	return func(m *fleet.Machine) error {
		for !m.Draining() {
			m.Sync()
			worked, err := r.Poll()
			if err != nil {
				return err
			}
			if !worked {
				m.Idle()
			}
		}
		return nil
	}
}

// AuditProgram is the replica's life as a scavenging daemon: serve peers,
// and each time the audit deadline passes run one full round against the
// shard group. After quiet consecutive clean rounds the replica stops
// scheduling audits and parks; when every replica has gone quiet and the
// wire is silent, the fleet drains and the program returns. startAt is the
// replica's first audit deadline on its own clock — stagger replicas so
// rounds interleave instead of colliding.
func (r *Replica) AuditProgram(startAt time.Duration) func(*fleet.Machine) error {
	return func(m *fleet.Machine) error {
		next := startAt
		clean := 0
		for !m.Draining() {
			m.Sync()
			worked, err := r.Poll()
			if err != nil {
				return err
			}
			if clean < r.quiet && r.clock.Now() >= next {
				out, err := r.AuditRound(
					func() { m.Sync() },
					func() { m.Idle() },
				)
				if err != nil {
					return err
				}
				if out.Divergent == 0 {
					clean++
				} else {
					clean = 0
				}
				next = r.clock.Now() + r.interval
				worked = true
			}
			if !worked {
				if clean < r.quiet {
					r.clock.RequestWake(next)
				}
				m.Idle()
			}
		}
		return nil
	}
}
