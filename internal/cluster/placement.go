package cluster

import "altoos/internal/ether"

// Placement is the deterministic map from file names to shard groups: a name
// hashes to one shard, and the shard's copies live on Replicas consecutive
// machines. There is no placement service to ask and nothing to cache —
// every client and every replica computes the same answer from the name
// alone, the same move the paper makes when it derives a page's location
// from its absolute label instead of a mutable index (§3.1).
type Placement struct {
	Shards   int
	Replicas int
}

// Shard maps a file name to its shard: an FNV-1a fold of the name bytes.
func (p Placement) Shard(name string) int {
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= 16777619
	}
	return int(h % uint32(p.Shards))
}

// Address bases. Server stations answer the session protocol; each replica's
// auditor dials peers from its own second station so the two mutually-dialing
// endpoints of a replica pair never share a connection-id space.
const (
	serverAddrBase  ether.Addr = 1
	auditorAddrBase ether.Addr = 0x1000
	// ClientAddrBase is where cluster experiments start numbering client
	// stations, clear of both replica ranges.
	ClientAddrBase ether.Addr = 0x2000
)

// ServerAddr returns the station address replica (shard, idx) serves on.
func (p Placement) ServerAddr(shard, idx int) ether.Addr {
	//altovet:allow wordwidth shard*Replicas+idx counts the cluster's replicas, far below the auditor base at 0x1000
	return serverAddrBase + ether.Addr(shard*p.Replicas+idx)
}

// AuditorAddr returns the station address replica (shard, idx) audits from.
func (p Placement) AuditorAddr(shard, idx int) ether.Addr {
	//altovet:allow wordwidth shard*Replicas+idx counts the cluster's replicas, far below the client base at 0x2000
	return auditorAddrBase + ether.Addr(shard*p.Replicas+idx)
}
