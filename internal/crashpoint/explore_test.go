package crashpoint

import (
	"bytes"
	"strings"
	"testing"

	"altoos/internal/trace"
)

// mustLookup fetches a registered workload or fails.
func mustLookup(t *testing.T, name string) Workload {
	t.Helper()
	w, ok := Lookup(name)
	if !ok {
		t.Fatalf("workload %q not registered", name)
	}
	return w
}

// TestJournaledInsertFullSweep is the PR's headline property: crash the
// journaled directory path after every single write action — clean and torn
// — and every crash must end in a Scavenger repair that fsck certifies.
func TestJournaledInsertFullSweep(t *testing.T) {
	res, err := Explore(mustLookup(t, "journaled-insert"), Options{Workers: 4, Torn: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Writes == 0 {
		t.Fatal("window counted no writes")
	}
	if len(res.Points) != int(res.Writes) {
		t.Errorf("explored %d points, want every one of %d writes", len(res.Points), res.Writes)
	}
	if want := 2 * len(res.Points); len(res.Outcomes) != want {
		t.Errorf("outcomes = %d, want %d (clean + torn per point)", len(res.Outcomes), want)
	}
	for _, o := range res.Outcomes {
		if !o.Consistent {
			t.Errorf("point %d (torn=%v) left the pack inconsistent:\n  %s",
				o.Point, o.Torn, strings.Join(o.Violations, "\n  "))
		}
		if o.CrashAt == 0 {
			t.Errorf("point %d (torn=%v): crash never fired", o.Point, o.Torn)
		}
	}
	if !res.Consistent() {
		t.Errorf("Clean = %d of %d", res.Clean, len(res.Outcomes))
	}
}

// TestSweepIsByteIdenticalAcrossWorkerCounts pins the ordered-merge claim:
// the JSON report is the same bytes at -workers 1 and -workers 8.
func TestSweepIsByteIdenticalAcrossWorkerCounts(t *testing.T) {
	w := mustLookup(t, "dir-insert")
	run := func(workers int) []byte {
		res, err := Explore(w, Options{Points: 12, Workers: workers, Torn: true})
		if err != nil {
			t.Fatal(err)
		}
		b, err := res.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	one := run(1)
	eight := run(8)
	if !bytes.Equal(one, eight) {
		t.Errorf("reports differ between 1 and 8 workers:\n-- 1 --\n%s\n-- 8 --\n%s", one, eight)
	}
	// And a repeat at the same width is identical too: replayable, not
	// merely order-insensitive.
	if again := run(8); !bytes.Equal(eight, again) {
		t.Error("two 8-worker sweeps of the same workload differ")
	}
}

// TestEveryWorkloadRecoversAtSampledPoints sweeps a sampled crash schedule
// over every registered workload, torn writes included.
func TestEveryWorkloadRecoversAtSampledPoints(t *testing.T) {
	for _, w := range Workloads() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			res, err := Explore(w, Options{Points: 6, Workers: 4, Torn: true})
			if err != nil {
				t.Fatal(err)
			}
			for _, o := range res.Outcomes {
				if !o.Consistent {
					t.Errorf("point %d (torn=%v):\n  %s",
						o.Point, o.Torn, strings.Join(o.Violations, "\n  "))
				}
			}
		})
	}
}

// TestExploreEmitsTrace checks the sweep shows up in the flight recorder:
// one span per run, counters summed over the schedule.
func TestExploreEmitsTrace(t *testing.T) {
	rec := trace.New(4096)
	res, err := Explore(mustLookup(t, "dir-insert"), Options{Points: 4, Workers: 2, Torn: true, Rec: rec})
	if err != nil {
		t.Fatal(err)
	}
	spans := 0
	for _, e := range rec.Events() {
		if e.Kind == trace.KindCrashExplore {
			spans++
		}
	}
	if spans != len(res.Outcomes) {
		t.Errorf("KindCrashExplore spans = %d, want %d", spans, len(res.Outcomes))
	}
	if got := rec.Counter("crashpoint.runs"); got != int64(len(res.Outcomes)) {
		t.Errorf("crashpoint.runs = %d, want %d", got, len(res.Outcomes))
	}
	if got := rec.Counter("crashpoint.points"); got != int64(len(res.Points)) {
		t.Errorf("crashpoint.points = %d, want %d", got, len(res.Points))
	}
	if got := rec.Counter("crashpoint.violations"); got != 0 {
		t.Errorf("crashpoint.violations = %d, want 0 on a clean sweep", got)
	}
}

func TestSamplePoints(t *testing.T) {
	cases := []struct {
		n    int64
		k    int
		want []int
	}{
		{5, 0, []int{1, 2, 3, 4, 5}},  // k<=0: every point
		{5, 9, []int{1, 2, 3, 4, 5}},  // k>=n: every point
		{100, 1, []int{50}},           // single sample: the middle
		{100, 2, []int{1, 100}},       // endpoints always included
		{10, 4, []int{1, 4, 7, 10}},   // even spread
		{3, 3, []int{1, 2, 3}},        // exact
	}
	for _, c := range cases {
		got := samplePoints(c.n, c.k)
		if len(got) != len(c.want) {
			t.Errorf("samplePoints(%d, %d) = %v, want %v", c.n, c.k, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("samplePoints(%d, %d) = %v, want %v", c.n, c.k, got, c.want)
				break
			}
		}
	}
}

func TestWorkloadRegistry(t *testing.T) {
	ws := Workloads()
	if len(ws) < 5 {
		t.Fatalf("only %d workloads registered", len(ws))
	}
	seen := make(map[string]bool)
	for _, w := range ws {
		if w.Name == "" || w.Desc == "" || w.Build == nil {
			t.Errorf("workload %+v incomplete", w.Name)
		}
		if seen[w.Name] {
			t.Errorf("duplicate workload name %q", w.Name)
		}
		seen[w.Name] = true
		if _, ok := Lookup(w.Name); !ok {
			t.Errorf("Lookup(%q) failed for a registered workload", w.Name)
		}
	}
	if _, ok := Lookup("no-such-workload"); ok {
		t.Error("Lookup invented a workload")
	}
}

// TestClusterStoreSweep is the cluster workload's own certification: kill a
// replica at crash points across the whole replicated store window — torn
// writes included — and every run must end with fsck clean on the victim's
// pack AND the rebooted shard group re-audited back to byte-identical copies
// (the Rig.Verify hook appends any convergence failure as a violation).
func TestClusterStoreSweep(t *testing.T) {
	res, err := Explore(mustLookup(t, "cluster-store"), Options{Points: 10, Workers: 4, Torn: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Writes == 0 {
		t.Fatal("window counted no writes on the victim")
	}
	for _, o := range res.Outcomes {
		if !o.Consistent {
			t.Errorf("point %d (torn=%v):\n  %s",
				o.Point, o.Torn, strings.Join(o.Violations, "\n  "))
		}
	}
	if !res.Consistent() {
		t.Errorf("Clean = %d of %d", res.Clean, len(res.Outcomes))
	}
}
