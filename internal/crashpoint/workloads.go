// Package crashpoint is the crash-consistency explorer: it turns the
// paper's "the effects of a system crash at an arbitrary point" (§3.5) from
// a claim into an enumerated, machine-checked property. A workload is run
// once against a fresh pack to count its write actions; then it is re-run
// once per crash point, each run on its own fresh pack with power failing
// after write 1, 2, …, N, and after every crash the machine "reboots": the
// Scavenger repairs the pack and the fsck checker verifies every invariant.
// Runs fan out across a worker pool of independent disk images and merge in
// schedule order, so a sweep is byte-identical however many workers serve it.
package crashpoint

import (
	"fmt"
	"time"

	"altoos/internal/cpu"
	"altoos/internal/dir"
	"altoos/internal/dirlog"
	"altoos/internal/disk"
	"altoos/internal/ether"
	"altoos/internal/file"
	"altoos/internal/fileserver"
	"altoos/internal/mem"
	"altoos/internal/pup"
	"altoos/internal/scavenge"
	"altoos/internal/sim"
	"altoos/internal/stream"
	"altoos/internal/swap"
	"altoos/internal/zone"
)

// Rig is one disposable machine: a fresh pack with the workload's scenery
// already set up, and the write window the explorer crashes into.
type Rig struct {
	// Drive is the disk image the explorer arms and the checkers verify.
	Drive *disk.Drive
	// Run performs the explored write window. Everything Run writes is fair
	// game for the crash; everything Build wrote before it is scenery.
	Run func() error
	// Verify, when non-nil, runs after the Scavenger and fsck have had their
	// turn at the crashed pack and may report workload-specific violations —
	// e.g. the cluster workload reboots the victim and demands the shard
	// group re-audit its way back to convergence.
	Verify func() []string
}

// Workload names one explorable scenario. Build performs all setup on a
// fresh pack and returns the rig; it is called once per explored crash
// point, so it must be deterministic — every build must produce the same
// write schedule.
type Workload struct {
	Name  string
	Desc  string
	Build func() (*Rig, error)
}

// exploreGeometry is the small pack the workloads run on: 576 sectors keeps
// a full sweep (every crash point × scavenge × fsck) fast on the host while
// leaving room for a whole machine state plus the system files.
func exploreGeometry() disk.Geometry {
	return disk.Geometry{
		Name:            "Explorer48",
		Cylinders:       24,
		Heads:           2,
		SectorsPerTrack: 12,
		RevTime:         40 * time.Millisecond,
		SeekSettle:      15 * time.Millisecond,
		SeekPerCyl:      560 * time.Microsecond,
	}
}

// newFS formats a fresh pack with a root directory.
func newFS() (*disk.Drive, *file.FS, *dir.Directory, error) {
	d, err := disk.NewDrive(exploreGeometry(), 1, nil)
	if err != nil {
		return nil, nil, nil, err
	}
	fs, err := file.Format(d)
	if err != nil {
		return nil, nil, nil, err
	}
	root, err := dir.InitRoot(fs)
	if err != nil {
		return nil, nil, nil, err
	}
	return d, fs, root, nil
}

// prepFiles creates and syncs n files without naming them anywhere — the
// raw material for the insert workloads. A crash between a file's creation
// and its insert leaves an orphan for the Scavenger to adopt.
func prepFiles(fs *file.FS, n int) ([]file.FN, error) {
	fns := make([]file.FN, n)
	var v [disk.PageWords]disk.Word
	for i := range fns {
		f, err := fs.Create(fmt.Sprintf("note-%02d", i))
		if err != nil {
			return nil, err
		}
		for w := range v {
			v[w] = disk.Word((i*200 + w) & 0xFFFF)
		}
		if err := f.WritePage(1, &v, 80); err != nil {
			return nil, err
		}
		if err := f.Sync(); err != nil {
			return nil, err
		}
		fns[i] = f.FN()
	}
	if err := fs.Flush(); err != nil {
		return nil, err
	}
	return fns, nil
}

// buildJournaledInsert explores the journaled directory path: each insert
// writes a write-ahead journal record, then the directory page — the two
// structures whose agreement after a crash is the whole point of dirlog.
func buildJournaledInsert() (*Rig, error) {
	d, fs, _, err := newFS()
	if err != nil {
		return nil, err
	}
	m := mem.New()
	z, err := zone.New(m, 0x4000, 0x4000)
	if err != nil {
		return nil, err
	}
	lg, err := dirlog.Open(fs, z, m)
	if err != nil {
		return nil, err
	}
	ld, err := lg.WrapRoot()
	if err != nil {
		return nil, err
	}
	fns, err := prepFiles(fs, 8)
	if err != nil {
		return nil, err
	}
	return &Rig{Drive: d, Run: func() error {
		for i, fn := range fns {
			if err := ld.Insert(fmt.Sprintf("note-%02d", i), fn); err != nil {
				return err
			}
		}
		return nil
	}}, nil
}

// buildDirInsert explores plain directory inserts, no journal.
func buildDirInsert() (*Rig, error) {
	d, fs, root, err := newFS()
	if err != nil {
		return nil, err
	}
	fns, err := prepFiles(fs, 8)
	if err != nil {
		return nil, err
	}
	return &Rig{Drive: d, Run: func() error {
		for i, fn := range fns {
			if err := root.Insert(fmt.Sprintf("note-%02d", i), fn); err != nil {
				return err
			}
		}
		return nil
	}}, nil
}

// buildStreamWrite explores a disk stream growing a file: page allocations,
// length relabels and the leader sync on close.
func buildStreamWrite() (*Rig, error) {
	d, fs, root, err := newFS()
	if err != nil {
		return nil, err
	}
	m := mem.New()
	z, err := zone.New(m, 0x4000, 0x4000)
	if err != nil {
		return nil, err
	}
	f, err := fs.Create("journal")
	if err != nil {
		return nil, err
	}
	if err := root.Insert("journal", f.FN()); err != nil {
		return nil, err
	}
	if err := fs.Flush(); err != nil {
		return nil, err
	}
	return &Rig{Drive: d, Run: func() error {
		s, err := stream.NewDisk(f, z, m, stream.WriteMode)
		if err != nil {
			return err
		}
		for i := 0; i < 3*disk.PageBytes; i++ {
			if err := s.Put(byte('a' + i%26)); err != nil {
				// The crash ate the page buffer mid-write; the whole rig
				// is discarded after the verdict, so nothing to close.
				return err
			}
		}
		return s.Close()
	}}, nil
}

// buildCompact explores the in-place compactor: pages move under their
// absolute names with links deliberately stale mid-permutation.
func buildCompact() (*Rig, error) {
	d, fs, root, err := newFS()
	if err != nil {
		return nil, err
	}
	// Interleave page allocation across files, then delete one, so the
	// compactor has both scattered chains and holes to squeeze out.
	const nfiles, pages = 4, 3
	files := make([]*file.File, nfiles)
	for i := range files {
		f, err := fs.Create(fmt.Sprintf("frag-%d", i))
		if err != nil {
			return nil, err
		}
		files[i] = f
	}
	var v [disk.PageWords]disk.Word
	for pn := 1; pn <= pages; pn++ {
		for i, f := range files {
			for w := range v {
				v[w] = disk.Word((i*1000 + pn*100 + w) & 0xFFFF)
			}
			if err := f.WritePage(disk.Word(pn), &v, disk.PageBytes); err != nil {
				return nil, err
			}
		}
	}
	for i, f := range files {
		if err := f.Sync(); err != nil {
			return nil, err
		}
		if err := root.Insert(fmt.Sprintf("frag-%d", i), f.FN()); err != nil {
			return nil, err
		}
	}
	if err := root.Remove("frag-1"); err != nil {
		return nil, err
	}
	if err := files[1].Delete(); err != nil {
		return nil, err
	}
	if err := fs.Flush(); err != nil {
		return nil, err
	}
	return &Rig{Drive: d, Run: func() error {
		_, _, err := scavenge.Compact(d)
		return err
	}}, nil
}

// buildOutLoad explores a machine-state save onto an installed state file:
// 257 streamed full-page writes plus the leader (§4.1's one-second swap).
func buildOutLoad() (*Rig, error) {
	d, fs, root, err := newFS()
	if err != nil {
		return nil, err
	}
	m := mem.New()
	c := cpu.New(m, d.Clock(), nil)
	f, err := fs.Create("Swatee.")
	if err != nil {
		return nil, err
	}
	if err := root.Insert("Swatee.", f.FN()); err != nil {
		return nil, err
	}
	// Install the state file outside the window: the explored run is the
	// steady-state save, every page an ordinary label-checked write.
	if err := swap.SaveState(fs, c, f.FN()); err != nil {
		return nil, err
	}
	if err := fs.Flush(); err != nil {
		return nil, err
	}
	fn := f.FN()
	return &Rig{Drive: d, Run: func() error {
		_, err := swap.OutLoad(fs, c, fn)
		return err
	}}, nil
}

// buildFileserverStore explores a network store: the server's disk writes
// happen inside its poll loop, driven by a client on a perfect wire.
func buildFileserverStore() (*Rig, error) {
	clock := sim.NewClock()
	wire := ether.New(clock)
	d, err := disk.NewDrive(exploreGeometry(), 1, clock)
	if err != nil {
		return nil, err
	}
	fs, err := file.Format(d)
	if err != nil {
		return nil, err
	}
	if _, err := dir.InitRoot(fs); err != nil {
		return nil, err
	}
	sst, err := wire.Attach(1)
	if err != nil {
		return nil, err
	}
	srv := fileserver.NewServer(fs, pup.NewEndpoint(sst, pup.Config{}))
	cst, err := wire.Attach(2)
	if err != nil {
		return nil, err
	}
	cl := fileserver.NewClient(pup.NewEndpoint(cst, pup.Config{Seed: 1}))
	if err := cl.Connect(1); err != nil {
		return nil, err
	}
	data := make([]byte, 3*disk.PageBytes+57)
	for i := range data {
		data[i] = byte(i*11 + 5)
	}
	return &Rig{Drive: d, Run: func() error {
		if err := cl.Store("upload", data); err != nil {
			return err
		}
		for polls := 0; polls < 1_000_000; polls++ {
			if _, err := srv.Poll(); err != nil {
				return err
			}
			if _, err := cl.Poll(); err != nil {
				return err
			}
			if cl.Done() {
				_, err := cl.Result()
				return err
			}
		}
		return fmt.Errorf("crashpoint: fileserver store never completed")
	}}, nil
}

// Workloads lists every explorable scenario, in fixed order.
func Workloads() []Workload {
	return []Workload{
		{"journaled-insert", "directory inserts through the write-ahead journal", buildJournaledInsert},
		{"dir-insert", "plain directory inserts", buildDirInsert},
		{"stream-write", "a disk stream growing a file", buildStreamWrite},
		{"compact", "in-place compaction of a fragmented pack", buildCompact},
		{"outload", "a machine-state save onto an installed state file", buildOutLoad},
		{"fileserver-store", "a network store through the file server", buildFileserverStore},
		{"cluster-store", "a replicated store with one replica dying mid-write", buildClusterStore},
	}
}

// Lookup finds a workload by name.
func Lookup(name string) (Workload, bool) {
	for _, w := range Workloads() {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}
