package crashpoint

// The cluster workload crashes one replica of a shard group mid-store and
// certifies the distributed Scavenger's half of the §3.5 claim: the local
// Scavenger and fsck repair the victim's pack, and then the rebooted replica
// re-audits with its peers until every copy in the group is byte-identical
// again — whichever side of the interrupted overwrite the vote lands on.

import (
	"bytes"
	"fmt"

	"altoos/internal/cluster"
	"altoos/internal/disk"
	"altoos/internal/ether"
	"altoos/internal/fileserver"
	"altoos/internal/pup"
	"altoos/internal/sim"
)

// clusterPayload builds deterministic non-periodic content (a 256-byte
// period would fold to a zero page CRC under the drive's rotate-xor
// checksum and hide from the audit digests).
func clusterPayload(seed, n int) []byte {
	data := make([]byte, n)
	x := uint32(seed)*2654435761 + 12345
	for i := range data {
		x = x*1664525 + 1013904223
		data[i] = byte(x >> 24)
	}
	return data
}

// buildClusterStore explores a replicated store: a client writes through a
// 1×3 shard group and the middle replica's pack dies partway. The earlier
// replica already holds the new bytes, the later one never sees them, the
// victim holds whatever the crash left — re-audit must converge all three.
func buildClusterStore() (*Rig, error) {
	clock := sim.NewClock()
	wire := ether.New(clock)
	c, err := cluster.New(cluster.Config{
		Shards:   1,
		Replicas: 3,
		Wire:     wire,
		Clock:    clock,
		Geometry: exploreGeometry(),
	})
	if err != nil {
		return nil, err
	}
	st, err := wire.Attach(cluster.ClientAddrBase)
	if err != nil {
		return nil, err
	}
	cl := cluster.NewClient(c.Place, pup.NewEndpoint(st, pup.Config{Seed: 99}))

	// pump advances every replica, swallowing the victim's death throes: a
	// dying pack surfaces as MsgError to the client, not as a rig error.
	pump := func() {
		for _, r := range c.Replicas {
			_, _ = r.Poll()
		}
	}
	wait := func(fc *fileserver.Client) error {
		for polls := 0; polls < 1_000_000; polls++ {
			_, _ = fc.Poll()
			pump()
			if fc.Done() {
				_, err := fc.Result()
				return err
			}
		}
		return fmt.Errorf("crashpoint: cluster transfer never completed")
	}

	names := []string{"base-0", "base-1", "upload"}
	for i, name := range names {
		if err := cl.Store(name, clusterPayload(i+1, 2*disk.PageBytes+137), wait); err != nil {
			return nil, err
		}
	}
	victim := c.Replicas[1]
	over := clusterPayload(7, 3*disk.PageBytes+33)
	return &Rig{
		Drive: victim.Drive(),
		Run: func() error {
			// The victim dies mid-overwrite; the client's group store fails.
			// That failure is the crash's observable effect, not a rig error.
			_ = cl.Store("upload", over, wait)
			return nil
		},
		Verify: func() []string {
			return verifyClusterConverges(c, victim, names)
		},
	}, nil
}

// verifyClusterConverges reboots the victim and drives audit rounds until
// the whole group reports a divergence-free pass, then demands every file be
// byte-identical on every replica.
func verifyClusterConverges(c *cluster.Cluster, victim *cluster.Replica, names []string) []string {
	var out []string
	if err := victim.Reboot(); err != nil {
		return []string{fmt.Sprintf("victim reboot failed: %v", err)}
	}
	sync := func() {}
	idle := func() {
		for _, r := range c.Replicas {
			_, _ = r.Poll()
		}
	}
	converged := false
	for round := 0; round < 6 && !converged; round++ {
		converged = true
		for _, r := range c.Replicas {
			o, err := r.AuditRound(sync, idle)
			if err != nil {
				return append(out, fmt.Sprintf("re-audit on %s: %v", r.Name(), err))
			}
			if o.Divergent > 0 || o.Unreachable > 0 {
				converged = false
			}
		}
	}
	if !converged {
		out = append(out, "shard group never re-audited to convergence")
	}
	for _, name := range names {
		var want []byte
		for i, r := range c.Replicas {
			got, err := cluster.ReadLocal(r.FS(), name)
			if err != nil {
				out = append(out, fmt.Sprintf("%s: %q unreadable after re-audit: %v", r.Name(), name, err))
				continue
			}
			if i == 0 {
				want = got
			} else if !bytes.Equal(got, want) {
				out = append(out, fmt.Sprintf("%s: %q still diverges after re-audit", r.Name(), name))
			}
		}
	}
	return out
}
