package crashpoint

import (
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"altoos/internal/fsck"
	"altoos/internal/scavenge"
	"altoos/internal/trace"
)

// Options configures one exploration sweep.
type Options struct {
	// Points caps how many crash points are explored; <= 0 (or more than
	// the workload's writes) explores every write in the window. Sampled
	// points are spread evenly and always include the first and last write.
	Points int
	// Workers is the number of independent disk images exploring points
	// concurrently; <= 1 runs serially. The merged result is identical for
	// any worker count.
	Workers int
	// Torn explores every point twice: once with the in-flight write
	// suppressed cleanly, once with it landing garbled mid-sector.
	Torn bool
	// Rec, when non-nil, receives one KindCrashExplore span per explored
	// run plus the crashpoint.* counters, emitted in schedule order after
	// the merge — never from inside a worker.
	Rec *trace.Recorder
}

// Repairs distills what the Scavenger had to do after one crash.
type Repairs struct {
	PagesFreed        int  `json:"pages_freed,omitempty"`
	DuplicatesFreed   int  `json:"duplicates_freed,omitempty"`
	HeadlessFreed     int  `json:"headless_freed,omitempty"`
	IncompleteFiles   int  `json:"incomplete_files,omitempty"`
	LinksRepaired     int  `json:"links_repaired,omitempty"`
	LeadersRepaired   int  `json:"leaders_repaired,omitempty"`
	TailPagesAdded    int  `json:"tail_pages_added,omitempty"`
	DirsRepaired      int  `json:"dirs_repaired,omitempty"`
	DirEntriesFixed   int  `json:"dir_entries_fixed,omitempty"`
	DirEntriesRemoved int  `json:"dir_entries_removed,omitempty"`
	OrphansAdopted    int  `json:"orphans_adopted,omitempty"`
	RootRecreated     bool `json:"root_recreated,omitempty"`
	DescRecreated     bool `json:"desc_recreated,omitempty"`
}

// Total counts individual repair actions across every category.
func (r Repairs) Total() int {
	n := r.PagesFreed + r.DuplicatesFreed + r.HeadlessFreed + r.IncompleteFiles +
		r.LinksRepaired + r.LeadersRepaired + r.TailPagesAdded +
		r.DirsRepaired + r.DirEntriesFixed + r.DirEntriesRemoved + r.OrphansAdopted
	if r.RootRecreated {
		n++
	}
	if r.DescRecreated {
		n++
	}
	return n
}

func summarize(rep *scavenge.Report) Repairs {
	return Repairs{
		PagesFreed:        rep.PagesFreed,
		DuplicatesFreed:   rep.DuplicatesFreed,
		HeadlessFreed:     rep.HeadlessFreed,
		IncompleteFiles:   rep.IncompleteFiles,
		LinksRepaired:     rep.LinksRepaired,
		LeadersRepaired:   rep.LeadersRepaired,
		TailPagesAdded:    rep.TailPagesAdded,
		DirsRepaired:      rep.DirsRepaired,
		DirEntriesFixed:   rep.DirEntriesFixed,
		DirEntriesRemoved: rep.DirEntriesRemoved,
		OrphansAdopted:    rep.OrphansAdopted,
		RootRecreated:     rep.RootRecreated,
		DescRecreated:     rep.DescRecreated,
	}
}

// Outcome is the verdict on one explored crash point: what the workload
// saw, what the Scavenger repaired, and what fsck still found wrong
// (nothing, if the paper's claim holds).
type Outcome struct {
	Point      int      `json:"point"`
	Torn       bool     `json:"torn"`
	CrashAt    int64    `json:"crash_at"` // lifetime write index that fired
	RunErr     string   `json:"run_err,omitempty"`
	Repairs    Repairs  `json:"repairs"`
	Violations []string `json:"violations,omitempty"`
	Consistent bool     `json:"consistent"`

	// sim is the run's simulated elapsed time (workload, scavenge and
	// fsck), carried for the trace spans; it stays out of the JSON report.
	sim time.Duration
}

// Result is one whole sweep, outcomes in schedule order (ascending point,
// clean before torn).
type Result struct {
	Workload string    `json:"workload"`
	Writes   int64     `json:"writes"` // write actions in the explored window
	Torn     bool      `json:"torn"`
	Points   []int     `json:"points"`
	Clean    int       `json:"clean"` // outcomes with zero violations
	Outcomes []Outcome `json:"outcomes"`
}

// Consistent reports whether every explored crash point recovered to a
// violation-free pack.
func (r *Result) Consistent() bool { return r.Clean == len(r.Outcomes) }

// JSON renders the report; byte-identical for byte-identical sweeps.
func (r *Result) JSON() ([]byte, error) { return json.MarshalIndent(r, "", "  ") }

// Explore sweeps the workload's crash points. The workload is first run to
// completion on a fresh pack to count the write actions in its window; each
// explored point then rebuilds an identical rig, arms the crash, runs,
// "reboots" into the Scavenger and hands the repaired pack to fsck.
func Explore(w Workload, opts Options) (*Result, error) {
	rig, err := w.Build()
	if err != nil {
		return nil, fmt.Errorf("crashpoint: building %s baseline: %w", w.Name, err)
	}
	before := rig.Drive.Stats().Writes
	if err := rig.Run(); err != nil {
		return nil, fmt.Errorf("crashpoint: %s baseline run: %w", w.Name, err)
	}
	writes := rig.Drive.Stats().Writes - before
	if writes == 0 {
		return nil, fmt.Errorf("crashpoint: workload %s performs no writes; nothing to explore", w.Name)
	}

	points := samplePoints(writes, opts.Points)
	type task struct {
		point int
		torn  bool
	}
	tasks := make([]task, 0, 2*len(points))
	for _, p := range points {
		tasks = append(tasks, task{p, false})
		if opts.Torn {
			tasks = append(tasks, task{p, true})
		}
	}

	// The pool pulls task indices from an atomic cursor; every worker owns
	// its own disk images, and each result lands at its task's slot, so the
	// merge is the schedule order no matter which worker ran what when.
	outcomes := make([]Outcome, len(tasks))
	errs := make([]error, len(tasks))
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for n := 0; n < workers; n++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(tasks) {
					return
				}
				outcomes[i], errs[i] = explorePoint(w, tasks[i].point, tasks[i].torn)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	res := &Result{
		Workload: w.Name,
		Writes:   writes,
		Torn:     opts.Torn,
		Points:   points,
		Outcomes: outcomes,
	}
	for i := range outcomes {
		if outcomes[i].Consistent {
			res.Clean++
		}
	}
	if opts.Rec != nil {
		emitTrace(opts.Rec, w.Name, res)
	}
	return res, nil
}

// explorePoint runs one crash: fresh rig, armed drive, workload, reboot,
// Scavenger, fsck. A checker failure is a verdict about the pack, not an
// explorer error — only a build failure aborts the sweep.
func explorePoint(w Workload, point int, torn bool) (Outcome, error) {
	rig, err := w.Build()
	if err != nil {
		return Outcome{}, fmt.Errorf("crashpoint: rebuilding %s for point %d: %w", w.Name, point, err)
	}
	d := rig.Drive
	d.SetTornCrash(torn)
	d.CrashAfterWrites(int64(point) - 1)
	runErr := rig.Run()
	// Reboot: power is back, the in-flight damage stays.
	d.ClearCrash()
	d.SetTornCrash(false)

	o := Outcome{Point: point, Torn: torn}
	if runErr != nil {
		o.RunErr = runErr.Error()
	}
	at, fired := d.CrashAt()
	if !fired {
		o.Violations = append(o.Violations,
			fmt.Sprintf("crash point %d never fired; the workload's write schedule drifted", point))
		return o, nil
	}
	o.CrashAt = at

	_, rep, err := scavenge.Run(d)
	if err != nil {
		o.Violations = append(o.Violations, fmt.Sprintf("scavenge failed: %v", err))
		return o, nil
	}
	o.Repairs = summarize(rep)

	fr, err := fsck.Check(d)
	if err != nil {
		o.Violations = append(o.Violations, fmt.Sprintf("fsck aborted: %v", err))
		return o, nil
	}
	o.Violations = append(o.Violations, fr.Strings()...)
	if rig.Verify != nil {
		o.Violations = append(o.Violations, rig.Verify()...)
	}
	o.Consistent = len(o.Violations) == 0
	o.sim = d.Clock().Now()
	return o, nil
}

// samplePoints picks which of the n window writes to crash on: all of them,
// or k spread evenly with the first and last always included.
func samplePoints(n int64, k int) []int {
	total := int(n)
	if k <= 0 || k >= total {
		out := make([]int, total)
		for i := range out {
			out[i] = i + 1
		}
		return out
	}
	if k == 1 {
		return []int{(total + 1) / 2}
	}
	out := make([]int, 0, k)
	last := 0
	for i := 0; i < k; i++ {
		p := 1 + i*(total-1)/(k-1)
		if p != last {
			out = append(out, p)
			last = p
		}
	}
	return out
}

// emitTrace lays the sweep into the recorder: one span per run, end to end
// in schedule order (each run had its own private clock, so the spans are
// placed on a cumulative timeline), plus the aggregate counters.
func emitTrace(rec *trace.Recorder, name string, res *Result) {
	var off time.Duration
	for i := range res.Outcomes {
		o := &res.Outcomes[i]
		label := name
		if o.Torn {
			label = name + "/torn"
		}
		rec.EmitSpan(off, o.sim, trace.KindCrashExplore, label, int64(o.Point), int64(len(o.Violations)))
		off += o.sim
		rec.Add("crashpoint.runs", 1)
		rec.Add("crashpoint.violations", int64(len(o.Violations)))
		rec.Add("crashpoint.repairs", int64(o.Repairs.Total()))
	}
	rec.Add("crashpoint.points", int64(len(res.Points)))
}
