package vet

import (
	"go/ast"
	"go/types"
)

// The taint core is an intraprocedural reaching-definitions analysis over
// time-domain provenance: every local variable is tracked as possibly
// carrying a value derived from the simulated clock (taintSim), from the host
// wall clock (taintWall), both, or neither. Taint enters at domain sources —
// (*sim.Clock).Now and (sim.Stopwatch).Elapsed on one side, time.Now,
// time.Since and time.Until on the other — and propagates through
// assignments, arithmetic, conversions and (interprocedurally, via the
// program fact table) function results: a function any of whose return values
// derives from a source is summarized as returnsSim/returnsWall, and calls to
// it taint their results in every other package. Summaries are computed to a
// fixed point over the whole program, so a chain like
//
//	sim helper → duration math in another package → time.Sleep
//
// is caught even though no single function contains both the source and the
// sink. The simtaint analyzer walks each function a second time with the
// final summaries and reports cross-domain flows at sink call sites.
type taint uint8

const (
	taintSim taint = 1 << iota
	taintWall
)

// computeTaintSummaries fills in returnsSim/returnsWall for every function in
// the program, iterating until the summaries stop changing (recursion and
// mutual recursion converge because taint only ever grows).
func computeTaintSummaries(p *Program) {
	for changed := true; changed; {
		changed = false
		for obj, fd := range p.decls {
			ff := p.factsFor(obj)
			ret := (&taintWalker{prog: p, info: fd.pkg.Info}).returnTaint(fd.decl)
			if ret&taintSim != 0 && !ff.returnsSim {
				ff.returnsSim = true
				changed = true
			}
			if ret&taintWall != 0 && !ff.returnsWall {
				ff.returnsWall = true
				changed = true
			}
		}
	}
}

// A taintWalker carries the per-function variable state. The walk is a
// forward pass in source order, run twice so definitions that reach a loop
// head from the loop body are seen (a two-pass approximation of the classic
// iterate-to-fixpoint reaching-definitions loop, sufficient for the
// assignment shapes in this codebase).
type taintWalker struct {
	prog *Program
	info *types.Info
	vars map[*types.Var]taint
	// sink, when non-nil, is invoked for every call statement on the second
	// pass with the fully propagated variable state.
	sink func(call *ast.CallExpr)
	// ret accumulates the taint of every return expression of the outer
	// function (function literals keep their own returns to themselves).
	ret taint
}

// returnTaint computes the combined taint of fn's return expressions.
func (w *taintWalker) returnTaint(fn *ast.FuncDecl) taint {
	w.vars = map[*types.Var]taint{}
	w.walkBody(fn.Body, true)
	w.walkBody(fn.Body, true)
	return w.ret
}

// check runs the two-pass walk and calls report for sink-relevant calls on
// the final pass.
func (w *taintWalker) check(fn *ast.FuncDecl, sink func(*ast.CallExpr)) {
	w.vars = map[*types.Var]taint{}
	w.walkBody(fn.Body, true)
	w.sink = sink
	w.walkBody(fn.Body, true)
}

// walkBody visits every statement in the block, tracking assignments and
// visiting sinks. outer marks whether return statements belong to the
// function under analysis (false inside function literals).
func (w *taintWalker) walkBody(body *ast.BlockStmt, outer bool) {
	if body == nil {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			// A literal's body shares the enclosing variable state (it closes
			// over the same locals) but its returns are its own.
			w.walkBody(s.Body, false)
			return false
		case *ast.AssignStmt:
			w.assign(s)
		case *ast.ReturnStmt:
			if outer {
				for _, e := range s.Results {
					w.ret |= w.exprTaint(e)
				}
			}
		case *ast.RangeStmt:
			// Range variables over a tainted collection stay untracked (no
			// duration collections exist here); nothing to do.
		case *ast.CallExpr:
			if w.sink != nil {
				w.sink(s)
			}
		}
		return true
	})
}

// assign updates variable taint for one assignment statement.
func (w *taintWalker) assign(s *ast.AssignStmt) {
	var rhs taint
	if len(s.Rhs) == 1 {
		rhs = w.exprTaint(s.Rhs[0])
		for _, lhs := range s.Lhs {
			w.setVar(lhs, rhs)
		}
		return
	}
	for i, lhs := range s.Lhs {
		if i < len(s.Rhs) {
			w.setVar(lhs, w.exprTaint(s.Rhs[i]))
		}
	}
}

// setVar records taint for an assignable expression; only plain identifiers
// bound to local variables are tracked.
func (w *taintWalker) setVar(lhs ast.Expr, t taint) {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := w.info.Defs[id]
	if obj == nil {
		obj = w.info.Uses[id]
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return
	}
	// Compound assignment (d += x) merges; plain assignment still merges
	// rather than kills — the walk is a may-analysis and a variable that ever
	// held a domain value keeps the bit (kills would need path sensitivity to
	// be sound).
	w.vars[v] |= t
}

// exprTaint computes the taint of an expression under the current state.
func (w *taintWalker) exprTaint(e ast.Expr) taint {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := w.info.Uses[x].(*types.Var); ok {
			return w.vars[v]
		}
	case *ast.BinaryExpr:
		return w.exprTaint(x.X) | w.exprTaint(x.Y)
	case *ast.UnaryExpr:
		return w.exprTaint(x.X)
	case *ast.StarExpr:
		return w.exprTaint(x.X)
	case *ast.CallExpr:
		return w.callTaint(x)
	}
	return 0
}

// callTaint computes the taint of a call's results: a domain source taints
// directly, a conversion passes its operand through, and any other call takes
// its callee's whole-program summary.
func (w *taintWalker) callTaint(call *ast.CallExpr) taint {
	// Conversion? time.Duration(x) and friends preserve provenance.
	if tv, ok := w.info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return w.exprTaint(call.Args[0])
	}
	fn := calleeFunc(w.info, call)
	if fn == nil {
		return 0
	}
	if src := sourceTaint(w.prog.module, fn); src != 0 {
		return src
	}
	var t taint
	for _, target := range w.prog.resolve(fn) {
		if ff := w.prog.facts[target]; ff != nil {
			if ff.returnsSim {
				t |= taintSim
			}
			if ff.returnsWall {
				t |= taintWall
			}
		}
	}
	// Methods like Time.Add/Sub and Duration arithmetic helpers on the std
	// time package derive from their receiver; approximate by passing the
	// receiver's taint through for time-package methods.
	if t == 0 && fn.Pkg() != nil && fn.Pkg().Path() == "time" {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			t |= w.exprTaint(sel.X)
		}
	}
	return t
}

// sourceTaint classifies fn as a time-domain source.
func sourceTaint(m *Module, fn *types.Func) taint {
	pkg := fn.Pkg()
	if pkg == nil {
		return 0
	}
	switch pkg.Path() {
	case m.Path + "/internal/sim":
		switch fn.Name() {
		case "Now", "Elapsed":
			return taintSim
		}
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			return taintWall
		}
	}
	return 0
}
